package cohana

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/storage"
)

// ParseExplain recognizes the EXPLAIN / EXPLAIN ANALYZE statement forms:
// it reports whether src carries the prefix, whether ANALYZE was requested,
// and the inner query text with the prefix stripped. The keywords are
// case-insensitive, matching the rest of the query language.
func ParseExplain(src string) (inner string, analyze, ok bool) {
	rest, ok := keyword(src, "explain")
	if !ok {
		return "", false, false
	}
	if after, isAnalyze := keyword(rest, "analyze"); isAnalyze {
		return after, true, true
	}
	return rest, false, true
}

// keyword strips a leading case-insensitive keyword followed by whitespace.
func keyword(s, kw string) (rest string, ok bool) {
	s = strings.TrimSpace(s)
	if len(s) <= len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return "", false
	}
	switch s[len(kw)] {
	case ' ', '\t', '\n', '\r':
		return strings.TrimSpace(s[len(kw):]), true
	}
	return "", false
}

// Explain parses a cohort query and reports, without executing it, the
// optimized physical plan (Figure 5 shape, with birth selections pushed
// below age selections per Equation 1) and the chunk-pruning outcome: how
// many chunks the two-level dictionaries and chunk ranges let the executor
// skip entirely (Section 4.2). src may carry an explicit EXPLAIN or EXPLAIN
// ANALYZE prefix; the ANALYZE form additionally executes the query and is
// answered by ExplainAnalyze.
func (e *Engine) Explain(src string) (string, error) {
	return e.ExplainContext(context.Background(), src)
}

// ExplainContext is Explain with cancellation. Only the EXPLAIN ANALYZE form
// executes the query, so ctx matters exactly there; the plan-only form
// never blocks.
func (e *Engine) ExplainContext(ctx context.Context, src string) (string, error) {
	if inner, analyze, ok := ParseExplain(src); ok {
		if analyze {
			return e.ExplainAnalyze(ctx, inner)
		}
		src = inner
	}
	stmt, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	if stmt.Mixed != nil {
		inner, err := e.explainCohort(stmt.Mixed.Inner)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		sb.WriteString("Mixed query (cohort sub-query first, then outer SQL):\n")
		sb.WriteString(inner)
		sb.WriteString("OuterSQL[")
		if stmt.Mixed.Where != nil {
			fmt.Fprintf(&sb, "WHERE %s", stmt.Mixed.Where)
		}
		if stmt.Mixed.Order != nil {
			fmt.Fprintf(&sb, " ORDER BY %s", stmt.Mixed.Order.Col)
			if stmt.Mixed.Order.Desc {
				sb.WriteString(" DESC")
			}
		}
		if stmt.Mixed.Limit >= 0 {
			fmt.Fprintf(&sb, " LIMIT %d", stmt.Mixed.Limit)
		}
		sb.WriteString("]\n")
		return sb.String(), nil
	}
	return e.explainCohort(stmt.Cohort)
}

func (e *Engine) explainCohort(stmt *parser.CohortStmt) (string, error) {
	q := stmt.Query
	views := e.live.Views()
	if err := q.Validate(e.live.Schema()); err != nil {
		return "", err
	}
	logical := plan.FromQuery(q)
	optimized, err := plan.Optimize(logical)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Birth action: %q\n", q.BirthAction)
	sb.WriteString("Logical plan (as written):\n")
	sb.WriteString(indent(plan.Describe(logical)))
	sb.WriteString("Optimized plan (birth selection pushed down, Eq. 1):\n")
	sb.WriteString(indent(plan.Describe(optimized)))
	totalChunks, totalPruned, totalDelta := 0, 0, 0
	type shardLine struct {
		skip  []bool
		delta int
	}
	lines := make([]shardLine, len(views))
	prunedOf := func(skip []bool) int {
		n := 0
		for _, s := range skip {
			if s {
				n++
			}
		}
		return n
	}
	for i, view := range views {
		skip, err := plan.PruneMap(q, view.Sealed)
		if err != nil {
			return "", err
		}
		lines[i] = shardLine{skip: skip}
		if view.Delta != nil {
			lines[i].delta = view.Delta.Len()
		}
		totalChunks += len(skip)
		totalPruned += prunedOf(skip)
		totalDelta += lines[i].delta
	}
	fmt.Fprintf(&sb, "Chunks: %d total, %d prunable for this query\n", totalChunks, totalPruned)
	// Per-chunk pruning detail: which chunks the two-level dictionaries and
	// chunk ranges let the executor skip, with each chunk's size — capped so
	// paper-scale tables don't drown the plan. Sharded tables get the detail
	// per shard under the scatter-gather breakdown.
	// Row/user counts come from chunk-level metadata (ChunkRows/ChunkUsers),
	// which lazy tables answer from the manifest — a plain EXPLAIN performs
	// zero segment loads.
	const maxChunkLines = 12
	chunkDetail := func(indent string, sealed *storage.Table, skip []bool) {
		for ci, skipped := range skip {
			if ci == maxChunkLines {
				fmt.Fprintf(&sb, "%s... (%d more chunks)\n", indent, len(skip)-maxChunkLines)
				break
			}
			verdict := "scan"
			if skipped {
				verdict = "prune"
			}
			fmt.Fprintf(&sb, "%schunk %d: %d rows, %d users, %s\n", indent, ci, sealed.ChunkRows(ci), sealed.ChunkUsers(ci), verdict)
		}
	}
	if len(views) > 1 {
		// Per-shard scatter-gather breakdown: how much of each shard the
		// pruning step lets the executor skip, and each shard's live delta.
		fmt.Fprintf(&sb, "Shards: %d (scatter-gather, partitioned by user hash)\n", len(views))
		for i, l := range lines {
			fmt.Fprintf(&sb, "  shard %d: %d chunks, %d prunable", i, len(l.skip), prunedOf(l.skip))
			if l.delta > 0 {
				fmt.Fprintf(&sb, ", %d delta rows", l.delta)
			}
			sb.WriteString("\n")
			chunkDetail("    ", views[i].Sealed, l.skip)
		}
	} else if len(views) == 1 {
		chunkDetail("  ", views[0].Sealed, lines[0].skip)
	}
	if totalDelta > 0 {
		fmt.Fprintf(&sb, "Delta: %d live rows unioned via row scan\n", totalDelta)
	}
	return sb.String(), nil
}

// ExplainAnalyze is Explain plus execution: it runs src (a cohort or mixed
// query, with or without an EXPLAIN ANALYZE prefix) with tracing enabled and
// appends the measured span tree — per-shard and per-chunk durations, rows
// scanned, value bytes decoded, encoded checks, delta-union and merge timing
// — under the static plan. The measured counters are the same per-chunk
// tallies cohort.ExecStats aggregates, so the two always agree.
func (e *Engine) ExplainAnalyze(ctx context.Context, src string) (string, error) {
	if inner, _, ok := ParseExplain(src); ok {
		src = inner
	}
	static, err := e.Explain(src)
	if err != nil {
		return "", err
	}
	snap := e.Snapshot()
	// Detect the mixed form with a plain parse (already validated by the
	// static Explain above) so the traced run's plan-cache outcome reflects
	// the caller's cache state, not a lookup this function just primed.
	stmt, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	var root *TraceSpan
	if stmt.Mixed != nil {
		_, root, err = snap.QueryMixedTracedContext(ctx, src)
	} else {
		_, root, err = snap.QueryTracedContext(ctx, src)
	}
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(static)
	sb.WriteString("Execution (EXPLAIN ANALYZE, measured):\n")
	sb.WriteString(indent(root.Render()))
	return sb.String(), nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
