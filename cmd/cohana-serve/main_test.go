package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/storage"
)

// TestServeEndToEnd drives the exact stack the binary runs — newHTTPServer
// on a real TCP listener — with concurrent queries and a graceful shutdown.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tbl := gen.Generate(gen.Config{Users: 80, Days: 12, MeanActions: 12, Seed: 3})
	st, err := storage.Build(tbl, storage.Options{ChunkSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteFile(filepath.Join(dir, "game.cohana")); err != nil {
		t.Fatal(err)
	}

	// -shards 4 against a legacy single-file table exercises the load-time
	// migration: the file is resharded to 4 and persisted as a manifest.
	httpSrv, srv, err := newHTTPServer("127.0.0.1:0", server.Config{DataDir: dir, Workers: 4, CacheSize: 32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", httpSrv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Liveness.
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}

	// The acceptance scenario: >= 8 concurrent POST /query requests.
	query := `SELECT country, COHORTSIZE, AGE, UserCount() FROM GameActions
		BIRTH FROM action = "launch" COHORT BY country`
	reqBody, err := json.Marshal(map[string]string{"table": "game", "query": query})
	if err != nil {
		t.Fatal(err)
	}
	const concurrent = 10
	bodies := make([]string, concurrent)
	cacheStatus := make([]string, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(resp.Body)
				t.Errorf("request %d: status %d body %s", i, resp.StatusCode, data)
				return
			}
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			bodies[i] = string(data)
			cacheStatus[i] = resp.Header.Get("X-Cohana-Cache")
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < concurrent; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d disagrees with request 0", i)
		}
	}

	// A repeat of the identical query is served from the result cache.
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Cohana-Cache"); got != "hit" {
		t.Fatalf("repeat query cache status %q, want hit", got)
	}

	// The stats endpoint accounts for the traffic.
	sr, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Queries uint64 `json:"queries"`
		Cache   struct {
			Hits uint64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if stats.Queries < concurrent+1 || stats.Cache.Hits < 1 {
		t.Fatalf("stats = %+v, want >= %d queries and >= 1 cache hit", stats, concurrent+1)
	}

	// Graceful shutdown, then release the pool.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	srv.Close()
}

func TestRunRejectsBadDataDir(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := run("127.0.0.1:0", "", server.Config{DataDir: filepath.Join(t.TempDir(), "missing"), Workers: 1, CacheSize: 1}, logger); err == nil {
		t.Fatal("run accepted a missing data directory")
	}
	// A file is not a directory.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("127.0.0.1:0", "", server.Config{DataDir: f, Workers: 1, CacheSize: 1}, logger); err == nil {
		t.Fatal("run accepted a file as data directory")
	}
}

func TestNewLogger(t *testing.T) {
	for _, tc := range []struct {
		format, level string
		ok            bool
	}{
		{"text", "info", true},
		{"json", "debug", true},
		{"text", "WARN", true}, // slog level names are case-insensitive
		{"xml", "info", false},
		{"text", "loud", false},
	} {
		_, err := newLogger(os.Stderr, tc.format, tc.level)
		if (err == nil) != tc.ok {
			t.Errorf("newLogger(%q, %q) error = %v, want ok=%v", tc.format, tc.level, err, tc.ok)
		}
	}
}
