// Command cohana-serve runs the COHANA HTTP query-and-ingest server over a
// directory of compressed .cohana tables (produced by `cohana ingest`).
//
// Usage:
//
//	cohana-serve -addr :8080 -data ./tables [-workers 8] [-cache 256] [-compact-rows 262144]
//	             [-log-format text|json] [-log-level info] [-pprof-addr 127.0.0.1:6060]
//
// Endpoints:
//
//	POST /query                 {"table": "game", "query": "SELECT ..."}
//	GET  /tables                list tables in the data directory
//	GET  /tables/{name}         one table's stats (loads it on first use)
//	POST /tables/{name}/append  {"rows": [{col: val, ...}, ...]}
//	POST /tables/{name}/compact seal the live delta into compressed chunks
//	POST /tables/{name}/reload  re-read the file, invalidate cached results
//	GET  /stats                 cache, serving and ingestion counters
//	GET  /metrics               Prometheus text exposition of engine metrics
//	GET  /healthz               liveness
//
// Tables load lazily on first use; the sealed compressed tier is shared,
// immutable, across all requests, while appended rows live in a per-table
// delta store journaled to <name>.journal next to the table file (replayed
// on load, so a restart loses nothing; batches spanning several shards
// commit through a 2PC-lite coordinator log, <name>.journal.txn, so a crash
// mid-batch can never admit a prefix of shards). Queries union both tiers
// and are always fresh. The delta is sealed by a background compactor once
// it holds -compact-rows rows, or on demand via the compact endpoint —
// chunk-granularly: only the chunks owning delta users are re-encoded, and
// the manifest commit writes only those chunks' new segment files, so the
// bytes persisted per compaction track the touched chunks, not the table
// (the /stats chunksRebuilt/chunksReused/persistBytes counters make this
// observable). Each query fans out over sealed chunks on a worker pool
// bounded by -workers, and identical (table, query) pairs are answered from
// an LRU result cache (the X-Cohana-Cache response header says hit or miss)
// keyed on the generation vector of only the shards the query can touch —
// an append to one shard leaves cached queries of the others warm — and
// invalidated wholesale on reload.
//
// Observability: every request gets an X-Request-ID (honored when the client
// sends one) and a structured access log line (-log-format selects text or
// JSON, -log-level the floor). GET /metrics serves the engine's Prometheus
// metrics. -pprof-addr starts net/http/pprof on a *separate* listener —
// off by default, so profiling endpoints are never exposed on the serving
// address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", ".", "directory of .cohana table files")
	workers := flag.Int("workers", 0, "chunk-scan worker pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 256, "result cache capacity in entries (0 disables)")
	compactRows := flag.Int("compact-rows", 0, "per-shard delta rows triggering background compaction (0 = default 256K, negative disables)")
	shards := flag.Int("shards", 0, "user-hash shards per table; tables stored with a different count are resharded at load (0 = keep stored count)")
	planCache := flag.Int("plan-cache", 0, "per-table compiled-plan cache capacity in plans (0 = default 256, negative disables)")
	chunkCacheBytes := flag.Int64("chunk-cache-bytes", 0, "memory budget for decoded chunk payloads across lazily loaded tables (0 = unbounded)")
	eagerLoad := flag.Bool("eager-load", false, "decode every chunk segment at table load instead of lazily on first touch")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof (empty disables; use 127.0.0.1:6060 to keep it local)")
	flag.Parse()

	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cohana-serve:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	cfg := server.Config{
		DataDir: *data, Workers: *workers, CacheSize: *cache, CompactRows: *compactRows,
		Shards: *shards, PlanCacheSize: *planCache, ChunkCacheBytes: *chunkCacheBytes,
		EagerLoad: *eagerLoad, Logger: logger,
	}
	if err := run(*addr, *pprofAddr, cfg, logger); err != nil {
		logger.Error("exiting", "error", err.Error())
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-format and -log-level
// flags.
func newLogger(w *os.File, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log-format %q (want text or json)", format)
	}
}

// newHTTPServer assembles the serving stack the binary runs: the query
// server wrapped in an http.Server. Tests drive the same stack against a
// local listener.
func newHTTPServer(addr string, cfg server.Config) (*http.Server, *server.Server, error) {
	fi, err := os.Stat(cfg.DataDir)
	if err != nil {
		return nil, nil, fmt.Errorf("data directory: %w", err)
	}
	if !fi.IsDir() {
		return nil, nil, fmt.Errorf("data path %q is not a directory", cfg.DataDir)
	}
	srv := server.New(cfg)
	return &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}, srv, nil
}

// newPprofServer builds the profiling listener: net/http/pprof on its own
// mux and its own address, so the profiling surface is never mounted on the
// serving address and stays off unless -pprof-addr is set.
func newPprofServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
}

func run(addr, pprofAddr string, cfg server.Config, logger *slog.Logger) error {
	httpSrv, srv, err := newHTTPServer(addr, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("cohana-serve listening",
		"addr", addr, "data", cfg.DataDir, "workers", cfg.Workers,
		"cache", cfg.CacheSize, "plan_cache", cfg.PlanCacheSize,
		"compact_rows", cfg.CompactRows, "shards", cfg.Shards,
		"chunk_cache_bytes", cfg.ChunkCacheBytes, "eager_load", cfg.EagerLoad)

	var pprofSrv *http.Server
	if pprofAddr != "" {
		pprofSrv = newPprofServer(pprofAddr)
		go func() {
			logger.Info("pprof listening", "addr", pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err.Error())
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if pprofSrv != nil {
			_ = pprofSrv.Shutdown(ctx)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
