// Command cohana-serve runs the COHANA HTTP query-and-ingest server over a
// directory of compressed .cohana tables (produced by `cohana ingest`).
//
// Usage:
//
//	cohana-serve -addr :8080 -data ./tables [-workers 8] [-cache 256] [-compact-rows 262144]
//
// Endpoints:
//
//	POST /query                 {"table": "game", "query": "SELECT ..."}
//	GET  /tables                list tables in the data directory
//	GET  /tables/{name}         one table's stats (loads it on first use)
//	POST /tables/{name}/append  {"rows": [{col: val, ...}, ...]}
//	POST /tables/{name}/compact seal the live delta into compressed chunks
//	POST /tables/{name}/reload  re-read the file, invalidate cached results
//	GET  /stats                 cache, serving and ingestion counters
//	GET  /healthz               liveness
//
// Tables load lazily on first use; the sealed compressed tier is shared,
// immutable, across all requests, while appended rows live in a per-table
// delta store journaled to <name>.journal next to the table file (replayed
// on load, so a restart loses nothing; batches spanning several shards
// commit through a 2PC-lite coordinator log, <name>.journal.txn, so a crash
// mid-batch can never admit a prefix of shards). Queries union both tiers
// and are always fresh. The delta is sealed by a background compactor once
// it holds -compact-rows rows, or on demand via the compact endpoint —
// chunk-granularly: only the chunks owning delta users are re-encoded, and
// the manifest commit writes only those chunks' new segment files, so the
// bytes persisted per compaction track the touched chunks, not the table
// (the /stats chunksRebuilt/chunksReused/persistBytes counters make this
// observable). Each query fans out over sealed chunks on a worker pool
// bounded by -workers, and identical (table, query) pairs are answered from
// an LRU result cache (the X-Cohana-Cache response header says hit or miss)
// keyed on the generation vector of only the shards the query can touch —
// an append to one shard leaves cached queries of the others warm — and
// invalidated wholesale on reload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", ".", "directory of .cohana table files")
	workers := flag.Int("workers", 0, "chunk-scan worker pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 256, "result cache capacity in entries (0 disables)")
	compactRows := flag.Int("compact-rows", 0, "per-shard delta rows triggering background compaction (0 = default 256K, negative disables)")
	shards := flag.Int("shards", 0, "user-hash shards per table; tables stored with a different count are resharded at load (0 = keep stored count)")
	planCache := flag.Int("plan-cache", 0, "per-table compiled-plan cache capacity in plans (0 = default 256, negative disables)")
	flag.Parse()

	cfg := server.Config{DataDir: *data, Workers: *workers, CacheSize: *cache, CompactRows: *compactRows, Shards: *shards, PlanCacheSize: *planCache}
	if err := run(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cohana-serve:", err)
		os.Exit(1)
	}
}

// newHTTPServer assembles the serving stack the binary runs: the query
// server wrapped in an http.Server. Tests drive the same stack against a
// local listener.
func newHTTPServer(addr string, cfg server.Config) (*http.Server, *server.Server, error) {
	fi, err := os.Stat(cfg.DataDir)
	if err != nil {
		return nil, nil, fmt.Errorf("data directory: %w", err)
	}
	if !fi.IsDir() {
		return nil, nil, fmt.Errorf("data path %q is not a directory", cfg.DataDir)
	}
	srv := server.New(cfg)
	return &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}, srv, nil
}

func run(addr string, cfg server.Config) error {
	httpSrv, srv, err := newHTTPServer(addr, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("cohana-serve listening on %s (data=%s workers=%d cache=%d plan-cache=%d compact-rows=%d shards=%d)",
		addr, cfg.DataDir, cfg.Workers, cfg.CacheSize, cfg.PlanCacheSize, cfg.CompactRows, cfg.Shards)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
