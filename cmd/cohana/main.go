// Command cohana is the COHANA engine CLI: it ingests CSV activity data
// into the compressed columnar format, reports storage statistics, and runs
// cohort queries (including mixed queries) against ingested tables.
//
// Usage:
//
//	cohana ingest -in game.csv -out game.cohana [-chunk 262144]
//	cohana info  -table game.cohana
//	cohana query -table game.cohana -q 'SELECT country, COHORTSIZE, AGE,
//	    UserCount() FROM GameActions BIRTH FROM action = "launch" COHORT BY country'
//
// A query prefixed with EXPLAIN prints the optimized plan; EXPLAIN ANALYZE
// executes it and annotates the plan with measured per-shard and per-chunk
// timings and counters (rows scanned, value bytes decoded, chunks pruned).
//
// The ingest schema defaults to the paper's mobile-game schema (player,
// time, action, country, city, role, session, gold); pass -schema paper for
// the Table 1 example schema (player, time, action, role, country, gold).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "ingest":
		err = ingest(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "query":
		err = query(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cohana:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cohana <ingest|info|query> [flags]")
	os.Exit(2)
}

func schemaByName(name string) (*cohana.Schema, error) {
	switch strings.ToLower(name) {
	case "game", "":
		return cohana.GameSchema(), nil
	case "paper":
		return cohana.PaperSchema(), nil
	default:
		return nil, fmt.Errorf("unknown schema %q (want game or paper)", name)
	}
}

func ingest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	in := fs.String("in", "", "input CSV path")
	out := fs.String("out", "", "output .cohana path")
	chunk := fs.Int("chunk", 0, "chunk size in tuples (0 = 256K default)")
	shards := fs.Int("shards", 0, "user-hash shards (every count writes a COHANAS2 manifest plus per-chunk segment files; legacy single-file and COHANAS1 tables stay readable)")
	schemaName := fs.String("schema", "game", "schema: game or paper")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("ingest needs -in and -out")
	}
	schema, err := schemaByName(*schemaName)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tbl, err := cohana.ReadCSV(f, schema)
	if err != nil {
		return err
	}
	eng, err := cohana.NewEngine(tbl, cohana.Options{ChunkSize: *chunk, Shards: *shards})
	if err != nil {
		return err
	}
	if err := eng.Save(*out); err != nil {
		return err
	}
	s := eng.Stats()
	fmt.Printf("ingested %d tuples / %d users into %d shards / %d chunks (%d bytes compressed)\n",
		s.Rows, s.Users, s.Shards, s.Chunks, s.EncodedSize)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	table := fs.String("table", "", ".cohana table path")
	fs.Parse(args)
	if *table == "" {
		return fmt.Errorf("info needs -table")
	}
	eng, err := cohana.Open(*table, cohana.Options{})
	if err != nil {
		return err
	}
	s := eng.Stats()
	fmt.Printf("rows:        %d\nusers:       %d\nshards:      %d\nchunks:      %d\nchunk size:  %d\ncompressed:  %d bytes\n",
		s.Rows, s.Users, s.Shards, s.Chunks, s.ChunkSize, s.EncodedSize)
	schema := eng.Schema()
	fmt.Println("columns:")
	for i := 0; i < schema.NumCols(); i++ {
		c := schema.Col(i)
		fmt.Printf("  %-10s %-7s %s\n", c.Name, c.Type, c.Kind)
	}
	return nil
}

func query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	table := fs.String("table", "", ".cohana table path")
	src := fs.String("q", "", "cohort query (or mixed query) text")
	parallel := fs.Int("parallel", 0, "chunk parallelism (0 = single-threaded)")
	fs.Parse(args)
	if *table == "" || *src == "" {
		return fmt.Errorf("query needs -table and -q")
	}
	eng, err := cohana.Open(*table, cohana.Options{Parallelism: *parallel})
	if err != nil {
		return err
	}
	if inner, analyze, ok := cohana.ParseExplain(*src); ok {
		var text string
		if analyze {
			text, err = eng.ExplainAnalyze(context.Background(), inner)
		} else {
			text, err = eng.Explain(inner)
		}
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}
	if strings.HasPrefix(strings.TrimSpace(strings.ToUpper(*src)), "WITH") {
		res, err := eng.QueryMixed(*src)
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil
	}
	res, err := eng.Query(*src)
	if err != nil {
		return err
	}
	fmt.Print(res)
	return nil
}
