// Command datagen generates a synthetic mobile-game activity dataset with
// the shape of the paper's evaluation trace (Section 5.1) and writes it as
// CSV.
//
// Usage:
//
//	datagen -users 500 -scale 1 -seed 42 -out game.csv
//	datagen -users 500 -zipf 1.5 -out skewed.csv
//
// -zipf s (s > 1) draws a per-user activity multiplier from a Zipf
// distribution, producing the heavy-tailed per-user volumes real traces
// have; sharded benchmarks use it to exercise shard imbalance, since hash
// partitioning spreads users evenly but not their tuples.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/activity"
	"repro/internal/gen"
)

func main() {
	users := flag.Int("users", 500, "distinct users at scale 1")
	scale := flag.Int("scale", 1, "scale factor (multiplies users)")
	days := flag.Int("days", 39, "observation window in days")
	mean := flag.Int("mean-actions", 60, "target mean activity tuples per user")
	seed := flag.Int64("seed", 1, "random seed")
	zipf := flag.Float64("zipf", 0, "Zipf exponent (> 1) for skewed per-user activity volumes; 0 disables the skew")
	out := flag.String("out", "", "output CSV path (default stdout)")
	flag.Parse()
	if *zipf != 0 && *zipf <= 1 {
		fatal(fmt.Errorf("-zipf wants an exponent > 1 (got %v)", *zipf))
	}

	tbl := gen.Generate(gen.Config{
		Users: *users, Scale: *scale, Days: *days, MeanActions: *mean, Seed: *seed, ZipfS: *zipf,
	})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := activity.WriteCSV(w, tbl); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d activity tuples for %d users\n", tbl.Len(), tbl.NumUsers())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
