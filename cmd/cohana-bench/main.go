// Command cohana-bench regenerates the paper's evaluation figures
// (Section 5) as printed tables: COHANA's chunk-size sensitivity (Figures 6
// and 7), the birth/age selection sweeps (Figures 8 and 9), preprocessing
// cost (Figure 10), and the five-scheme comparative study (Figure 11).
//
// Usage:
//
//	cohana-bench -fig all -scales 1,2,4 -users 300
//	cohana-bench -fig 11 -scales 1,2,4,8 -max-baseline-scale 4
//	cohana-bench -json perf.json -scales 1,2,4
//	cohana-bench -json perf.json -baseline BENCH_baseline.json
//
// Numbers are machine-local; the reproduction target is the shape of each
// figure (see EXPERIMENTS.md for the expected trends and a recorded run).
// With -json, the printed figures are replaced by a machine-readable perf
// report — ns/op and rows/s for Q1-Q4 per scale, the shard-scaling sweep
// (build and compaction time at 1/2/4 shards), the compaction persisted-bytes
// sweep, the plan-cache repeat-query measurement (cold vs warm front end),
// the pushdown selectivity sweep (value bytes decoded with vs without the
// encoded-domain predicate pushdown), the vectorized-execution sweep
// (run-at-a-time kernels vs the scalar reference loop, with the run-kernel
// counters), the metrics-overhead measurement
// (the warm query path instrumented vs with metrics compiled to no-ops) and
// the cold-start sweep (eager vs lazy reopen latency, open-time segment
// reads and resident decoded bytes at chunk-cache budgets 10% and 100%) —
// written to the given path, so the
// performance trajectory can be tracked across PRs. With -baseline, the fresh
// report is additionally compared against a previously recorded one and the
// run exits non-zero when any query regressed by more than -regress-factor,
// when repeated queries stop hitting the plan cache, when the pushdown
// stops decoding fewer bytes than the generic path, or when the vectorized
// path stops reporting run-kernel activity or falls behind the scalar
// reference (CI's performance gate).
//
// -cpuprofile and -memprofile write pprof profiles of the run, so kernel
// hot spots and steady-state allocations can be inspected with
// `go tool pprof` without wiring the library into a test binary.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

// run is main's body behind an exit code, so the deferred profile writers
// flush on every deliberate exit path — os.Exit in main would skip them.
func run() int {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10, 11, verify or all")
	users := flag.Int("users", 300, "users at scale 1 (paper: 57077)")
	seed := flag.Int64("seed", 1, "generator seed")
	scales := flag.String("scales", "1,2,4", "comma-separated scale factors (paper: 1..64)")
	chunks := flag.String("chunks", "", "comma-separated chunk sizes for figures 6-7 (default 1K,4K,16K,64K)")
	repeats := flag.Int("repeats", 3, "runs averaged per measurement (paper: 5)")
	maxBaseline := flag.Int("max-baseline-scale", 0, "skip SQL/MV baselines above this scale (0 = never)")
	jsonOut := flag.String("json", "", "write a machine-readable perf report (ns/op, rows/s per query, shard scaling) to this path instead of printing figures")
	baseline := flag.String("baseline", "", "compare the fresh -json report against this recorded report and fail on regressions")
	regressFactor := flag.Float64("regress-factor", 2.0, "slowdown factor vs -baseline that fails the run (2.0 = fail when >2x slower)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this path (inspect with go tool pprof)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	opts := bench.FigureOptions{Repeats: *repeats, MaxBaselineScale: *maxBaseline}
	var err error
	if opts.Scales, err = parseInts(*scales); err != nil {
		fatal(err)
	}
	if *chunks != "" {
		if opts.ChunkSizes, err = parseInts(*chunks); err != nil {
			fatal(err)
		}
	}
	wl := bench.NewWorkload(*users, *seed)
	if *jsonOut != "" {
		rep, err := bench.WriteJSONReport(*jsonOut, wl, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote perf report to %s\n", *jsonOut)
		for _, s := range rep.ShardScaling {
			fmt.Printf("shards=%d: build %.1fms (%.2fx), compact uniform %.1fms (%.2fx), compact hot %.1fms (%.2fx)\n",
				s.Shards,
				float64(s.BuildNsPerOp)/1e6, s.BuildSpeedup,
				float64(s.CompactUniformNsPerOp)/1e6, s.CompactUniformSpeedup,
				float64(s.CompactHotNsPerOp)/1e6, s.CompactHotSpeedup)
		}
		for _, p := range rep.CompactionPersist {
			fmt.Printf("persist shards=%d (%d chunks, %d delta rows): uniform %d B (%d/%d chunks rebuilt), zipf %d B (%d/%d chunks rebuilt)\n",
				p.Shards, p.TotalChunks, p.DeltaRows,
				p.Uniform.BytesWritten, p.Uniform.ChunksRebuilt, p.Uniform.ChunksRebuilt+p.Uniform.ChunksReused,
				p.Zipf.BytesWritten, p.Zipf.ChunksRebuilt, p.Zipf.ChunksRebuilt+p.Zipf.ChunksReused)
		}
		for _, p := range rep.PlanCacheRepeat {
			fmt.Printf("plan cache %s scale=%d: cold %.1fµs, warm %.1fµs (%.2fx), %d hits / %d misses\n",
				p.Query, p.Scale, float64(p.ColdNsPerOp)/1e3, float64(p.WarmNsPerOp)/1e3,
				p.Speedup, p.Hits, p.Misses)
		}
		for _, p := range rep.PushdownSweep {
			fmt.Printf("pushdown %s scale=%d: %d B decoded vs %d B generic (%d encoded checks, %d rows scanned)\n",
				p.Name, p.Scale, p.BytesDecoded, p.BytesDecodedGeneric, p.EncodedChecks, p.RowsScanned)
		}
		for _, v := range rep.VectorizedSweep {
			batch := float64(0)
			if v.RunsEvaluated > 0 {
				batch = float64(v.RowsBatched) / float64(v.RunsEvaluated)
			}
			fmt.Printf("vectorized %s scale=%d: %.1fµs vs %.1fµs scalar (%.2fx, %d runs over %d rows, %.1f rows/run)\n",
				v.Name, v.Scale, float64(v.NsPerOp)/1e3, float64(v.NsPerOpScalar)/1e3,
				v.Speedup, v.RunsEvaluated, v.RowsBatched, batch)
		}
		for _, p := range rep.MetricsOverhead {
			fmt.Printf("metrics overhead %s scale=%d: instrumented %.1fµs vs no-op %.1fµs (%+.1f%%)\n",
				p.Query, p.Scale, float64(p.InstrumentedNsPerOp)/1e3, float64(p.NoopNsPerOp)/1e3, p.OverheadPct)
		}
		if cs := rep.ColdStart; cs != nil {
			for _, c := range cs.Cases {
				fmt.Printf("cold start %s scale=%d: open %.1fµs (%d segment reads), first query %.1fµs, resident %d B (budget %d)\n",
					c.Mode, cs.Scale, float64(c.OpenNsPerOp)/1e3, c.OpenSegmentReads,
					float64(c.FirstQueryNsPerOp)/1e3, c.ResidentBytes, c.BudgetBytes)
			}
			fmt.Printf("cold start scale=%d: lazy open %.1fx faster than eager (%d chunks, %d segment bytes)\n",
				cs.Scale, cs.OpenSpeedup, cs.Chunks, cs.SegmentBytes)
		}
		if *baseline != "" {
			base, err := bench.ReadReport(*baseline)
			if err != nil {
				fatal(err)
			}
			violations := bench.CompareReports(rep, base, *regressFactor)
			if len(violations) > 0 {
				fmt.Fprintf(os.Stderr, "cohana-bench: %d regressions vs %s (factor %.1f):\n", len(violations), *baseline, *regressFactor)
				for _, v := range violations {
					fmt.Fprintln(os.Stderr, "  "+v)
				}
				return 1
			}
			fmt.Printf("no regressions vs %s (factor %.1f)\n", *baseline, *regressFactor)
		}
		return 0
	}
	w := os.Stdout

	figRun := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fatal(fmt.Errorf("figure %s: %w", name, err))
		}
	}
	sel := strings.ToLower(*fig)
	if sel == "verify" || sel == "all" {
		fmt.Fprintln(w, "Cross-scheme verification (all schemes must agree before timing):")
		figRun("verify", func() error { return bench.VerifySchemes(w, wl) })
		fmt.Fprintln(w)
	}
	want := func(f string) bool { return sel == "all" || sel == f }
	if want("6") {
		figRun("6", func() error { return bench.Figure6(w, wl, opts) })
	}
	if want("7") {
		figRun("7", func() error { return bench.Figure7(w, wl, opts) })
	}
	if want("8") {
		figRun("8", func() error { return bench.Figure8(w, wl, opts) })
	}
	if want("9") {
		figRun("9", func() error { return bench.Figure9(w, wl, opts) })
	}
	if want("10") {
		figRun("10", func() error { return bench.Figure10(w, wl, opts) })
	}
	if want("11") {
		figRun("11", func() error { return bench.Figure11(w, wl, opts) })
	}
	return 0
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// Accept 16K / 1M suffixes for chunk sizes.
		mult := 1
		switch {
		case strings.HasSuffix(strings.ToUpper(part), "K"):
			mult = 1 << 10
			part = part[:len(part)-1]
		case strings.HasSuffix(strings.ToUpper(part), "M"):
			mult = 1 << 20
			part = part[:len(part)-1]
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cohana-bench:", err)
	os.Exit(1)
}
