// Command cohana-bench regenerates the paper's evaluation figures
// (Section 5) as printed tables: COHANA's chunk-size sensitivity (Figures 6
// and 7), the birth/age selection sweeps (Figures 8 and 9), preprocessing
// cost (Figure 10), and the five-scheme comparative study (Figure 11).
//
// Usage:
//
//	cohana-bench -fig all -scales 1,2,4 -users 300
//	cohana-bench -fig 11 -scales 1,2,4,8 -max-baseline-scale 4
//	cohana-bench -json perf.json -scales 1,2,4
//
// Numbers are machine-local; the reproduction target is the shape of each
// figure (see EXPERIMENTS.md for the expected trends and a recorded run).
// With -json, the printed figures are replaced by a machine-readable perf
// report (ns/op and rows/s for Q1-Q4 per scale) written to the given path,
// so the performance trajectory can be tracked across PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10, 11, verify or all")
	users := flag.Int("users", 300, "users at scale 1 (paper: 57077)")
	seed := flag.Int64("seed", 1, "generator seed")
	scales := flag.String("scales", "1,2,4", "comma-separated scale factors (paper: 1..64)")
	chunks := flag.String("chunks", "", "comma-separated chunk sizes for figures 6-7 (default 1K,4K,16K,64K)")
	repeats := flag.Int("repeats", 3, "runs averaged per measurement (paper: 5)")
	maxBaseline := flag.Int("max-baseline-scale", 0, "skip SQL/MV baselines above this scale (0 = never)")
	jsonOut := flag.String("json", "", "write a machine-readable perf report (ns/op, rows/s per query) to this path instead of printing figures")
	flag.Parse()

	opts := bench.FigureOptions{Repeats: *repeats, MaxBaselineScale: *maxBaseline}
	var err error
	if opts.Scales, err = parseInts(*scales); err != nil {
		fatal(err)
	}
	if *chunks != "" {
		if opts.ChunkSizes, err = parseInts(*chunks); err != nil {
			fatal(err)
		}
	}
	wl := bench.NewWorkload(*users, *seed)
	if *jsonOut != "" {
		if err := bench.WriteJSONReport(*jsonOut, wl, opts); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote perf report to %s\n", *jsonOut)
		return
	}
	w := os.Stdout

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fatal(fmt.Errorf("figure %s: %w", name, err))
		}
	}
	sel := strings.ToLower(*fig)
	if sel == "verify" || sel == "all" {
		fmt.Fprintln(w, "Cross-scheme verification (all schemes must agree before timing):")
		run("verify", func() error { return bench.VerifySchemes(w, wl) })
		fmt.Fprintln(w)
	}
	want := func(f string) bool { return sel == "all" || sel == f }
	if want("6") {
		run("6", func() error { return bench.Figure6(w, wl, opts) })
	}
	if want("7") {
		run("7", func() error { return bench.Figure7(w, wl, opts) })
	}
	if want("8") {
		run("8", func() error { return bench.Figure8(w, wl, opts) })
	}
	if want("9") {
		run("9", func() error { return bench.Figure9(w, wl, opts) })
	}
	if want("10") {
		run("10", func() error { return bench.Figure10(w, wl, opts) })
	}
	if want("11") {
		run("11", func() error { return bench.Figure11(w, wl, opts) })
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// Accept 16K / 1M suffixes for chunk sizes.
		mult := 1
		switch {
		case strings.HasSuffix(strings.ToUpper(part), "K"):
			mult = 1 << 10
			part = part[:len(part)-1]
		case strings.HasSuffix(strings.ToUpper(part), "M"):
			mult = 1 << 20
			part = part[:len(part)-1]
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n*mult)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cohana-bench:", err)
	os.Exit(1)
}
