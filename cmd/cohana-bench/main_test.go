package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"1,2,4", []int{1, 2, 4}},
		{"16K", []int{16 << 10}},
		{"1M,256K", []int{1 << 20, 256 << 10}},
		{" 8 , 16 ", []int{8, 16}},
		{"1k", []int{1 << 10}}, // lower-case suffix
	}
	for _, c := range cases {
		got, err := parseInts(c.in)
		if err != nil {
			t.Errorf("parseInts(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", ",", "abc", "1,x"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) succeeded", bad)
		}
	}
}
