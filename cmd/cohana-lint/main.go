// Command cohana-lint runs the cohana static-analysis suite (internal/lint):
// six analyzers that machine-check the engine's concurrency, durability and
// observability invariants.
//
// It runs in two modes:
//
//   - Standalone, over package patterns (the CI gate and the local loop):
//
//     go run ./cmd/cohana-lint ./...
//
//   - As a `go vet` tool, speaking the unpublished vet command-line protocol
//     (the -V=full / -flags handshake plus per-package vet.cfg files, with
//     package facts shuttled through vetx files):
//
//     go build -o /tmp/cohana-lint ./cmd/cohana-lint
//     go vet -vettool=/tmp/cohana-lint ./...
//
// Exit status: 0 clean, 1 usage/internal error, 2 findings (matching the
// x/tools unitchecker convention).
//
// Deliberate exceptions are inline in the source:
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above. Directives without a reason do
// not suppress.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

const version = "v1"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The vet protocol handshakes before any real work: `tool -V=full`
	// must print "<name> version <x>" and `tool -flags` a JSON array of
	// supported analyzer flags (none beyond the suite toggle).
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Printf("cohana-lint version %s\n", version)
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("cohana-lint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var keep []*analysis.Analyzer
		want := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		for _, a := range analyzers {
			if want[a.Name] {
				keep = append(keep, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "cohana-lint: unknown analyzer %q\n", n)
			return 1
		}
		analyzers = keep
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], analyzers)
	}
	return standalone(rest, analyzers)
}

// standalone lints package patterns (default ./...) of the module rooted at
// the working directory.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.LintPackages(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cohana-lint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cohana-lint: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

// vetConfig mirrors cmd/go's vet.cfg JSON (the fields this tool consumes).
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// unitcheck analyzes one package described by a vet.cfg, in the protocol
// `go vet -vettool` speaks: read upstream facts from the vetx files in
// PackageVetx, write this package's facts to VetxOutput, print diagnostics
// to stderr and exit 2 when any survive suppression.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cohana-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cohana-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Facts must exist for every vetted package — cmd/go caches the vetx
	// output — but only module packages are worth parsing: every analyzer
	// scopes under the module path, so stdlib and test-binary units write
	// empty facts and return immediately.
	path := cfg.ImportPath
	if !strings.HasPrefix(path, lint.Module) || strings.HasSuffix(path, ".test") {
		return writeVetx(cfg.VetxOutput, make(lint.FactStore), path)
	}

	fset := token.NewFileSet()
	pkg := &lint.Package{Path: path, Dir: cfg.Dir}
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cohana-lint: parsing %s: %v\n", name, err)
			return 1
		}
		pkg.Files = append(pkg.Files, file)
	}

	store := readUpstreamFacts(cfg)
	findings, err := lint.RunPackage(fset, pkg, analyzers, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cohana-lint: %v\n", err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput, store, path); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// readUpstreamFacts loads the vetx fact files of the package's dependencies.
func readUpstreamFacts(cfg vetConfig) lint.FactStore {
	store := make(lint.FactStore)
	for depPath, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // missing facts degrade to "no upstream declarations"
		}
		var m map[string]json.RawMessage
		if json.Unmarshal(data, &m) == nil && len(m) > 0 {
			store[depPath] = m
		}
	}
	return store
}

// writeVetx persists the facts this package exported (JSON, one object
// keyed by analyzer). An empty object still gets written: cmd/go requires
// the output file to exist.
func writeVetx(path string, store lint.FactStore, pkgPath string) int {
	if path == "" {
		return 0
	}
	facts := store[pkgPath]
	if facts == nil {
		facts = make(map[string]json.RawMessage)
	}
	buf, err := json.Marshal(facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cohana-lint: encoding facts: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "cohana-lint: %v\n", err)
		return 1
	}
	return 0
}
