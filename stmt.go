package cohana

import (
	"context"
	"fmt"

	"repro/internal/plan"
)

// Stmt is a prepared statement: one query text carried through the full
// front end — parse, validate, optimize, and (lazily, per shard) compile —
// exactly once, with executions paying only binding lookups plus the scan.
// Preparation goes through the engine's plan cache, so preparing the same
// text twice (or executing unprepared text that was prepared before)
// shares one compiled plan.
//
// A Stmt is safe for concurrent use. Each execution runs against a fresh
// engine snapshot, so prepared statements observe appends and compactions
// exactly as ad-hoc queries do; a compaction merely re-binds the changed
// shard's compiled form on the next execution.
type Stmt struct {
	eng *Engine
	src string
	p   *plan.CachedPlan
}

// Prepare compiles src — a cohort query or a WITH-prefixed mixed query —
// into a reusable statement. All static errors (syntax, unknown columns,
// SELECT list attributes outside COHORT BY) surface here, not at execution.
func (e *Engine) Prepare(src string) (*Stmt, error) {
	p, err := e.planCache.Prepare(src, e.live.Schema())
	if err != nil {
		return nil, err
	}
	cs := p.Stmt.Cohort
	if p.Stmt.Mixed != nil {
		cs = p.Stmt.Mixed.Inner
	}
	if err := validateSelectList(cs); err != nil {
		return nil, err
	}
	return &Stmt{eng: e, src: src, p: p}, nil
}

// IsMixed reports whether the statement is a mixed (WITH-prefixed) query,
// answered by ExecuteMixed rather than Execute.
func (s *Stmt) IsMixed() bool { return s.p.Stmt.Mixed != nil }

// Execute runs the prepared cohort query against the engine's current state.
func (s *Stmt) Execute() (*Result, error) {
	return s.ExecuteContext(context.Background())
}

// ExecuteContext is Execute with cancellation: when ctx is done the shard
// and chunk fan-outs stop early and ctx's error is returned.
func (s *Stmt) ExecuteContext(ctx context.Context) (*Result, error) {
	if s.IsMixed() {
		return nil, fmt.Errorf("cohana: mixed statement passed to Execute; use ExecuteMixed")
	}
	return s.eng.Snapshot().executePlan(ctx, s.p)
}

// ExecuteMixed runs the prepared mixed query: the inner cohort query on the
// engine, then the outer SQL over its buckets.
func (s *Stmt) ExecuteMixed() (*MixedResult, error) {
	return s.ExecuteMixedContext(context.Background())
}

// ExecuteMixedContext is ExecuteMixed with cancellation.
func (s *Stmt) ExecuteMixedContext(ctx context.Context) (*MixedResult, error) {
	if !s.IsMixed() {
		return nil, fmt.Errorf("cohana: plain cohort statement passed to ExecuteMixed; use Execute")
	}
	inner, err := s.eng.Snapshot().executePlan(ctx, s.p)
	if err != nil {
		return nil, err
	}
	return runOuter(s.p.Stmt.Mixed, inner)
}

// Explain reports the statement's optimized plan and pruning outcome
// against the engine's current state, without executing it.
func (s *Stmt) Explain() (string, error) {
	return s.eng.Explain(s.src)
}

// ExplainAnalyze executes the statement with tracing and reports the
// optimized plan followed by the measured per-shard / per-chunk breakdown
// (see Engine.ExplainAnalyze).
func (s *Stmt) ExplainAnalyze(ctx context.Context) (string, error) {
	return s.eng.ExplainAnalyze(ctx, s.src)
}

// Fingerprint condenses which shards the statement could read — and their
// generations — into a cache-key component (see Snapshot.Fingerprint).
func (s *Stmt) Fingerprint() string {
	return s.eng.Snapshot().Fingerprint(s.src)
}

// PlanCacheStats snapshots the effectiveness counters of the engine's
// compiled-plan cache.
func (e *Engine) PlanCacheStats() PlanCacheStats { return e.planCache.Stats() }
