package cohana

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func paperEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := NewEngine(PaperTable1(), Options{ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestQueryExample1(t *testing.T) {
	eng := paperEngine(t)
	res, err := eng.Query(`
		SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
		FROM D
		BIRTH FROM action = "launch" AND role = "dwarf"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows:\n%s", res)
	}
	want := map[int64]float64{1: 50, 2: 100, 3: 50}
	for _, r := range res.Rows {
		if r.Cohort[0] != "Australia" || r.Size != 1 || r.Aggs[0] != want[r.Age] {
			t.Errorf("row %+v", r)
		}
	}
	if res.AggNames[0] != "spent" {
		t.Errorf("agg name = %q", res.AggNames[0])
	}
}

func TestQueryValidatesSelectList(t *testing.T) {
	eng := paperEngine(t)
	_, err := eng.Query(`SELECT role, Count() FROM D BIRTH FROM action = "launch" COHORT BY country`)
	if err == nil || !strings.Contains(err.Error(), "COHORT BY") {
		t.Errorf("select of non-cohort attribute accepted: %v", err)
	}
}

func TestQueryRejectsMixed(t *testing.T) {
	eng := paperEngine(t)
	src := `WITH c AS (SELECT country, Count() FROM D BIRTH FROM action = "launch" COHORT BY country)
		SELECT country FROM c`
	if _, err := eng.Query(src); err == nil {
		t.Error("Query accepted a mixed statement")
	}
	if _, err := eng.QueryMixed(`SELECT country, Count() FROM D BIRTH FROM action = "launch" COHORT BY country`); err == nil {
		t.Error("QueryMixed accepted a plain statement")
	}
}

func TestQueryMixed(t *testing.T) {
	eng := paperEngine(t)
	res, err := eng.QueryMixed(`
		WITH cohorts AS (
			SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
			FROM D BIRTH FROM action = "launch"
			COHORT BY country
		)
		SELECT country, AGE, spent FROM cohorts
		WHERE country IN ["Australia", "China"] AND spent > 0
		ORDER BY spent DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 || res.Cols[0] != "country" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows:\n%s", res)
	}
	// Australia's age-2 bucket (100 gold) sorts first.
	if res.Rows[0][0] != "Australia" || res.Rows[0][2] != "100" {
		t.Errorf("first row = %v", res.Rows[0])
	}
	// String output is a rendered table.
	if !strings.Contains(res.String(), "spent") {
		t.Errorf("render:\n%s", res)
	}
}

func TestQueryMixedErrors(t *testing.T) {
	eng := paperEngine(t)
	cases := []string{
		// Unknown outer column.
		`WITH c AS (SELECT country, Count() FROM D BIRTH FROM action = "launch" COHORT BY country)
		 SELECT bogus FROM c`,
		// Unknown column in WHERE.
		`WITH c AS (SELECT country, Count() FROM D BIRTH FROM action = "launch" COHORT BY country)
		 SELECT country FROM c WHERE bogus = 1`,
		// Type confusion: string vs number.
		`WITH c AS (SELECT country, Count() FROM D BIRTH FROM action = "launch" COHORT BY country)
		 SELECT country FROM c WHERE country > 3`,
		// Birth() leaking into the outer query.
		`WITH c AS (SELECT country, Count() FROM D BIRTH FROM action = "launch" COHORT BY country)
		 SELECT country FROM c WHERE Birth(country) = "x"`,
	}
	for _, src := range cases {
		if _, err := eng.QueryMixed(src); err == nil {
			t.Errorf("accepted:\n%s", src)
		}
	}
}

func TestSaveOpen(t *testing.T) {
	eng := paperEngine(t)
	path := filepath.Join(t.TempDir(), "t.cohana")
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Query(`SELECT country, UserCount() FROM D BIRTH FROM action = "launch" COHORT BY country`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := re.Query(`SELECT country, UserCount() FROM D BIRTH FROM action = "launch" COHORT BY country`)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("reopened engine differs: %s", d)
	}
}

func TestStats(t *testing.T) {
	eng := paperEngine(t)
	s := eng.Stats()
	if s.Rows != 10 || s.Users != 3 || s.Chunks < 1 || s.EncodedSize <= 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNewEngineSortsUnsortedInput(t *testing.T) {
	tbl := NewActivityTable(PaperSchema())
	// Append in reverse-ish order.
	if err := tbl.Append("b", int64(100), "launch", "r", "c", int64(0)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append("a", int64(50), "launch", "r", "c", int64(0)); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Users != 2 {
		t.Errorf("users = %d", eng.Stats().Users)
	}
}

func TestNewEngineRejectsPKViolation(t *testing.T) {
	tbl := NewActivityTable(PaperSchema())
	for i := 0; i < 2; i++ {
		if err := tbl.Append("a", int64(50), "launch", "r", "c", int64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewEngine(tbl, Options{}); err == nil {
		t.Error("duplicate primary key accepted")
	}
}

func TestGeneratedWorkloadEndToEnd(t *testing.T) {
	tbl := Generate(GenConfig{Users: 80, Seed: 42})
	eng, err := NewEngine(tbl, Options{ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions
		BIRTH FROM action = "shop"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows from generated workload")
	}
	// Retention matrix via time cohorts.
	res2, err := eng.Query(`
		SELECT COHORTSIZE, AGE, UserCount()
		FROM GameActions BIRTH FROM action = "launch"
		COHORT BY time(week)`)
	if err != nil {
		t.Fatal(err)
	}
	m := res2.Pivot(0)
	if len(m.Cohorts) == 0 || len(m.Ages) == 0 {
		t.Fatalf("retention matrix empty:\n%s", res2)
	}
	var buf bytes.Buffer
	if err := m.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cohort") {
		t.Errorf("matrix render:\n%s", buf.String())
	}
}
