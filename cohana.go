// Package cohana is the public API of this repository: a cohort query
// engine reproducing "Cohort Query Processing" (Jiang, Cai, Chen, Jagadish,
// Ooi, Tan, Tung — VLDB 2016).
//
// The engine stores activity tables (user, time, action + dimensions and
// measures) in a compressed, chunked, columnar format and evaluates cohort
// queries written in the paper's extended SQL:
//
//	eng, _ := cohana.NewEngine(table, cohana.Options{})
//	res, _ := eng.Query(`
//	    SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
//	    FROM GameActions
//	    BIRTH FROM action = "launch" AND role = "dwarf"
//	    AGE ACTIVITIES IN action = "shop"
//	    COHORT BY country`)
//	fmt.Print(res)
//
// Mixed queries (Section 3.5) wrap a cohort sub-query in a plain SQL outer
// query:
//
//	WITH cohorts AS (SELECT ... COHORT BY country)
//	SELECT country, AGE, spent FROM cohorts
//	WHERE country IN ["Australia", "China"] ORDER BY spent DESC LIMIT 10
//
// Activity tables come from cohana.ReadCSV, the cohana.Generate synthetic
// workload, or row-by-row loading with cohana.NewActivityTable + Append.
package cohana

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Re-exported building blocks. The internal packages carry the
// implementation; these aliases form the supported public surface.
type (
	// Schema describes an activity table's columns.
	Schema = activity.Schema
	// Col is one column definition.
	Col = activity.Col
	// ActivityTable is an uncompressed, row-appendable activity table.
	ActivityTable = activity.Table
	// Result is a cohort query result relation.
	Result = cohort.Result
	// Row is one (cohort, age) bucket of a Result.
	Row = cohort.Row
	// Query is the programmatic (parsed) form of a cohort query.
	Query = cohort.Query
	// CohortKey is one COHORT BY attribute.
	CohortKey = cohort.CohortKey
	// AggSpec is one aggregate of the SELECT list.
	AggSpec = cohort.AggSpec
	// GenConfig parameterizes the synthetic workload generator.
	GenConfig = gen.Config
	// Pool is a bounded worker pool shared by concurrent query executions;
	// see Options.Pool.
	Pool = cohort.Pool
	// PlanCache is an LRU of compiled query plans keyed by normalized query
	// text; see Options.PlanCache.
	PlanCache = plan.Cache
	// PlanCacheStats snapshots plan-cache effectiveness counters.
	PlanCacheStats = plan.CacheStats
)

// NewPool starts a shared execution pool; workers <= 0 selects GOMAXPROCS.
// Close it when no engine routes queries through it anymore.
func NewPool(workers int) *Pool { return cohort.NewPool(workers) }

// NewPlanCache creates a compiled-plan cache holding at most capacity plans;
// 0 selects the default capacity, negative disables caching. Share one cache
// across engines serving the same table (e.g. per-request engines over one
// live table) via Options.PlanCache so repeat queries skip the
// parse → validate → optimize → compile front end.
func NewPlanCache(capacity int) *PlanCache { return plan.NewCache(capacity) }

// Column types.
const (
	TypeString = activity.TypeString
	TypeInt    = activity.TypeInt
	TypeTime   = activity.TypeTime
)

// Column roles.
const (
	KindUser    = activity.KindUser
	KindTime    = activity.KindTime
	KindAction  = activity.KindAction
	KindDim     = activity.KindDim
	KindMeasure = activity.KindMeasure
)

// Aggregate functions for programmatic queries.
const (
	Sum       = cohort.Sum
	Count     = cohort.Count
	Avg       = cohort.Avg
	Min       = cohort.Min
	Max       = cohort.Max
	UserCount = cohort.UserCount
)

// Age and time-bin units.
const (
	Day   = cohort.Day
	Week  = cohort.Week
	Month = cohort.Month
)

// NewSchema validates a column list into a Schema.
func NewSchema(cols []Col) (*Schema, error) { return activity.NewSchema(cols) }

// GameSchema returns the paper's mobile-game schema (player, time, action,
// country, city, role, session, gold).
func GameSchema() *Schema { return activity.GameSchema() }

// PaperSchema returns the schema of the paper's Table 1 example.
func PaperSchema() *Schema { return activity.PaperSchema() }

// PaperTable1 returns the ten example tuples of the paper's Table 1.
func PaperTable1() *ActivityTable { return activity.PaperTable1() }

// NewActivityTable creates an empty activity table for schema. Append rows
// with (*ActivityTable).Append; NewEngine sorts and validates.
func NewActivityTable(schema *Schema) *ActivityTable { return activity.NewTable(schema) }

// ReadCSV loads an activity table whose header matches schema.
func ReadCSV(r io.Reader, schema *Schema) (*ActivityTable, error) {
	return activity.ReadCSV(r, schema)
}

// WriteCSV writes an activity table with a header row.
func WriteCSV(w io.Writer, t *ActivityTable) error { return activity.WriteCSV(w, t) }

// Generate synthesizes a game-activity workload with the shape of the
// paper's dataset (see internal/gen for the behavioral model).
func Generate(cfg GenConfig) *ActivityTable { return gen.Generate(cfg) }

// Options configures an Engine.
type Options struct {
	// ChunkSize is the target activity tuples per storage chunk; 0 selects
	// the paper's 256K default.
	ChunkSize int
	// Shards is the number of user-hash partitions of the table. Each shard
	// owns its own chunks, delta store, journal and compaction lifecycle,
	// and queries scatter-gather over the shards; results are bit-identical
	// to an unsharded table. 0 or 1 keeps the single-shard layout (and the
	// legacy single-file format on Save); opening an existing table with a
	// differing count reshards it.
	Shards int
	// Parallelism is the number of chunks processed concurrently: 0 or 1
	// single-threaded (the paper's setting), negative for GOMAXPROCS.
	Parallelism int
	// Pool optionally routes chunk work through a shared bounded worker
	// pool, so several engines (or concurrent queries on one engine) share
	// one set of workers. The query server uses this to bound total
	// chunk-scan concurrency across requests.
	Pool *Pool
	// Journal, when non-empty, makes Append durable: every appended row is
	// synced to this append-only CSV file before acknowledgement, and the
	// file is replayed on NewEngine/Open so a restart loses nothing.
	Journal string
	// AutoCompactRows triggers background compaction of the live delta once
	// it holds at least this many rows; 0 disables automatic compaction
	// (explicit Compact calls still seal the delta).
	AutoCompactRows int
	// PlanCache, when non-nil, is the compiled-plan cache this engine
	// prepares and executes query text through. Nil gives the engine a
	// private cache of default capacity; callers who construct engines per
	// request over one shared table (as the query server does) should pass
	// one shared cache so plans survive across engines. Shard compactions
	// invalidate per shard via binding identity; a table reload requires a
	// fresh cache (or Reset).
	PlanCache *PlanCache
	// EagerLoad makes Open decode every chunk segment up front, the
	// pre-lazy behavior. The default opens tables lazily: Open reads only
	// the manifest, and chunk payloads load on first touch through the
	// process-wide chunk cache, so cold start is O(manifest) and resident
	// memory is bounded by the cache budget rather than the table size.
	EagerLoad bool
	// ChunkCacheBytes, when positive, sets the process-wide chunk cache
	// budget (see storage.DefaultChunkCache) before the table opens. 0
	// leaves the current budget untouched (unbounded unless someone set
	// one); it is a process-wide knob, shared by every lazily opened table.
	ChunkCacheBytes int64
}

func (o Options) ingestConfig() ingest.Config {
	return ingest.Config{
		JournalPath:     o.Journal,
		AutoCompactRows: o.AutoCompactRows,
		ChunkSize:       o.ChunkSize,
		Shards:          o.Shards,
	}
}

func (o Options) planCacheOrNew() *plan.Cache {
	if o.PlanCache != nil {
		return o.PlanCache
	}
	return plan.NewCache(0)
}

// Engine is a COHANA instance over one live activity table, partitioned by
// user hash into one or more shards. Each shard pairs a sealed, compressed
// tier with an uncompressed delta that Append feeds; queries scatter-gather
// over the shards and union both tiers, so appended rows are visible
// immediately. Compact seals the dirty shards' deltas into fresh compressed
// chunks, shard by shard, concurrently.
type Engine struct {
	live *ingest.Table
	opts Options
	// planCache holds compiled plans for query text served by this engine
	// (Options.PlanCache, or a private default-capacity cache).
	planCache *plan.Cache
	// initErr records a journal-open failure from EngineForTable, whose
	// signature cannot return it; write operations fail with it rather than
	// silently losing the durability the caller asked for.
	initErr error
}

// NewEngine compresses t into the COHANA storage format, partitioned into
// Options.Shards user-hash shards (per-shard builds run concurrently). The
// table is sorted by (user, time, action) if needed; a primary-key violation
// is an error.
func NewEngine(t *ActivityTable, opts Options) (*Engine, error) {
	if !t.Sorted() {
		if err := t.SortByPK(); err != nil {
			return nil, err
		}
	}
	st, err := storage.BuildSharded(t, opts.Shards, storage.Options{ChunkSize: opts.ChunkSize})
	if err != nil {
		return nil, err
	}
	cfg := opts.ingestConfig()
	cfg.Shards = 0 // already built at the requested count; no reshard pass
	live, err := ingest.OpenSharded(st, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{live: live, opts: opts, planCache: opts.planCacheOrNew()}, nil
}

// Open loads an engine from a file written by Save — either a legacy
// single-table .cohana file (served as a 1-shard table) or a shard manifest
// with its segments — replaying the journal (if Options.Journal is set) into
// the live deltas. A non-zero Options.Shards differing from the stored
// count reshards the table at open.
func Open(path string, opts Options) (*Engine, error) {
	if opts.ChunkCacheBytes > 0 {
		storage.DefaultChunkCache().SetBudget(opts.ChunkCacheBytes)
	}
	st, err := storage.ReadShardedWith(path, storage.ReadOptions{Lazy: !opts.EagerLoad})
	if err != nil {
		return nil, err
	}
	live, err := ingest.OpenSharded(st, opts.ingestConfig())
	if err != nil {
		return nil, err
	}
	return &Engine{live: live, opts: opts, planCache: opts.planCacheOrNew()}, nil
}

// EngineForTable wraps an already-compressed storage table in an Engine.
// The table is shared, not copied: compressed tables are immutable, so any
// number of engines (and concurrent queries) may serve from one table. Rows
// appended through this engine live in its private delta.
func EngineForTable(tbl *storage.Table, opts Options) *Engine {
	live, err := ingest.Open(tbl, opts.ingestConfig())
	if err != nil {
		// Only a journal can fail to open. Queries still serve from the
		// sealed tier, but writes must not pretend to be durable: Append,
		// Compact and Save return this error.
		live, _ = ingest.Open(tbl, ingest.Config{})
		return &Engine{live: live, opts: opts, planCache: opts.planCacheOrNew(), initErr: err}
	}
	return &Engine{live: live, opts: opts, planCache: opts.planCacheOrNew()}
}

// EngineForIngest wraps a live ingest-managed table in an Engine. The query
// server's catalog uses this so every request serves from one shared live
// table — appends, compactions and queries all observe the same state.
func EngineForIngest(lt *ingest.Table, opts Options) *Engine {
	return &Engine{live: lt, opts: opts, planCache: opts.planCacheOrNew()}
}

// Save persists the compressed table: the legacy single-file format for
// 1-shard engines, a shard manifest plus per-shard segment files otherwise.
// A non-empty delta is compacted first so the written files contain every
// appended row.
func (e *Engine) Save(path string) error {
	if e.initErr != nil {
		return e.initErr
	}
	if e.live.DeltaRows() > 0 {
		if err := e.live.Compact(); err != nil {
			return err
		}
	}
	return storage.WriteShardedFile(path, e.live.SealedSharded())
}

// Schema returns the engine's activity schema.
func (e *Engine) Schema() *Schema { return e.live.Schema() }

// Append appends one activity row (values in schema order, with the same
// coercions as ActivityTable.Append) to the live delta. The row is visible
// to queries immediately and durable when Options.Journal is set. A row
// violating the (user, time, action) primary key is rejected.
func (e *Engine) Append(values ...any) error {
	if e.initErr != nil {
		return e.initErr
	}
	row, err := ingest.RowFromValues(e.live.Schema(), values...)
	if err != nil {
		return err
	}
	return e.live.Append([]ingest.Row{row})
}

// Compact seals the live delta into fresh compressed chunks, merging it with
// the sealed tier in (user, time, action) order. Queries before, during and
// after compaction return identical results.
func (e *Engine) Compact() error {
	if e.initErr != nil {
		return e.initErr
	}
	return e.live.Compact()
}

// CompactContext is Compact with cancellation: when ctx is done, shards not
// yet compacting are skipped and ctx's error is returned; shards already
// sealing finish (each shard seal is an atomic commit).
func (e *Engine) CompactContext(ctx context.Context) error {
	if e.initErr != nil {
		return e.initErr
	}
	return e.live.CompactContext(ctx)
}

// DeltaRows returns the number of appended rows not yet compacted.
func (e *Engine) DeltaRows() int { return e.live.DeltaRows() }

// Close releases the journal and waits for background compaction. Engines
// without a journal or auto-compaction need not be closed.
func (e *Engine) Close() error { return e.live.Close() }

// Stats describes the stored table.
type Stats struct {
	Rows        int
	Users       int
	Chunks      int
	ChunkSize   int
	EncodedSize int // serialized bytes (the Figure 7 storage metric)
	DeltaRows   int // appended rows awaiting compaction
	Shards      int // user-hash partition count
}

// Stats returns storage statistics for the sealed tier plus the live delta
// row count, aggregated across shards.
func (e *Engine) Stats() Stats {
	sealed := e.live.SealedSharded()
	s := Stats{
		Rows:        sealed.NumRows(),
		Users:       sealed.NumUsers(),
		Chunks:      sealed.NumChunks(),
		ChunkSize:   sealed.ChunkSize(),
		EncodedSize: sealed.EncodedSize(),
		Shards:      sealed.NumShards(),
	}
	s.DeltaRows = e.live.DeltaRows()
	s.Rows += s.DeltaRows
	return s
}

// ShardStats returns the per-shard ingestion breakdown.
func (e *Engine) ShardStats() []ingest.ShardStats { return e.live.Stats().PerShard }

// Snapshot pins one consistent set of per-shard views for query execution.
// Every query run through a snapshot sees exactly the state captured at
// Snapshot() time — appends and compactions that land afterwards are
// invisible to it — which is what lets the query server compute a cache
// fingerprint and execute against the very same state the fingerprint
// describes.
type Snapshot struct {
	eng   *Engine
	views []ingest.View
}

// Snapshot captures the current state of every shard. Snapshots are cheap
// (immutable views are shared, not copied) and need no release.
func (e *Engine) Snapshot() *Snapshot {
	return &Snapshot{eng: e, views: e.live.Views()}
}

// shardInputs adapts the pinned views as scatter-gather input.
func (s *Snapshot) shardInputs() []plan.ShardInput {
	shards := make([]plan.ShardInput, len(s.views))
	for i, v := range s.views {
		shards[i] = plan.ShardInput{
			Sealed: v.Sealed,
			Delta:  v.Delta,
			Union:  v.Union,
		}
	}
	return shards
}

// ExecuteContext runs a programmatic cohort query against the snapshot.
func (s *Snapshot) ExecuteContext(ctx context.Context, q *Query) (*Result, error) {
	return plan.ExecuteShards(q, s.shardInputs(), plan.ExecOptions{
		Parallelism: s.eng.opts.Parallelism,
		Pool:        s.eng.opts.Pool,
		Ctx:         ctx,
	})
}

// QueryContext parses and runs a cohort query against the snapshot. The
// parse → validate → optimize → compile front end goes through the engine's
// plan cache, so repeat query texts skip straight to execution.
func (s *Snapshot) QueryContext(ctx context.Context, src string) (*Result, error) {
	p, err := s.eng.planCache.Prepare(src, s.eng.live.Schema())
	if err != nil {
		return nil, err
	}
	if p.Stmt.Mixed != nil {
		return nil, fmt.Errorf("cohana: mixed query passed to Query; use QueryMixed")
	}
	if err := validateSelectList(p.Stmt.Cohort); err != nil {
		return nil, err
	}
	return s.executePlan(ctx, p)
}

// executePlan runs a cached plan over the snapshot's pinned shard views,
// re-binding only shards whose sealed tier changed since the plan last ran.
func (s *Snapshot) executePlan(ctx context.Context, p *plan.CachedPlan) (*Result, error) {
	return plan.ExecuteCached(s.eng.planCache, p, s.shardInputs(), plan.ExecOptions{
		Parallelism: s.eng.opts.Parallelism,
		Pool:        s.eng.opts.Pool,
		Ctx:         ctx,
	})
}

// Fingerprint condenses which shards src could possibly read — and those
// shards' generations — into a cache-key component. Two calls return equal
// strings exactly when the table state a query execution would observe is
// equal *for this query*: a shard whose chunks all prune for src and whose
// delta holds no row that could affect it is left out, so appends to that
// shard do not disturb the fingerprint and cached results for src stay
// servable. Any analysis failure (parse error, unknown column — errors the
// execution will surface anyway) falls back to the full generation vector,
// which is always sound.
func (s *Snapshot) Fingerprint(src string) string {
	full := func() string {
		var sb strings.Builder
		sb.WriteString("all")
		for _, v := range s.views {
			fmt.Fprintf(&sb, ";%d", v.Gen)
		}
		return sb.String()
	}
	// The plan cache's front end covers parse + validate (+ optimize); on
	// repeat queries the fingerprint pays neither. The outer SQL of a mixed
	// query only ever sees the inner query's aggregated buckets, so
	// relevance is decided entirely by the inner cohort query — which is
	// exactly what CachedPlan.Query holds.
	p, err := s.eng.planCache.Prepare(src, s.eng.live.Schema())
	if err != nil {
		return full()
	}
	q := p.Query
	var sb strings.Builder
	sb.WriteString("rel")
	for i, v := range s.views {
		skip, err := plan.PruneMap(q, v.Sealed)
		if err != nil {
			return full()
		}
		sealedRelevant := false
		for _, sk := range skip {
			if !sk {
				sealedRelevant = true
				break
			}
		}
		if sealedRelevant || cohort.DeltaRelevant(q, s.eng.live.Schema(), v.Delta, v.DeltaActions, v.Union) {
			fmt.Fprintf(&sb, ";%d=%d", i, v.Gen)
		}
	}
	return sb.String()
}

// validateSelectList checks that plain attributes in the SELECT list are
// cohort attributes: the output relation of γc only carries (L, age, size,
// aggregates). It is statement-level validation — Prepare runs it once and
// executions of a prepared statement skip it.
func validateSelectList(stmt *parser.CohortStmt) error {
	q := stmt.Query
	for _, item := range stmt.Select {
		if item.Kind != parser.KindAttr {
			continue
		}
		found := false
		for _, k := range q.CohortBy {
			if strings.EqualFold(k.Col, item.Name) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cohana: selected attribute %q is not in COHORT BY", item.Name)
		}
	}
	return nil
}

// Execute runs a programmatic cohort query, scatter-gathered over the
// table's shards, each sealed tier unioned with its live delta.
func (e *Engine) Execute(q *Query) (*Result, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation: when ctx is done the shard
// and chunk fan-outs stop early (releasing any shared pool workers) and
// ctx's error is returned. The HTTP server passes the request context so a
// disconnected client cancels its query instead of burning workers.
func (e *Engine) ExecuteContext(ctx context.Context, q *Query) (*Result, error) {
	return e.Snapshot().ExecuteContext(ctx, q)
}

// Query parses and runs a cohort query; mixed queries are answered via
// QueryMixed and return an error here.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query with cancellation (see ExecuteContext).
func (e *Engine) QueryContext(ctx context.Context, src string) (*Result, error) {
	return e.Snapshot().QueryContext(ctx, src)
}

// SelectTuples materializes σg(σb(D)) as global row indices over the sealed
// tier, exposing the tuple-level semantics of the two selection operators
// (Definitions 4-5). For sharded tables the indices are global over the
// shard-order concatenation of the sealed tiers. Rows still in the live
// delta are not covered; Compact first to include them.
func (e *Engine) SelectTuples(birthAction string, birthCond, ageCond expr.Expr) ([]int, error) {
	sealed := e.live.SealedSharded()
	var out []int
	offset := 0
	for i := 0; i < sealed.NumShards(); i++ {
		st := sealed.Shard(i)
		rows, err := cohort.SelectTuples(st, birthAction, birthCond, ageCond, cohort.Day)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			out = append(out, offset+r)
		}
		offset += st.NumRows()
	}
	return out, nil
}
