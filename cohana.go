// Package cohana is the public API of this repository: a cohort query
// engine reproducing "Cohort Query Processing" (Jiang, Cai, Chen, Jagadish,
// Ooi, Tan, Tung — VLDB 2016).
//
// The engine stores activity tables (user, time, action + dimensions and
// measures) in a compressed, chunked, columnar format and evaluates cohort
// queries written in the paper's extended SQL:
//
//	eng, _ := cohana.NewEngine(table, cohana.Options{})
//	res, _ := eng.Query(`
//	    SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
//	    FROM GameActions
//	    BIRTH FROM action = "launch" AND role = "dwarf"
//	    AGE ACTIVITIES IN action = "shop"
//	    COHORT BY country`)
//	fmt.Print(res)
//
// Mixed queries (Section 3.5) wrap a cohort sub-query in a plain SQL outer
// query:
//
//	WITH cohorts AS (SELECT ... COHORT BY country)
//	SELECT country, AGE, spent FROM cohorts
//	WHERE country IN ["Australia", "China"] ORDER BY spent DESC LIMIT 10
//
// Activity tables come from cohana.ReadCSV, the cohana.Generate synthetic
// workload, or row-by-row loading with cohana.NewActivityTable + Append.
package cohana

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Re-exported building blocks. The internal packages carry the
// implementation; these aliases form the supported public surface.
type (
	// Schema describes an activity table's columns.
	Schema = activity.Schema
	// Col is one column definition.
	Col = activity.Col
	// ActivityTable is an uncompressed, row-appendable activity table.
	ActivityTable = activity.Table
	// Result is a cohort query result relation.
	Result = cohort.Result
	// Row is one (cohort, age) bucket of a Result.
	Row = cohort.Row
	// Query is the programmatic (parsed) form of a cohort query.
	Query = cohort.Query
	// CohortKey is one COHORT BY attribute.
	CohortKey = cohort.CohortKey
	// AggSpec is one aggregate of the SELECT list.
	AggSpec = cohort.AggSpec
	// GenConfig parameterizes the synthetic workload generator.
	GenConfig = gen.Config
	// Pool is a bounded worker pool shared by concurrent query executions;
	// see Options.Pool.
	Pool = cohort.Pool
)

// NewPool starts a shared execution pool; workers <= 0 selects GOMAXPROCS.
// Close it when no engine routes queries through it anymore.
func NewPool(workers int) *Pool { return cohort.NewPool(workers) }

// Column types.
const (
	TypeString = activity.TypeString
	TypeInt    = activity.TypeInt
	TypeTime   = activity.TypeTime
)

// Column roles.
const (
	KindUser    = activity.KindUser
	KindTime    = activity.KindTime
	KindAction  = activity.KindAction
	KindDim     = activity.KindDim
	KindMeasure = activity.KindMeasure
)

// Aggregate functions for programmatic queries.
const (
	Sum       = cohort.Sum
	Count     = cohort.Count
	Avg       = cohort.Avg
	Min       = cohort.Min
	Max       = cohort.Max
	UserCount = cohort.UserCount
)

// Age and time-bin units.
const (
	Day   = cohort.Day
	Week  = cohort.Week
	Month = cohort.Month
)

// NewSchema validates a column list into a Schema.
func NewSchema(cols []Col) (*Schema, error) { return activity.NewSchema(cols) }

// GameSchema returns the paper's mobile-game schema (player, time, action,
// country, city, role, session, gold).
func GameSchema() *Schema { return activity.GameSchema() }

// PaperSchema returns the schema of the paper's Table 1 example.
func PaperSchema() *Schema { return activity.PaperSchema() }

// PaperTable1 returns the ten example tuples of the paper's Table 1.
func PaperTable1() *ActivityTable { return activity.PaperTable1() }

// NewActivityTable creates an empty activity table for schema. Append rows
// with (*ActivityTable).Append; NewEngine sorts and validates.
func NewActivityTable(schema *Schema) *ActivityTable { return activity.NewTable(schema) }

// ReadCSV loads an activity table whose header matches schema.
func ReadCSV(r io.Reader, schema *Schema) (*ActivityTable, error) {
	return activity.ReadCSV(r, schema)
}

// WriteCSV writes an activity table with a header row.
func WriteCSV(w io.Writer, t *ActivityTable) error { return activity.WriteCSV(w, t) }

// Generate synthesizes a game-activity workload with the shape of the
// paper's dataset (see internal/gen for the behavioral model).
func Generate(cfg GenConfig) *ActivityTable { return gen.Generate(cfg) }

// Options configures an Engine.
type Options struct {
	// ChunkSize is the target activity tuples per storage chunk; 0 selects
	// the paper's 256K default.
	ChunkSize int
	// Parallelism is the number of chunks processed concurrently: 0 or 1
	// single-threaded (the paper's setting), negative for GOMAXPROCS.
	Parallelism int
	// Pool optionally routes chunk work through a shared bounded worker
	// pool, so several engines (or concurrent queries on one engine) share
	// one set of workers. The query server uses this to bound total
	// chunk-scan concurrency across requests.
	Pool *Pool
}

// Engine is a COHANA instance over one compressed activity table.
type Engine struct {
	tbl  *storage.Table
	opts Options
}

// NewEngine compresses t into the COHANA storage format. The table is sorted
// by (user, time, action) if needed; a primary-key violation is an error.
func NewEngine(t *ActivityTable, opts Options) (*Engine, error) {
	if !t.Sorted() {
		if err := t.SortByPK(); err != nil {
			return nil, err
		}
	}
	st, err := storage.Build(t, storage.Options{ChunkSize: opts.ChunkSize})
	if err != nil {
		return nil, err
	}
	return &Engine{tbl: st, opts: opts}, nil
}

// Open loads an engine from a file written by Save.
func Open(path string, opts Options) (*Engine, error) {
	st, err := storage.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Engine{tbl: st, opts: opts}, nil
}

// EngineForTable wraps an already-compressed storage table in an Engine.
// The table is shared, not copied: compressed tables are immutable, so any
// number of engines (and concurrent queries) may serve from one table. The
// query server's catalog uses this to share tables across requests.
func EngineForTable(tbl *storage.Table, opts Options) *Engine {
	return &Engine{tbl: tbl, opts: opts}
}

// Save persists the compressed table.
func (e *Engine) Save(path string) error { return e.tbl.WriteFile(path) }

// Schema returns the engine's activity schema.
func (e *Engine) Schema() *Schema { return e.tbl.Schema() }

// Stats describes the stored table.
type Stats struct {
	Rows        int
	Users       int
	Chunks      int
	ChunkSize   int
	EncodedSize int // serialized bytes (the Figure 7 storage metric)
}

// Stats returns storage statistics.
func (e *Engine) Stats() Stats {
	return Stats{
		Rows:        e.tbl.NumRows(),
		Users:       e.tbl.NumUsers(),
		Chunks:      e.tbl.NumChunks(),
		ChunkSize:   e.tbl.ChunkSize(),
		EncodedSize: e.tbl.EncodedSize(),
	}
}

// Execute runs a programmatic cohort query.
func (e *Engine) Execute(q *Query) (*Result, error) {
	return plan.Execute(q, e.tbl, plan.ExecOptions{Parallelism: e.opts.Parallelism, Pool: e.opts.Pool})
}

// Query parses and runs a cohort query; mixed queries are answered via
// QueryMixed and return an error here.
func (e *Engine) Query(src string) (*Result, error) {
	stmt, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if stmt.Mixed != nil {
		return nil, fmt.Errorf("cohana: mixed query passed to Query; use QueryMixed")
	}
	return e.runCohortStmt(stmt.Cohort)
}

// runCohortStmt validates the SELECT list against the query and executes.
func (e *Engine) runCohortStmt(stmt *parser.CohortStmt) (*Result, error) {
	q := stmt.Query
	// Plain attributes in the SELECT list must be cohort attributes: the
	// output relation of γc only carries (L, age, size, aggregates).
	for _, item := range stmt.Select {
		if item.Kind != parser.KindAttr {
			continue
		}
		found := false
		for _, k := range q.CohortBy {
			if strings.EqualFold(k.Col, item.Name) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cohana: selected attribute %q is not in COHORT BY", item.Name)
		}
	}
	return e.Execute(q)
}

// SelectTuples materializes σg(σb(D)) as global row indices, exposing the
// tuple-level semantics of the two selection operators (Definitions 4-5).
func (e *Engine) SelectTuples(birthAction string, birthCond, ageCond expr.Expr) ([]int, error) {
	return cohort.SelectTuples(e.tbl, birthAction, birthCond, ageCond, cohort.Day)
}
