// Package cohana is the public API of this repository: a cohort query
// engine reproducing "Cohort Query Processing" (Jiang, Cai, Chen, Jagadish,
// Ooi, Tan, Tung — VLDB 2016).
//
// The engine stores activity tables (user, time, action + dimensions and
// measures) in a compressed, chunked, columnar format and evaluates cohort
// queries written in the paper's extended SQL:
//
//	eng, _ := cohana.NewEngine(table, cohana.Options{})
//	res, _ := eng.Query(`
//	    SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
//	    FROM GameActions
//	    BIRTH FROM action = "launch" AND role = "dwarf"
//	    AGE ACTIVITIES IN action = "shop"
//	    COHORT BY country`)
//	fmt.Print(res)
//
// Mixed queries (Section 3.5) wrap a cohort sub-query in a plain SQL outer
// query:
//
//	WITH cohorts AS (SELECT ... COHORT BY country)
//	SELECT country, AGE, spent FROM cohorts
//	WHERE country IN ["Australia", "China"] ORDER BY spent DESC LIMIT 10
//
// Activity tables come from cohana.ReadCSV, the cohana.Generate synthetic
// workload, or row-by-row loading with cohana.NewActivityTable + Append.
package cohana

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Re-exported building blocks. The internal packages carry the
// implementation; these aliases form the supported public surface.
type (
	// Schema describes an activity table's columns.
	Schema = activity.Schema
	// Col is one column definition.
	Col = activity.Col
	// ActivityTable is an uncompressed, row-appendable activity table.
	ActivityTable = activity.Table
	// Result is a cohort query result relation.
	Result = cohort.Result
	// Row is one (cohort, age) bucket of a Result.
	Row = cohort.Row
	// Query is the programmatic (parsed) form of a cohort query.
	Query = cohort.Query
	// CohortKey is one COHORT BY attribute.
	CohortKey = cohort.CohortKey
	// AggSpec is one aggregate of the SELECT list.
	AggSpec = cohort.AggSpec
	// GenConfig parameterizes the synthetic workload generator.
	GenConfig = gen.Config
	// Pool is a bounded worker pool shared by concurrent query executions;
	// see Options.Pool.
	Pool = cohort.Pool
)

// NewPool starts a shared execution pool; workers <= 0 selects GOMAXPROCS.
// Close it when no engine routes queries through it anymore.
func NewPool(workers int) *Pool { return cohort.NewPool(workers) }

// Column types.
const (
	TypeString = activity.TypeString
	TypeInt    = activity.TypeInt
	TypeTime   = activity.TypeTime
)

// Column roles.
const (
	KindUser    = activity.KindUser
	KindTime    = activity.KindTime
	KindAction  = activity.KindAction
	KindDim     = activity.KindDim
	KindMeasure = activity.KindMeasure
)

// Aggregate functions for programmatic queries.
const (
	Sum       = cohort.Sum
	Count     = cohort.Count
	Avg       = cohort.Avg
	Min       = cohort.Min
	Max       = cohort.Max
	UserCount = cohort.UserCount
)

// Age and time-bin units.
const (
	Day   = cohort.Day
	Week  = cohort.Week
	Month = cohort.Month
)

// NewSchema validates a column list into a Schema.
func NewSchema(cols []Col) (*Schema, error) { return activity.NewSchema(cols) }

// GameSchema returns the paper's mobile-game schema (player, time, action,
// country, city, role, session, gold).
func GameSchema() *Schema { return activity.GameSchema() }

// PaperSchema returns the schema of the paper's Table 1 example.
func PaperSchema() *Schema { return activity.PaperSchema() }

// PaperTable1 returns the ten example tuples of the paper's Table 1.
func PaperTable1() *ActivityTable { return activity.PaperTable1() }

// NewActivityTable creates an empty activity table for schema. Append rows
// with (*ActivityTable).Append; NewEngine sorts and validates.
func NewActivityTable(schema *Schema) *ActivityTable { return activity.NewTable(schema) }

// ReadCSV loads an activity table whose header matches schema.
func ReadCSV(r io.Reader, schema *Schema) (*ActivityTable, error) {
	return activity.ReadCSV(r, schema)
}

// WriteCSV writes an activity table with a header row.
func WriteCSV(w io.Writer, t *ActivityTable) error { return activity.WriteCSV(w, t) }

// Generate synthesizes a game-activity workload with the shape of the
// paper's dataset (see internal/gen for the behavioral model).
func Generate(cfg GenConfig) *ActivityTable { return gen.Generate(cfg) }

// Options configures an Engine.
type Options struct {
	// ChunkSize is the target activity tuples per storage chunk; 0 selects
	// the paper's 256K default.
	ChunkSize int
	// Parallelism is the number of chunks processed concurrently: 0 or 1
	// single-threaded (the paper's setting), negative for GOMAXPROCS.
	Parallelism int
	// Pool optionally routes chunk work through a shared bounded worker
	// pool, so several engines (or concurrent queries on one engine) share
	// one set of workers. The query server uses this to bound total
	// chunk-scan concurrency across requests.
	Pool *Pool
	// Journal, when non-empty, makes Append durable: every appended row is
	// synced to this append-only CSV file before acknowledgement, and the
	// file is replayed on NewEngine/Open so a restart loses nothing.
	Journal string
	// AutoCompactRows triggers background compaction of the live delta once
	// it holds at least this many rows; 0 disables automatic compaction
	// (explicit Compact calls still seal the delta).
	AutoCompactRows int
}

func (o Options) ingestConfig() ingest.Config {
	return ingest.Config{
		JournalPath:     o.Journal,
		AutoCompactRows: o.AutoCompactRows,
		ChunkSize:       o.ChunkSize,
	}
}

// Engine is a COHANA instance over one live activity table: a sealed,
// compressed tier plus an uncompressed delta that Append feeds. Queries
// union both tiers, so appended rows are visible immediately; Compact seals
// the delta into fresh compressed chunks.
type Engine struct {
	live *ingest.Table
	opts Options
	// initErr records a journal-open failure from EngineForTable, whose
	// signature cannot return it; write operations fail with it rather than
	// silently losing the durability the caller asked for.
	initErr error
}

// NewEngine compresses t into the COHANA storage format. The table is sorted
// by (user, time, action) if needed; a primary-key violation is an error.
func NewEngine(t *ActivityTable, opts Options) (*Engine, error) {
	if !t.Sorted() {
		if err := t.SortByPK(); err != nil {
			return nil, err
		}
	}
	st, err := storage.Build(t, storage.Options{ChunkSize: opts.ChunkSize})
	if err != nil {
		return nil, err
	}
	live, err := ingest.Open(st, opts.ingestConfig())
	if err != nil {
		return nil, err
	}
	return &Engine{live: live, opts: opts}, nil
}

// Open loads an engine from a file written by Save, replaying the journal
// (if Options.Journal is set) into the live delta.
func Open(path string, opts Options) (*Engine, error) {
	st, err := storage.ReadFile(path)
	if err != nil {
		return nil, err
	}
	live, err := ingest.Open(st, opts.ingestConfig())
	if err != nil {
		return nil, err
	}
	return &Engine{live: live, opts: opts}, nil
}

// EngineForTable wraps an already-compressed storage table in an Engine.
// The table is shared, not copied: compressed tables are immutable, so any
// number of engines (and concurrent queries) may serve from one table. Rows
// appended through this engine live in its private delta.
func EngineForTable(tbl *storage.Table, opts Options) *Engine {
	live, err := ingest.Open(tbl, opts.ingestConfig())
	if err != nil {
		// Only a journal can fail to open. Queries still serve from the
		// sealed tier, but writes must not pretend to be durable: Append,
		// Compact and Save return this error.
		live, _ = ingest.Open(tbl, ingest.Config{})
		return &Engine{live: live, opts: opts, initErr: err}
	}
	return &Engine{live: live, opts: opts}
}

// EngineForIngest wraps a live ingest-managed table in an Engine. The query
// server's catalog uses this so every request serves from one shared live
// table — appends, compactions and queries all observe the same state.
func EngineForIngest(lt *ingest.Table, opts Options) *Engine {
	return &Engine{live: lt, opts: opts}
}

// Save persists the compressed table. A non-empty delta is compacted first
// so the written file contains every appended row.
func (e *Engine) Save(path string) error {
	if e.initErr != nil {
		return e.initErr
	}
	if e.live.DeltaRows() > 0 {
		if err := e.live.Compact(); err != nil {
			return err
		}
	}
	return e.live.View().Sealed.WriteFile(path)
}

// Schema returns the engine's activity schema.
func (e *Engine) Schema() *Schema { return e.live.Schema() }

// Append appends one activity row (values in schema order, with the same
// coercions as ActivityTable.Append) to the live delta. The row is visible
// to queries immediately and durable when Options.Journal is set. A row
// violating the (user, time, action) primary key is rejected.
func (e *Engine) Append(values ...any) error {
	if e.initErr != nil {
		return e.initErr
	}
	row, err := ingest.RowFromValues(e.live.Schema(), values...)
	if err != nil {
		return err
	}
	return e.live.Append([]ingest.Row{row})
}

// Compact seals the live delta into fresh compressed chunks, merging it with
// the sealed tier in (user, time, action) order. Queries before, during and
// after compaction return identical results.
func (e *Engine) Compact() error {
	if e.initErr != nil {
		return e.initErr
	}
	return e.live.Compact()
}

// DeltaRows returns the number of appended rows not yet compacted.
func (e *Engine) DeltaRows() int { return e.live.DeltaRows() }

// Close releases the journal and waits for background compaction. Engines
// without a journal or auto-compaction need not be closed.
func (e *Engine) Close() error { return e.live.Close() }

// Stats describes the stored table.
type Stats struct {
	Rows        int
	Users       int
	Chunks      int
	ChunkSize   int
	EncodedSize int // serialized bytes (the Figure 7 storage metric)
	DeltaRows   int // appended rows awaiting compaction
}

// Stats returns storage statistics for the sealed tier plus the live delta
// row count.
func (e *Engine) Stats() Stats {
	view := e.live.View()
	st := view.Sealed
	s := Stats{
		Rows:        st.NumRows(),
		Users:       st.NumUsers(),
		Chunks:      st.NumChunks(),
		ChunkSize:   st.ChunkSize(),
		EncodedSize: st.EncodedSize(),
	}
	if view.Delta != nil {
		s.DeltaRows = view.Delta.Len()
		s.Rows += view.Delta.Len()
	}
	return s
}

// Execute runs a programmatic cohort query over the sealed tier unioned with
// the live delta.
func (e *Engine) Execute(q *Query) (*Result, error) {
	view := e.live.View()
	return plan.Execute(q, view.Sealed, plan.ExecOptions{
		Parallelism: e.opts.Parallelism,
		Pool:        e.opts.Pool,
		Delta:       view.Delta,
		UserIndex:   view.UserIndex,
		Union:       view.Union,
	})
}

// Query parses and runs a cohort query; mixed queries are answered via
// QueryMixed and return an error here.
func (e *Engine) Query(src string) (*Result, error) {
	stmt, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if stmt.Mixed != nil {
		return nil, fmt.Errorf("cohana: mixed query passed to Query; use QueryMixed")
	}
	return e.runCohortStmt(stmt.Cohort)
}

// runCohortStmt validates the SELECT list against the query and executes.
func (e *Engine) runCohortStmt(stmt *parser.CohortStmt) (*Result, error) {
	q := stmt.Query
	// Plain attributes in the SELECT list must be cohort attributes: the
	// output relation of γc only carries (L, age, size, aggregates).
	for _, item := range stmt.Select {
		if item.Kind != parser.KindAttr {
			continue
		}
		found := false
		for _, k := range q.CohortBy {
			if strings.EqualFold(k.Col, item.Name) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cohana: selected attribute %q is not in COHORT BY", item.Name)
		}
	}
	return e.Execute(q)
}

// SelectTuples materializes σg(σb(D)) as global row indices over the sealed
// tier, exposing the tuple-level semantics of the two selection operators
// (Definitions 4-5). Rows still in the live delta are not covered; Compact
// first to include them.
func (e *Engine) SelectTuples(birthAction string, birthCond, ageCond expr.Expr) ([]int, error) {
	return cohort.SelectTuples(e.live.View().Sealed, birthAction, birthCond, ageCond, cohort.Day)
}
