// Quickstart: load the paper's Table 1 example data, run the Example 1
// cohort query (Q1 of Section 3.4), and print the result — the fastest way
// to see the three cohort operators working together.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Table 1 of the paper: ten activity tuples of three mobile-game
	// players (001 the Australian dwarf, 002 the US wizard, 003 the
	// Chinese bandit).
	table := cohana.PaperTable1()
	eng, err := cohana.NewEngine(table, cohana.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Example 1: for players who played the dwarf role at their birth
	// time, cohort them by birth country and report the gold that country
	// launch cohorts spent on in-game shopping since they were born.
	res, err := eng.Query(`
		SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
		FROM GameActions
		BIRTH FROM action = "launch" AND role = "dwarf"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 1 (launch cohorts of dwarf-born players, gold spent by age):")
	fmt.Println(res)

	// The same result pivoted the way the paper draws cohort reports
	// (Table 3 layout: one row per cohort, one column per age).
	fmt.Println("Pivoted (cohort x age):")
	if err := res.Pivot(0).WriteTable(logWriter{}); err != nil {
		log.Fatal(err)
	}
}

// logWriter routes table output through fmt to keep the example stdout-only.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
