// Retention analysis: the paper's flagship application (Sections 1 and
// 4.5). Generates a synthetic game trace, cohorts players by the week of
// their first launch, counts retained users per (cohort, age) with the
// UserCount() aggregate, and renders the classic retention matrix (Table 3 /
// Figure 1) as a table and an ASCII heat map.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro"
)

func main() {
	fmt.Println("Generating a synthetic mobile-game trace (800 users, 39 days)...")
	table := cohana.Generate(cohana.GenConfig{Users: 800, Seed: 7})
	eng, err := cohana.NewEngine(table, cohana.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := eng.Stats()
	fmt.Printf("%d activity tuples, %d players, %d chunks, %d bytes compressed\n\n",
		s.Rows, s.Users, s.Chunks, s.EncodedSize)

	// Weekly launch cohorts; ages in weeks; one retained-user count per
	// (cohort, age) bucket.
	res, err := eng.Query(`
		SELECT COHORTSIZE, AGE, UserCount()
		FROM GameActions
		BIRTH FROM action = "launch"
		COHORT BY time(week)
		AGE UNIT weeks`)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Pivot(0)
	fmt.Println("Weekly launch cohorts: retained users by age (weeks):")
	if err := m.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Retention rates as an ASCII heat map, normalized by cohort size —
	// reading rows shows the aging effect, columns the cohort differences.
	fmt.Println("\nRetention heat map (row = cohort, column = age, darker = higher):")
	shades := []rune(" .:-=+*#%@")
	for i, cohort := range m.Cohorts {
		fmt.Printf("%-12s |", cohort)
		for _, v := range m.Cells[i] {
			if math.IsNaN(v) || m.Sizes[i] == 0 {
				fmt.Print(" ")
				continue
			}
			rate := v / float64(m.Sizes[i])
			idx := int(rate * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fmt.Print(string(shades[idx]))
		}
		fmt.Printf("| size %d\n", m.Sizes[i])
	}
	fmt.Println("\nReading a row left-to-right shows decay with age (the aging effect);")
	fmt.Println("comparing rows top-to-bottom shows later cohorts retaining better")
	fmt.Println("(the social-change effect of iterative game development).")
}
