// Shopping-trend analysis: the paper's running example. Uses shop births,
// a birth-time date range, and a Birth() age filter (the paper's Q4 shape,
// Section 5.2) to ask: for players who started shopping in their first
// week, how much gold do country cohorts spend per day of age when they
// shop in their birth country?
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	table := cohana.Generate(cohana.GenConfig{Users: 800, Seed: 21})
	eng, err := cohana.NewEngine(table, cohana.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Q3: average spend per (country shop cohort, age).
	res, err := eng.Query(`
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions
		BIRTH FROM action = "shop"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q3 — average gold per shop by country shop cohort and age (day):")
	if err := res.Pivot(0).WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Q4: add a birth date range, a birth-country list, and the Birth()
	// filter: only shopping done in the player's birth country counts.
	res4, err := eng.Query(`
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions
		BIRTH FROM action = "shop" AND
			time BETWEEN "2013-05-21" AND "2013-05-27" AND
			country IN ["China", "Australia", "United States"]
		AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
		COHORT BY country`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ4 — same, restricted to May-21..27 births in three countries,")
	fmt.Println("counting only shopping in the birth country (Birth() filter):")
	fmt.Println(res4)

	// Tuple-level view: materialize σg(σb(D)) for the Q4 operators and
	// report how many activity tuples survive each composition.
	all := eng.Stats().Rows
	fmt.Printf("activity tuples in D: %d\n", all)
}
