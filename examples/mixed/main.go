// Mixed queries (Section 3.5): a cohort query runs as a WITH sub-query, and
// a plain SQL outer query filters, orders and limits its result. The
// "cohort query first" evaluation rule means the outer query can never
// disturb birth activity tuples — it only sees aggregated buckets.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	table := cohana.Generate(cohana.GenConfig{Users: 600, Seed: 3})
	eng, err := cohana.NewEngine(table, cohana.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Section 3.5 example, extended with ORDER BY and LIMIT:
	// pick two countries' spend trends out of the full cohort report.
	res, err := eng.QueryMixed(`
		WITH cohorts AS (
			SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
			FROM GameActions
			BIRTH FROM action = "launch"
			AGE ACTIVITIES IN action = "shop"
			COHORT BY country
		)
		SELECT country, AGE, spent FROM cohorts
		WHERE country IN ["Australia", "China"]
		ORDER BY spent DESC
		LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top spend buckets for the Australia and China launch cohorts:")
	fmt.Println(res)

	// Outer filters can also mix cohort attributes with computed columns.
	res2, err := eng.QueryMixed(`
		WITH cohorts AS (
			SELECT country, COHORTSIZE, AGE, UserCount()
			FROM GameActions
			BIRTH FROM action = "launch"
			COHORT BY country
		)
		SELECT country, COHORTSIZE, AGE, UserCount FROM cohorts
		WHERE COHORTSIZE >= 20 AND AGE BETWEEN 1 AND 7
		ORDER BY country LIMIT 15`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("First-week retention for cohorts with at least 20 players:")
	fmt.Println(res2)
}
