package gen

import "testing"

// TestZipfSkewsPerUserVolume pins the -zipf satellite: the skewed generator
// must stay primary-key-valid (Generate panics otherwise) and produce a
// visibly heavier per-user tail than the unskewed workload, while leaving
// the unskewed output untouched.
func TestZipfSkewsPerUserVolume(t *testing.T) {
	maxBlock := func(s float64) (rows, max int) {
		tbl := Generate(Config{Users: 200, Seed: 7, ZipfS: s})
		tbl.UserBlocks(func(_ string, a, b int) {
			if b-a > max {
				max = b - a
			}
		})
		return tbl.Len(), max
	}
	baseRows, baseMax := maxBlock(0)
	skewRows, skewMax := maxBlock(1.3)
	if skewMax <= 2*baseMax {
		t.Fatalf("zipf tail too light: max user block %d (skewed) vs %d (uniform)", skewMax, baseMax)
	}
	if skewRows <= baseRows {
		t.Fatalf("zipf generated fewer rows (%d) than uniform (%d)", skewRows, baseRows)
	}
	// Equal configs still generate equal tables.
	again, _ := maxBlock(1.3)
	if again != skewRows {
		t.Fatalf("zipf generation not deterministic: %d vs %d rows", again, skewRows)
	}
}
