package gen

import (
	"testing"

	"repro/internal/activity"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Users: 50, Seed: 7})
	b := Generate(Config{Users: 50, Seed: 7})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.User(i) != b.User(i) || a.Time(i) != b.Time(i) || a.Action(i) != b.Action(i) {
			t.Fatalf("row %d differs", i)
		}
	}
	c := Generate(Config{Users: 50, Seed: 8})
	if c.Len() == a.Len() {
		// Different seeds may coincide in length but the content must not
		// be identical.
		same := true
		for i := 0; i < a.Len(); i++ {
			if a.Time(i) != c.Time(i) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds generated identical tables")
		}
	}
}

func TestGenerateShape(t *testing.T) {
	tbl := Generate(Config{Users: 100, Seed: 1})
	if !tbl.Sorted() {
		t.Fatal("not sorted")
	}
	if tbl.NumUsers() != 100 {
		t.Errorf("users = %d, want 100", tbl.NumUsers())
	}
	if tbl.Len() < 500 {
		t.Errorf("only %d tuples for 100 users", tbl.Len())
	}
	// First action of every user is launch (the paper notes this property;
	// Section 5.3.2 relies on it for Q5).
	schema := tbl.Schema()
	start, _ := activity.ParseTime("2013-05-19")
	end := start + 39*activity.SecondsPerDay
	tbl.UserBlocks(func(u string, s, e int) {
		if tbl.Action(s) != "launch" {
			t.Errorf("user %s first action = %q", u, tbl.Action(s))
		}
	})
	actions := map[string]bool{}
	for i := 0; i < tbl.Len(); i++ {
		actions[tbl.Action(i)] = true
		if tbl.Time(i) < start || tbl.Time(i) >= end+activity.SecondsPerDay {
			t.Fatalf("tuple %d outside window: %d", i, tbl.Time(i))
		}
		gold := tbl.Ints(schema.ColIndex("gold"))[i]
		if gold < 0 {
			t.Fatalf("negative gold at %d", i)
		}
		if gold > 0 && tbl.Action(i) != "shop" {
			t.Fatalf("non-shop action with gold at %d", i)
		}
	}
	if !actions["shop"] || !actions["launch"] || !actions["fight"] {
		t.Errorf("missing core actions: %v", actions)
	}
}

func TestGenerateScale(t *testing.T) {
	s1 := Generate(Config{Users: 40, Seed: 3, Scale: 1})
	s2 := Generate(Config{Users: 40, Seed: 3, Scale: 2})
	if s2.NumUsers() != 2*s1.NumUsers() {
		t.Errorf("scale 2 users = %d, want %d", s2.NumUsers(), 2*s1.NumUsers())
	}
	if s2.Len() <= s1.Len() {
		t.Errorf("scale 2 tuples = %d, not larger than %d", s2.Len(), s1.Len())
	}
}

func TestGenerateAgingEffect(t *testing.T) {
	// Average gold per shop in the first two age days must exceed the
	// average in later days — the aging effect the analysis looks for.
	tbl := Generate(Config{Users: 300, Seed: 5})
	schema := tbl.Schema()
	goldCol := schema.ColIndex("gold")
	var earlySum, earlyN, lateSum, lateN int64
	tbl.UserBlocks(func(u string, s, e int) {
		birth := tbl.Time(s)
		for i := s; i < e; i++ {
			if tbl.Action(i) != "shop" {
				continue
			}
			ageDays := (tbl.Time(i) - birth) / activity.SecondsPerDay
			if ageDays <= 1 {
				earlySum += tbl.Ints(goldCol)[i]
				earlyN++
			} else if ageDays >= 5 {
				lateSum += tbl.Ints(goldCol)[i]
				lateN++
			}
		}
	})
	if earlyN == 0 || lateN == 0 {
		t.Fatalf("no shops in buckets: early=%d late=%d", earlyN, lateN)
	}
	earlyAvg := float64(earlySum) / float64(earlyN)
	lateAvg := float64(lateSum) / float64(lateN)
	if earlyAvg <= lateAvg {
		t.Errorf("aging effect missing: early avg %.1f <= late avg %.1f", earlyAvg, lateAvg)
	}
}

func TestGenerateBirthDistributionNonUniform(t *testing.T) {
	// Births concentrate in the early window (with weekly bumps), so the
	// first half of the birth window must hold clearly more births than the
	// second half.
	tbl := Generate(Config{Users: 400, Seed: 11})
	var firstHalf, secondHalf int
	window := int64(39*4/5) * activity.SecondsPerDay
	start, _ := activity.ParseTime("2013-05-19")
	tbl.UserBlocks(func(u string, s, e int) {
		offset := tbl.Time(s) - start
		if offset < window/2 {
			firstHalf++
		} else {
			secondHalf++
		}
	})
	if firstHalf <= secondHalf {
		t.Errorf("birth CDF not front-loaded: %d vs %d", firstHalf, secondHalf)
	}
}
