// Package gen synthesizes mobile-game activity data with the shape of the
// paper's evaluation dataset (Section 5.1): a 39-day window starting
// 2013-05-19, 16 distinct actions, country/city/role dimensions and session
// length / gold measures. The paper's real trace is proprietary, so this
// generator is the documented substitution (DESIGN.md Section 2); it
// reproduces the properties the engine's costs depend on —
//
//   - users are born (first launch) on a non-uniform day distribution, so
//     birth-selection selectivity varies with the date range (Figure 8's
//     birth CDF);
//   - per-user activity decays with age (the aging effect of Section 1):
//     early sessions shop more and spend more gold;
//   - later cohorts spend more than earlier ones at the same age (the
//     social-change effect visible in Table 3);
//   - country/city/role follow skewed distributions, giving realistic
//     dictionary cardinalities.
//
// Scale factor X multiplies the user count with fresh user ids, matching the
// paper's scaling procedure ("each user has the same activity tuples as the
// original dataset except with a different user attribute").
package gen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/activity"
)

// Actions is the 16-action vocabulary. launch, shop and achievement are the
// paper's birth actions; the first action of every user is launch.
var Actions = []string{
	"launch", "shop", "fight", "achievement",
	"quest", "chat", "trade", "craft",
	"guild", "pvp", "raid", "explore",
	"levelup", "tutorial", "mail", "logout",
}

// countries and their relative weights (skewed, like a worldwide game).
var countries = []struct {
	name   string
	weight int
	cities []string
}{
	{"China", 30, []string{"Beijing", "Shanghai", "Shenzhen", "Chengdu"}},
	{"United States", 25, []string{"New York", "Los Angeles", "Chicago", "Seattle"}},
	{"Japan", 12, []string{"Tokyo", "Osaka"}},
	{"Australia", 8, []string{"Sydney", "Melbourne"}},
	{"Germany", 6, []string{"Berlin", "Munich"}},
	{"India", 6, []string{"Mumbai", "Bangalore"}},
	{"Brazil", 5, []string{"Sao Paulo", "Rio"}},
	{"Russia", 4, []string{"Moscow"}},
	{"France", 2, []string{"Paris"}},
	{"Singapore", 2, []string{"Singapore"}},
}

var roles = []string{"dwarf", "wizard", "bandit", "assassin"}

// Config parameterizes the generator.
type Config struct {
	// Users is the number of distinct users at scale 1. Default 500.
	Users int
	// Scale multiplies Users (the paper's scale factor). Default 1.
	Scale int
	// Days is the observation window length. Default 39 (2013-05-19 to
	// 2013-06-26).
	Days int
	// Seed drives all randomness; equal configs generate equal tables.
	Seed int64
	// MeanActions is the target mean number of activity tuples per user.
	// Default 60.
	MeanActions int
	// ZipfS, when > 1, draws a per-user activity multiplier from a Zipf
	// distribution with exponent s over {1..64}: most users keep their
	// baseline volume while a heavy tail of power users emits many times
	// more tuples per session. Real traces are skewed like this, and the
	// skew is what makes shard imbalance observable — hash partitioning
	// spreads users evenly but not tuples, so benchmarks that want to
	// exercise uneven shards generate with -zipf. 0 (or <= 1) disables the
	// skew, keeping output identical to earlier generator versions.
	ZipfS float64
}

// zipfMaxMult bounds the per-user activity multiplier: a power user emits at
// most this many times the baseline actions per session. The bound keeps a
// session's tuples inside its day even at the tail (timestamps within a
// session are spaced tighter as the multiplier grows, so the primary key
// stays collision-free).
const zipfMaxMult = 64

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 500
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Days <= 0 {
		c.Days = 39
	}
	if c.MeanActions <= 0 {
		c.MeanActions = 60
	}
	return c
}

// StartTime is the first instant of the generated window (the paper
// dataset's first day).
var StartTime = time.Date(2013, 5, 19, 0, 0, 0, 0, time.UTC).Unix()

// Generate builds a sorted activity table.
func Generate(cfg Config) *activity.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := activity.NewTable(activity.GameSchema())

	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, zipfMaxMult-1)
	}
	totalWeight := 0
	for _, c := range countries {
		totalWeight += c.weight
	}
	nUsers := cfg.Users * cfg.Scale
	for u := 0; u < nUsers; u++ {
		user := fmt.Sprintf("player-%07d", u)
		// Birth day: non-uniform CDF — quadratic ramp-down plus weekly
		// launch-campaign bumps, confined to the first 80% of the window so
		// every cohort can age.
		birthWindow := cfg.Days * 4 / 5
		if birthWindow < 1 {
			birthWindow = 1
		}
		var birthDay int
		for {
			d := rng.Intn(birthWindow)
			accept := 1.0 - 0.6*float64(d)/float64(birthWindow)
			if d%7 == 0 {
				accept += 0.3
			}
			if rng.Float64() < accept {
				birthDay = d
				break
			}
		}
		// Static user dimensions.
		w := rng.Intn(totalWeight)
		var country string
		var cities []string
		for _, c := range countries {
			if w < c.weight {
				country, cities = c.name, c.cities
				break
			}
			w -= c.weight
		}
		city := cities[rng.Intn(len(cities))]
		role := roles[rng.Intn(len(roles))]

		// Cohort quality: later cohorts are stickier and spend more (the
		// social-change effect: iterative game development).
		cohortBoost := 1.0 + 0.5*float64(birthDay)/float64(cfg.Days)

		// Activity skew: a Zipf-tailed per-user multiplier scales the
		// session volume. Timestamp spacing shrinks with the multiplier so
		// even a 64x power user's session stays inside its day.
		mult := 1
		if zipf != nil {
			mult = 1 + int(zipf.Uint64())
		}
		maxGap := 1800 / mult
		if maxGap < 1 {
			maxGap = 1
		}
		day := birthDay
		age := 0
		secOfDay := 8*3600 + rng.Intn(12*3600)
		for day < cfg.Days {
			// One session per active day.
			ts := StartTime + int64(day)*activity.SecondsPerDay + int64(secOfDay)
			sessionLen := int64(5 + rng.Intn(55))
			emit := func(action string, gold int64) {
				_ = tbl.Append(user, ts, action, country, city, role, sessionLen, gold)
				// 29/mult+1 keeps the unskewed spacing exactly 30..1829
				// seconds (byte-identical to earlier generator versions)
				// while guaranteeing strictly increasing timestamps at any
				// multiplier.
				ts += int64(29/mult + 1 + rng.Intn(maxGap))
			}
			emit("launch", 0)
			// Session body: actions per session shrink with age (aging).
			mean := float64(cfg.MeanActions) / 12.0
			nActs := (1 + int(mean*cohortBoost/(1.0+0.25*float64(age)))) * mult
			for k := 0; k < nActs; k++ {
				action := Actions[1+rng.Intn(len(Actions)-1)]
				var gold int64
				if action == "shop" {
					// Spend decays with age, grows with cohort quality.
					base := 40.0 * cohortBoost / (1.0 + 0.35*float64(age))
					gold = int64(1 + rng.Intn(int(base*2)+1))
				}
				if action == "levelup" && rng.Intn(4) == 0 {
					// Occasional role change, like player 001's dwarf ->
					// assassin switch in Table 1.
					role = roles[rng.Intn(len(roles))]
				}
				emit(action, gold)
			}
			// Retention: survive to another active day with decaying
			// probability; later cohorts retain better.
			pStay := (0.78 + 0.1*(cohortBoost-1.0)) / (1.0 + 0.02*float64(age))
			if rng.Float64() > pStay {
				break
			}
			gap := 1 + rng.Intn(3)
			day += gap
			age += gap
			secOfDay = 8*3600 + rng.Intn(12*3600)
		}
	}
	if err := tbl.SortByPK(); err != nil {
		// The generator spaces timestamps within a session, so PK
		// collisions indicate a bug, not bad input.
		panic(err)
	}
	return tbl
}
