package lint

import (
	"go/ast"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// ErrCode enforces exhaustiveness of the HTTP boundary's structured error
// codes: every exported error sentinel (var Err*) and error type (Err* /
// *Error with an Error() string method) declared in the engine packages the
// server surfaces must be mapped by internal/server's codeFor — the single
// switch that turns engine errors into stable {"code": ...} values. A new
// sentinel added in ingest or storage without a codeFor arm would surface to
// clients as a generic "internal", silently breaking the error contract.
//
// The declarations travel as package facts: each engine package exports the
// errors it declares; the pass over internal/server imports those facts and
// checks codeFor references every one. codeFor itself must return only
// snake_case string literals (the code namespace is part of the API).
var ErrCode = &analysis.Analyzer{
	Name:     "errcode",
	Doc:      "every engine error sentinel/type maps to a structured code in the server's codeFor",
	Run:      runErrCode,
	FactType: (*ErrorDecls)(nil),
}

// ErrorDecls is the package fact: the exported error sentinels and error
// types a package declares.
type ErrorDecls struct {
	Names []string `json:"names"`
}

// errDeclPackages declare errors that cross the HTTP boundary.
var errDeclPackages = []string{
	Module + "/internal/ingest",
	Module + "/internal/storage",
}

var snakeCode = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runErrCode(pass *analysis.Pass) (any, error) {
	if pathWithinAny(pass.Path, errDeclPackages...) {
		decls := collectErrorDecls(pass)
		if len(decls.Names) > 0 {
			pass.ExportPackageFact(&decls)
		}
		return nil, nil
	}
	if pathWithin(pass.Path, Module+"/internal/server") {
		checkCodeFor(pass)
	}
	return nil, nil
}

// collectErrorDecls gathers the package's exported error declarations:
// sentinels (exported vars named Err*) and error types (exported types
// named Err* or ending in Error that have an Error() string method).
func collectErrorDecls(pass *analysis.Pass) ErrorDecls {
	var decls ErrorDecls
	hasErrorMethod := make(map[string]bool)
	var candidates []string
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.Name == "Error" && d.Recv != nil {
					hasErrorMethod[receiverTypeName(d)] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if ast.IsExported(n.Name) && strings.HasPrefix(n.Name, "Err") {
								decls.Names = append(decls.Names, n.Name)
							}
						}
					case *ast.TypeSpec:
						n := sp.Name.Name
						if ast.IsExported(n) && (strings.HasPrefix(n, "Err") || strings.HasSuffix(n, "Error")) {
							candidates = append(candidates, n)
						}
					}
				}
			}
		}
	}
	for _, n := range candidates {
		if hasErrorMethod[n] {
			decls.Names = append(decls.Names, n)
		}
	}
	return decls
}

// checkCodeFor verifies the server's codeFor switch references every error
// declared locally and by the imported engine packages.
func checkCodeFor(pass *analysis.Pass) {
	codeFor := findFunc(pass, "codeFor")
	if codeFor == nil {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"package has no codeFor function: the HTTP boundary needs the single error-to-code switch the structured-error contract is built on")
		}
		return
	}

	// Names referenced anywhere inside codeFor: bare identifiers cover the
	// package's own errors, selector names cover imported ones.
	referenced := make(map[string]bool)
	ast.Inspect(codeFor.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			referenced[id.Name] = true
		}
		return true
	})

	// The server's own exported error declarations.
	own := collectErrorDecls(pass)
	for _, name := range own.Names {
		if !referenced[name] {
			pass.Reportf(codeFor.Name.Pos(),
				"error %s is not mapped to a structured code in codeFor: clients would see a generic code for it", name)
		}
	}

	// Imported engine packages' declarations, via facts.
	seenPath := make(map[string]bool)
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !pathWithinAny(path, errDeclPackages...) || seenPath[path] {
				continue
			}
			seenPath[path] = true
			var decls ErrorDecls
			if !pass.ImportPackageFact(path, &decls) {
				continue
			}
			for _, name := range decls.Names {
				if !referenced[name] {
					pass.Reportf(codeFor.Name.Pos(),
						"error %s.%s is not mapped to a structured code in codeFor: clients would see a generic code for it",
						path[strings.LastIndex(path, "/")+1:], name)
				}
			}
		}
	}

	// Every code codeFor returns must be a snake_case literal: the code
	// namespace is API surface.
	ast.Inspect(codeFor.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		lit, ok := ret.Results[0].(*ast.BasicLit)
		if !ok {
			pass.Reportf(ret.Pos(), "codeFor must return string literals only: codes are stable API surface")
			return true
		}
		code := strings.Trim(lit.Value, `"`)
		if !snakeCode.MatchString(code) {
			pass.Reportf(lit.Pos(), "error code %q is not snake_case", code)
		}
		return true
	})
}

// findFunc returns the package-level function named name, or nil.
func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == name {
				return fn
			}
		}
	}
	return nil
}
