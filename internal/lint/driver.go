package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Package is one loaded package: parsed non-test files plus the metadata
// the analyzers and the fact flow need.
type Package struct {
	Path    string
	Dir     string
	Imports []string
	Files   []*ast.File
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// FactStore carries JSON-encoded package facts between passes, keyed by
// package path then analyzer name. The encoding is the same one the
// unitchecker mode writes into vetx files, so standalone and `go vet` runs
// share one serialization.
type FactStore map[string]map[string]json.RawMessage

// Export records fact for (path, analyzer).
func (s FactStore) Export(path, analyzer string, fact any) error {
	buf, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("lint: encoding %s fact for %s: %w", analyzer, path, err)
	}
	m := s[path]
	if m == nil {
		m = make(map[string]json.RawMessage)
		s[path] = m
	}
	m[analyzer] = buf
	return nil
}

// Import decodes the fact for (path, analyzer) into out, reporting whether
// one was recorded.
func (s FactStore) Import(path, analyzer string, out any) bool {
	raw, ok := s[path][analyzer]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// RunPackage applies every analyzer to one parsed package, honoring
// //lint:allow suppression, exporting facts into store and importing
// upstream facts from it. Diagnostics come back as Findings sorted by
// position.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*analysis.Analyzer, store FactStore) ([]Finding, error) {
	allow := BuildAllowIndex(fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
		}
		var factErr error
		pass.SetFactHooks(
			func(fact any) {
				if err := store.Export(pkg.Path, a.Name, fact); err != nil && factErr == nil {
					factErr = err
				}
			},
			func(path string, out any) bool {
				return store.Import(path, a.Name, out)
			},
		)
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if allow.Allowed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
		if factErr != nil {
			return nil, factErr
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// LintPackages loads the packages matching patterns in the module at dir
// (via `go list`), analyzes them in dependency order so facts flow from a
// package to its importers, and returns every unsuppressed finding.
func LintPackages(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := loadPackages(fset, dir, patterns)
	if err != nil {
		return nil, err
	}
	store := make(FactStore)
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(fset, pkg, analyzers, store)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// goListPackage is the subset of `go list -json` output the driver needs.
type goListPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// loadPackages lists and parses the matching packages, topologically sorted
// so every package comes after its in-set imports.
func loadPackages(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := make(map[string]*Package)
	var order []string
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp goListPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Imports: lp.Imports}
		for _, name := range lp.GoFiles {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			file, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(lp.Dir, name), err)
			}
			pkg.Files = append(pkg.Files, file)
		}
		byPath[pkg.Path] = pkg
		order = append(order, pkg.Path)
	}

	// Topological order over the in-set import edges (deterministic: DFS in
	// listing order).
	var sorted []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		pkg, ok := byPath[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		for _, imp := range pkg.Imports {
			visit(imp)
		}
		state[path] = 2
		sorted = append(sorted, pkg)
	}
	for _, path := range order {
		visit(path)
	}
	return sorted, nil
}
