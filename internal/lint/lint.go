// Package lint is cohana-lint: a suite of static analyzers that machine-check
// the engine's cross-cutting invariants — context propagation, bounded
// concurrency, the fsync-before-rename commit protocol, chunk pin regions,
// structured error codes, and metric naming. The checks encode rules that
// were previously enforced only by convention and review; the suite runs
// over the whole repository in CI (standalone and as a `go vet -vettool`)
// and green is a merge gate.
//
// Deliberate exceptions are documented in the source with an inline escape
// hatch:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. A directive
// without a reason is inert — the finding still fires — so every exception
// carries its justification next to the code it excuses.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// Module is the import-path root every analyzer scopes against.
const Module = "repro"

// Analyzers returns the full cohana-lint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CtxFlow,
		GoroutinePool,
		CommitProto,
		ChunkPin,
		ErrCode,
		ObsNames,
	}
}

// pathWithin reports whether pkg is root itself or a package under root.
func pathWithin(pkg, root string) bool {
	return pkg == root || strings.HasPrefix(pkg, root+"/")
}

// pathWithinAny reports whether pkg is within any of roots.
func pathWithinAny(pkg string, roots ...string) bool {
	for _, r := range roots {
		if pathWithin(pkg, r) {
			return true
		}
	}
	return false
}

// importNames maps each import's local name in file to its import path:
// both aliased and default-named imports resolve (the default local name is
// the last path segment, which matches every stdlib and repro package the
// engine imports).
func importNames(file *ast.File) map[string]string {
	m := make(map[string]string, len(file.Imports))
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		m[name] = path
	}
	return m
}

// isPkgCall reports whether call is pkgLocal.fn(...) where pkgLocal is the
// file-local name of importPath per names.
func isPkgCall(call *ast.CallExpr, names map[string]string, importPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && names[id.Name] == importPath
}

// methodCallName returns the selector method name of call ("Sync" for
// f.Sync()), or "" when call is not a method-shaped call.
func methodCallName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// AllowDirective is one parsed //lint:allow comment.
type AllowDirective struct {
	Analyzer string
	Reason   string
	File     string
	Line     int
}

// ParseAllowDirective parses the text of a single comment, returning the
// directive and true when the comment is a well-formed allow. A directive
// missing the reason is NOT well-formed: it parses (for tooling) but
// reports ok=false, so it never suppresses anything.
func ParseAllowDirective(text string) (AllowDirective, bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return AllowDirective{}, false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	name, reason, _ := strings.Cut(rest, " ")
	d := AllowDirective{Analyzer: name, Reason: strings.TrimSpace(reason)}
	return d, d.Analyzer != "" && d.Reason != ""
}

// AllowIndex records where //lint:allow directives sit, keyed by analyzer
// name then file, holding the set of source lines each directive covers.
type AllowIndex struct {
	// lines[analyzer][file][line] — the directive's own line plus the one
	// below it, chaining through consecutive directive lines so several
	// analyzers can be excused above one statement.
	lines map[string]map[string]map[int]bool
}

// BuildAllowIndex scans the comments of files for allow directives.
func BuildAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	idx := &AllowIndex{lines: make(map[string]map[string]map[int]bool)}
	for _, file := range files {
		// directiveLines marks lines holding any well-formed directive, so
		// a stack of consecutive directives extends coverage to the first
		// non-directive line below the stack.
		type hit struct {
			d    AllowDirective
			line int
			file string
		}
		var hits []hit
		directiveLines := make(map[int]bool)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok := ParseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				hits = append(hits, hit{d: d, line: pos.Line, file: pos.Filename})
				directiveLines[pos.Line] = true
			}
		}
		for _, h := range hits {
			covered := []int{h.line}
			// Walk down through any directive stack to the code line below.
			next := h.line + 1
			for directiveLines[next] {
				next++
			}
			covered = append(covered, next)
			byFile := idx.lines[h.d.Analyzer]
			if byFile == nil {
				byFile = make(map[string]map[int]bool)
				idx.lines[h.d.Analyzer] = byFile
			}
			byLine := byFile[h.file]
			if byLine == nil {
				byLine = make(map[int]bool)
				byFile[h.file] = byLine
			}
			for _, l := range covered {
				byLine[l] = true
			}
		}
	}
	return idx
}

// Allowed reports whether a diagnostic from analyzer at pos is suppressed.
func (idx *AllowIndex) Allowed(analyzer string, pos token.Position) bool {
	if idx == nil {
		return false
	}
	byFile := idx.lines[analyzer]
	if byFile == nil {
		return false
	}
	return byFile[pos.Filename][pos.Line]
}
