package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// CtxFlow enforces the engine's context-propagation discipline:
//
//   - No context.Background() / context.TODO() in library code. Contexts
//     are minted at the process edge (cmd/, examples/, tests) and threaded
//     inward; a Background() deep in a library silently detaches that call
//     tree from cancellation. The bare half of a compat pair (a function
//     whose <Name>Context sibling exists, e.g. Execute beside
//     ExecuteContext) mints Background by design and is exempt; any other
//     deliberate shim carries //lint:allow.
//   - A context.Context parameter comes first and is named ctx (or _), the
//     stdlib convention every call site in the repo relies on.
//   - A ctx parameter must actually be used: accepting a context and
//     dropping it on the floor is indistinguishable, at the call site, from
//     threading it.
//   - Exported blocking entry points in internal/{plan,cohort,ingest,server}
//     — functions that select, touch channels, or wait on fan-out — must
//     be cancellable: a context.Context parameter, an options-struct
//     parameter carrying a Ctx field, or a <Name>Context sibling (the
//     repo's compat-pair idiom, e.g. Compact / CompactContext).
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "exported blocking entry points accept and thread context.Context; " +
		"no context.Background/TODO in library code",
	Run: runCtxFlow,
}

// ctxEntryPackages are the packages whose exported blocking entry points
// must be cancellable.
var ctxEntryPackages = []string{
	Module + "/internal/plan",
	Module + "/internal/cohort",
	Module + "/internal/ingest",
	Module + "/internal/server",
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	if !pathWithin(pass.Path, Module) {
		return nil, nil
	}
	libScope := !pathWithinAny(pass.Path, Module+"/cmd", Module+"/examples") &&
		packageName(pass) != "main"
	entryScope := pathWithinAny(pass.Path, ctxEntryPackages...)

	idx := buildCtxPkgIndex(pass)

	for _, file := range pass.Files {
		names := importNames(file)

		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				if libScope {
					reportBackgroundCalls(pass, decl, names)
				}
				continue
			}
			if fn.Body == nil {
				continue
			}
			if libScope && !idx.funcKeys[funcKey(fn)+"Context"] {
				// A function with a <Name>Context sibling is the bare half
				// of a compat pair: minting Background there is the idiom.
				reportBackgroundCalls(pass, fn, names)
			}
			checkCtxParamShape(pass, fn, names)
			if entryScope {
				checkBlockingEntry(pass, fn, names, idx)
			}
		}
	}
	return nil, nil
}

func packageName(pass *analysis.Pass) string {
	if len(pass.Files) == 0 {
		return ""
	}
	return pass.Files[0].Name.Name
}

// ctxPkgIndex is the package-level view ctxflow needs across files: which
// named struct types carry a context field, and which function/method names
// exist (for the <Name>Context sibling rule).
type ctxPkgIndex struct {
	structsWithCtx map[string]bool
	funcKeys       map[string]bool // "Name" or "Recv.Name"
}

func buildCtxPkgIndex(pass *analysis.Pass) *ctxPkgIndex {
	idx := &ctxPkgIndex{
		structsWithCtx: make(map[string]bool),
		funcKeys:       make(map[string]bool),
	}
	for _, file := range pass.Files {
		names := importNames(file)
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						if isContextType(f.Type, names) {
							idx.structsWithCtx[ts.Name.Name] = true
						}
					}
				}
			case *ast.FuncDecl:
				idx.funcKeys[funcKey(d)] = true
			}
		}
	}
	return idx
}

// funcKey is "Name" for functions and "Recv.Name" for methods.
func funcKey(fn *ast.FuncDecl) string {
	if r := receiverTypeName(fn); r != "" {
		return r + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// receiverTypeName returns the receiver's base type name ("" for functions).
func receiverTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isContextType reports whether expr denotes context.Context under the
// file's import names.
func isContextType(expr ast.Expr, names map[string]string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && names[id.Name] == "context"
}

// reportBackgroundCalls flags context.Background() / context.TODO() under a
// declaration (a function body or a package-level initializer).
func reportBackgroundCalls(pass *analysis.Pass, decl ast.Node, names map[string]string) {
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, fn := range [...]string{"Background", "TODO"} {
			if isPkgCall(call, names, "context", fn) {
				pass.Reportf(call.Pos(),
					"context.%s() in library code: contexts are minted at the process edge and threaded in; accept a ctx parameter instead", fn)
			}
		}
		return true
	})
}

// checkCtxParamShape enforces ctx-first/ctx-named and ctx-actually-used.
func checkCtxParamShape(pass *analysis.Pass, fn *ast.FuncDecl, names map[string]string) {
	params := flattenParams(fn.Type.Params)
	for i, p := range params {
		if !isContextType(p.typ, names) {
			continue
		}
		if i != 0 {
			pass.Reportf(p.pos, "context.Context must be the first parameter of %s", fn.Name.Name)
		}
		if p.name != "" && p.name != "ctx" && p.name != "_" {
			pass.Reportf(p.pos, "context.Context parameter of %s must be named ctx, not %s", fn.Name.Name, p.name)
		}
		if p.name == "ctx" && !identUsed(fn.Body, "ctx") {
			pass.Reportf(p.pos, "%s accepts ctx but never uses it: thread the context or drop the parameter", fn.Name.Name)
		}
		break // one context parameter is the convention; shape-check the first
	}
}

type flatParam struct {
	name string
	typ  ast.Expr
	pos  token.Pos
}

func flattenParams(fields *ast.FieldList) []flatParam {
	if fields == nil {
		return nil
	}
	var out []flatParam
	for _, f := range fields.List {
		if len(f.Names) == 0 {
			out = append(out, flatParam{typ: f.Type, pos: f.Type.Pos()})
			continue
		}
		for _, n := range f.Names {
			out = append(out, flatParam{name: n.Name, typ: f.Type, pos: n.Pos()})
		}
	}
	return out
}

func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
			return false
		}
		return !used
	})
	return used
}

// checkBlockingEntry flags exported blocking entry points with no
// cancellation path.
func checkBlockingEntry(pass *analysis.Pass, fn *ast.FuncDecl, names map[string]string, idx *ctxPkgIndex) {
	name := fn.Name.Name
	if !ast.IsExported(name) {
		return
	}
	if recv := receiverTypeName(fn); recv != "" && !ast.IsExported(recv) {
		return // method on an unexported type: not a package entry point
	}
	// Lifecycle exemptions: Close tears down (cancellation would race the
	// shutdown it implements) and New* constructors start long-lived
	// workers whose lifetime is the value's, not a call's.
	if name == "Close" || strings.HasPrefix(name, "New") {
		return
	}
	if strings.HasSuffix(name, "Context") {
		return // this IS the context-accepting variant
	}
	if !isBlockingBody(fn.Body) {
		return
	}
	for _, p := range flattenParams(fn.Type.Params) {
		if isContextType(p.typ, names) {
			return
		}
		if optTypeHasCtx(p.typ, idx) {
			return
		}
	}
	// The repo's compat-pair idiom: Execute / ExecuteContext. The bare name
	// stays for callers that genuinely have no context; the Context sibling
	// is the primary API.
	sibling := name + "Context"
	if r := receiverTypeName(fn); r != "" {
		sibling = r + "." + sibling
	}
	if idx.funcKeys[sibling] {
		return
	}
	pass.Reportf(fn.Name.Pos(),
		"%s is an exported blocking entry point with no cancellation path: accept ctx (or an options struct with a Ctx field), or add a %sContext sibling",
		name, name)
}

// optTypeHasCtx reports whether typ names a same-package struct (possibly
// via pointer) that carries a context.Context field — the options-struct
// threading idiom (cohort.RunOptions.Ctx, plan.ExecOptions.Ctx).
func optTypeHasCtx(typ ast.Expr, idx *ctxPkgIndex) bool {
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && idx.structsWithCtx[id.Name]
}

// isBlockingBody reports whether body contains a construct that can block
// the caller: selects, channel sends/receives, or Wait(). A bare go
// statement is fire-and-forget — it does not block the entry point, and
// goroutinepool polices it separately.
func isBlockingBody(body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure's body blocks the closure, not this entry
		case *ast.SelectStmt, *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocking = true
			}
		case *ast.CallExpr:
			if methodCallName(n) == "Wait" {
				blocking = true
			}
		}
		return !blocking
	})
	return blocking
}
