package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
)

// ChunkPin enforces the chunk pinning protocol around the lazy segment
// cache: decoded chunk payloads may only be touched while pinned, so LRU
// eviction can never race an in-flight scan.
//
//   - Consumers above the storage layer never call the eager Chunk(i)
//     accessor (which panics on a cold lazy chunk): they go through
//     PinChunk and hold the release across the scan.
//   - Every PinChunk call keeps its release: discarding it with _ (the pin
//     would never drop, pinning the chunk resident forever) or never
//     calling/deferring/forwarding it (same leak, one step removed) is an
//     error.
var ChunkPin = &analysis.Analyzer{
	Name: "chunkpin",
	Doc:  "decoded chunk payloads are only touched inside a PinChunk region whose release is kept",
	Run:  runChunkPin,
}

// chunkConsumerPackages sit above the storage layer: the eager Chunk(i)
// accessor is off-limits there (eager tables are a storage-internal and
// test-only concern).
var chunkConsumerPackages = []string{
	Module + "/internal/plan",
	Module + "/internal/cohort",
	Module + "/internal/ingest",
	Module + "/internal/server",
	Module + "/internal/scan",
}

func runChunkPin(pass *analysis.Pass) (any, error) {
	if !pathWithin(pass.Path, Module) {
		return nil, nil
	}
	consumer := pathWithinAny(pass.Path, chunkConsumerPackages...)
	for _, file := range pass.Files {
		if consumer {
			reportEagerChunkAccess(pass, file)
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPinReleases(pass, fn)
		}
	}
	return nil, nil
}

// reportEagerChunkAccess flags <table>.Chunk(i) calls in consumer packages.
// The one-argument shape distinguishes the table accessor from same-named
// zero-argument getters (e.g. scan.Scanner.Chunk()).
func reportEagerChunkAccess(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || methodCallName(call) != "Chunk" {
			return true
		}
		pass.Reportf(call.Pos(),
			"direct Chunk(i) access above the storage layer bypasses the pin protocol (cold lazy chunks panic); use PinChunk and hold the release across the scan")
		return true
	})
}

// checkPinReleases verifies every `ch, release, err := x.PinChunk(i)` in fn
// keeps its release: not blanked, and referenced again (deferred, called,
// passed, stored, or returned) after the pin.
func checkPinReleases(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || methodCallName(call) != "PinChunk" {
			return true
		}
		if len(assign.Lhs) != 3 {
			return true // not the (chunk, release, err) shape; nothing to check
		}
		rel, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if rel.Name == "_" {
			pass.Reportf(rel.Pos(),
				"PinChunk release discarded with _: the pin never drops and the chunk stays resident forever; keep the release and defer it")
			return true
		}
		if !identUsedAfter(fn.Body, rel.Name, assign.End()) {
			pass.Reportf(rel.Pos(),
				"PinChunk release %s is never used after the pin: the chunk leaks pinned; defer %s() (or forward it to the caller)",
				rel.Name, rel.Name)
		}
		return true
	})
}

// identUsedAfter reports whether name appears in body at a position after
// end (the pin assignment), i.e. the release is referenced again.
func identUsedAfter(body *ast.BlockStmt, name string, end token.Pos) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && id.Pos() > end {
			used = true
			return false
		}
		return !used
	})
	return used
}
