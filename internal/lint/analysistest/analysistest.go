// Package analysistest runs a cohana-lint analyzer over fixture packages
// under a testdata/src tree and checks its diagnostics against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest for
// the stdlib-only analysis kernel in internal/lint/analysis.
//
// Fixture layout: testdata/src/<import/path>/*.go — the directory below src
// is the package's import path verbatim, so fixtures opt into an analyzer's
// package scoping by living under a matching path (e.g.
// testdata/src/repro/internal/storage/commitpos).
//
// Expectations: a comment `// want "regex"` (double quotes or backticks, one
// or more per comment) on a source line asserts that the analyzer reports on
// that line with a message matching each regex. Diagnostics without a
// matching want, and wants without a matching diagnostic, fail the test.
// //lint:allow suppression runs before matching, exactly as in the real
// drivers, so fixtures can exercise the escape hatch.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// Run applies analyzer to each fixture package in order (facts flow from
// earlier packages to later ones) and reports expectation mismatches on t.
func Run(t *testing.T, testdata string, analyzer *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	store := make(lint.FactStore)
	for _, path := range pkgPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := parseFixture(fset, path, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := lint.RunPackage(fset, pkg, []*analysis.Analyzer{analyzer}, store)
		if err != nil {
			t.Fatalf("running %s on %s: %v", analyzer.Name, path, err)
		}
		checkExpectations(t, fset, pkg, findings)
	}
}

func parseFixture(fset *token.FileSet, path, dir string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &lint.Package{Path: path, Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", dir)
	}
	return pkg, nil
}

// wantRE extracts the quoted regexes of one want comment.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, pkg *lint.Package, findings []lint.Finding) {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: pat, re: re})
				}
			}
		}
	}

	used := make([]bool, len(findings))
	for _, w := range wants {
		for i, f := range findings {
			if used[i] || f.Pos.Filename != w.file || f.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(f.Message) {
				used[i] = true
				w.matched = true
				break
			}
		}
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	var unexpected []string
	for i, f := range findings {
		if !used[i] {
			unexpected = append(unexpected, f.String())
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic: %s", u)
	}
}
