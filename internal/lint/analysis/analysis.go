// Package analysis is a dependency-free re-implementation of the core
// golang.org/x/tools/go/analysis surface that cohana-lint builds on: the
// Analyzer / Pass / Diagnostic triple plus JSON-serializable package facts.
//
// The engine keeps a strict zero-dependency posture (stdlib only), so the
// real x/tools module is not available at build time; this package mirrors
// its shape closely enough that the analyzers in internal/lint read like —
// and could be mechanically ported to — standard go/analysis passes. The
// deliberate deviations from x/tools:
//
//   - Passes are purely syntactic: Pass carries parsed files and the package
//     import path, not *types.Package / types.Info. Every cohana invariant
//     the suite checks (goroutine spawns, commit protocols, registration
//     literals, pin regions) is decidable from the AST plus import tables.
//   - Package facts are JSON round-tripped instead of gob: the vetx files
//     the unitchecker protocol shuttles between `go vet` actions stay
//     human-inspectable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Analyzer describes one static check: a name diagnostics are keyed on (and
// that //lint:allow directives reference), documentation, and the Run
// function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	// It must be a valid identifier.
	Name string

	// Doc is the one-paragraph documentation: the invariant enforced and
	// why it holds the engine together.
	Doc string

	// Run applies the analyzer to one package. It reports diagnostics via
	// pass.Report/Reportf; the result value is unused by the cohana driver
	// and exists for x/tools signature compatibility.
	Run func(pass *Pass) (any, error)

	// FactType, when non-nil, is a pointer prototype of the package fact
	// this analyzer exports (e.g. (*ErrorDecls)(nil)). Facts flow from a
	// package to its importers in dependency order; the driver JSON-encodes
	// them across `go vet` action boundaries.
	FactType any
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass holds the inputs and outputs of one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps every token.Pos in Files to file positions.
	Fset *token.FileSet

	// Files are the package's parsed non-test source files (test files are
	// excluded in every driver mode; the suite's invariants govern library
	// code, and fixtures encode test-file exemptions structurally).
	Files []*ast.File

	// Path is the package's import path ("repro/internal/storage"). It is
	// the x/tools Pass.Pkg.Path() without the types.Package.
	Path string

	// Report delivers one diagnostic. The driver applies //lint:allow
	// suppression after collection, so analyzers report unconditionally.
	Report func(Diagnostic)

	// exportFact / importFact are wired by the driver; nil in both fields
	// means facts are unavailable (an import simply misses).
	exportFact func(fact any)
	importFact func(path string, fact any) bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportPackageFact records fact for the package under analysis, making it
// visible to ImportPackageFact in every downstream importer. fact must be
// JSON-serializable and of the analyzer's FactType.
func (p *Pass) ExportPackageFact(fact any) {
	if p.exportFact != nil {
		p.exportFact(fact)
	}
}

// ImportPackageFact loads the fact exported by the analyzer for the package
// at path into fact (a pointer of the analyzer's FactType), reporting
// whether one was found.
func (p *Pass) ImportPackageFact(path string, fact any) bool {
	return p.importFact != nil && p.importFact(path, fact)
}

// SetFactHooks wires the driver's fact store into the pass. Drivers call
// this; analyzers never do.
func (p *Pass) SetFactHooks(export func(any), importf func(string, any) bool) {
	p.exportFact = export
	p.importFact = importf
}

// Inspect walks every file in the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree. It is the x/tools
// inspector idiom without the separate inspect pass.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
