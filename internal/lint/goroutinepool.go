package lint

import (
	"go/ast"
	"path/filepath"

	"repro/internal/lint/analysis"
)

// GoroutinePool enforces bounded concurrency: engine packages do not spawn
// bare goroutines. All repeatable fan-out routes through internal/cohort's
// shared Pool (or its spawn helper), so total chunk-scan concurrency stays
// bounded no matter how many requests are in flight. The one structural
// exception is the Pool's own executor file (internal/cohort/parallel.go),
// which owns the worker goroutines and the poolless fallback; anything else
// — bounded per-shard load fan-outs below the pool layer, lifecycle
// goroutines — must justify itself with an inline
// //lint:allow goroutinepool <reason>.
var GoroutinePool = &analysis.Analyzer{
	Name: "goroutinepool",
	Doc:  "no bare goroutines in engine packages outside the cohort.Pool executor",
	Run:  runGoroutinePool,
}

// goroutinePackages are the engine packages under the bare-goroutine ban.
var goroutinePackages = []string{
	Module + "/internal/plan",
	Module + "/internal/cohort",
	Module + "/internal/ingest",
	Module + "/internal/storage",
	Module + "/internal/server",
	Module + "/internal/scan",
}

func runGoroutinePool(pass *analysis.Pass) (any, error) {
	if !pathWithinAny(pass.Path, goroutinePackages...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		filename := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if pass.Path == Module+"/internal/cohort" && filename == "parallel.go" {
			// The Pool executor itself: worker goroutines, the streaming
			// gather, and the poolless spawn fallback live here by design.
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"bare goroutine in an engine package: route the work through the shared cohort.Pool (spawn/submit) so concurrency stays bounded, or justify with //lint:allow goroutinepool <reason>")
			}
			return true
		})
	}
	return nil, nil
}
