package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
)

// CommitProto enforces the durability commit protocol in internal/storage
// and internal/ingest, where an os.Rename is a commit point and an fsync is
// an acknowledgement:
//
//   - fsync-before-rename: a function that renames must Sync the freshly
//     written file (or route through a checked commit helper) before the
//     rename, on a path lexically preceding it — otherwise the commit can
//     point at bytes the kernel never flushed.
//   - dir-sync-after-rename: the rename itself is only durable once the
//     containing directory is synced; a rename must be followed in the same
//     function by a directory sync (syncDir(...) or a later .Sync() call).
//     Helpers whose callers own the directory sync carry //lint:allow.
//   - fsync-before-ack (ingest): a buffered journal/coordinator Flush() must
//     be followed by a .Sync() before the function returns — a flushed but
//     unsynced batch would be acknowledged and lost on power failure.
//   - truncate-as-commit: a .Truncate() call (coordinator log reset) must be
//     followed by a .Sync() in the same function.
//
// The checks are per-function and lexical: the repo's commit paths are
// straight-line (early returns only), so "appears earlier/later in the
// function" is exactly "on all paths" for the code this guards.
var CommitProto = &analysis.Analyzer{
	Name: "commitproto",
	Doc:  "fsync-before-rename commits, dir syncs after renames, fsync-before-ack journaling",
	Run:  runCommitProto,
}

var commitPackages = []string{
	Module + "/internal/storage",
	Module + "/internal/ingest",
}

func runCommitProto(pass *analysis.Pass) (any, error) {
	if !pathWithinAny(pass.Path, commitPackages...) {
		return nil, nil
	}
	inIngest := pathWithin(pass.Path, Module+"/internal/ingest")
	for _, file := range pass.Files {
		names := importNames(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCommitFn(pass, fn, names, inIngest)
		}
	}
	return nil, nil
}

// commitSites records the positions of protocol-relevant calls in one
// function body, in source order.
type commitSites struct {
	renames   []token.Pos // os.Rename(...)
	syncs     []token.Pos // <expr>.Sync()
	dirSyncs  []token.Pos // syncDir(...) — the canonical directory fsync helper
	flushes   []token.Pos // <expr>.Flush()
	truncates []token.Pos // <expr>.Truncate(...)
}

func collectCommitSites(fn *ast.FuncDecl, names map[string]string) commitSites {
	var s commitSites
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgCall(call, names, "os", "Rename") {
			s.renames = append(s.renames, call.Pos())
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "syncDir" {
			s.dirSyncs = append(s.dirSyncs, call.Pos())
			return true
		}
		switch methodCallName(call) {
		case "Sync":
			s.syncs = append(s.syncs, call.Pos())
		case "Flush":
			s.flushes = append(s.flushes, call.Pos())
		case "Truncate":
			s.truncates = append(s.truncates, call.Pos())
		}
		return true
	})
	return s
}

func anyBefore(sites []token.Pos, p token.Pos) bool {
	for _, s := range sites {
		if s < p {
			return true
		}
	}
	return false
}

func anyAfter(sites []token.Pos, p token.Pos) bool {
	for _, s := range sites {
		if s > p {
			return true
		}
	}
	return false
}

func checkCommitFn(pass *analysis.Pass, fn *ast.FuncDecl, names map[string]string, inIngest bool) {
	s := collectCommitSites(fn, names)

	for _, r := range s.renames {
		if !anyBefore(s.syncs, r) {
			pass.Reportf(r,
				"os.Rename commit point in %s with no preceding File.Sync: the rename can publish bytes the kernel never flushed",
				fn.Name.Name)
		}
		if !anyAfter(s.dirSyncs, r) && !anyAfter(s.syncs, r) {
			pass.Reportf(r,
				"os.Rename in %s is not followed by a directory sync: the rename itself is not durable until the directory is fsynced (syncDir)",
				fn.Name.Name)
		}
	}

	if inIngest {
		for _, f := range s.flushes {
			if !anyAfter(s.syncs, f) {
				pass.Reportf(f,
					"journal Flush in %s with no following Sync: a flushed-but-unsynced batch is acknowledged and lost on power failure",
					fn.Name.Name)
			}
		}
	}

	for _, tr := range s.truncates {
		if !anyAfter(s.syncs, tr) {
			pass.Reportf(tr,
				"Truncate in %s with no following Sync: a truncate used as a commit point must be fsynced",
				fn.Name.Name)
		}
	}
}
