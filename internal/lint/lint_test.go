package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxFlow,
		"repro/internal/plan/ctxpos",
		"repro/cmd/fakecli",
	)
}

func TestGoroutinePool(t *testing.T) {
	analysistest.Run(t, "testdata", lint.GoroutinePool,
		"repro/internal/cohort/gofire",
		"repro/internal/cohort",      // parallel.go: the sanctioned spawn file
		"repro/internal/obs/bgspawn", // out-of-scope package
	)
}

func TestCommitProto(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CommitProto,
		"repro/internal/storage/commitpos",
		"repro/internal/ingest/journalfix",
	)
}

func TestChunkPin(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ChunkPin,
		"repro/internal/cohort/pinuse",
		"repro/internal/storage/eagerok",
	)
}

func TestErrCode(t *testing.T) {
	// Order matters: the engine fixture exports its declarations as a
	// package fact the server fixtures then import.
	analysistest.Run(t, "testdata", lint.ErrCode,
		"repro/internal/ingest/errdecls",
		"repro/internal/server/codecheck",
		"repro/internal/server/codeok",
		"repro/internal/server/nocode",
	)
}

func TestObsNames(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ObsNames,
		"repro/internal/obs/regs",
		"repro/internal/plan/metricuse",
	)
}

func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		analyzer string
		reason   string
	}{
		{"//lint:allow goroutinepool bounded fan-out", true, "goroutinepool", "bounded fan-out"},
		{"//lint:allow ctxflow   reason with   spaces ", true, "ctxflow", "reason with   spaces"},
		{"//lint:allow goroutinepool", false, "goroutinepool", ""},
		{"//lint:allow", false, "", ""},
		{"// lint:allow goroutinepool reason", false, "", ""},
		{"//nolint:allow goroutinepool reason", false, "", ""},
		{"// ordinary comment", false, "", ""},
	}
	for _, c := range cases {
		d, ok := lint.ParseAllowDirective(c.text)
		if ok != c.ok {
			t.Errorf("ParseAllowDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if ok && (d.Analyzer != c.analyzer || d.Reason != c.reason) {
			t.Errorf("ParseAllowDirective(%q) = {%q %q}, want {%q %q}",
				c.text, d.Analyzer, d.Reason, c.analyzer, c.reason)
		}
	}
}

// TestLintRepoClean is the self-check the CI gate relies on: the full suite
// over the whole repository must come back empty. A failure here names the
// offending position — fix the code or justify it with //lint:allow.
func TestLintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list over the whole module")
	}
	root := moduleRoot(t)
	findings, err := lint.LintPackages(root, []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatalf("linting repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above the test directory")
		}
		dir = parent
	}
}

// FuzzAllowDirective hardens the directive parser: arbitrary comment text
// must never panic, and a well-formed result must satisfy the invariants
// the suppression index depends on.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//lint:allow goroutinepool bounded fan-out joined below")
	f.Add("//lint:allow commitproto callers batch one directory sync after their last rename")
	f.Add("//lint:allow ctxflow Compact is the documented context-free shim")
	f.Add("//lint:allow goroutinepool")
	f.Add("//lint:allow")
	f.Add("// want \"bare goroutine in an engine package\"")
	f.Add("//lint:allow  double  spaces   everywhere")
	f.Add("//lint:allowx not really a directive")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := lint.ParseAllowDirective(text)
		if !ok {
			return
		}
		if !strings.HasPrefix(text, "//lint:allow") {
			t.Fatalf("ok directive from text without the prefix: %q", text)
		}
		if d.Analyzer == "" || d.Reason == "" {
			t.Fatalf("ok directive with empty analyzer or reason: %q -> %+v", text, d)
		}
	})
}
