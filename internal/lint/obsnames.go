package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// ObsNames statically enforces the metric naming conventions that the
// runtime TestMetricNameConventions walk checks by registering everything:
// registration literals passed to Registry.Counter/Gauge/GaugeVec/Histogram
// must be snake_case, carry the cohana_ namespace prefix, and end in the
// unit suffix their kind demands (_total for counters; _seconds/_bytes/_rows
// for histograms; gauges must NOT claim _total). Help strings must be
// non-empty and GaugeVec labels snake_case. Because the check is static, a
// misnamed metric fails `go vet` before it ever reaches a registry — or a
// dashboard.
var ObsNames = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "metric registration literals satisfy the snake_case/cohana_-prefix/unit-suffix conventions",
	Run:  runObsNames,
}

var snakeMetric = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registrationKinds maps Registry method names to metric kinds.
var registrationKinds = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeVec":  "gauge",
	"Histogram": "histogram",
}

func runObsNames(pass *analysis.Pass) (any, error) {
	if !pathWithin(pass.Path, Module) {
		return nil, nil
	}
	inObs := pathWithin(pass.Path, Module+"/internal/obs")
	for _, file := range pass.Files {
		names := importNames(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registrationKinds[methodCallName(call)]
			if !ok || len(call.Args) < 2 {
				return true
			}
			// In internal/obs every registry-shaped call is a registration;
			// elsewhere only calls through the obs package's Default
			// registry are (obs.Default.Counter(...)).
			if !inObs && !isObsDefaultRecv(call, names) {
				return true
			}
			checkRegistration(pass, call, kind)
			return true
		})
	}
	return nil, nil
}

// isObsDefaultRecv reports whether call's receiver chain is obs.Default
// (under the file's import names).
func isObsDefaultRecv(call *ast.CallExpr, names map[string]string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Default" {
		return false
	}
	id, ok := inner.X.(*ast.Ident)
	return ok && names[id.Name] == Module+"/internal/obs"
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	nameLit := stringLit(call.Args[0])
	if nameLit == nil {
		pass.Reportf(call.Args[0].Pos(),
			"metric name must be a string literal so conventions are statically checkable")
		return
	}
	name := *nameLit
	if !snakeMetric.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(), "metric %q is not snake_case", name)
	}
	if !strings.HasPrefix(name, "cohana_") {
		pass.Reportf(call.Args[0].Pos(), "metric %q is missing the cohana_ namespace prefix", name)
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") && !strings.HasSuffix(name, "_rows") {
			pass.Reportf(call.Args[0].Pos(), "histogram %q must end in _seconds, _bytes or _rows", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(call.Args[0].Pos(), "gauge %q must not end in _total (that suffix promises a counter)", name)
		}
	}
	if help := stringLit(call.Args[1]); help != nil && strings.TrimSpace(*help) == "" {
		pass.Reportf(call.Args[1].Pos(), "metric %q has an empty help string", name)
	}
	if methodCallName(call) == "GaugeVec" && len(call.Args) >= 3 {
		if label := stringLit(call.Args[2]); label != nil && !snakeMetric.MatchString(*label) {
			pass.Reportf(call.Args[2].Pos(), "gauge vec %q label %q is not snake_case", name, *label)
		}
	}
}

// stringLit returns the value of a string literal expression, or nil.
func stringLit(e ast.Expr) *string {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	s := strings.Trim(lit.Value, "`\"")
	return &s
}
