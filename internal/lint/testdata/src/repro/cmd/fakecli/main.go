// Command fakecli is the ctxflow negative fixture: cmd/ is the process
// edge, where contexts are minted, so context.Background() is silent here.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
