// Package metricuse exercises the obsnames analyzer outside internal/obs:
// only registrations through obs.Default are checked there, so arbitrary
// same-named methods on other receivers stay silent.
package metricuse

import "repro/internal/obs"

type other struct{}

func (other) Counter(a, b string) int { return 0 }

func register(o other) {
	obs.Default.Counter("plan_compiles", "Plans compiled.") // want `missing the cohana_ namespace prefix` `counter "plan_compiles" must end in _total`
	obs.Default.Counter("cohana_plan_compiles_total", "Plans compiled.")
	o.Counter("not_a_metric", "whatever")
}
