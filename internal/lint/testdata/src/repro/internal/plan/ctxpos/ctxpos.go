// Package ctxpos exercises the ctxflow analyzer: it lives under
// repro/internal/plan, so it is both library scope (Background is banned)
// and entry scope (exported blocking entry points need a cancellation path).
package ctxpos

import (
	"context"
	"sync"
)

// Runner is an exported receiver, so its exported methods are entry points.
type Runner struct {
	wg sync.WaitGroup
}

// Opts is the options-struct threading idiom: a Ctx field counts as a
// cancellation path.
type Opts struct {
	Ctx context.Context
}

// Wait blocks with no ctx parameter, no options struct and no WaitContext
// sibling: the analyzer must fire.
func (r *Runner) Wait() { // want "Wait is an exported blocking entry point with no cancellation path"
	r.wg.Wait()
}

// Gather blocks but accepts ctx: silent.
func (r *Runner) Gather(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Drain blocks but takes an options struct carrying a Ctx field: silent.
func (r *Runner) Drain(o *Opts, ch chan int) {
	v := <-ch
	_ = v
	_ = o
}

// Execute blocks without ctx but has an ExecuteContext sibling (the compat
// pair idiom): silent, and its context.Background() is the sanctioned mint.
func (r *Runner) Execute(ch chan int) {
	r.ExecuteContext(context.Background(), ch)
}

// ExecuteContext is the context-accepting half of the pair: silent.
func (r *Runner) ExecuteContext(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

// Close is the lifecycle teardown exemption: silent despite blocking.
func (r *Runner) Close() {
	r.wg.Wait()
}

// NewRunner is the constructor exemption: silent despite spawning workers
// that block.
func NewRunner(ch chan int) *Runner {
	r := &Runner{}
	<-ch
	return r
}

// detach has no Context sibling, so its Background call is flagged.
func detach(ch chan int) {
	ctx := context.Background() // want `context.Background\(\) in library code`
	_ = ctx
	todo := context.TODO() // want `context.TODO\(\) in library code`
	_ = todo
	<-ch
}

// shapeSecond takes ctx in the wrong position.
func shapeSecond(n int, ctx context.Context) { // want "context.Context must be the first parameter of shapeSecond"
	_ = n
	_ = ctx
}

// shapeName misnames the context parameter.
func shapeName(c context.Context) { // want "must be named ctx, not c"
	_ = c
}

// shapeUnused accepts ctx and drops it on the floor.
func shapeUnused(ctx context.Context, n int) int { // want "accepts ctx but never uses it"
	return n + 1
}
