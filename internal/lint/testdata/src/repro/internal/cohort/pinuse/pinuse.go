// Package pinuse exercises the chunkpin analyzer in a consumer package
// (under repro/internal/cohort): eager Chunk(i) access is banned and every
// PinChunk release must be kept.
package pinuse

type table interface {
	Chunk(i int) chunk
	PinChunk(i int) (chunk, func(), error)
}

type chunk interface {
	NumRows() int
}

// scanEager bypasses the pin protocol.
func scanEager(t table) int {
	ch := t.Chunk(0) // want `direct Chunk\(i\) access above the storage layer`
	return ch.NumRows()
}

// scanPinned is the sanctioned shape: pin, defer the release, scan.
func scanPinned(t table) (int, error) {
	ch, release, err := t.PinChunk(0)
	if err != nil {
		return 0, err
	}
	defer release()
	return ch.NumRows(), nil
}

// scanBlankRelease discards the release: the chunk stays resident forever.
func scanBlankRelease(t table) (int, error) {
	ch, _, err := t.PinChunk(0) // want "release discarded with _"
	if err != nil {
		return 0, err
	}
	return ch.NumRows(), nil
}

// scanLeakedRelease binds the release but never calls or forwards it.
func scanLeakedRelease(t table) (int, error) {
	ch, release, err := t.PinChunk(0) // want "release release is never used after the pin"
	if err != nil {
		return 0, err
	}
	return ch.NumRows(), nil
}

// scanForwarded hands the release to the caller: keeping it counts.
func scanForwarded(t table) (chunk, func(), error) {
	ch, release, err := t.PinChunk(0)
	if err != nil {
		return nil, nil, err
	}
	return ch, release, nil
}
