// Package gofire exercises the goroutinepool analyzer inside an engine
// package: bare go statements fire unless justified with //lint:allow.
package gofire

func fanOut(ch chan int) {
	go func() { // want "bare goroutine in an engine package"
		ch <- 1
	}()

	//lint:allow goroutinepool bounded one-shot helper, joined by the channel receive below
	go func() {
		ch <- 2
	}()

	// A reason-less directive is inert: the next go statement still fires.
	//lint:allow goroutinepool
	go func() { // want "bare goroutine in an engine package"
		ch <- 3
	}()

	<-ch
	<-ch
	<-ch
}
