// Package cohort here mirrors the real pool implementation file: bare go
// statements inside internal/cohort's parallel.go are the sanctioned spawn
// points, so the goroutinepool analyzer stays silent on this whole file.
package cohort

func startWorkers(tasks chan func()) {
	for i := 0; i < 4; i++ {
		go func() {
			for f := range tasks {
				f()
			}
		}()
	}
}
