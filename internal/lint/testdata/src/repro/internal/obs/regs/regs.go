// Package regs exercises the obsnames analyzer inside internal/obs, where
// every registry-shaped call is a registration.
package regs

// Registry mirrors the metric registry's registration surface.
type Registry struct{}

func (r *Registry) Counter(name, help string) int                { return 0 }
func (r *Registry) Gauge(name, help string) int                  { return 0 }
func (r *Registry) GaugeVec(name, help, label string) int        { return 0 }
func (r *Registry) Histogram(name, help string, b []float64) int { return 0 }

var dynamicName = "cohana_dynamic_total"

func register(r *Registry) {
	r.Counter("cohana_rows_ingested_total", "Rows ingested across all tables.")
	r.Gauge("cohana_delta_rows", "Rows in the live delta tier.")
	r.GaugeVec("cohana_shard_rows", "Rows per shard.", "shard_index")
	r.Histogram("cohana_append_seconds", "Append latency.", nil)

	r.Counter("cohana_Rows_total", "Rows.")                     // want `metric "cohana_Rows_total" is not snake_case`
	r.Counter("rows_total", "Rows.")                            // want `missing the cohana_ namespace prefix`
	r.Counter("cohana_rows", "Rows.")                           // want `counter "cohana_rows" must end in _total`
	r.Histogram("cohana_latency_ms", "Latency.", nil)           // want `must end in _seconds, _bytes or _rows`
	r.Gauge("cohana_live_total", "Live rows.")                  // want `gauge "cohana_live_total" must not end in _total`
	r.Counter("cohana_ticks_total", "")                         // want `has an empty help string`
	r.Counter(dynamicName, "Dynamic.")                          // want `metric name must be a string literal`
	r.GaugeVec("cohana_disk_bytes", "Disk use.", "Mount-Point") // want `label "Mount-Point" is not snake_case`
}
