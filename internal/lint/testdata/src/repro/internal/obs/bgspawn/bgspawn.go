// Package bgspawn is the goroutinepool out-of-scope negative: internal/obs
// is not an engine package, so bare goroutines are silent here.
package bgspawn

func tick(ch chan int) {
	go func() {
		ch <- 1
	}()
}
