// Package errdecls exercises the errcode analyzer's fact-exporting side: an
// engine package declaring error sentinels and error types that the server's
// codeFor must map.
package errdecls

import "errors"

// ErrMissing is an exported sentinel: collected into the package fact.
var ErrMissing = errors.New("errdecls: missing")

// BadError is an exported error type with an Error method: collected.
type BadError struct{ Reason string }

func (e BadError) Error() string { return e.Reason }

// ErrShape is exported and Err-prefixed but has no Error method, so it is
// not an error type and is not collected.
type ErrShape struct{ Cols int }

// errInternal is unexported: not part of the boundary contract.
var errInternal = errors.New("errdecls: internal")
