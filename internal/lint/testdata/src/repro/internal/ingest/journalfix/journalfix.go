// Package journalfix exercises the commitproto analyzer's ingest-only
// fsync-before-ack rule: a buffered journal Flush must be followed by a
// Sync before the function can acknowledge the batch.
package journalfix

import "os"

type journal struct {
	f *os.File
	w flusher
}

type flusher interface {
	Flush()
	Error() error
}

// appendGood flushes and fsyncs before acknowledging.
func appendGood(j *journal) error {
	j.w.Flush()
	if err := j.w.Error(); err != nil {
		return err
	}
	return j.f.Sync()
}

// appendNoSync acknowledges a batch the disk may never see.
func appendNoSync(j *journal) error {
	j.w.Flush() // want "no following Sync"
	return j.w.Error()
}
