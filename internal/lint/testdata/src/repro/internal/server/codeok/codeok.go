// Package codeok is the errcode negative: codeFor maps every declared error
// (its own and the imported engine package's) to snake_case literals.
package codeok

import (
	"errors"

	"repro/internal/ingest/errdecls"
)

// ErrKnown is mapped below.
var ErrKnown = errors.New("codeok: known")

func codeFor(err error) string {
	var bad errdecls.BadError
	switch {
	case errors.Is(err, errdecls.ErrMissing):
		return "missing_thing"
	case errors.As(err, &bad):
		return "bad_thing"
	case errors.Is(err, ErrKnown):
		return "known_thing"
	}
	return "internal"
}
