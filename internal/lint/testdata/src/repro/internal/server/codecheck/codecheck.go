// Package codecheck exercises the errcode analyzer's server side: codeFor
// must reference every error the engine packages export, and may only return
// snake_case string literals.
package codecheck

import (
	"errors"

	"repro/internal/ingest/errdecls"
)

// ErrLocal is the server's own boundary error; codeFor below forgets it.
var ErrLocal = errors.New("codecheck: local")

var fallback = "error"

func codeFor(err error) string { // want "error ErrLocal is not mapped" "error errdecls.BadError is not mapped"
	if errors.Is(err, errdecls.ErrMissing) {
		return "missing_thing"
	}
	if err != nil {
		return "Not-Snake" // want `error code "Not-Snake" is not snake_case`
	}
	return fallback // want "codeFor must return string literals only"
}
