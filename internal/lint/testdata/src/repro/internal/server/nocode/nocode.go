// Package nocode is a server package with no codeFor at all: the structured
// error contract has nowhere to live, which is itself a finding.
package nocode // want "package has no codeFor function"

func handle() string { return "ok" }
