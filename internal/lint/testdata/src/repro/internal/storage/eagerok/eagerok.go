// Package eagerok is the chunkpin scoping negative: inside the storage
// layer the eager Chunk(i) accessor is the implementation itself, so the
// analyzer stays silent on it (pin-release hygiene still applies).
package eagerok

type table interface {
	Chunk(i int) int
}

func rows(t table) int {
	return t.Chunk(0)
}
