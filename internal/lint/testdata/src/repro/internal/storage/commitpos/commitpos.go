// Package commitpos exercises the commitproto analyzer's storage rules:
// fsync-before-rename, directory sync after the rename, and truncate-as-
// commit. (The fsync-before-ack Flush rule is ingest-only; see the
// journalfix fixture.)
package commitpos

import "os"

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// commitGood follows the full protocol: write, sync, rename, dir sync.
func commitGood(f *os.File, tmp, path, dir string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// commitNoSync renames bytes the kernel may never have flushed.
func commitNoSync(tmp, path, dir string) error {
	if err := os.Rename(tmp, path); err != nil { // want "no preceding File.Sync"
		return err
	}
	return syncDir(dir)
}

// commitNoDirSync leaves the rename itself volatile.
func commitNoDirSync(f *os.File, tmp, path string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want "not followed by a directory sync"
}

// commitAllowed documents a helper whose caller owns the directory sync.
func commitAllowed(f *os.File, tmp, path string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	//lint:allow commitproto callers batch one directory sync after their last rename
	return os.Rename(tmp, path)
}

// resetGood truncates as a commit point and fsyncs it.
func resetGood(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	return f.Sync()
}

// resetNoSync truncates without making the truncation durable.
func resetNoSync(f *os.File) error {
	return f.Truncate(0) // want "Truncate in resetNoSync with no following Sync"
}

// bufFlusher stands in for a buffered writer; storage has no fsync-before-ack
// rule, so a Flush without Sync is silent here (scoping negative).
type bufFlusher struct{}

func (bufFlusher) Flush() error { return nil }

func flushOnly(w bufFlusher) error {
	return w.Flush()
}
