package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/activity"
	"repro/internal/ingest"
	"repro/internal/storage"
)

// Write-amplification measurements for the JSON perf report: how many bytes a
// compaction's incremental persistence actually writes, as a function of the
// delta's user skew. Chunk-granular compaction re-encodes (and the manifest
// commit re-writes) only the chunks owning delta users, so a hot-user delta —
// the zipf shape `datagen -zipf` models — must persist strictly fewer bytes
// than a uniform delta of the same row count, which spreads over many chunks.
// The sweep pins that inequality per shard count and the baseline gate fails
// CI when the persisted bytes regress past the configured factor (the
// write-amplification counterpart of the query-latency gate).

// CompactPersistCase is one delta shape's measured persistence cost.
type CompactPersistCase struct {
	// DistinctUsers is how many users the delta's rows spread over.
	DistinctUsers int `json:"distinctUsers"`
	// BytesWritten is what the manifest commit persisted for the compaction:
	// new chunk segments plus the manifest.
	BytesWritten int64 `json:"bytesWritten"`
	// SegmentsWritten / SegmentsReused count chunk segment files written vs
	// already on disk; ChunksRebuilt / ChunksReused the compactor's split.
	SegmentsWritten int `json:"segmentsWritten"`
	SegmentsReused  int `json:"segmentsReused"`
	ChunksRebuilt   int `json:"chunksRebuilt"`
	ChunksReused    int `json:"chunksReused"`
}

// CompactPersistReport is one shard count's uniform-vs-zipf comparison.
type CompactPersistReport struct {
	Shards int `json:"shards"`
	// Rows is the sealed table size; DeltaRows the appended row count (equal
	// for both delta shapes); TotalChunks the sealed chunk count before the
	// compaction.
	Rows        int `json:"rows"`
	DeltaRows   int `json:"deltaRows"`
	TotalChunks int `json:"totalChunks"`
	// Uniform spreads the delta evenly over the user space; Zipf concentrates
	// it on a few hot users.
	Uniform CompactPersistCase `json:"uniform"`
	Zipf    CompactPersistCase `json:"zipf"`
}

// persistDeltaRows fabricates n delta rows over the given existing users,
// cycling through them. Timestamps sit far above anything the generator
// emits, so the rows never collide with sealed primary keys.
func persistDeltaRows(schema *activity.Schema, users []string, n int) []ingest.Row {
	rows := make([]ingest.Row, 0, n)
	for i := 0; i < n; i++ {
		r, err := ingest.RowFromValues(schema,
			users[i%len(users)], int64(2_000_000_000+i), "shop", "China", "Beijing", "mage", int64(3), int64(i%40))
		if err != nil {
			panic(err)
		}
		rows = append(rows, r)
	}
	return rows
}

// distinctUsers lists the sorted distinct users of a sorted source table.
func distinctUsers(src *activity.Table) []string {
	var out []string
	src.UserBlocks(func(user string, _, _ int) { out = append(out, user) })
	return out
}

// uniformUsers picks ~spread users evenly across the sorted user space, so
// the delta lands in as many chunks as possible.
func uniformUsers(users []string, spread int) []string {
	if spread > len(users) {
		spread = len(users)
	}
	out := make([]string, 0, spread)
	for i := 0; i < spread; i++ {
		out = append(out, users[i*len(users)/spread])
	}
	return out
}

// zipfUsers draws spread users zipf-distributed over the user ranks — most
// draws land on a handful of hot users, the shape of live traffic — and
// returns the distinct hot set.
func zipfUsers(users []string, spread int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.5, 1, uint64(len(users)-1))
	seen := map[string]bool{}
	var out []string
	for i := 0; i < spread; i++ {
		u := users[z.Uint64()]
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}

// measurePersist builds a fresh on-disk table from sealed, appends the delta,
// compacts, and reports what the compaction's incremental commit wrote.
func measurePersist(sealed *storage.Sharded, rows []ingest.Row) (CompactPersistCase, error) {
	var c CompactPersistCase
	dir, err := os.MkdirTemp("", "cohana-writeamp-*")
	if err != nil {
		return c, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.cohana")
	// The initial full commit is table setup, not compaction cost.
	if _, err := storage.CommitSharded(path, sealed); err != nil {
		return c, err
	}
	var commits storage.CommitStats
	lt, err := ingest.OpenSharded(sealed, ingest.Config{
		Persist: func(d storage.LayoutDelta) error {
			st, err := storage.CommitSharded(path, d.Layout)
			if err == nil {
				commits.Add(st)
				c.ChunksRebuilt += d.ChunksRebuilt
				c.ChunksReused += d.ChunksReused
			}
			return err
		},
	})
	if err != nil {
		return c, err
	}
	if err := lt.Append(rows); err != nil {
		return c, err
	}
	if err := lt.Compact(); err != nil {
		return c, err
	}
	if err := lt.Close(); err != nil {
		return c, err
	}
	c.BytesWritten = commits.BytesWritten
	c.SegmentsWritten = commits.SegmentsWritten
	c.SegmentsReused = commits.SegmentsReused
	return c, nil
}

// CompactionPersist measures the uniform-vs-zipf persisted-bytes sweep across
// ShardScales at the given scale and chunk size.
func CompactionPersist(wl *Workload, scale, chunkSize, deltaRows int) ([]CompactPersistReport, error) {
	src := wl.Source(scale)
	users := distinctUsers(src)
	uniform := uniformUsers(users, 200)
	zipf := zipfUsers(users, 200, wl.Seed)
	out := make([]CompactPersistReport, 0, len(ShardScales))
	for _, shards := range ShardScales {
		sealed, err := storage.BuildSharded(src, shards, storage.Options{ChunkSize: chunkSize})
		if err != nil {
			return nil, err
		}
		rep := CompactPersistReport{
			Shards:      shards,
			Rows:        src.Len(),
			DeltaRows:   deltaRows,
			TotalChunks: sealed.NumChunks(),
		}
		schema := wl.Schema()
		u, err := measurePersist(sealed, persistDeltaRows(schema, uniform, deltaRows))
		if err != nil {
			return nil, fmt.Errorf("bench: uniform persist at %d shards: %w", shards, err)
		}
		z, err := measurePersist(sealed, persistDeltaRows(schema, zipf, deltaRows))
		if err != nil {
			return nil, fmt.Errorf("bench: zipf persist at %d shards: %w", shards, err)
		}
		u.DistinctUsers, z.DistinctUsers = len(uniform), len(zipf)
		rep.Uniform, rep.Zipf = u, z
		out = append(out, rep)
	}
	return out, nil
}
