package bench

import (
	"fmt"
	"runtime"

	"repro/internal/ingest"
	"repro/internal/storage"
)

// Shard-scaling measurements for the JSON perf report: how table build and
// compaction respond to the shard count. Build scales through per-shard
// parallelism (shards compress concurrently). Compaction is measured two
// ways, because sharding helps it twice over:
//
//   - "uniform": delta rows spread over many users, so every shard is dirty
//     and compactions run concurrently — the parallel win, visible when
//     GOMAXPROCS > 1;
//   - "hot": delta rows from a handful of users, the shape of live traffic
//     against a large historical table. Only the owning shards rebuild, so
//     the win is work avoided — an unsharded table rebuilds everything for
//     two users' rows — and shows regardless of core count.
//
// The report records GOMAXPROCS so the two effects can be told apart.

// ShardScales is the shard-count sweep of the JSON report.
var ShardScales = []int{1, 2, 4}

// ShardScaleReport is one shard count's build and compaction measurements.
type ShardScaleReport struct {
	Shards int `json:"shards"`
	// Rows is the sealed table size being built / compacted into.
	Rows int `json:"rows"`
	// BuildNsPerOp is the median wall time of BuildSharded at this count;
	// BuildSpeedup is shards=1's time divided by this one.
	BuildNsPerOp int64   `json:"buildNsPerOp"`
	BuildSpeedup float64 `json:"buildSpeedup"`
	// CompactUniformNsPerOp seals a delta touching every shard;
	// CompactHotNsPerOp seals a two-user delta (only the owning shards
	// rebuild). The speedups are against shards=1.
	CompactUniformNsPerOp int64   `json:"compactUniformNsPerOp"`
	CompactUniformSpeedup float64 `json:"compactUniformSpeedup"`
	CompactHotNsPerOp     int64   `json:"compactHotNsPerOp"`
	CompactHotSpeedup     float64 `json:"compactHotSpeedup"`
}

// deltaRows fabricates n fresh-user activity rows (users the workload never
// generates, so appends cannot collide with sealed primary keys) spread over
// the given number of distinct users.
func deltaRows(wl *Workload, users, n int) []ingest.Row {
	schema := wl.Schema()
	rows := make([]ingest.Row, 0, n)
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("live-user-%05d", i%users)
		r, err := ingest.RowFromValues(schema,
			u, int64(1369000000+i*7), "launch", "China", "Beijing", "mage", int64(3), int64(i%40))
		if err != nil {
			panic(err)
		}
		rows = append(rows, r)
	}
	return rows
}

// measureCompact times Compact on a fresh live table over sealed with the
// given delta appended, repeated and medianed.
func measureCompact(sealed *storage.Sharded, rows []ingest.Row, repeats int) (int64, error) {
	var firstErr error
	d := timeIt(repeats, func() {
		lt, err := ingest.OpenSharded(sealed, ingest.Config{})
		if err == nil {
			err = lt.Append(rows)
		}
		if err == nil {
			err = lt.Compact()
		}
		if err == nil {
			err = lt.Close()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return d.Nanoseconds(), firstErr
}

// ShardScaling measures build and compaction across ShardScales at the
// given scale and chunk size.
func ShardScaling(wl *Workload, scale, chunkSize, repeats int) ([]ShardScaleReport, error) {
	src := wl.Source(scale)
	// A delta shaped like live traffic against the sealed history: uniform
	// touches ~200 users (every shard at any count in the sweep), hot
	// touches 2.
	uniform := deltaRows(wl, 200, 4000)
	hot := deltaRows(wl, 2, 4000)
	out := make([]ShardScaleReport, 0, len(ShardScales))
	var base ShardScaleReport
	for _, shards := range ShardScales {
		rep := ShardScaleReport{Shards: shards, Rows: src.Len()}
		var sealed *storage.Sharded
		buildNs := timeIt(repeats, func() {
			var err error
			sealed, err = storage.BuildSharded(src, shards, storage.Options{ChunkSize: chunkSize})
			if err != nil {
				panic(err)
			}
		})
		rep.BuildNsPerOp = buildNs.Nanoseconds()
		var err error
		if rep.CompactUniformNsPerOp, err = measureCompact(sealed, uniform, repeats); err != nil {
			return nil, fmt.Errorf("bench: uniform compaction at %d shards: %w", shards, err)
		}
		if rep.CompactHotNsPerOp, err = measureCompact(sealed, hot, repeats); err != nil {
			return nil, fmt.Errorf("bench: hot compaction at %d shards: %w", shards, err)
		}
		if shards == 1 {
			base = rep
		}
		if base.BuildNsPerOp > 0 {
			rep.BuildSpeedup = round2(float64(base.BuildNsPerOp) / float64(rep.BuildNsPerOp))
		}
		if base.CompactUniformNsPerOp > 0 {
			rep.CompactUniformSpeedup = round2(float64(base.CompactUniformNsPerOp) / float64(rep.CompactUniformNsPerOp))
		}
		if base.CompactHotNsPerOp > 0 {
			rep.CompactHotSpeedup = round2(float64(base.CompactHotNsPerOp) / float64(rep.CompactHotNsPerOp))
		}
		out = append(out, rep)
	}
	return out, nil
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// MaxProcs reports the core budget the shard-parallel measurements ran
// under, so a 1x build "speedup" on a single-core runner reads as what it
// is.
func MaxProcs() int { return runtime.GOMAXPROCS(0) }
