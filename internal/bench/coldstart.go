package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

// The cold-start sweep of the perf report: what lazy segment loading buys at
// open time. A paper-density table (~1200 tuples per user, large chunks, so
// segment decode — not metadata parse — dominates an eager open, as it does
// on any table worth loading lazily) is committed to disk (manifest +
// content-addressed segments) and reopened eager — every segment read and
// decoded up front — versus lazy at two chunk-cache budgets: unbounded
// ("100%") and a tenth of the table's segment bytes ("10%", the
// table-larger-than-RAM stand-in). Each mode measures the open latency, the
// segment reads the open itself performed, the first-query latency on the
// cold table, and the decoded bytes resident once that query finishes.

// coldStartMeanActions is the sweep table's tuple density. The paper's
// dataset carries ~500 activity tuples per user; the figure workload's
// default (60) is far thinner, which would understate what an eager open
// decodes. coldStartChunkSize sizes chunks so per-chunk metadata stays a
// sliver of per-chunk data.
const (
	coldStartMeanActions = 1200
	coldStartChunkSize   = 8192
)

// ColdStartCase is one (mode, budget) measurement.
type ColdStartCase struct {
	// Mode is "eager", "lazy" (unbounded budget) or "lazy-10pct".
	Mode string `json:"mode"`
	// BudgetBytes is the chunk-cache budget (0 = unbounded; eager has none).
	BudgetBytes int64 `json:"budgetBytes"`
	// OpenNsPerOp is the median open (manifest + eager decode) latency.
	OpenNsPerOp int64 `json:"openNsPerOp"`
	// OpenSegmentReads counts segments read by one open: the whole table for
	// eager, and — the O(manifest) cold-start contract — zero for lazy.
	OpenSegmentReads uint64 `json:"openSegmentReads"`
	// FirstQueryNsPerOp is Q1 on the freshly opened table (cold chunks on
	// the lazy paths pay their loads here).
	FirstQueryNsPerOp int64 `json:"firstQueryNsPerOp"`
	// ResidentBytes is the decoded segment bytes held in memory after the
	// first query: the whole table for eager, cache-resident bytes for lazy
	// (bounded by the budget once pins drop).
	ResidentBytes int64 `json:"residentBytes"`
}

// ColdStartReport is the sweep at one scale.
type ColdStartReport struct {
	Scale int `json:"scale"`
	// Rows, Chunks and SegmentBytes describe the committed table.
	Rows         int             `json:"rows"`
	Chunks       int             `json:"chunks"`
	SegmentBytes int64           `json:"segmentBytes"`
	Cases        []ColdStartCase `json:"cases"`
	// OpenSpeedup is eager open ns over lazy (unbounded) open ns.
	OpenSpeedup float64 `json:"openSpeedup"`
}

// ColdStart commits a paper-density table at one scale and measures eager
// vs lazy reopen cost at budgets {10%, 100%}.
func ColdStart(wl *Workload, scale, repeats int) (*ColdStartReport, error) {
	src := gen.Generate(gen.Config{
		Users: wl.BaseUsers, Scale: scale, Seed: wl.Seed,
		MeanActions: coldStartMeanActions,
	})
	sharded, err := storage.BuildSharded(src, 2, storage.Options{ChunkSize: coldStartChunkSize})
	if err != nil {
		return nil, fmt.Errorf("bench: cold start build: %w", err)
	}
	dir, err := os.MkdirTemp("", "cohana-coldstart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "w.cohana")
	if _, err := storage.CommitSharded(path, sharded); err != nil {
		return nil, fmt.Errorf("bench: cold start commit: %w", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.cohseg"))
	if err != nil {
		return nil, err
	}
	var segBytes int64
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			return nil, err
		}
		segBytes += fi.Size()
	}
	rep := &ColdStartReport{Scale: scale, Rows: src.Len(), Chunks: sharded.NumChunks(), SegmentBytes: segBytes}

	q := Q1()
	runQuery := func(s *storage.Sharded) error {
		inputs := make([]plan.ShardInput, s.NumShards())
		for i := range inputs {
			inputs[i] = plan.ShardInput{Sealed: s.Shard(i)}
		}
		_, err := plan.ExecuteShards(q, inputs, plan.ExecOptions{})
		return err
	}

	// mk builds the open options for one attempt; lazy modes return a fresh
	// private cache each time, so every open is genuinely cold.
	measure := func(mode string, budget int64, mk func() storage.ReadOptions) (ColdStartCase, error) {
		c := ColdStartCase{Mode: mode, BudgetBytes: budget}
		// One counted open for the deterministic segment-read tally...
		o := mk()
		before := obs.SegmentReadsTotal.Value()
		s, err := storage.ReadShardedWith(path, o)
		if err != nil {
			return c, err
		}
		c.OpenSegmentReads = obs.SegmentReadsTotal.Value() - before
		// ...then the cold first query on it...
		t0 := time.Now()
		if err := runQuery(s); err != nil {
			return c, err
		}
		c.FirstQueryNsPerOp = time.Since(t0).Nanoseconds()
		if o.Cache != nil {
			// Cache-resident decoded bytes; each lazy case owns its cache,
			// so this is exactly what this open's scans left behind.
			c.ResidentBytes = o.Cache.Stats().ResidentBytes
		} else {
			c.ResidentBytes = segBytes // eager decodes everything up front
		}
		// ...then timed repeat opens (each with a fresh cache, so lazy pays
		// its real manifest-only cost and eager its full decode every time).
		c.OpenNsPerOp = timeIt(repeats, func() {
			if _, err := storage.ReadShardedWith(path, mk()); err != nil {
				panic(err)
			}
		}).Nanoseconds()
		return c, nil
	}

	eager, err := measure("eager", 0, func() storage.ReadOptions { return storage.ReadOptions{} })
	if err != nil {
		return nil, fmt.Errorf("bench: cold start eager: %w", err)
	}
	lazyOpts := func(budget int64) func() storage.ReadOptions {
		return func() storage.ReadOptions {
			return storage.ReadOptions{Lazy: true, Cache: storage.NewChunkCache(budget)}
		}
	}
	lazy, err := measure("lazy", 0, lazyOpts(0))
	if err != nil {
		return nil, fmt.Errorf("bench: cold start lazy: %w", err)
	}
	budget := segBytes / 10
	if budget < 1 {
		budget = 1
	}
	lazyTight, err := measure("lazy-10pct", budget, lazyOpts(budget))
	if err != nil {
		return nil, fmt.Errorf("bench: cold start lazy-10pct: %w", err)
	}
	rep.Cases = []ColdStartCase{eager, lazy, lazyTight}
	if lazy.OpenNsPerOp > 0 {
		rep.OpenSpeedup = float64(eager.OpenNsPerOp) / float64(lazy.OpenNsPerOp)
	}
	return rep, nil
}
