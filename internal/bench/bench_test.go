package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cohort"
)

func tinyWorkload() *Workload { return NewWorkload(60, 1) }

func TestWorkloadCaches(t *testing.T) {
	wl := tinyWorkload()
	a := wl.Source(1)
	b := wl.Source(1)
	if a != b {
		t.Error("Source not cached")
	}
	s1 := wl.Store(1, 1024)
	s2 := wl.Store(1, 1024)
	if s1 != s2 {
		t.Error("Store not cached")
	}
	if wl.Store(1, 2048) == s1 {
		t.Error("different chunk sizes share a store")
	}
}

func TestSchemesAgreeOnBenchmarkQueries(t *testing.T) {
	wl := tinyWorkload()
	var buf bytes.Buffer
	if err := VerifySchemes(&buf, wl); err != nil {
		t.Fatal(err)
	}
	for _, qn := range CoreQueryNames {
		if !strings.Contains(buf.String(), qn+": all schemes agree") {
			t.Errorf("missing agreement line for %s:\n%s", qn, buf.String())
		}
	}
}

func TestParameterizedQueriesAgree(t *testing.T) {
	wl := tinyWorkload()
	queries := map[string]*cohort.Query{
		"Q5": Q5("2013-05-19", "2013-05-25"),
		"Q6": Q6("2013-05-19", "2013-05-25"),
		"Q7": Q7(5),
		"Q8": Q8(5),
	}
	for name, q := range queries {
		_, want, err := wl.Run(COHANA, q, 1, 4096)
		if err != nil {
			t.Fatalf("%s: COHANA: %v", name, err)
		}
		for _, s := range []Scheme{MonetS, PGM} {
			_, got, err := wl.Run(s, q, 1, 4096)
			if err != nil {
				t.Fatalf("%s: %s: %v", name, s, err)
			}
			if diff := want.Diff(got); diff != "" {
				t.Errorf("%s: %s disagrees: %s", name, s, diff)
			}
		}
	}
}

func TestBirthCDFMonotone(t *testing.T) {
	wl := tinyWorkload()
	cdf := wl.BirthCDF(1, 40)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF decreases at %d: %v -> %v", i, cdf[i-1], cdf[i])
		}
	}
	if cdf[len(cdf)-1] < 0.99 {
		t.Errorf("CDF does not reach 1: %v", cdf[len(cdf)-1])
	}
}

func TestBuildTimesPositive(t *testing.T) {
	wl := tinyWorkload()
	c, m, p := wl.BuildTimes(1, "launch")
	if c <= 0 || m <= 0 || p <= 0 {
		t.Errorf("build times: cohana=%v monet=%v pg=%v", c, m, p)
	}
}

func TestFigureDriversRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure drivers are slow")
	}
	wl := tinyWorkload()
	opts := FigureOptions{Scales: []int{1}, ChunkSizes: []int{1024, 4096}, Repeats: 1}
	var buf bytes.Buffer
	if err := Figure6(&buf, wl, opts); err != nil {
		t.Fatal(err)
	}
	if err := Figure7(&buf, wl, opts); err != nil {
		t.Fatal(err)
	}
	if err := Figure8(&buf, wl, opts); err != nil {
		t.Fatal(err)
	}
	if err := Figure9(&buf, wl, opts); err != nil {
		t.Fatal(err)
	}
	if err := Figure10(&buf, wl, opts); err != nil {
		t.Fatal(err)
	}
	if err := Figure11(&buf, wl, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11", "COHANA", "PG-S"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtChunk(256*1024) != "256K" || fmtChunk(1<<20) != "1M" || fmtChunk(100) != "100" {
		t.Error("fmtChunk wrong")
	}
	if fmtBytes(2048) != "2.0KB" || fmtBytes(3<<20) != "3.0MB" || fmtBytes(10) != "10B" {
		t.Error("fmtBytes wrong")
	}
}
