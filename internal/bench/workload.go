// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section 5): it caches generated datasets across
// scales and chunk sizes, runs each evaluation scheme (COHANA, SQL and MV on
// the row and column substrates) over the benchmark queries Q1-Q8, and
// prints the same rows/series the paper plots. Absolute numbers differ from
// the paper's testbed; the comparisons (who wins, by roughly what factor,
// where the trends bend) are the reproduction target.
package bench

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/baseline"
	"repro/internal/cohort"
	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/relational"
	"repro/internal/storage"
)

// Workload lazily builds and caches every artifact the figures need.
type Workload struct {
	// BaseUsers is the number of users at scale 1.
	BaseUsers int
	// Seed drives the generator.
	Seed int64

	src    map[int]*activity.Table   // scale -> raw table
	stores map[[2]int]*storage.Table // (scale, chunkSize) -> COHANA table
	rels   map[int]*relational.Table // scale -> relational D
	mvs    map[string]*baseline.MV   // "<engine>/<scale>/<action>" -> MV
}

// NewWorkload creates a workload cache. baseUsers <= 0 selects 300 users at
// scale 1 (laptop-friendly; raise it to approach the paper's 57,077).
func NewWorkload(baseUsers int, seed int64) *Workload {
	if baseUsers <= 0 {
		baseUsers = 300
	}
	return &Workload{
		BaseUsers: baseUsers,
		Seed:      seed,
		src:       map[int]*activity.Table{},
		stores:    map[[2]int]*storage.Table{},
		rels:      map[int]*relational.Table{},
		mvs:       map[string]*baseline.MV{},
	}
}

// Source returns the raw activity table at a scale.
func (w *Workload) Source(scale int) *activity.Table {
	if t, ok := w.src[scale]; ok {
		return t
	}
	t := gen.Generate(gen.Config{Users: w.BaseUsers, Scale: scale, Seed: w.Seed})
	w.src[scale] = t
	return t
}

// Store returns the COHANA table at (scale, chunkSize).
func (w *Workload) Store(scale, chunkSize int) *storage.Table {
	key := [2]int{scale, chunkSize}
	if st, ok := w.stores[key]; ok {
		return st
	}
	st, err := storage.Build(w.Source(scale), storage.Options{ChunkSize: chunkSize})
	if err != nil {
		panic(err)
	}
	w.stores[key] = st
	return st
}

// Relational returns the baseline input table D at a scale.
func (w *Workload) Relational(scale int) *relational.Table {
	if d, ok := w.rels[scale]; ok {
		return d
	}
	d := baseline.FromActivity(w.Source(scale))
	w.rels[scale] = d
	return d
}

// MV returns (building and caching if needed) the materialized view for a
// birth action on the given engine and scale.
func (w *Workload) MV(eng relational.Engine, scale int, action string) *baseline.MV {
	key := fmt.Sprintf("%s/%d/%s", eng.Name(), scale, action)
	if mv, ok := w.mvs[key]; ok {
		return mv
	}
	mv := baseline.BuildMV(eng, w.Relational(scale), w.Source(scale).Schema(), action)
	w.mvs[key] = mv
	return mv
}

// Schema returns the workload's activity schema.
func (w *Workload) Schema() *activity.Schema { return w.Source(1).Schema() }

// Scheme identifies an evaluation scheme of the comparative study
// (Figure 11's series).
type Scheme string

// The five schemes of Figure 11. "PG" is the Volcano row engine, "MONET" the
// column-at-a-time engine; "-S" is the SQL approach, "-M" the materialized
// view approach.
const (
	COHANA Scheme = "COHANA"
	MonetM Scheme = "MONET-M"
	MonetS Scheme = "MONET-S"
	PGM    Scheme = "PG-M"
	PGS    Scheme = "PG-S"
)

// AllSchemes lists the Figure 11 series in the paper's legend order.
var AllSchemes = []Scheme{COHANA, MonetM, MonetS, PGM, PGS}

func (s Scheme) engine() relational.Engine {
	switch s {
	case MonetM, MonetS:
		return relational.ColEngine{}
	default:
		return relational.RowEngine{}
	}
}

// Run executes query q under scheme s at the given scale and chunk size,
// returning the wall-clock duration and the result. MV build time is not
// charged to the query (it is reported separately, as in Figure 10).
func (w *Workload) Run(s Scheme, q *cohort.Query, scale, chunkSize int) (time.Duration, *cohort.Result, error) {
	switch s {
	case COHANA:
		st := w.Store(scale, chunkSize)
		t0 := time.Now()
		res, err := plan.Execute(q, st, plan.ExecOptions{})
		return time.Since(t0), res, err
	case MonetS, PGS:
		d := w.Relational(scale)
		t0 := time.Now()
		res, err := baseline.SQLApproach(s.engine(), d, w.Schema(), q)
		return time.Since(t0), res, err
	case MonetM, PGM:
		mv := w.MV(s.engine(), scale, q.BirthAction)
		t0 := time.Now()
		res, err := baseline.MVQuery(s.engine(), mv, q)
		return time.Since(t0), res, err
	default:
		return 0, nil, fmt.Errorf("bench: unknown scheme %q", s)
	}
}

// BirthActions are the paper's three birth actions (Section 5.1). The MV
// scheme needs one view per birth action — the "per birth action per MV"
// scaling problem Section 2 calls out — so Figure 10 charges MV generation
// for all three (the paper's 15 additional columns via six joins).
var BirthActions = []string{"launch", "shop", "achievement"}

// BuildTimes measures preprocessing cost at a scale: COHANA compression
// versus MV construction (for every birth action) per engine (Figure 10).
// Each measurement builds from scratch (bypassing the caches).
func (w *Workload) BuildTimes(scale int, _ string) (cohanaBuild, monetMV, pgMV time.Duration) {
	src := w.Source(scale)
	d := w.Relational(scale)
	t0 := time.Now()
	if _, err := storage.Build(src, storage.Options{ChunkSize: storage.DefaultChunkSize}); err != nil {
		panic(err)
	}
	cohanaBuild = time.Since(t0)
	t0 = time.Now()
	for _, a := range BirthActions {
		baseline.BuildMV(relational.ColEngine{}, d, src.Schema(), a)
	}
	monetMV = time.Since(t0)
	t0 = time.Now()
	for _, a := range BirthActions {
		baseline.BuildMV(relational.RowEngine{}, d, src.Schema(), a)
	}
	pgMV = time.Since(t0)
	return
}

// BirthCDF returns the cumulative fraction of users born on or before each
// day offset, the curve plotted in Figure 8.
func (w *Workload) BirthCDF(scale int, days int) []float64 {
	src := w.Source(scale)
	counts := make([]int, days)
	total := 0
	src.UserBlocks(func(_ string, s, _ int) {
		d := int((src.Time(s) - gen.StartTime) / activity.SecondsPerDay)
		if d >= 0 && d < days {
			counts[d]++
		}
		total++
	})
	cdf := make([]float64, days)
	acc := 0
	for i, c := range counts {
		acc += c
		cdf[i] = float64(acc) / float64(total)
	}
	return cdf
}
