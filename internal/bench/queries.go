package bench

import (
	"fmt"

	"repro/internal/cohort"
	"repro/internal/parser"
)

// The benchmark queries of Section 5.2, expressed verbatim in the paper's
// cohort syntax and run through the real parser so the harness exercises the
// full stack. Q5-Q8 are parameterized variants used by Figures 8 and 9.

// mustQuery compiles a query source string, panicking on error (the sources
// are package constants).
func mustQuery(src string) *cohort.Query {
	stmt, err := parser.ParseCohort(src)
	if err != nil {
		panic(fmt.Sprintf("bench: bad benchmark query: %v\n%s", err, src))
	}
	return stmt.Query
}

// The Q1-Q4 source texts, exported through CoreQuerySources so sweeps that
// exercise the textual front end (e.g. the plan-cache repeat measurement)
// submit exactly the benchmark queries.
const (
	srcQ1 = `
		SELECT country, CohortSize, Age, UserCount()
		FROM GameActions BIRTH FROM action = "launch"
		COHORT BY country`
	srcQ2 = `
		SELECT country, COHORTSIZE, AGE, UserCount()
		FROM GameActions BIRTH FROM action = "launch" AND
		time BETWEEN "2013-05-21" AND "2013-05-27"
		COHORT BY country`
	srcQ3 = `
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions BIRTH FROM action = "shop"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`
	srcQ4 = `
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions BIRTH FROM action = "shop" AND
		time BETWEEN "2013-05-21" AND "2013-05-27" AND
		role = "dwarf" AND
		country IN ["China", "Australia", "United States"]
		AGE ACTIVITIES IN action = "shop" AND country = Birth(country)
		COHORT BY country`
)

// Q1: for each country launch cohort, the number of retained users who did
// at least one action since they first launched the game.
func Q1() *cohort.Query { return mustQuery(srcQ1) }

// Q2: Q1 restricted to cohorts born in a specific date range.
func Q2() *cohort.Query { return mustQuery(srcQ2) }

// Q3: for each country shop cohort, the average gold spent in shopping
// since the first shop.
func Q3() *cohort.Query { return mustQuery(srcQ3) }

// Q4: all three operators — birth date range, birth role and country list,
// age activities shopping in the birth country.
func Q4() *cohort.Query { return mustQuery(srcQ4) }

// CoreQuerySources returns the Q1-Q4 source texts in CoreQueryNames order.
func CoreQuerySources() map[string]string {
	return map[string]string{"Q1": srcQ1, "Q2": srcQ2, "Q3": srcQ3, "Q4": srcQ4}
}

// Q5 is Q1 with a birth date range [d1, d2] (Figure 8's x-axis sweeps d2).
func Q5(d1, d2 string) *cohort.Query {
	return mustQuery(fmt.Sprintf(`
		SELECT country, COHORTSIZE, AGE, UserCount()
		FROM GameActions
		BIRTH FROM action = "launch" AND time BETWEEN %q AND %q
		COHORT BY country`, d1, d2))
}

// Q6 is Q3 with a birth date range.
func Q6(d1, d2 string) *cohort.Query {
	return mustQuery(fmt.Sprintf(`
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions
		BIRTH FROM action = "shop" AND time BETWEEN %q AND %q
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`, d1, d2))
}

// Q7 is Q1 limited to ages below g days (Figure 9's x-axis sweeps g).
func Q7(g int) *cohort.Query {
	return mustQuery(fmt.Sprintf(`
		SELECT country, COHORTSIZE, AGE, UserCount()
		FROM GameActions BIRTH FROM action = "launch"
		AGE ACTIVITIES in AGE < %d
		COHORT BY country`, g))
}

// Q8 is Q3 limited to ages below g days.
func Q8(g int) *cohort.Query {
	return mustQuery(fmt.Sprintf(`
		SELECT country, COHORTSIZE, AGE, Avg(gold)
		FROM GameActions BIRTH FROM action = "shop"
		AGE ACTIVITIES IN action = "shop" AND AGE < %d
		COHORT BY country`, g))
}

// CoreQueries returns Q1-Q4, the queries of Figures 6 and 11.
func CoreQueries() map[string]*cohort.Query {
	return map[string]*cohort.Query{"Q1": Q1(), "Q2": Q2(), "Q3": Q3(), "Q4": Q4()}
}

// CoreQueryNames is the display order of CoreQueries.
var CoreQueryNames = []string{"Q1", "Q2", "Q3", "Q4"}
