package bench

import (
	"encoding/json"
	"os"
	"time"
)

// The JSON perf report is the machine-readable counterpart of the printed
// figures: one record per (query, scale) with ns/op and rows/s, written by
// `cohana-bench -json out.json` so the performance trajectory can be diffed
// across PRs instead of eyeballed from tables.

// Report is the top-level JSON document.
type Report struct {
	// GeneratedAt is the RFC3339 UTC timestamp of the run.
	GeneratedAt string `json:"generatedAt"`
	// Users and Seed identify the synthetic workload; ChunkSize and Repeats
	// the measurement configuration.
	Users     int   `json:"users"`
	Seed      int64 `json:"seed"`
	ChunkSize int   `json:"chunkSize"`
	Repeats   int   `json:"repeats"`
	// Queries holds one record per (query, scale), in CoreQueryNames order.
	Queries []QueryReport `json:"queries"`
}

// QueryReport is one measured query execution.
type QueryReport struct {
	Query string `json:"query"`
	Scale int    `json:"scale"`
	// Rows is the activity table size the query scanned over.
	Rows int `json:"rows"`
	// NsPerOp is the median execution time in nanoseconds.
	NsPerOp int64 `json:"nsPerOp"`
	// RowsPerSec is the scan throughput implied by NsPerOp.
	RowsPerSec float64 `json:"rowsPerSec"`
	// ResultRows sanity-checks that the measured run produced output.
	ResultRows int `json:"resultRows"`
}

// JSONReport measures Q1-Q4 at every configured scale and returns the
// report. The chunk size is the first of opts.ChunkSizes (the sweep's
// smallest by default), matching the figures' build configuration.
func JSONReport(wl *Workload, opts FigureOptions) (*Report, error) {
	opts = opts.withDefaults()
	chunkSize := opts.ChunkSizes[0]
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Users:       wl.BaseUsers,
		Seed:        wl.Seed,
		ChunkSize:   chunkSize,
		Repeats:     opts.Repeats,
	}
	queries := CoreQueries()
	for _, qn := range CoreQueryNames {
		q := queries[qn]
		for _, scale := range opts.Scales {
			wl.Store(scale, chunkSize) // build outside the timer
			var resultRows int
			d := timeIt(opts.Repeats, func() {
				_, res, err := wl.Run(COHANA, q, scale, chunkSize)
				if err != nil {
					panic(err)
				}
				resultRows = len(res.Rows)
			})
			rows := wl.Source(scale).Len()
			qr := QueryReport{
				Query:      qn,
				Scale:      scale,
				Rows:       rows,
				NsPerOp:    d.Nanoseconds(),
				ResultRows: resultRows,
			}
			if d > 0 {
				qr.RowsPerSec = float64(rows) / d.Seconds()
			}
			rep.Queries = append(rep.Queries, qr)
		}
	}
	return rep, nil
}

// WriteJSONReport measures and writes the report to path, indented for
// human diffing.
func WriteJSONReport(path string, wl *Workload, opts FigureOptions) error {
	rep, err := JSONReport(wl, opts)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
