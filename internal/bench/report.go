package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// The JSON perf report is the machine-readable counterpart of the printed
// figures: one record per (query, scale) with ns/op and rows/s, written by
// `cohana-bench -json out.json` so the performance trajectory can be diffed
// across PRs instead of eyeballed from tables.

// Report is the top-level JSON document.
type Report struct {
	// GeneratedAt is the RFC3339 UTC timestamp of the run.
	GeneratedAt string `json:"generatedAt"`
	// Users and Seed identify the synthetic workload; ChunkSize and Repeats
	// the measurement configuration. MaxProcs is the core budget of the
	// run, which bounds every parallel speedup below.
	Users     int   `json:"users"`
	Seed      int64 `json:"seed"`
	ChunkSize int   `json:"chunkSize"`
	Repeats   int   `json:"repeats"`
	MaxProcs  int   `json:"maxProcs"`
	// Queries holds one record per (query, scale), in CoreQueryNames order.
	Queries []QueryReport `json:"queries"`
	// ShardScaling holds the build/compaction shard-count sweep at the
	// largest configured scale.
	ShardScaling []ShardScaleReport `json:"shardScaling"`
	// CompactionPersist holds the uniform-vs-zipf compaction bytes-written
	// sweep at the largest configured scale: the write-amplification metric
	// of chunk-granular incremental persistence.
	CompactionPersist []CompactPersistReport `json:"compactionPersist"`
	// PlanCacheRepeat holds the cold-vs-warm repeat-query measurement at
	// the largest configured scale: what a cached compiled plan saves.
	PlanCacheRepeat []PlanCacheRepeatReport `json:"planCacheRepeat"`
	// PushdownSweep holds the decoded-bytes-by-selectivity sweep at the
	// largest configured scale: what the encoded-domain predicate pushdown
	// avoids decoding.
	PushdownSweep []PushdownSweepReport `json:"pushdownSweep"`
	// VectorizedSweep holds the run-at-a-time vs row-at-a-time execution
	// comparison at the largest configured scale: what evaluating predicates
	// and folding aggregates per (value-id, runLength) run saves over the
	// scalar reference loop.
	VectorizedSweep []VectorizedSweepReport `json:"vectorizedSweep"`
	// MetricsOverhead holds the instrumented-vs-noop warm-query measurement
	// at the largest configured scale: what the always-on metrics layer
	// costs on the hot path.
	MetricsOverhead []MetricsOverheadReport `json:"metricsOverhead"`
	// ColdStart holds the eager-vs-lazy reopen sweep at the largest
	// configured scale: open latency, open-time segment reads, first-query
	// latency and resident decoded bytes at chunk-cache budgets {10%, 100%}.
	ColdStart *ColdStartReport `json:"coldStart"`
}

// QueryReport is one measured query execution.
type QueryReport struct {
	Query string `json:"query"`
	Scale int    `json:"scale"`
	// Rows is the activity table size the query scanned over.
	Rows int `json:"rows"`
	// NsPerOp is the median execution time in nanoseconds.
	NsPerOp int64 `json:"nsPerOp"`
	// RowsPerSec is the scan throughput implied by NsPerOp.
	RowsPerSec float64 `json:"rowsPerSec"`
	// ResultRows sanity-checks that the measured run produced output.
	ResultRows int `json:"resultRows"`
}

// JSONReport measures Q1-Q4 at every configured scale and returns the
// report. The chunk size is the first of opts.ChunkSizes (the sweep's
// smallest by default), matching the figures' build configuration.
func JSONReport(wl *Workload, opts FigureOptions) (*Report, error) {
	opts = opts.withDefaults()
	chunkSize := opts.ChunkSizes[0]
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Users:       wl.BaseUsers,
		Seed:        wl.Seed,
		ChunkSize:   chunkSize,
		Repeats:     opts.Repeats,
		MaxProcs:    MaxProcs(),
	}
	queries := CoreQueries()
	for _, qn := range CoreQueryNames {
		q := queries[qn]
		for _, scale := range opts.Scales {
			wl.Store(scale, chunkSize) // build outside the timer
			var resultRows int
			d := timeIt(opts.Repeats, func() {
				_, res, err := wl.Run(COHANA, q, scale, chunkSize)
				if err != nil {
					panic(err)
				}
				resultRows = len(res.Rows)
			})
			rows := wl.Source(scale).Len()
			qr := QueryReport{
				Query:      qn,
				Scale:      scale,
				Rows:       rows,
				NsPerOp:    d.Nanoseconds(),
				ResultRows: resultRows,
			}
			if d > 0 {
				qr.RowsPerSec = float64(rows) / d.Seconds()
			}
			rep.Queries = append(rep.Queries, qr)
		}
	}
	// Shard scaling runs at the largest scale, where build and compaction
	// costs are big enough to measure.
	maxScale := opts.Scales[0]
	for _, s := range opts.Scales {
		if s > maxScale {
			maxScale = s
		}
	}
	scaling, err := ShardScaling(wl, maxScale, chunkSize, opts.Repeats)
	if err != nil {
		return nil, err
	}
	rep.ShardScaling = scaling
	persist, err := CompactionPersist(wl, maxScale, chunkSize, 4000)
	if err != nil {
		return nil, err
	}
	rep.CompactionPersist = persist
	repeat, err := PlanCacheRepeat(wl, maxScale, chunkSize, opts.Repeats)
	if err != nil {
		return nil, err
	}
	rep.PlanCacheRepeat = repeat
	pushdown, err := PushdownSweep(wl, maxScale, chunkSize, opts.Repeats)
	if err != nil {
		return nil, err
	}
	rep.PushdownSweep = pushdown
	vectorized, err := VectorizedSweep(wl, maxScale, chunkSize, opts.Repeats)
	if err != nil {
		return nil, err
	}
	rep.VectorizedSweep = vectorized
	overhead, err := MetricsOverhead(wl, maxScale, chunkSize, opts.Repeats)
	if err != nil {
		return nil, err
	}
	rep.MetricsOverhead = overhead
	cold, err := ColdStart(wl, maxScale, opts.Repeats)
	if err != nil {
		return nil, err
	}
	rep.ColdStart = cold
	return rep, nil
}

// WriteJSONReport measures and writes the report to path, indented for
// human diffing, and returns it for baseline comparison.
func WriteJSONReport(path string, wl *Workload, opts FigureOptions) (*Report, error) {
	rep, err := JSONReport(wl, opts)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}

// ReadReport loads a report written by WriteJSONReport (e.g. the checked-in
// baseline).
func ReadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing report %s: %w", path, err)
	}
	return &rep, nil
}

// compareFloorNs is the noise floor of the regression gate: measurements
// are compared against at least this baseline (1ms), because the jitter of
// a sub-millisecond query on a shared CI runner routinely exceeds any
// sensible slowdown factor. A query that was 70µs and is now 150µs is
// within scheduling noise; one that was 70µs and is now 3ms still trips the
// gate through the floor.
const compareFloorNs = int64(1_000_000)

// compareFloorBytes is the noise floor of the write-amplification gate:
// persisted-bytes baselines are clamped up to this value (4KB) so tiny
// manifests don't flake the ratio. Unlike latency, bytes written are
// deterministic for a fixed workload, so the floor only guards against
// format-overhead jitter on near-empty commits.
const compareFloorBytes = int64(4 << 10)

// CompareReports checks cur against a baseline: every (query, scale) pair
// present in both must not have slowed by more than factor (e.g. 2.0 fails
// on a >2x ns/op regression), with baselines clamped up to compareFloorNs
// so micro-measurements don't flake the gate; and every compaction-persist
// shard count present in both must not write more than factor times the
// baseline's bytes (the write-amplification gate). It returns one
// human-readable line per violation; an empty slice means the gate passes.
// Pairs only in one report are ignored, so adding queries, scales or sweeps
// never breaks an old baseline.
func CompareReports(cur, base *Report, factor float64) []string {
	baseline := make(map[string]QueryReport, len(base.Queries))
	for _, q := range base.Queries {
		baseline[fmt.Sprintf("%s@%d", q.Query, q.Scale)] = q
	}
	var violations []string
	for _, q := range cur.Queries {
		b, ok := baseline[fmt.Sprintf("%s@%d", q.Query, q.Scale)]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		floor := b.NsPerOp
		if floor < compareFloorNs {
			floor = compareFloorNs
		}
		if ratio := float64(q.NsPerOp) / float64(floor); ratio > factor {
			violations = append(violations,
				fmt.Sprintf("%s scale %d: %.2fx over the gate (%d ns/op vs baseline %d ns/op)",
					q.Query, q.Scale, ratio, q.NsPerOp, b.NsPerOp))
		}
	}
	basePersist := make(map[int]CompactPersistReport, len(base.CompactionPersist))
	for _, p := range base.CompactionPersist {
		basePersist[p.Shards] = p
	}
	checkBytes := func(shards int, kind string, cur, base int64) {
		if base <= 0 {
			return
		}
		floor := base
		if floor < compareFloorBytes {
			floor = compareFloorBytes
		}
		if ratio := float64(cur) / float64(floor); ratio > factor {
			violations = append(violations,
				fmt.Sprintf("compaction persist (%s) at %d shards: %.2fx write amplification over the gate (%d bytes vs baseline %d bytes)",
					kind, shards, ratio, cur, base))
		}
	}
	for _, p := range cur.CompactionPersist {
		// The chunk-granularity property itself, independent of any
		// baseline: whenever the hot-user (zipf) delta touched fewer chunks
		// than the uniform one — i.e. the workload is big enough for the
		// shapes to differ at all — it must also persist strictly fewer
		// bytes. If it doesn't, compaction has stopped being surgical — a
		// regression a proportional baseline refresh would otherwise hide.
		// (Tiny workloads where both deltas touch every chunk carry no
		// signal and are skipped.)
		if p.Zipf.ChunksRebuilt < p.Uniform.ChunksRebuilt && p.Zipf.BytesWritten >= p.Uniform.BytesWritten {
			violations = append(violations,
				fmt.Sprintf("compaction persist at %d shards: zipf delta rebuilt fewer chunks (%d vs %d) yet wrote %d bytes, not fewer than uniform's %d — chunk-granular compaction is no longer surgical",
					p.Shards, p.Zipf.ChunksRebuilt, p.Uniform.ChunksRebuilt, p.Zipf.BytesWritten, p.Uniform.BytesWritten))
		}
		b, ok := basePersist[p.Shards]
		if !ok {
			continue
		}
		checkBytes(p.Shards, "uniform", p.Uniform.BytesWritten, b.Uniform.BytesWritten)
		checkBytes(p.Shards, "zipf", p.Zipf.BytesWritten, b.Zipf.BytesWritten)
	}
	// The plan-cache repeat gate. The counters are deterministic (each query
	// misses once on the shared cache and hits on every repeat), so they are
	// checked structurally, independent of any baseline; the warm latency is
	// compared against the baseline through the usual noise floor.
	basePC := make(map[string]PlanCacheRepeatReport, len(base.PlanCacheRepeat))
	for _, p := range base.PlanCacheRepeat {
		basePC[fmt.Sprintf("%s@%d", p.Query, p.Scale)] = p
	}
	for _, p := range cur.PlanCacheRepeat {
		if p.Misses == 0 || p.Hits < p.Misses {
			violations = append(violations,
				fmt.Sprintf("plan-cache repeat %s scale %d: %d hits / %d misses — repeated query texts are not being served from the compiled-plan cache",
					p.Query, p.Scale, p.Hits, p.Misses))
		}
		b, ok := basePC[fmt.Sprintf("%s@%d", p.Query, p.Scale)]
		if !ok || b.WarmNsPerOp <= 0 {
			continue
		}
		floor := b.WarmNsPerOp
		if floor < compareFloorNs {
			floor = compareFloorNs
		}
		if ratio := float64(p.WarmNsPerOp) / float64(floor); ratio > factor {
			violations = append(violations,
				fmt.Sprintf("plan-cache repeat %s scale %d: warm path %.2fx over the gate (%d ns/op vs baseline %d ns/op)",
					p.Query, p.Scale, ratio, p.WarmNsPerOp, b.WarmNsPerOp))
		}
	}
	// The pushdown gate. Decoded-byte counters are deterministic for a fixed
	// workload: structurally, every sweep tier must evaluate predicates in
	// the encoded domain and decode strictly fewer value bytes than the
	// generic path; against the baseline, the pushdown path must not decode
	// more than factor times the recorded bytes (which would mean predicates
	// silently fell off the encoded path).
	basePD := make(map[string]PushdownSweepReport, len(base.PushdownSweep))
	for _, p := range base.PushdownSweep {
		basePD[fmt.Sprintf("%s@%d", p.Name, p.Scale)] = p
	}
	for _, p := range cur.PushdownSweep {
		if p.EncodedChecks <= 0 {
			violations = append(violations,
				fmt.Sprintf("pushdown sweep %s scale %d: no encoded-domain predicate checks — the pushdown compiled nothing",
					p.Name, p.Scale))
		} else if p.BytesDecoded >= p.BytesDecodedGeneric {
			violations = append(violations,
				fmt.Sprintf("pushdown sweep %s scale %d: decoded %d value bytes, not fewer than the generic path's %d — pushdown is no longer skipping decodes",
					p.Name, p.Scale, p.BytesDecoded, p.BytesDecodedGeneric))
		}
		b, ok := basePD[fmt.Sprintf("%s@%d", p.Name, p.Scale)]
		if !ok || b.BytesDecoded <= 0 {
			continue
		}
		floor := b.BytesDecoded
		if floor < compareFloorBytes {
			floor = compareFloorBytes
		}
		if ratio := float64(p.BytesDecoded) / float64(floor); ratio > factor {
			violations = append(violations,
				fmt.Sprintf("pushdown sweep %s scale %d: decoded %.2fx the gated bytes (%d vs baseline %d)",
					p.Name, p.Scale, ratio, p.BytesDecoded, b.BytesDecoded))
		}
	}
	// The vectorized-execution gate. Structural checks on cur alone: every
	// tier must report run-kernel activity (zero means execution silently
	// fell back to the scalar loop), and the vectorized default must not be
	// slower than the scalar reference measured seconds apart in the same
	// run — through the usual noise floor, so sub-millisecond tiers where
	// scheduling jitter dwarfs the kernel savings don't flake the gate.
	for _, v := range cur.VectorizedSweep {
		if v.RunsEvaluated <= 0 || v.RowsBatched <= 0 {
			violations = append(violations,
				fmt.Sprintf("vectorized sweep %s scale %d: no run-kernel activity (runs=%d, batched=%d) — execution fell back to the scalar path",
					v.Name, v.Scale, v.RunsEvaluated, v.RowsBatched))
			continue
		}
		floor := v.NsPerOpScalar
		if floor < compareFloorNs {
			floor = compareFloorNs
		}
		if v.NsPerOp > floor {
			violations = append(violations,
				fmt.Sprintf("vectorized sweep %s scale %d: run-at-a-time path slower than the scalar reference (%d ns/op vs %d ns/op scalar) — vectorization is costing, not saving",
					v.Name, v.Scale, v.NsPerOp, v.NsPerOpScalar))
		}
	}
	// The metrics-overhead gate: the instrumented warm path must stay within
	// metricsOverheadFactor of the no-op path measured in the same run, through
	// the usual noise floor. This is a structural check on cur alone — both
	// sides come from the same process seconds apart, so run-to-run machine
	// variance cancels and the 5% bound can be far tighter than the overall
	// baseline factor.
	for _, p := range cur.MetricsOverhead {
		if p.NoopNsPerOp <= 0 {
			continue
		}
		floor := p.NoopNsPerOp
		if floor < compareFloorNs {
			floor = compareFloorNs
		}
		if ratio := float64(p.InstrumentedNsPerOp) / float64(floor); ratio > metricsOverheadFactor {
			violations = append(violations,
				fmt.Sprintf("metrics overhead %s scale %d: instrumented warm path %.2fx over the no-op gate (%d ns/op vs %d ns/op no-op, +%.1f%%)",
					p.Query, p.Scale, ratio, p.InstrumentedNsPerOp, p.NoopNsPerOp, p.OverheadPct))
		}
	}
	// The cold-start gate. All structural checks on cur alone — the lazy
	// open contract holds regardless of machine speed: lazy opens read zero
	// segments, the budgeted cache ends the first query within its budget,
	// and (once the table is big enough for open cost to clear the noise
	// floor) a lazy open is at least coldStartSpeedupFactor faster than an
	// eager one. Eager vs lazy come from the same run, so the speedup ratio
	// is immune to run-to-run machine variance.
	if cs := cur.ColdStart; cs != nil {
		var eagerOpenNs int64
		for _, c := range cs.Cases {
			switch c.Mode {
			case "eager":
				eagerOpenNs = c.OpenNsPerOp
			default: // the lazy modes
				if c.OpenSegmentReads != 0 {
					violations = append(violations,
						fmt.Sprintf("cold start %s scale %d: open performed %d segment reads, want 0 — open is no longer O(manifest)",
							c.Mode, cs.Scale, c.OpenSegmentReads))
				}
				if c.BudgetBytes > 0 && c.ResidentBytes > c.BudgetBytes {
					violations = append(violations,
						fmt.Sprintf("cold start %s scale %d: %d resident decoded bytes exceed the %d-byte cache budget",
							c.Mode, cs.Scale, c.ResidentBytes, c.BudgetBytes))
				}
			}
		}
		// Only enforce the speedup once eager open is expensive enough to
		// measure: a sub-floor eager open means the table is too small for
		// the ratio to carry signal.
		if eagerOpenNs >= compareFloorNs && cs.OpenSpeedup > 0 && cs.OpenSpeedup < coldStartSpeedupFactor {
			violations = append(violations,
				fmt.Sprintf("cold start scale %d: lazy open only %.1fx faster than eager (%d ns eager), want >= %.0fx",
					cs.Scale, cs.OpenSpeedup, eagerOpenNs, coldStartSpeedupFactor))
		}
	}
	return violations
}

// metricsOverheadFactor bounds the instrumented warm path at 5% over the
// same-run no-op measurement (clamped up to compareFloorNs): the metrics
// layer must stay cheap enough to leave on in production.
const metricsOverheadFactor = 1.05

// coldStartSpeedupFactor is the cold-start contract: once a table is big
// enough for its eager open to clear compareFloorNs, opening it lazily must
// be at least this many times faster — the whole point of deferring segment
// decodes to first touch.
const coldStartSpeedupFactor = 10.0
