package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJSONReportShape(t *testing.T) {
	wl := NewWorkload(60, 9)
	opts := FigureOptions{Scales: []int{1, 2}, Repeats: 1}
	rep, err := JSONReport(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(CoreQueryNames)*2 {
		t.Fatalf("report has %d records, want %d", len(rep.Queries), len(CoreQueryNames)*2)
	}
	for _, qr := range rep.Queries {
		if qr.NsPerOp <= 0 || qr.Rows <= 0 || qr.RowsPerSec <= 0 {
			t.Fatalf("degenerate record %+v", qr)
		}
	}
	// Scale 2 scans more rows than scale 1 for the same query.
	if rep.Queries[0].Rows >= rep.Queries[1].Rows {
		t.Fatalf("rows did not grow with scale: %+v vs %+v", rep.Queries[0], rep.Queries[1])
	}
	// The shard-scaling sweep covers every configured count with sane
	// measurements, and the hot-delta compaction gets cheaper — not more
	// expensive — as shards are added: only the owning shards rebuild.
	if len(rep.ShardScaling) != len(ShardScales) {
		t.Fatalf("shard scaling has %d entries, want %d", len(rep.ShardScaling), len(ShardScales))
	}
	for _, s := range rep.ShardScaling {
		if s.BuildNsPerOp <= 0 || s.CompactUniformNsPerOp <= 0 || s.CompactHotNsPerOp <= 0 {
			t.Fatalf("degenerate shard-scaling record %+v", s)
		}
	}
	if rep.MaxProcs <= 0 {
		t.Fatalf("report missing MaxProcs: %+v", rep)
	}
	// The plan-cache repeat sweep covers every core query, each missing
	// exactly once on the shared cache and hitting on every repeat.
	if len(rep.PlanCacheRepeat) != len(CoreQueryNames) {
		t.Fatalf("plan-cache repeat has %d entries, want %d", len(rep.PlanCacheRepeat), len(CoreQueryNames))
	}
	for i, p := range rep.PlanCacheRepeat {
		if p.ColdNsPerOp <= 0 || p.WarmNsPerOp <= 0 {
			t.Fatalf("degenerate plan-cache record %+v", p)
		}
		if p.Misses != uint64(i+1) || p.Hits < p.Misses {
			t.Fatalf("plan-cache record %d counters = %d hits / %d misses", i, p.Hits, p.Misses)
		}
	}
	// Every pushdown tier evaluates predicates in the encoded domain and
	// decodes strictly fewer bytes than the generic path, over the same scan.
	if len(rep.PushdownSweep) == 0 {
		t.Fatal("report has no pushdown sweep")
	}
	for _, p := range rep.PushdownSweep {
		if p.EncodedChecks <= 0 || p.RowsScanned <= 0 {
			t.Fatalf("degenerate pushdown record %+v", p)
		}
		if p.BytesDecoded >= p.BytesDecodedGeneric {
			t.Fatalf("pushdown tier %s decoded %d bytes, generic %d", p.Name, p.BytesDecoded, p.BytesDecodedGeneric)
		}
	}

	// The metrics-overhead sweep covers every core query with sane
	// measurements on both sides of the comparison.
	if len(rep.MetricsOverhead) != len(CoreQueryNames) {
		t.Fatalf("metrics overhead has %d entries, want %d", len(rep.MetricsOverhead), len(CoreQueryNames))
	}
	for _, p := range rep.MetricsOverhead {
		if p.InstrumentedNsPerOp <= 0 || p.NoopNsPerOp <= 0 {
			t.Fatalf("degenerate metrics-overhead record %+v", p)
		}
	}

	// The cold-start sweep records all three modes: lazy opens read zero
	// segments, eager reads one per chunk, and the budgeted case stays
	// within its budget once the first query finishes.
	if rep.ColdStart == nil || len(rep.ColdStart.Cases) != 3 {
		t.Fatalf("cold start sweep = %+v, want 3 cases", rep.ColdStart)
	}
	if rep.ColdStart.Chunks <= 0 || rep.ColdStart.SegmentBytes <= 0 {
		t.Fatalf("degenerate cold-start table: %+v", rep.ColdStart)
	}
	for _, c := range rep.ColdStart.Cases {
		if c.OpenNsPerOp <= 0 || c.FirstQueryNsPerOp <= 0 {
			t.Fatalf("degenerate cold-start case %+v", c)
		}
		switch c.Mode {
		case "eager":
			if c.OpenSegmentReads != uint64(rep.ColdStart.Chunks) {
				t.Fatalf("eager open read %d segments, want %d", c.OpenSegmentReads, rep.ColdStart.Chunks)
			}
		default:
			if c.OpenSegmentReads != 0 {
				t.Fatalf("%s open read %d segments, want 0", c.Mode, c.OpenSegmentReads)
			}
			if c.BudgetBytes > 0 && c.ResidentBytes > c.BudgetBytes {
				t.Fatalf("%s resident %d bytes over budget %d", c.Mode, c.ResidentBytes, c.BudgetBytes)
			}
		}
	}

	// The written file is valid, parseable JSON and round-trips through
	// ReadReport (the baseline-gate path).
	path := filepath.Join(t.TempDir(), "perf.json")
	if _, err := WriteJSONReport(path, wl, opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if back.Users != 60 || len(back.Queries) == 0 {
		t.Fatalf("round-tripped report = %+v", back)
	}
	reread, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	// A report never regresses against itself; a regression far above the
	// noise floor is caught, while one hiding inside the sub-millisecond
	// floor is not.
	if v := CompareReports(reread, reread, 2.0); len(v) != 0 {
		t.Fatalf("self-comparison found regressions: %v", v)
	}
	slow := *reread
	slow.Queries = append([]QueryReport(nil), reread.Queries...)
	slow.Queries[0].NsPerOp = slow.Queries[0].NsPerOp*3 + 10*compareFloorNs
	if v := CompareReports(&slow, reread, 2.0); len(v) != 1 {
		t.Fatalf("big slowdown produced %d violations, want 1: %v", len(v), v)
	}
	tiny := *reread
	tiny.Queries = append([]QueryReport(nil), reread.Queries...)
	tiny.Queries[0].NsPerOp = compareFloorNs // micro-op jitter, below factor*floor
	if v := CompareReports(&tiny, reread, 2.0); len(v) != 0 {
		t.Fatalf("sub-floor jitter tripped the gate: %v", v)
	}

	// A plan cache that stops serving repeats trips the structural gate even
	// though the baseline carries the same (broken) counters.
	stale := *reread
	stale.PlanCacheRepeat = append([]PlanCacheRepeatReport(nil), reread.PlanCacheRepeat...)
	stale.PlanCacheRepeat[0].Hits = 0
	if v := CompareReports(&stale, &stale, 2.0); len(v) != 1 {
		t.Fatalf("dead plan cache produced %d violations, want 1: %v", len(v), v)
	}
	// A pushdown that decodes no fewer bytes than the generic path trips the
	// structural gate the same way.
	flat := *reread
	flat.PushdownSweep = append([]PushdownSweepReport(nil), reread.PushdownSweep...)
	flat.PushdownSweep[0].BytesDecoded = flat.PushdownSweep[0].BytesDecodedGeneric
	if v := CompareReports(&flat, &flat, 2.0); len(v) != 1 {
		t.Fatalf("flat pushdown produced %d violations, want 1: %v", len(v), v)
	}
	// A pushdown decoding far more bytes than the baseline recorded trips
	// the byte-regression gate (bytes are deterministic, so this means
	// predicates fell off the encoded path).
	bloat := *reread
	bloat.PushdownSweep = append([]PushdownSweepReport(nil), reread.PushdownSweep...)
	bloat.PushdownSweep[0].BytesDecoded = bloat.PushdownSweep[0].BytesDecodedGeneric - 1
	if bloat.PushdownSweep[0].BytesDecoded <= 3*(reread.PushdownSweep[0].BytesDecoded+compareFloorBytes) {
		// Ensure the tampered value clears factor*floor regardless of the
		// measured magnitudes; otherwise synthesize a large generic volume.
		bloat.PushdownSweep[0].BytesDecodedGeneric = 100 * compareFloorBytes
		bloat.PushdownSweep[0].BytesDecoded = bloat.PushdownSweep[0].BytesDecodedGeneric - 1
	}
	if v := CompareReports(&bloat, reread, 2.0); len(v) != 1 {
		t.Fatalf("byte-bloated pushdown produced %d violations, want 1: %v", len(v), v)
	}
	// An instrumented warm path far above the same-run no-op measurement
	// trips the metrics-overhead gate, even against an identical baseline
	// (the check is structural, within cur); jitter under the 1ms floor
	// does not.
	heavy := *reread
	heavy.MetricsOverhead = append([]MetricsOverheadReport(nil), reread.MetricsOverhead...)
	heavy.MetricsOverhead[0].NoopNsPerOp = 2 * compareFloorNs
	heavy.MetricsOverhead[0].InstrumentedNsPerOp = 4 * compareFloorNs
	if v := CompareReports(&heavy, &heavy, 2.0); len(v) != 1 {
		t.Fatalf("heavy instrumentation produced %d violations, want 1: %v", len(v), v)
	}
	jitter := *reread
	jitter.MetricsOverhead = append([]MetricsOverheadReport(nil), reread.MetricsOverhead...)
	jitter.MetricsOverhead[0].NoopNsPerOp = compareFloorNs / 10
	jitter.MetricsOverhead[0].InstrumentedNsPerOp = compareFloorNs / 5 // 2x, but sub-floor
	if v := CompareReports(&jitter, reread, 2.0); len(v) != 0 {
		t.Fatalf("sub-floor metrics jitter tripped the gate: %v", v)
	}
	// The cold-start gate is structural within cur: a lazy open that starts
	// reading segments trips it even against an identical baseline, as does
	// a lazy open that is no longer >= 10x faster than an above-floor eager
	// open; a sub-floor eager open carries no speedup signal and passes.
	withColdStart := func(mut func(cs *ColdStartReport)) *Report {
		r := *reread
		cs := *reread.ColdStart
		cs.Cases = append([]ColdStartCase(nil), reread.ColdStart.Cases...)
		mut(&cs)
		r.ColdStart = &cs
		return &r
	}
	warm := withColdStart(func(cs *ColdStartReport) { cs.Cases[1].OpenSegmentReads = 5 })
	if v := CompareReports(warm, warm, 2.0); len(v) != 1 {
		t.Fatalf("segment-reading lazy open produced %d violations, want 1: %v", len(v), v)
	}
	slowOpen := withColdStart(func(cs *ColdStartReport) {
		cs.Cases[0].OpenNsPerOp = 10 * compareFloorNs
		cs.OpenSpeedup = 2.0
	})
	if v := CompareReports(slowOpen, slowOpen, 2.0); len(v) != 1 {
		t.Fatalf("2x cold-start speedup produced %d violations, want 1: %v", len(v), v)
	}
	smallOpen := withColdStart(func(cs *ColdStartReport) {
		cs.Cases[0].OpenNsPerOp = compareFloorNs / 10
		cs.OpenSpeedup = 2.0
	})
	if v := CompareReports(smallOpen, smallOpen, 2.0); len(v) != 0 {
		t.Fatalf("sub-floor eager open tripped the speedup gate: %v", v)
	}
	overBudget := withColdStart(func(cs *ColdStartReport) {
		cs.Cases[2].ResidentBytes = cs.Cases[2].BudgetBytes + 1
	})
	if v := CompareReports(overBudget, overBudget, 2.0); len(v) != 1 {
		t.Fatalf("over-budget resident bytes produced %d violations, want 1: %v", len(v), v)
	}
}
