package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJSONReportShape(t *testing.T) {
	wl := NewWorkload(60, 9)
	opts := FigureOptions{Scales: []int{1, 2}, Repeats: 1}
	rep, err := JSONReport(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(CoreQueryNames)*2 {
		t.Fatalf("report has %d records, want %d", len(rep.Queries), len(CoreQueryNames)*2)
	}
	for _, qr := range rep.Queries {
		if qr.NsPerOp <= 0 || qr.Rows <= 0 || qr.RowsPerSec <= 0 {
			t.Fatalf("degenerate record %+v", qr)
		}
	}
	// Scale 2 scans more rows than scale 1 for the same query.
	if rep.Queries[0].Rows >= rep.Queries[1].Rows {
		t.Fatalf("rows did not grow with scale: %+v vs %+v", rep.Queries[0], rep.Queries[1])
	}

	// The written file is valid, parseable JSON.
	path := filepath.Join(t.TempDir(), "perf.json")
	if err := WriteJSONReport(path, wl, opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if back.Users != 60 || len(back.Queries) == 0 {
		t.Fatalf("round-tripped report = %+v", back)
	}
}
