package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJSONReportShape(t *testing.T) {
	wl := NewWorkload(60, 9)
	opts := FigureOptions{Scales: []int{1, 2}, Repeats: 1}
	rep, err := JSONReport(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(CoreQueryNames)*2 {
		t.Fatalf("report has %d records, want %d", len(rep.Queries), len(CoreQueryNames)*2)
	}
	for _, qr := range rep.Queries {
		if qr.NsPerOp <= 0 || qr.Rows <= 0 || qr.RowsPerSec <= 0 {
			t.Fatalf("degenerate record %+v", qr)
		}
	}
	// Scale 2 scans more rows than scale 1 for the same query.
	if rep.Queries[0].Rows >= rep.Queries[1].Rows {
		t.Fatalf("rows did not grow with scale: %+v vs %+v", rep.Queries[0], rep.Queries[1])
	}
	// The shard-scaling sweep covers every configured count with sane
	// measurements, and the hot-delta compaction gets cheaper — not more
	// expensive — as shards are added: only the owning shards rebuild.
	if len(rep.ShardScaling) != len(ShardScales) {
		t.Fatalf("shard scaling has %d entries, want %d", len(rep.ShardScaling), len(ShardScales))
	}
	for _, s := range rep.ShardScaling {
		if s.BuildNsPerOp <= 0 || s.CompactUniformNsPerOp <= 0 || s.CompactHotNsPerOp <= 0 {
			t.Fatalf("degenerate shard-scaling record %+v", s)
		}
	}
	if rep.MaxProcs <= 0 {
		t.Fatalf("report missing MaxProcs: %+v", rep)
	}

	// The written file is valid, parseable JSON and round-trips through
	// ReadReport (the baseline-gate path).
	path := filepath.Join(t.TempDir(), "perf.json")
	if _, err := WriteJSONReport(path, wl, opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if back.Users != 60 || len(back.Queries) == 0 {
		t.Fatalf("round-tripped report = %+v", back)
	}
	reread, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	// A report never regresses against itself; a regression far above the
	// noise floor is caught, while one hiding inside the sub-millisecond
	// floor is not.
	if v := CompareReports(reread, reread, 2.0); len(v) != 0 {
		t.Fatalf("self-comparison found regressions: %v", v)
	}
	slow := *reread
	slow.Queries = append([]QueryReport(nil), reread.Queries...)
	slow.Queries[0].NsPerOp = slow.Queries[0].NsPerOp*3 + 10*compareFloorNs
	if v := CompareReports(&slow, reread, 2.0); len(v) != 1 {
		t.Fatalf("big slowdown produced %d violations, want 1: %v", len(v), v)
	}
	tiny := *reread
	tiny.Queries = append([]QueryReport(nil), reread.Queries...)
	tiny.Queries[0].NsPerOp = compareFloorNs // micro-op jitter, below factor*floor
	if v := CompareReports(&tiny, reread, 2.0); len(v) != 0 {
		t.Fatalf("sub-floor jitter tripped the gate: %v", v)
	}
}
