package bench

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/plan"
)

// The metrics-overhead sweep: the same warm query timed with the metrics
// registry enabled (the default serving configuration) and with every metric
// mutation compiled down to a no-op (obs.SetEnabled(false)). The gap is the
// total cost of the observability layer on the hot path — a handful of
// atomic adds per chunk — and the gate keeps it under a few percent so
// instrumentation can stay always-on.

// MetricsOverheadReport compares one warm query with metrics on vs off.
type MetricsOverheadReport struct {
	Query string `json:"query"`
	Scale int    `json:"scale"`
	// InstrumentedNsPerOp times the default path (metrics enabled);
	// NoopNsPerOp the same execution with obs disabled.
	InstrumentedNsPerOp int64 `json:"instrumentedNsPerOp"`
	NoopNsPerOp         int64 `json:"noopNsPerOp"`
	// OverheadPct is the relative cost of instrumentation:
	// (instrumented - noop) / noop * 100. Negative values are measurement
	// noise on sub-millisecond queries.
	OverheadPct float64 `json:"overheadPct"`
}

// MetricsOverhead measures Q1-Q4 warm (shared plan cache, bound shard) with
// the metrics registry enabled and disabled. The no-op runs restore the
// enabled state before returning, even on error.
func MetricsOverhead(wl *Workload, scale, chunkSize, repeats int) ([]MetricsOverheadReport, error) {
	st := wl.Store(scale, chunkSize)
	schema := st.Schema()
	inputs := []plan.ShardInput{{Sealed: st}}
	sources := CoreQuerySources()
	defer obs.SetEnabled(true)
	var out []MetricsOverheadReport
	for _, qn := range CoreQueryNames {
		src := sources[qn]
		cache := plan.NewCache(2)
		p, err := cache.Prepare(src, schema)
		if err != nil {
			return nil, fmt.Errorf("bench: metrics overhead %s: %w", qn, err)
		}
		// Bind the shard outside the timers so both paths measure pure
		// execution.
		if _, err := plan.ExecuteCached(cache, p, inputs, plan.ExecOptions{}); err != nil {
			return nil, fmt.Errorf("bench: metrics overhead %s: %w", qn, err)
		}
		run := func() {
			if _, err := plan.ExecuteCached(cache, p, inputs, plan.ExecOptions{}); err != nil {
				panic(err)
			}
		}
		obs.SetEnabled(true)
		instrumented := timeIt(repeats, run)
		obs.SetEnabled(false)
		noop := timeIt(repeats, run)
		obs.SetEnabled(true)
		r := MetricsOverheadReport{
			Query:               qn,
			Scale:               scale,
			InstrumentedNsPerOp: instrumented.Nanoseconds(),
			NoopNsPerOp:         noop.Nanoseconds(),
		}
		if noop > 0 {
			r.OverheadPct = (float64(instrumented) - float64(noop)) / float64(noop) * 100
		}
		out = append(out, r)
	}
	return out, nil
}
