package bench

import (
	"fmt"

	"repro/internal/cohort"
	"repro/internal/plan"
)

// The two decoder/front-end sweeps of the perf report: the plan-cache repeat
// measurement (what a repeated query text saves by skipping parse → validate
// → optimize → compile) and the pushdown selectivity sweep (how many value
// bytes the encoded-domain predicate evaluation avoids decoding, by
// predicate selectivity). Latencies are machine-local and gated through the
// usual noise floor; the cache counters and decoded-byte counters are
// deterministic for a fixed workload, so CompareReports checks them exactly.

// PlanCacheRepeatReport measures one benchmark query cold (fresh cache:
// front end + execution) and warm (repeat text through a shared cache).
type PlanCacheRepeatReport struct {
	Query string `json:"query"`
	Scale int    `json:"scale"`
	// ColdNsPerOp includes Prepare on an empty cache; WarmNsPerOp repeats
	// the same text against the populated cache.
	ColdNsPerOp int64 `json:"coldNsPerOp"`
	WarmNsPerOp int64 `json:"warmNsPerOp"`
	// Speedup is ColdNsPerOp / WarmNsPerOp.
	Speedup float64 `json:"speedup"`
	// Hits and Misses snapshot the shared cache after the warm runs: the
	// deterministic evidence that repeats were served from the cache.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// PlanCacheRepeat measures Q1-Q4 at one scale. Every query must miss exactly
// once on the shared cache and hit on every repeat.
func PlanCacheRepeat(wl *Workload, scale, chunkSize, repeats int) ([]PlanCacheRepeatReport, error) {
	st := wl.Store(scale, chunkSize)
	schema := st.Schema()
	inputs := []plan.ShardInput{{Sealed: st}}
	sources := CoreQuerySources()
	shared := plan.NewCache(2 * len(CoreQueryNames))
	var out []PlanCacheRepeatReport
	for _, qn := range CoreQueryNames {
		src := sources[qn]
		// Cold: a fresh cache per run pays the full front end every time.
		cold := timeIt(repeats, func() {
			c := plan.NewCache(1)
			p, err := c.Prepare(src, schema)
			if err != nil {
				panic(err)
			}
			if _, err := plan.ExecuteCached(c, p, inputs, plan.ExecOptions{}); err != nil {
				panic(err)
			}
		})
		// Warm: populate the shared cache (and bind the shard) outside the
		// timer, then repeat the same text through it.
		p, err := shared.Prepare(src, schema)
		if err != nil {
			return nil, err
		}
		if _, err := plan.ExecuteCached(shared, p, inputs, plan.ExecOptions{}); err != nil {
			return nil, err
		}
		warm := timeIt(repeats, func() {
			p, err := shared.Prepare(src, schema)
			if err != nil {
				panic(err)
			}
			if _, err := plan.ExecuteCached(shared, p, inputs, plan.ExecOptions{}); err != nil {
				panic(err)
			}
		})
		r := PlanCacheRepeatReport{
			Query:       qn,
			Scale:       scale,
			ColdNsPerOp: cold.Nanoseconds(),
			WarmNsPerOp: warm.Nanoseconds(),
		}
		if warm > 0 {
			r.Speedup = float64(cold) / float64(warm)
		}
		cst := shared.Stats()
		r.Hits, r.Misses = cst.Hits, cst.Misses
		out = append(out, r)
	}
	return out, nil
}

// pushdownSweepQueries are the selectivity tiers of the pushdown sweep, from
// an age filter that keeps only shop tuples down to one that additionally
// cuts by measure threshold and a rare dimension value. Every tier's age
// condition is fully evaluable on encoded ids, so the decoded-byte gap
// against the generic path grows as the predicates narrow.
var pushdownSweepQueries = []struct {
	Name string
	Src  string
}{
	{"shop-only", `
		SELECT country, COHORTSIZE, AGE, Sum(gold)
		FROM GameActions BIRTH FROM action = "launch"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`},
	{"shop-gold", `
		SELECT country, COHORTSIZE, AGE, Sum(gold)
		FROM GameActions BIRTH FROM action = "launch"
		AGE ACTIVITIES IN action = "shop" AND gold > 40
		COHORT BY country`},
	{"shop-gold-rare-country", `
		SELECT country, COHORTSIZE, AGE, Sum(gold)
		FROM GameActions BIRTH FROM action = "launch"
		AGE ACTIVITIES IN action = "shop" AND gold > 40 AND country = "France"
		COHORT BY country`},
}

// PushdownSweepReport compares one query's decoder traffic with the
// encoded-domain pushdown against the generic decode-everything path.
type PushdownSweepReport struct {
	Name  string `json:"name"`
	Scale int    `json:"scale"`
	// Rows is the table size; RowsScanned the post-pruning scan volume
	// (identical on both paths — pushdown changes what is decoded, never
	// what is visited).
	Rows        int   `json:"rows"`
	RowsScanned int64 `json:"rowsScanned"`
	// BytesDecoded (pushdown on) vs BytesDecodedGeneric (pushdown off):
	// deterministic for a fixed workload, so the gate compares them exactly.
	BytesDecoded        int64 `json:"bytesDecoded"`
	BytesDecodedGeneric int64 `json:"bytesDecodedGeneric"`
	// EncodedChecks counts predicate evaluations that stayed in the encoded
	// domain; zero means the pushdown compiled nothing.
	EncodedChecks int64 `json:"encodedChecks"`
	// Latencies for the two paths, noise-floor gated like every query time.
	NsPerOp        int64 `json:"nsPerOp"`
	NsPerOpGeneric int64 `json:"nsPerOpGeneric"`
}

// PushdownSweep runs the selectivity tiers at one scale, once per path.
func PushdownSweep(wl *Workload, scale, chunkSize, repeats int) ([]PushdownSweepReport, error) {
	st := wl.Store(scale, chunkSize)
	var out []PushdownSweepReport
	for _, pq := range pushdownSweepQueries {
		q := mustQuery(pq.Src)
		r := PushdownSweepReport{Name: pq.Name, Scale: scale, Rows: wl.Source(scale).Len()}
		// One counted run per path (the counters are deterministic), then
		// timed repeats without counters.
		var with, without cohort.ExecStats
		if _, err := plan.Execute(q, st, plan.ExecOptions{Stats: &with}); err != nil {
			return nil, fmt.Errorf("bench: pushdown sweep %s: %w", pq.Name, err)
		}
		if _, err := plan.Execute(q, st, plan.ExecOptions{Stats: &without, DisablePushdown: true}); err != nil {
			return nil, fmt.Errorf("bench: pushdown sweep %s (generic): %w", pq.Name, err)
		}
		r.RowsScanned = with.RowsScanned.Load()
		r.BytesDecoded = with.ValueBytesDecoded.Load()
		r.BytesDecodedGeneric = without.ValueBytesDecoded.Load()
		r.EncodedChecks = with.EncodedChecks.Load()
		r.NsPerOp = timeIt(repeats, func() {
			if _, err := plan.Execute(q, st, plan.ExecOptions{}); err != nil {
				panic(err)
			}
		}).Nanoseconds()
		r.NsPerOpGeneric = timeIt(repeats, func() {
			if _, err := plan.Execute(q, st, plan.ExecOptions{DisablePushdown: true}); err != nil {
				panic(err)
			}
		}).Nanoseconds()
		out = append(out, r)
	}
	return out, nil
}

// vectorizedSweepQueries are the run-shape tiers of the vectorized sweep,
// picked for the run lengths the kernels exploit: a dimension filter that is
// chunk-constant per user block (one kernel call covers the whole block), an
// action filter whose runs come in bursts, and a measure-heavy tier where the
// SUM folds whole runs at a time.
var vectorizedSweepQueries = []struct {
	Name string
	Src  string
}{
	{"country-const", `
		SELECT country, COHORTSIZE, AGE, Count()
		FROM GameActions BIRTH FROM action = "launch"
		AGE ACTIVITIES IN country = "China"
		COHORT BY country`},
	{"shop-runs", `
		SELECT country, COHORTSIZE, AGE, Count()
		FROM GameActions BIRTH FROM action = "launch"
		AGE ACTIVITIES IN action = "shop"
		COHORT BY country`},
	{"shop-sum-gold", `
		SELECT country, COHORTSIZE, AGE, Sum(gold)
		FROM GameActions BIRTH FROM action = "launch"
		AGE ACTIVITIES IN action = "shop" AND gold > 5
		COHORT BY country`},
}

// VectorizedSweepReport compares one query's run-at-a-time execution (the
// default) against the scalar row-at-a-time reference.
type VectorizedSweepReport struct {
	Name  string `json:"name"`
	Scale int    `json:"scale"`
	// Rows is the table size the query scanned over.
	Rows int `json:"rows"`
	// RunsEvaluated and RowsBatched are the vectorized path's deterministic
	// kernel counters: how many (value-id, runLength) runs the kernels
	// examined, and how many rows they covered. RowsBatched / RunsEvaluated
	// is the effective batching factor the encoding's run structure bought.
	RunsEvaluated int64 `json:"runsEvaluated"`
	RowsBatched   int64 `json:"rowsBatched"`
	// Latencies for the two paths, measured in the same run so the ratio is
	// immune to machine variance.
	NsPerOp       int64 `json:"nsPerOp"`
	NsPerOpScalar int64 `json:"nsPerOpScalar"`
	// Speedup is NsPerOpScalar / NsPerOp.
	Speedup float64 `json:"speedup"`
}

// VectorizedSweep runs the run-shape tiers at one scale, once per path.
func VectorizedSweep(wl *Workload, scale, chunkSize, repeats int) ([]VectorizedSweepReport, error) {
	st := wl.Store(scale, chunkSize)
	var out []VectorizedSweepReport
	for _, vq := range vectorizedSweepQueries {
		q := mustQuery(vq.Src)
		r := VectorizedSweepReport{Name: vq.Name, Scale: scale, Rows: wl.Source(scale).Len()}
		// One counted run for the kernel counters (deterministic), then timed
		// repeats per path without counters.
		var vec cohort.ExecStats
		if _, err := plan.Execute(q, st, plan.ExecOptions{Stats: &vec}); err != nil {
			return nil, fmt.Errorf("bench: vectorized sweep %s: %w", vq.Name, err)
		}
		r.RunsEvaluated = vec.RunsEvaluated.Load()
		r.RowsBatched = vec.RowsBatched.Load()
		r.NsPerOp = timeIt(repeats, func() {
			if _, err := plan.Execute(q, st, plan.ExecOptions{}); err != nil {
				panic(err)
			}
		}).Nanoseconds()
		r.NsPerOpScalar = timeIt(repeats, func() {
			if _, err := plan.Execute(q, st, plan.ExecOptions{DisableVectorized: true}); err != nil {
				panic(err)
			}
		}).Nanoseconds()
		if r.NsPerOp > 0 {
			r.Speedup = float64(r.NsPerOpScalar) / float64(r.NsPerOp)
		}
		out = append(out, r)
	}
	return out, nil
}
