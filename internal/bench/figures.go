package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/storage"
)

// ChunkSizes is the Figure 6/7 chunk-size sweep (the paper's 16K-1M, scaled
// down by default because the default dataset is smaller; pass the paper's
// values for full-size runs).
var ChunkSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}

// FigureOptions configures the drivers.
type FigureOptions struct {
	// Scales lists the dataset scale factors (paper: 1..64).
	Scales []int
	// ChunkSizes overrides the chunk-size sweep for Figures 6 and 7.
	ChunkSizes []int
	// MaxBaselineScale caps the scale at which the SQL/MV baselines run
	// (they are orders of magnitude slower — exactly the paper's point —
	// so large scales are skipped with a note, like Postgres's missing
	// scale-64 bar in Figure 10). 0 means no cap.
	MaxBaselineScale int
	// Repeats averages each measurement over this many runs (paper: 5).
	Repeats int
}

func (o FigureOptions) withDefaults() FigureOptions {
	if len(o.Scales) == 0 {
		o.Scales = []int{1, 2, 4}
	}
	if len(o.ChunkSizes) == 0 {
		o.ChunkSizes = ChunkSizes
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	return o
}

// timeIt reports the median of n runs of fn. The paper averages five runs;
// the median is used here because in-process GC pauses produce occasional
// multi-millisecond outliers that would dominate a mean at the microsecond
// scale of the small default datasets.
func timeIt(n int, fn func()) time.Duration {
	times := make([]time.Duration, n)
	for i := range times {
		t0 := time.Now()
		fn()
		times[i] = time.Since(t0)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func newTW(w io.Writer) *tabwriter.Writer { return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0) }

// Figure6 reports COHANA's query time for Q1-Q4 under varying chunk size
// and scale (Figure 6a-6d).
func Figure6(w io.Writer, wl *Workload, opts FigureOptions) error {
	opts = opts.withDefaults()
	queries := CoreQueries()
	for _, qn := range CoreQueryNames {
		fmt.Fprintf(w, "Figure 6 (%s): COHANA query time by chunk size\n", qn)
		tw := newTW(w)
		header := []string{"scale"}
		for _, cs := range opts.ChunkSizes {
			header = append(header, fmtChunk(cs))
		}
		fmt.Fprintln(tw, strings.Join(header, "\t"))
		for _, scale := range opts.Scales {
			row := []string{fmt.Sprintf("%d", scale)}
			for _, cs := range opts.ChunkSizes {
				q := queries[qn]
				wl.Store(scale, cs) // build outside the timer
				d := timeIt(opts.Repeats, func() {
					if _, _, err := wl.Run(COHANA, q, scale, cs); err != nil {
						panic(err)
					}
				})
				row = append(row, fmtDur(d))
			}
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure7 reports the compressed storage size by chunk size and scale.
func Figure7(w io.Writer, wl *Workload, opts FigureOptions) error {
	opts = opts.withDefaults()
	fmt.Fprintln(w, "Figure 7: storage size (bytes) by chunk size")
	tw := newTW(w)
	header := []string{"scale"}
	for _, cs := range opts.ChunkSizes {
		header = append(header, fmtChunk(cs))
	}
	header = append(header, "raw CSV-ish")
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, scale := range opts.Scales {
		row := []string{fmt.Sprintf("%d", scale)}
		for _, cs := range opts.ChunkSizes {
			row = append(row, fmtBytes(wl.Store(scale, cs).EncodedSize()))
		}
		row = append(row, fmtBytes(rawSize(wl.Source(scale))))
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// rawSize estimates the uncompressed size of the table (the paper quotes the
// raw CSV size as the compression reference).
func rawSize(t *activity.Table) int {
	schema := t.Schema()
	size := 0
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			for _, s := range t.Strings(c) {
				size += len(s) + 1
			}
		} else {
			size += 11 * t.Len() // ~decimal digits + separator
		}
	}
	return size
}

// Figure8 reports Q5/Q6 times normalized by Q1/Q3 while the birth date
// range grows one day at a time, next to the birth CDF.
func Figure8(w io.Writer, wl *Workload, opts FigureOptions) error {
	opts = opts.withDefaults()
	const scale = 1
	cs := storage.DefaultChunkSize
	wl.Store(scale, cs)
	base1 := timeIt(opts.Repeats, func() { mustRun(wl, COHANA, Q1(), scale, cs) })
	base3 := timeIt(opts.Repeats, func() { mustRun(wl, COHANA, Q3(), scale, cs) })
	days := 31 // the paper sweeps d2 over the birth window
	cdf := wl.BirthCDF(scale, days+1)
	d1 := "2013-05-19"
	fmt.Fprintln(w, "Figure 8: effect of birth selection (times normalized to Q1/Q3)")
	tw := newTW(w)
	fmt.Fprintln(tw, "day\tbirth CDF\tQ5\tQ6")
	start, _ := activity.ParseTime(d1)
	for day := 0; day <= days; day += 2 {
		d2 := cohortDate(start + int64(day)*activity.SecondsPerDay)
		t5 := timeIt(opts.Repeats, func() { mustRun(wl, COHANA, Q5(d1, d2), scale, cs) })
		t6 := timeIt(opts.Repeats, func() { mustRun(wl, COHANA, Q6(d1, d2), scale, cs) })
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\n", day, cdf[day],
			float64(t5)/float64(base1), float64(t6)/float64(base3))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// Figure9 reports Q7/Q8 normalized by Q1/Q3 as the age limit g grows.
func Figure9(w io.Writer, wl *Workload, opts FigureOptions) error {
	opts = opts.withDefaults()
	const scale = 1
	cs := storage.DefaultChunkSize
	wl.Store(scale, cs)
	base1 := timeIt(opts.Repeats, func() { mustRun(wl, COHANA, Q1(), scale, cs) })
	base3 := timeIt(opts.Repeats, func() { mustRun(wl, COHANA, Q3(), scale, cs) })
	fmt.Fprintln(w, "Figure 9: effect of age selection (times normalized to Q1/Q3)")
	tw := newTW(w)
	fmt.Fprintln(tw, "age limit g\tQ7\tQ8")
	for g := 1; g <= 14; g++ {
		t7 := timeIt(opts.Repeats, func() { mustRun(wl, COHANA, Q7(g), scale, cs) })
		t8 := timeIt(opts.Repeats, func() { mustRun(wl, COHANA, Q8(g), scale, cs) })
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\n", g, float64(t7)/float64(base1), float64(t8)/float64(base3))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// Figure10 reports preprocessing time: COHANA compression vs MV generation
// on both substrates.
func Figure10(w io.Writer, wl *Workload, opts FigureOptions) error {
	opts = opts.withDefaults()
	fmt.Fprintln(w, "Figure 10: preprocessing time (MV generation vs COHANA compression)")
	tw := newTW(w)
	fmt.Fprintln(tw, "scale\tCOHANA\tMONET\tPG")
	for _, scale := range opts.Scales {
		if opts.MaxBaselineScale > 0 && scale > opts.MaxBaselineScale {
			// Time only COHANA compression; the MV builds are skipped like
			// Postgres's missing scale-64 bar in the paper.
			src := wl.Source(scale)
			c := timeIt(1, func() {
				if _, err := storage.Build(src, storage.Options{ChunkSize: storage.DefaultChunkSize}); err != nil {
					panic(err)
				}
			})
			fmt.Fprintf(tw, "%d\t%s\t(skipped)\t(skipped)\n", scale, fmtDur(c))
			continue
		}
		c, m, p := wl.BuildTimes(scale, "launch")
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", scale, fmtDur(c), fmtDur(m), fmtDur(p))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// Figure11 is the comparative study: Q1-Q4 across the five schemes and all
// scales.
func Figure11(w io.Writer, wl *Workload, opts FigureOptions) error {
	opts = opts.withDefaults()
	queries := CoreQueries()
	cs := storage.DefaultChunkSize
	for _, qn := range CoreQueryNames {
		fmt.Fprintf(w, "Figure 11 (%s): query time by scheme\n", qn)
		tw := newTW(w)
		header := []string{"scale"}
		for _, s := range AllSchemes {
			header = append(header, string(s))
		}
		fmt.Fprintln(tw, strings.Join(header, "\t"))
		for _, scale := range opts.Scales {
			row := []string{fmt.Sprintf("%d", scale)}
			for _, s := range AllSchemes {
				if s != COHANA && opts.MaxBaselineScale > 0 && scale > opts.MaxBaselineScale {
					row = append(row, "(skipped)")
					continue
				}
				q := queries[qn]
				// Warm caches (storage build / MV build) outside the timer.
				if s == COHANA {
					wl.Store(scale, cs)
				} else if s == MonetM || s == PGM {
					wl.MV(s.engine(), scale, q.BirthAction)
				}
				d := timeIt(opts.Repeats, func() { mustRun(wl, s, q, scale, cs) })
				row = append(row, fmtDur(d))
			}
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// VerifySchemes cross-checks that all five schemes agree on Q1-Q4 at scale 1
// and reports per-query agreement, a smoke test the harness runs before
// timing anything.
func VerifySchemes(w io.Writer, wl *Workload) error {
	cs := storage.DefaultChunkSize
	for _, qn := range CoreQueryNames {
		q := CoreQueries()[qn]
		_, want, err := wl.Run(COHANA, q, 1, cs)
		if err != nil {
			return fmt.Errorf("bench: COHANA %s: %w", qn, err)
		}
		for _, s := range AllSchemes[1:] {
			_, got, err := wl.Run(s, q, 1, cs)
			if err != nil {
				return fmt.Errorf("bench: %s %s: %w", s, qn, err)
			}
			if diff := want.Diff(got); diff != "" {
				return fmt.Errorf("bench: %s disagrees with COHANA on %s: %s", s, qn, diff)
			}
		}
		fmt.Fprintf(w, "%s: all schemes agree (%d result rows)\n", qn, len(want.Rows))
	}
	return nil
}

// mustRun executes a query under a scheme, panicking on error (the harness
// queries are statically valid).
func mustRun(wl *Workload, s Scheme, q *cohort.Query, scale, cs int) {
	if _, _, err := wl.Run(s, q, scale, cs); err != nil {
		panic(err)
	}
}

func fmtChunk(cs int) string {
	switch {
	case cs >= 1<<20 && cs%(1<<20) == 0:
		return fmt.Sprintf("%dM", cs>>20)
	case cs >= 1<<10 && cs%(1<<10) == 0:
		return fmt.Sprintf("%dK", cs>>10)
	default:
		return fmt.Sprintf("%d", cs)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// cohortDate formats a Unix timestamp as the date literals used in query
// text.
func cohortDate(ts int64) string {
	return time.Unix(ts, 0).UTC().Format("2006-01-02")
}
