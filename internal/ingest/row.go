package ingest

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/activity"
)

// Row is one activity tuple in ingestion form: full-width, schema-indexed
// value slices (string columns read Strs, integer/time columns read Ints —
// the same convention as activity.Table.AppendRow).
type Row struct {
	Strs []string
	Ints []int64
}

func newRow(schema *activity.Schema) Row {
	return Row{Strs: make([]string, schema.NumCols()), Ints: make([]int64, schema.NumCols())}
}

// RowFromValues builds a Row from schema-ordered values, with the same
// coercions as activity.Table.Append: string columns take strings, integer
// and time columns take int64/int/time.Time, and time columns additionally
// accept the timestamp layouts of activity.ParseTime.
func RowFromValues(schema *activity.Schema, values ...any) (Row, error) {
	if len(values) != schema.NumCols() {
		return Row{}, fmt.Errorf("ingest: row has %d values, schema has %d columns", len(values), schema.NumCols())
	}
	row := newRow(schema)
	for i, v := range values {
		if err := setValue(schema, &row, i, v); err != nil {
			return Row{}, err
		}
	}
	return row, nil
}

// ParseRow builds a Row from a JSON-decoded object keyed by column name
// (case-insensitive). Every schema column must be present; unknown keys are
// an error, so typos surface instead of silently dropping a value.
func ParseRow(schema *activity.Schema, obj map[string]any) (Row, error) {
	row := newRow(schema)
	seen := make([]bool, schema.NumCols())
	for k, v := range obj {
		i := schema.ColIndex(k)
		if i < 0 {
			return Row{}, fmt.Errorf("ingest: unknown column %q", k)
		}
		if seen[i] {
			return Row{}, fmt.Errorf("ingest: duplicate column %q", k)
		}
		seen[i] = true
		if err := setValue(schema, &row, i, v); err != nil {
			return Row{}, err
		}
	}
	for i, ok := range seen {
		if !ok {
			return Row{}, fmt.Errorf("ingest: row missing column %q", schema.Col(i).Name)
		}
	}
	return row, nil
}

// setValue coerces v into column i of row.
func setValue(schema *activity.Schema, row *Row, i int, v any) error {
	col := schema.Col(i)
	if schema.IsStringCol(i) {
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("ingest: column %q wants a string, got %T", col.Name, v)
		}
		row.Strs[i] = s
		return nil
	}
	switch x := v.(type) {
	case int64:
		row.Ints[i] = x
	case int:
		row.Ints[i] = int64(x)
	case time.Time:
		if col.Type != activity.TypeTime {
			return fmt.Errorf("ingest: column %q wants an integer, got time", col.Name)
		}
		row.Ints[i] = x.Unix()
	case float64: // JSON numbers
		if x != float64(int64(x)) {
			return fmt.Errorf("ingest: column %q wants an integer, got %v", col.Name, x)
		}
		row.Ints[i] = int64(x)
	case json.Number:
		n, err := x.Int64()
		if err != nil {
			return fmt.Errorf("ingest: column %q: %w", col.Name, err)
		}
		row.Ints[i] = n
	case string:
		if col.Type == activity.TypeTime {
			ts, err := activity.ParseTime(x)
			if err != nil {
				return fmt.Errorf("ingest: column %q: %w", col.Name, err)
			}
			row.Ints[i] = ts
			return nil
		}
		n, err := strconv.ParseInt(x, 10, 64)
		if err != nil {
			return fmt.Errorf("ingest: column %q wants an integer, got %q", col.Name, x)
		}
		row.Ints[i] = n
	default:
		return fmt.Errorf("ingest: column %q wants an integer or time, got %T", col.Name, v)
	}
	return nil
}

// user, time and action accessors for primary-key checks.

func (r Row) pk(schema *activity.Schema) (user string, ts int64, action string) {
	return r.Strs[schema.UserCol()], r.Ints[schema.TimeCol()], r.Strs[schema.ActionCol()]
}

// pkKey is the map key for the delta-side duplicate check.
func pkKey(user string, ts int64, action string) string {
	return user + "\x00" + strconv.FormatInt(ts, 10) + "\x00" + action
}
