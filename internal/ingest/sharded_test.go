package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/storage"
)

// buildShardedSealed compresses the test workload into n shards.
func buildShardedSealed(t *testing.T, n int) *storage.Sharded {
	t.Helper()
	tbl := gen.Generate(gen.Config{Users: 40, Days: 12, MeanActions: 10, Seed: 21})
	sealed, err := storage.BuildSharded(tbl, n, storage.Options{ChunkSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

// TestAppendRoutesToOwningShards pins the write path: every appended row
// lands in the shard its user hashes to, and only dirty shards compact.
func TestAppendRoutesToOwningShards(t *testing.T) {
	sealed := buildShardedSealed(t, 4)
	lt, err := OpenSharded(sealed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	schema := lt.Schema()

	// One batch spanning several users — and therefore several shards.
	users := []string{"route-a", "route-b", "route-c", "route-d", "route-e"}
	var rows []Row
	for i, u := range users {
		rows = append(rows, row(t, schema, u, 1369000000+int64(i), "launch", "China", "Beijing", "mage", 1, 0))
	}
	if err := lt.Append(rows); err != nil {
		t.Fatal(err)
	}
	st := lt.Stats()
	if st.DeltaRows != len(users) {
		t.Fatalf("delta rows = %d, want %d", st.DeltaRows, len(users))
	}
	dirty := map[int]int{}
	for _, u := range users {
		dirty[storage.ShardOf(u, 4)]++
	}
	for _, ss := range st.PerShard {
		if ss.DeltaRows != dirty[ss.Shard] {
			t.Fatalf("shard %d holds %d delta rows, want %d", ss.Shard, ss.DeltaRows, dirty[ss.Shard])
		}
	}
	// Selective compaction: only the dirty shards rebuild.
	if err := lt.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, ss := range lt.Stats().PerShard {
		wantCompactions := uint64(0)
		if dirty[ss.Shard] > 0 {
			wantCompactions = 1
		}
		if ss.Compactions != wantCompactions {
			t.Fatalf("shard %d ran %d compactions, want %d (delta rows %d)",
				ss.Shard, ss.Compactions, wantCompactions, dirty[ss.Shard])
		}
	}
}

// TestJournalMigratesAcrossShardCounts is the durability half of the
// migration path: rows journaled under one shard layout must survive
// reopening under another — 1 shard -> 4 shards -> back to 1 — with every
// row re-routed to its owning shard's journal and the stale files removed.
func TestJournalMigratesAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "game.journal")
	sealed1 := buildShardedSealed(t, 1)

	lt, err := OpenSharded(sealed1, Config{JournalPath: base})
	if err != nil {
		t.Fatal(err)
	}
	schema := lt.Schema()
	var rows []Row
	for i := 0; i < 10; i++ {
		rows = append(rows, row(t, schema, fmt.Sprintf("mig-user-%d", i), 1369000000+int64(i), "launch", "China", "Beijing", "mage", 1, int64(i)))
	}
	if err := lt.Append(rows); err != nil {
		t.Fatal(err)
	}
	if err := lt.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same sealed data resharded to 4: the legacy base journal
	// must be split into per-shard journals and removed.
	lt4, err := OpenSharded(sealed1, Config{JournalPath: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := lt4.Stats()
	if st.Shards != 4 || st.ReplayedRows != uint64(len(rows)) || st.DeltaRows != len(rows) {
		t.Fatalf("after 1->4 migration: %+v, want %d replayed rows on 4 shards", st, len(rows))
	}
	for _, ss := range st.PerShard {
		want := 0
		for i := range rows {
			if storage.ShardOf(fmt.Sprintf("mig-user-%d", i), 4) == ss.Shard {
				want++
			}
		}
		if ss.DeltaRows != want {
			t.Fatalf("shard %d restored %d rows, want %d", ss.Shard, ss.DeltaRows, want)
		}
	}
	if _, err := os.Stat(base); !os.IsNotExist(err) {
		t.Fatalf("legacy journal survived the migration (err=%v)", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s.s%d", base, i)); err != nil {
			t.Fatalf("shard %d journal missing after migration: %v", i, err)
		}
	}
	if err := lt4.Close(); err != nil {
		t.Fatal(err)
	}

	// And back down to one shard: the per-shard journals merge into the
	// base file and are removed.
	sealed4 := buildShardedSealed(t, 4)
	lt1, err := OpenSharded(sealed4, Config{JournalPath: base, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lt1.Close()
	st = lt1.Stats()
	if st.Shards != 1 || st.ReplayedRows != uint64(len(rows)) || st.DeltaRows != len(rows) {
		t.Fatalf("after 4->1 migration: %+v, want %d replayed rows on 1 shard", st, len(rows))
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s.s%d", base, i)); !os.IsNotExist(err) {
			t.Fatalf("shard %d journal survived the merge back (err=%v)", i, err)
		}
	}
}

// TestDiskLoadedShardsCompact pins the full disk lifecycle: a manifest
// table written and re-read from disk (whose shards deserialize with
// distinct Schema instances) must accept appends and compact cleanly.
func TestDiskLoadedShardsCompact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "game.cohana")
	if err := storage.WriteShardedFile(path, buildShardedSealed(t, 3)); err != nil {
		t.Fatal(err)
	}
	sealed, err := storage.ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := OpenSharded(sealed, Config{
		Persist: func(d storage.LayoutDelta) error { return storage.WriteShardedFile(path, d.Layout) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	schema := lt.Schema()
	var rows []Row
	for i := 0; i < 6; i++ {
		rows = append(rows, row(t, schema, fmt.Sprintf("disk-user-%d", i), 1369000000+int64(i), "launch", "China", "Beijing", "mage", 1, 0))
	}
	if err := lt.Append(rows); err != nil {
		t.Fatal(err)
	}
	if err := lt.Compact(); err != nil {
		t.Fatal(err)
	}
	st := lt.Stats()
	if st.SealedRows != sealed.NumRows()+len(rows) || st.DeltaRows != 0 {
		t.Fatalf("after disk-loaded compaction: %+v", st)
	}
	// The persisted layout reloads with every row.
	back, err := storage.ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != st.SealedRows {
		t.Fatalf("persisted layout has %d rows, want %d", back.NumRows(), st.SealedRows)
	}
}

// TestReshardAtOpenPreservesRowsAndPersists pins load-time resharding: the
// sealed rows survive the 1 -> N rebuild bit-for-bit and the new layout is
// persisted before the table serves.
func TestReshardAtOpenPreservesRowsAndPersists(t *testing.T) {
	sealed := buildShardedSealed(t, 1)
	var persisted *storage.Sharded
	lt, err := OpenSharded(sealed, Config{
		Shards:  3,
		Persist: func(d storage.LayoutDelta) error { persisted = d.Layout; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	if lt.NumShards() != 3 {
		t.Fatalf("table has %d shards, want 3", lt.NumShards())
	}
	if persisted == nil || persisted.NumShards() != 3 {
		t.Fatal("resharded layout was not persisted before serving")
	}
	if got, want := lt.Stats().SealedRows, sealed.NumRows(); got != want {
		t.Fatalf("reshard lost rows: %d, want %d", got, want)
	}
	// Shards=0 keeps the stored count without a rebuild.
	lt0, err := OpenSharded(buildShardedSealed(t, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt0.Close()
	if lt0.NumShards() != 4 {
		t.Fatalf("Shards=0 changed the stored count to %d", lt0.NumShards())
	}
}
