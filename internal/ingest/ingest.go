// Package ingest is COHANA's live ingestion subsystem: it pairs the sealed,
// immutable, compressed storage tier (internal/storage) with a per-table
// delta store that accepts streaming activity rows, and a compactor that
// periodically seals the delta into fresh compressed chunks.
//
// The delta is held uncompressed and row-ordered behind a mutex; every
// acknowledged append batch is first written to an append-only CSV journal
// (crash durability) and then folded into an immutable, user-clustered
// snapshot that queries read without locking. Query execution unions the two
// tiers (cohort.RunUnion): sealed chunks flow through the pruned parallel
// executor, delta rows through the row-scan accumulator, so results are
// always fresh. Compaction — triggered by a row-count threshold or an
// explicit call — materializes the sealed tier, merges the delta in (Au, At,
// Ae) order, rebuilds the two-level-encoded chunks, atomically swaps the
// merged table in, and truncates the journal; appends and queries proceed
// concurrently throughout.
package ingest

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/storage"
)

// DefaultAutoCompactRows is the delta row count that triggers background
// compaction when Config.AutoCompactRows is unset in contexts that want
// automatic sealing (the query server).
const DefaultAutoCompactRows = 256 * 1024

// Config parameterizes a live table.
type Config struct {
	// JournalPath, when non-empty, makes appends durable: every batch is
	// synced to this append-only CSV file before it is acknowledged, and the
	// file is replayed by Open. Empty keeps the delta memory-only.
	JournalPath string
	// AutoCompactRows triggers background compaction once the delta holds at
	// least this many rows; 0 disables automatic compaction (explicit
	// Compact calls still work).
	AutoCompactRows int
	// ChunkSize is the target chunk size for compacted tables; 0 keeps the
	// sealed table's current chunk size.
	ChunkSize int
	// InitialGen is the starting generation; the catalog passes the previous
	// incarnation's generation on reload so cache keys stay monotonic.
	InitialGen uint64
	// Persist, when non-nil, durably stores a freshly compacted table before
	// it is swapped in (the server writes it over the .cohana file); an
	// error aborts the compaction with the old state intact.
	Persist func(*storage.Table) error
	// OnChange is called (outside the table lock) after every acknowledged
	// append and compaction; the server invalidates cached results here.
	OnChange func()
}

// ErrDuplicate reports an appended row that violates the activity primary
// key (Au, At, Ae) against the sealed tier, the delta, or its own batch.
type ErrDuplicate struct {
	User   string
	Time   int64
	Action string
}

func (e ErrDuplicate) Error() string {
	return fmt.Sprintf("duplicate activity tuple: user %q already performed %q at %d", e.User, e.Action, e.Time)
}

// ErrClosed reports operations on a closed table.
var ErrClosed = fmt.Errorf("ingest: table is closed")

// ErrBadRow reports an appended row that fails structural validation (wrong
// width, empty or NUL-bearing user/action) — a client error, distinct from
// server-side failures.
type ErrBadRow struct{ Reason string }

func (e ErrBadRow) Error() string { return "ingest: bad row: " + e.Reason }

// Table is one live table: a sealed compressed tier plus a mutable delta.
// All methods are safe for concurrent use.
type Table struct {
	cfg Config

	mu      sync.Mutex
	sealed  *storage.Table
	userIdx storage.UserIndex   // lazy; nil until first needed, reset on compaction
	log     []Row               // un-compacted rows in arrival order
	logKeys map[string]struct{} // primary keys of log, for duplicate checks
	// snap is the sorted, user-clustered snapshot of log that queries scan
	// (nil when empty). It is rebuilt lazily — Append only marks it dirty —
	// so a burst of appends pays one sort on the next View instead of a
	// full copy per batch, and the append critical section stays short.
	snap      *activity.Table
	snapDirty bool
	// union is the cached row-scan input of the union query path (delta
	// rows + overlap users' sealed blocks); rebuilt with snap so every
	// query of a generation shares one materialization instead of decoding
	// the overlap users' sealed blocks per query.
	union   *cohort.UnionDelta
	journal *journal // nil when durability is disabled
	gen     uint64
	closed  bool

	compacting bool
	compactMu  sync.Mutex // serializes compaction bodies
	wg         sync.WaitGroup

	appends        uint64
	appendedRows   uint64
	compactions    uint64
	replayedRows   uint64
	replayDropped  uint64
	lastCompactMS  int64
	lastCompactErr string
	lastJournalErr string
}

// View is a consistent snapshot of a live table for query execution: the
// sealed tier, the delta snapshot (nil when empty), the sealed user index,
// the precomputed union input, and the generation that cache keys embed.
// All parts are immutable.
type View struct {
	Sealed    *storage.Table
	Delta     *activity.Table
	UserIndex storage.UserIndex
	Union     *cohort.UnionDelta
	Gen       uint64
}

// Open wraps a sealed table in a live table, replaying the journal (if
// configured) into the delta so no acknowledged append is lost across a
// restart. Close the table to release the journal file and wait out any
// background compaction.
func Open(sealed *storage.Table, cfg Config) (*Table, error) {
	if sealed == nil {
		return nil, fmt.Errorf("ingest: nil sealed table")
	}
	t := &Table{cfg: cfg, sealed: sealed, logKeys: make(map[string]struct{}), gen: cfg.InitialGen}
	if t.gen == 0 {
		t.gen = 1
	}
	if cfg.JournalPath == "" {
		return t, nil
	}
	rows, err := readJournal(cfg.JournalPath, sealed.Schema())
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		user, ts, action := row.pk(sealed.Schema())
		key := pkKey(user, ts, action)
		// Rows already sealed (crash between the compacted-table swap and
		// the journal truncation) or replayed twice are dropped, keeping
		// replay idempotent.
		if _, dup := t.logKeys[key]; dup || t.sealedHasPK(user, ts, action) {
			t.replayDropped++
			continue
		}
		t.log = append(t.log, row)
		t.logKeys[key] = struct{}{}
		t.replayedRows++
	}
	t.snapDirty = len(t.log) > 0
	if t.journal, err = openJournal(cfg.JournalPath); err != nil {
		return nil, err
	}
	return t, nil
}

// Schema returns the table schema (shared by both tiers).
func (t *Table) Schema() *activity.Schema {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sealed.Schema()
}

// View snapshots the table for query execution, rebuilding the delta
// snapshot if appends dirtied it since the last view.
func (t *Table) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refreshSnapLocked()
	if t.snap != nil && t.snap.Len() > 0 {
		if t.userIdx == nil {
			t.userIdx = t.sealed.BuildUserIndex()
		}
		if t.union == nil {
			// Build once per change; on failure (which the append-time PK
			// checks rule out) leave it nil and let the executor surface
			// the error per query.
			t.union, _ = cohort.BuildUnionDelta(t.sealed, t.snap, t.userIdx)
		}
	}
	return View{Sealed: t.sealed, Delta: t.snap, UserIndex: t.userIdx, Union: t.union, Gen: t.gen}
}

// refreshSnapLocked rebuilds the sorted delta snapshot from the log when
// dirty; t.mu must be held. Readers hold previous snapshot pointers, which
// stay valid and immutable. Every log row passed the primary-key checks on
// admission, so a sort failure here means corrupted state — panic rather
// than serve a wrong snapshot.
func (t *Table) refreshSnapLocked() {
	if !t.snapDirty {
		return
	}
	t.snapDirty = false
	t.union = nil // derived from snap (and the sealed tier): rebuild with it
	if len(t.log) == 0 {
		t.snap = nil
		return
	}
	snap := activity.NewTable(t.sealed.Schema())
	for _, row := range t.log {
		snap.AppendRow(row.Strs, row.Ints)
	}
	if err := snap.SortByPK(); err != nil {
		panic("ingest: delta snapshot violates primary key: " + err.Error())
	}
	t.snap = snap
}

// Gen returns the current generation.
func (t *Table) Gen() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen
}

// DeltaRows returns the number of un-compacted rows.
func (t *Table) DeltaRows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.log)
}

// Append atomically admits a batch of rows into the delta: either every row
// is validated, journaled and visible to subsequent queries, or none is and
// the first offending row's error is returned. Appending may trigger a
// background compaction when the delta crosses the configured threshold.
func (t *Table) Append(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	schema := t.sealed.Schema()
	// Validate the whole batch before touching any state.
	batchKeys := make(map[string]struct{}, len(rows))
	for _, row := range rows {
		if len(row.Strs) != schema.NumCols() || len(row.Ints) != schema.NumCols() {
			t.mu.Unlock()
			return ErrBadRow{Reason: fmt.Sprintf("wrong width for schema (%d columns)", schema.NumCols())}
		}
		user, ts, action := row.pk(schema)
		if user == "" || action == "" {
			t.mu.Unlock()
			return ErrBadRow{Reason: "user and action must be non-empty"}
		}
		if strings.ContainsRune(user, 0) || strings.ContainsRune(action, 0) {
			// NUL is pkKey's field separator; admitting it would let two
			// distinct primary keys collide on one key.
			t.mu.Unlock()
			return ErrBadRow{Reason: "user and action must not contain NUL bytes"}
		}
		key := pkKey(user, ts, action)
		if _, dup := batchKeys[key]; dup {
			t.mu.Unlock()
			return ErrDuplicate{User: user, Time: ts, Action: action}
		}
		if _, dup := t.logKeys[key]; dup {
			t.mu.Unlock()
			return ErrDuplicate{User: user, Time: ts, Action: action}
		}
		if t.sealedHasPK(user, ts, action) {
			t.mu.Unlock()
			return ErrDuplicate{User: user, Time: ts, Action: action}
		}
		batchKeys[key] = struct{}{}
	}
	// Durability before acknowledgement. The fsync runs under t.mu, which
	// serializes appends against views: simple and correct, at the cost of
	// queries waiting out a batch's sync. Moving the sync to a dedicated
	// journal lock (enabling group commit) requires re-journaling rows when
	// a compaction's rewrite races the unlocked window — deliberately left
	// out until ingestion rates demand it.
	if t.journal != nil {
		if err := t.journal.append(schema, rows); err != nil {
			t.mu.Unlock()
			return err
		}
	}
	t.log = append(t.log, rows...)
	for k := range batchKeys {
		t.logKeys[k] = struct{}{}
	}
	// The sorted snapshot is rebuilt lazily on the next View, so the only
	// work left in this critical section is bookkeeping.
	t.snapDirty = true
	t.gen++
	t.appends++
	t.appendedRows += uint64(len(rows))
	trigger := t.cfg.AutoCompactRows > 0 && len(t.log) >= t.cfg.AutoCompactRows && !t.compacting
	if trigger {
		t.compacting = true
		t.wg.Add(1)
	}
	t.mu.Unlock()
	if trigger {
		go t.backgroundCompact()
	}
	t.notifyChange()
	return nil
}

// sealedHasPK reports whether the sealed tier holds a tuple with this
// primary key; t.mu must be held.
func (t *Table) sealedHasPK(user string, ts int64, action string) bool {
	schema := t.sealed.Schema()
	gid, ok := t.sealed.LookupString(schema.UserCol(), user)
	if !ok {
		return false
	}
	agid, ok := t.sealed.LookupString(schema.ActionCol(), action)
	if !ok {
		return false
	}
	if t.userIdx == nil {
		t.userIdx = t.sealed.BuildUserIndex()
	}
	loc, ok := t.userIdx[gid]
	if !ok {
		return false
	}
	return t.sealed.HasTuple(loc, ts, agid)
}

// backgroundCompact runs threshold-triggered compactions, looping while the
// delta stays over the threshold (appends may race the compaction).
func (t *Table) backgroundCompact() {
	defer t.wg.Done()
	for {
		t.compactMu.Lock()
		err := t.compactOnce()
		t.compactMu.Unlock()
		t.recordCompactErr(err)
		t.mu.Lock()
		again := err == nil && !t.closed &&
			t.cfg.AutoCompactRows > 0 && len(t.log) >= t.cfg.AutoCompactRows
		if !again {
			t.compacting = false
		}
		t.mu.Unlock()
		if !again {
			return
		}
	}
}

// recordCompactErr keeps the most recent compaction failure visible in
// Stats — background compactions have no caller to return an error to, and
// a persistently failing compaction (e.g. a full disk during Persist) must
// not be silent while the delta and journal grow.
func (t *Table) recordCompactErr(err error) {
	t.mu.Lock()
	if err != nil {
		t.lastCompactErr = err.Error()
	} else {
		t.lastCompactErr = ""
	}
	t.mu.Unlock()
}

// Compact synchronously seals the current delta into the compressed tier.
// It is a no-op on an empty delta.
func (t *Table) Compact() error {
	t.compactMu.Lock()
	err := t.compactOnce()
	t.compactMu.Unlock()
	t.recordCompactErr(err)
	return err
}

// compactOnce merges the delta rows present at entry into a fresh sealed
// table and swaps it in; rows appended while the merge runs stay in the
// delta for the next round. t.compactMu must be held.
func (t *Table) compactOnce() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	n := len(t.log)
	if n == 0 {
		t.mu.Unlock()
		return nil
	}
	sealedOld := t.sealed
	rows := t.log[:n:n]
	chunkSize := t.cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = sealedOld.ChunkSize()
	}
	t.mu.Unlock()

	// The heavy merge runs without the lock: appends and queries proceed
	// against the old sealed tier and the growing delta. Both inputs are
	// sorted (the sealed tier by construction, the delta batch by its own
	// small sort), so the combined order comes from a linear two-run merge
	// rather than re-sorting the whole table. Appends are PK-checked
	// against both tiers, so a merge conflict indicates state corruption;
	// surface it rather than sealing a bad table.
	start := time.Now()
	schema := sealedOld.Schema()
	batch := activity.NewTable(schema)
	for _, row := range rows {
		batch.AppendRow(row.Strs, row.Ints)
	}
	if err := batch.SortByPK(); err != nil {
		return fmt.Errorf("ingest: compaction merge: %w", err)
	}
	merged, err := activity.MergeSorted(sealedOld.Materialize(), batch)
	if err != nil {
		return fmt.Errorf("ingest: compaction merge: %w", err)
	}
	sealedNew, err := storage.Build(merged, storage.Options{ChunkSize: chunkSize})
	if err != nil {
		return fmt.Errorf("ingest: compaction build: %w", err)
	}
	// Re-check closed before persisting: a Close (or catalog reload) that
	// happened during the merge means a successor incarnation may already
	// own the .cohana file — overwriting it with this stale table would
	// erase the successor's persisted rows.
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if t.cfg.Persist != nil {
		if err := t.cfg.Persist(sealedNew); err != nil {
			return fmt.Errorf("ingest: persisting compacted table: %w", err)
		}
	}

	t.mu.Lock()
	if t.closed {
		// The table was closed (or replaced by a catalog reload) while the
		// merge ran without the lock. Swapping state or rewriting the
		// journal now would clobber the successor incarnation's journal
		// file, losing its acknowledged appends — abort instead.
		t.mu.Unlock()
		return ErrClosed
	}
	t.sealed = sealedNew
	t.userIdx = nil
	remaining := append([]Row(nil), t.log[n:]...)
	t.log = remaining
	t.logKeys = make(map[string]struct{}, len(remaining))
	for _, row := range remaining {
		user, ts, action := row.pk(schema)
		t.logKeys[pkKey(user, ts, action)] = struct{}{}
	}
	t.snapDirty = true
	if t.journal != nil && t.cfg.Persist != nil {
		// Truncate the journal only when the new sealed tier was durably
		// persisted. Without a Persist hook (library engines) the merged
		// table exists in memory only — the journal must keep every row, or
		// a crash after compaction would lose acknowledged appends; replay
		// drops whatever a later Save made redundant. A rewrite failure
		// does not fail the compaction — the swap already happened and is
		// correct; leftover sealed rows in the journal are dropped as
		// duplicates on replay. It is recorded in Stats instead, because
		// after a failed reopen the journal is disabled and durability is
		// degraded until a reload.
		if err := t.journal.rewrite(schema, remaining); err != nil {
			t.lastJournalErr = err.Error()
		} else {
			t.lastJournalErr = ""
		}
	}
	t.gen++
	t.compactions++
	t.lastCompactMS = time.Since(start).Milliseconds()
	t.mu.Unlock()
	t.notifyChange()
	return nil
}

func (t *Table) notifyChange() {
	if t.cfg.OnChange != nil {
		t.cfg.OnChange()
	}
}

// Close waits out any in-flight compaction — background or explicit — and
// releases the journal. Appends and compactions after Close fail with
// ErrClosed; queries against views already taken stay valid. After Close
// returns, the persisted table file and journal are quiescent, which the
// catalog's reload path depends on.
func (t *Table) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.wg.Wait()
	// Taking compactMu drains an in-flight explicit Compact (not covered by
	// wg): it sees closed at its next check and aborts without persisting
	// or rewriting; only then is the journal released.
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	if t.journal != nil {
		return t.journal.close()
	}
	return nil
}

// Stats is a point-in-time snapshot of the table's ingestion state.
type Stats struct {
	SealedRows   int    `json:"sealedRows"`
	SealedUsers  int    `json:"sealedUsers"`
	SealedChunks int    `json:"sealedChunks"`
	DeltaRows    int    `json:"deltaRows"`
	Generation   uint64 `json:"generation"`
	Appends      uint64 `json:"appends"`
	AppendedRows uint64 `json:"appendedRows"`
	Compactions  uint64 `json:"compactions"`
	// LastCompactMillis is the wall time of the most recent compaction.
	LastCompactMillis int64 `json:"lastCompactMillis"`
	// LastCompactError is the most recent compaction failure, empty after a
	// success — the only trace a failing background compaction leaves.
	LastCompactError string `json:"lastCompactError,omitempty"`
	// LastJournalError is a degraded-durability warning: the compaction
	// succeeded but its journal rewrite failed, so appends may be rejected
	// until the table is reloaded.
	LastJournalError string `json:"lastJournalError,omitempty"`
	// ReplayedRows / ReplayDroppedRows describe the journal replay performed
	// by Open: rows restored into the delta, and rows skipped because the
	// sealed tier already held them.
	ReplayedRows      uint64 `json:"replayedRows"`
	ReplayDroppedRows uint64 `json:"replayDroppedRows"`
	JournalBytes      int64  `json:"journalBytes"`
	Compacting        bool   `json:"compacting"`
}

// Stats snapshots the counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		SealedRows:        t.sealed.NumRows(),
		SealedUsers:       t.sealed.NumUsers(),
		SealedChunks:      t.sealed.NumChunks(),
		DeltaRows:         len(t.log),
		Generation:        t.gen,
		Appends:           t.appends,
		AppendedRows:      t.appendedRows,
		Compactions:       t.compactions,
		LastCompactMillis: t.lastCompactMS,
		LastCompactError:  t.lastCompactErr,
		LastJournalError:  t.lastJournalErr,
		ReplayedRows:      t.replayedRows,
		ReplayDroppedRows: t.replayDropped,
		Compacting:        t.compacting,
	}
	if t.journal != nil {
		s.JournalBytes = t.journal.size()
	}
	return s
}
