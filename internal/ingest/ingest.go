// Package ingest is COHANA's live ingestion subsystem: it pairs the sealed,
// immutable, compressed storage tier (internal/storage) with per-shard delta
// stores that accept streaming activity rows, and per-shard compactors that
// periodically seal each delta into fresh compressed chunks.
//
// A live table is partitioned by user hash (storage.ShardOf) into N shards.
// Each shard owns its slice of the sealed tier, its own uncompressed delta
// log behind its own mutex, its own append-only CSV journal (crash
// durability) and its own compaction lifecycle — so appends to different
// shards never contend, and a lagging shard's compaction cannot block
// ingestion or sealing on the others. The generation is a per-shard vector;
// the table-level generation is its sum, which advances on every change and
// is what result caches key on.
//
// Query execution scatter-gathers over the shards (plan.ExecuteShards):
// every shard unions its sealed chunks (pruned parallel executor) with its
// delta rows (row-scan accumulator), and the per-shard partials merge into
// one always-fresh result — users never span shards, so the merge needs no
// correction. Compaction — triggered per shard by a row-count threshold or
// by an explicit call — materializes the shard's sealed tier, linear-merges
// its delta in (Au, At, Ae) order, rebuilds the two-level-encoded chunks,
// atomically swaps the shard in and truncates its journal; shards compact
// independently and concurrently while appends and queries proceed.
package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"time"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/obs"
	"repro/internal/storage"
)

// DefaultAutoCompactRows is the per-shard delta row count that triggers
// background compaction when Config.AutoCompactRows is unset in contexts
// that want automatic sealing (the query server).
const DefaultAutoCompactRows = 256 * 1024

// Config parameterizes a live table.
type Config struct {
	// JournalPath, when non-empty, makes appends durable. A single-shard
	// table journals to exactly this path (the legacy layout); a table with
	// N > 1 shards journals shard i to "<JournalPath>.s<i>". Open migrates
	// journal rows across layouts: rows found under any previous shard
	// count are re-routed to their owning shards, re-journaled durably and
	// the stale files removed, so no acknowledged append is lost when the
	// shard count changes.
	JournalPath string
	// AutoCompactRows triggers background compaction of a shard once its
	// delta holds at least this many rows; 0 disables automatic compaction
	// (explicit Compact calls still work).
	AutoCompactRows int
	// ChunkSize is the target chunk size for compacted shards; 0 keeps the
	// sealed table's current chunk size.
	ChunkSize int
	// Shards is the target shard count. 0 keeps the sealed table's current
	// count; a differing count reshards the sealed tier at Open — the
	// migration path that turns a legacy single-shard file into an N-shard
	// table (and back).
	Shards int
	// InitialGen is the starting generation of every shard; the catalog
	// passes the previous incarnation's table generation + 1 on reload so
	// table-level generations (the per-shard sum) stay monotonic across
	// incarnations and cache keys never collide.
	InitialGen uint64
	// Persist, when non-nil, durably stores a layout change before a freshly
	// compacted shard is swapped in (the server commits it over the table's
	// files); an error aborts the compaction with the old state intact. The
	// hook receives a LayoutDelta — the full new layout plus which shard
	// changed and how many of its chunks were actually rebuilt — so the
	// committer can persist incrementally: only the new chunk segments and
	// the manifest, not the table. Concurrent shard compactions serialize
	// their persist+swap steps, so every persisted layout is complete and
	// current.
	Persist func(storage.LayoutDelta) error
	// OnChange is called (outside any shard lock) after every acknowledged
	// append and compaction; the server invalidates cached results here.
	OnChange func()
}

// ErrDuplicate reports an appended row that violates the activity primary
// key (Au, At, Ae) against the sealed tier, the delta, or its own batch.
type ErrDuplicate struct {
	User   string
	Time   int64
	Action string
}

func (e ErrDuplicate) Error() string {
	return fmt.Sprintf("duplicate activity tuple: user %q already performed %q at %d", e.User, e.Action, e.Time)
}

// ErrClosed reports operations on a closed table.
var ErrClosed = fmt.Errorf("ingest: table is closed")

// ErrBadRow reports an appended row that fails structural validation (wrong
// width, empty or NUL-bearing user/action) — a client error, distinct from
// server-side failures.
type ErrBadRow struct{ Reason string }

func (e ErrBadRow) Error() string { return "ingest: bad row: " + e.Reason }

// Table is one live table: N user-hash shards, each a sealed compressed
// tier plus a mutable delta. All methods are safe for concurrent use.
type Table struct {
	cfg    Config
	schema *activity.Schema
	shards []*shard
	// persistMu serializes the persist+swap tail of shard compactions so a
	// persisted layout never contains a stale neighbor shard.
	persistMu sync.Mutex
	// txn is the 2PC-lite coordinator log for multi-shard append batches
	// (nil for single-shard or journal-less tables); nextBatch allocates its
	// batch ids.
	txn       *txnLog
	nextBatch atomic.Uint64
}

// View is a consistent snapshot of one shard for query execution: the
// shard's sealed tier, its delta snapshot (nil when empty), the precomputed
// union input, and the shard generation. All parts are immutable.
type View struct {
	Sealed *storage.Table
	Delta  *activity.Table
	Union  *cohort.UnionDelta
	// DeltaActions is the set of distinct actions in Delta (nil when Delta
	// is nil), built once per delta generation so per-query relevance checks
	// (the result cache's shard fingerprint) answer birth-action membership
	// without scanning the delta.
	DeltaActions map[string]struct{}
	Gen          uint64
}

// Open wraps a sealed single table in a live table; see OpenSharded.
func Open(sealed *storage.Table, cfg Config) (*Table, error) {
	if sealed == nil {
		return nil, fmt.Errorf("ingest: nil sealed table")
	}
	return OpenSharded(storage.SingleShard(sealed), cfg)
}

// OpenSharded wraps a sealed sharded table in a live table, resharding it
// first when cfg.Shards differs from the stored count, and replaying the
// journals (if configured) into the shard deltas so no acknowledged append
// is lost across a restart or a shard-count change. Close the table to
// release the journals and wait out any background compaction.
func OpenSharded(sealed *storage.Sharded, cfg Config) (*Table, error) {
	if sealed == nil {
		return nil, fmt.Errorf("ingest: nil sealed table")
	}
	if cfg.Shards > 0 && cfg.Shards != sealed.NumShards() {
		resharded, err := reshard(sealed, cfg)
		if err != nil {
			return nil, err
		}
		if cfg.Persist != nil {
			// Make the resharded layout durable before serving from it, so
			// the on-disk files always match the journal layout about to be
			// written. Resharding rebuilds everything: a full-layout delta.
			if err := cfg.Persist(storage.FullLayout(resharded)); err != nil {
				return nil, fmt.Errorf("ingest: persisting resharded table: %w", err)
			}
		}
		sealed = resharded
	}
	t := &Table{cfg: cfg, schema: sealed.Schema(), shards: make([]*shard, sealed.NumShards())}
	gen := cfg.InitialGen
	if gen == 0 {
		gen = 1
	}
	for i := range t.shards {
		t.shards[i] = &shard{
			idx:     i,
			parent:  t,
			sealed:  sealed.Shard(i),
			logKeys: make(map[string]struct{}),
			gen:     gen,
		}
	}
	if cfg.JournalPath != "" {
		if err := t.openJournals(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// reshard redistributes a sealed tier over cfg.Shards user-hash partitions:
// every shard is decoded, the rows re-sorted globally and rebuilt. It runs
// once, at open, before any concurrency exists — mid-life shard counts are
// immutable.
func reshard(sealed *storage.Sharded, cfg Config) (*storage.Sharded, error) {
	rows, err := sealed.Materialize()
	if err != nil {
		return nil, fmt.Errorf("ingest: resharding: %w", err)
	}
	chunkSize := cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = sealed.ChunkSize()
	}
	out, err := storage.BuildSharded(rows, cfg.Shards, storage.Options{ChunkSize: chunkSize})
	if err != nil {
		return nil, fmt.Errorf("ingest: resharding: %w", err)
	}
	return out, nil
}

// journalPath returns shard i's canonical journal path under the current
// shard count: the bare base path for single-shard tables (the legacy
// layout), "<base>.s<i>" otherwise.
func (t *Table) journalPath(i int) string {
	if len(t.shards) == 1 {
		return t.cfg.JournalPath
	}
	return fmt.Sprintf("%s.s%d", t.cfg.JournalPath, i)
}

// openJournals restores the delta from every journal file of any previous
// layout, re-routes rows to their owning shards under the current count,
// rewrites each shard's journal to exactly its restored delta (one committed
// batch, dropping rows the sealed tier already holds), and removes stale
// journal files. The new journals are durable before any old file is
// deleted, so a crash at any point leaves every acknowledged row in at least
// one file — replay is idempotent, duplicates are dropped. Prepared
// multi-shard batches replay only when the coordinator log committed them;
// once every journal is rewritten (the surviving rows re-marked as plain
// committed batches) the coordinator log is reset for a fresh id sequence.
func (t *Table) openJournals() error {
	old, err := existingJournalFiles(t.cfg.JournalPath)
	if err != nil {
		return err
	}
	committed, err := readTxnCommits(t.cfg.JournalPath + TxnExt)
	if err != nil {
		return err
	}
	pending := make([][]Row, len(t.shards))
	for _, path := range old {
		rows, err := readJournal(path, t.schema, committed)
		if err != nil {
			return err
		}
		for _, row := range rows {
			user, ts, action := row.pk(t.schema)
			idx := storage.ShardOf(user, len(t.shards))
			s := t.shards[idx]
			key := pkKey(user, ts, action)
			// Rows already sealed (crash between the compacted-table swap
			// and the journal truncation) or replayed twice are dropped,
			// keeping replay idempotent.
			if _, dup := s.logKeys[key]; dup {
				s.replayDropped++
				continue
			}
			sealed, err := s.sealedHasPKLocked(user, ts, action)
			if err != nil {
				return fmt.Errorf("ingest: replaying journal %s: %w", path, err)
			}
			if sealed {
				s.replayDropped++
				continue
			}
			pending[idx] = append(pending[idx], row)
			s.logKeys[key] = struct{}{}
			s.replayedRows++
		}
	}
	current := make(map[string]bool, len(t.shards))
	for i, s := range t.shards {
		path := t.journalPath(i)
		current[path] = true
		if s.journal, err = openJournalWith(path, t.schema, pending[i]); err != nil {
			return err
		}
		s.log = pending[i]
		s.snapDirty = len(s.log) > 0
	}
	for _, path := range old {
		if !current[path] {
			_ = os.Remove(path)
		}
	}
	if len(t.shards) > 1 {
		// The shard journals now hold only plain committed batches, so the
		// old commit records are spent; reset the coordinator so fresh batch
		// ids cannot collide with leftover prepared markers.
		if t.txn, err = openTxnLog(t.cfg.JournalPath + TxnExt); err != nil {
			return err
		}
		if err := t.txn.reset(); err != nil {
			return err
		}
	} else {
		// A single journal is atomic by itself; a leftover coordinator log
		// from a previous multi-shard layout is stale.
		_ = os.Remove(t.cfg.JournalPath + TxnExt)
	}
	return nil
}

// existingJournalFiles lists the journal files of every layout at base: the
// bare base file plus any "<base>.s<i>" shard journals, sorted for
// deterministic replay order.
func existingJournalFiles(base string) ([]string, error) {
	var out []string
	if _, err := os.Stat(base); err == nil {
		out = append(out, base)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("ingest: reading journal: %w", err)
	}
	matches, err := filepath.Glob(base + ".s*")
	if err != nil {
		return nil, fmt.Errorf("ingest: listing journals: %w", err)
	}
	for _, m := range matches {
		// Accept only exact shard journals; rewrite temp files and other
		// leftovers (e.g. "<base>.s0.tmp123") are not journals.
		suffix := strings.TrimPrefix(m, base+".s")
		if _, err := strconv.Atoi(suffix); err == nil {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Schema returns the table schema (shared by all shards and tiers).
func (t *Table) Schema() *activity.Schema { return t.schema }

// NumShards returns the shard count, fixed for the table's lifetime.
func (t *Table) NumShards() int { return len(t.shards) }

// Views snapshots every shard for query execution; the result feeds
// plan.ExecuteShards.
func (t *Table) Views() []View {
	out := make([]View, len(t.shards))
	for i, s := range t.shards {
		out[i] = s.view()
	}
	return out
}

// View snapshots a single-shard table; it panics on multi-shard tables,
// whose callers must scatter-gather over Views.
func (t *Table) View() View {
	if len(t.shards) != 1 {
		panic(fmt.Sprintf("ingest: View on a %d-shard table; use Views", len(t.shards)))
	}
	return t.shards[0].view()
}

// SealedSharded assembles the current sealed tier of every shard. The
// per-shard tables are immutable; the assembly is a point-in-time layout.
func (t *Table) SealedSharded() *storage.Sharded {
	return t.sealedLayoutWith(-1, nil)
}

// sealedLayoutWith composes the current sealed layout, substituting shard
// replace (when >= 0) with tbl — the input of a compaction's Persist call.
func (t *Table) sealedLayoutWith(replace int, tbl *storage.Table) *storage.Sharded {
	tables := make([]*storage.Table, len(t.shards))
	for i, s := range t.shards {
		if i == replace {
			tables[i] = tbl
			continue
		}
		s.mu.Lock()
		tables[i] = s.sealed
		s.mu.Unlock()
	}
	out, err := storage.NewSharded(tables)
	if err != nil {
		// All shards share t.schema by construction.
		panic("ingest: inconsistent shard schemas: " + err.Error())
	}
	return out
}

// ChunkSize returns the configured target chunk size, shared by every
// shard — a cheap accessor for the serving catalog, which must not assemble
// a full layout per stats request.
func (t *Table) ChunkSize() int {
	s := t.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed.ChunkSize()
}

// Gen returns the table-level generation: the sum of the per-shard
// generations, which advances on every append, compaction and reload.
func (t *Table) Gen() uint64 {
	var sum uint64
	for _, s := range t.shards {
		s.mu.Lock()
		sum += s.gen
		s.mu.Unlock()
	}
	return sum
}

// GenVector returns the per-shard generation vector.
func (t *Table) GenVector() []uint64 {
	out := make([]uint64, len(t.shards))
	for i, s := range t.shards {
		s.mu.Lock()
		out[i] = s.gen
		s.mu.Unlock()
	}
	return out
}

// DeltaRows returns the number of un-compacted rows across all shards.
func (t *Table) DeltaRows() int {
	n := 0
	for _, s := range t.shards {
		s.mu.Lock()
		n += len(s.log)
		s.mu.Unlock()
	}
	return n
}

// Append admits a batch of rows into the delta, each row routed to its
// user's shard. The whole batch is validated (shape and primary keys
// against every involved shard) and journaled before any row becomes
// visible, so a failed Append admits nothing and a plain retry of the same
// batch can succeed. A batch spanning several shards commits 2PC-lite:
// every involved shard journal is *prepared* (rows + a marker naming the
// batch id) and fsynced first, then one commit record in the coordinator
// log makes the batch durable everywhere at once — an I/O failure or crash
// at any earlier point leaves only prepared markers, which replay ignores,
// so a prefix of shards can never be admitted. Appending may trigger
// background compaction of any shard whose delta crosses the configured
// threshold.
func (t *Table) Append(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	start := time.Now()
	n := len(t.shards)
	groups := make([][]Row, n)
	for _, row := range rows {
		if len(row.Strs) != t.schema.NumCols() || len(row.Ints) != t.schema.NumCols() {
			return ErrBadRow{Reason: fmt.Sprintf("wrong width for schema (%d columns)", t.schema.NumCols())}
		}
		user, _, action := row.pk(t.schema)
		if user == "" || action == "" {
			return ErrBadRow{Reason: "user and action must be non-empty"}
		}
		if strings.ContainsRune(user, 0) || strings.ContainsRune(action, 0) {
			// NUL is pkKey's field separator; admitting it would let two
			// distinct primary keys collide on one key.
			return ErrBadRow{Reason: "user and action must not contain NUL bytes"}
		}
		idx := storage.ShardOf(user, n)
		groups[idx] = append(groups[idx], row)
	}
	var involved []int
	for i, g := range groups {
		if len(g) > 0 {
			involved = append(involved, i)
		}
	}
	// Lock the involved shards in index order (every Append locks in the
	// same order, so concurrent multi-shard batches cannot deadlock) and
	// validate the whole batch before touching any state. Duplicate rows
	// within the batch share a user and therefore a shard, so the per-shard
	// batch check is complete.
	for _, i := range involved {
		t.shards[i].mu.Lock()
	}
	unlock := func() {
		for _, i := range involved {
			t.shards[i].mu.Unlock()
		}
	}
	for _, i := range involved {
		if t.shards[i].closed {
			unlock()
			return ErrClosed
		}
	}
	for _, i := range involved {
		if err := t.shards[i].validateBatchLocked(groups[i]); err != nil {
			unlock()
			return err
		}
	}
	// Durability before acknowledgement: every involved shard's journal is
	// written before any shard admits, so the in-memory state never holds a
	// partial batch. The fsyncs run under the shard locks, which serializes
	// appends against views: simple and correct, at the cost of queries on
	// the involved shards waiting out a batch's sync (unrelated shards
	// proceed). A single-shard batch's own marker commits it; a multi-shard
	// batch is prepared per shard and committed by one coordinator record,
	// so a failure at any point before that record leaves the batch durable
	// nowhere — no rollback needed, replay ignores uncommitted prepares.
	txn := t.txn != nil && len(involved) > 1
	var batchID uint64
	if txn {
		batchID = t.nextBatch.Add(1)
	}
	for _, i := range involved {
		s := t.shards[i]
		if s.journal == nil {
			continue
		}
		var err error
		if txn {
			err = s.journal.appendPrepared(t.schema, groups[i], batchID)
		} else {
			err = s.journal.append(t.schema, groups[i])
		}
		if err != nil {
			unlock()
			return err
		}
	}
	if txn {
		if err := t.txn.commit(batchID); err != nil {
			unlock()
			return err
		}
	}
	var triggers []*shard
	for _, i := range involved {
		if t.shards[i].admitLocked(groups[i]) {
			triggers = append(triggers, t.shards[i])
		}
	}
	unlock()
	for _, s := range triggers {
		//lint:allow goroutinepool fire-and-forget compaction, bounded to one in flight per shard by the compacting flag
		go s.backgroundCompact()
	}
	obs.AppendSeconds.ObserveSince(start)
	obs.AppendBatchRows.Observe(float64(len(rows)))
	obs.AppendRowsTotal.Add(int64(len(rows)))
	obs.AppendBatchesTotal.Inc()
	t.notifyChange()
	return nil
}

// CompactContext synchronously seals every shard's delta, compacting shards
// concurrently; shards with empty deltas are untouched, so a compaction's
// cost scales with where the fresh rows actually landed, not with the table
// size. The first shard error is returned. Cancelling ctx stops the fan-out
// between shards and returns ctx.Err(); shard compactions already started
// run to completion (a shard seal is an atomic commit, not interruptible
// mid-swap), so a cancelled compaction leaves every shard either fully
// sealed or untouched.
func (t *Table) CompactContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(t.shards) == 1 {
		return t.shards[0].compact()
	}
	errs := make([]error, len(t.shards))
	var wg sync.WaitGroup
	for i, s := range t.shards {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		//lint:allow goroutinepool fan-out bounded by the shard count and joined below; the query pool is not plumbed into compaction
		go func(i int, s *shard) {
			defer wg.Done()
			errs[i] = s.compact()
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ingest: shard %d: %w", i, err)
		}
	}
	return nil
}

// Compact is CompactContext without a cancellation path, for callers (CLI,
// benchmarks, shutdown snapshots) that have no request context.
func (t *Table) Compact() error {
	return t.CompactContext(context.Background())
}

// CompactShard synchronously seals one shard's delta.
func (t *Table) CompactShard(i int) error {
	if i < 0 || i >= len(t.shards) {
		return fmt.Errorf("ingest: shard %d out of range [0, %d)", i, len(t.shards))
	}
	return t.shards[i].compact()
}

func (t *Table) notifyChange() {
	if t.cfg.OnChange != nil {
		t.cfg.OnChange()
	}
}

// Close waits out any in-flight compaction — background or explicit — on
// every shard and releases the journals. Appends and compactions after
// Close fail with ErrClosed; queries against views already taken stay
// valid. After Close returns, the persisted table files and journals are
// quiescent, which the catalog's reload path depends on.
func (t *Table) Close() error {
	var firstErr error
	for _, s := range t.shards {
		if err := s.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if t.txn != nil {
		if err := t.txn.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ShardStats is a point-in-time snapshot of one shard's ingestion state.
type ShardStats struct {
	Shard        int    `json:"shard"`
	SealedRows   int    `json:"sealedRows"`
	SealedUsers  int    `json:"sealedUsers"`
	SealedChunks int    `json:"sealedChunks"`
	DeltaRows    int    `json:"deltaRows"`
	Generation   uint64 `json:"generation"`
	Appends      uint64 `json:"appends"`
	AppendedRows uint64 `json:"appendedRows"`
	Compactions  uint64 `json:"compactions"`
	// ChunksRebuilt / ChunksReused count the chunks this shard's compactions
	// re-encoded vs carried over untouched (cumulative); the LastCompact
	// pair is the most recent compaction's split. Reused chunks cost no
	// re-encoding and no segment writes — the chunk-granularity observable.
	ChunksRebuilt            uint64 `json:"chunksRebuilt"`
	ChunksReused             uint64 `json:"chunksReused"`
	LastCompactChunksRebuilt int    `json:"lastCompactChunksRebuilt"`
	LastCompactChunksReused  int    `json:"lastCompactChunksReused"`
	// LastCompactMillis is the wall time of the shard's most recent
	// compaction.
	LastCompactMillis int64 `json:"lastCompactMillis"`
	// LastCompactError is the most recent compaction failure, empty after a
	// success — the only trace a failing background compaction leaves.
	LastCompactError string `json:"lastCompactError,omitempty"`
	// LastJournalError is a degraded-durability warning: the compaction
	// succeeded but its journal rewrite failed, so appends to this shard
	// may be rejected until the table is reloaded.
	LastJournalError string `json:"lastJournalError,omitempty"`
	// ReplayedRows / ReplayDroppedRows describe the journal replay performed
	// by Open: rows restored into the shard's delta, and rows skipped
	// because the sealed tier already held them.
	ReplayedRows      uint64 `json:"replayedRows"`
	ReplayDroppedRows uint64 `json:"replayDroppedRows"`
	JournalBytes      int64  `json:"journalBytes"`
	Compacting        bool   `json:"compacting"`
}

// Stats is a point-in-time snapshot of the table's ingestion state: the
// across-shard aggregate plus the per-shard breakdown.
type Stats struct {
	SealedRows   int    `json:"sealedRows"`
	SealedUsers  int    `json:"sealedUsers"`
	SealedChunks int    `json:"sealedChunks"`
	DeltaRows    int    `json:"deltaRows"`
	Generation   uint64 `json:"generation"`
	Appends      uint64 `json:"appends"`
	AppendedRows uint64 `json:"appendedRows"`
	Compactions  uint64 `json:"compactions"`
	// ChunksRebuilt / ChunksReused aggregate the chunk-granular compaction
	// counters across shards.
	ChunksRebuilt uint64 `json:"chunksRebuilt"`
	ChunksReused  uint64 `json:"chunksReused"`
	// LastCompactMillis is the wall time of the most recent compaction on
	// any shard.
	LastCompactMillis int64 `json:"lastCompactMillis"`
	// LastCompactError is the most recent compaction failure on any shard.
	LastCompactError string `json:"lastCompactError,omitempty"`
	// LastJournalError is a degraded-durability warning from any shard.
	LastJournalError  string `json:"lastJournalError,omitempty"`
	ReplayedRows      uint64 `json:"replayedRows"`
	ReplayDroppedRows uint64 `json:"replayDroppedRows"`
	JournalBytes      int64  `json:"journalBytes"`
	Compacting        bool   `json:"compacting"`
	// Shards is the shard count; PerShard the per-shard breakdown (omitted
	// for single-shard tables, whose aggregate is the whole story).
	Shards   int          `json:"shards"`
	PerShard []ShardStats `json:"perShard,omitempty"`
}

// Stats snapshots the counters of every shard and aggregates them.
func (t *Table) Stats() Stats {
	agg := Stats{Shards: len(t.shards)}
	for _, s := range t.shards {
		st := s.stats()
		agg.SealedRows += st.SealedRows
		agg.SealedUsers += st.SealedUsers
		agg.SealedChunks += st.SealedChunks
		agg.DeltaRows += st.DeltaRows
		agg.Generation += st.Generation
		agg.Appends += st.Appends
		agg.AppendedRows += st.AppendedRows
		agg.Compactions += st.Compactions
		agg.ChunksRebuilt += st.ChunksRebuilt
		agg.ChunksReused += st.ChunksReused
		if st.LastCompactMillis > agg.LastCompactMillis {
			agg.LastCompactMillis = st.LastCompactMillis
		}
		if st.LastCompactError != "" {
			agg.LastCompactError = st.LastCompactError
		}
		if st.LastJournalError != "" {
			agg.LastJournalError = st.LastJournalError
		}
		agg.ReplayedRows += st.ReplayedRows
		agg.ReplayDroppedRows += st.ReplayDroppedRows
		agg.JournalBytes += st.JournalBytes
		agg.Compacting = agg.Compacting || st.Compacting
		if len(t.shards) > 1 {
			agg.PerShard = append(agg.PerShard, st)
		}
	}
	return agg
}
