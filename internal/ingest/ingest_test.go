package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/storage"
)

// buildSealed compresses a small synthetic workload.
func buildSealed(t *testing.T) *storage.Table {
	t.Helper()
	tbl := gen.Generate(gen.Config{Users: 40, Days: 12, MeanActions: 10, Seed: 21})
	st, err := storage.Build(tbl, storage.Options{ChunkSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// row builds a game-schema Row.
func row(t *testing.T, schema *activity.Schema, user string, ts int64, action, country, city, role string, session, gold int64) Row {
	t.Helper()
	r, err := RowFromValues(schema, user, ts, action, country, city, role, session, gold)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// runQuery executes a cohort query over the live table's current view.
func runQuery(t *testing.T, lt *Table, src string) string {
	t.Helper()
	stmt, err := parser.ParseCohort(src)
	if err != nil {
		t.Fatal(err)
	}
	view := lt.View()
	res, err := plan.Execute(stmt.Query, view.Sealed, plan.ExecOptions{
		Delta: view.Delta,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.String()
}

const testQuery = `SELECT country, COHORTSIZE, AGE, Sum(gold), UserCount()
	FROM D BIRTH FROM action = "launch" COHORT BY country`

func TestAppendFreshnessAndDuplicateRejection(t *testing.T) {
	sealed := buildSealed(t)
	lt, err := Open(sealed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	schema := lt.Schema()

	before := runQuery(t, lt, testQuery)
	fresh := []Row{
		row(t, schema, "fresh-user", 1369000000, "launch", "Narnia", "Cair", "dwarf", 10, 0),
		row(t, schema, "fresh-user", 1369090000, "shop", "Narnia", "Cair", "dwarf", 5, 77),
	}
	if err := lt.Append(fresh); err != nil {
		t.Fatal(err)
	}
	if lt.DeltaRows() != 2 {
		t.Fatalf("delta rows = %d, want 2", lt.DeltaRows())
	}
	after := runQuery(t, lt, testQuery)
	if before == after {
		t.Fatal("appended rows invisible to queries before compaction")
	}

	// The same primary key is rejected against the delta...
	err = lt.Append([]Row{row(t, schema, "fresh-user", 1369000000, "launch", "X", "Y", "elf", 1, 1)})
	var dup ErrDuplicate
	if !errors.As(err, &dup) {
		t.Fatalf("delta duplicate: err = %v, want ErrDuplicate", err)
	}
	// ...within one batch...
	twice := row(t, schema, "u2", 1369000001, "launch", "X", "Y", "elf", 1, 1)
	if err := lt.Append([]Row{twice, twice}); !errors.As(err, &dup) {
		t.Fatalf("batch duplicate: err = %v, want ErrDuplicate", err)
	}
	// ...and against the sealed tier.
	view := lt.View()
	sealedUser := view.Sealed.Schema().UserCol()
	d := view.Sealed.Dict(sealedUser)
	u0 := d.Value(0)
	idx := view.Sealed.BuildUserIndex()
	loc := idx[0]
	// Find one sealed tuple of user 0 to duplicate.
	mat := activity.NewTable(schema)
	view.Sealed.AppendUserRows(mat, loc)
	dupRow := Row{Strs: make([]string, schema.NumCols()), Ints: make([]int64, schema.NumCols())}
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			dupRow.Strs[c] = mat.Strings(c)[0]
		} else {
			dupRow.Ints[c] = mat.Ints(c)[0]
		}
	}
	if dupRow.Strs[sealedUser] != u0 {
		t.Fatalf("materialized row user %q, want %q", dupRow.Strs[sealedUser], u0)
	}
	if err := lt.Append([]Row{dupRow}); !errors.As(err, &dup) {
		t.Fatalf("sealed duplicate: err = %v, want ErrDuplicate", err)
	}
	// A failed batch admits nothing.
	if lt.DeltaRows() != 2 {
		t.Fatalf("delta rows after rejected batches = %d, want 2", lt.DeltaRows())
	}
}

func TestCompactionPreservesResultsExactly(t *testing.T) {
	sealed := buildSealed(t)
	persisted := 0
	lt, err := Open(sealed, Config{Persist: func(storage.LayoutDelta) error { persisted++; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	schema := lt.Schema()

	rows := []Row{
		row(t, schema, "late-user", 1368800000, "launch", "China", "Beijing", "wizard", 4, 0),
		row(t, schema, "late-user", 1368900000, "shop", "China", "Beijing", "wizard", 4, 33),
		row(t, schema, "late-user", 1369000000, "shop", "China", "Beijing", "wizard", 4, 12),
	}
	if err := lt.Append(rows); err != nil {
		t.Fatal(err)
	}
	before := runQuery(t, lt, testQuery)
	genBefore := lt.Gen()

	if err := lt.Compact(); err != nil {
		t.Fatal(err)
	}
	if persisted != 1 {
		t.Fatalf("persist callback ran %d times, want 1", persisted)
	}
	if lt.DeltaRows() != 0 {
		t.Fatalf("delta rows after compaction = %d, want 0", lt.DeltaRows())
	}
	if lt.Gen() <= genBefore {
		t.Fatalf("generation did not advance on compaction: %d -> %d", genBefore, lt.Gen())
	}
	st := lt.Stats()
	if st.Compactions != 1 || st.SealedRows != sealed.NumRows()+len(rows) {
		t.Fatalf("stats after compaction = %+v", st)
	}
	after := runQuery(t, lt, testQuery)
	if before != after {
		t.Fatalf("compaction changed query results:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// Compacting an empty delta is a no-op.
	if err := lt.Compact(); err != nil {
		t.Fatal(err)
	}
	if lt.Stats().Compactions != 1 {
		t.Fatal("empty compaction was counted")
	}
}

func TestJournalDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "game.journal")
	sealed := buildSealed(t)

	lt, err := Open(sealed, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	schema := lt.Schema()
	rows := []Row{
		row(t, schema, "durable-user", 1369000000, "launch", "Rohan", "Edoras", "rider", 2, 0),
		row(t, schema, "durable-user", 1369090000, "shop", "Rohan", "Edoras", "rider", 2, 5),
	}
	if err := lt.Append(rows); err != nil {
		t.Fatal(err)
	}
	want := runQuery(t, lt, testQuery)
	if err := lt.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh live table over the same sealed tier and journal.
	lt2, err := Open(sealed, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer lt2.Close()
	st := lt2.Stats()
	if st.ReplayedRows != 2 || st.DeltaRows != 2 || st.ReplayDroppedRows != 0 {
		t.Fatalf("replay stats = %+v, want 2 replayed rows", st)
	}
	if got := runQuery(t, lt2, testQuery); got != want {
		t.Fatalf("replayed table answers differently:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestJournalReplayDropsAlreadySealedRows(t *testing.T) {
	// Simulate a crash between the compacted-table swap and the journal
	// truncation: the journal still holds rows the sealed tier already
	// contains, and replay must drop them.
	dir := t.TempDir()
	journal := filepath.Join(dir, "game.journal")
	sealed := buildSealed(t)

	lt, err := Open(sealed, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	schema := lt.Schema()
	rows := []Row{
		row(t, schema, "crash-user", 1369000000, "launch", "Gondor", "Osgiliath", "ranger", 1, 0),
	}
	if err := lt.Append(rows); err != nil {
		t.Fatal(err)
	}
	// Compact in memory but keep the journal as-is (no truncation), like a
	// crash after the swap. The new sealed tier contains the journal row.
	var compacted *storage.Table
	lt2, err := Open(sealed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lt2.Append(rows); err != nil {
		t.Fatal(err)
	}
	lt2.cfg.Persist = func(d storage.LayoutDelta) error { compacted = d.Layout.Shard(0); return nil }
	if err := lt2.Compact(); err != nil {
		t.Fatal(err)
	}
	lt2.Close()
	lt.Close()

	lt3, err := Open(compacted, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer lt3.Close()
	st := lt3.Stats()
	if st.ReplayDroppedRows != 1 || st.DeltaRows != 0 {
		t.Fatalf("replay stats = %+v, want 1 dropped row and empty delta", st)
	}
}

func TestJournalToleratesTornTailBatchAtomically(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "game.journal")
	sealed := buildSealed(t)

	lt, err := Open(sealed, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	schema := lt.Schema()
	// Two acknowledged batches.
	if err := lt.Append([]Row{
		row(t, schema, "torn-user", 1369000000, "launch", "Shire", "Hobbiton", "hobbit", 1, 0),
	}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Append([]Row{
		row(t, schema, "torn-user", 1369090000, "shop", "Shire", "Hobbiton", "hobbit", 1, 3),
		row(t, schema, "torn-user", 1369180000, "shop", "Shire", "Hobbiton", "hobbit", 1, 4),
	}); err != nil {
		t.Fatal(err)
	}
	lt.Close()

	// Chop off the tail, as a crash mid-write would: the second batch loses
	// its commit record, so replay must drop the WHOLE second batch (batch
	// atomicity across restarts) while keeping the first intact.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	lt2, err := Open(sealed, Config{JournalPath: journal})
	if err != nil {
		t.Fatalf("torn journal failed the load: %v", err)
	}
	defer lt2.Close()
	if st := lt2.Stats(); st.ReplayedRows != 1 {
		t.Fatalf("replayed %d rows from torn journal, want 1 (the committed batch)", st.ReplayedRows)
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	sealed := buildSealed(t)
	lt, err := Open(sealed, Config{AutoCompactRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	schema := lt.Schema()
	for i := 0; i < 4; i++ {
		r := row(t, schema, fmt.Sprintf("auto-user-%d", i), 1369000000+int64(i), "launch", "China", "Beijing", "mage", 1, 0)
		if err := lt.Append([]Row{r}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := lt.Stats()
		if st.Compactions >= 1 && !st.Compacting {
			if st.DeltaRows >= st.SealedRows {
				t.Fatalf("compaction left stats %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentAppendQueryCompact exercises the full lifecycle under the
// race detector: appenders, queriers and a compactor all share one table.
func TestConcurrentAppendQueryCompact(t *testing.T) {
	sealed := buildSealed(t)
	lt, err := Open(sealed, Config{JournalPath: filepath.Join(t.TempDir(), "t.journal")})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	schema := lt.Schema()

	const appenders, rowsEach = 4, 25
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < rowsEach; i++ {
				r := row(t, schema, fmt.Sprintf("cc-user-%d-%d", a, i), 1369000000+int64(i), "launch", "China", "Beijing", "mage", 1, int64(i))
				if err := lt.Append([]Row{r}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(a)
	}
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // queriers run against whatever view exists
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				runQuery(t, lt, testQuery)
			}
		}
	}()
	go func() { // compactor races the appenders
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := lt.Compact(); err != nil {
				t.Errorf("compact: %v", err)
			}
		}
		close(stop)
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := lt.Compact(); err != nil {
		t.Fatal(err)
	}
	st := lt.Stats()
	want := sealed.NumRows() + appenders*rowsEach
	if st.SealedRows != want || st.DeltaRows != 0 {
		t.Fatalf("after final compaction: %+v, want %d sealed rows", st, want)
	}
}

// TestSnapshotMergeMatchesRebuild pins the lazily rebuilt snapshot: batches
// appended in shuffled user/time order must yield, at the next View, the
// same sorted snapshot an eager from-scratch rebuild would.
func TestSnapshotMergeMatchesRebuild(t *testing.T) {
	sealed := buildSealed(t)
	lt, err := Open(sealed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	schema := lt.Schema()
	// Interleaved batches: later batches contain earlier users and times.
	batches := [][]Row{
		{row(t, schema, "m-c", 1369000300, "launch", "China", "B", "mage", 1, 0)},
		{
			row(t, schema, "m-a", 1369000100, "launch", "China", "B", "mage", 1, 0),
			row(t, schema, "m-c", 1369000100, "shop", "China", "B", "mage", 1, 5),
		},
		{
			row(t, schema, "m-b", 1369000200, "launch", "China", "B", "mage", 1, 0),
			row(t, schema, "m-a", 1369000050, "shop", "China", "B", "mage", 1, 7),
		},
	}
	for _, b := range batches {
		if err := lt.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	got := lt.View().Delta
	if !got.Sorted() {
		t.Fatal("merged snapshot not marked sorted")
	}
	want := activity.NewTable(schema)
	for _, b := range batches {
		for _, r := range b {
			want.AppendRow(r.Strs, r.Ints)
		}
	}
	if err := want.SortByPK(); err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("snapshot has %d rows, want %d", got.Len(), want.Len())
	}
	for c := 0; c < schema.NumCols(); c++ {
		for r := 0; r < want.Len(); r++ {
			if schema.IsStringCol(c) {
				if got.Strings(c)[r] != want.Strings(c)[r] {
					t.Fatalf("row %d col %d: %q != %q", r, c, got.Strings(c)[r], want.Strings(c)[r])
				}
			} else if got.Ints(c)[r] != want.Ints(c)[r] {
				t.Fatalf("row %d col %d: %d != %d", r, c, got.Ints(c)[r], want.Ints(c)[r])
			}
		}
	}
}

func TestRowParsing(t *testing.T) {
	schema := activity.GameSchema()
	obj := map[string]any{
		"player": "p1", "time": "2013-05-19 10:00:00", "action": "launch",
		"country": "China", "city": "Beijing", "role": "mage",
		"session": float64(3), "gold": "12",
	}
	r, err := ParseRow(schema, obj)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strs[0] != "p1" || r.Ints[1] == 0 || r.Ints[7] != 12 {
		t.Fatalf("parsed row = %+v", r)
	}
	for name, bad := range map[string]map[string]any{
		"unknown column": {"player": "p", "nope": 1},
		"missing column": {"player": "p"},
		"bad type":       {"player": 3},
		"fractional int": {"player": "p1", "time": 1, "action": "a", "country": "c", "city": "x", "role": "r", "session": 1.5, "gold": 1},
	} {
		if _, err := ParseRow(schema, bad); err == nil {
			t.Errorf("%s: ParseRow accepted %v", name, bad)
		}
	}
	if _, err := RowFromValues(schema, "p"); err == nil {
		t.Error("RowFromValues accepted a short row")
	}
}
