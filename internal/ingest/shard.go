package ingest

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/obs"
	"repro/internal/storage"
)

// shard is one user-hash partition of a live table: its slice of the sealed
// compressed tier plus its own delta log, journal, generation counter and
// compaction lifecycle. Shards share nothing but the schema and the
// coordinator's config, so appends, views and compactions on different
// shards never contend — a lagging shard's compaction cannot block the
// others.
type shard struct {
	idx    int
	parent *Table

	mu      sync.Mutex
	sealed  *storage.Table
	log     []Row               // un-compacted rows in arrival order
	logKeys map[string]struct{} // primary keys of log, for duplicate checks
	// snap is the sorted, user-clustered snapshot of log that queries scan
	// (nil when empty). It is rebuilt lazily — Append only marks it dirty —
	// so a burst of appends pays one sort on the next View instead of a
	// full copy per batch, and the append critical section stays short.
	snap      *activity.Table
	snapDirty bool
	// snapActions is the distinct-action set of snap, rebuilt with it — the
	// O(1) birth-action membership input of cache-fingerprint relevance.
	snapActions map[string]struct{}
	// union is the cached row-scan input of the union query path (delta
	// rows + overlap users' sealed blocks); rebuilt with snap so every
	// query of a generation shares one materialization instead of decoding
	// the overlap users' sealed blocks per query.
	union   *cohort.UnionDelta
	journal *journal // nil when durability is disabled
	gen     uint64
	closed  bool

	compacting bool
	compactMu  sync.Mutex // serializes this shard's compaction bodies
	wg         sync.WaitGroup

	appends        uint64
	appendedRows   uint64
	compactions    uint64
	replayedRows   uint64
	replayDropped  uint64
	lastCompactMS  int64
	lastCompactErr string
	lastJournalErr string
	// Chunk-granularity counters: how many chunks the shard's compactions
	// re-encoded vs carried over untouched (cumulative, plus the most recent
	// compaction's split) — the observable that write cost tracks touched
	// chunks, not the shard.
	chunksRebuilt     uint64
	chunksReused      uint64
	lastChunksRebuilt int
	lastChunksReused  int
}

// schema returns the shared table schema.
func (s *shard) schema() *activity.Schema { return s.parent.schema }

// view snapshots the shard for query execution, rebuilding the delta
// snapshot if appends dirtied it since the last view.
func (s *shard) view() View {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshSnapLocked()
	if s.snap != nil && s.snap.Len() > 0 {
		if s.union == nil {
			// Build once per change; on failure (a lazy segment load error —
			// the append-time PK checks rule out tier conflicts) leave it nil
			// and let the executor surface the error per query.
			s.union, _ = cohort.BuildUnionDelta(s.sealed, s.snap)
		}
	}
	return View{Sealed: s.sealed, Delta: s.snap, Union: s.union, DeltaActions: s.snapActions, Gen: s.gen}
}

// refreshSnapLocked rebuilds the sorted delta snapshot from the log when
// dirty; s.mu must be held. Readers hold previous snapshot pointers, which
// stay valid and immutable. Every log row passed the primary-key checks on
// admission, so a sort failure here means corrupted state — panic rather
// than serve a wrong snapshot.
func (s *shard) refreshSnapLocked() {
	if !s.snapDirty {
		return
	}
	s.snapDirty = false
	s.union = nil // derived from snap (and the sealed tier): rebuild with it
	if len(s.log) == 0 {
		s.snap = nil
		s.snapActions = nil
		return
	}
	snap := activity.NewTable(s.schema())
	for _, row := range s.log {
		snap.AppendRow(row.Strs, row.Ints)
	}
	if err := snap.SortByPK(); err != nil {
		panic("ingest: delta snapshot violates primary key: " + err.Error())
	}
	s.snap = snap
	actions := make(map[string]struct{})
	for _, a := range snap.Strings(s.schema().ActionCol()) {
		actions[a] = struct{}{}
	}
	s.snapActions = actions
}

// validateBatchLocked checks a routed sub-batch against the shard: width and
// PK-shape validation already happened at routing, so this is the duplicate
// check against the batch itself, the un-compacted log, and the sealed tier.
// s.mu must be held.
func (s *shard) validateBatchLocked(rows []Row) error {
	schema := s.schema()
	batchKeys := make(map[string]struct{}, len(rows))
	for _, row := range rows {
		user, ts, action := row.pk(schema)
		key := pkKey(user, ts, action)
		if _, dup := batchKeys[key]; dup {
			return ErrDuplicate{User: user, Time: ts, Action: action}
		}
		if _, dup := s.logKeys[key]; dup {
			return ErrDuplicate{User: user, Time: ts, Action: action}
		}
		has, err := s.sealedHasPKLocked(user, ts, action)
		if err != nil {
			return fmt.Errorf("ingest: checking sealed tier for duplicates: %w", err)
		}
		if has {
			return ErrDuplicate{User: user, Time: ts, Action: action}
		}
		batchKeys[key] = struct{}{}
	}
	return nil
}

// admitLocked folds a validated (and, when durable, journaled) sub-batch
// into the delta log and reports whether a background compaction must be
// spawned. s.mu must be held.
func (s *shard) admitLocked(rows []Row) (trigger bool) {
	schema := s.schema()
	s.log = append(s.log, rows...)
	for _, row := range rows {
		user, ts, action := row.pk(schema)
		s.logKeys[pkKey(user, ts, action)] = struct{}{}
	}
	// The sorted snapshot is rebuilt lazily on the next View, so the only
	// work left in this critical section is bookkeeping.
	s.snapDirty = true
	s.gen++
	s.appends++
	s.appendedRows += uint64(len(rows))
	cfg := &s.parent.cfg
	trigger = cfg.AutoCompactRows > 0 && len(s.log) >= cfg.AutoCompactRows && !s.compacting
	if trigger {
		s.compacting = true
		s.wg.Add(1)
	}
	return trigger
}

// sealedHasPKLocked reports whether the shard's sealed tier holds a tuple
// with this primary key; s.mu must be held. The error is non-nil only when a
// lazy segment load fails.
func (s *shard) sealedHasPKLocked(user string, ts int64, action string) (bool, error) {
	schema := s.schema()
	agid, ok := s.sealed.LookupString(schema.ActionCol(), action)
	if !ok {
		return false, nil
	}
	_, loc, ok, err := s.sealed.FindUser(user)
	if err != nil || !ok {
		return false, err
	}
	return s.sealed.HasTuple(loc, ts, agid)
}

// backgroundCompact runs threshold-triggered compactions, looping while the
// shard's delta stays over the threshold (appends may race the compaction).
func (s *shard) backgroundCompact() {
	defer s.wg.Done()
	for {
		s.compactMu.Lock()
		err := s.compactOnce()
		s.compactMu.Unlock()
		s.recordCompactErr(err)
		s.mu.Lock()
		again := err == nil && !s.closed &&
			s.parent.cfg.AutoCompactRows > 0 && len(s.log) >= s.parent.cfg.AutoCompactRows
		if !again {
			s.compacting = false
		}
		s.mu.Unlock()
		if !again {
			return
		}
	}
}

// recordCompactErr keeps the most recent compaction failure visible in
// Stats — background compactions have no caller to return an error to, and
// a persistently failing compaction (e.g. a full disk during Persist) must
// not be silent while the delta and journal grow.
func (s *shard) recordCompactErr(err error) {
	s.mu.Lock()
	if err != nil {
		s.lastCompactErr = err.Error()
	} else {
		s.lastCompactErr = ""
	}
	s.mu.Unlock()
}

// compact synchronously seals this shard's delta. It is a no-op on an empty
// delta, which is what makes table-level compaction selective: shards
// without fresh rows are never rebuilt.
func (s *shard) compact() error {
	s.compactMu.Lock()
	err := s.compactOnce()
	s.compactMu.Unlock()
	s.recordCompactErr(err)
	return err
}

// compactOnce merges the delta rows present at entry into a fresh sealed
// shard and swaps it in; rows appended while the merge runs stay in the
// delta for the next round. s.compactMu must be held.
func (s *shard) compactOnce() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	n := len(s.log)
	if n == 0 {
		s.mu.Unlock()
		return nil
	}
	sealedOld := s.sealed
	rows := s.log[:n:n]
	chunkSize := s.parent.cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = sealedOld.ChunkSize()
	}
	s.mu.Unlock()

	// The heavy merge runs without any lock: appends and queries proceed
	// against the old sealed tier and the growing delta, on this shard and
	// every other. The merge is chunk-granular: each delta user block routes
	// to the chunk owning its user range, and only those chunks are decoded,
	// merged in (Au, At, Ae) order and re-encoded (splitting at the block
	// budget); untouched chunks are carried over, payloads shared. Appends
	// are PK-checked against both tiers, so a merge conflict indicates state
	// corruption; surface it rather than sealing a bad shard.
	start := time.Now()
	schema := s.schema()
	batch := activity.NewTable(schema)
	for _, row := range rows {
		batch.AppendRow(row.Strs, row.Ints)
	}
	if err := batch.SortByPK(); err != nil {
		return fmt.Errorf("ingest: compaction merge: %w", err)
	}
	sealedNew, rebuilt, reused, err := storage.MergeDelta(sealedOld, batch, storage.Options{ChunkSize: chunkSize})
	if err != nil {
		return fmt.Errorf("ingest: compaction merge: %w", err)
	}
	// Persist + swap run under the coordinator's persist lock: concurrent
	// compactions of other shards serialize here, so every persisted layout
	// contains the latest sealed tier of every shard (a persist composed
	// from stale neighbors could otherwise roll a just-persisted shard
	// back). The heavy merge above stays outside the lock.
	t := s.parent
	t.persistMu.Lock()
	defer t.persistMu.Unlock()
	// Re-check closed before persisting: a Close (or catalog reload) that
	// happened during the merge means a successor incarnation may already
	// own the table files — overwriting them with this stale layout would
	// erase the successor's persisted rows.
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if t.cfg.Persist != nil {
		delta := storage.LayoutDelta{
			Layout:        t.sealedLayoutWith(s.idx, sealedNew),
			Shard:         s.idx,
			ChunksRebuilt: rebuilt,
			ChunksReused:  reused,
		}
		if err := t.cfg.Persist(delta); err != nil {
			return fmt.Errorf("ingest: persisting compacted table: %w", err)
		}
	}

	s.mu.Lock()
	if s.closed {
		// The table was closed (or replaced by a catalog reload) while the
		// merge ran without the lock. Swapping state or rewriting the
		// journal now would clobber the successor incarnation's journal
		// file, losing its acknowledged appends — abort instead.
		s.mu.Unlock()
		return ErrClosed
	}
	s.sealed = sealedNew
	remaining := append([]Row(nil), s.log[n:]...)
	s.log = remaining
	s.logKeys = make(map[string]struct{}, len(remaining))
	for _, row := range remaining {
		user, ts, action := row.pk(schema)
		s.logKeys[pkKey(user, ts, action)] = struct{}{}
	}
	s.snapDirty = true
	if s.journal != nil && t.cfg.Persist != nil {
		// Truncate the journal only when the new sealed tier was durably
		// persisted. Without a Persist hook (library engines) the merged
		// shard exists in memory only — the journal must keep every row, or
		// a crash after compaction would lose acknowledged appends; replay
		// drops whatever a later Save made redundant. A rewrite failure
		// does not fail the compaction — the swap already happened and is
		// correct; leftover sealed rows in the journal are dropped as
		// duplicates on replay. It is recorded in Stats instead, because
		// after a failed reopen the journal is disabled and durability is
		// degraded until a reload.
		if err := s.journal.rewrite(schema, remaining); err != nil {
			s.lastJournalErr = err.Error()
		} else {
			s.lastJournalErr = ""
		}
	}
	s.gen++
	s.compactions++
	s.chunksRebuilt += uint64(rebuilt)
	s.chunksReused += uint64(reused)
	s.lastChunksRebuilt, s.lastChunksReused = rebuilt, reused
	s.lastCompactMS = time.Since(start).Milliseconds()
	s.mu.Unlock()
	obs.CompactSeconds.ObserveSince(start)
	obs.CompactionsTotal.Inc()
	obs.ChunksRebuiltTotal.Add(int64(rebuilt))
	obs.ChunksReusedTotal.Add(int64(reused))
	t.notifyChange()
	return nil
}

// close marks the shard closed, waits out background compactions and
// releases the journal.
func (s *shard) close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	// Taking compactMu drains an in-flight explicit compact (not covered by
	// wg): it sees closed at its next check and aborts without persisting
	// or rewriting; only then is the journal released.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.journal != nil {
		return s.journal.close()
	}
	return nil
}

// stats snapshots the shard's counters.
func (s *shard) stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ShardStats{
		Shard:                    s.idx,
		SealedRows:               s.sealed.NumRows(),
		SealedUsers:              s.sealed.NumUsers(),
		SealedChunks:             s.sealed.NumChunks(),
		DeltaRows:                len(s.log),
		Generation:               s.gen,
		Appends:                  s.appends,
		AppendedRows:             s.appendedRows,
		Compactions:              s.compactions,
		ChunksRebuilt:            s.chunksRebuilt,
		ChunksReused:             s.chunksReused,
		LastCompactChunksRebuilt: s.lastChunksRebuilt,
		LastCompactChunksReused:  s.lastChunksReused,
		LastCompactMillis:        s.lastCompactMS,
		LastCompactError:         s.lastCompactErr,
		LastJournalError:         s.lastJournalErr,
		ReplayedRows:             s.replayedRows,
		ReplayDroppedRows:        s.replayDropped,
		Compacting:               s.compacting,
	}
	if s.journal != nil {
		st.JournalBytes = s.journal.size()
	}
	return st
}
