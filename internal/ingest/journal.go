package ingest

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/activity"
)

// The journal is the delta store's durability layer: a plain append-only CSV
// file holding every appended activity row that compaction has not yet sealed
// into the compressed table. One CSV record per row, fields in schema column
// order, no header; string columns are written verbatim and integer/time
// columns as base-10 (times are Unix seconds). Each batch is followed by a
// two-field commit record `#,<rows>` — rows only count as durable once their
// batch's commit record is on disk, so a crash mid-batch cannot resurrect a
// partial (never-acknowledged) batch on replay, preserving batch atomicity
// across restarts. The marker cannot collide with a row record: activity
// schemas always have at least four columns. On table load the journal is
// replayed into the delta, so a crash or restart loses nothing; rows already
// present in the sealed tier (a crash between the compacted-table rename and
// the journal truncation) are dropped during replay, which makes replay
// idempotent. After a compaction that persisted the new sealed tier, the
// journal is atomically rewritten to hold only the rows that arrived during
// the compaction.

type journal struct {
	path string
	f    *os.File
	w    *csv.Writer
}

// openJournal opens (creating if needed) the journal file for appending.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: opening journal: %w", err)
	}
	return &journal{path: path, f: f, w: csv.NewWriter(f)}, nil
}

// openJournalWith opens the journal at path with its contents replaced by
// exactly rows (one committed batch; an existing file is atomically
// rewritten). Open uses it to compact each shard's journal down to the rows
// its restored delta actually holds — dropping rows the sealed tier made
// redundant and absorbing rows migrated from another shard layout.
func openJournalWith(path string, schema *activity.Schema, rows []Row) (*journal, error) {
	j, err := openJournal(path)
	if err != nil {
		return nil, err
	}
	if err := j.rewrite(schema, rows); err != nil {
		_ = j.close()
		return nil, err
	}
	return j, nil
}

// commitField marks a batch commit record: `#,<rows>`.
const commitField = "#"

// readJournal parses the journal at path into the committed rows. A missing
// file is an empty journal. Rows of a batch count only once the batch's
// commit record is intact; a torn tail — a damaged record, or trailing rows
// whose commit record never made it to disk — ends the replay at the last
// committed batch instead of failing the load, so a crash mid-append cannot
// resurrect part of a batch that was never acknowledged.
func readJournal(path string, schema *activity.Schema) ([]Row, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: reading journal: %w", err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1 // rows and commit markers have different widths
	cr.ReuseRecord = true
	var rows, pending []Row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, nil // torn tail: keep the committed batches
		}
		if len(rec) == 2 && rec[0] == commitField {
			if n, err := strconv.Atoi(rec[1]); err != nil || n != len(pending) {
				return rows, nil // marker does not match its batch: torn
			}
			rows = append(rows, pending...)
			pending = pending[:0]
			continue
		}
		if len(rec) != schema.NumCols() {
			return rows, nil
		}
		row, err := rowFromRecord(schema, rec)
		if err != nil {
			return rows, nil
		}
		pending = append(pending, row)
	}
	return rows, nil // any trailing uncommitted rows in pending are dropped
}

// rowFromRecord decodes one journal CSV record.
func rowFromRecord(schema *activity.Schema, rec []string) (Row, error) {
	row := newRow(schema)
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			row.Strs[c] = rec[c]
			continue
		}
		v, err := strconv.ParseInt(rec[c], 10, 64)
		if err != nil {
			return Row{}, fmt.Errorf("ingest: journal column %q: %w", schema.Col(c).Name, err)
		}
		row.Ints[c] = v
	}
	return row, nil
}

// record encodes one row as a journal CSV record.
func record(schema *activity.Schema, row Row) []string {
	rec := make([]string, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			rec[c] = row.Strs[c]
		} else {
			rec[c] = strconv.FormatInt(row.Ints[c], 10)
		}
	}
	return rec
}

// append durably writes rows: the batch is flushed and fsynced before the
// append is acknowledged.
func (j *journal) append(schema *activity.Schema, rows []Row) error {
	if j.f == nil {
		return fmt.Errorf("ingest: journal unavailable after a failed rewrite; reload the table to restore durability")
	}
	for _, row := range rows {
		if err := j.w.Write(record(schema, row)); err != nil {
			return fmt.Errorf("ingest: journal write: %w", err)
		}
	}
	if err := j.w.Write([]string{commitField, strconv.Itoa(len(rows))}); err != nil {
		return fmt.Errorf("ingest: journal write: %w", err)
	}
	j.w.Flush()
	if err := j.w.Error(); err != nil {
		return fmt.Errorf("ingest: journal flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ingest: journal sync: %w", err)
	}
	return nil
}

// rewrite atomically replaces the journal contents with rows (the tuples not
// covered by the just-sealed table): a temp file in the same directory is
// written, synced, and renamed over the journal.
func (j *journal) rewrite(schema *activity.Schema, rows []Row) error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := csv.NewWriter(tmp)
	for _, row := range rows {
		if err := w.Write(record(schema, row)); err != nil {
			tmp.Close()
			return fmt.Errorf("ingest: journal rewrite: %w", err)
		}
	}
	if len(rows) > 0 {
		// The surviving rows were all acknowledged: commit them as one batch.
		if err := w.Write([]string{commitField, strconv.Itoa(len(rows))}); err != nil {
			tmp.Close()
			return fmt.Errorf("ingest: journal rewrite: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	// Reopen so subsequent appends extend the new file, not the renamed-away
	// descriptor. If the reopen fails the old descriptor now points at an
	// unlinked inode — writes to it would be acknowledged as durable and
	// lost on restart — so the journal is disabled (appends fail) until the
	// table is reloaded.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	j.f.Close()
	if err != nil {
		j.f = nil
		j.w = nil
		return fmt.Errorf("ingest: reopening journal: %w", err)
	}
	j.f = f
	j.w = csv.NewWriter(f)
	return nil
}

// size returns the journal file size in bytes.
func (j *journal) size() int64 {
	if j.f == nil {
		return 0
	}
	fi, err := j.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}
