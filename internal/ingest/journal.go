package ingest

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/activity"
	"repro/internal/obs"
)

// The journal is the delta store's durability layer: a plain append-only CSV
// file holding every appended activity row that compaction has not yet sealed
// into the compressed table. One CSV record per row, fields in schema column
// order, no header; string columns are written verbatim and integer/time
// columns as base-10 (times are Unix seconds). Each batch is followed by a
// marker record — rows only count as durable once their batch's marker is on
// disk, so a crash mid-batch cannot resurrect a partial (never-acknowledged)
// batch on replay, preserving batch atomicity across restarts. Markers cannot
// collide with row records: activity schemas always have at least four
// columns. Two marker forms exist:
//
//   - `#,<rows>` commits the batch by itself — used for batches confined to
//     one shard journal, where the single marker is atomic;
//   - `#2,<rows>,<batchID>` *prepares* a batch that spans several shard
//     journals. Prepared batches count on replay only when the table's
//     coordinator log (`<base>.txn`) holds a matching `C,<batchID>` commit
//     record — 2PC-lite: every involved shard journal is prepared and synced
//     first, then the single coordinator record commits the batch everywhere
//     at once, so a journal I/O failure (or crash) mid-batch can no longer
//     admit a prefix of shards on replay.
//
// On table load the journal is replayed into the delta, so a crash or restart
// loses nothing; rows already present in the sealed tier (a crash between the
// compacted-table rename and the journal truncation) are dropped during
// replay, which makes replay idempotent. After a compaction that persisted
// the new sealed tier, the journal is atomically rewritten to hold only the
// rows that arrived during the compaction.

type journal struct {
	path string
	f    *os.File
	w    *csv.Writer
}

// openJournal opens (creating if needed) the journal file for appending.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: opening journal: %w", err)
	}
	return &journal{path: path, f: f, w: csv.NewWriter(f)}, nil
}

// openJournalWith opens the journal at path with its contents replaced by
// exactly rows (one committed batch; an existing file is atomically
// rewritten). Open uses it to compact each shard's journal down to the rows
// its restored delta actually holds — dropping rows the sealed tier made
// redundant and absorbing rows migrated from another shard layout.
func openJournalWith(path string, schema *activity.Schema, rows []Row) (*journal, error) {
	j, err := openJournal(path)
	if err != nil {
		return nil, err
	}
	if err := j.rewrite(schema, rows); err != nil {
		_ = j.close()
		return nil, err
	}
	return j, nil
}

// commitField marks a self-committing batch record: `#,<rows>`.
const commitField = "#"

// preparedField marks a prepared multi-shard batch record: `#2,<rows>,<id>`.
const preparedField = "#2"

// readJournal parses the journal at path into the committed rows. A missing
// file is an empty journal. Rows of a batch count only once the batch's
// marker is intact — and, for prepared batches, only when committed holds
// the batch id. A torn tail — a damaged record, or trailing rows whose
// marker never made it to disk — ends the replay at the last committed batch
// instead of failing the load, so a crash mid-append cannot resurrect part
// of a batch that was never acknowledged. A prepared-but-uncommitted batch
// mid-file (its coordinator record was never written) is skipped and replay
// continues: later batches were acknowledged independently.
func readJournal(path string, schema *activity.Schema, committed map[uint64]bool) ([]Row, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: reading journal: %w", err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1 // rows and batch markers have different widths
	cr.ReuseRecord = true
	var rows, pending []Row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, nil // torn tail: keep the committed batches
		}
		if len(rec) == 2 && rec[0] == commitField {
			if n, err := strconv.Atoi(rec[1]); err != nil || n != len(pending) {
				return rows, nil // marker does not match its batch: torn
			}
			rows = append(rows, pending...)
			pending = pending[:0]
			continue
		}
		if len(rec) == 3 && rec[0] == preparedField {
			n, err := strconv.Atoi(rec[1])
			if err != nil || n != len(pending) {
				return rows, nil // marker does not match its batch: torn
			}
			id, err := strconv.ParseUint(rec[2], 10, 64)
			if err != nil {
				return rows, nil
			}
			if committed[id] {
				rows = append(rows, pending...)
			}
			// Uncommitted: the coordinator never acknowledged this batch on
			// ANY shard — drop it and keep reading.
			pending = pending[:0]
			continue
		}
		if len(rec) != schema.NumCols() {
			return rows, nil
		}
		row, err := rowFromRecord(schema, rec)
		if err != nil {
			return rows, nil
		}
		pending = append(pending, row)
	}
	return rows, nil // any trailing unmarked rows in pending are dropped
}

// rowFromRecord decodes one journal CSV record.
func rowFromRecord(schema *activity.Schema, rec []string) (Row, error) {
	row := newRow(schema)
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			row.Strs[c] = rec[c]
			continue
		}
		v, err := strconv.ParseInt(rec[c], 10, 64)
		if err != nil {
			return Row{}, fmt.Errorf("ingest: journal column %q: %w", schema.Col(c).Name, err)
		}
		row.Ints[c] = v
	}
	return row, nil
}

// record encodes one row as a journal CSV record.
func record(schema *activity.Schema, row Row) []string {
	rec := make([]string, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			rec[c] = row.Strs[c]
		} else {
			rec[c] = strconv.FormatInt(row.Ints[c], 10)
		}
	}
	return rec
}

// append durably writes a self-committing batch: rows plus the `#` marker,
// flushed and fsynced before the append is acknowledged.
func (j *journal) append(schema *activity.Schema, rows []Row) error {
	return j.writeBatch(schema, rows, []string{commitField, strconv.Itoa(len(rows))})
}

// appendPrepared durably writes a prepared multi-shard batch: rows plus the
// `#2` marker naming the coordinator batch id. The rows count on replay only
// once the coordinator's commit record for id is also on disk.
func (j *journal) appendPrepared(schema *activity.Schema, rows []Row, id uint64) error {
	return j.writeBatch(schema, rows, []string{preparedField, strconv.Itoa(len(rows)), strconv.FormatUint(id, 10)})
}

func (j *journal) writeBatch(schema *activity.Schema, rows []Row, marker []string) error {
	if j.f == nil {
		return fmt.Errorf("ingest: journal unavailable after a failed rewrite; reload the table to restore durability")
	}
	for _, row := range rows {
		if err := j.w.Write(record(schema, row)); err != nil {
			return fmt.Errorf("ingest: journal write: %w", err)
		}
	}
	if err := j.w.Write(marker); err != nil {
		return fmt.Errorf("ingest: journal write: %w", err)
	}
	j.w.Flush()
	if err := j.w.Error(); err != nil {
		return fmt.Errorf("ingest: journal flush: %w", err)
	}
	syncStart := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ingest: journal sync: %w", err)
	}
	obs.JournalFsyncSeconds.ObserveSince(syncStart)
	return nil
}

// rewrite atomically replaces the journal contents with rows (the tuples not
// covered by the just-sealed table): a temp file in the same directory is
// written, synced, and renamed over the journal.
func (j *journal) rewrite(schema *activity.Schema, rows []Row) error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := csv.NewWriter(tmp)
	for _, row := range rows {
		if err := w.Write(record(schema, row)); err != nil {
			tmp.Close()
			return fmt.Errorf("ingest: journal rewrite: %w", err)
		}
	}
	if len(rows) > 0 {
		// The surviving rows were all acknowledged: commit them as one batch.
		if err := w.Write([]string{commitField, strconv.Itoa(len(rows))}); err != nil {
			tmp.Close()
			return fmt.Errorf("ingest: journal rewrite: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("ingest: journal rewrite: %w", err)
	}
	if err := syncDir(dir); err != nil {
		// The rename itself is not durable: after a crash the old journal —
		// a superset that still holds the just-sealed rows — could reappear
		// and replay them over the sealed table. Disable the journal until
		// the table is reloaded, like a failed reopen below.
		j.f.Close()
		j.f = nil
		j.w = nil
		return fmt.Errorf("ingest: journal rewrite: syncing %s: %w", dir, err)
	}
	// Reopen so subsequent appends extend the new file, not the renamed-away
	// descriptor. If the reopen fails the old descriptor now points at an
	// unlinked inode — writes to it would be acknowledged as durable and
	// lost on restart — so the journal is disabled (appends fail) until the
	// table is reloaded.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	j.f.Close()
	if err != nil {
		j.f = nil
		j.w = nil
		return fmt.Errorf("ingest: reopening journal: %w", err)
	}
	j.f = f
	j.w = csv.NewWriter(f)
	return nil
}

// syncDir fsyncs a directory so renames and new entries inside it survive a
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// size returns the journal file size in bytes.
func (j *journal) size() int64 {
	if j.f == nil {
		return 0
	}
	fi, err := j.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}

// TxnExt is the suffix of the coordinator commit log kept next to the shard
// journals of a multi-shard table: one `C,<batchID>` record per committed
// multi-shard batch.
const TxnExt = ".txn"

// txnCommitField marks a coordinator commit record.
const txnCommitField = "C"

// txnLog is the 2PC-lite coordinator: an append-only commit-record file. It
// has its own mutex because concurrent appends to disjoint shard sets
// serialize only here.
type txnLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *csv.Writer
}

// openTxnLog opens (creating if needed) the coordinator log for appending.
func openTxnLog(path string) (*txnLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: opening coordinator log: %w", err)
	}
	return &txnLog{path: path, f: f, w: csv.NewWriter(f)}, nil
}

// readTxnCommits parses the committed batch ids at path. A missing file is an
// empty set; a torn tail ends the scan — a torn commit record belongs to a
// batch that was never acknowledged, so dropping it is exactly right.
func readTxnCommits(path string) (map[uint64]bool, error) {
	out := make(map[uint64]bool)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: reading coordinator log: %w", err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	for {
		rec, err := cr.Read()
		if err != nil {
			return out, nil // EOF or torn tail
		}
		if len(rec) != 2 || rec[0] != txnCommitField {
			return out, nil
		}
		id, err := strconv.ParseUint(rec[1], 10, 64)
		if err != nil {
			return out, nil
		}
		out[id] = true
	}
}

// commit durably records batch id as committed: the record is flushed and
// fsynced before the batch may be admitted anywhere.
func (l *txnLog) commit(id uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Write([]string{txnCommitField, strconv.FormatUint(id, 10)}); err != nil {
		return fmt.Errorf("ingest: coordinator write: %w", err)
	}
	l.w.Flush()
	if err := l.w.Error(); err != nil {
		return fmt.Errorf("ingest: coordinator flush: %w", err)
	}
	syncStart := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ingest: coordinator sync: %w", err)
	}
	obs.JournalFsyncSeconds.ObserveSince(syncStart)
	return nil
}

// reset truncates the log. Open calls it after rewriting every shard journal
// into plain committed batches — the old commit records are baked in, and a
// fresh id sequence must not collide with leftover prepared markers.
func (l *txnLog) reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("ingest: resetting coordinator log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("ingest: resetting coordinator log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ingest: resetting coordinator log: %w", err)
	}
	return nil
}

func (l *txnLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
