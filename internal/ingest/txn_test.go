package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// Crash injection for the 2PC-lite multi-shard append protocol: shard
// journals are prepared first, one coordinator commit record admits the
// batch everywhere. A crash before the commit record is durable must admit
// the batch on NO shard after replay — never a prefix.

// usersInDistinctShards returns one user name per shard of an n-shard table.
func usersInDistinctShards(n int) []string {
	out := make([]string, n)
	found := 0
	for i := 0; found < n; i++ {
		u := fmt.Sprintf("txn-user-%d", i)
		s := storage.ShardOf(u, n)
		if out[s] == "" {
			out[s] = u
			found++
		}
	}
	return out
}

func openWithJournal(t *testing.T, sealed *storage.Sharded, journal string) *Table {
	t.Helper()
	lt, err := OpenSharded(sealed, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

func TestMultiShardBatchSurvivesRestartAtomically(t *testing.T) {
	sealed := buildShardedSealed(t, 3)
	dir := t.TempDir()
	journal := filepath.Join(dir, "game.journal")
	lt := openWithJournal(t, sealed, journal)
	schema := lt.Schema()
	users := usersInDistinctShards(3)
	batch := []Row{
		row(t, schema, users[0], 2_000_000_000, "launch", "China", "Beijing", "mage", 1, 0),
		row(t, schema, users[1], 2_000_000_001, "launch", "China", "Beijing", "mage", 1, 0),
		row(t, schema, users[2], 2_000_000_002, "launch", "China", "Beijing", "mage", 1, 0),
	}
	if err := lt.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := lt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journal + TxnExt); err != nil {
		t.Fatalf("multi-shard append left no coordinator log: %v", err)
	}

	// Clean restart: the committed batch replays on every shard.
	lt2 := openWithJournal(t, sealed, journal)
	if got := lt2.DeltaRows(); got != len(batch) {
		t.Fatalf("replayed %d delta rows, want %d", got, len(batch))
	}
	if err := lt2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashBeforeCommitRecordAdmitsNothing(t *testing.T) {
	sealed := buildShardedSealed(t, 3)
	dir := t.TempDir()
	journal := filepath.Join(dir, "game.journal")
	lt := openWithJournal(t, sealed, journal)
	schema := lt.Schema()
	users := usersInDistinctShards(3)
	if err := lt.Append([]Row{
		row(t, schema, users[0], 2_000_000_000, "launch", "China", "Beijing", "mage", 1, 0),
		row(t, schema, users[1], 2_000_000_001, "launch", "China", "Beijing", "mage", 1, 0),
	}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: every shard journal holds the prepared
	// batch, but the coordinator's commit record never became durable.
	if err := os.Remove(journal + TxnExt); err != nil {
		t.Fatal(err)
	}
	lt2 := openWithJournal(t, sealed, journal)
	defer lt2.Close()
	if got := lt2.DeltaRows(); got != 0 {
		t.Fatalf("uncommitted multi-shard batch admitted %d rows after replay, want 0 (prefix admission)", got)
	}
	// The table stays fully usable: a fresh batch with the same keys
	// succeeds (nothing of the torn batch survived anywhere).
	if err := lt2.Append([]Row{
		row(t, schema, users[0], 2_000_000_000, "launch", "China", "Beijing", "mage", 1, 0),
		row(t, schema, users[1], 2_000_000_001, "launch", "China", "Beijing", "mage", 1, 0),
	}); err != nil {
		t.Fatal(err)
	}
	if got := lt2.DeltaRows(); got != 2 {
		t.Fatalf("retried batch admitted %d rows, want 2", got)
	}
}

func TestCrashMidPreparePhaseAdmitsNothing(t *testing.T) {
	sealed := buildShardedSealed(t, 3)
	dir := t.TempDir()
	journal := filepath.Join(dir, "game.journal")
	// Craft the torn state directly: a prepared batch reached only shard
	// users[0]'s journal (the process died before the other shards and the
	// coordinator were written).
	lt := openWithJournal(t, sealed, journal)
	schema := lt.Schema()
	users := usersInDistinctShards(3)
	if err := lt.Close(); err != nil {
		t.Fatal(err)
	}
	si := storage.ShardOf(users[0], 3)
	j, err := openJournal(fmt.Sprintf("%s.s%d", journal, si))
	if err != nil {
		t.Fatal(err)
	}
	torn := row(t, schema, users[0], 2_000_000_000, "launch", "China", "Beijing", "mage", 1, 0)
	if err := j.appendPrepared(schema, []Row{torn}, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	lt2 := openWithJournal(t, sealed, journal)
	defer lt2.Close()
	if got := lt2.DeltaRows(); got != 0 {
		t.Fatalf("half-prepared batch admitted %d rows after replay, want 0", got)
	}
}

// TestUncommittedBatchMidJournalIsSkippedNotTruncating pins that an
// uncommitted prepared batch in the middle of a journal does not cut off the
// committed batches behind it.
func TestUncommittedBatchMidJournalIsSkippedNotTruncating(t *testing.T) {
	sealed := buildShardedSealed(t, 3)
	dir := t.TempDir()
	journal := filepath.Join(dir, "game.journal")
	lt := openWithJournal(t, sealed, journal)
	schema := lt.Schema()
	users := usersInDistinctShards(3)
	// Batch 1: multi-shard, committed. Batch 2: single-shard, committed —
	// lands after batch 1 in users[0]'s journal.
	if err := lt.Append([]Row{
		row(t, schema, users[0], 2_000_000_000, "launch", "China", "Beijing", "mage", 1, 0),
		row(t, schema, users[1], 2_000_000_001, "launch", "China", "Beijing", "mage", 1, 0),
	}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Append([]Row{
		row(t, schema, users[0], 2_000_000_010, "shop", "China", "Beijing", "mage", 1, 5),
	}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash the coordinator: batch 1 loses its commit record, batch 2 is
	// self-committing and must survive.
	if err := os.Remove(journal + TxnExt); err != nil {
		t.Fatal(err)
	}
	lt2 := openWithJournal(t, sealed, journal)
	defer lt2.Close()
	if got := lt2.DeltaRows(); got != 1 {
		t.Fatalf("replayed %d delta rows, want exactly the self-committed batch (1)", got)
	}
}
