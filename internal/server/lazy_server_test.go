package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/storage"
)

// writeShardedFixture commits a 2-shard v3 manifest (segments on disk), the
// layout lazy loading serves from.
func writeShardedFixture(t *testing.T, dir, name string) {
	t.Helper()
	tbl := gen.Generate(gen.Config{Users: 100, Days: 15, MeanActions: 15, Seed: 11})
	s, err := storage.BuildSharded(tbl, 2, storage.Options{ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteShardedFile(filepath.Join(dir, name+TableExt), s); err != nil {
		t.Fatal(err)
	}
}

// TestLazySweptSegmentIsCorruptTableError is the query-path half of the
// crash-injection satellite: a segment file swept away between the manifest
// load and the first lazy touch must surface as a structured corrupt_table
// error (HTTP 500, clean JSON) — never a panic — on every query that touches
// it, while /stats keeps serving the chunk-cache budget.
func TestLazySweptSegmentIsCorruptTableError(t *testing.T) {
	dir := t.TempDir()
	writeShardedFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 4, ChunkCacheBytes: 1 << 20})

	// Load the manifest (the /tables endpoint opens the table lazily)...
	resp, err := http.Get(ts.URL + "/tables/game")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table info status %d", resp.StatusCode)
	}
	// ...then sweep one chunk segment before any query touches it.
	segs, err := filepath.Glob(filepath.Join(dir, "*.cohseg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments on disk (err=%v)", err)
	}
	if err := os.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}

	for attempt := 0; attempt < 2; attempt++ {
		resp, body, _ := postQuery(t, ts.URL, "game", fixtureQuery)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("attempt %d: status %d, want 500 (body %q)", attempt, resp.StatusCode, body)
		}
		var e errorResponse
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Fatalf("attempt %d: error is not clean JSON: %q", attempt, body)
		}
		if e.Code != "corrupt_table" {
			t.Fatalf("attempt %d: code %q, want corrupt_table", attempt, e.Code)
		}
	}

	// /stats still serves, with the configured budget visible.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats struct {
		ChunkCache storage.ChunkCacheStats `json:"chunkCache"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.ChunkCache.BudgetBytes != 1<<20 {
		t.Fatalf("chunkCache budget = %d, want %d", stats.ChunkCache.BudgetBytes, 1<<20)
	}
}

// TestLazyServerQueriesMatchEager runs the fixture query through a lazy
// catalog under a tiny chunk-cache budget and an eager catalog, requiring
// identical results — the serving-path lazy ≡ eager property.
func TestLazyServerQueriesMatchEager(t *testing.T) {
	lazyDir, eagerDir := t.TempDir(), t.TempDir()
	writeShardedFixture(t, lazyDir, "game")
	writeShardedFixture(t, eagerDir, "game")
	_, lazyTS := newTestServer(t, lazyDir, Config{Workers: 2, ChunkCacheBytes: 1})
	_, eagerTS := newTestServer(t, eagerDir, Config{Workers: 2, EagerLoad: true})

	lr, lazyBody, _ := postQuery(t, lazyTS.URL, "game", fixtureQuery)
	er, eagerBody, _ := postQuery(t, eagerTS.URL, "game", fixtureQuery)
	if lr.StatusCode != http.StatusOK || er.StatusCode != http.StatusOK {
		t.Fatalf("status lazy=%d eager=%d", lr.StatusCode, er.StatusCode)
	}
	if lazyBody != eagerBody {
		t.Fatalf("lazy result differs from eager:\nlazy:  %s\neager: %s", lazyBody, eagerBody)
	}
}
