package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestV1RoutesAliasLegacyPaths drives every endpoint through its /v1/ path
// and checks a sample against the legacy alias: both mounts serve the same
// handlers.
func TestV1RoutesAliasLegacyPaths(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 8})

	get := func(path string) (*http.Response, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp, body
	}

	for _, path := range []string{"/v1/healthz", "/v1/tables", "/v1/tables/game", "/v1/stats"} {
		if resp, _ := get(path); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}

	body, err := json.Marshal(queryRequest{Table: "game", Query: fixtureQuery})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/query", "/query"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("POST %s = %d", path, resp.StatusCode)
		}
	}

	// Ingestion endpoints under /v1/.
	appendBody := []byte(`{"rows": [{"player": "v1-user", "time": 1369000000, "action": "launch", "country": "Narnia", "city": "Cair", "role": "dwarf", "session": 1, "gold": 0}]}`)
	resp, err := http.Post(ts.URL+"/v1/tables/game/append", "application/json", bytes.NewReader(appendBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST /v1/tables/game/append = %d", resp.StatusCode)
	}
	for _, path := range []string{"/v1/tables/game/compact", "/v1/tables/game/reload"} {
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("POST %s = %d", path, resp.StatusCode)
		}
	}
}

// TestStructuredErrors pins the {"code", "message"} error contract (and the
// legacy "error" mirror) across the error classes handlers can produce.
func TestStructuredErrors(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 8})

	post := func(path string, body []byte) (int, errorResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("POST %s: decoding error body: %v", path, err)
		}
		return resp.StatusCode, er
	}

	queryBody := func(table, query string) []byte {
		b, err := json.Marshal(queryRequest{Table: table, Query: query})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cases := []struct {
		name       string
		path       string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"unknown table", "/v1/query", queryBody("ghost", fixtureQuery), http.StatusNotFound, "unknown_table"},
		{"malformed query", "/v1/query", queryBody("game", "SELECT nonsense"), http.StatusBadRequest, "bad_request"},
		{"missing fields", "/v1/query", []byte(`{}`), http.StatusBadRequest, "bad_request"},
		{"bad row", "/v1/tables/game/append", []byte(`{"rows": [{"player": ""}]}`), http.StatusBadRequest, "bad_request"},
		{"duplicate row", "/v1/tables/game/append", nil, http.StatusConflict, "duplicate_row"},
	}
	// Seed the duplicate: append once, then replay the same primary key.
	dup := []byte(`{"rows": [{"player": "dup-user", "time": 1369000000, "action": "launch", "country": "X", "city": "Y", "role": "dwarf", "session": 1, "gold": 0}]}`)
	if status, er := post("/v1/tables/game/append", dup); status != http.StatusOK {
		t.Fatalf("seeding append failed: %d %+v", status, er)
	}
	cases[4].body = dup

	for _, c := range cases {
		status, er := post(c.path, c.body)
		if status != c.wantStatus {
			t.Errorf("%s: status = %d, want %d (%+v)", c.name, status, c.wantStatus, er)
		}
		if er.Code != c.wantCode {
			t.Errorf("%s: code = %q, want %q", c.name, er.Code, c.wantCode)
		}
		if er.Message == "" || er.Error != er.Message {
			t.Errorf("%s: message %q / legacy error %q out of sync", c.name, er.Message, er.Error)
		}
	}
}

// TestStatsReportsPlanCache checks that repeat queries surface as plan-cache
// hits in /v1/stats: the fingerprint and execution paths share one compiled
// plan per table incarnation.
func TestStatsReportsPlanCache(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 8})

	body, err := json.Marshal(queryRequest{Table: "game", Query: fixtureQuery})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		PlanCache struct {
			Entries int    `json:"entries"`
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
		} `json:"planCache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	pc := stats.PlanCache
	if pc.Misses != 1 || pc.Hits < 2 || pc.Entries != 1 {
		t.Fatalf("planCache stats = %+v, want 1 miss, >= 2 hits, 1 entry", pc)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("stats content type %q", resp.Header.Get("Content-Type"))
	}
}
