package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cohort"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Config sizes a Server.
type Config struct {
	// DataDir is the directory of .cohana table files.
	DataDir string
	// Workers bounds total chunk-scan concurrency across all in-flight
	// queries; <= 0 selects GOMAXPROCS.
	Workers int
	// CacheSize is the result cache capacity in entries; <= 0 disables
	// the cache.
	CacheSize int
	// PlanCacheSize is each table's compiled-plan cache capacity in plans;
	// 0 selects plan.DefaultCacheSize, negative disables plan caching.
	PlanCacheSize int
	// CompactRows is the per-shard delta row count that triggers background
	// compaction of a table; 0 selects ingest.DefaultAutoCompactRows,
	// negative disables automatic compaction (POST /tables/{name}/compact
	// still works).
	CompactRows int
	// Shards is the user-hash partition count for served tables: a table
	// stored with a different count is resharded at load and the new layout
	// persisted (legacy single-file tables load as 1 shard). 0 keeps each
	// file's stored count.
	Shards int
	// ChunkCacheBytes budgets the decoded-chunk cache behind lazily loaded
	// tables; <= 0 means unbounded. See CatalogConfig.ChunkCacheBytes.
	ChunkCacheBytes int64
	// EagerLoad decodes every chunk at table load (the pre-lazy behavior)
	// instead of on first touch.
	EagerLoad bool
	// Logger receives structured access and error logs; nil selects
	// slog.Default().
	Logger *slog.Logger
}

// Server routes cohort queries and live ingestion over HTTP. The stable
// surface lives under /v1/; the same handlers stay mounted at the original
// unversioned paths as legacy aliases:
//
//	POST /v1/query                 {"table": ..., "query": ...} -> result rows
//	GET  /v1/tables                list catalog tables
//	GET  /v1/tables/{name}         one table's stats (loads it if needed)
//	POST /v1/tables/{name}/append  {"rows": [{col: val, ...}, ...]} -> delta
//	POST /v1/tables/{name}/compact seal the delta into compressed chunks
//	POST /v1/tables/{name}/reload  re-read the table file, invalidate caches
//	GET  /v1/stats                 cache, serving and ingestion counters
//	GET  /v1/healthz               liveness
//
// Errors are structured JSON: {"code": ..., "message": ...} with a stable
// machine-readable code (plus a legacy "error" field mirroring "message").
//
// Every query fans out over the table's sealed chunks on one shared bounded
// pool and unions in the table's live delta, so the server degrades to
// queueing — not thrashing — under load while appended rows are visible
// immediately.
type Server struct {
	catalog *Catalog
	cache   *ResultCache
	pool    *cohort.Pool
	mux     *http.ServeMux
	logger  *slog.Logger
	started time.Time

	queries     atomic.Uint64
	queryErrors atomic.Uint64
	appends     atomic.Uint64
	compacts    atomic.Uint64
}

// New builds a Server. Close it to release the worker pool and the loaded
// tables' journals.
func New(cfg Config) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{
		cache:   NewResultCache(cfg.CacheSize),
		pool:    cohort.NewPool(cfg.Workers),
		mux:     http.NewServeMux(),
		logger:  logger,
		started: time.Now().UTC(),
	}
	s.catalog = NewCatalogWith(cfg.DataDir, CatalogConfig{
		CompactRows:     cfg.CompactRows,
		Shards:          cfg.Shards,
		PlanCacheSize:   cfg.PlanCacheSize,
		ChunkCacheBytes: cfg.ChunkCacheBytes,
		EagerLoad:       cfg.EagerLoad,
		// Appends and compactions do NOT invalidate the cache wholesale:
		// entries are keyed by shard-relevance fingerprint, so a change to
		// one shard only strands the entries whose queries touch it (they
		// age out through the LRU), while queries confined to other shards
		// keep hitting. Reloads still invalidate eagerly in handleReload —
		// a reload discontinuity frees the whole table's memory at once.
	})
	s.route("POST /query", s.handleQuery)
	s.route("GET /tables", s.handleTables)
	s.route("GET /tables/{name}", s.handleTable)
	s.route("POST /tables/{name}/append", s.handleAppend)
	s.route("POST /tables/{name}/compact", s.handleCompact)
	s.route("POST /tables/{name}/reload", s.handleReload)
	s.route("GET /stats", s.handleStats)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	return s
}

// route mounts a handler at both its /v1/ path and the original unversioned
// path, so pre-/v1/ clients keep working unchanged.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, h)
	method, path, ok := strings.Cut(pattern, " /")
	if !ok {
		panic("server: route pattern must be `METHOD /path`: " + pattern)
	}
	s.mux.HandleFunc(method+" /v1/"+path, h)
}

// requestIDHeader carries the request ID: honored when the client sets it,
// generated otherwise, and always echoed on the response so a client can
// correlate its call with the server's access log line.
const requestIDHeader = "X-Request-ID"

type requestIDKey struct{}

// requestIDFrom recovers the request ID the middleware stashed in ctx.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status and body size a handler wrote, for the
// access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// ServeHTTP implements http.Handler: every request gets a request ID
// (honoring a client-provided X-Request-ID) and a structured access log line
// with route, status, duration and bytes written.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.Header.Get(requestIDHeader)
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set(requestIDHeader, id)
	r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	obs.HTTPRequestsTotal.Inc()
	s.logger.Info("request",
		"id", id,
		"method", r.Method,
		"path", r.URL.Path,
		"status", rec.status,
		"bytes", rec.bytes,
		"dur_ms", float64(time.Since(start).Microseconds())/1000,
	)
}

// Close closes every loaded table (waiting out background compactions,
// releasing journals) and stops the shared worker pool after in-flight
// tasks drain. The HTTP listener must be shut down first so no request is
// still submitting work.
func (s *Server) Close() {
	s.catalog.Close()
	s.pool.Close()
}

// CacheStats exposes the cache counters, for tests and the stats endpoint.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// cacheStatusHeader reports hit/miss on every query response, making cache
// behavior observable to clients and tests.
const cacheStatusHeader = "X-Cohana-Cache"

// queryRequest is the POST /query body.
type queryRequest struct {
	Table string `json:"table"`
	Query string `json:"query"`
	// Parallelism caps this query's fan-out within the shared pool;
	// 0 (or absent) uses every pool worker.
	Parallelism int `json:"parallelism,omitempty"`
	// Trace executes the query with per-phase tracing and returns the span
	// tree (prepare, per-shard scans with per-chunk detail, delta union,
	// merge) in the response. Traced requests bypass the result cache — the
	// point is to measure a real execution.
	Trace bool `json:"trace,omitempty"`
}

// queryResponse is the POST /query body on success. Exactly one of Rows
// (cohort query) and Mixed (mixed query) is set.
type queryResponse struct {
	Table    string     `json:"table"`
	KeyCols  []string   `json:"keyCols,omitempty"`
	AggNames []string   `json:"aggNames,omitempty"`
	Rows     []queryRow `json:"rows,omitempty"`
	Mixed    *mixedBody `json:"mixed,omitempty"`
	NumRows  int        `json:"numRows"`
	// Explain is the plan text of an EXPLAIN / EXPLAIN ANALYZE statement;
	// when set, the row fields are empty.
	Explain string `json:"explain,omitempty"`
	// Trace is the measured span tree of a `"trace": true` request.
	Trace *cohana.TraceSpan `json:"trace,omitempty"`
}

type queryRow struct {
	Cohort []string   `json:"cohort"`
	Age    int64      `json:"age"`
	Size   int64      `json:"size"`
	Aggs   []*float64 `json:"aggs"`
}

type mixedBody struct {
	Cols []string   `json:"cols"`
	Rows [][]string `json:"rows"`
}

// errorResponse is every error body: a stable machine-readable Code, a
// human-readable Message, and a legacy Error field (same text as Message)
// kept for pre-/v1/ clients.
type errorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Error   string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if status >= 500 {
		s.queryErrors.Add(1)
		obs.QueryErrorsTotal.Inc()
		s.logger.Error("request failed",
			"id", requestIDFrom(r.Context()),
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"error", err.Error(),
		)
	}
	msg := err.Error()
	writeJSON(w, status, errorResponse{Code: codeFor(status, err), Message: msg, Error: msg})
}

// codeFor derives the stable error code: specific error types first, then
// the HTTP status class.
func codeFor(status int, err error) string {
	var unknown ErrUnknownTable
	if errors.As(err, &unknown) {
		return "unknown_table"
	}
	var corrupt ErrCorruptTable
	if errors.As(err, &corrupt) {
		return "corrupt_table"
	}
	// A lazy chunk load hitting a missing or corrupt segment file surfaces
	// mid-query with the same stable code as a corrupt manifest at load.
	var seg *storage.CorruptSegmentError
	if errors.As(err, &seg) {
		return "corrupt_table"
	}
	var dup ingest.ErrDuplicate
	if errors.As(err, &dup) {
		return "duplicate_row"
	}
	var bad ingest.ErrBadRow
	if errors.As(err, &bad) {
		return "bad_row"
	}
	if errors.Is(err, ingest.ErrClosed) {
		return "table_closed"
	}
	switch {
	case status == statusClientClosedRequest:
		return "client_closed_request"
	case status == http.StatusBadRequest:
		return "bad_request"
	case status == http.StatusNotFound:
		return "not_found"
	case status >= 500:
		return "internal"
	default:
		return "error"
	}
}

// jsonAgg converts an aggregate value to a JSON-safe pointer: NaN and the
// infinities (possible for Avg over an empty bucket) become null instead of
// failing to marshal.
func jsonAgg(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if req.Table == "" || strings.TrimSpace(req.Query) == "" {
		s.writeError(w, r, http.StatusBadRequest, errors.New(`request needs "table" and "query"`))
		return
	}
	s.queries.Add(1)
	lt, plans, _, err := s.catalog.Get(req.Table)
	if err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	parallelism := req.Parallelism
	if parallelism == 0 {
		parallelism = -1 // every pool worker, still bounded by the pool
	}
	// Every request builds a throwaway engine over the shared live table, but
	// they all pass the table incarnation's plan cache: repeat queries skip
	// parse → validate → optimize → compile even across requests.
	eng := cohana.EngineForIngest(lt, cohana.Options{Parallelism: parallelism, Pool: s.pool, PlanCache: plans})
	// The request context rides into the scatter-gather executor: when the
	// client disconnects, every shard's chunk fan-out stops early and the
	// shared pool workers go back to serving live requests.
	ctx := r.Context()
	if inner, analyze, ok := cohana.ParseExplain(req.Query); ok {
		// EXPLAIN statements are never cached: the static form is cheap and
		// the ANALYZE form exists to measure a real execution.
		var text string
		var err error
		if analyze {
			text, err = eng.ExplainAnalyze(ctx, inner)
		} else {
			text, err = eng.Explain(inner)
		}
		if err != nil {
			s.writeError(w, r, queryStatusFor(ctx, err), err)
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{Table: req.Table, Explain: text})
		return
	}
	// Pin one snapshot for the whole request: the fingerprint — the
	// generation vector of only the shards this query could read — is
	// computed from exactly the state the execution below would scan, so a
	// cached body under this key describes precisely this state. Appends to
	// shards the query never touches leave the fingerprint (and the cached
	// entry) intact.
	snap := eng.Snapshot()
	fp := snap.Fingerprint(req.Query)
	norm := NormalizeQuery(req.Query)
	if !req.Trace {
		if body, ok := s.cache.Get(req.Table, fp, norm); ok {
			w.Header().Set(cacheStatusHeader, "hit")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			return
		}
	}
	resp := queryResponse{Table: req.Table}
	mixed := strings.HasPrefix(strings.ToUpper(norm), "WITH")
	switch {
	case mixed && req.Trace:
		res, span, err := snap.QueryMixedTracedContext(ctx, req.Query)
		if err != nil {
			s.writeError(w, r, queryStatusFor(ctx, err), err)
			return
		}
		resp.Mixed = &mixedBody{Cols: res.Cols, Rows: res.Rows}
		resp.NumRows = len(res.Rows)
		resp.Trace = span
	case mixed:
		res, err := snap.QueryMixedContext(ctx, req.Query)
		if err != nil {
			s.writeError(w, r, queryStatusFor(ctx, err), err)
			return
		}
		resp.Mixed = &mixedBody{Cols: res.Cols, Rows: res.Rows}
		resp.NumRows = len(res.Rows)
	default:
		var res *cohana.Result
		var err error
		if req.Trace {
			res, resp.Trace, err = snap.QueryTracedContext(ctx, req.Query)
		} else {
			res, err = snap.QueryContext(ctx, req.Query)
		}
		if err != nil {
			s.writeError(w, r, queryStatusFor(ctx, err), err)
			return
		}
		resp.KeyCols = res.KeyCols
		resp.AggNames = res.AggNames
		resp.NumRows = len(res.Rows)
		resp.Rows = make([]queryRow, len(res.Rows))
		for i, row := range res.Rows {
			aggs := make([]*float64, len(row.Aggs))
			for k, v := range row.Aggs {
				aggs[k] = jsonAgg(v)
			}
			resp.Rows[i] = queryRow{Cohort: row.Cohort, Age: row.Age, Size: row.Size, Aggs: aggs}
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	status := "miss"
	if req.Trace {
		// A traced body is one measured execution, not a reusable result.
		status = "bypass"
	} else {
		s.cache.Put(req.Table, fp, norm, body)
	}
	w.Header().Set(cacheStatusHeader, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleMetrics refreshes the per-table gauges from the catalog and serves
// the Prometheus text exposition of every engine metric.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	_, tables := s.catalog.IngestSnapshot()
	for _, t := range tables {
		obs.TableShards.With(t.Table).Set(float64(t.Shards))
		obs.TableGeneration.With(t.Table).Set(float64(t.Generation))
		obs.TableDeltaRows.With(t.Table).Set(float64(t.DeltaRows))
		obs.TableSealedRows.With(t.Table).Set(float64(t.SealedRows))
	}
	obs.Default.Handler().ServeHTTP(w, r)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	infos, err := s.catalog.List()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Tables []TableInfo `json:"tables"`
	}{Tables: infos})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Force the load so the response carries row/chunk stats, then describe.
	if _, _, _, err := s.catalog.Get(name); err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	info, err := s.catalog.Info(name)
	if err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// appendRequest is the POST /tables/{name}/append body: a batch of activity
// rows as JSON objects keyed by column name. Time columns accept Unix
// seconds or any activity.ParseTime layout.
type appendRequest struct {
	Rows []map[string]any `json:"rows"`
}

// appendResponse acknowledges a durable append.
type appendResponse struct {
	Table      string `json:"table"`
	Appended   int    `json:"appended"`
	DeltaRows  int    `json:"deltaRows"`
	Generation uint64 `json:"generation"`
	Compacting bool   `json:"compacting"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if len(req.Rows) == 0 {
		s.writeError(w, r, http.StatusBadRequest, errors.New(`request needs a non-empty "rows" array`))
		return
	}
	lt, _, _, err := s.catalog.Get(name)
	if err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	schema := lt.Schema()
	batch := make([]ingest.Row, len(req.Rows))
	for i, obj := range req.Rows {
		row, err := ingest.ParseRow(schema, obj)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("row %d: %w", i, err))
			return
		}
		batch[i] = row
	}
	if err := lt.Append(batch); err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	s.appends.Add(1)
	st := lt.Stats()
	writeJSON(w, http.StatusOK, appendResponse{
		Table:      name,
		Appended:   len(batch),
		DeltaRows:  st.DeltaRows,
		Generation: st.Generation,
		Compacting: st.Compacting,
	})
}

// compactResponse reports a completed compaction.
type compactResponse struct {
	Table             string `json:"table"`
	SealedRows        int    `json:"sealedRows"`
	SealedChunks      int    `json:"sealedChunks"`
	DeltaRows         int    `json:"deltaRows"`
	Generation        uint64 `json:"generation"`
	Compactions       uint64 `json:"compactions"`
	LastCompactMillis int64  `json:"lastCompactMillis"`
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	lt, _, _, err := s.catalog.Get(name)
	if err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	if err := lt.CompactContext(r.Context()); err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	s.compacts.Add(1)
	st := lt.Stats()
	writeJSON(w, http.StatusOK, compactResponse{
		Table:             name,
		SealedRows:        st.SealedRows,
		SealedChunks:      st.SealedChunks,
		DeltaRows:         st.DeltaRows,
		Generation:        st.Generation,
		Compactions:       st.Compactions,
		LastCompactMillis: st.LastCompactMillis,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, _, err := s.catalog.Reload(name); err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	invalidated := s.cache.InvalidateTable(name)
	info, err := s.catalog.Info(name)
	if err != nil {
		s.writeError(w, r, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Table       TableInfo `json:"table"`
		Invalidated int       `json:"invalidatedCacheEntries"`
	}{Table: info, Invalidated: invalidated})
}

// ScanKernelStats surfaces the process-wide scan-kernel counters on /stats:
// scanned rows and encoded-domain checks across all queries, plus how much
// of that work the run-aware vectorized path handled run-at-a-time.
// RowsBatched/RunsEvaluated is the realized amortization factor.
type ScanKernelStats struct {
	RowsScanned   uint64 `json:"rowsScanned"`
	EncodedChecks uint64 `json:"encodedChecks"`
	RunsEvaluated uint64 `json:"runsEvaluated"`
	RowsBatched   uint64 `json:"rowsBatched"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ingestTotals, tables := s.catalog.IngestSnapshot()
	writeJSON(w, http.StatusOK, struct {
		UptimeSeconds float64                 `json:"uptimeSeconds"`
		Workers       int                     `json:"workers"`
		Queries       uint64                  `json:"queries"`
		QueryErrors   uint64                  `json:"queryErrors"`
		AppendBatches uint64                  `json:"appendBatches"`
		Compacts      uint64                  `json:"compactRequests"`
		Cache         CacheStats              `json:"cache"`
		PlanCache     plan.CacheStats         `json:"planCache"`
		ChunkCache    storage.ChunkCacheStats `json:"chunkCache"`
		Scan          ScanKernelStats         `json:"scan"`
		Ingest        IngestTotals            `json:"ingest"`
		Tables        []TableShards           `json:"tables,omitempty"`
	}{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.pool.Workers(),
		Queries:       s.queries.Load(),
		QueryErrors:   s.queryErrors.Load(),
		AppendBatches: s.appends.Load(),
		Compacts:      s.compacts.Load(),
		Cache:         s.cache.Stats(),
		PlanCache:     s.catalog.PlanCacheStats(),
		ChunkCache:    s.catalog.ChunkCacheStats(),
		Scan: ScanKernelStats{
			RowsScanned:   obs.RowsScannedTotal.Value(),
			EncodedChecks: obs.EncodedChecksTotal.Value(),
			RunsEvaluated: obs.RunsEvaluatedTotal.Value(),
			RowsBatched:   obs.RowsBatchedTotal.Value(),
		},
		Ingest: ingestTotals,
		Tables: tables,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// statusClientClosedRequest is the (nginx-convention) status logged when a
// query fails because its client disconnected; no client sees it.
const statusClientClosedRequest = 499

// queryStatusFor distinguishes a query error caused by the client going away
// (a cancelled request context) from a genuinely bad query, and server-side
// storage corruption (a lazy chunk load hitting a missing or corrupt segment
// mid-query) from client errors.
func queryStatusFor(ctx context.Context, err error) int {
	if errors.Is(err, context.Canceled) || ctx.Err() != nil {
		return statusClientClosedRequest
	}
	var seg *storage.CorruptSegmentError
	if errors.As(err, &seg) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// statusFor maps catalog and ingest errors to HTTP statuses.
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) {
		return statusClientClosedRequest
	}
	var unknown ErrUnknownTable
	if errors.As(err, &unknown) {
		return http.StatusNotFound
	}
	var dup ingest.ErrDuplicate
	if errors.As(err, &dup) {
		return http.StatusConflict
	}
	var bad ingest.ErrBadRow
	if errors.As(err, &bad) {
		return http.StatusBadRequest
	}
	if errors.Is(err, ingest.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	// ErrCorruptTable and everything else: a clean 500 whose message names
	// the offending file instead of a raw decode failure.
	return http.StatusInternalServerError
}
