package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cohort"
)

// Config sizes a Server.
type Config struct {
	// DataDir is the directory of .cohana table files.
	DataDir string
	// Workers bounds total chunk-scan concurrency across all in-flight
	// queries; <= 0 selects GOMAXPROCS.
	Workers int
	// CacheSize is the result cache capacity in entries; <= 0 disables
	// the cache.
	CacheSize int
}

// Server routes cohort queries over HTTP:
//
//	POST /query                 {"table": ..., "query": ...} -> result rows
//	GET  /tables                list catalog tables
//	GET  /tables/{name}         one table's stats (loads it if needed)
//	POST /tables/{name}/reload  re-read the table file, invalidate its cache
//	GET  /stats                 cache and serving counters
//	GET  /healthz               liveness
//
// Every query fans out over the table's chunks on one shared bounded pool,
// so the server degrades to queueing — not thrashing — under load.
type Server struct {
	catalog *Catalog
	cache   *ResultCache
	pool    *cohort.Pool
	mux     *http.ServeMux
	started time.Time

	queries     atomic.Uint64
	queryErrors atomic.Uint64
}

// New builds a Server. Close it to release the worker pool.
func New(cfg Config) *Server {
	s := &Server{
		catalog: NewCatalog(cfg.DataDir),
		cache:   NewResultCache(cfg.CacheSize),
		pool:    cohort.NewPool(cfg.Workers),
		mux:     http.NewServeMux(),
		started: time.Now().UTC(),
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /tables", s.handleTables)
	s.mux.HandleFunc("GET /tables/{name}", s.handleTable)
	s.mux.HandleFunc("POST /tables/{name}/reload", s.handleReload)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the shared worker pool after in-flight tasks drain. The
// HTTP listener must be shut down first so no request is still submitting
// work.
func (s *Server) Close() { s.pool.Close() }

// CacheStats exposes the cache counters, for tests and the stats endpoint.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// cacheStatusHeader reports hit/miss on every query response, making cache
// behavior observable to clients and tests.
const cacheStatusHeader = "X-Cohana-Cache"

// queryRequest is the POST /query body.
type queryRequest struct {
	Table string `json:"table"`
	Query string `json:"query"`
	// Parallelism caps this query's fan-out within the shared pool;
	// 0 (or absent) uses every pool worker.
	Parallelism int `json:"parallelism,omitempty"`
}

// queryResponse is the POST /query body on success. Exactly one of Rows
// (cohort query) and Mixed (mixed query) is set.
type queryResponse struct {
	Table    string     `json:"table"`
	KeyCols  []string   `json:"keyCols,omitempty"`
	AggNames []string   `json:"aggNames,omitempty"`
	Rows     []queryRow `json:"rows,omitempty"`
	Mixed    *mixedBody `json:"mixed,omitempty"`
	NumRows  int        `json:"numRows"`
}

type queryRow struct {
	Cohort []string   `json:"cohort"`
	Age    int64      `json:"age"`
	Size   int64      `json:"size"`
	Aggs   []*float64 `json:"aggs"`
}

type mixedBody struct {
	Cols []string   `json:"cols"`
	Rows [][]string `json:"rows"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.queryErrors.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// jsonAgg converts an aggregate value to a JSON-safe pointer: NaN and the
// infinities (possible for Avg over an empty bucket) become null instead of
// failing to marshal.
func jsonAgg(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if req.Table == "" || strings.TrimSpace(req.Query) == "" {
		s.writeError(w, http.StatusBadRequest, errors.New(`request needs "table" and "query"`))
		return
	}
	s.queries.Add(1)
	tbl, gen, err := s.catalog.Get(req.Table)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	norm := NormalizeQuery(req.Query)
	if body, ok := s.cache.Get(req.Table, gen, norm); ok {
		w.Header().Set(cacheStatusHeader, "hit")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}
	parallelism := req.Parallelism
	if parallelism == 0 {
		parallelism = -1 // every pool worker, still bounded by the pool
	}
	eng := cohana.EngineForTable(tbl, cohana.Options{Parallelism: parallelism, Pool: s.pool})
	resp := queryResponse{Table: req.Table}
	if strings.HasPrefix(strings.ToUpper(norm), "WITH") {
		res, err := eng.QueryMixed(req.Query)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		resp.Mixed = &mixedBody{Cols: res.Cols, Rows: res.Rows}
		resp.NumRows = len(res.Rows)
	} else {
		res, err := eng.Query(req.Query)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		resp.KeyCols = res.KeyCols
		resp.AggNames = res.AggNames
		resp.NumRows = len(res.Rows)
		resp.Rows = make([]queryRow, len(res.Rows))
		for i, row := range res.Rows {
			aggs := make([]*float64, len(row.Aggs))
			for k, v := range row.Aggs {
				aggs[k] = jsonAgg(v)
			}
			resp.Rows[i] = queryRow{Cohort: row.Cohort, Age: row.Age, Size: row.Size, Aggs: aggs}
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	s.cache.Put(req.Table, gen, norm, body)
	w.Header().Set(cacheStatusHeader, "miss")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	infos, err := s.catalog.List()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Tables []TableInfo `json:"tables"`
	}{Tables: infos})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Force the load so the response carries row/chunk stats, then describe.
	if _, _, err := s.catalog.Get(name); err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	info, err := s.catalog.Info(name)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, _, err := s.catalog.Reload(name); err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	invalidated := s.cache.InvalidateTable(name)
	info, err := s.catalog.Info(name)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Table       TableInfo `json:"table"`
		Invalidated int       `json:"invalidatedCacheEntries"`
	}{Table: info, Invalidated: invalidated})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		UptimeSeconds float64    `json:"uptimeSeconds"`
		Workers       int        `json:"workers"`
		Queries       uint64     `json:"queries"`
		QueryErrors   uint64     `json:"queryErrors"`
		Cache         CacheStats `json:"cache"`
	}{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.pool.Workers(),
		Queries:       s.queries.Load(),
		QueryErrors:   s.queryErrors.Load(),
		Cache:         s.cache.Stats(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// statusFor maps catalog errors to HTTP statuses.
func statusFor(err error) int {
	var unknown ErrUnknownTable
	if errors.As(err, &unknown) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}
