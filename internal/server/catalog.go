// Package server is COHANA's HTTP serving subsystem: a table catalog that
// lazily loads compressed .cohana tables from a data directory and wraps
// each in a live ingest table (delta store + journal + background
// compaction), an LRU result cache keyed on (table, generation, normalized
// query text) and invalidated whenever a table changes, and handlers that
// fan each query out over sealed chunks through a bounded worker pool shared
// by all in-flight requests while unioning in the uncompressed delta tier.
// Sealed tables, delta snapshots and compiled queries are all immutable,
// which is what makes a view safe to serve to any number of concurrent
// queries without locking on the read path.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/plan"
	"repro/internal/storage"
)

// TableExt is the file extension the catalog serves from its data
// directory; a file games.cohana is served as table "games".
const TableExt = ".cohana"

// JournalExt is the extension of the per-table append journal kept next to
// the .cohana file; a file games.journal holds the un-compacted appends of
// table "games".
const JournalExt = ".journal"

// Catalog maps table names to lazily-loaded live tables. Loading is
// single-flight per table: concurrent first requests for one table block on
// one disk read instead of each deserializing their own copy.
type Catalog struct {
	dir string
	// compactRows is the per-shard auto-compaction threshold in delta rows;
	// <= 0 disables automatic compaction.
	compactRows int
	// shards is the target shard count for loaded tables; 0 keeps each
	// file's stored count.
	shards int
	// planCacheSize is the per-table compiled-plan cache capacity; 0 selects
	// plan.DefaultCacheSize, negative disables plan caching.
	planCacheSize int
	// chunkCache is the decoded-chunk cache shared by every lazily loaded
	// table of this catalog (entries are keyed by segment content hash, so
	// tables never collide).
	chunkCache *storage.ChunkCache
	// eager restores the pre-lazy behavior: decode every chunk at load.
	eager bool
	// onChange, when non-nil, is called with the table name after every
	// append and compaction (the server invalidates its result cache here).
	onChange func(table string)

	mu      sync.Mutex
	entries map[string]*catalogEntry
}

type catalogEntry struct {
	mu   sync.Mutex
	live *ingest.Table
	// planCache holds this incarnation's compiled plans. It is created fresh
	// by every loadLocked, so a reload invalidates all plans wholesale (the
	// schema may have changed on disk); compactions need no invalidation here
	// because each plan re-binds changed shards by sealed-tier identity.
	planCache *plan.Cache
	// nextGen is the generation watermark for the next incarnation, kept on
	// the entry so it survives a failed reload: generations must never
	// restart while old cached results for this table may still exist.
	nextGen   uint64
	fileBytes int64
	loadedAt  time.Time
	// persistMu guards persist, the cumulative commit stats of this table's
	// incremental persistence — written from compaction goroutines (the
	// Persist hook), read by Info, so it cannot ride under mu.
	persistMu sync.Mutex
	persist   storage.CommitStats
}

// recordPersist folds one commit's stats into the entry.
func (e *catalogEntry) recordPersist(st storage.CommitStats) {
	e.persistMu.Lock()
	e.persist.Add(st)
	e.persistMu.Unlock()
}

// persistStats snapshots the cumulative commit stats.
func (e *catalogEntry) persistStats() storage.CommitStats {
	e.persistMu.Lock()
	defer e.persistMu.Unlock()
	return e.persist
}

// TableInfo describes one catalog table for the listing endpoints.
type TableInfo struct {
	Name       string    `json:"name"`
	Loaded     bool      `json:"loaded"`
	Generation uint64    `json:"generation,omitempty"`
	Rows       int       `json:"rows,omitempty"`
	Users      int       `json:"users,omitempty"`
	Chunks     int       `json:"chunks,omitempty"`
	ChunkSize  int       `json:"chunkSize,omitempty"`
	FileBytes  int64     `json:"fileBytes,omitempty"`
	LoadedAt   time.Time `json:"loadedAt,omitzero"`
	Columns    []ColInfo `json:"columns,omitempty"`
	// Live-ingestion state: rows awaiting compaction, compactions run, the
	// journal size backing the delta's durability, and the most recent
	// compaction failure (empty after a success).
	DeltaRows    int    `json:"deltaRows,omitempty"`
	Compactions  uint64 `json:"compactions,omitempty"`
	JournalBytes int64  `json:"journalBytes,omitempty"`
	CompactError string `json:"compactError,omitempty"`
	// Chunk-granular compaction and incremental persistence counters: chunks
	// re-encoded vs carried over untouched across all compactions, and what
	// the manifest commits actually wrote vs reused on disk.
	ChunksRebuilt   uint64 `json:"chunksRebuilt,omitempty"`
	ChunksReused    uint64 `json:"chunksReused,omitempty"`
	PersistBytes    int64  `json:"persistBytes,omitempty"`
	SegmentsWritten int    `json:"segmentsWritten,omitempty"`
	SegmentsReused  int    `json:"segmentsReused,omitempty"`
	// Shards is the table's user-hash partition count; PerShard the
	// per-shard ingestion breakdown (present for multi-shard tables).
	Shards   int                 `json:"shards,omitempty"`
	PerShard []ingest.ShardStats `json:"perShard,omitempty"`
}

// ColInfo is one schema column of a loaded table.
type ColInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Kind string `json:"kind"`
}

// CatalogConfig parameterizes a catalog.
type CatalogConfig struct {
	// CompactRows is the per-shard delta row count that triggers background
	// compaction; 0 selects ingest.DefaultAutoCompactRows, negative
	// disables automatic compaction.
	CompactRows int
	// Shards is the target shard count for loaded tables: a table stored
	// with a different count is resharded at load and the new layout
	// persisted. 0 keeps each file's stored count.
	Shards int
	// PlanCacheSize is each table's compiled-plan cache capacity in plans;
	// 0 selects plan.DefaultCacheSize, negative disables plan caching.
	PlanCacheSize int
	// ChunkCacheBytes budgets the catalog's decoded-chunk cache: tables load
	// lazily (manifest only) and chunk payloads decode on first touch, with
	// least-recently-used payloads evicted once resident bytes exceed the
	// budget. <= 0 means unbounded (still lazy).
	ChunkCacheBytes int64
	// EagerLoad decodes every chunk segment at table load, the pre-lazy
	// behavior; ChunkCacheBytes is then irrelevant.
	EagerLoad bool
	// OnChange is called with the table name after every append and
	// compaction.
	OnChange func(table string)
}

// NewCatalog serves tables from dir with default ingestion settings. The
// directory is scanned on demand, so tables dropped into it after startup
// are picked up without a restart.
func NewCatalog(dir string) *Catalog {
	return NewCatalogWith(dir, CatalogConfig{})
}

// NewCatalogWith serves tables from dir with explicit ingestion settings.
func NewCatalogWith(dir string, cfg CatalogConfig) *Catalog {
	compact := cfg.CompactRows
	switch {
	case compact == 0:
		compact = ingest.DefaultAutoCompactRows
	case compact < 0:
		compact = 0
	}
	return &Catalog{
		dir:           dir,
		compactRows:   compact,
		shards:        cfg.Shards,
		planCacheSize: cfg.PlanCacheSize,
		chunkCache:    storage.NewChunkCache(cfg.ChunkCacheBytes),
		eager:         cfg.EagerLoad,
		onChange:      cfg.OnChange,
		entries:       make(map[string]*catalogEntry),
	}
}

// ChunkCacheStats snapshots the catalog's decoded-chunk cache counters for
// the stats endpoint.
func (c *Catalog) ChunkCacheStats() storage.ChunkCacheStats {
	return c.chunkCache.Stats()
}

// ErrUnknownTable marks lookups of tables with no backing file, so handlers
// can answer 404 instead of 500.
type ErrUnknownTable struct{ Name string }

func (e ErrUnknownTable) Error() string {
	return fmt.Sprintf("unknown table %q (no %s%s in data directory)", e.Name, e.Name, TableExt)
}

// ErrCorruptTable marks a table file that exists but cannot be decoded
// (corrupt or truncated), naming the file so operators know what to fix.
type ErrCorruptTable struct {
	Name string
	File string // file basename inside the data directory
	Err  error
}

func (e ErrCorruptTable) Error() string {
	return fmt.Sprintf("table %q: corrupt or truncated file %s: %v", e.Name, e.File, e.Err)
}

func (e ErrCorruptTable) Unwrap() error { return e.Err }

// validName rejects names that could escape the data directory or collide
// with path syntax. Table names are file basenames without the extension.
func validName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, "/\\")
}

func (c *Catalog) path(name string) string {
	return filepath.Join(c.dir, name+TableExt)
}

func (c *Catalog) journalPath(name string) string {
	return filepath.Join(c.dir, name+JournalExt)
}

func (c *Catalog) entry(name string) *catalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		e = &catalogEntry{}
		c.entries[name] = e
	}
	return e
}

// Get returns the live table, loading it on first use, together with the
// incarnation's compiled-plan cache and its current generation (the token
// the result cache keys on; it advances on every append, compaction and
// reload). Table and plan cache are taken under one lock, so they always
// belong to the same incarnation.
func (c *Catalog) Get(name string) (*ingest.Table, *plan.Cache, uint64, error) {
	if !validName(name) {
		return nil, nil, 0, ErrUnknownTable{Name: name}
	}
	e := c.entry(name)
	e.mu.Lock()
	if e.live == nil {
		if err := c.loadLocked(name, e); err != nil {
			e.mu.Unlock()
			c.dropIfEmpty(name, e)
			return nil, nil, 0, err
		}
	}
	live, plans := e.live, e.planCache
	e.mu.Unlock()
	return live, plans, live.Gen(), nil
}

// dropIfEmpty removes a never-loaded entry from the map, so queries against
// nonexistent table names cannot grow c.entries without bound.
func (c *Catalog) dropIfEmpty(name string, e *catalogEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.entries[name] == e && e.live == nil && e.nextGen == 0 {
		delete(c.entries, name)
	}
}

// Reload re-reads the table from disk, replaying the journal, replacing the
// shared live table and advancing the generation. In-flight queries keep
// using the views they already hold — old generations stay valid, they just
// stop being served from the catalog or the cache.
func (c *Catalog) Reload(name string) (*ingest.Table, uint64, error) {
	if !validName(name) {
		return nil, 0, ErrUnknownTable{Name: name}
	}
	e := c.entry(name)
	e.mu.Lock()
	if err := c.loadLocked(name, e); err != nil {
		e.mu.Unlock()
		c.dropIfEmpty(name, e)
		return nil, 0, err
	}
	live := e.live
	e.mu.Unlock()
	return live, live.Gen(), nil
}

// PlanCacheStats sums the compiled-plan cache counters across every loaded
// table incarnation for the stats endpoint. Capacity reports the per-table
// setting, not a sum.
func (c *Catalog) PlanCacheStats() plan.CacheStats {
	c.mu.Lock()
	entries := make([]*catalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	var agg plan.CacheStats
	for _, e := range entries {
		e.mu.Lock()
		pc := e.planCache
		e.mu.Unlock()
		if pc == nil {
			continue
		}
		st := pc.Stats()
		agg.Capacity = st.Capacity
		agg.Entries += st.Entries
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Rebinds += st.Rebinds
		agg.Evictions += st.Evictions
	}
	return agg
}

// loadLocked reads and deserializes the table file and wraps it in a live
// ingest table, replaying the journal; e.mu must be held. A previous
// incarnation is closed, and the new one continues its generation sequence
// so stale cache entries can never collide with fresh ones.
func (c *Catalog) loadLocked(name string, e *catalogEntry) error {
	// Close the previous incarnation BEFORE reading the file: Close waits
	// out in-flight appends and gates compactions (the closed re-check
	// before swap/rewrite), so once it returns the .cohana file and journal
	// are quiescent. Reading first could capture pre-compaction bytes and
	// then replay the post-compaction (truncated) journal — acknowledged
	// rows would vanish from view until the next reload. Closing first also
	// pins the generation watermark: no bump can race us into handing the
	// new incarnation a generation an old cached result was stored under.
	if e.live != nil {
		old := e.live
		e.live = nil
		_ = old.Close()
		e.nextGen = old.Gen() + 1
	}
	path := c.path(name)
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrUnknownTable{Name: name}
		}
		return err
	}
	// ReadShardedWith accepts both layouts: a legacy single-table .cohana
	// file loads transparently as a 1-shard table, a shard manifest loads
	// lazily — only the manifest is read here, chunk payloads decode on
	// first touch through the catalog's chunk cache. When the configured
	// shard count differs from the stored one, ingest reshards at open and
	// persists the new layout — the migration path from legacy files to
	// sharded tables.
	tbl, err := storage.ReadShardedWith(path, storage.ReadOptions{Lazy: !c.eager, Cache: c.chunkCache})
	if err != nil {
		return ErrCorruptTable{Name: name, File: filepath.Base(path), Err: err}
	}
	live, err := ingest.OpenSharded(tbl, ingest.Config{
		JournalPath:     c.journalPath(name),
		AutoCompactRows: c.compactRows,
		Shards:          c.shards,
		InitialGen:      e.nextGen,
		// The commit is incremental by construction: only chunk segments the
		// compaction actually produced (plus the manifest) hit the disk; the
		// stats record exactly how many bytes each compaction persisted.
		Persist: func(d storage.LayoutDelta) error {
			st, err := storage.CommitSharded(path, d.Layout)
			if err == nil {
				e.recordPersist(st)
			}
			return err
		},
		OnChange: func() {
			if c.onChange != nil {
				c.onChange(name)
			}
		},
	})
	if err != nil {
		return fmt.Errorf("loading table %q: %w", name, err)
	}
	e.live = live
	e.planCache = plan.NewCache(c.planCacheSize)
	e.fileBytes = fi.Size()
	e.loadedAt = time.Now().UTC()
	return nil
}

// Info describes one table without forcing a load.
func (c *Catalog) Info(name string) (TableInfo, error) {
	if !validName(name) {
		return TableInfo{}, ErrUnknownTable{Name: name}
	}
	if _, err := os.Stat(c.path(name)); err != nil {
		if os.IsNotExist(err) {
			return TableInfo{}, ErrUnknownTable{Name: name}
		}
		return TableInfo{}, err
	}
	info := TableInfo{Name: name}
	e := c.entry(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.live == nil {
		return info, nil
	}
	st := e.live.Stats()
	info.Loaded = true
	info.Generation = st.Generation
	info.Rows = st.SealedRows
	info.Users = st.SealedUsers
	info.Chunks = st.SealedChunks
	info.ChunkSize = e.live.ChunkSize()
	info.FileBytes = e.fileBytes
	info.LoadedAt = e.loadedAt
	info.DeltaRows = st.DeltaRows
	info.Compactions = st.Compactions
	info.JournalBytes = st.JournalBytes
	info.CompactError = st.LastCompactError
	info.ChunksRebuilt = st.ChunksRebuilt
	info.ChunksReused = st.ChunksReused
	ps := e.persistStats()
	info.PersistBytes = ps.BytesWritten
	info.SegmentsWritten = ps.SegmentsWritten
	info.SegmentsReused = ps.SegmentsReused
	info.Shards = st.Shards
	info.PerShard = st.PerShard
	schema := e.live.Schema()
	for i := 0; i < schema.NumCols(); i++ {
		col := schema.Col(i)
		info.Columns = append(info.Columns, ColInfo{
			Name: col.Name,
			Type: col.Type.String(),
			Kind: col.Kind.String(),
		})
	}
	return info, nil
}

// List scans the data directory and describes every table file, loaded or
// not, sorted by name.
func (c *Catalog) List() ([]TableInfo, error) {
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var out []TableInfo
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), TableExt) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), TableExt)
		if !validName(name) {
			continue
		}
		info, err := c.Info(name)
		if err != nil {
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// IngestTotals aggregates the live-ingestion counters across loaded tables
// for the stats endpoint.
type IngestTotals struct {
	LoadedTables      int    `json:"loadedTables"`
	Shards            int    `json:"shards"`
	DeltaRows         int    `json:"deltaRows"`
	Appends           uint64 `json:"appends"`
	AppendedRows      uint64 `json:"appendedRows"`
	Compactions       uint64 `json:"compactions"`
	ReplayedRows      uint64 `json:"replayedRows"`
	ReplayDroppedRows uint64 `json:"replayDroppedRows"`
	JournalBytes      int64  `json:"journalBytes"`
	// Chunk-granular compaction / incremental persistence aggregates: chunks
	// re-encoded vs left untouched by compactions, and the bytes the manifest
	// commits actually wrote.
	ChunksRebuilt   uint64 `json:"chunksRebuilt"`
	ChunksReused    uint64 `json:"chunksReused"`
	PersistBytes    int64  `json:"persistBytes"`
	SegmentsWritten int    `json:"segmentsWritten"`
	SegmentsReused  int    `json:"segmentsReused"`
}

// TableShards is one loaded table's per-shard ingestion breakdown for the
// stats endpoint.
type TableShards struct {
	Table      string              `json:"table"`
	Shards     int                 `json:"shards"`
	Generation uint64              `json:"generation"`
	DeltaRows  int                 `json:"deltaRows"`
	SealedRows int                 `json:"sealedRows"`
	PerShard   []ingest.ShardStats `json:"perShard,omitempty"`
}

// IngestSnapshot walks every loaded table once — each walk locks the
// table's shards, so the stats endpoint must not repeat it — and returns
// both the across-table aggregate and the per-table shard breakdown,
// sorted by name.
func (c *Catalog) IngestSnapshot() (IngestTotals, []TableShards) {
	c.mu.Lock()
	names := make([]string, 0, len(c.entries))
	for name := range c.entries {
		names = append(names, name)
	}
	c.mu.Unlock()
	sort.Strings(names)
	var agg IngestTotals
	var tables []TableShards
	for _, name := range names {
		e := c.entry(name)
		e.mu.Lock()
		live := e.live
		e.mu.Unlock()
		if live == nil {
			continue
		}
		st := live.Stats()
		agg.LoadedTables++
		agg.Shards += st.Shards
		agg.DeltaRows += st.DeltaRows
		agg.Appends += st.Appends
		agg.AppendedRows += st.AppendedRows
		agg.Compactions += st.Compactions
		agg.ReplayedRows += st.ReplayedRows
		agg.ReplayDroppedRows += st.ReplayDroppedRows
		agg.JournalBytes += st.JournalBytes
		agg.ChunksRebuilt += st.ChunksRebuilt
		agg.ChunksReused += st.ChunksReused
		ps := e.persistStats()
		agg.PersistBytes += ps.BytesWritten
		agg.SegmentsWritten += ps.SegmentsWritten
		agg.SegmentsReused += ps.SegmentsReused
		tables = append(tables, TableShards{
			Table:      name,
			Shards:     st.Shards,
			Generation: st.Generation,
			DeltaRows:  st.DeltaRows,
			SealedRows: st.SealedRows,
			PerShard:   st.PerShard,
		})
	}
	return agg, tables
}

// Close closes every loaded table, waiting out background compactions and
// releasing journal files. The catalog is not usable afterwards.
func (c *Catalog) Close() {
	c.mu.Lock()
	entries := make([]*catalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.live != nil {
			_ = e.live.Close()
			e.live = nil
		}
		e.mu.Unlock()
	}
}
