// Package server is COHANA's HTTP query-serving subsystem: a table catalog
// that lazily loads compressed .cohana tables from a data directory and
// shares them across requests, an LRU result cache keyed on (table,
// normalized query text) and invalidated on table reload, and handlers that
// fan each query out over chunks through a bounded worker pool shared by
// all in-flight requests. Compressed tables and compiled queries are both
// immutable, which is what makes a single loaded table safe to serve to any
// number of concurrent queries without locking on the read path.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
)

// TableExt is the file extension the catalog serves from its data
// directory; a file games.cohana is served as table "games".
const TableExt = ".cohana"

// Catalog maps table names to lazily-loaded compressed tables. Loading is
// single-flight per table: concurrent first requests for one table block on
// one disk read instead of each deserializing their own copy.
type Catalog struct {
	dir string

	mu      sync.Mutex
	entries map[string]*catalogEntry
}

type catalogEntry struct {
	mu        sync.Mutex
	table     *storage.Table
	gen       uint64 // bumped on every (re)load; part of the result-cache key
	fileBytes int64
	loadedAt  time.Time
}

// TableInfo describes one catalog table for the listing endpoints.
type TableInfo struct {
	Name       string    `json:"name"`
	Loaded     bool      `json:"loaded"`
	Generation uint64    `json:"generation,omitempty"`
	Rows       int       `json:"rows,omitempty"`
	Users      int       `json:"users,omitempty"`
	Chunks     int       `json:"chunks,omitempty"`
	ChunkSize  int       `json:"chunkSize,omitempty"`
	FileBytes  int64     `json:"fileBytes,omitempty"`
	LoadedAt   time.Time `json:"loadedAt,omitzero"`
	Columns    []ColInfo `json:"columns,omitempty"`
}

// ColInfo is one schema column of a loaded table.
type ColInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Kind string `json:"kind"`
}

// NewCatalog serves tables from dir. The directory is scanned on demand, so
// tables dropped into it after startup are picked up without a restart.
func NewCatalog(dir string) *Catalog {
	return &Catalog{dir: dir, entries: make(map[string]*catalogEntry)}
}

// ErrUnknownTable marks lookups of tables with no backing file, so handlers
// can answer 404 instead of 500.
type ErrUnknownTable struct{ Name string }

func (e ErrUnknownTable) Error() string {
	return fmt.Sprintf("unknown table %q (no %s%s in data directory)", e.Name, e.Name, TableExt)
}

// validName rejects names that could escape the data directory or collide
// with path syntax. Table names are file basenames without the extension.
func validName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, "/\\")
}

func (c *Catalog) path(name string) string {
	return filepath.Join(c.dir, name+TableExt)
}

func (c *Catalog) entry(name string) *catalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		e = &catalogEntry{}
		c.entries[name] = e
	}
	return e
}

// Get returns the table, loading it on first use, together with its load
// generation (the token the result cache keys on).
func (c *Catalog) Get(name string) (*storage.Table, uint64, error) {
	if !validName(name) {
		return nil, 0, ErrUnknownTable{Name: name}
	}
	e := c.entry(name)
	e.mu.Lock()
	if e.table == nil {
		if err := c.loadLocked(name, e); err != nil {
			e.mu.Unlock()
			c.dropIfEmpty(name, e)
			return nil, 0, err
		}
	}
	tbl, gen := e.table, e.gen
	e.mu.Unlock()
	return tbl, gen, nil
}

// dropIfEmpty removes a never-loaded entry from the map, so queries against
// nonexistent table names cannot grow c.entries without bound.
func (c *Catalog) dropIfEmpty(name string, e *catalogEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.entries[name] == e && e.table == nil {
		delete(c.entries, name)
	}
}

// Reload re-reads the table from disk, replacing the shared copy and
// bumping the generation. In-flight queries keep using the table they
// already hold — old generations stay valid, they just stop being served
// from the catalog or the cache.
func (c *Catalog) Reload(name string) (*storage.Table, uint64, error) {
	if !validName(name) {
		return nil, 0, ErrUnknownTable{Name: name}
	}
	e := c.entry(name)
	e.mu.Lock()
	if err := c.loadLocked(name, e); err != nil {
		e.mu.Unlock()
		c.dropIfEmpty(name, e)
		return nil, 0, err
	}
	tbl, gen := e.table, e.gen
	e.mu.Unlock()
	return tbl, gen, nil
}

// loadLocked reads and deserializes the table file; e.mu must be held.
func (c *Catalog) loadLocked(name string, e *catalogEntry) error {
	path := c.path(name)
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrUnknownTable{Name: name}
		}
		return err
	}
	tbl, err := storage.ReadFile(path)
	if err != nil {
		return fmt.Errorf("loading table %q: %w", name, err)
	}
	e.table = tbl
	e.gen++
	e.fileBytes = fi.Size()
	e.loadedAt = time.Now().UTC()
	return nil
}

// Info describes one table without forcing a load.
func (c *Catalog) Info(name string) (TableInfo, error) {
	if !validName(name) {
		return TableInfo{}, ErrUnknownTable{Name: name}
	}
	if _, err := os.Stat(c.path(name)); err != nil {
		if os.IsNotExist(err) {
			return TableInfo{}, ErrUnknownTable{Name: name}
		}
		return TableInfo{}, err
	}
	info := TableInfo{Name: name}
	e := c.entry(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.table == nil {
		return info, nil
	}
	info.Loaded = true
	info.Generation = e.gen
	info.Rows = e.table.NumRows()
	info.Users = e.table.NumUsers()
	info.Chunks = e.table.NumChunks()
	info.ChunkSize = e.table.ChunkSize()
	info.FileBytes = e.fileBytes
	info.LoadedAt = e.loadedAt
	schema := e.table.Schema()
	for i := 0; i < schema.NumCols(); i++ {
		col := schema.Col(i)
		info.Columns = append(info.Columns, ColInfo{
			Name: col.Name,
			Type: col.Type.String(),
			Kind: col.Kind.String(),
		})
	}
	return info, nil
}

// List scans the data directory and describes every table file, loaded or
// not, sorted by name.
func (c *Catalog) List() ([]TableInfo, error) {
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var out []TableInfo
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), TableExt) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), TableExt)
		if !validName(name) {
			continue
		}
		info, err := c.Info(name)
		if err != nil {
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
