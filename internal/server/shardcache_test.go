package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/activity"
	"repro/internal/storage"
)

// The shard-aware result cache contract (ISSUE 4 satellite): cached results
// are keyed on the generation vector of the shards a query actually touches,
// so an append to one shard must stop invalidating cached queries that are
// confined — by pruning and delta relevance — to other shards.

// shardUser returns a user name hashing to the given shard of a 2-shard
// table.
func shardUser(t *testing.T, shard, salt int) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		u := fmt.Sprintf("user-%d-%d", salt, i)
		if storage.ShardOf(u, 2) == shard {
			return u
		}
	}
	t.Fatal("no user found for shard")
	return ""
}

// writeSplitFixture builds a 2-shard table whose birth actions are disjoint
// per shard: shard 0's users perform alpha-birth/alpha-age, shard 1's users
// beta-birth/beta-age — so a query over the alpha actions prunes shard 1
// entirely, and vice versa.
func writeSplitFixture(t *testing.T, dir, name string) {
	t.Helper()
	schema := activity.GameSchema()
	tbl := activity.NewTable(schema)
	for shard := 0; shard < 2; shard++ {
		birth, age := "alpha-birth", "alpha-age"
		if shard == 1 {
			birth, age = "beta-birth", "beta-age"
		}
		for u := 0; u < 12; u++ {
			user := shardUser(t, shard, u)
			base := int64(1_369_000_000 + u*1000)
			if err := tbl.Append(user, base, birth, "China", "Beijing", "mage", int64(1), int64(0)); err != nil {
				t.Fatal(err)
			}
			for k := 1; k <= 3; k++ {
				if err := tbl.Append(user, base+int64(k)*90_000, age, "China", "Beijing", "mage", int64(1), int64(k)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := tbl.SortByPK(); err != nil {
		t.Fatal(err)
	}
	sharded, err := storage.BuildSharded(tbl, 2, storage.Options{ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteShardedFile(filepath.Join(dir, name+TableExt), sharded); err != nil {
		t.Fatal(err)
	}
}

func TestAppendToOtherShardKeepsCacheWarm(t *testing.T) {
	dir := t.TempDir()
	writeSplitFixture(t, dir, "split")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 16})

	alphaQuery := `SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent
		FROM D BIRTH FROM action = "alpha-birth"
		AGE ACTIVITIES IN action = "alpha-age"
		COHORT BY country`

	resp1, body1, _ := postQuery(t, ts.URL, "split", alphaQuery)
	if got := resp1.Header.Get(cacheStatusHeader); got != "miss" {
		t.Fatalf("first alpha query: cache %q, want miss", got)
	}
	resp2, body2, _ := postQuery(t, ts.URL, "split", alphaQuery)
	if got := resp2.Header.Get(cacheStatusHeader); got != "hit" {
		t.Fatalf("repeat alpha query: cache %q, want hit", got)
	}
	if body1 != body2 {
		t.Fatal("cached body differs from computed body")
	}

	// Append a beta row — a user owned by shard 1, an action irrelevant to
	// the alpha query (not its birth action, fails its age condition).
	betaUser := shardUser(t, 1, 999)
	appendBody, err := json.Marshal(map[string]any{"rows": []map[string]any{{
		"player": betaUser, "time": 2_000_000_000, "action": "beta-birth",
		"country": "China", "city": "Beijing", "role": "mage", "session": 1, "gold": 0,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	aresp, err := http.Post(ts.URL+"/tables/split/append", "application/json", strings.NewReader(string(appendBody)))
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", aresp.StatusCode)
	}

	// The satellite's win: the alpha query's fingerprint excludes shard 1,
	// so the append did not disturb its cached entry.
	resp3, body3, _ := postQuery(t, ts.URL, "split", alphaQuery)
	if got := resp3.Header.Get(cacheStatusHeader); got != "hit" {
		t.Fatalf("alpha query after beta-shard append: cache %q, want hit (shard-aware key)", got)
	}
	if body3 != body1 {
		t.Fatal("alpha result changed after an irrelevant append")
	}

	// Correctness guard: an append the alpha query CAN see (its birth
	// action, a shard-0 user) must change the fingerprint — miss, and the
	// fresh result observes the new row.
	alphaUser := shardUser(t, 0, 777)
	appendBody2, err := json.Marshal(map[string]any{"rows": []map[string]any{{
		"player": alphaUser, "time": 2_000_000_100, "action": "alpha-birth",
		"country": "China", "city": "Beijing", "role": "mage", "session": 1, "gold": 0,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	aresp2, err := http.Post(ts.URL+"/tables/split/append", "application/json", strings.NewReader(string(appendBody2)))
	if err != nil {
		t.Fatal(err)
	}
	aresp2.Body.Close()
	if aresp2.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", aresp2.StatusCode)
	}
	resp4, _, qr := postQuery(t, ts.URL, "split", alphaQuery)
	if got := resp4.Header.Get(cacheStatusHeader); got != "miss" {
		t.Fatalf("alpha query after relevant append: cache %q, want miss", got)
	}
	size := 0
	for _, row := range qr.Rows {
		if int(row.Size) > size {
			size = int(row.Size)
		}
	}
	if size != 13 {
		t.Fatalf("post-append cohort size %d, want 13 (12 sealed births + 1 delta birth)", size)
	}
}
