package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// postJSON posts v and returns the status and body.
func postJSON(t *testing.T, url string, v any) (int, string) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// liveRows is a batch of fresh activity for a user no fixture contains, in a
// country no sealed dictionary holds, so freshness is unambiguous.
func liveRows(ts0 int64) []map[string]any {
	return []map[string]any{
		{"player": "live-1", "time": ts0, "action": "launch", "country": "Narnia", "city": "Cair", "role": "dwarf", "session": 3, "gold": 0},
		{"player": "live-1", "time": ts0 + 90000, "action": "shop", "country": "Narnia", "city": "Cair", "role": "dwarf", "session": 3, "gold": 55},
		{"player": "live-1", "time": ts0 + 180000, "action": "shop", "country": "Narnia", "city": "Cair", "role": "dwarf", "session": 4, "gold": 21},
	}
}

// TestLiveIngestFreshnessCompactionAndRestart is the acceptance scenario of
// the live-ingestion subsystem: rows appended to a served table are visible
// to queries before compaction, compaction preserves the results bit for
// bit, and a catalog reload after a simulated restart replays the journal
// with no lost rows.
func TestLiveIngestFreshnessCompactionAndRestart(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 4, CacheSize: 16, CompactRows: -1})

	// Baseline result without the live rows.
	resp0, body0, _ := postQuery(t, ts.URL, "game", fixtureQuery)
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("baseline query status %d", resp0.StatusCode)
	}

	// Append a batch; the acknowledgement reports the delta.
	status, ack := postJSON(t, ts.URL+"/tables/game/append", appendRequest{Rows: liveRows(1369000000)})
	if status != http.StatusOK {
		t.Fatalf("append status %d body %s", status, ack)
	}
	var ar appendResponse
	if err := json.Unmarshal([]byte(ack), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Appended != 3 || ar.DeltaRows != 3 {
		t.Fatalf("append response = %+v", ar)
	}

	// Freshness: the same query now reflects the appended rows (a miss —
	// the append invalidated the cache and bumped the generation).
	resp1, body1, _ := postQuery(t, ts.URL, "game", fixtureQuery)
	if resp1.Header.Get(cacheStatusHeader) != "miss" {
		t.Fatalf("post-append query was a cache %s", resp1.Header.Get(cacheStatusHeader))
	}
	if body1 == body0 {
		t.Fatal("appended rows not visible before compaction")
	}
	if !strings.Contains(body1, "Narnia") {
		t.Fatalf("fresh cohort missing from result: %s", body1)
	}

	// A duplicate append is rejected with 409 and admits nothing.
	status, _ = postJSON(t, ts.URL+"/tables/game/append", appendRequest{Rows: liveRows(1369000000)[:1]})
	if status != http.StatusConflict {
		t.Fatalf("duplicate append status %d, want 409", status)
	}

	// Compaction preserves results bit for bit.
	status, cbody := postJSON(t, ts.URL+"/tables/game/compact", nil)
	if status != http.StatusOK {
		t.Fatalf("compact status %d body %s", status, cbody)
	}
	var cr compactResponse
	if err := json.Unmarshal([]byte(cbody), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.DeltaRows != 0 || cr.Compactions != 1 {
		t.Fatalf("compact response = %+v", cr)
	}
	resp2, body2, _ := postQuery(t, ts.URL, "game", fixtureQuery)
	if resp2.Header.Get(cacheStatusHeader) != "miss" {
		t.Fatal("compaction did not invalidate the cached result")
	}
	if body2 != body1 {
		t.Fatalf("compaction changed the result:\nbefore: %s\nafter:  %s", body1, body2)
	}

	// The compacted table was persisted: the .cohana file now contains the
	// live rows, and the journal is empty.
	if fi, err := os.Stat(filepath.Join(dir, "game"+JournalExt)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after compaction: %v / %d bytes, want empty", err, fi.Size())
	}

	// More appends after compaction land in the journal...
	status, _ = postJSON(t, ts.URL+"/tables/game/append", appendRequest{Rows: []map[string]any{
		{"player": "live-2", "time": 1369000500, "action": "launch", "country": "Narnia", "city": "Cair", "role": "elf", "session": 1, "gold": 0},
		{"player": "live-2", "time": 1369090500, "action": "shop", "country": "Narnia", "city": "Cair", "role": "elf", "session": 1, "gold": 8},
	}})
	if status != http.StatusOK {
		t.Fatalf("second append status %d", status)
	}
	_, body3, _ := postQuery(t, ts.URL, "game", fixtureQuery)

	// ...and survive a simulated restart: a fresh catalog over the same
	// directory replays them with no lost rows.
	cat := NewCatalogWith(dir, CatalogConfig{CompactRows: -1})
	defer cat.Close()
	lt, _, _, err := cat.Get("game")
	if err != nil {
		t.Fatal(err)
	}
	st := lt.Stats()
	if st.ReplayedRows != 2 || st.DeltaRows != 2 || st.ReplayDroppedRows != 0 {
		t.Fatalf("replay after restart = %+v, want 2 replayed rows", st)
	}
	// The reloaded table answers the query identically to the live server.
	srv2 := New(Config{DataDir: dir, Workers: 2, CacheSize: 4, CompactRows: -1})
	defer srv2.Close()
	rec := newLocalRequest(t, srv2, "game", fixtureQuery)
	if rec != body3 {
		t.Fatalf("restarted server answers differently:\nwant: %s\ngot:  %s", body3, rec)
	}
}

// newLocalRequest runs one query through a Server without a listener.
func newLocalRequest(t *testing.T, s *Server, table, query string) string {
	t.Helper()
	body, err := json.Marshal(queryRequest{Table: table, Query: query})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	s.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		t.Fatalf("local query status %d body %s", rec.status, rec.body.String())
	}
	return rec.body.String()
}

// newRecorder is a minimal ResponseWriter for in-process requests.
type recorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newRecorder() *recorder               { return &recorder{header: make(http.Header), status: 200} }
func (r *recorder) Header() http.Header    { return r.header }
func (r *recorder) WriteHeader(status int) { r.status = status }
func (r *recorder) Write(p []byte) (int, error) {
	return r.body.Write(p)
}

func TestAppendValidationAndStats(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 4, CompactRows: -1})

	// Unknown table: 404.
	status, _ := postJSON(t, ts.URL+"/tables/nope/append", appendRequest{Rows: liveRows(1)})
	if status != http.StatusNotFound {
		t.Fatalf("unknown-table append status %d, want 404", status)
	}
	// Empty batch and malformed rows: 400.
	status, _ = postJSON(t, ts.URL+"/tables/game/append", appendRequest{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty append status %d, want 400", status)
	}
	status, body := postJSON(t, ts.URL+"/tables/game/append", appendRequest{Rows: []map[string]any{{"nope": 1}}})
	if status != http.StatusBadRequest || !strings.Contains(body, "nope") {
		t.Fatalf("bad-row append status %d body %s, want 400 naming the column", status, body)
	}
	// Structurally invalid rows that pass JSON parsing (empty user, NUL in
	// action) are client errors too, not 500s.
	for _, row := range []map[string]any{
		{"player": "", "time": 1, "action": "launch", "country": "c", "city": "x", "role": "r", "session": 1, "gold": 0},
		{"player": "p", "time": 1, "action": "laun\x00ch", "country": "c", "city": "x", "role": "r", "session": 1, "gold": 0},
	} {
		status, body := postJSON(t, ts.URL+"/tables/game/append", appendRequest{Rows: []map[string]any{row}})
		if status != http.StatusBadRequest {
			t.Fatalf("invalid row %v: status %d body %s, want 400", row, status, body)
		}
	}

	// A good append shows up in /stats.
	status, _ = postJSON(t, ts.URL+"/tables/game/append", appendRequest{Rows: liveRows(1369000000)})
	if status != http.StatusOK {
		t.Fatalf("append status %d", status)
	}
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		AppendBatches uint64       `json:"appendBatches"`
		Ingest        IngestTotals `json:"ingest"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if stats.AppendBatches != 1 || stats.Ingest.AppendedRows != 3 || stats.Ingest.DeltaRows != 3 {
		t.Fatalf("stats after append = %+v", stats)
	}

	// Table info reports the live delta.
	tr, err := http.Get(ts.URL + "/tables/game")
	if err != nil {
		t.Fatal(err)
	}
	var info TableInfo
	if err := json.NewDecoder(tr.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if info.DeltaRows != 3 || info.JournalBytes == 0 {
		t.Fatalf("table info after append = %+v", info)
	}
}

func TestCatalogRejectsCorruptTableFile(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	// A truncated table file and a non-COHANA file.
	good, err := os.ReadFile(filepath.Join(dir, "game.cohana"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trunc.cohana"), good[:len(good)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.cohana"), []byte("not a table"), 0o644); err != nil {
		t.Fatal(err)
	}

	cat := NewCatalog(dir)
	defer cat.Close()
	for _, name := range []string{"trunc", "junk"} {
		_, _, _, err := cat.Get(name)
		var corrupt ErrCorruptTable
		if !errors.As(err, &corrupt) {
			t.Fatalf("Get(%s) error = %v, want ErrCorruptTable", name, err)
		}
		if corrupt.File != name+TableExt {
			t.Fatalf("corrupt error names file %q, want %q", corrupt.File, name+TableExt)
		}
	}

	// Over HTTP: a clean JSON 500 naming the file, and the healthy table
	// still serves.
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 4})
	resp, body, _ := postQuery(t, ts.URL, "trunc", fixtureQuery)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt-table query status %d, want 500", resp.StatusCode)
	}
	var e errorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("corrupt-table error is not clean JSON: %q", body)
	}
	if !strings.Contains(e.Error, "trunc.cohana") {
		t.Fatalf("error %q does not name the file", e.Error)
	}
	if resp, _, _ := postQuery(t, ts.URL, "game", fixtureQuery); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy table failed next to a corrupt one: %d", resp.StatusCode)
	}
}
