package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/storage"
)

// writeFixture compresses a synthetic workload into dir/name.cohana and
// returns the table.
func writeFixture(t *testing.T, dir, name string) *storage.Table {
	t.Helper()
	tbl := gen.Generate(gen.Config{Users: 100, Days: 15, MeanActions: 15, Seed: 11})
	st, err := storage.Build(tbl, storage.Options{ChunkSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumChunks() < 4 {
		t.Fatalf("fixture has %d chunks, want >= 4 to exercise the fan-out", st.NumChunks())
	}
	if err := st.WriteFile(filepath.Join(dir, name+TableExt)); err != nil {
		t.Fatal(err)
	}
	return st
}

const fixtureQuery = `
	SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent, UserCount()
	FROM GameActions
	BIRTH FROM action = "launch"
	AGE ACTIVITIES IN action = "shop"
	COHORT BY country`

func newTestServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postQuery(t *testing.T, url, table, query string) (*http.Response, string, queryResponse) {
	t.Helper()
	body, err := json.Marshal(queryRequest{Table: table, Query: query})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatalf("unmarshaling response %q: %v", data, err)
		}
	}
	return resp, string(data), qr
}

func TestCatalogLazyLoadListAndReload(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	cat := NewCatalog(dir)
	defer cat.Close()

	// Listed but not loaded before first use.
	infos, err := cat.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "game" || infos[0].Loaded {
		t.Fatalf("fresh catalog list = %+v, want one unloaded 'game'", infos)
	}

	tbl, _, gen1, err := cat.Get("game")
	if err != nil {
		t.Fatal(err)
	}
	if gen1 != 1 || tbl.Stats().SealedRows == 0 {
		t.Fatalf("first load: gen=%d rows=%d", gen1, tbl.Stats().SealedRows)
	}
	// Shared, not re-read: same pointer and generation on the second Get.
	tbl2, _, gen2, err := cat.Get("game")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2 != tbl || gen2 != gen1 {
		t.Fatalf("second Get reloaded: gen %d -> %d, same pointer %v", gen1, gen2, tbl2 == tbl)
	}
	info, err := cat.Info("game")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || info.Rows != tbl.Stats().SealedRows || len(info.Columns) == 0 {
		t.Fatalf("info after load = %+v", info)
	}

	// Reload replaces the shared table and bumps the generation.
	tbl3, gen3, err := cat.Reload("game")
	if err != nil {
		t.Fatal(err)
	}
	if tbl3 == tbl || gen3 != gen1+1 {
		t.Fatalf("reload: gen %d -> %d, fresh pointer %v", gen1, gen3, tbl3 != tbl)
	}

	// Unknown and malicious names 404.
	if _, _, _, err := cat.Get("nope"); !errors.As(err, &ErrUnknownTable{}) {
		t.Fatalf("Get(nope) error = %v, want ErrUnknownTable", err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, _, _, err := cat.Get(bad); !errors.As(err, &ErrUnknownTable{}) {
			t.Errorf("Get(%q) error = %v, want ErrUnknownTable", bad, err)
		}
	}
}

func TestCatalogConcurrentFirstLoad(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	cat := NewCatalog(dir)
	defer cat.Close()
	var wg sync.WaitGroup
	tables := make([]*ingest.Table, 16)
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tbl, _, _, err := cat.Get("game")
			if err != nil {
				t.Error(err)
				return
			}
			tables[i] = tbl
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(tables); i++ {
		if tables[i] != tables[0] {
			t.Fatalf("concurrent first loads produced distinct tables (single-flight broken)")
		}
	}
}

func TestResultCacheLRUAndInvalidation(t *testing.T) {
	c := NewResultCache(2)
	c.Put("t", "g1", "q1", []byte("r1"))
	c.Put("t", "g1", "q2", []byte("r2"))
	if got, ok := c.Get("t", "g1", "q1"); !ok || string(got) != "r1" {
		t.Fatalf("Get(q1) = %q, %v", got, ok)
	}
	// q2 is now least recently used; adding q3 evicts it.
	c.Put("t", "g1", "q3", []byte("r3"))
	if _, ok := c.Get("t", "g1", "q2"); ok {
		t.Fatal("q2 survived eviction past capacity")
	}
	if _, ok := c.Get("t", "g1", "q1"); !ok {
		t.Fatal("recently used q1 was evicted")
	}
	// A new fingerprint misses even for the same query text.
	if _, ok := c.Get("t", "g2", "q1"); ok {
		t.Fatal("stale fingerprint served from cache")
	}
	if n := c.InvalidateTable("t"); n != 2 {
		t.Fatalf("InvalidateTable removed %d entries, want 2", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.Evictions != 1 {
		t.Fatalf("stats after invalidation = %+v", st)
	}

	off := NewResultCache(0)
	off.Put("t", "g1", "q", []byte("r"))
	if _, ok := off.Get("t", "g1", "q"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestNormalizeQueryPreservesLiterals(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  country \n FROM  t", "SELECT country FROM t"},
		{`BIRTH FROM country = "US  East"`, `BIRTH FROM country = "US  East"`},
		{"a = 'x\t y'  AND  b", "a = 'x\t y' AND b"},
		{`a = "he said \" hi  \" ok"`, `a = "he said \" hi  \" ok"`},
		{"  leading and trailing  ", "leading and trailing"},
		{`a = "unterminated   lit`, `a = "unterminated   lit`},
	}
	for _, c := range cases {
		if got := NormalizeQuery(c.in); got != c.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// The collision that must not happen: distinct literals stay distinct.
	a := NormalizeQuery(`... country = "US  East" ...`)
	b := NormalizeQuery(`... country = "US East" ...`)
	if a == b {
		t.Fatal("queries with different string literals normalized to one cache key")
	}
}

func TestCatalogUnknownNamesDoNotAccumulate(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	cat := NewCatalog(dir)
	defer cat.Close()
	for i := 0; i < 50; i++ {
		if _, _, _, err := cat.Get(fmt.Sprintf("ghost-%d", i)); err == nil {
			t.Fatal("Get of a nonexistent table succeeded")
		}
	}
	if _, _, _, err := cat.Get("game"); err != nil {
		t.Fatal(err)
	}
	cat.mu.Lock()
	n := len(cat.entries)
	cat.mu.Unlock()
	if n != 1 {
		t.Fatalf("catalog holds %d entries after 50 unknown-table lookups, want 1", n)
	}
}

func TestQueryEndpoint(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 4, CacheSize: 16})

	resp, _, qr := postQuery(t, ts.URL, "game", fixtureQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(cacheStatusHeader) != "miss" {
		t.Fatalf("first query cache header = %q, want miss", resp.Header.Get(cacheStatusHeader))
	}
	if qr.NumRows == 0 || len(qr.Rows) != qr.NumRows {
		t.Fatalf("response rows = %d (numRows %d)", len(qr.Rows), qr.NumRows)
	}
	if len(qr.KeyCols) != 1 || qr.KeyCols[0] != "country" || len(qr.AggNames) != 2 {
		t.Fatalf("response header cols = %v / %v", qr.KeyCols, qr.AggNames)
	}
	for _, row := range qr.Rows {
		if row.Size <= 0 || row.Age <= 0 || len(row.Aggs) != 2 {
			t.Fatalf("malformed row %+v", row)
		}
	}
}

func TestQueryEndpointMixed(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 16})

	mixed := `WITH cohorts AS (` + fixtureQuery + `)
		SELECT country, AGE, spent FROM cohorts ORDER BY spent DESC LIMIT 5`
	resp, _, qr := postQuery(t, ts.URL, "game", mixed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if qr.Mixed == nil || len(qr.Mixed.Rows) == 0 || len(qr.Mixed.Rows) > 5 {
		t.Fatalf("mixed response = %+v", qr.Mixed)
	}
	if len(qr.Mixed.Cols) != 3 {
		t.Fatalf("mixed cols = %v, want 3", qr.Mixed.Cols)
	}
}

// TestConcurrentQueries is the acceptance scenario: many concurrent POST
// /query requests against one fixture table through a small shared pool,
// race-detector clean, with every response identical.
func TestConcurrentQueries(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 3, CacheSize: 0}) // cache off: every request executes

	const concurrent = 12
	bodies := make([]string, concurrent)
	statuses := make([]int, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(queryRequest{Table: "game", Query: fixtureQuery})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			statuses[i] = resp.StatusCode
			bodies[i] = string(data)
		}(i)
	}
	wg.Wait()
	for i := 0; i < concurrent; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, statuses[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d returned a different result than request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
}

func TestCacheHitAndReloadInvalidation(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	s, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 16})

	resp1, body1, _ := postQuery(t, ts.URL, "game", fixtureQuery)
	if got := resp1.Header.Get(cacheStatusHeader); got != "miss" {
		t.Fatalf("first query: cache %q, want miss", got)
	}
	// Same query with different whitespace: normalization makes it a hit.
	resp2, body2, _ := postQuery(t, ts.URL, "game", NormalizeQuery(fixtureQuery))
	if got := resp2.Header.Get(cacheStatusHeader); got != "hit" {
		t.Fatalf("repeat query: cache %q, want hit", got)
	}
	if body1 != body2 {
		t.Fatal("cached response differs from computed response")
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats after hit = %+v", st)
	}

	// Reload drops the entry; the same query misses and recomputes.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/tables/game/reload", nil)
	if err != nil {
		t.Fatal(err)
	}
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var reload struct {
		Invalidated int `json:"invalidatedCacheEntries"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&reload); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || reload.Invalidated != 1 {
		t.Fatalf("reload: status %d invalidated %d, want 200/1", rresp.StatusCode, reload.Invalidated)
	}
	resp3, body3, _ := postQuery(t, ts.URL, "game", fixtureQuery)
	if got := resp3.Header.Get(cacheStatusHeader); got != "miss" {
		t.Fatalf("post-reload query: cache %q, want miss", got)
	}
	if body1 != body3 {
		t.Fatal("reloaded table produced a different result for the same data")
	}
}

func TestTableEndpointsAndErrors(t *testing.T) {
	dir := t.TempDir()
	st := writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 4})

	// Health.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}

	// GET /tables/{name} loads and reports stats.
	tr, err := http.Get(ts.URL + "/tables/game")
	if err != nil {
		t.Fatal(err)
	}
	var info TableInfo
	if err := json.NewDecoder(tr.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if !info.Loaded || info.Rows != st.NumRows() || info.Chunks != st.NumChunks() {
		t.Fatalf("table info = %+v, want rows=%d chunks=%d", info, st.NumRows(), st.NumChunks())
	}

	// GET /tables reflects the load.
	lr, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Tables []TableInfo `json:"tables"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(listing.Tables) != 1 || !listing.Tables[0].Loaded {
		t.Fatalf("tables listing = %+v", listing.Tables)
	}

	// Unknown table: 404 on query and info.
	resp, _, _ := postQuery(t, ts.URL, "nope", fixtureQuery)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-table query status %d, want 404", resp.StatusCode)
	}
	nr, err := http.Get(ts.URL + "/tables/nope")
	if err != nil {
		t.Fatal(err)
	}
	nr.Body.Close()
	if nr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-table info status %d, want 404", nr.StatusCode)
	}

	// Malformed query text: 400.
	resp, _, _ = postQuery(t, ts.URL, "game", "SELECT FROM WHERE")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status %d, want 400", resp.StatusCode)
	}

	// Missing fields: 400.
	resp, _, _ = postQuery(t, ts.URL, "", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request status %d, want 400", resp.StatusCode)
	}
}
