package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// exposition is a parsed /metrics scrape: per-family metadata plus every
// sample keyed by its full series name (including labels).
type exposition struct {
	help    map[string]string
	types   map[string]string
	samples map[string]float64
	order   []string // sample series in scrape order
}

func scrapeMetrics(t *testing.T, url string) *exposition {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	exp := &exposition{
		help:    make(map[string]string),
		types:   make(map[string]string),
		samples: make(map[string]float64),
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if meta, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, _ := strings.Cut(meta, " ")
			exp.help[name] = text
			continue
		}
		if meta, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(meta, " ")
			exp.types[name] = kind
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		series, valText := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("unparseable value in line %q: %v", line, err)
		}
		if _, dup := exp.samples[series]; dup {
			t.Fatalf("duplicate series %q", series)
		}
		exp.samples[series] = v
		exp.order = append(exp.order, series)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return exp
}

// family maps a sample series to its metric family name.
func family(series string) string {
	name := series
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			return base
		}
	}
	return name
}

// TestMetricsEndToEnd drives a full query + append + compact cycle against a
// live server and verifies the /metrics exposition: parseable 0.0.4 text,
// HELP and TYPE on every family, cumulative le-ordered histogram buckets,
// monotone counters across the cycle, and the core engine metrics present.
func TestMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 8})

	before := scrapeMetrics(t, ts.URL)

	// One query executed, one result-cache hit, one append, one compaction.
	body, err := json.Marshal(queryRequest{Table: "game", Query: fixtureQuery})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}
	appendBody := []byte(`{"rows": [{"player": "metrics-user", "time": 1369000000, "action": "launch", "country": "Narnia", "city": "Cair", "role": "dwarf", "session": 1, "gold": 0}]}`)
	resp, err := http.Post(ts.URL+"/v1/tables/game/append", "application/json", bytes.NewReader(appendBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/tables/game/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d", resp.StatusCode)
	}

	after := scrapeMetrics(t, ts.URL)

	// Every family carries HELP and TYPE; every sample belongs to a family.
	for name := range after.types {
		if after.help[name] == "" {
			t.Errorf("family %s has no HELP", name)
		}
	}
	for _, series := range after.order {
		fam := family(series)
		if after.types[fam] == "" {
			t.Errorf("sample %s belongs to no TYPE-declared family", series)
		}
	}

	// Histogram buckets: le ascending, counts cumulative, +Inf == _count.
	type bucket struct {
		le    float64
		count float64
	}
	buckets := make(map[string][]bucket)
	for _, series := range after.order {
		name, rest, ok := strings.Cut(series, "_bucket{le=\"")
		if !ok {
			continue
		}
		leText := strings.TrimSuffix(rest, "\"}")
		le, err := strconv.ParseFloat(leText, 64)
		if leText == "+Inf" {
			le, err = math.Inf(1), nil
		}
		if err != nil {
			t.Fatalf("unparseable le in %q: %v", series, err)
		}
		buckets[name] = append(buckets[name], bucket{le: le, count: after.samples[series]})
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for name, bs := range buckets {
		if after.types[name] != "histogram" {
			t.Errorf("%s has buckets but TYPE %q", name, after.types[name])
		}
		for i := 1; i < len(bs); i++ {
			if !(bs[i].le > bs[i-1].le) {
				t.Errorf("%s buckets not le-ordered: %v then %v", name, bs[i-1].le, bs[i].le)
			}
			if bs[i].count < bs[i-1].count {
				t.Errorf("%s buckets not cumulative: le=%v count=%v then le=%v count=%v",
					name, bs[i-1].le, bs[i-1].count, bs[i].le, bs[i].count)
			}
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			t.Errorf("%s last bucket le=%v, want +Inf", name, last.le)
		}
		if count := after.samples[name+"_count"]; last.count != count {
			t.Errorf("%s +Inf bucket %v != _count %v", name, last.count, count)
		}
	}

	// Counters are monotone across the cycle.
	for _, series := range after.order {
		fam := family(series)
		if after.types[fam] != "counter" {
			continue
		}
		if prev, ok := before.samples[series]; ok && after.samples[series] < prev {
			t.Errorf("counter %s went backwards: %v -> %v", series, prev, after.samples[series])
		}
	}

	// The cycle moved its counters. obs.Default is shared across the test
	// binary, so assert deltas against the pre-cycle scrape, not absolutes.
	delta := func(series string) float64 { return after.samples[series] - before.samples[series] }
	for series, min := range map[string]float64{
		"cohana_queries_total":           1, // second query hit the result cache
		"cohana_result_cache_hits_total": 1,
		"cohana_append_batches_total":    1,
		"cohana_append_rows_total":       1,
		"cohana_compactions_total":       1,
		"cohana_query_seconds_count":     1,
		"cohana_append_seconds_count":    1,
		"cohana_compact_seconds_count":   1,
		"cohana_rows_scanned_total":      1,
		"cohana_chunks_scanned_total":    1,
		"cohana_plan_cache_misses_total": 1,
		"cohana_http_requests_total":     4,
	} {
		if d := delta(series); d < min {
			t.Errorf("%s advanced by %v over the cycle, want >= %v", series, d, min)
		}
	}

	// Core families the scrape must expose (the CI smoke contract), including
	// per-table gauges refreshed from the catalog at scrape time.
	for _, name := range []string{
		"cohana_query_seconds", "cohana_append_seconds", "cohana_compact_seconds",
		"cohana_journal_fsync_seconds",
		"cohana_chunks_rebuilt_total", "cohana_chunks_reused_total",
		"cohana_result_cache_hits_total", "cohana_result_cache_misses_total",
		"cohana_plan_cache_hits_total", "cohana_plan_cache_misses_total",
		"cohana_table_shards", "cohana_table_generation",
	} {
		if _, ok := after.types[name]; !ok {
			t.Errorf("core metric family %s missing from exposition", name)
		}
	}
	for _, series := range []string{
		`cohana_table_shards{table="game"}`,
		`cohana_table_generation{table="game"}`,
		`cohana_table_sealed_rows{table="game"}`,
	} {
		if _, ok := after.samples[series]; !ok {
			t.Errorf("per-table gauge %s missing from exposition", series)
		}
	}
	if gen := after.samples[`cohana_table_generation{table="game"}`]; gen < 2 {
		t.Errorf("table generation gauge %v after append+compact, want >= 2", gen)
	}
}

// TestTracedQueryReturnsSpanTree checks the `"trace": true` query contract:
// the response carries the measured span tree (same shape EXPLAIN ANALYZE
// renders), and traced requests bypass the result cache.
func TestTracedQueryReturnsSpanTree(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2, CacheSize: 8})

	post := func(req queryRequest) (*http.Response, queryResponse) {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return resp, qr
	}

	// Prime the result cache, then show the traced request bypasses it.
	if resp, _ := post(queryRequest{Table: "game", Query: fixtureQuery}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: status %d", resp.StatusCode)
	}
	resp, qr := post(queryRequest{Table: "game", Query: fixtureQuery, Trace: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(cacheStatusHeader); got != "bypass" {
		t.Errorf("traced query cache status %q, want bypass", got)
	}
	if qr.Trace == nil {
		t.Fatal("traced query returned no trace")
	}
	if qr.NumRows == 0 || len(qr.Rows) == 0 {
		t.Fatal("traced query returned no rows")
	}
	if qr.Trace.Name != "query" || qr.Trace.DurNs <= 0 {
		t.Errorf("root span = %q dur=%d, want name query with positive duration", qr.Trace.Name, qr.Trace.DurNs)
	}
	childNames := make(map[string]bool)
	for _, c := range qr.Trace.Children {
		childNames[c.Name] = true
	}
	for _, want := range []string{"prepare", "shard 0"} {
		if !childNames[want] {
			t.Errorf("trace missing child span %q (children: %v)", want, childNames)
		}
	}
	sh := qr.Trace.Find("shard 0")
	if sh.Int("rows_scanned") <= 0 {
		t.Errorf("shard span rows_scanned = %d, want > 0", sh.Int("rows_scanned"))
	}

	// An untraced repeat of the same query hits the cache again — the traced
	// execution did not overwrite or pollute the cached body.
	resp, qr = post(queryRequest{Table: "game", Query: fixtureQuery})
	if got := resp.Header.Get(cacheStatusHeader); got != "hit" {
		t.Errorf("post-trace query cache status %q, want hit", got)
	}
	if qr.Trace != nil {
		t.Error("untraced query returned a trace")
	}

	// EXPLAIN ANALYZE over HTTP renders the same span names the trace carries.
	resp, qr = post(queryRequest{Table: "game", Query: "EXPLAIN ANALYZE " + fixtureQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain analyze: status %d", resp.StatusCode)
	}
	if qr.Explain == "" {
		t.Fatal("EXPLAIN ANALYZE over HTTP returned no explain text")
	}
	for _, want := range []string{"Execution (EXPLAIN ANALYZE, measured):", "prepare:", "shard 0:"} {
		if !strings.Contains(qr.Explain, want) {
			t.Errorf("EXPLAIN ANALYZE text missing %q:\n%s", want, qr.Explain)
		}
	}

	// Plain EXPLAIN works over HTTP too, without executing.
	resp, qr = post(queryRequest{Table: "game", Query: "EXPLAIN " + fixtureQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d", resp.StatusCode)
	}
	if qr.Explain == "" || strings.Contains(qr.Explain, "measured") {
		t.Errorf("plain EXPLAIN text wrong:\n%s", qr.Explain)
	}
}

// TestRequestIDMiddleware pins the request-ID contract: generated when
// absent, echoed when supplied.
func TestRequestIDMiddleware(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "game")
	_, ts := newTestServer(t, dir, Config{Workers: 2})

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(requestIDHeader); len(id) != 16 {
		t.Errorf("generated request ID %q, want 16 hex chars", id)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(requestIDHeader, "caller-chosen-id")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get(requestIDHeader); id != "caller-chosen-id" {
		t.Errorf("request ID not echoed: got %q", id)
	}
}
