package server

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/parser"
)

// ResultCache is a bounded LRU over rendered query responses. Entries are
// keyed by (table, shard fingerprint, normalized query text). The
// fingerprint (cohana.Snapshot.Fingerprint) is the generation vector of the
// shards the query could actually read — not the table-level generation sum —
// so an append to one shard leaves cached results of queries that never
// touch that shard servable, and a changed shard can never serve a stale
// body (its generation is embedded in the key). Entries whose fingerprints
// no longer occur age out through the LRU; reloads drop a table's entries
// eagerly via InvalidateTable.
//
// Values are the marshaled JSON response bodies rather than live *Result
// trees: a cached body is immutable by construction and is written straight
// to the socket on a hit.
type ResultCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[cacheKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheKey struct {
	table string
	fp    string
	query string
}

type cacheItem struct {
	key  cacheKey
	body []byte
}

// NormalizeQuery collapses whitespace outside string literals so formatting
// differences (newlines, indentation) share one cache entry. It is the
// shared normalizer (parser.Normalize) that the compiled-plan cache keys on
// too, so the two caches agree on which query texts are "the same query".
func NormalizeQuery(src string) string { return parser.Normalize(src) }

// NewResultCache holds at most capacity entries; capacity <= 0 disables
// caching (every Get misses, Put is a no-op).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached response body for the key, marking it most
// recently used.
func (c *ResultCache) Get(table, fp, normQuery string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cacheKey{table, fp, normQuery}]
	if !ok {
		c.misses++
		obs.ResultCacheMissesTotal.Inc()
		return nil, false
	}
	c.hits++
	obs.ResultCacheHitsTotal.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).body, true
}

// Put stores a response body, evicting the least recently used entry when
// over capacity.
func (c *ResultCache) Put(table, fp, normQuery string, body []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{table, fp, normQuery}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, body: body})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
		c.evictions++
	}
}

// InvalidateTable drops every entry of the table, across all fingerprints,
// and reports how many were removed. Called on table reload.
func (c *ResultCache) InvalidateTable(table string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		item := el.Value.(*cacheItem)
		if item.key.table == table {
			c.ll.Remove(el)
			delete(c.items, item.key)
			n++
		}
	}
	return n
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
