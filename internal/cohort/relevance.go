package cohort

import (
	"repro/internal/activity"
	"repro/internal/expr"
)

// DeltaRelevant reports whether any row of a shard's delta could affect the
// result of q. It is the delta-side half of the shard-relevance analysis the
// result cache keys on: a shard whose sealed chunks all prune AND whose delta
// is irrelevant contributes nothing to the query, so its generation can be
// left out of the cache key and appends to it stop invalidating the cached
// result.
//
// The analysis is conservative — any doubt answers true (relevant) — but
// exact on the common shapes:
//
//   - a row performing the birth action is always relevant: even one failing
//     the birth condition can shift which tuple is a user's birth tuple;
//   - otherwise a row matters only if it can pass the age selection σg. With
//     no age condition every row of a born user aggregates, so any row is
//     (conservatively) relevant. A condition referencing AGE or Birth()
//     cannot be decided without knowing the user's birth tuple — relevant.
//     A plain row-local condition (the common `action = "shop"` shape) is
//     evaluated directly per row.
//
// actionSet, when non-nil, is the delta's precomputed distinct-action set
// (ingest.View.DeltaActions), making the birth-action check — the common
// short-circuit — O(1) per query instead of a delta scan. The remaining
// per-row predicate scan only runs for queries whose delta holds no birth
// row, and is strictly cheaper than the union execution a cache miss would
// pay.
func DeltaRelevant(q *Query, schema *activity.Schema, delta *activity.Table, actionSet map[string]struct{}) bool {
	if delta == nil || delta.Len() == 0 {
		return false
	}
	if actionSet != nil {
		if _, ok := actionSet[q.BirthAction]; ok {
			return true
		}
	} else {
		for _, a := range delta.Strings(schema.ActionCol()) {
			if a == q.BirthAction {
				return true
			}
		}
	}
	if q.AgeCond == nil {
		return true
	}
	if expr.UsesAge(q.AgeCond) || expr.UsesBirth(q.AgeCond) {
		return true
	}
	pred, err := expr.Compile(q.AgeCond, schema)
	if err != nil {
		return true
	}
	env := &rowEnv{t: delta, schema: schema}
	for r := 0; r < delta.Len(); r++ {
		env.row, env.birth = r, r
		if pred(env) {
			return true
		}
	}
	return false
}
