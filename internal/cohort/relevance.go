package cohort

import (
	"repro/internal/activity"
	"repro/internal/expr"
)

// DeltaRelevant reports whether any row of a shard's delta could affect the
// result of q. It is the delta-side half of the shard-relevance analysis the
// result cache keys on: a shard whose sealed chunks all prune AND whose delta
// is irrelevant contributes nothing to the query, so its generation can be
// left out of the cache key and appends to it stop invalidating the cached
// result.
//
// The analysis is conservative — any doubt answers true (relevant) — and
// exact on these shapes:
//
//   - a row performing the birth action is always relevant: even one failing
//     the birth condition can shift which tuple is a user's birth tuple;
//   - otherwise a delta row matters only if its user is born and the row
//     passes the age selection σg. With union non-nil (the ingest layer's
//     cached BuildUnionDelta result for exactly this delta), both are decided
//     exactly per row: union.Births gives each user's birth tuple, so the
//     row's AGE and its Birth() attributes are known, and a row predating its
//     user's birth (age <= 0) never aggregates. Only when the precomputed
//     union is unavailable does the analysis fall back to answering true for
//     conditions it cannot evaluate row-locally.
//
// actionSet, when non-nil, is the delta's precomputed distinct-action set
// (ingest.View.DeltaActions), making the birth-action check — the common
// short-circuit — O(1) per query instead of a delta scan. The per-row scans
// below only run for queries whose delta holds no birth row, and are strictly
// cheaper than the union execution a cache miss would pay.
func DeltaRelevant(q *Query, schema *activity.Schema, delta *activity.Table, actionSet map[string]struct{}, union *UnionDelta) bool {
	if delta == nil || delta.Len() == 0 {
		return false
	}
	if actionSet != nil {
		if _, ok := actionSet[q.BirthAction]; ok {
			return true
		}
	} else {
		for _, a := range delta.Strings(schema.ActionCol()) {
			if a == q.BirthAction {
				return true
			}
		}
	}
	if union != nil && union.Births != nil {
		return deltaRelevantExact(q, schema, delta, union)
	}
	if q.AgeCond == nil {
		return true
	}
	if expr.UsesAge(q.AgeCond) || expr.UsesBirth(q.AgeCond) {
		return true
	}
	pred, err := expr.Compile(q.AgeCond, schema)
	if err != nil {
		return true
	}
	env := &rowEnv{t: delta, schema: schema}
	for r := 0; r < delta.Len(); r++ {
		env.row, env.birth = r, r
		if pred(env) {
			return true
		}
	}
	return false
}

// deltaRelevantExact decides relevance exactly using the precomputed union:
// no delta row performs the birth action (checked by the caller), so a user's
// birth tuple is already in union.Combined, and a delta row affects the
// result iff its user is born, passes σb, and the row itself has age > 0 and
// passes σg.
func deltaRelevantExact(q *Query, schema *activity.Schema, delta *activity.Table, union *UnionDelta) bool {
	var birthPred, agePred expr.Pred
	var err error
	if q.BirthCond != nil {
		if birthPred, err = expr.Compile(q.BirthCond, schema); err != nil {
			return true
		}
	}
	if q.AgeCond != nil {
		if agePred, err = expr.Compile(q.AgeCond, schema); err != nil {
			return true
		}
	}
	times := delta.Ints(schema.TimeCol())
	combinedTimes := union.Combined.Ints(schema.TimeCol())
	env := &unionEnv{delta: delta, combined: union.Combined, schema: schema}
	relevant := false
	delta.UserBlocks(func(user string, start, end int) {
		if relevant {
			return
		}
		birthRow, born := union.Births[user][q.BirthAction]
		if !born {
			return // user never performs the birth action: contributes nothing
		}
		env.birth = birthRow
		if birthPred != nil {
			env.onBirth = true
			ok := birthPred(env)
			env.onBirth = false
			if !ok {
				return // σb rejects the user: none of its rows aggregate
			}
		}
		birthTime := combinedTimes[birthRow]
		for r := start; r < end; r++ {
			age := AgeOf(times[r], birthTime, q.AgeUnit)
			if age <= 0 {
				continue // pre-birth rows never aggregate
			}
			if agePred == nil {
				relevant = true
				return
			}
			env.row, env.age = r, age
			if agePred(env) {
				relevant = true
				return
			}
		}
	})
	return relevant
}

// unionEnv evaluates predicates over a delta row whose user's birth tuple
// lives in the combined (sealed ∪ delta) table: Col reads the delta row,
// BirthCol the combined birth row. With onBirth set it evaluates the birth
// predicate on the birth tuple itself (age 0), mirroring runChunk's σb.
type unionEnv struct {
	delta    *activity.Table
	combined *activity.Table
	schema   *activity.Schema
	row      int // current row, in delta
	birth    int // birth row, in combined
	age      int64
	onBirth  bool
}

func tableValue(t *activity.Table, schema *activity.Schema, idx, row int) expr.Value {
	if schema.IsStringCol(idx) {
		return expr.S(t.Strings(idx)[row])
	}
	return expr.I(t.Ints(idx)[row])
}

func (e *unionEnv) Col(idx int) expr.Value {
	if e.onBirth {
		return tableValue(e.combined, e.schema, idx, e.birth)
	}
	return tableValue(e.delta, e.schema, idx, e.row)
}

func (e *unionEnv) BirthCol(idx int) expr.Value {
	return tableValue(e.combined, e.schema, idx, e.birth)
}

func (e *unionEnv) Age() int64 {
	if e.onBirth {
		return 0
	}
	return e.age
}
