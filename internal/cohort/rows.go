package cohort

import (
	"encoding/binary"
	"fmt"

	"repro/internal/activity"
	"repro/internal/expr"
)

// RowQuery is a cohort query compiled against a schema rather than a sealed
// table: the row-scan twin of Compiled, used to aggregate the uncompressed
// delta tier of a live table. It runs the same σb → σg → γc pipeline over a
// sorted activity table and folds into the same Accumulator, producing keys
// and display values byte-identical to the chunked path so partials from the
// two tiers merge into one result.
type RowQuery struct {
	Query  *Query
	schema *activity.Schema

	birthPred expr.Pred // nil when no σb condition
	agePred   expr.Pred // nil when no σg condition

	keys []keySpec
	aggs []boundAgg
	unit Unit
}

// CompileRows validates and binds q against schema for row-scan execution.
func CompileRows(q *Query, schema *activity.Schema) (*RowQuery, error) {
	if err := q.Validate(schema); err != nil {
		return nil, err
	}
	rq := &RowQuery{Query: q, schema: schema, unit: q.AgeUnit}
	var err error
	if q.BirthCond != nil {
		if rq.birthPred, err = expr.Compile(q.BirthCond, schema); err != nil {
			return nil, err
		}
	}
	if q.AgeCond != nil {
		if rq.agePred, err = expr.Compile(q.AgeCond, schema); err != nil {
			return nil, err
		}
	}
	rq.keys, rq.aggs = bindQuery(q, schema)
	return rq, nil
}

// rowEnv adapts one activity-table position to the expr.Env interface.
type rowEnv struct {
	t      *activity.Table
	schema *activity.Schema
	row    int
	birth  int
	age    int64
}

func (e *rowEnv) value(idx, row int) expr.Value {
	if e.schema.IsStringCol(idx) {
		return expr.S(e.t.Strings(idx)[row])
	}
	return expr.I(e.t.Ints(idx)[row])
}

func (e *rowEnv) Col(idx int) expr.Value      { return e.value(idx, e.row) }
func (e *rowEnv) BirthCol(idx int) expr.Value { return e.value(idx, e.birth) }
func (e *rowEnv) Age() int64                  { return e.age }

// Scan aggregates t — which must be sorted by (Au, At, Ae) — into acc,
// mirroring Compiled.runChunk block by block. Any semantic change to the
// per-block loop here must land in runChunk too (and vice versa); the union
// equivalence test (internal/plan/union_test.go) pins the two paths to
// identical results across key types and aggregate functions.
func (rq *RowQuery) Scan(t *activity.Table, acc *Accumulator) {
	if t == nil || t.Len() == 0 {
		return
	}
	schema := rq.schema
	actions := t.Strings(schema.ActionCol())
	times := t.Ints(schema.TimeCol())
	env := &rowEnv{t: t, schema: schema}
	var keyBuf []byte
	t.UserBlocks(func(_ string, start, end int) {
		// GetBirthTuple: first tuple of the block performing the birth
		// action (time-ordering property).
		birthRow := -1
		for r := start; r < end; r++ {
			if actions[r] == rq.Query.BirthAction {
				birthRow = r
				break
			}
		}
		if birthRow < 0 {
			return
		}
		env.birth = birthRow
		if rq.birthPred != nil {
			env.row = birthRow
			env.age = 0
			if !rq.birthPred(env) {
				return
			}
		}
		birthTime := times[birthRow]
		keyBuf = rq.appendKey(keyBuf[:0], t, birthRow, birthTime)
		cs := acc.cohort(string(keyBuf), func() []string { return rq.displayKey(t, birthRow, birthTime) })
		cs.size++
		lastCountedAge := int64(-1)
		for row := start; row < end; row++ {
			age := AgeOf(times[row], birthTime, rq.unit)
			if age <= 0 {
				continue
			}
			if rq.agePred != nil {
				env.row = row
				env.age = age
				if !rq.agePred(env) {
					continue
				}
			}
			b := cs.bucket(age, len(rq.aggs))
			for k, agg := range rq.aggs {
				st := &b.states[k]
				switch agg.fn {
				case Count:
					st.cnt++
				case UserCount:
					if age != lastCountedAge {
						st.users++
					}
				default:
					v := t.Ints(agg.col)[row]
					st.sum += float64(v)
					st.cnt++
					if !st.has {
						st.min, st.max, st.has = v, v, true
					} else {
						if v < st.min {
							st.min = v
						}
						if v > st.max {
							st.max = v
						}
					}
				}
			}
			if age != lastCountedAge {
				lastCountedAge = age
			}
		}
	})
}

// appendKey encodes the cohort key of the user born at birthRow, matching
// Compiled.appendKey byte for byte.
func (rq *RowQuery) appendKey(dst []byte, t *activity.Table, birthRow int, birthTime int64) []byte {
	for _, k := range rq.keys {
		switch {
		case k.isTime:
			dst = binary.AppendVarint(dst, TimeBinStart(birthTime, k.bin))
		case k.isString:
			dst = appendStringKey(dst, t.Strings(k.col)[birthRow])
		default:
			dst = binary.AppendVarint(dst, t.Ints(k.col)[birthRow])
		}
	}
	return dst
}

// displayKey renders the cohort key attributes, matching Compiled.displayKey.
func (rq *RowQuery) displayKey(t *activity.Table, birthRow int, birthTime int64) []string {
	out := make([]string, len(rq.keys))
	for i, k := range rq.keys {
		switch {
		case k.isTime:
			out[i] = FormatTimeBin(TimeBinStart(birthTime, k.bin))
		case k.isString:
			out[i] = t.Strings(k.col)[birthRow]
		default:
			out[i] = fmt.Sprintf("%d", t.Ints(k.col)[birthRow])
		}
	}
	return out
}

// KeyColNames returns the display names of the cohort attributes.
func (rq *RowQuery) KeyColNames() []string {
	out := make([]string, len(rq.Query.CohortBy))
	for i, k := range rq.Query.CohortBy {
		out[i] = k.Col
	}
	return out
}
