package cohort

import (
	"fmt"

	"repro/internal/activity"
	"repro/internal/obs"
	"repro/internal/storage"
)

// This file is the union execution path for live tables: a query runs over
// the sealed compressed tier through the pruned parallel chunk executor and
// over the in-memory delta tier through the row-scan executor, and the
// partial accumulators merge into one always-fresh result.
//
// Correct merging hinges on the clustering property: a user's tuples must be
// aggregated by exactly one path. Users with delta tuples may also have
// sealed tuples (an existing user kept playing), so their sealed blocks are
// materialized, combined with their delta tuples, and handed to the row path,
// while the chunk path skips them (RunOptions.SkipUsers). Every other sealed
// user stays on the fast compressed path untouched.

// UnionDelta is the precomputed row-scan input of the union path: the delta
// rows combined with the sealed blocks of every delta user, and the sealed
// user gids the chunk path must skip. It depends only on (sealed, delta), so
// the ingest layer builds it once per table change and shares it across all
// queries of that generation instead of re-materializing the overlap users'
// sealed blocks per query.
type UnionDelta struct {
	Combined  *activity.Table
	SkipUsers map[uint64]bool
	// Births indexes, per user of Combined, the first row performing each
	// action — the birth tuple of that user for any birth action, by the
	// time-ordering property. DeltaRelevant uses it to decide AGE- and
	// Birth()-referencing conditions exactly: a delta row's age and birth
	// attributes are known without re-running the union, so the relevance
	// analysis (and hence the result-cache fingerprint) no longer has to
	// answer "relevant" for every such query.
	Births map[string]map[string]int
}

// BuildUnionDelta combines delta — a sorted uncompressed activity table
// sharing tbl's schema — with the sealed blocks of its users, located via
// the table's sorted user ranges (Table.FindUser), so no side index is
// needed and lazy tables only load the chunks owning delta users.
func BuildUnionDelta(tbl *storage.Table, delta *activity.Table) (*UnionDelta, error) {
	if !delta.Sorted() {
		return nil, fmt.Errorf("cohort: delta tier must be sorted by primary key")
	}
	schema := tbl.Schema()
	combined := activity.NewTable(schema)
	skip := make(map[uint64]bool)
	strs := make([]string, schema.NumCols())
	ints := make([]int64, schema.NumCols())
	var buildErr error
	delta.UserBlocks(func(user string, start, end int) {
		if buildErr != nil {
			return
		}
		gid, loc, ok, err := tbl.FindUser(user)
		if err != nil {
			buildErr = err
			return
		}
		if ok {
			skip[gid] = true
			if err := tbl.AppendUserRows(combined, loc); err != nil {
				buildErr = err
				return
			}
		}
		for r := start; r < end; r++ {
			for c := 0; c < schema.NumCols(); c++ {
				if schema.IsStringCol(c) {
					strs[c] = delta.Strings(c)[r]
				} else {
					ints[c] = delta.Ints(c)[r]
				}
			}
			combined.AppendRow(strs, ints)
		}
	})
	if buildErr != nil {
		return nil, buildErr
	}
	// Delta tuples may predate a user's sealed tuples (late-arriving
	// events), so re-establish the (Au, At, Ae) order across both tiers.
	if err := combined.SortByPK(); err != nil {
		return nil, fmt.Errorf("cohort: sealed and delta tiers conflict: %w", err)
	}
	births := make(map[string]map[string]int)
	actions := combined.Strings(schema.ActionCol())
	combined.UserBlocks(func(user string, start, end int) {
		m := make(map[string]int)
		for r := start; r < end; r++ {
			if _, seen := m[actions[r]]; !seen {
				m[actions[r]] = r
			}
		}
		births[user] = m
	})
	return &UnionDelta{Combined: combined, SkipUsers: skip, Births: births}, nil
}

// RunUnion executes c over its sealed table unioned with delta. pre, when
// non-nil, is the cached BuildUnionDelta result for exactly this (sealed,
// delta) pair; nil computes it for this query.
func RunUnion(c *Compiled, rq *RowQuery, delta *activity.Table, pre *UnionDelta, opts RunOptions) (*Result, error) {
	acc, err := RunUnionAccum(c, rq, delta, pre, opts)
	if err != nil {
		return nil, err
	}
	return acc.Result(c.KeyColNames(), c.Query.Aggs), nil
}

// RunUnionAccum is RunUnion stopping at the merged partial accumulator, so
// the scatter-gather executor can fold several shards' partials — each a
// sealed tier unioned with its own delta — into one result.
func RunUnionAccum(c *Compiled, rq *RowQuery, delta *activity.Table, pre *UnionDelta, opts RunOptions) (*Accumulator, error) {
	if delta == nil || delta.Len() == 0 {
		return runAccum(c, opts)
	}
	if pre == nil {
		var err error
		if pre, err = BuildUnionDelta(c.tbl, delta); err != nil {
			return nil, err
		}
	}
	runOpts := opts
	runOpts.SkipUsers = pre.SkipUsers
	if opts.Materialize || (opts.workers() <= 1 && opts.Pool == nil) {
		// Reference/sequential path: row-scan the delta tier after the
		// chunk fan-out, folding directly into the shard accumulator.
		acc, err := runAccum(c, runOpts)
		if err != nil {
			return nil, err
		}
		if !opts.cancelled() {
			scanDelta(rq, pre, acc, opts.Trace)
		}
		return acc, nil
	}
	// Streaming path: the delta row scan proceeds concurrently with the
	// sealed chunk fan-out and its partial merges in at the end. Exact
	// integer sums make the merge order unobservable (see runStreaming).
	rowAcc := NewAccumulator(c.NumAggs())
	done := make(chan struct{})
	// The delta scan is pool-safe: it folds rows into its private
	// accumulator and never waits on another pooled task.
	spawn(opts.Pool, func() {
		defer close(done)
		if !opts.cancelled() {
			scanDelta(rq, pre, rowAcc, opts.Trace)
		}
	})
	acc, err := runAccum(c, runOpts)
	<-done
	if err != nil {
		return nil, err
	}
	acc.Merge(rowAcc)
	return acc, nil
}

// scanDelta runs the union row path over the combined delta table, timing it
// under a "delta union" child of the shard's trace span. The row count is
// the combined table's length: the delta tuples plus the sealed rows of
// users that also appear in the delta.
func scanDelta(rq *RowQuery, pre *UnionDelta, acc *Accumulator, trace *obs.Span) {
	sp := trace.Child("delta union")
	rq.Scan(pre.Combined, acc)
	sp.End()
	rows := int64(pre.Combined.Len())
	sp.SetInt("rows_scanned", rows)
	obs.DeltaRowsScannedTotal.Add(rows)
	if trace != nil {
		trace.AddInt("delta_rows_scanned", rows)
	}
}
