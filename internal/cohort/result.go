package cohort

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Result is the output relation of a cohort query: one row per (cohort, age)
// bucket with the cohort size and the aggregated measures (Definition 6).
// Aggregate values are float64; every aggregate except Avg produces exact
// integers (well within float64's 2^53 integer range for these workloads).
type Result struct {
	KeyCols  []string // names of the cohort attributes
	AggNames []string // names of the aggregate outputs
	Rows     []Row
}

// Row is one (cohort, age) bucket.
type Row struct {
	Cohort []string  // display values of the cohort attributes
	Age    int64     // 1-based age
	Size   int64     // cohort size s: distinct qualified users in the cohort
	Aggs   []float64 // aggregate values, parallel to Result.AggNames
}

// key returns a sortable composite key for deterministic ordering.
func (r Row) key() string {
	return strings.Join(r.Cohort, "\x00")
}

// Sort orders rows by cohort attributes then age, making results
// deterministic and comparable across engines.
func (res *Result) Sort() {
	sort.Slice(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		if c := strings.Compare(a.key(), b.key()); c != 0 {
			return c < 0
		}
		return a.Age < b.Age
	})
}

// Equal compares two results with a small floating-point tolerance on
// aggregate values (Avg is computed in different orders by different
// engines). Rows must be sorted.
func (res *Result) Equal(o *Result) bool {
	if len(res.Rows) != len(o.Rows) {
		return false
	}
	for i := range res.Rows {
		a, b := res.Rows[i], o.Rows[i]
		if a.key() != b.key() || a.Age != b.Age || a.Size != b.Size || len(a.Aggs) != len(b.Aggs) {
			return false
		}
		for k := range a.Aggs {
			if math.Abs(a.Aggs[k]-b.Aggs[k]) > 1e-6*math.Max(1, math.Abs(a.Aggs[k])) {
				return false
			}
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference between
// two sorted results, or "" if they are Equal. Used by the cross-engine
// equivalence tests.
func (res *Result) Diff(o *Result) string {
	if len(res.Rows) != len(o.Rows) {
		return fmt.Sprintf("row count %d vs %d", len(res.Rows), len(o.Rows))
	}
	for i := range res.Rows {
		a, b := res.Rows[i], o.Rows[i]
		if a.key() != b.key() || a.Age != b.Age {
			return fmt.Sprintf("row %d key (%v, %d) vs (%v, %d)", i, a.Cohort, a.Age, b.Cohort, b.Age)
		}
		if a.Size != b.Size {
			return fmt.Sprintf("row %d (%v, age %d): size %d vs %d", i, a.Cohort, a.Age, a.Size, b.Size)
		}
		for k := range a.Aggs {
			if math.Abs(a.Aggs[k]-b.Aggs[k]) > 1e-6*math.Max(1, math.Abs(a.Aggs[k])) {
				return fmt.Sprintf("row %d (%v, age %d) agg %d: %v vs %v", i, a.Cohort, a.Age, k, a.Aggs[k], b.Aggs[k])
			}
		}
	}
	return ""
}

// WriteTable renders the result as an aligned text table, the tabular form
// of the paper's cohort reports (Table 3).
func (res *Result) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	cols := append(append([]string{}, res.KeyCols...), "COHORTSIZE", "AGE")
	cols = append(cols, res.AggNames...)
	fmt.Fprintln(tw, strings.Join(cols, "\t"))
	for _, r := range res.Rows {
		parts := append([]string{}, r.Cohort...)
		parts = append(parts, fmt.Sprintf("%d", r.Size), fmt.Sprintf("%d", r.Age))
		for _, v := range r.Aggs {
			parts = append(parts, formatAgg(v))
		}
		fmt.Fprintln(tw, strings.Join(parts, "\t"))
	}
	return tw.Flush()
}

func formatAgg(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table into a string.
func (res *Result) String() string {
	var sb strings.Builder
	_ = res.WriteTable(&sb)
	return sb.String()
}

// Matrix pivots a single-aggregate result for one cohort attribute into the
// paper's Table 3 / Figure 1 layout: one row per cohort (with size), one
// column per age. Missing buckets are NaN.
type Matrix struct {
	Cohorts []string
	Sizes   []int64
	Ages    []int64
	Cells   [][]float64 // [cohort][ageIdx]
}

// Pivot builds a Matrix from the aggregate at index agg.
func (res *Result) Pivot(agg int) *Matrix {
	m := &Matrix{}
	cohortIdx := map[string]int{}
	ageIdx := map[int64]int{}
	for _, r := range res.Rows {
		ck := strings.Join(r.Cohort, " / ")
		if _, ok := cohortIdx[ck]; !ok {
			cohortIdx[ck] = len(m.Cohorts)
			m.Cohorts = append(m.Cohorts, ck)
			m.Sizes = append(m.Sizes, r.Size)
		}
		if _, ok := ageIdx[r.Age]; !ok {
			ageIdx[r.Age] = len(m.Ages)
			m.Ages = append(m.Ages, r.Age)
		}
	}
	sort.Slice(m.Ages, func(i, j int) bool { return m.Ages[i] < m.Ages[j] })
	for i, a := range m.Ages {
		ageIdx[a] = i
	}
	m.Cells = make([][]float64, len(m.Cohorts))
	for i := range m.Cells {
		row := make([]float64, len(m.Ages))
		for j := range row {
			row[j] = math.NaN()
		}
		m.Cells[i] = row
	}
	for _, r := range res.Rows {
		ck := strings.Join(r.Cohort, " / ")
		m.Cells[cohortIdx[ck]][ageIdx[r.Age]] = r.Aggs[agg]
	}
	return m
}

// WriteTable renders the matrix like Table 3 of the paper.
func (m *Matrix) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := []string{"cohort"}
	for _, a := range m.Ages {
		header = append(header, fmt.Sprintf("%d", a))
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for i, c := range m.Cohorts {
		parts := []string{fmt.Sprintf("%s (%d)", c, m.Sizes[i])}
		for _, v := range m.Cells[i] {
			if math.IsNaN(v) {
				parts = append(parts, "")
			} else {
				parts = append(parts, formatAgg(v))
			}
		}
		fmt.Fprintln(tw, strings.Join(parts, "\t"))
	}
	return tw.Flush()
}
