package cohort

// Ablation benchmark for the Section 4.4 design choice: "the use of
// array-based hash tables in the inner loop of cohort aggregation
// significantly improves the performance since modern CPUs can highly
// pipeline array operations." BenchmarkAggArrayVsMap drives the same update
// stream through the shipped dense-array buckets and a map[int64] variant.

import (
	"math/rand"
	"testing"
)

// mapCohortState is the map-based alternative the paper argues against:
// ages are keyed in a hash map instead of a dense array.
type mapCohortState struct {
	size int64
	ages map[int64]*bucket
}

func (m *mapCohortState) bucket(age int64, nAggs int) *bucket {
	b, ok := m.ages[age]
	if !ok {
		b = &bucket{present: true, states: make([]aggState, nAggs)}
		m.ages[age] = b
	}
	return b
}

// updateStream synthesizes a realistic aggregation update sequence: user
// blocks with nondecreasing ages and a gold measure.
func updateStream(n int) (ages []int64, golds []int64) {
	rng := rand.New(rand.NewSource(7))
	ages = make([]int64, n)
	golds = make([]int64, n)
	age := int64(1)
	for i := range ages {
		if rng.Intn(8) == 0 { // new user: restart ages
			age = 1
		} else if rng.Intn(3) == 0 {
			age++
		}
		ages[i] = age
		golds[i] = int64(rng.Intn(100))
	}
	return
}

func BenchmarkAggArrayVsMap(b *testing.B) {
	const n = 1 << 16
	ages, golds := updateStream(n)
	b.Run("array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cs := &cohortState{}
			for k := 0; k < n; k++ {
				bkt := cs.bucket(ages[k], 1)
				st := &bkt.states[0]
				st.sum += float64(golds[k])
				st.cnt++
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cs := &mapCohortState{ages: make(map[int64]*bucket)}
			for k := 0; k < n; k++ {
				bkt := cs.bucket(ages[k], 1)
				st := &bkt.states[0]
				st.sum += float64(golds[k])
				st.cnt++
			}
		}
	})
}

// TestMapVariantAgreesWithArray guards the ablation itself: both data
// structures must produce identical aggregates for the same stream.
func TestMapVariantAgreesWithArray(t *testing.T) {
	ages, golds := updateStream(4096)
	arr := &cohortState{}
	mp := &mapCohortState{ages: make(map[int64]*bucket)}
	for k := range ages {
		ab := arr.bucket(ages[k], 1)
		ab.states[0].sum += float64(golds[k])
		ab.states[0].cnt++
		mb := mp.bucket(ages[k], 1)
		mb.states[0].sum += float64(golds[k])
		mb.states[0].cnt++
	}
	for i := range arr.ages {
		ab := &arr.ages[i]
		if !ab.present {
			if _, ok := mp.ages[int64(i+1)]; ok {
				t.Fatalf("age %d present only in map", i+1)
			}
			continue
		}
		mb, ok := mp.ages[int64(i+1)]
		if !ok {
			t.Fatalf("age %d missing from map", i+1)
		}
		if ab.states[0].sum != mb.states[0].sum || ab.states[0].cnt != mb.states[0].cnt {
			t.Fatalf("age %d disagrees: %+v vs %+v", i+1, ab.states[0], mb.states[0])
		}
	}
}
