package cohort

import (
	"math"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/storage"
)

func vectorFixture(tb testing.TB) *storage.Table {
	tb.Helper()
	full := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 8, Seed: 17})
	if err := full.SortByPK(); err != nil {
		tb.Fatal(err)
	}
	tbl, err := storage.Build(full, storage.Options{ChunkSize: 120})
	if err != nil {
		tb.Fatal(err)
	}
	return tbl
}

// requireSameResult pins got to want bit for bit: identical rows, identical
// float64 bit patterns (including any NaN from Avg over an empty bucket).
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		g, w := got.Rows[i], want.Rows[i]
		if strings.Join(g.Cohort, "\x00") != strings.Join(w.Cohort, "\x00") ||
			g.Age != w.Age || g.Size != w.Size || len(g.Aggs) != len(w.Aggs) {
			t.Fatalf("%s row %d: got %+v, want %+v", label, i, g, w)
		}
		for j := range w.Aggs {
			if math.Float64bits(g.Aggs[j]) != math.Float64bits(w.Aggs[j]) {
				t.Fatalf("%s row %d agg %d: got %v (%#x), want %v (%#x)",
					label, i, j, g.Aggs[j], math.Float64bits(g.Aggs[j]),
					w.Aggs[j], math.Float64bits(w.Aggs[j]))
			}
		}
	}
}

// FuzzVectorizedExec is the vectorized-execution soundness contract: for ANY
// pair of conditions the compiler accepts, the run-at-a-time kernel path must
// produce bit-identical results to the scalar reference loop — same cohorts,
// same ages, same float64 bits — across every aggregate function at once.
// Conditions reuse the pushdown fuzzer's generator, so in-dictionary and
// absent literals, out-of-range integers, IN/BETWEEN, AGE conjuncts, OR
// residuals and Birth() references all reach the kernels.
func FuzzVectorizedExec(f *testing.F) {
	tbl := vectorFixture(f)
	schema := tbl.Schema()

	f.Add([]byte{0}, []byte{0})
	f.Add([]byte{1, 3, 2, 0, 1}, []byte{3, 1, 2, 2, 6, 0, 7, 7, 7})
	f.Add([]byte{2, 5, 4, 1}, []byte{1, 0, 5, 2, 3, 9, 250, 17})
	f.Add([]byte{}, []byte{7, 1, 6, 0, 2})

	f.Fuzz(func(t *testing.T, birthData, ageData []byte) {
		birthCond := condFromBytes(birthData)
		if expr.UsesBirth(birthCond) || expr.UsesAge(birthCond) {
			birthCond = nil // not a legal σb condition; keep the query valid
		}
		q := &Query{
			BirthAction: "launch",
			BirthCond:   birthCond,
			AgeCond:     condFromBytes(ageData),
			CohortBy:    []CohortKey{{Col: "country"}},
			Aggs: []AggSpec{
				{Func: Count},
				{Func: UserCount},
				{Func: Sum, Col: "gold"},
				{Func: Avg, Col: "session"},
				{Func: Min, Col: "gold"},
				{Func: Max, Col: "session"},
			},
		}
		if err := q.Validate(schema); err != nil {
			return // ill-typed condition (e.g. unparseable date literal)
		}
		c, err := Compile(q, tbl)
		if err != nil {
			t.Fatalf("Compile after Validate: %v", err)
		}
		want, err := Run(c, RunOptions{DisableVectorized: true})
		if err != nil {
			t.Fatalf("scalar: %v", err)
		}
		got, err := Run(c, RunOptions{})
		if err != nil {
			t.Fatalf("vectorized: %v", err)
		}
		requireSameResult(t, "vectorized vs scalar", got, want)
	})
}

// TestVectorizedStats pins the counter contract of the two paths: the
// vectorized default reports batched rows and evaluated runs with strictly
// fewer run evaluations than rows batched (that is the amortization), while
// the scalar reference path leaves RowsBatched at zero.
func TestVectorizedStats(t *testing.T) {
	tbl := vectorFixture(t)
	q := &Query{
		BirthAction: "launch",
		BirthCond:   expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Lit{Val: expr.S("China")}},
		AgeCond:     expr.Cmp{Op: expr.OpGt, L: expr.Col{Name: "gold"}, R: expr.Lit{Val: expr.I(2)}},
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: Sum, Col: "gold"}},
	}
	if err := q.Validate(tbl.Schema()); err != nil {
		t.Fatal(err)
	}
	c, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}

	var vec ExecStats
	if _, err := Run(c, RunOptions{Stats: &vec}); err != nil {
		t.Fatal(err)
	}
	if vec.RowsBatched.Load() == 0 || vec.RunsEvaluated.Load() == 0 {
		t.Fatalf("vectorized run reports no kernel activity: batched=%d runs=%d",
			vec.RowsBatched.Load(), vec.RunsEvaluated.Load())
	}
	if vec.RowsScanned.Load() != vec.RowsBatched.Load() {
		t.Fatalf("vectorized path scanned %d rows but batched %d — every scanned row should be batched",
			vec.RowsScanned.Load(), vec.RowsBatched.Load())
	}

	var scalar ExecStats
	if _, err := Run(c, RunOptions{DisableVectorized: true, Stats: &scalar}); err != nil {
		t.Fatal(err)
	}
	if scalar.RowsBatched.Load() != 0 || scalar.RunsEvaluated.Load() != 0 {
		t.Fatalf("scalar run reports kernel activity: batched=%d runs=%d",
			scalar.RowsBatched.Load(), scalar.RunsEvaluated.Load())
	}
	if scalar.RowsScanned.Load() != vec.RowsScanned.Load() {
		t.Fatalf("rows scanned differ: scalar %d, vectorized %d",
			scalar.RowsScanned.Load(), vec.RowsScanned.Load())
	}
}

// TestChunkScanAllocsPooled asserts the per-chunk scratch pooling: once the
// pool and the accumulator are warm, scanning a chunk allocates (almost)
// nothing — the env, scanner, key buffer, code buffers and selection bitmap
// all come from the recycled chunkScratch.
func TestChunkScanAllocsPooled(t *testing.T) {
	tbl := vectorFixture(t)
	q := &Query{
		BirthAction: "launch",
		AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: Count}, {Func: Sum, Col: "gold"}},
	}
	if err := q.Validate(tbl.Schema()); err != nil {
		t.Fatal(err)
	}
	c, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for name, rc := range map[string]runCtx{
		"vectorized": {vectorized: true},
		"scalar":     {},
	} {
		acc := NewAccumulator(c.NumAggs())
		// Warm: populate the accumulator's cohorts/buckets and the scratch pool.
		for i := 0; i < 2; i++ {
			for ci := 0; ci < tbl.NumChunks(); ci++ {
				if _, err := c.runChunk(ci, acc, rc); err != nil {
					t.Fatal(err)
				}
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			for ci := 0; ci < tbl.NumChunks(); ci++ {
				if _, err := c.runChunk(ci, acc, rc); err != nil {
					t.Fatal(err)
				}
			}
		})
		// Binding the pushed conjuncts to a chunk (closure and slice per
		// conjunct) is inherently per-chunk work, so the bound scales with the
		// chunk count — but NOT with rows: per-row or per-block allocation
		// across the ~480-row fixture would blow well past it.
		if max := float64(20 * tbl.NumChunks()); allocs > max {
			t.Fatalf("%s: %v allocs per warm table scan over %d chunks, want <= %v",
				name, allocs, tbl.NumChunks(), max)
		}
	}
}

// BenchmarkChunkScan compares the two execution loops over one warm table:
// the run-at-a-time kernel path against the scalar row-at-a-time reference,
// at two activity densities. Sparse streams (few actions per day) are
// vectorization's worst case — run lengths collapse toward one — while dense
// streams (the paper's regime: hundreds of actions per user) leave the long
// same-age and same-action runs the kernels amortize over. This is the
// microbenchmark behind the cohana-bench vectorized sweep; run with
// -cpuprofile to see where each path spends its time.
func BenchmarkChunkScan(b *testing.B) {
	for _, density := range []struct {
		name    string
		actions int
	}{{"sparse", 16}, {"dense", 300}} {
		full := gen.Generate(gen.Config{Users: 400, Days: 30, MeanActions: density.actions, Seed: 7})
		if err := full.SortByPK(); err != nil {
			b.Fatal(err)
		}
		tbl, err := storage.Build(full, storage.Options{ChunkSize: 4096})
		if err != nil {
			b.Fatal(err)
		}
		q := &Query{
			BirthAction: "launch",
			AgeCond: expr.And{
				L: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
				R: expr.Cmp{Op: expr.OpGt, L: expr.Col{Name: "gold"}, R: expr.Lit{Val: expr.I(5)}},
			},
			CohortBy: []CohortKey{{Col: "country"}},
			Aggs:     []AggSpec{{Func: Count}, {Func: Sum, Col: "gold"}},
		}
		if err := q.Validate(tbl.Schema()); err != nil {
			b.Fatal(err)
		}
		c, err := Compile(q, tbl)
		if err != nil {
			b.Fatal(err)
		}
		for name, rc := range map[string]runCtx{
			"vectorized": {vectorized: true},
			"scalar":     {},
		} {
			b.Run(density.name+"/"+name, func(b *testing.B) {
				acc := NewAccumulator(c.NumAggs())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for ci := 0; ci < tbl.NumChunks(); ci++ {
						if _, err := c.runChunk(ci, acc, rc); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
