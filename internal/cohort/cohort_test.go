package cohort

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/activity"
	"repro/internal/expr"
	"repro/internal/storage"
)

// paperStore compresses the Table 1 fixture with the given chunk size.
func paperStore(t *testing.T, chunkSize int) *storage.Table {
	t.Helper()
	st, err := storage.Build(activity.PaperTable1(), storage.Options{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func runQuery(t *testing.T, tbl *storage.Table, q *Query) *Result {
	t.Helper()
	c, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(c.NumAggs())
	for i := 0; i < tbl.NumChunks(); i++ {
		if c.CanSkipChunk(i) {
			continue
		}
		c.RunChunk(i, acc)
	}
	return acc.Result(c.KeyColNames(), q.Aggs)
}

func TestAgeOf(t *testing.T) {
	day := activity.SecondsPerDay
	cases := []struct {
		ts, birth int64
		unit      Unit
		want      int64
	}{
		{1000, 1000, Day, 0},                       // birth instant
		{999, 1000, Day, -1},                       // pre-birth
		{1000 + 1, 1000, Day, 1},                   // the paper's "week 1"/1-based convention
		{1000 + int64(day) - 1, 1000, Day, 1},      // still the first day
		{1000 + int64(day), 1000, Day, 2},          // exactly one day later -> day 2 bin
		{1000 + int64(day)*7, 1000, Week, 2},       // one week later -> week 2
		{1000 + int64(day)*6, 1000, Week, 1},       // within the first week
		{1000 + int64(day)*45, 1000, Month, 2},     // second 30-day month
		{1000 + int64(day)*3 + 7200, 1000, Day, 4}, // 3d2h -> day 4
	}
	for _, c := range cases {
		if got := AgeOf(c.ts, c.birth, c.unit); got != c.want {
			t.Errorf("AgeOf(%d, %d, %s) = %d, want %d", c.ts, c.birth, c.unit, got, c.want)
		}
	}
}

func TestTimeBin(t *testing.T) {
	ts, _ := activity.ParseTime("2013/05/19:1000")
	day := TimeBinStart(ts, Day)
	if FormatTimeBin(day) != "2013-05-19" {
		t.Errorf("day bin = %s", FormatTimeBin(day))
	}
	if TimeBinStart(-1, Day) != -activity.SecondsPerDay {
		t.Errorf("pre-epoch floor = %d", TimeBinStart(-1, Day))
	}
	if TimeBinStart(0, Week) != 0 {
		t.Errorf("epoch week = %d", TimeBinStart(0, Week))
	}
}

func TestValidate(t *testing.T) {
	schema := activity.PaperSchema()
	ok := &Query{
		BirthAction: "launch",
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: Sum, Col: "gold"}},
	}
	if err := ok.Validate(schema); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []*Query{
		{CohortBy: []CohortKey{{Col: "country"}}, Aggs: ok.Aggs},                                    // no birth action
		{BirthAction: "launch", Aggs: ok.Aggs},                                                      // no cohort by
		{BirthAction: "launch", CohortBy: []CohortKey{{Col: "bogus"}}, Aggs: ok.Aggs},               // unknown cohort attr
		{BirthAction: "launch", CohortBy: []CohortKey{{Col: "player"}}, Aggs: ok.Aggs},              // user attr in L
		{BirthAction: "launch", CohortBy: []CohortKey{{Col: "action"}}, Aggs: ok.Aggs},              // action attr in L
		{BirthAction: "launch", CohortBy: ok.CohortBy},                                              // no aggs
		{BirthAction: "launch", CohortBy: ok.CohortBy, Aggs: []AggSpec{{Func: Sum, Col: "role"}}},   // string measure
		{BirthAction: "launch", CohortBy: ok.CohortBy, Aggs: []AggSpec{{Func: Sum, Col: "time"}}},   // time measure
		{BirthAction: "launch", CohortBy: ok.CohortBy, Aggs: []AggSpec{{Func: Count, Col: "gold"}}}, // Count with arg
		{BirthAction: "launch", CohortBy: ok.CohortBy, Aggs: ok.Aggs,
			BirthCond: expr.Cmp{Op: expr.OpEq, L: expr.Birth{Name: "role"}, R: expr.Lit{Val: expr.S("dwarf")}}}, // Birth() in σb
		{BirthAction: "launch", CohortBy: ok.CohortBy, Aggs: ok.Aggs,
			BirthCond: expr.Cmp{Op: expr.OpLt, L: expr.Age{}, R: expr.Lit{Val: expr.I(3)}}}, // AGE in σb
		{BirthAction: "launch", CohortBy: ok.CohortBy, Aggs: ok.Aggs,
			AgeCond: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "bogus"}, R: expr.Lit{Val: expr.S("x")}}}, // bad σg
	}
	for i, q := range bad {
		if err := q.Validate(schema); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

// TestExample1 reproduces Example 1 / query Q1 of Section 3.4: birth action
// launch with birth role dwarf, shop age activities, cohort by country,
// Sum(gold). Only player 001 qualifies; gold 50/100/50 lands in day ages
// 1/2/3.
func TestExample1(t *testing.T) {
	for _, chunkSize := range []int{3, 1024} {
		tbl := paperStore(t, chunkSize)
		q := &Query{
			BirthAction: "launch",
			BirthCond:   expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Lit{Val: expr.S("dwarf")}},
			AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
			CohortBy:    []CohortKey{{Col: "country"}},
			Aggs:        []AggSpec{{Func: Sum, Col: "gold", As: "spent"}},
		}
		res := runQuery(t, tbl, q)
		if len(res.Rows) != 3 {
			t.Fatalf("chunkSize=%d: %d rows, want 3:\n%s", chunkSize, len(res.Rows), res)
		}
		wantGold := map[int64]float64{1: 50, 2: 100, 3: 50}
		for _, r := range res.Rows {
			if r.Cohort[0] != "Australia" || r.Size != 1 {
				t.Errorf("row %+v: want Australia cohort of size 1", r)
			}
			if r.Aggs[0] != wantGold[r.Age] {
				t.Errorf("age %d: gold %v, want %v", r.Age, r.Aggs[0], wantGold[r.Age])
			}
		}
	}
}

// TestCohortSizesWithoutBirthCond checks Hc: with no birth condition every
// user who launched is counted in its country cohort even if it produced no
// age tuples.
func TestCohortSizesWithoutBirthCond(t *testing.T) {
	tbl := paperStore(t, 1024)
	q := &Query{
		BirthAction: "launch",
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: Count}},
	}
	c, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(c.NumAggs())
	for i := 0; i < tbl.NumChunks(); i++ {
		c.RunChunk(i, acc)
	}
	sizes := acc.CohortSizes()
	want := map[string]int64{"Australia": 1, "United States": 1, "China": 1}
	if !reflect.DeepEqual(sizes, want) {
		t.Errorf("cohort sizes = %v, want %v", sizes, want)
	}
}

// TestUserCountRetention checks the Section 4.5 retention aggregate: player
// 001 has two shop tuples in distinct day-ages plus more actions; each
// (cohort, age) bucket counts the player once.
func TestUserCountRetention(t *testing.T) {
	tbl := paperStore(t, 1024)
	q := &Query{
		BirthAction: "launch",
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: UserCount}},
	}
	res := runQuery(t, tbl, q)
	// Every bucket holds exactly one distinct user in this tiny dataset.
	for _, r := range res.Rows {
		if r.Aggs[0] != 1 {
			t.Errorf("bucket (%v, %d) UserCount = %v, want 1", r.Cohort, r.Age, r.Aggs[0])
		}
	}
	// Player 001: ages 1 (t2), 2 (t3), 3 (t4, t5 same day-age bin? t4 is
	// 52h -> age 3, t5 is 71h -> age 3): buckets 1, 2, 3.
	var auAges []int64
	for _, r := range res.Rows {
		if r.Cohort[0] == "Australia" {
			auAges = append(auAges, r.Age)
		}
	}
	if !reflect.DeepEqual(auAges, []int64{1, 2, 3}) {
		t.Errorf("Australia ages = %v, want [1 2 3]", auAges)
	}
}

// TestBirthFunctionInAgeCond reproduces the σg role=Birth(role) example of
// Section 3.3.2 via aggregation: with shop births, only tuples shopped in
// the birth role qualify.
func TestBirthFunctionInAgeCond(t *testing.T) {
	tbl := paperStore(t, 1024)
	q := &Query{
		BirthAction: "shop",
		AgeCond: expr.And{
			L: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
			R: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Birth{Name: "role"}},
		},
		CohortBy: []CohortKey{{Col: "country"}},
		Aggs:     []AggSpec{{Func: Sum, Col: "gold"}, {Func: Count}},
	}
	res := runQuery(t, tbl, q)
	// Qualifying age tuples: t3 (001, dwarf shop, 100 gold, age 1) and t8
	// (002, wizard shop, 40 gold, age 2 — 26h after birth t7).
	want := []Row{
		{Cohort: []string{"Australia"}, Age: 1, Size: 1, Aggs: []float64{100, 1}},
		{Cohort: []string{"United States"}, Age: 2, Size: 1, Aggs: []float64{40, 1}},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows:\n%s", res)
	}
	for i, w := range want {
		g := res.Rows[i]
		if !reflect.DeepEqual(g.Cohort, w.Cohort) || g.Age != w.Age || g.Size != w.Size || !reflect.DeepEqual(g.Aggs, w.Aggs) {
			t.Errorf("row %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestSelectTuplesExamples replays the three worked operator examples of
// Section 3.3 at tuple granularity. Global rows 0..9 are t1..t10.
func TestSelectTuplesExamples(t *testing.T) {
	for _, chunkSize := range []int{2, 1024} {
		tbl := paperStore(t, chunkSize)
		// σb country=Australia, launch -> {t1..t5}.
		got, err := SelectTuples(tbl, "launch",
			expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Lit{Val: expr.S("Australia")}}, nil, Day)
		if err != nil {
			t.Fatal(err)
		}
		if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
			t.Errorf("σb example = %v, want %v", got, want)
		}
		// σg action=shop ∧ country≠China, shop -> {t2, t3, t4, t7, t8}.
		got, err = SelectTuples(tbl, "shop", nil,
			expr.And{
				L: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
				R: expr.Cmp{Op: expr.OpNe, L: expr.Col{Name: "country"}, R: expr.Lit{Val: expr.S("China")}},
			}, Day)
		if err != nil {
			t.Fatal(err)
		}
		if want := []int{1, 2, 3, 6, 7}; !reflect.DeepEqual(got, want) {
			t.Errorf("σg example = %v, want %v", got, want)
		}
		// σg role=Birth(role), shop -> {t2, t3, t7, t8}.
		got, err = SelectTuples(tbl, "shop", nil,
			expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Birth{Name: "role"}}, Day)
		if err != nil {
			t.Fatal(err)
		}
		if want := []int{1, 2, 6, 7}; !reflect.DeepEqual(got, want) {
			t.Errorf("Birth() example = %v, want %v", got, want)
		}
	}
}

func TestSelectTuplesErrors(t *testing.T) {
	tbl := paperStore(t, 1024)
	if _, err := SelectTuples(tbl, "", nil, nil, Day); err == nil {
		t.Error("empty birth action accepted")
	}
	if _, err := SelectTuples(tbl, "launch",
		expr.Cmp{Op: expr.OpEq, L: expr.Birth{Name: "role"}, R: expr.Lit{Val: expr.S("x")}}, nil, Day); err == nil {
		t.Error("Birth() in birth condition accepted")
	}
	got, err := SelectTuples(tbl, "teleport", nil, nil, Day)
	if err != nil || len(got) != 0 {
		t.Errorf("absent birth action: %v, %v", got, err)
	}
}

// TestTimeCohorts checks COHORT BY over the time attribute with week bins:
// all three players launched in the same epoch-aligned week.
func TestTimeCohorts(t *testing.T) {
	tbl := paperStore(t, 1024)
	q := &Query{
		BirthAction: "launch",
		CohortBy:    []CohortKey{{Col: "time", Bin: Week}},
		Aggs:        []AggSpec{{Func: UserCount}},
	}
	res := runQuery(t, tbl, q)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	cohorts := map[string]bool{}
	for _, r := range res.Rows {
		cohorts[r.Cohort[0]] = true
		if r.Size != 3 {
			t.Errorf("cohort size = %d, want 3 (all players born the same week)", r.Size)
		}
	}
	if len(cohorts) != 1 {
		t.Errorf("cohorts = %v, want a single week bin", cohorts)
	}
}

// TestMultiAttributeCohort cohorts by (country, role) pairs.
func TestMultiAttributeCohort(t *testing.T) {
	tbl := paperStore(t, 1024)
	q := &Query{
		BirthAction: "launch",
		CohortBy:    []CohortKey{{Col: "country"}, {Col: "role"}},
		Aggs:        []AggSpec{{Func: Count}},
	}
	res := runQuery(t, tbl, q)
	for _, r := range res.Rows {
		if len(r.Cohort) != 2 {
			t.Fatalf("cohort key arity %d", len(r.Cohort))
		}
	}
	// Player 002's cohort must be (United States, wizard).
	found := false
	for _, r := range res.Rows {
		if r.Cohort[0] == "United States" && r.Cohort[1] == "wizard" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing (United States, wizard) cohort:\n%s", res)
	}
}

func TestAggsMinMaxAvg(t *testing.T) {
	tbl := paperStore(t, 1024)
	q := &Query{
		BirthAction: "launch",
		AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs: []AggSpec{
			{Func: Min, Col: "gold"}, {Func: Max, Col: "gold"}, {Func: Avg, Col: "gold"},
		},
	}
	res := runQuery(t, tbl, q)
	// Australia (player 001): age 2 has a single 100-gold shop.
	for _, r := range res.Rows {
		if r.Cohort[0] == "Australia" && r.Age == 2 {
			if r.Aggs[0] != 100 || r.Aggs[1] != 100 || r.Aggs[2] != 100 {
				t.Errorf("age-2 aggs = %v", r.Aggs)
			}
		}
	}
}

func TestChunkPruningByBirthAction(t *testing.T) {
	tbl := paperStore(t, 3) // one player per chunk
	q := &Query{
		BirthAction: "shop",
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: Count}},
	}
	c, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Player 003 (chunk 2) never shopped: its chunk must be pruned.
	if !c.CanSkipChunk(2) {
		t.Error("chunk without shop not pruned")
	}
	if c.CanSkipChunk(0) || c.CanSkipChunk(1) {
		t.Error("chunk with shop wrongly pruned")
	}
}

func TestChunkPruningByBirthCondRanges(t *testing.T) {
	tbl := paperStore(t, 3)
	mkQuery := func(cond expr.Expr) *Compiled {
		q := &Query{
			BirthAction: "launch",
			BirthCond:   cond,
			CohortBy:    []CohortKey{{Col: "country"}},
			Aggs:        []AggSpec{{Func: Count}},
		}
		c, err := Compile(q, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// country = China prunes the Australian and US players' chunks.
	c := mkQuery(expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Lit{Val: expr.S("China")}})
	if !c.CanSkipChunk(0) || !c.CanSkipChunk(1) || c.CanSkipChunk(2) {
		t.Error("string equality pruning wrong")
	}
	// country = Mars (absent everywhere) prunes all chunks.
	c = mkQuery(expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Lit{Val: expr.S("Mars")}})
	for i := 0; i < 3; i++ {
		if !c.CanSkipChunk(i) {
			t.Errorf("chunk %d not pruned for absent value", i)
		}
	}
	// IN over absent values prunes; IN including a present value does not.
	c = mkQuery(expr.In{L: expr.Col{Name: "country"}, List: []expr.Value{expr.S("Mars"), expr.S("Venus")}})
	if !c.CanSkipChunk(0) {
		t.Error("IN pruning failed")
	}
	c = mkQuery(expr.In{L: expr.Col{Name: "country"}, List: []expr.Value{expr.S("Mars"), expr.S("Australia")}})
	if c.CanSkipChunk(0) {
		t.Error("IN with present member wrongly pruned")
	}
	// time BETWEEN outside the chunk's range prunes.
	c = mkQuery(expr.Between{L: expr.Col{Name: "time"}, Lo: expr.S("2014-01-01"), Hi: expr.S("2014-02-01")})
	for i := 0; i < 3; i++ {
		if !c.CanSkipChunk(i) {
			t.Errorf("chunk %d not pruned by disjoint time range", i)
		}
	}
	// gold > 1000 prunes every chunk (max gold is 100).
	c = mkQuery(expr.Cmp{Op: expr.OpGt, L: expr.Col{Name: "gold"}, R: expr.Lit{Val: expr.I(1000)}})
	if !c.CanSkipChunk(0) {
		t.Error("int comparison pruning failed")
	}
	// A satisfiable condition must not prune.
	c = mkQuery(expr.Cmp{Op: expr.OpGe, L: expr.Col{Name: "gold"}, R: expr.Lit{Val: expr.I(0)}})
	if c.CanSkipChunk(0) {
		t.Error("satisfiable condition pruned")
	}
	// Age conditions must never prune: cohort sizes depend on all chunks.
	q := &Query{
		BirthAction: "launch",
		AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Lit{Val: expr.S("Mars")}},
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: Count}},
	}
	cc, err := Compile(q, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if cc.CanSkipChunk(0) {
		t.Error("age condition pruned a chunk")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	tbl3 := paperStore(t, 3) // three chunks
	q := &Query{
		BirthAction: "launch",
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: Sum, Col: "gold"}, {Func: UserCount}, {Func: Min, Col: "gold"}},
	}
	c, err := Compile(q, tbl3)
	if err != nil {
		t.Fatal(err)
	}
	// Serial.
	serial := NewAccumulator(c.NumAggs())
	for i := 0; i < tbl3.NumChunks(); i++ {
		c.RunChunk(i, serial)
	}
	// Per-chunk accumulators merged.
	merged := NewAccumulator(c.NumAggs())
	for i := 0; i < tbl3.NumChunks(); i++ {
		part := NewAccumulator(c.NumAggs())
		c.RunChunk(i, part)
		merged.Merge(part)
	}
	rs, rm := serial.Result(c.KeyColNames(), q.Aggs), merged.Result(c.KeyColNames(), q.Aggs)
	if d := rs.Diff(rm); d != "" {
		t.Errorf("merge mismatch: %s\nserial:\n%s\nmerged:\n%s", d, rs, rm)
	}
}

func TestResultHelpers(t *testing.T) {
	res := &Result{
		KeyCols:  []string{"country"},
		AggNames: []string{"Sum(gold)"},
		Rows: []Row{
			{Cohort: []string{"B"}, Age: 2, Size: 3, Aggs: []float64{5}},
			{Cohort: []string{"A"}, Age: 1, Size: 2, Aggs: []float64{7}},
			{Cohort: []string{"B"}, Age: 1, Size: 3, Aggs: []float64{9}},
		},
	}
	res.Sort()
	if res.Rows[0].Cohort[0] != "A" || res.Rows[1].Age != 1 || res.Rows[1].Cohort[0] != "B" {
		t.Errorf("sort order wrong: %+v", res.Rows)
	}
	s := res.String()
	if !strings.Contains(s, "COHORTSIZE") || !strings.Contains(s, "AGE") {
		t.Errorf("table rendering missing headers:\n%s", s)
	}
	m := res.Pivot(0)
	if len(m.Cohorts) != 2 || len(m.Ages) != 2 {
		t.Fatalf("pivot shape %dx%d", len(m.Cohorts), len(m.Ages))
	}
	var sb strings.Builder
	if err := m.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A (2)") {
		t.Errorf("matrix rendering:\n%s", sb.String())
	}
}

func TestResultEqualTolerance(t *testing.T) {
	a := &Result{Rows: []Row{{Cohort: []string{"x"}, Age: 1, Size: 1, Aggs: []float64{1.0}}}}
	b := &Result{Rows: []Row{{Cohort: []string{"x"}, Age: 1, Size: 1, Aggs: []float64{1.0 + 1e-9}}}}
	if !a.Equal(b) {
		t.Error("tolerance not applied")
	}
	c := &Result{Rows: []Row{{Cohort: []string{"x"}, Age: 1, Size: 1, Aggs: []float64{2.0}}}}
	if a.Equal(c) {
		t.Error("different values considered equal")
	}
	if a.Diff(c) == "" {
		t.Error("Diff empty for different results")
	}
}
