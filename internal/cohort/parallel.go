package cohort

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// This file is the shared physical executor for compiled cohort queries: it
// fans a query out over the table's chunks with one accumulator per worker
// and merges the partials at the end. A Compiled query is immutable, and
// users never span chunks (the clustering property of Section 4.1), so
// partial accumulators merge without distinct-count corrections — the
// Section 4.5 property that makes chunk-level parallelism embarrassingly
// parallel. Both the one-shot planner (internal/plan) and the query server
// (internal/server) execute through Run.

// Pool is a bounded set of workers shared by concurrent query executions.
// A server creates one Pool sized to the machine and routes every query's
// chunk tasks through it, so total chunk-scan concurrency stays bounded no
// matter how many requests are in flight. The zero value is not usable;
// call NewPool.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	workers int

	// mu protects closed and orders submissions against Close: submitters
	// hold the read side across the channel send, so the channel can only
	// be closed when no send is in flight (no send-on-closed panic, even
	// if a query races a server shutdown).
	mu     sync.RWMutex
	closed bool
}

// NewPool starts a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func()), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// submit enqueues f, blocking until a worker accepts it. It reports false
// (dropping f) if the pool is closed. The read lock is held across the
// send: concurrent submitters proceed in parallel, while Close's write
// lock waits for every in-flight send before the channel closes.
func (p *Pool) submit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.tasks <- f
	return true
}

// Close stops the workers after draining queued tasks. Submissions racing
// Close are safe: they either enqueue before the channel closes or report
// false, and the executor falls back to running those tasks inline.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// spawn runs f concurrently: on the shared pool when one is available (and
// still accepting), on a fresh goroutine otherwise. It only suits tasks that
// run to completion without waiting on other pooled tasks — anything else
// risks deadlocking a saturated pool. This helper is the sanctioned spawn
// point for engine code outside this file; the goroutinepool analyzer in
// cohana-lint flags bare go statements elsewhere.
func spawn(p *Pool, f func()) {
	if p != nil && p.submit(f) {
		return
	}
	go f()
}

// RunOptions controls the physical execution of a compiled query.
type RunOptions struct {
	// Parallelism is the number of chunks processed concurrently. 0 or 1
	// selects the paper's single-threaded execution; negative uses
	// GOMAXPROCS workers. When Pool is set, the per-query fan-out is
	// additionally capped by the pool's worker count.
	Parallelism int
	// DisablePruning turns off chunk pruning (Section 4.2), for the
	// ablation experiments.
	DisablePruning bool
	// Pool, when non-nil, executes chunk tasks on the shared pool instead
	// of spawning per-query goroutines, bounding total concurrency across
	// simultaneous queries.
	Pool *Pool
	// SkipUsers lists user global-ids whose sealed blocks must be skipped
	// because the union executor aggregates them on the row path together
	// with their fresh delta tuples (see RunUnion).
	SkipUsers map[uint64]bool
	// Ctx, when non-nil, cancels the execution: workers stop picking up
	// chunks once the context is done, so a disconnected client's
	// scatter-gather fan-out releases its pool workers instead of scanning
	// to completion. Callers observe the cancellation via Ctx.Err(); a
	// cancelled run's partial result must be discarded.
	Ctx context.Context
	// DisablePushdown forces predicate evaluation through the generic
	// decoded path instead of the encoded-domain pushdown, keeping the
	// reference semantics that the equivalence tests (and ablations)
	// compare against.
	DisablePushdown bool
	// DisableVectorized forces the scalar row-at-a-time reference loop
	// instead of the run-aware vectorized kernels (the default). The
	// vectorized path rides on pushdown's chunk binding, so DisablePushdown
	// implies it.
	DisableVectorized bool
	// Materialize selects the materializing merge: every worker folds its
	// chunks into a private accumulator and the partials merge after the
	// barrier. This is the pre-streaming reference execution; the default
	// streams per-chunk partials into the shard accumulator as they finish.
	Materialize bool
	// Stats, when non-nil, receives decoder-level execution counters
	// (shared across workers; updated atomically).
	Stats *ExecStats
	// Trace, when non-nil, is this shard's trace span: the executor attaches
	// per-chunk child spans (capped at maxTraceChunks) carrying measured
	// rows/bytes/ns, aggregates the same counters on the shard span itself,
	// and times the delta-union row scan. Nil (the default) costs one pointer
	// test per chunk.
	Trace *obs.Span
}

// cancelled reports whether the run's context is done.
func (o RunOptions) cancelled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

func (o RunOptions) workers() int {
	w := o.Parallelism
	switch {
	case w < 0:
		w = runtime.GOMAXPROCS(0)
	case w == 0:
		w = 1
	}
	if o.Pool != nil && w > o.Pool.workers {
		w = o.Pool.workers
	}
	return w
}

// Run executes a compiled query over all non-pruned chunks and materializes
// the merged result. The error is non-nil only when a lazy chunk load fails
// (e.g. a missing or corrupt segment file).
func Run(c *Compiled, opts RunOptions) (*Result, error) {
	acc, err := runAccum(c, opts)
	if err != nil {
		return nil, err
	}
	return acc.Result(c.KeyColNames(), c.Query.Aggs), nil
}

// RunAccum executes the sealed-chunk fan-out and returns the merged partial
// accumulator without materializing a Result. The scatter-gather executor
// (internal/plan) runs one RunAccum per shard and merges the partials —
// users never span shards, so shard partials merge exactly as chunk partials
// do.
func RunAccum(c *Compiled, opts RunOptions) (*Accumulator, error) {
	return runAccum(c, opts)
}

// firstError collects the first chunk-load failure across workers; later
// errors are dropped (they are almost always the same root cause), and
// remaining chunks are drained without scanning.
type firstError struct {
	mu  sync.Mutex
	err error
}

func (f *firstError) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *firstError) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// runAccum executes the sealed-chunk fan-out and returns the merged
// accumulator without materializing a Result, so the union executor can fold
// the delta tier in before rendering.
func runAccum(c *Compiled, opts RunOptions) (*Accumulator, error) {
	total := c.tbl.NumChunks()
	var chunks []int
	for i := 0; i < total; i++ {
		if !opts.DisablePruning && c.CanSkipChunk(i) {
			continue
		}
		chunks = append(chunks, i)
	}
	pruned := int64(total - len(chunks))
	if opts.Stats != nil {
		opts.Stats.ChunksPruned.Add(pruned)
	}
	obs.ChunksPrunedTotal.Add(pruned)
	opts.Trace.SetInt("chunks_total", int64(total))
	opts.Trace.SetInt("chunks_pruned", pruned)
	ct := &chunkTracer{parent: opts.Trace}
	workers := opts.workers()
	if workers > len(chunks) {
		workers = len(chunks)
	}
	rc := runCtx{
		skipUsers:  opts.SkipUsers,
		noPushdown: opts.DisablePushdown,
		vectorized: !opts.DisablePushdown && !opts.DisableVectorized,
	}
	acc := NewAccumulator(c.NumAggs())
	if workers <= 1 && opts.Pool == nil {
		for _, i := range chunks {
			if opts.cancelled() {
				break
			}
			sp := ct.child(i)
			st, err := c.runChunk(i, acc, rc)
			sp.End()
			if err != nil {
				return acc, err
			}
			recordChunk(opts, sp, st)
		}
		return acc, nil
	}
	if workers < 1 {
		workers = 1
	}
	// Chunk indices are fully buffered and the channel closed before any
	// task starts, so tasks never block on the producer: with a shared
	// pool, a task that reaches a worker always drains to completion and
	// frees the worker, which keeps concurrent queries deadlock-free even
	// on a one-worker pool.
	next := make(chan int, len(chunks))
	for _, i := range chunks {
		next <- i
	}
	close(next)
	var err error
	if opts.Materialize {
		err = runMaterialized(c, acc, next, workers, opts, rc, ct)
	} else {
		err = runStreaming(c, acc, next, workers, opts, rc, ct)
	}
	if err != nil {
		return acc, err
	}
	return acc, nil
}

// maxTraceChunks caps the per-chunk child spans attached to one shard's
// trace, so a traced query over a huge table stays bounded. The shard span
// still aggregates every chunk's counters (recordChunk), so shard-level
// numbers remain exact; only the per-chunk breakdown is truncated.
const maxTraceChunks = 32

// chunkTracer hands out per-chunk trace spans under one shard span, capped
// at maxTraceChunks. Safe for concurrent workers; inert when untraced.
type chunkTracer struct {
	parent *obs.Span
	n      atomic.Int64
}

func (t *chunkTracer) child(chunkIdx int) *obs.Span {
	if t.parent == nil {
		return nil
	}
	if t.n.Add(1) > maxTraceChunks {
		return nil
	}
	return t.parent.Child(fmt.Sprintf("chunk %d", chunkIdx))
}

// recordChunk folds one finished chunk's tallies into the query's shared
// ExecStats (atomic adds — the per-task-with-merge answer to sharing one
// stats struct across pool workers), the process metrics, the chunk's own
// trace span (sp, may be nil past the cap) and the shard span's aggregates.
func recordChunk(opts RunOptions, sp *obs.Span, st ChunkStats) {
	if opts.Stats != nil {
		opts.Stats.RowsScanned.Add(st.RowsScanned)
		opts.Stats.ValueBytesDecoded.Add(st.ValueBytesDecoded)
		opts.Stats.EncodedChecks.Add(st.EncodedChecks)
		opts.Stats.RunsEvaluated.Add(st.RunsEvaluated)
		opts.Stats.RowsBatched.Add(st.RowsBatched)
		opts.Stats.ChunksScanned.Add(1)
	}
	obs.RowsScannedTotal.Add(st.RowsScanned)
	obs.ValueBytesDecodedTotal.Add(st.ValueBytesDecoded)
	obs.EncodedChecksTotal.Add(st.EncodedChecks)
	obs.RunsEvaluatedTotal.Add(st.RunsEvaluated)
	obs.RowsBatchedTotal.Add(st.RowsBatched)
	obs.ChunksScannedTotal.Inc()
	if sp != nil {
		sp.SetInt("rows_scanned", st.RowsScanned)
		sp.SetInt("value_bytes_decoded", st.ValueBytesDecoded)
		sp.SetInt("encoded_checks", st.EncodedChecks)
		sp.SetInt("runs_evaluated", st.RunsEvaluated)
		sp.SetInt("rows_batched", st.RowsBatched)
	}
	if t := opts.Trace; t != nil {
		t.AddInt("rows_scanned", st.RowsScanned)
		t.AddInt("value_bytes_decoded", st.ValueBytesDecoded)
		t.AddInt("encoded_checks", st.EncodedChecks)
		t.AddInt("runs_evaluated", st.RunsEvaluated)
		t.AddInt("rows_batched", st.RowsBatched)
		t.AddInt("chunks_scanned", 1)
	}
}

// runStreaming is the default parallel merge: each worker folds one chunk
// into a small partial accumulator and streams it to the consumer (the
// calling goroutine) the moment the chunk finishes, taking a recycled
// accumulator back from the free list. Merging overlaps scanning — the
// first-finished chunk's cohorts are in the shard accumulator while slower
// chunks are still decoding — and peak memory holds at most one in-flight
// partial per worker instead of one ever-growing accumulator per worker.
//
// Deadlock-freedom with a shared pool is preserved: partials is buffered to
// the chunk count, so a task's send NEVER blocks (at most one non-empty
// partial per chunk is ever sent) and a task that reaches a pool worker
// always drains to completion, even while this goroutine is still blocked
// submitting the query's remaining tasks. Merge order is arrival order,
// which is observably irrelevant: measure sums add exactly (int64 values in
// float64), min/max and counts are order-free, and Result sorts cohorts —
// the equivalence test pins this bit-for-bit against the materializing path.
func runStreaming(c *Compiled, acc *Accumulator, next chan int, workers int, opts RunOptions, rc runCtx, ct *chunkTracer) error {
	partials := make(chan *Accumulator, cap(next))
	free := make(chan *Accumulator, workers)
	var ferr firstError
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		task := func() {
			defer wg.Done()
			mine := NewAccumulator(c.NumAggs())
			for i := range next {
				if opts.cancelled() || ferr.get() != nil {
					// Drain without scanning: the channel is already
					// closed, so this ends promptly and frees the worker.
					continue
				}
				sp := ct.child(i)
				st, err := c.runChunk(i, mine, rc)
				sp.End()
				if err != nil {
					ferr.set(err)
					continue
				}
				recordChunk(opts, sp, st)
				if len(mine.cohorts) == 0 {
					continue // nothing to merge; reuse directly
				}
				partials <- mine
				select {
				case mine = <-free:
				default:
					mine = NewAccumulator(c.NumAggs())
				}
			}
		}
		wg.Add(1)
		if opts.Pool != nil {
			if !opts.Pool.submit(task) {
				// Pool closed mid-shutdown: fall back to inline
				// execution so the query still completes.
				task()
			}
		} else {
			go task()
		}
	}
	go func() {
		wg.Wait()
		close(partials)
	}()
	for p := range partials {
		acc.Merge(p)
		// Merge adopts cohortState pointers for keys acc hasn't seen, so
		// only the partial's map may be reused — reset clears it without
		// touching the adopted states.
		p.reset()
		select {
		case free <- p:
		default:
		}
	}
	return ferr.get()
}

// runMaterialized is the pre-streaming reference merge: per-worker private
// accumulators, a full barrier, then a deterministic-order merge. Kept as
// the semantics baseline for the streaming equivalence test and for
// ablation measurements.
func runMaterialized(c *Compiled, acc *Accumulator, next chan int, workers int, opts RunOptions, rc runCtx, ct *chunkTracer) error {
	accs := make([]*Accumulator, workers)
	var ferr firstError
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mine := NewAccumulator(c.NumAggs())
		accs[w] = mine
		task := func() {
			defer wg.Done()
			for i := range next {
				if opts.cancelled() || ferr.get() != nil {
					continue
				}
				sp := ct.child(i)
				st, err := c.runChunk(i, mine, rc)
				sp.End()
				if err != nil {
					ferr.set(err)
					continue
				}
				recordChunk(opts, sp, st)
			}
		}
		wg.Add(1)
		if opts.Pool != nil {
			if !opts.Pool.submit(task) {
				task()
			}
		} else {
			go task()
		}
	}
	wg.Wait()
	if err := ferr.get(); err != nil {
		return err
	}
	for _, a := range accs {
		acc.Merge(a)
	}
	return nil
}
