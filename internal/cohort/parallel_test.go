package cohort

import (
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/storage"
)

// genStore compresses a synthetic multi-chunk workload.
func genStore(t *testing.T) *storage.Table {
	t.Helper()
	tbl := gen.Generate(gen.Config{Users: 120, Days: 20, MeanActions: 20, Seed: 7})
	st, err := storage.Build(tbl, storage.Options{ChunkSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumChunks() < 4 {
		t.Fatalf("fixture has %d chunks, want >= 4 for a meaningful parallel test", st.NumChunks())
	}
	return st
}

func genQuery() *Query {
	return &Query{
		BirthAction: "launch",
		BirthCond:   expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Lit{Val: expr.S("dwarf")}},
		AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
		CohortBy:    []CohortKey{{Col: "country"}},
		Aggs:        []AggSpec{{Func: Sum, Col: "gold", As: "spent"}, {Func: UserCount}},
	}
}

// mustRun executes c and fails the test on error. Only call from the test
// goroutine (it uses t.Fatal).
func mustRun(t *testing.T, c *Compiled, opts RunOptions) *Result {
	t.Helper()
	res, err := Run(c, opts)
	if err != nil {
		t.Fatalf("Run(%+v): %v", opts, err)
	}
	return res
}

// TestRunParallelismEquivalence checks that every fan-out configuration of
// Run produces the serial result, including workers far above the chunk
// count and pruning disabled.
func TestRunParallelismEquivalence(t *testing.T) {
	st := genStore(t)
	c, err := Compile(genQuery(), st)
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, c, RunOptions{})
	if len(want.Rows) == 0 {
		t.Fatal("serial run returned no rows; fixture too small")
	}
	for _, opts := range []RunOptions{
		{Parallelism: 2},
		{Parallelism: 3, DisablePruning: true},
		{Parallelism: -1},
		{Parallelism: 64},
	} {
		got := mustRun(t, c, opts)
		if d := want.Diff(got); d != "" {
			t.Errorf("Run(%+v) differs from serial run: %s", opts, d)
		}
	}
}

// TestRunOnPool checks pool-routed execution, including a one-worker pool
// (the degenerate case where a query's tasks must drain without deadlock)
// and many concurrent queries sharing a small pool.
func TestRunOnPool(t *testing.T) {
	st := genStore(t)
	c, err := Compile(genQuery(), st)
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, c, RunOptions{})
	for _, workers := range []int{1, 2, 4} {
		pool := NewPool(workers)
		got := mustRun(t, c, RunOptions{Parallelism: -1, Pool: pool})
		if d := want.Diff(got); d != "" {
			t.Errorf("pool(%d) run differs from serial run: %s", workers, d)
		}
		// 16 concurrent queries through the same bounded pool.
		var wg sync.WaitGroup
		errs := make(chan string, 16)
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := Run(c, RunOptions{Parallelism: 4, Pool: pool})
				if err != nil {
					errs <- err.Error()
					return
				}
				if d := want.Diff(res); d != "" {
					errs <- d
				}
			}()
		}
		wg.Wait()
		close(errs)
		for d := range errs {
			t.Errorf("pool(%d) concurrent run differs: %s", workers, d)
		}
		pool.Close()
	}
}

// TestRunRacingPoolClose hammers queries against a pool while it closes:
// no send-on-closed panic, and every query still returns the full result
// (submissions rejected by the closing pool fall back to inline runs).
func TestRunRacingPoolClose(t *testing.T) {
	st := genStore(t)
	c, err := Compile(genQuery(), st)
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, c, RunOptions{})
	for round := 0; round < 20; round++ {
		pool := NewPool(2)
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := Run(c, RunOptions{Parallelism: 4, Pool: pool})
				if err != nil {
					errs <- err.Error()
					return
				}
				if d := want.Diff(res); d != "" {
					errs <- d
				}
			}()
		}
		pool.Close() // races the submissions above
		wg.Wait()
		close(errs)
		for d := range errs {
			t.Fatalf("round %d: result diverged while racing Close: %s", round, d)
		}
	}
}

// TestRunOnClosedPool checks the shutdown fallback: queries routed at a
// closed pool still complete inline and return correct results.
func TestRunOnClosedPool(t *testing.T) {
	st := genStore(t)
	c, err := Compile(genQuery(), st)
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, c, RunOptions{})
	pool := NewPool(2)
	pool.Close()
	pool.Close() // double-close is a no-op
	got := mustRun(t, c, RunOptions{Parallelism: 4, Pool: pool})
	if d := want.Diff(got); d != "" {
		t.Errorf("closed-pool run differs from serial run: %s", d)
	}
}
