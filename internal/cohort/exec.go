package cohort

import (
	"encoding/binary"
	"fmt"

	"repro/internal/activity"
	"repro/internal/expr"
	"repro/internal/storage"
)

// Compiled is a cohort query bound to a specific compressed table: the birth
// action resolved to its global-id, conditions compiled to predicates, and
// cohort keys and measures resolved to column indices. A Compiled query is
// immutable and safe for concurrent RunChunk calls with distinct
// accumulators.
type Compiled struct {
	Query  *Query
	tbl    *storage.Table
	schema *activity.Schema

	birthGID uint64
	birthOK  bool // false if the birth action never occurs in the table

	birthPred expr.Pred // nil when no σb condition
	agePred   expr.Pred // nil when no σg condition

	// birthPush/agePush are the decoder-level pushdown forms of the two
	// conditions: the conjuncts answerable on encoded data plus a residual
	// predicate for the rest. nil when no conjunct is pushable — then the
	// plain compiled predicate above runs, at zero extra cost.
	birthPush *pushdown
	agePush   *pushdown

	keys []keySpec
	aggs []boundAgg
	unit Unit
}

// runCtx carries per-invocation execution knobs through runChunk.
type runCtx struct {
	// skipUsers holds user global-ids whose sealed rows are handled on the
	// union row path instead (see runChunk).
	skipUsers map[uint64]bool
	// noPushdown forces the generic predicate path, keeping the reference
	// semantics the equivalence tests compare against.
	noPushdown bool
	// vectorized selects the run-at-a-time kernel loop (runChunkVec). It
	// rides on pushdown's chunk binding, so noPushdown implies the scalar
	// reference loop regardless of this flag.
	vectorized bool
}

type keySpec struct {
	col      int
	isString bool
	isTime   bool
	bin      Unit
}

type boundAgg struct {
	fn  AggFunc
	col int // -1 for Count/UserCount
}

// Compile validates and binds q against tbl.
func Compile(q *Query, tbl *storage.Table) (*Compiled, error) {
	schema := tbl.Schema()
	if err := q.Validate(schema); err != nil {
		return nil, err
	}
	c := &Compiled{Query: q, tbl: tbl, schema: schema, unit: q.AgeUnit}
	c.birthGID, c.birthOK = tbl.LookupString(schema.ActionCol(), q.BirthAction)
	var err error
	if q.BirthCond != nil {
		if c.birthPred, err = expr.Compile(q.BirthCond, schema); err != nil {
			return nil, err
		}
	}
	if q.AgeCond != nil {
		if c.agePred, err = expr.Compile(q.AgeCond, schema); err != nil {
			return nil, err
		}
	}
	c.birthPush = compilePushdown(q.BirthCond, schema, tbl)
	c.agePush = compilePushdown(q.AgeCond, schema, tbl)
	c.keys, c.aggs = bindQuery(q, schema)
	return c, nil
}

// bindQuery resolves the cohort keys and aggregates of a validated query to
// schema column indices. It is shared by the chunk-scan (Compile) and
// row-scan (CompileRows) constructors: the two execution paths fold into one
// accumulator under the union executor, so they must bind — and therefore
// key and aggregate — identically.
func bindQuery(q *Query, schema *activity.Schema) (keys []keySpec, aggs []boundAgg) {
	for _, k := range q.CohortBy {
		idx := schema.ColIndex(k.Col)
		ks := keySpec{col: idx, isString: schema.IsStringCol(idx), bin: k.Bin}
		ks.isTime = schema.Col(idx).Type == activity.TypeTime
		keys = append(keys, ks)
	}
	for _, a := range q.Aggs {
		ba := boundAgg{fn: a.Func, col: -1}
		if a.Func.NeedsCol() {
			ba.col = schema.ColIndex(a.Col)
		}
		aggs = append(aggs, ba)
	}
	return keys, aggs
}

// NumAggs returns the number of aggregates, used to size accumulators.
func (c *Compiled) NumAggs() int { return len(c.aggs) }

// BirthActionPresent reports whether the birth action occurs anywhere in the
// table. When false every chunk is skipped and the result is empty.
func (c *Compiled) BirthActionPresent() bool { return c.birthOK }

// chunkEnv adapts one chunk position to the expr.Env interface. The current
// row and the birth row are both inside the same user block, so Birth()
// lookups are plain row accesses — no join, the essence of COHANA.
type chunkEnv struct {
	tbl     *storage.Table
	ch      *storage.Chunk
	schema  *activity.Schema
	userGID uint64
	row     int
	birth   int
	age     int64
	// decoded, when non-nil, accumulates the bytes of column values this env
	// materializes for predicates (string length, 8 per integer) — the
	// quantity predicate pushdown exists to shrink.
	decoded *int64
}

func (e *chunkEnv) value(idx, row int) expr.Value {
	if idx == e.schema.UserCol() {
		v := e.tbl.UserString(e.ch, e.userGID)
		if e.decoded != nil {
			*e.decoded += int64(len(v))
		}
		return expr.S(v)
	}
	if e.schema.IsStringCol(idx) {
		v := e.tbl.Dict(idx).Value(e.ch.StringID(idx, row))
		if e.decoded != nil {
			*e.decoded += int64(len(v))
		}
		return expr.S(v)
	}
	if e.decoded != nil {
		*e.decoded += 8
	}
	return expr.I(e.ch.Int(idx, row))
}

func (e *chunkEnv) Col(idx int) expr.Value      { return e.value(idx, e.row) }
func (e *chunkEnv) BirthCol(idx int) expr.Value { return e.value(idx, e.birth) }
func (e *chunkEnv) Age() int64                  { return e.age }

// CanSkipChunk implements the chunk-pruning step of Section 4.2: a chunk is
// skipped when the birth action's global-id is absent from the chunk's
// action dictionary (no user in the chunk was ever born — users never span
// chunks), or when a conjunct of the birth condition provably fails for
// every tuple of the chunk (dictionary miss for string equality / IN, or a
// disjoint chunk range for integer comparisons). Age conditions must never
// prune a chunk: its users still contribute to cohort sizes.
//
// Pruning answers from chunk-level stats without touching the payload — on
// lazy tables these come from the manifest, so a pruned chunk is never
// loaded, and the decision is independent of cache state (prune maps and
// result-cache fingerprints stay deterministic).
func (c *Compiled) CanSkipChunk(chunkIdx int) bool {
	if !c.birthOK {
		return true
	}
	if !c.tbl.ChunkMayHaveGID(chunkIdx, c.schema.ActionCol(), c.birthGID) {
		return true
	}
	for _, conj := range expr.Conjuncts(c.Query.BirthCond) {
		if c.conjunctImpossible(chunkIdx, conj) {
			return true
		}
	}
	return false
}

// conjunctImpossible conservatively decides whether conj is false for every
// tuple of the chunk. It recognizes the shapes that matter for the paper's
// workloads: equality / IN on dictionary columns and comparisons / BETWEEN
// on integer columns.
func (c *Compiled) conjunctImpossible(chunkIdx int, conj expr.Expr) bool {
	switch x := conj.(type) {
	case expr.Cmp:
		col, ok := x.L.(expr.Col)
		if !ok {
			return false
		}
		lit, ok := x.R.(expr.Lit)
		if !ok {
			return false
		}
		idx := c.schema.ColIndex(col.Name)
		if idx < 0 || idx == c.schema.UserCol() {
			return false
		}
		if c.schema.IsStringCol(idx) {
			if x.Op != expr.OpEq || lit.Val.Kind != expr.KindString {
				return false
			}
			gid, ok := c.tbl.LookupString(idx, lit.Val.Str)
			if !ok {
				return true // value nowhere in the table
			}
			return !c.tbl.ChunkMayHaveGID(chunkIdx, idx, gid)
		}
		v, ok := c.litInt(idx, lit.Val)
		if !ok {
			return false
		}
		mn, mx := c.tbl.ChunkIntRange(chunkIdx, idx)
		switch x.Op {
		case expr.OpEq:
			return v < mn || v > mx
		case expr.OpLt:
			return mn >= v
		case expr.OpLe:
			return mn > v
		case expr.OpGt:
			return mx <= v
		case expr.OpGe:
			return mx < v
		default:
			return false
		}
	case expr.In:
		col, ok := x.L.(expr.Col)
		if !ok {
			return false
		}
		idx := c.schema.ColIndex(col.Name)
		if idx < 0 || idx == c.schema.UserCol() || !c.schema.IsStringCol(idx) {
			return false
		}
		for _, v := range x.List {
			if v.Kind != expr.KindString {
				return false
			}
			if gid, ok := c.tbl.LookupString(idx, v.Str); ok && c.tbl.ChunkMayHaveGID(chunkIdx, idx, gid) {
				return false // some member may be present: cannot prune
			}
		}
		return true
	case expr.Between:
		col, ok := x.L.(expr.Col)
		if !ok {
			return false
		}
		idx := c.schema.ColIndex(col.Name)
		if idx < 0 || c.schema.IsStringCol(idx) {
			return false
		}
		lo, okLo := c.litInt(idx, x.Lo)
		hi, okHi := c.litInt(idx, x.Hi)
		if !okLo || !okHi {
			return false
		}
		mn, mx := c.tbl.ChunkIntRange(chunkIdx, idx)
		return hi < mn || lo > mx
	default:
		return false
	}
}

// litInt coerces a literal for integer column idx, parsing date strings for
// time columns (mirroring expr.Compile's coercion).
func (c *Compiled) litInt(idx int, v expr.Value) (int64, bool) {
	return litIntFor(c.schema, idx, v)
}

// RunChunk executes the fused σb → σg → γc pipeline (Algorithms 1 and 2)
// over one chunk, folding into acc. Callers should consult CanSkipChunk
// first; RunChunk is still correct without it, just slower. On lazy tables
// the chunk is loaded (and pinned) on demand; the error is non-nil only when
// that load fails.
func (c *Compiled) RunChunk(chunkIdx int, acc *Accumulator) error {
	_, err := c.runChunk(chunkIdx, acc, runCtx{})
	return err
}

// runChunk is RunChunk with per-invocation knobs, returning the chunk's
// decoder-level tallies. rc.skipUsers holds user global-ids to skip: the
// union executor passes the users that have fresh delta tuples — their
// sealed rows are processed together with the delta on the row path instead,
// so no user is aggregated twice. Any semantic change to the per-block loop
// below must land in RowQuery.Scan too — the union equivalence test pins the
// two paths to identical results.
func (c *Compiled) runChunk(chunkIdx int, acc *Accumulator, rc runCtx) (ChunkStats, error) {
	if !c.birthOK {
		return ChunkStats{}, nil
	}
	if rc.vectorized && !rc.noPushdown {
		return c.runChunkVec(chunkIdx, acc, rc)
	}
	ch, release, err := c.tbl.PinChunk(chunkIdx)
	if err != nil {
		return ChunkStats{}, err
	}
	defer release()
	scr := getScratch()
	defer putScratch(scr)
	sc := &scr.sc
	sc.Reset(c.tbl, ch)
	var rowsScanned, bytesDecoded, encodedChecks int64
	env := &scr.env
	*env = chunkEnv{tbl: c.tbl, ch: ch, schema: c.schema, decoded: &bytesDecoded}
	timeCol := c.schema.TimeCol()
	actionCol := c.schema.ActionCol()

	// Bind the pushdown forms to this chunk: the birth action's chunk-id
	// (the whole chunk is birth-free when absent) and the per-chunk row
	// predicates over encoded data.
	usePush := !rc.noPushdown
	var birthCID uint64
	if usePush {
		var inChunk bool
		if birthCID, inChunk = ch.ChunkIDOf(actionCol, c.birthGID); !inChunk {
			return ChunkStats{}, nil // no user here ever performs the birth action
		}
	}
	var bBirth, bAge boundPushdown
	haveBirthPush := usePush && c.birthPush != nil
	haveAgePush := usePush && c.agePush != nil
	if haveBirthPush {
		bBirth = c.birthPush.bindChunk(ch)
	}
	if haveAgePush {
		bAge = c.agePush.bindChunk(ch)
	}

	for {
		block, ok := sc.GetNextUser()
		if !ok {
			break
		}
		if rc.skipUsers != nil && rc.skipUsers[block.GID] {
			sc.SkipCurUser()
			continue
		}
		// GetBirthTuple: first tuple of the block performing the birth
		// action (time-ordering property). With pushdown the search compares
		// raw chunk-ids against the pre-resolved birthCID — no per-row
		// chunk-dict → global-dict translation.
		var birthRow int
		born := false
		if usePush {
			for r := block.First; r < block.End(); r++ {
				encodedChecks++
				if ch.ChunkID(actionCol, r) == birthCID {
					birthRow, born = r, true
					break
				}
			}
		} else {
			birthRow, born = sc.FindBirthRow(block, c.birthGID)
		}
		if !born {
			sc.SkipCurUser()
			continue
		}
		env.userGID = block.GID
		env.birth = birthRow
		// σb: check the birth selection condition on the birth tuple only;
		// an unqualified user's whole block is skipped (SkipCurUser). The
		// pushed conjuncts run on encoded data first; the residual (and the
		// fully generic predicate when nothing was pushable) decodes values
		// only for birth tuples that survive them.
		if haveBirthPush {
			encodedChecks++
			if !bBirth.passEncoded(birthRow, 0) {
				sc.SkipCurUser()
				continue
			}
			if bBirth.residual != nil {
				env.row = birthRow
				env.age = 0
				if !bBirth.residual(env) {
					sc.SkipCurUser()
					continue
				}
			}
		} else if c.birthPred != nil {
			env.row = birthRow
			env.age = 0
			if !c.birthPred(env) {
				sc.SkipCurUser()
				continue
			}
		}
		birthTime := ch.Int(timeCol, birthRow)
		bytesDecoded += 8
		scr.keyBuf = c.appendKey(scr.keyBuf[:0], ch, birthRow, birthTime)
		cs := acc.cohortBytes(scr.keyBuf, func() []string { return c.displayKey(ch, birthRow, birthTime) })
		cs.size++ // Hc[d_b[L]]++
		// γc inner loop over the user's age activity tuples. Ages are
		// nondecreasing (time ordering), so UserCount dedup is a single
		// comparison against the last counted age.
		lastCountedAge := int64(-1)
		for row := block.First; row < block.End(); row++ {
			rowsScanned++
			age := AgeOf(ch.Int(timeCol, row), birthTime, c.unit)
			bytesDecoded += 8
			if age <= 0 {
				continue
			}
			// σg: pushed conjuncts on encoded data first, then the residual;
			// a row rejected in the encoded domain decodes nothing.
			if haveAgePush {
				encodedChecks++
				if !bAge.passEncoded(row, age) {
					continue
				}
				if bAge.residual != nil {
					env.row = row
					env.age = age
					if !bAge.residual(env) {
						continue
					}
				}
			} else if c.agePred != nil {
				env.row = row
				env.age = age
				if !c.agePred(env) {
					continue
				}
			}
			b := cs.bucket(age, len(c.aggs))
			for k, agg := range c.aggs {
				st := &b.states[k]
				switch agg.fn {
				case Count:
					st.cnt++
				case UserCount:
					if age != lastCountedAge {
						st.users++
					}
				default:
					v := ch.Int(agg.col, row)
					bytesDecoded += 8
					st.sum += float64(v)
					st.cnt++
					if !st.has {
						st.min, st.max, st.has = v, v, true
					} else {
						if v < st.min {
							st.min = v
						}
						if v > st.max {
							st.max = v
						}
					}
				}
			}
			if age != lastCountedAge {
				lastCountedAge = age
			}
		}
	}
	return ChunkStats{RowsScanned: rowsScanned, ValueBytesDecoded: bytesDecoded, EncodedChecks: encodedChecks}, nil
}

// appendKey encodes the cohort key of the user born at birthRow. String
// attributes are encoded by value (length-prefixed), not by dictionary id:
// the row-scan path over the uncompressed delta has no dictionary, and both
// paths must produce identical keys for the partial accumulators to merge a
// cohort into one group.
func (c *Compiled) appendKey(dst []byte, ch *storage.Chunk, birthRow int, birthTime int64) []byte {
	for _, k := range c.keys {
		switch {
		case k.isTime:
			dst = binary.AppendVarint(dst, TimeBinStart(birthTime, k.bin))
		case k.isString:
			dst = appendStringKey(dst, c.tbl.Dict(k.col).Value(ch.StringID(k.col, birthRow)))
		default:
			dst = binary.AppendVarint(dst, ch.Int(k.col, birthRow))
		}
	}
	return dst
}

// appendStringKey appends a self-delimiting string key component.
func appendStringKey(dst []byte, v string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// displayKey renders the cohort key attributes for output rows.
func (c *Compiled) displayKey(ch *storage.Chunk, birthRow int, birthTime int64) []string {
	out := make([]string, len(c.keys))
	for i, k := range c.keys {
		switch {
		case k.isTime:
			out[i] = FormatTimeBin(TimeBinStart(birthTime, k.bin))
		case k.isString:
			out[i] = c.tbl.Dict(k.col).Value(ch.StringID(k.col, birthRow))
		default:
			out[i] = fmt.Sprintf("%d", ch.Int(k.col, birthRow))
		}
	}
	return out
}

// KeyColNames returns the display names of the cohort attributes.
func (c *Compiled) KeyColNames() []string {
	out := make([]string, len(c.Query.CohortBy))
	for i, k := range c.Query.CohortBy {
		out[i] = k.Col
	}
	return out
}
