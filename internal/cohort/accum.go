package cohort

import (
	"math"
	"sort"
	"strings"
)

// Accumulator holds the partial aggregation state of a cohort query: the
// cohort-size table Hc and the cohort-metric table Hg of Algorithm 2. Ages
// are kept in dense per-cohort arrays — the array-based hash tables the
// paper recommends for the aggregation inner loop (Section 4.4) — so the hot
// path is an array index, not a map probe.
type Accumulator struct {
	nAggs   int
	cohorts map[string]*cohortState
}

type cohortState struct {
	display []string
	size    int64    // Hc entry: distinct qualified users in the cohort
	ages    []bucket // Hg entries indexed by age-1, grown on demand
}

type bucket struct {
	present bool
	states  []aggState
}

type aggState struct {
	sum   float64
	cnt   int64
	min   int64
	max   int64
	has   bool // min/max initialized
	users int64
}

// NewAccumulator creates an accumulator for nAggs aggregates.
func NewAccumulator(nAggs int) *Accumulator {
	return &Accumulator{nAggs: nAggs, cohorts: make(map[string]*cohortState)}
}

// reset empties the accumulator for reuse, keeping the map's allocated
// buckets. Safe after the accumulator was merged into another: Merge adopts
// cohortState pointers, and clearing this map does not touch the adopted
// states. The streaming executor recycles per-chunk partials through it.
func (a *Accumulator) reset() { clear(a.cohorts) }

// cohort returns (creating if needed) the state for a cohort key. display is
// only consulted on creation.
func (a *Accumulator) cohort(key string, display func() []string) *cohortState {
	cs, ok := a.cohorts[key]
	if !ok {
		cs = &cohortState{display: display()}
		a.cohorts[key] = cs
	}
	return cs
}

// cohortBytes is cohort for a byte-slice key: the map probe compiles to a
// no-allocation lookup, and the key is copied into a string only the first
// time the cohort is seen — so the per-user-block hot path stays free of
// conversion garbage on warm accumulators.
func (a *Accumulator) cohortBytes(key []byte, display func() []string) *cohortState {
	if cs, ok := a.cohorts[string(key)]; ok {
		return cs
	}
	cs := &cohortState{display: display()}
	a.cohorts[string(key)] = cs
	return cs
}

// bucket returns (creating if needed) the bucket for an age.
func (cs *cohortState) bucket(age int64, nAggs int) *bucket {
	idx := int(age - 1)
	for idx >= len(cs.ages) {
		// Grow geometrically to keep amortized cost constant.
		newCap := len(cs.ages)*2 + 4
		if idx >= newCap {
			newCap = idx + 1
		}
		grown := make([]bucket, newCap)
		copy(grown, cs.ages)
		cs.ages = grown
	}
	b := &cs.ages[idx]
	if !b.present {
		b.present = true
		b.states = make([]aggState, nAggs)
	}
	return b
}

// addMeasureRun folds a run of k equal measure values v into the state in
// one operation — the run-at-a-time form of the scalar per-row fold. The sum
// update is exact (int64 products in float64 stay integral far below 2^53),
// so the result is bit-identical to k scalar additions.
func (st *aggState) addMeasureRun(v, k int64) {
	st.sum += float64(v * k)
	st.cnt += k
	if !st.has {
		st.min, st.max, st.has = v, v, true
	} else {
		if v < st.min {
			st.min = v
		}
		if v > st.max {
			st.max = v
		}
	}
}

// Merge folds other into a. Distinct users never span accumulators (chunks
// hold whole users), so user counts add.
func (a *Accumulator) Merge(other *Accumulator) {
	for key, ocs := range other.cohorts {
		cs, ok := a.cohorts[key]
		if !ok {
			a.cohorts[key] = ocs
			continue
		}
		cs.size += ocs.size
		for i := range ocs.ages {
			ob := &ocs.ages[i]
			if !ob.present {
				continue
			}
			b := cs.bucket(int64(i+1), a.nAggs)
			for k := range b.states {
				s, os := &b.states[k], &ob.states[k]
				s.sum += os.sum
				s.cnt += os.cnt
				s.users += os.users
				if os.has {
					if !s.has {
						s.min, s.max, s.has = os.min, os.max, true
					} else {
						if os.min < s.min {
							s.min = os.min
						}
						if os.max > s.max {
							s.max = os.max
						}
					}
				}
			}
		}
	}
}

// Result materializes the accumulated state into a sorted Result.
func (a *Accumulator) Result(keyCols []string, aggs []AggSpec) *Result {
	res := &Result{KeyCols: keyCols}
	for _, s := range aggs {
		res.AggNames = append(res.AggNames, s.Name())
	}
	keys := make([]string, 0, len(a.cohorts))
	for k := range a.cohorts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cs := a.cohorts[k]
		for i := range cs.ages {
			b := &cs.ages[i]
			if !b.present {
				continue
			}
			row := Row{
				Cohort: cs.display,
				Age:    int64(i + 1),
				Size:   cs.size,
				Aggs:   make([]float64, len(aggs)),
			}
			for j, spec := range aggs {
				st := &b.states[j]
				switch spec.Func {
				case Sum:
					row.Aggs[j] = st.sum
				case Count:
					row.Aggs[j] = float64(st.cnt)
				case Avg:
					if st.cnt > 0 {
						row.Aggs[j] = st.sum / float64(st.cnt)
					} else {
						row.Aggs[j] = math.NaN()
					}
				case Min:
					row.Aggs[j] = float64(st.min)
				case Max:
					row.Aggs[j] = float64(st.max)
				case UserCount:
					row.Aggs[j] = float64(st.users)
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	res.Sort()
	return res
}

// CohortSizes returns the Hc table keyed by the display key, mainly for
// tests.
func (a *Accumulator) CohortSizes() map[string]int64 {
	out := make(map[string]int64, len(a.cohorts))
	for _, cs := range a.cohorts {
		out[strings.Join(cs.display, "\x00")] = cs.size
	}
	return out
}
