package cohort

// Run-aware vectorized execution. The storage format of Section 4.1 leaves
// long runs of equal codes in the encoded columns: dimension attributes
// (country, role, …) are constant across a user's block, the action and time
// columns run in bursts, and sorted times make ages nondecreasing inside a
// block. runChunkVec exploits that instead of flattening it away. Each
// referenced column's codes are extracted once per chunk in a single
// sequential batch — the chunk is the paper's processing unit, and one
// AppendRange pass costs a shift and a mask per value where the row-at-a-time
// loop pays a random-access Get — and every decision is then made once per
// (value-id, runLength) run over the flat code arrays:
//
//   - the birth search compares one chunk-id per action run;
//   - same-age spans end at the first timestamp of the next age, a bound
//     computed once per span, so ages and pushed AGE conjuncts evaluate once
//     per distinct age and the span walk is one compare per row;
//   - pushed column conjuncts evaluate through a per-conjunct memo over the
//     decoded codes: the kernel closure runs only when the code changes, so
//     a run of k equal codes costs one encoded-domain verdict and k-1 cached
//     reads, and a failing conjunct short-circuits the rest of the row;
//   - the aggregation bucket is resolved once per age span, USER_COUNT
//     increments once per span with survivors (equal to the scalar
//     last-counted-age dedup, since ages strictly increase span to span),
//     and measure values fold off the batch-decoded codes.
//
// Residual conjuncts (Birth() references, OR trees, …) still run per
// surviving row through the generic expr path, so the vectorized loop is
// bit-identical to the scalar reference in runChunk — the equivalence
// property test and fuzz target pin exactly that.

import (
	"sync"

	"repro/internal/scan"
)

// chunkScratch bundles every allocation a chunk scan needs — the expr
// environment, the scanner, the cohort-key buffer, the code buffers and the
// per-conjunct kernel memo — so executors reuse one set per chunk task
// instead of allocating per chunk. Recycled through scratchPool.
type chunkScratch struct {
	env    chunkEnv
	sc     scan.Scanner
	keyBuf []byte

	actionBuf []uint64
	timeBuf   []uint64
	colBufs   [][]uint64 // chunk code batches, one per active conjunct
	measBufs  [][]uint64 // chunk measure batches, one per aggregate

	// act is the chunk's kernel-bearing conjuncts, compacted so the per-row
	// loop never branches over chunk-constant entries. The parallel slices
	// hold each conjunct's lazily decoded chunk codes and its run memo.
	act      []vecCond
	vcCodes  [][]uint64
	vcPrev   []uint64
	vcVerd   []bool
	vcValid  []bool
	vcLoaded []bool

	// Per-aggregate measure state: lazily decoded chunk codes (shared with a
	// conjunct on the same column), the chunk frame minimum, and load flags.
	measCodes  [][]uint64
	measMin    []int64
	measUse    []int // index into act whose codes a measure can share, or -1
	measLoaded []bool
}

var scratchPool = sync.Pool{New: func() any { return new(chunkScratch) }}

func getScratch() *chunkScratch { return scratchPool.Get().(*chunkScratch) }

// putScratch returns scr to the pool, dropping the table/chunk references so
// a pooled scratch never keeps a lazily-loaded segment reachable across
// queries — the bound kernels in act capture the chunk, so they are cleared
// too. The code buffers keep their capacity — that is the point.
func putScratch(scr *chunkScratch) {
	scr.env = chunkEnv{}
	scr.sc.Reset(nil, nil)
	clear(scr.act)
	scr.act = scr.act[:0]
	scratchPool.Put(scr)
}

// growScratch sizes the per-conjunct and per-aggregate slices for a chunk
// with nAct active conjuncts and nAggs aggregates, reusing prior capacity.
func (scr *chunkScratch) growScratch(nAct, nAggs int) {
	scr.colBufs = growSlice(scr.colBufs, nAct)
	scr.vcCodes = growSlice(scr.vcCodes, nAct)
	scr.vcPrev = growSlice(scr.vcPrev, nAct)
	scr.vcVerd = growSlice(scr.vcVerd, nAct)
	scr.vcValid = growSlice(scr.vcValid, nAct)
	scr.vcLoaded = growSlice(scr.vcLoaded, nAct)
	scr.measBufs = growSlice(scr.measBufs, nAggs)
	scr.measCodes = growSlice(scr.measCodes, nAggs)
	scr.measMin = growSlice(scr.measMin, nAggs)
	scr.measUse = growSlice(scr.measUse, nAggs)
	scr.measLoaded = growSlice(scr.measLoaded, nAggs)
}

// growSlice returns a slice of length n, preserving s's backing array when
// its capacity suffices. Contents are unspecified — callers fully initialize.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// runChunkVec is the run-at-a-time twin of the scalar loop in runChunk. Any
// semantic change here must land in runChunk (and RowQuery.Scan) too — the
// vectorized equivalence tests pin the paths to bit-identical results.
func (c *Compiled) runChunkVec(chunkIdx int, acc *Accumulator, rc runCtx) (ChunkStats, error) {
	ch, release, err := c.tbl.PinChunk(chunkIdx)
	if err != nil {
		return ChunkStats{}, err
	}
	defer release()
	actionCol := c.schema.ActionCol()
	timeCol := c.schema.TimeCol()
	birthCID, inChunk := ch.ChunkIDOf(actionCol, c.birthGID)
	if !inChunk {
		return ChunkStats{}, nil // no user here ever performs the birth action
	}
	scr := getScratch()
	defer putScratch(scr)
	sc := &scr.sc
	sc.Reset(c.tbl, ch)
	var st ChunkStats
	env := &scr.env
	*env = chunkEnv{tbl: c.tbl, ch: ch, schema: c.schema, decoded: &st.ValueBytesDecoded}

	var bBirth boundPushdown
	haveBirthPush := c.birthPush != nil
	if haveBirthPush {
		bBirth = c.birthPush.bindChunk(ch)
	}
	var vAge boundVec
	if c.agePush != nil {
		vAge = c.agePush.bindVec(ch)
	}
	// The per-row tail: pushed conjuncts leave vAge.residual; with nothing
	// pushable the whole σg predicate runs there.
	residual := c.agePred
	if c.agePush != nil {
		residual = vAge.residual
	}
	rows := ch.NumRows()
	tmin := ch.Ints(timeCol).Min()

	// Compact the kernel-bearing conjuncts: chunk-constant entries either
	// fail every block of the chunk (constFalse) or pass unconditionally and
	// vanish from the per-row loop.
	act := scr.act[:0]
	constFalse := false
	for _, vc := range vAge.cols {
		if vc.kernel == nil {
			if !vc.verdict {
				constFalse = true
			}
			continue
		}
		act = append(act, vc)
	}
	scr.act = act
	nAct := len(act)
	nAggs := len(c.aggs)
	scr.growScratch(nAct, nAggs)
	for ci := 0; ci < nAct; ci++ {
		scr.vcLoaded[ci] = false
		scr.vcValid[ci] = false
	}
	// Measure aggregates: frame minima are chunk constants, and a measure on
	// the same column as an integer conjunct shares its decoded codes.
	for ai := range c.aggs {
		agg := &c.aggs[ai]
		scr.measLoaded[ai] = false
		if agg.fn == Count || agg.fn == UserCount {
			continue
		}
		scr.measMin[ai] = ch.Ints(agg.col).Min()
		scr.measUse[ai] = -1
		for ci := range act {
			if !act[ci].isString && act[ci].col == agg.col {
				scr.measUse[ai] = ci
				break
			}
		}
	}
	// The action column feeds the birth search of every block (and often a
	// pushed conjunct too), so it is extracted for the whole chunk up front —
	// the sequential batch costs about a nanosecond per code, far below the
	// per-block loads it replaces.
	ab := sc.LoadStringRuns(actionCol, 0, rows, scr.actionBuf)
	scr.actionBuf = ab.Buf()
	actionCodes := ab.Buf()
	for ci := range act {
		if act[ci].isString && act[ci].col == actionCol {
			scr.vcCodes[ci] = actionCodes // the conjunct memo shares the batch
			scr.vcLoaded[ci] = true
		}
	}
	// The time column is decoded on the first block that survives the birth
	// search and σb: every later step reads it (birth time, age boundaries).
	var traw []uint64
	keyBuf := scr.keyBuf

	for {
		block, ok := sc.GetNextUser()
		if !ok {
			break
		}
		if rc.skipUsers != nil && rc.skipUsers[block.GID] {
			continue
		}
		// GetBirthTuple, run at a time: one chunk-id compare rejects a whole
		// run of non-birth actions; the first matching run's first row is the
		// birth tuple (time-ordering property).
		birthRow := -1
		for i, end := block.First, block.End(); i < end; {
			code := actionCodes[i]
			j := i + 1
			for j < end && actionCodes[j] == code {
				j++
			}
			st.RunsEvaluated++
			st.EncodedChecks++
			if code == birthCID {
				birthRow = i
				break
			}
			i = j
		}
		if birthRow < 0 {
			continue
		}
		env.userGID = block.GID
		env.birth = birthRow
		// σb touches the birth tuple only — a single row either way, so this
		// is shared verbatim with the scalar path.
		if haveBirthPush {
			st.EncodedChecks++
			if !bBirth.passEncoded(birthRow, 0) {
				continue
			}
			if bBirth.residual != nil {
				env.row, env.age = birthRow, 0
				if !bBirth.residual(env) {
					continue
				}
			}
		} else if c.birthPred != nil {
			env.row, env.age = birthRow, 0
			if !c.birthPred(env) {
				continue
			}
		}
		if traw == nil {
			tb := sc.LoadIntRuns(timeCol, 0, rows, scr.timeBuf)
			scr.timeBuf = tb.Buf()
			traw = tb.Buf() // raw frame-of-reference deltas: ts = tmin + traw[r]
		}
		// The batch extraction above is amortization; the decoded-bytes
		// counter tracks time values the query consumes — this block's.
		st.ValueBytesDecoded += 8 * int64(block.N)
		birthTime := tmin + int64(traw[birthRow])
		keyBuf = c.appendKey(keyBuf[:0], ch, birthRow, birthTime)
		cs := acc.cohortBytes(keyBuf, func() []string { return c.displayKey(ch, birthRow, birthTime) })
		cs.size++ // Hc[d_b[L]]++
		st.RowsScanned += int64(block.N)
		st.RowsBatched += int64(block.N)
		if constFalse {
			continue // a chunk-constant conjunct rejects every activity tuple
		}

		// Age selection off the sorted time column: one AgeOf per maximal
		// same-age span, then the span end is the first timestamp of the next
		// age — one integer compare per row, no division. Each span resolves
		// its pushed AGE verdict and aggregation bucket once; the rows inside
		// run through the conjunct memo, which re-evaluates a kernel only
		// when its column's code changes (once per run).
		for r, end := block.First, block.End(); r < end; {
			age := AgeOf(tmin+int64(traw[r]), birthTime, c.unit)
			// First timestamp with a greater age, as a raw delta: birth for
			// pre-birth rows (-1), birth+1 for the birth instant (0), the
			// next unit boundary otherwise.
			var thresh int64
			switch {
			case age < 0:
				thresh = birthTime - tmin
			case age == 0:
				thresh = birthTime + 1 - tmin
			default:
				thresh = birthTime + age*c.unit.Seconds() - tmin
			}
			spanEnd := r + 1
			for spanEnd < end && int64(traw[spanEnd]) < thresh {
				spanEnd++
			}
			st.RunsEvaluated++
			if age <= 0 {
				r = spanEnd
				continue
			}
			if len(vAge.ageConds) > 0 {
				st.EncodedChecks++
				if !vAge.passAge(age) {
					r = spanEnd
					continue
				}
			}
			var b *bucket // resolved at the span's first surviving row
			if residual != nil {
				env.age = age
			}
			for ; r < spanEnd; r++ {
				pass := true
				for ci := 0; ci < nAct; ci++ {
					if !scr.vcLoaded[ci] {
						// Lazy chunk decode: a conjunct column every earlier
						// check already rejected is never extracted.
						vc := &act[ci]
						var cb scan.RunBatch
						if vc.isString {
							cb = sc.LoadStringRuns(vc.col, 0, rows, scr.colBufs[ci])
						} else {
							cb = sc.LoadIntRuns(vc.col, 0, rows, scr.colBufs[ci])
						}
						scr.colBufs[ci] = cb.Buf()
						scr.vcCodes[ci] = cb.Buf()
						scr.vcLoaded[ci] = true
					}
					code := scr.vcCodes[ci][r]
					if !scr.vcValid[ci] || code != scr.vcPrev[ci] {
						// A new run of this column: one encoded-domain kernel
						// verdict covers it until the code changes again.
						scr.vcPrev[ci] = code
						scr.vcVerd[ci] = act[ci].kernel(code)
						scr.vcValid[ci] = true
						st.RunsEvaluated++
						st.EncodedChecks++
					}
					if !scr.vcVerd[ci] {
						pass = false
						break
					}
				}
				if !pass {
					continue
				}
				// Residual conjuncts (or the whole generic σg when nothing
				// was pushable) run per surviving row; value decodes go
				// through the env and are tallied there, exactly as on the
				// scalar path.
				if residual != nil {
					env.row = r
					if !residual(env) {
						continue
					}
				}
				if b == nil {
					b = cs.bucket(age, nAggs)
					// USER_COUNT: once per age span with survivors. Ages
					// strictly increase span to span, so this equals the
					// scalar last-counted-age dedup.
					for ai := range c.aggs {
						if c.aggs[ai].fn == UserCount {
							b.states[ai].users++
						}
					}
				}
				for ai := range c.aggs {
					agg := &c.aggs[ai]
					switch agg.fn {
					case Count:
						b.states[ai].cnt++
					case UserCount: // handled at the span's first survivor
					default:
						if !scr.measLoaded[ai] {
							if ci := scr.measUse[ai]; ci >= 0 && scr.vcLoaded[ci] {
								scr.measCodes[ai] = scr.vcCodes[ci]
							} else {
								mb := sc.LoadIntRuns(agg.col, 0, rows, scr.measBufs[ai])
								scr.measBufs[ai] = mb.Buf()
								scr.measCodes[ai] = mb.Buf()
							}
							scr.measLoaded[ai] = true
						}
						st.ValueBytesDecoded += 8
						b.states[ai].addMeasureRun(scr.measMin[ai]+int64(scr.measCodes[ai][r]), 1)
					}
				}
			}
		}
	}
	scr.keyBuf = keyBuf
	return st, nil
}
