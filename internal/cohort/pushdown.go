package cohort

import (
	"sync/atomic"

	"repro/internal/activity"
	"repro/internal/expr"
	"repro/internal/storage"
)

// This file compiles the pushable part of a selection condition down to the
// encoded column domain. The storage format makes two families of predicates
// answerable without decoding values (Section 4.1's compression schemes):
//
//   - equality / IN on dictionary-encoded string columns: the literal
//     resolves to a global-id once per table and to a chunk-id once per
//     chunk, so each row check is a bit-packed read and an integer compare —
//     no dictionary value is materialized, no string is compared;
//   - comparisons / BETWEEN on frame-of-reference integer (and time)
//     columns: the threshold translates into the chunk's delta domain once
//     per chunk, so each row check compares the raw bit-packed delta — the
//     MIN addition never happens;
//   - AGE conjuncts: evaluated on the already-computed age directly, with no
//     Env round trip.
//
// Conjuncts outside these shapes (Birth() references, OR trees, predicates
// on the RLE user column) stay on the generic expr.Pred path as a residual,
// evaluated only for rows that survive the encoded checks. A surviving
// conjunct set therefore decodes value columns only for rows that every
// pushed predicate admits — the "skip decoding what no surviving row
// touches" half of the tentpole.

// ExecStats counts decoder-level work during query execution. Workers fold
// per-chunk tallies in with atomic adds, so one ExecStats can be shared
// across the whole scatter-gather fan-out of a query. The benchmark's
// pushdown-selectivity sweep gates on ValueBytesDecoded: a high-selectivity
// query must decode strictly fewer value bytes with pushdown on.
type ExecStats struct {
	// RowsScanned counts activity tuples visited by the age-selection loop.
	RowsScanned atomic.Int64
	// ValueBytesDecoded counts bytes of column values materialized out of
	// the encoded domain: dictionary strings surfaced to predicates (their
	// byte length) and integers decoded for predicates or measures (8 bytes
	// each). Encoded-domain checks do not count — that is the point.
	ValueBytesDecoded atomic.Int64
	// EncodedChecks counts per-row predicate evaluations answered entirely
	// in the encoded domain (chunk-id or delta-domain compares).
	EncodedChecks atomic.Int64
	// ChunksScanned / ChunksPruned count the post-pruning scan fan-out vs
	// the chunks skipped by birth-range pruning (Section 4.2).
	ChunksScanned atomic.Int64
	ChunksPruned  atomic.Int64
}

// ChunkStats is one chunk scan's decoder-level tallies. runChunk returns
// them by value so each chunk task owns its counts; callers fold them into
// the shared ExecStats atomics, the process metrics and the trace — the
// per-task-with-merge shape that keeps the hot loop free of shared writes.
type ChunkStats struct {
	RowsScanned       int64
	ValueBytesDecoded int64
	EncodedChecks     int64
}

// pushdown is the table-bound compiled form of a condition's pushable
// conjuncts plus the residual generic predicate (nil when fully pushed).
type pushdown struct {
	ageConds []func(int64) bool
	colConds []colCond
	residual expr.Pred
}

// colCond is one pushable column conjunct; bind resolves it against a
// chunk's dictionaries/frames into a per-row predicate over encoded data.
type colCond struct {
	bind func(ch *storage.Chunk) func(row int) bool
}

// boundPushdown is a pushdown bound to one chunk.
type boundPushdown struct {
	ageConds []func(int64) bool
	rowConds []func(row int) bool
	residual expr.Pred
}

func (pd *pushdown) bindChunk(ch *storage.Chunk) boundPushdown {
	bp := boundPushdown{ageConds: pd.ageConds, residual: pd.residual}
	if len(pd.colConds) > 0 {
		bp.rowConds = make([]func(int) bool, len(pd.colConds))
		for i, cc := range pd.colConds {
			bp.rowConds[i] = cc.bind(ch)
		}
	}
	return bp
}

// passEncoded evaluates the encoded-domain conjuncts; the caller evaluates
// the residual (if any) only when this passes.
func (bp *boundPushdown) passEncoded(row int, age int64) bool {
	for _, f := range bp.ageConds {
		if !f(age) {
			return false
		}
	}
	for _, f := range bp.rowConds {
		if !f(row) {
			return false
		}
	}
	return true
}

func alwaysRow(v bool) func(int) bool { return func(int) bool { return v } }

// compilePushdown splits cond into pushable conjuncts and a residual. It
// returns nil when nothing is pushable (the caller keeps the plain compiled
// predicate, zero overhead) or when the residual unexpectedly fails to
// compile (cond as a whole already compiled, so this is purely defensive).
func compilePushdown(cond expr.Expr, schema *activity.Schema, tbl *storage.Table) *pushdown {
	if cond == nil {
		return nil
	}
	var pd pushdown
	var residual []expr.Expr
	for _, conj := range expr.Conjuncts(cond) {
		if !pd.addConjunct(conj, schema, tbl) {
			residual = append(residual, conj)
		}
	}
	if len(pd.ageConds) == 0 && len(pd.colConds) == 0 {
		return nil
	}
	if r := expr.AndAll(residual); r != nil {
		p, err := expr.Compile(r, schema)
		if err != nil {
			return nil
		}
		pd.residual = p
	}
	return &pd
}

// addConjunct recognizes one pushable conjunct shape and appends its
// compiled form, reporting false for everything else. The shapes mirror
// expr.Compile exactly — including the string-literal-to-time coercion — and
// the pushdown fuzz target pins the two evaluations to identical verdicts.
func (pd *pushdown) addConjunct(conj expr.Expr, schema *activity.Schema, tbl *storage.Table) bool {
	switch x := conj.(type) {
	case expr.Cmp:
		l, op, lit, ok := normalizeCmp(x)
		if !ok {
			return false
		}
		if _, isAge := l.(expr.Age); isAge {
			if lit.Kind != expr.KindInt {
				return false
			}
			v := lit.Int
			pd.ageConds = append(pd.ageConds, func(age int64) bool { return intCmpHolds(op, age, v) })
			return true
		}
		col, okCol := l.(expr.Col)
		if !okCol {
			return false
		}
		idx := schema.ColIndex(col.Name)
		if idx < 0 || idx == schema.UserCol() {
			return false
		}
		if schema.IsStringCol(idx) {
			if lit.Kind != expr.KindString || (op != expr.OpEq && op != expr.OpNe) {
				return false
			}
			gid, present := tbl.LookupString(idx, lit.Str)
			eq := op == expr.OpEq
			pd.colConds = append(pd.colConds, colCond{bind: func(ch *storage.Chunk) func(int) bool {
				if !present {
					return alwaysRow(!eq)
				}
				cid, inChunk := ch.ChunkIDOf(idx, gid)
				if !inChunk {
					return alwaysRow(!eq)
				}
				if eq {
					return func(row int) bool { return ch.ChunkID(idx, row) == cid }
				}
				return func(row int) bool { return ch.ChunkID(idx, row) != cid }
			}})
			return true
		}
		v, okLit := litIntFor(schema, idx, lit)
		if !okLit {
			return false
		}
		pd.colConds = append(pd.colConds, colCond{bind: func(ch *storage.Chunk) func(int) bool {
			f := ch.Ints(idx)
			d, below, above := f.DeltaOf(v)
			if below || above {
				return alwaysRow(intCmpHolds(op, pickInRange(below, f.Min(), f.Max()), v))
			}
			switch op {
			case expr.OpEq:
				return func(row int) bool { return f.Raw(row) == d }
			case expr.OpNe:
				return func(row int) bool { return f.Raw(row) != d }
			case expr.OpLt:
				return func(row int) bool { return f.Raw(row) < d }
			case expr.OpLe:
				return func(row int) bool { return f.Raw(row) <= d }
			case expr.OpGt:
				return func(row int) bool { return f.Raw(row) > d }
			default: // OpGe
				return func(row int) bool { return f.Raw(row) >= d }
			}
		}})
		return true
	case expr.In:
		if _, isAge := x.L.(expr.Age); isAge {
			vals := make([]int64, 0, len(x.List))
			for _, v := range x.List {
				if v.Kind != expr.KindInt {
					return false
				}
				vals = append(vals, v.Int)
			}
			pd.ageConds = append(pd.ageConds, func(age int64) bool {
				for _, v := range vals {
					if age == v {
						return true
					}
				}
				return false
			})
			return true
		}
		col, okCol := x.L.(expr.Col)
		if !okCol {
			return false
		}
		idx := schema.ColIndex(col.Name)
		if idx < 0 || idx == schema.UserCol() {
			return false
		}
		if schema.IsStringCol(idx) {
			gids := make([]uint64, 0, len(x.List))
			for _, v := range x.List {
				if v.Kind != expr.KindString {
					return false
				}
				if gid, present := tbl.LookupString(idx, v.Str); present {
					gids = append(gids, gid)
				}
			}
			pd.colConds = append(pd.colConds, colCond{bind: func(ch *storage.Chunk) func(int) bool {
				cids := make([]uint64, 0, len(gids))
				for _, gid := range gids {
					if cid, inChunk := ch.ChunkIDOf(idx, gid); inChunk {
						cids = append(cids, cid)
					}
				}
				switch len(cids) {
				case 0:
					return alwaysRow(false)
				case 1:
					cid := cids[0]
					return func(row int) bool { return ch.ChunkID(idx, row) == cid }
				default:
					return func(row int) bool {
						v := ch.ChunkID(idx, row)
						for _, cid := range cids {
							if v == cid {
								return true
							}
						}
						return false
					}
				}
			}})
			return true
		}
		vals := make([]int64, 0, len(x.List))
		for _, v := range x.List {
			iv, okLit := litIntFor(schema, idx, v)
			if !okLit {
				return false
			}
			vals = append(vals, iv)
		}
		pd.colConds = append(pd.colConds, colCond{bind: func(ch *storage.Chunk) func(int) bool {
			f := ch.Ints(idx)
			deltas := make([]uint64, 0, len(vals))
			for _, v := range vals {
				if d, below, above := f.DeltaOf(v); !below && !above {
					deltas = append(deltas, d)
				}
			}
			if len(deltas) == 0 {
				return alwaysRow(false)
			}
			return func(row int) bool {
				raw := f.Raw(row)
				for _, d := range deltas {
					if raw == d {
						return true
					}
				}
				return false
			}
		}})
		return true
	case expr.Between:
		if _, isAge := x.L.(expr.Age); isAge {
			if x.Lo.Kind != expr.KindInt || x.Hi.Kind != expr.KindInt {
				return false
			}
			lo, hi := x.Lo.Int, x.Hi.Int
			pd.ageConds = append(pd.ageConds, func(age int64) bool { return age >= lo && age <= hi })
			return true
		}
		col, okCol := x.L.(expr.Col)
		if !okCol {
			return false
		}
		idx := schema.ColIndex(col.Name)
		if idx < 0 || idx == schema.UserCol() || schema.IsStringCol(idx) {
			return false
		}
		lo, okLo := litIntFor(schema, idx, x.Lo)
		hi, okHi := litIntFor(schema, idx, x.Hi)
		if !okLo || !okHi {
			return false
		}
		pd.colConds = append(pd.colConds, colCond{bind: func(ch *storage.Chunk) func(int) bool {
			f := ch.Ints(idx)
			dLo, loBelow, loAbove := f.DeltaOf(lo)
			dHi, hiBelow, hiAbove := f.DeltaOf(hi)
			if loAbove || hiBelow {
				return alwaysRow(false) // the range misses the chunk entirely
			}
			if loBelow && hiAbove {
				return alwaysRow(true) // the range covers the chunk entirely
			}
			if loBelow {
				return func(row int) bool { return f.Raw(row) <= dHi }
			}
			if hiAbove {
				return func(row int) bool { return f.Raw(row) >= dLo }
			}
			return func(row int) bool {
				raw := f.Raw(row)
				return raw >= dLo && raw <= dHi
			}
		}})
		return true
	default:
		return false
	}
}

// normalizeCmp rewrites a comparison into (scalar, op, literal) form,
// flipping the operator when the literal is on the left (`5 < gold` becomes
// `gold > 5`).
func normalizeCmp(x expr.Cmp) (expr.Expr, expr.CmpOp, expr.Value, bool) {
	if lit, ok := x.R.(expr.Lit); ok {
		return x.L, x.Op, lit.Val, true
	}
	if lit, ok := x.L.(expr.Lit); ok {
		return x.R, flipCmp(x.Op), lit.Val, true
	}
	return nil, 0, expr.Value{}, false
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	default: // Eq, Ne are symmetric
		return op
	}
}

// litIntFor coerces a literal for integer column idx, parsing date strings
// for time columns — the same coercion expr.Compile applies.
func litIntFor(schema *activity.Schema, idx int, v expr.Value) (int64, bool) {
	if v.Kind == expr.KindInt {
		return v.Int, true
	}
	if schema.Col(idx).Type == activity.TypeTime {
		if secs, err := activity.ParseTime(v.Str); err == nil {
			return secs, true
		}
	}
	return 0, false
}

// pickInRange returns a stand-in column value strictly outside [min, max] on
// the side the literal fell, so the constant verdict of an out-of-range
// comparison can be computed with the ordinary comparison semantics.
func pickInRange(below bool, mn, mx int64) int64 {
	if below {
		return mn // literal < min: every encoded value is >= min > literal... compare min against it
	}
	return mx // literal > max: compare max against it
}

func intCmpHolds(op expr.CmpOp, a, b int64) bool {
	switch op {
	case expr.OpEq:
		return a == b
	case expr.OpNe:
		return a != b
	case expr.OpLt:
		return a < b
	case expr.OpLe:
		return a <= b
	case expr.OpGt:
		return a > b
	case expr.OpGe:
		return a >= b
	default:
		return false
	}
}
