package cohort

import (
	"sync/atomic"

	"repro/internal/activity"
	"repro/internal/expr"
	"repro/internal/storage"
)

// This file compiles the pushable part of a selection condition down to the
// encoded column domain. The storage format makes two families of predicates
// answerable without decoding values (Section 4.1's compression schemes):
//
//   - equality / IN on dictionary-encoded string columns: the literal
//     resolves to a global-id once per table and to a chunk-id once per
//     chunk, so each row check is a bit-packed read and an integer compare —
//     no dictionary value is materialized, no string is compared;
//   - comparisons / BETWEEN on frame-of-reference integer (and time)
//     columns: the threshold translates into the chunk's delta domain once
//     per chunk, so each row check compares the raw bit-packed delta — the
//     MIN addition never happens;
//   - AGE conjuncts: evaluated on the already-computed age directly, with no
//     Env round trip.
//
// Conjuncts outside these shapes (Birth() references, OR trees, predicates
// on the RLE user column) stay on the generic expr.Pred path as a residual,
// evaluated only for rows that survive the encoded checks. A surviving
// conjunct set therefore decodes value columns only for rows that every
// pushed predicate admits — the "skip decoding what no surviving row
// touches" half of the tentpole.

// ExecStats counts decoder-level work during query execution. Workers fold
// per-chunk tallies in with atomic adds, so one ExecStats can be shared
// across the whole scatter-gather fan-out of a query. The benchmark's
// pushdown-selectivity sweep gates on ValueBytesDecoded: a high-selectivity
// query must decode strictly fewer value bytes with pushdown on.
type ExecStats struct {
	// RowsScanned counts activity tuples visited by the age-selection loop.
	RowsScanned atomic.Int64
	// ValueBytesDecoded counts bytes of column values materialized out of
	// the encoded domain: dictionary strings surfaced to predicates (their
	// byte length) and integers decoded for predicates or measures (8 bytes
	// each). Encoded-domain checks do not count — that is the point.
	ValueBytesDecoded atomic.Int64
	// EncodedChecks counts per-row predicate evaluations answered entirely
	// in the encoded domain (chunk-id or delta-domain compares).
	EncodedChecks atomic.Int64
	// ChunksScanned / ChunksPruned count the post-pruning scan fan-out vs
	// the chunks skipped by birth-range pruning (Section 4.2).
	ChunksScanned atomic.Int64
	ChunksPruned  atomic.Int64
	// RunsEvaluated counts (value-id, runLength) runs examined by the
	// run-aware kernels: birth-search run compares, per-run age evaluations
	// off the sorted time column, column-kernel run verdicts and measure-run
	// folds. One run evaluation stands in for runLength per-row operations.
	RunsEvaluated atomic.Int64
	// RowsBatched counts activity rows processed run-at-a-time (the
	// vectorized path); the scalar reference path leaves it at zero, so
	// RowsBatched/RunsEvaluated is the realized amortization factor.
	RowsBatched atomic.Int64
}

// ChunkStats is one chunk scan's decoder-level tallies. runChunk returns
// them by value so each chunk task owns its counts; callers fold them into
// the shared ExecStats atomics, the process metrics and the trace — the
// per-task-with-merge shape that keeps the hot loop free of shared writes.
type ChunkStats struct {
	RowsScanned       int64
	ValueBytesDecoded int64
	EncodedChecks     int64
	RunsEvaluated     int64
	RowsBatched       int64
}

// pushdown is the table-bound compiled form of a condition's pushable
// conjuncts plus the residual generic predicate (nil when fully pushed).
type pushdown struct {
	ageConds []func(int64) bool
	colConds []colCond
	residual expr.Pred
}

// colCond is one pushable column conjunct. bindCode resolves it against a
// chunk's dictionaries/frames into a verdict function over the column's raw
// codes — chunk-ids for string columns, frame-of-reference deltas for
// integer columns — or a chunk-constant verdict (nil kernel) when the chunk's
// dictionary/range settles the conjunct outright. Both execution shapes
// derive from the same kernel: the scalar path wraps it with a per-row code
// read (bindChunk), the vectorized path applies it once per run (bindVec).
type colCond struct {
	col      int
	isString bool
	bindCode func(ch *storage.Chunk) (kernel func(code uint64) bool, verdict bool)
}

// boundPushdown is a pushdown bound to one chunk for the scalar row-at-a-time
// path.
type boundPushdown struct {
	ageConds []func(int64) bool
	rowConds []func(row int) bool
	residual expr.Pred
}

func (pd *pushdown) bindChunk(ch *storage.Chunk) boundPushdown {
	bp := boundPushdown{ageConds: pd.ageConds, residual: pd.residual}
	if len(pd.colConds) > 0 {
		bp.rowConds = make([]func(int) bool, len(pd.colConds))
		for i, cc := range pd.colConds {
			bp.rowConds[i] = cc.bindRow(ch)
		}
	}
	return bp
}

// bindRow derives the per-row predicate of the scalar path from the code
// kernel: read the row's code, apply the kernel.
func (cc colCond) bindRow(ch *storage.Chunk) func(row int) bool {
	k, verdict := cc.bindCode(ch)
	if k == nil {
		return alwaysRow(verdict)
	}
	if cc.isString {
		col := cc.col
		return func(row int) bool { return k(ch.ChunkID(col, row)) }
	}
	f := ch.Ints(cc.col)
	return func(row int) bool { return k(f.Raw(row)) }
}

// vecCond is one column conjunct bound to a chunk for the run-at-a-time
// path: a kernel over raw codes (nil when the chunk settles the conjunct —
// then verdict applies to every row of the chunk).
type vecCond struct {
	col      int
	isString bool
	kernel   func(code uint64) bool
	verdict  bool
}

// boundVec is a pushdown bound to one chunk for the vectorized path. Age
// conjuncts evaluate once per time-run (ages are constant within one), column
// kernels once per code run, and the residual per surviving row.
type boundVec struct {
	ageConds []func(int64) bool
	cols     []vecCond
	residual expr.Pred
}

func (pd *pushdown) bindVec(ch *storage.Chunk) boundVec {
	bv := boundVec{ageConds: pd.ageConds, residual: pd.residual}
	if len(pd.colConds) > 0 {
		bv.cols = make([]vecCond, len(pd.colConds))
		for i, cc := range pd.colConds {
			k, verdict := cc.bindCode(ch)
			bv.cols[i] = vecCond{col: cc.col, isString: cc.isString, kernel: k, verdict: verdict}
		}
	}
	return bv
}

// passAge evaluates the pushed AGE conjuncts for one age value.
func (bv *boundVec) passAge(age int64) bool {
	for _, f := range bv.ageConds {
		if !f(age) {
			return false
		}
	}
	return true
}

// passEncoded evaluates the encoded-domain conjuncts; the caller evaluates
// the residual (if any) only when this passes.
func (bp *boundPushdown) passEncoded(row int, age int64) bool {
	for _, f := range bp.ageConds {
		if !f(age) {
			return false
		}
	}
	for _, f := range bp.rowConds {
		if !f(row) {
			return false
		}
	}
	return true
}

func alwaysRow(v bool) func(int) bool { return func(int) bool { return v } }

// compilePushdown splits cond into pushable conjuncts and a residual. It
// returns nil when nothing is pushable (the caller keeps the plain compiled
// predicate, zero overhead) or when the residual unexpectedly fails to
// compile (cond as a whole already compiled, so this is purely defensive).
func compilePushdown(cond expr.Expr, schema *activity.Schema, tbl *storage.Table) *pushdown {
	if cond == nil {
		return nil
	}
	var pd pushdown
	var residual []expr.Expr
	for _, conj := range expr.Conjuncts(cond) {
		if !pd.addConjunct(conj, schema, tbl) {
			residual = append(residual, conj)
		}
	}
	if len(pd.ageConds) == 0 && len(pd.colConds) == 0 {
		return nil
	}
	if r := expr.AndAll(residual); r != nil {
		p, err := expr.Compile(r, schema)
		if err != nil {
			return nil
		}
		pd.residual = p
	}
	return &pd
}

// addConjunct recognizes one pushable conjunct shape and appends its
// compiled form, reporting false for everything else. The shapes mirror
// expr.Compile exactly — including the string-literal-to-time coercion — and
// the pushdown fuzz target pins the two evaluations to identical verdicts.
func (pd *pushdown) addConjunct(conj expr.Expr, schema *activity.Schema, tbl *storage.Table) bool {
	switch x := conj.(type) {
	case expr.Cmp:
		l, op, lit, ok := normalizeCmp(x)
		if !ok {
			return false
		}
		if _, isAge := l.(expr.Age); isAge {
			if lit.Kind != expr.KindInt {
				return false
			}
			v := lit.Int
			pd.ageConds = append(pd.ageConds, func(age int64) bool { return intCmpHolds(op, age, v) })
			return true
		}
		col, okCol := l.(expr.Col)
		if !okCol {
			return false
		}
		idx := schema.ColIndex(col.Name)
		if idx < 0 || idx == schema.UserCol() {
			return false
		}
		if schema.IsStringCol(idx) {
			if lit.Kind != expr.KindString || (op != expr.OpEq && op != expr.OpNe) {
				return false
			}
			gid, present := tbl.LookupString(idx, lit.Str)
			eq := op == expr.OpEq
			pd.colConds = append(pd.colConds, colCond{col: idx, isString: true,
				bindCode: func(ch *storage.Chunk) (func(uint64) bool, bool) {
					if !present {
						return nil, !eq
					}
					cid, inChunk := ch.ChunkIDOf(idx, gid)
					if !inChunk {
						return nil, !eq
					}
					if eq {
						return func(code uint64) bool { return code == cid }, false
					}
					return func(code uint64) bool { return code != cid }, false
				}})
			return true
		}
		v, okLit := litIntFor(schema, idx, lit)
		if !okLit {
			return false
		}
		pd.colConds = append(pd.colConds, colCond{col: idx,
			bindCode: func(ch *storage.Chunk) (func(uint64) bool, bool) {
				f := ch.Ints(idx)
				d, below, above := f.DeltaOf(v)
				if below || above {
					return nil, intCmpHolds(op, pickInRange(below, f.Min(), f.Max()), v)
				}
				switch op {
				case expr.OpEq:
					return func(code uint64) bool { return code == d }, false
				case expr.OpNe:
					return func(code uint64) bool { return code != d }, false
				case expr.OpLt:
					return func(code uint64) bool { return code < d }, false
				case expr.OpLe:
					return func(code uint64) bool { return code <= d }, false
				case expr.OpGt:
					return func(code uint64) bool { return code > d }, false
				default: // OpGe
					return func(code uint64) bool { return code >= d }, false
				}
			}})
		return true
	case expr.In:
		if _, isAge := x.L.(expr.Age); isAge {
			vals := make([]int64, 0, len(x.List))
			for _, v := range x.List {
				if v.Kind != expr.KindInt {
					return false
				}
				vals = append(vals, v.Int)
			}
			pd.ageConds = append(pd.ageConds, func(age int64) bool {
				for _, v := range vals {
					if age == v {
						return true
					}
				}
				return false
			})
			return true
		}
		col, okCol := x.L.(expr.Col)
		if !okCol {
			return false
		}
		idx := schema.ColIndex(col.Name)
		if idx < 0 || idx == schema.UserCol() {
			return false
		}
		if schema.IsStringCol(idx) {
			gids := make([]uint64, 0, len(x.List))
			for _, v := range x.List {
				if v.Kind != expr.KindString {
					return false
				}
				if gid, present := tbl.LookupString(idx, v.Str); present {
					gids = append(gids, gid)
				}
			}
			pd.colConds = append(pd.colConds, colCond{col: idx, isString: true,
				bindCode: func(ch *storage.Chunk) (func(uint64) bool, bool) {
					cids := make([]uint64, 0, len(gids))
					for _, gid := range gids {
						if cid, inChunk := ch.ChunkIDOf(idx, gid); inChunk {
							cids = append(cids, cid)
						}
					}
					switch len(cids) {
					case 0:
						return nil, false
					case 1:
						cid := cids[0]
						return func(code uint64) bool { return code == cid }, false
					default:
						return func(code uint64) bool {
							for _, cid := range cids {
								if code == cid {
									return true
								}
							}
							return false
						}, false
					}
				}})
			return true
		}
		vals := make([]int64, 0, len(x.List))
		for _, v := range x.List {
			iv, okLit := litIntFor(schema, idx, v)
			if !okLit {
				return false
			}
			vals = append(vals, iv)
		}
		pd.colConds = append(pd.colConds, colCond{col: idx,
			bindCode: func(ch *storage.Chunk) (func(uint64) bool, bool) {
				f := ch.Ints(idx)
				deltas := make([]uint64, 0, len(vals))
				for _, v := range vals {
					if d, below, above := f.DeltaOf(v); !below && !above {
						deltas = append(deltas, d)
					}
				}
				if len(deltas) == 0 {
					return nil, false
				}
				return func(code uint64) bool {
					for _, d := range deltas {
						if code == d {
							return true
						}
					}
					return false
				}, false
			}})
		return true
	case expr.Between:
		if _, isAge := x.L.(expr.Age); isAge {
			if x.Lo.Kind != expr.KindInt || x.Hi.Kind != expr.KindInt {
				return false
			}
			lo, hi := x.Lo.Int, x.Hi.Int
			pd.ageConds = append(pd.ageConds, func(age int64) bool { return age >= lo && age <= hi })
			return true
		}
		col, okCol := x.L.(expr.Col)
		if !okCol {
			return false
		}
		idx := schema.ColIndex(col.Name)
		if idx < 0 || idx == schema.UserCol() || schema.IsStringCol(idx) {
			return false
		}
		lo, okLo := litIntFor(schema, idx, x.Lo)
		hi, okHi := litIntFor(schema, idx, x.Hi)
		if !okLo || !okHi {
			return false
		}
		pd.colConds = append(pd.colConds, colCond{col: idx,
			bindCode: func(ch *storage.Chunk) (func(uint64) bool, bool) {
				f := ch.Ints(idx)
				dLo, loBelow, loAbove := f.DeltaOf(lo)
				dHi, hiBelow, hiAbove := f.DeltaOf(hi)
				if loAbove || hiBelow {
					return nil, false // the range misses the chunk entirely
				}
				if loBelow && hiAbove {
					return nil, true // the range covers the chunk entirely
				}
				if loBelow {
					return func(code uint64) bool { return code <= dHi }, false
				}
				if hiAbove {
					return func(code uint64) bool { return code >= dLo }, false
				}
				return func(code uint64) bool { return code >= dLo && code <= dHi }, false
			}})
		return true
	default:
		return false
	}
}

// normalizeCmp rewrites a comparison into (scalar, op, literal) form,
// flipping the operator when the literal is on the left (`5 < gold` becomes
// `gold > 5`).
func normalizeCmp(x expr.Cmp) (expr.Expr, expr.CmpOp, expr.Value, bool) {
	if lit, ok := x.R.(expr.Lit); ok {
		return x.L, x.Op, lit.Val, true
	}
	if lit, ok := x.L.(expr.Lit); ok {
		return x.R, flipCmp(x.Op), lit.Val, true
	}
	return nil, 0, expr.Value{}, false
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	default: // Eq, Ne are symmetric
		return op
	}
}

// litIntFor coerces a literal for integer column idx, parsing date strings
// for time columns — the same coercion expr.Compile applies.
func litIntFor(schema *activity.Schema, idx int, v expr.Value) (int64, bool) {
	if v.Kind == expr.KindInt {
		return v.Int, true
	}
	if schema.Col(idx).Type == activity.TypeTime {
		if secs, err := activity.ParseTime(v.Str); err == nil {
			return secs, true
		}
	}
	return 0, false
}

// pickInRange returns a stand-in column value strictly outside [min, max] on
// the side the literal fell, so the constant verdict of an out-of-range
// comparison can be computed with the ordinary comparison semantics.
func pickInRange(below bool, mn, mx int64) int64 {
	if below {
		return mn // literal < min: every encoded value is >= min > literal... compare min against it
	}
	return mx // literal > max: compare max against it
}

func intCmpHolds(op expr.CmpOp, a, b int64) bool {
	switch op {
	case expr.OpEq:
		return a == b
	case expr.OpNe:
		return a != b
	case expr.OpLt:
		return a < b
	case expr.OpLe:
		return a <= b
	case expr.OpGt:
		return a > b
	case expr.OpGe:
		return a >= b
	default:
		return false
	}
}
