package cohort

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/storage"
)

// The pushdown soundness contract: for ANY conjunction the compiler accepts,
// evaluating the pushed conjuncts on encoded ids plus the residual on the
// generic path must reach exactly the verdict of compiling the whole
// condition with expr.Compile and decoding every value. The fuzzer below
// derives arbitrary well-typed conditions from raw bytes — in-dictionary and
// absent string literals, in-range and out-of-range integers, flipped
// comparisons, IN lists, BETWEEN ranges, AGE conjuncts, OR residuals — and
// compares the two evaluations on every row of every chunk.

// condFromBytes derives a conjunction of 1-4 well-typed conjuncts from the
// fuzz input. Every byte consumed steers one choice, so the fuzzer can reach
// any shape; an exhausted input yields zeros, which still produce a valid
// condition.
func condFromBytes(data []byte) expr.Expr {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	// Literal pools: values that exist in the fixture, values that do not,
	// and integers straddling typical chunk ranges.
	strCols := []string{"country", "city", "role", "action"}
	strLits := []string{"China", "USA", "Atlantis", "dwarf", "shop", "launch", "no-such", ""}
	intCols := []string{"gold", "session"}
	intLits := []int64{-1000000, -1, 0, 1, 5, 20, 100, 1 << 40}
	timeLits := []string{"2013-05-20", "2013-06-01", "1970-01-01", "299-12-31"}

	strLit := func() expr.Value { return expr.S(strLits[int(next())%len(strLits)]) }
	ops := []expr.CmpOp{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}

	conjunct := func() expr.Expr {
		switch next() % 8 {
		case 0: // string equality / inequality, possibly literal-first
			c := expr.Col{Name: strCols[int(next())%len(strCols)]}
			op := expr.OpEq
			if next()%2 == 0 {
				op = expr.OpNe
			}
			if next()%2 == 0 {
				return expr.Cmp{Op: op, L: expr.Lit{Val: strLit()}, R: c}
			}
			return expr.Cmp{Op: op, L: c, R: expr.Lit{Val: strLit()}}
		case 1: // integer comparison, possibly literal-first
			c := expr.Col{Name: intCols[int(next())%len(intCols)]}
			op := ops[int(next())%len(ops)]
			lit := expr.Lit{Val: expr.I(intLits[int(next())%len(intLits)])}
			if next()%2 == 0 {
				return expr.Cmp{Op: op, L: lit, R: c}
			}
			return expr.Cmp{Op: op, L: c, R: lit}
		case 2: // time comparison against a date string
			op := ops[int(next())%len(ops)]
			return expr.Cmp{Op: op, L: expr.Col{Name: "time"},
				R: expr.Lit{Val: expr.S(timeLits[int(next())%len(timeLits)])}}
		case 3: // AGE conjunct
			op := ops[int(next())%len(ops)]
			return expr.Cmp{Op: op, L: expr.Age{}, R: expr.Lit{Val: expr.I(int64(next() % 12))}}
		case 4: // string IN list
			c := expr.Col{Name: strCols[int(next())%len(strCols)]}
			list := make([]expr.Value, 1+next()%3)
			for i := range list {
				list[i] = strLit()
			}
			return expr.In{L: c, List: list}
		case 5: // integer IN list
			c := expr.Col{Name: intCols[int(next())%len(intCols)]}
			list := make([]expr.Value, 1+next()%3)
			for i := range list {
				list[i] = expr.I(intLits[int(next())%len(intLits)])
			}
			return expr.In{L: c, List: list}
		case 6: // BETWEEN over an integer or time column
			if next()%2 == 0 {
				lo := intLits[int(next())%len(intLits)]
				hi := intLits[int(next())%len(intLits)]
				if lo > hi {
					lo, hi = hi, lo
				}
				return expr.Between{L: expr.Col{Name: intCols[int(next())%len(intCols)]},
					Lo: expr.I(lo), Hi: expr.I(hi)}
			}
			return expr.Between{L: expr.Col{Name: "time"},
				Lo: expr.S("2013-05-20"), Hi: expr.S("2013-06-10")}
		default: // a residual shape: OR tree or Birth() reference
			if next()%2 == 0 {
				return expr.Or{
					L: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Lit{Val: strLit()}},
					R: expr.Cmp{Op: expr.OpGt, L: expr.Col{Name: "gold"}, R: expr.Lit{Val: expr.I(5)}},
				}
			}
			return expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Birth{Name: "country"}}
		}
	}
	cond := conjunct()
	for n := next() % 4; n > 0; n-- {
		cond = expr.And{L: cond, R: conjunct()}
	}
	return cond
}

func FuzzPushdownPredicate(f *testing.F) {
	full := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 8, Seed: 17})
	if err := full.SortByPK(); err != nil {
		f.Fatal(err)
	}
	tbl, err := storage.Build(full, storage.Options{ChunkSize: 120})
	if err != nil {
		f.Fatal(err)
	}
	schema := tbl.Schema()

	f.Add([]byte{0})
	f.Add([]byte{1, 3, 2, 0, 1})
	f.Add([]byte{3, 1, 2, 2, 6, 0, 7, 7, 7})
	f.Add([]byte{2, 5, 4, 1, 1, 0, 5, 2, 3, 9, 250, 17})

	f.Fuzz(func(t *testing.T, data []byte) {
		cond := condFromBytes(data)
		want, err := expr.Compile(cond, schema)
		if err != nil {
			// An ill-typed condition (e.g. an unparseable date literal) never
			// reaches compilePushdown in execution — Compile gates it first.
			// Still pin the invariant that makes that ordering safe: a
			// conjunct the reference compiler rejects must not be claimed as
			// pushable, or execution would silently change the verdict.
			for _, conj := range expr.Conjuncts(cond) {
				if _, cerr := expr.Compile(conj, schema); cerr != nil {
					probe := &pushdown{}
					if probe.addConjunct(conj, schema, tbl) {
						t.Fatalf("pushdown accepted a conjunct expr.Compile rejects: %s (%v)", conj, cerr)
					}
				}
			}
			return
		}
		pd := compilePushdown(cond, schema, tbl)
		if pd == nil {
			// Nothing pushable: execution keeps the plain predicate; no
			// split evaluation exists to cross-check.
			return
		}
		for ci := 0; ci < tbl.NumChunks(); ci++ {
			ch := tbl.Chunk(ci)
			bp := pd.bindChunk(ch)
			env := &chunkEnv{tbl: tbl, ch: ch, schema: schema}
			for r := 0; r < ch.NumRows(); r++ {
				// Age and birth row vary with the row so AGE conjuncts and
				// Birth() residuals see non-degenerate values.
				env.row, env.birth, env.age = r, r/2, int64(r%9)
				wantV := want(env)
				gotV := bp.passEncoded(r, env.age) && (bp.residual == nil || bp.residual(env))
				if gotV != wantV {
					t.Fatalf("chunk %d row %d age %d: pushdown=%v, reference=%v for %s",
						ci, r, env.age, gotV, wantV, cond)
				}
			}
		}
	})
}
