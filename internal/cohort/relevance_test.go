package cohort

import (
	"testing"

	"repro/internal/activity"
	"repro/internal/expr"
)

// ts parses a fixture timestamp.
func ts(t *testing.T, s string) int64 {
	t.Helper()
	v, err := activity.ParseTime(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// deltaOf builds a sorted delta table over the paper schema from
// (player, time, action, role, country, gold) rows.
func deltaOf(t *testing.T, rows ...[]any) *activity.Table {
	t.Helper()
	d := activity.NewTable(activity.PaperSchema())
	for _, r := range rows {
		if err := d.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SortByPK(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDeltaRelevantExactness pins the precomputed-union analysis: with the
// birth index available, AGE- and Birth()-referencing conditions, unborn
// users, pre-birth rows and σb rejections are all decided exactly, where the
// row-local fallback (union == nil) must conservatively answer true. The
// paper fixture's births: 001 launch 5/19 (dwarf, Australia), 002 launch
// 5/20 (wizard, United States), 003 launch 5/20 (bandit, China).
func TestDeltaRelevantExactness(t *testing.T) {
	sealed := paperStore(t, 3)
	schema := sealed.Schema()

	check := func(name string, q *Query, delta *activity.Table, wantExact, wantFallback bool) {
		t.Helper()
		union, err := BuildUnionDelta(sealed, delta)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := DeltaRelevant(q, schema, delta, nil, union); got != wantExact {
			t.Errorf("%s: exact relevance = %v, want %v", name, got, wantExact)
		}
		if got := DeltaRelevant(q, schema, delta, nil, nil); got != wantFallback {
			t.Errorf("%s: fallback relevance = %v, want %v", name, got, wantFallback)
		}
	}

	// One post-birth shop row for 001 at age 6 (born 5/19).
	lateShop := deltaOf(t, []any{"001", ts(t, "2013/05/25:1200"), "shop", "dwarf", "Australia", int64(9)})

	// An AGE condition no delta row satisfies: age 6 fails AGE < 3. The
	// fallback cannot evaluate AGE row-locally and must answer true.
	check("age-condition-excludes-all",
		&Query{BirthAction: "launch", AgeCond: expr.Cmp{Op: expr.OpLt, L: expr.Age{}, R: expr.Lit{Val: expr.I(3)}}},
		lateShop, false, true)

	// ...and one it does satisfy: age 6 passes AGE > 3.
	check("age-condition-admits-one",
		&Query{BirthAction: "launch", AgeCond: expr.Cmp{Op: expr.OpGt, L: expr.Age{}, R: expr.Lit{Val: expr.I(3)}}},
		lateShop, true, true)

	// A Birth() condition: the delta row's country (China) differs from the
	// user's birth country (Australia), so σg provably rejects it.
	chinaShop := deltaOf(t, []any{"001", ts(t, "2013/05/25:1200"), "shop", "dwarf", "China", int64(9)})
	birthRef := expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Birth{Name: "country"}}
	check("birth-reference-mismatch",
		&Query{BirthAction: "launch", AgeCond: birthRef}, chinaShop, false, true)
	check("birth-reference-match",
		&Query{BirthAction: "launch", AgeCond: birthRef}, lateShop, true, true)

	// A user that never performs the birth action contributes nothing, even
	// with no age condition at all.
	unborn := deltaOf(t, []any{"009", ts(t, "2013/05/25:1200"), "shop", "elf", "Japan", int64(9)})
	check("unborn-user", &Query{BirthAction: "launch"}, unborn, false, true)

	// A row that precedes its user's birth never aggregates (002 was born
	// 5/20 at 9:00; this row is from 5/19).
	preBirth := deltaOf(t, []any{"002", ts(t, "2013/05/19:0800"), "shop", "wizard", "United States", int64(9)})
	check("pre-birth-row", &Query{BirthAction: "launch"}, preBirth, false, true)

	// σb decides per user: a dwarf-only birth condition rejects 002's rows
	// (wizard at birth) but keeps 001's.
	dwarfOnly := expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Lit{Val: expr.S("dwarf")}}
	shop002 := deltaOf(t, []any{"002", ts(t, "2013/05/25:1200"), "shop", "wizard", "United States", int64(9)})
	check("birth-condition-rejects-user",
		&Query{BirthAction: "launch", BirthCond: dwarfOnly}, shop002, false, true)
	check("birth-condition-keeps-user",
		&Query{BirthAction: "launch", BirthCond: dwarfOnly}, lateShop, true, true)

	// A delta row performing the birth action short-circuits to relevant in
	// both modes: it can shift which tuple is the user's birth tuple.
	launchRow := deltaOf(t, []any{"009", ts(t, "2013/05/25:1200"), "launch", "elf", "Japan", int64(0)})
	check("birth-action-in-delta", &Query{BirthAction: "launch"}, launchRow, true, true)

	// An empty delta is never relevant.
	if DeltaRelevant(&Query{BirthAction: "launch"}, schema, nil, nil, nil) {
		t.Error("nil delta reported relevant")
	}

	// The precomputed action set serves the same short-circuit without a scan.
	actions := map[string]struct{}{"launch": {}}
	if !DeltaRelevant(&Query{BirthAction: "launch"}, schema, launchRow, actions, nil) {
		t.Error("action-set short-circuit missed the birth action")
	}
}
