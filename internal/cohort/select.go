package cohort

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/scan"
	"repro/internal/storage"
)

// SelectTuples materializes the composition σg[ageCond,e](σb[birthCond,e](D))
// as a sorted list of global row indices, reproducing the tuple-set
// semantics of Definitions 4 and 5. Either condition may be nil. It is the
// reference implementation used to check the worked examples of Section 3.3
// and by the example programs to extract activity sub-tables.
//
// Semantics: users qualify if they performed the birth action e and their
// birth activity tuple satisfies birthCond. Users who never performed e are
// excluded (their birth time is -1, so no birth tuple exists and no tuple
// has a well-defined age; Definitions 1-3). For qualified users:
//   - if ageCond is nil (no σg in the composition), every tuple of the user
//     is retained, matching σb alone;
//   - otherwise the birth tuple is retained unconditionally and an age tuple
//     (strictly after the birth time) is retained iff ageCond holds,
//     matching Definition 5.
func SelectTuples(tbl *storage.Table, birthAction string, birthCond, ageCond expr.Expr, unit Unit) ([]int, error) {
	schema := tbl.Schema()
	if birthAction == "" {
		return nil, fmt.Errorf("cohort: SelectTuples needs a birth action")
	}
	var birthPred, agePred expr.Pred
	var err error
	if birthCond != nil {
		if expr.UsesBirth(birthCond) || expr.UsesAge(birthCond) {
			return nil, fmt.Errorf("cohort: birth selection condition may not use Birth() or AGE")
		}
		if birthPred, err = expr.Compile(birthCond, schema); err != nil {
			return nil, err
		}
	}
	if ageCond != nil {
		if agePred, err = expr.Compile(ageCond, schema); err != nil {
			return nil, err
		}
	}
	var out []int
	birthGID, ok := tbl.LookupString(schema.ActionCol(), birthAction)
	if !ok {
		return out, nil
	}
	timeCol := schema.TimeCol()
	actionCol := schema.ActionCol()
	for chunkIdx := 0; chunkIdx < tbl.NumChunks(); chunkIdx++ {
		if !tbl.ChunkMayHaveGID(chunkIdx, actionCol, birthGID) {
			continue // no user in this chunk was born (chunk pruning)
		}
		ch, release, err := tbl.PinChunk(chunkIdx)
		if err != nil {
			return nil, err
		}
		base := tbl.RowOffset(chunkIdx)
		sc := scan.NewScanner(tbl, ch)
		env := &chunkEnv{tbl: tbl, ch: ch, schema: schema}
		// The birth action's chunk-id, resolved once per chunk: the birth-row
		// search below then runs over raw codes, skipping whole runs of
		// non-birth actions (the run-aware form of FindBirthRow).
		birthCID, inChunk := ch.ChunkIDOf(actionCol, birthGID)
		if !inChunk {
			release()
			continue
		}
		var actionBuf []uint64
		for {
			block, ok := sc.GetNextUser()
			if !ok {
				break
			}
			ab := sc.LoadStringRuns(actionCol, block.First, block.End(), actionBuf)
			actionBuf = ab.Buf()
			birthRow := ab.Find(birthCID)
			if birthRow < 0 {
				sc.SkipCurUser()
				continue
			}
			env.userGID = block.GID
			env.birth = birthRow
			if birthPred != nil {
				env.row = birthRow
				env.age = 0
				if !birthPred(env) {
					sc.SkipCurUser()
					continue
				}
			}
			if agePred == nil {
				for row := block.First; row < block.End(); row++ {
					out = append(out, base+row)
				}
				continue
			}
			birthTime := ch.Int(timeCol, birthRow)
			out = append(out, base+birthRow)
			for row := block.First; row < block.End(); row++ {
				ts := ch.Int(timeCol, row)
				if ts <= birthTime {
					continue
				}
				env.row = row
				env.age = AgeOf(ts, birthTime, unit)
				if agePred(env) {
					out = append(out, base+row)
				}
			}
		}
		release()
	}
	sort.Ints(out)
	return out, nil
}
