// Package cohort defines the logical cohort query (Section 3.4 of the
// paper), its result relation, the aggregate functions, and COHANA's native
// per-chunk execution of the three cohort operators (Algorithms 1 and 2 of
// Section 4.4). The planner in internal/plan drives the per-chunk executor
// and merges partial results.
package cohort

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/expr"
)

// Unit is a time granularity for ages and time-based cohorts.
type Unit uint8

// Supported granularities. Months are fixed 30-day windows (documented
// deviation: calendar months would make ages non-uniform).
const (
	Day Unit = iota
	Week
	Month
)

// Seconds returns the unit length in seconds.
func (u Unit) Seconds() int64 {
	switch u {
	case Week:
		return 7 * activity.SecondsPerDay
	case Month:
		return 30 * activity.SecondsPerDay
	default:
		return activity.SecondsPerDay
	}
}

func (u Unit) String() string {
	switch u {
	case Week:
		return "week"
	case Month:
		return "month"
	default:
		return "day"
	}
}

// AgeOf computes the 1-based age of a tuple at time ts for a user born at
// birth: 0 for the birth instant itself, floor(Δ/unit)+1 for Δ > 0, and a
// negative value for tuples preceding the birth. Only positive ages are
// aggregated (Definition 3 and the "week 1" convention of Table 3).
func AgeOf(ts, birth int64, u Unit) int64 {
	d := ts - birth
	switch {
	case d == 0:
		return 0
	case d < 0:
		return -1
	default:
		return d/u.Seconds() + 1
	}
}

// AggFunc identifies an aggregate function fA.
type AggFunc uint8

// Aggregate functions. UserCount is the retention aggregate of Section 4.5:
// the number of distinct users active in the (cohort, age) bucket.
const (
	Sum AggFunc = iota
	Count
	Avg
	Min
	Max
	UserCount
)

func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "Sum"
	case Count:
		return "Count"
	case Avg:
		return "Avg"
	case Min:
		return "Min"
	case Max:
		return "Max"
	case UserCount:
		return "UserCount"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// NeedsCol reports whether the function takes a measure argument.
func (f AggFunc) NeedsCol() bool {
	switch f {
	case Count, UserCount:
		return false
	default:
		return true
	}
}

// AggSpec is one aggregate in the SELECT list.
type AggSpec struct {
	Func AggFunc
	Col  string // measure attribute; empty for Count/UserCount
	As   string // output column name; defaulted by Validate
}

// Name returns the output column name.
func (a AggSpec) Name() string {
	if a.As != "" {
		return a.As
	}
	if a.Col == "" {
		return a.Func.String()
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Col)
}

// CohortKey is one attribute of the COHORT BY list. For the time attribute,
// Bin selects the cohort time-bin interval (the footnote-1 "day, week or
// month" choice); it is ignored for other attributes.
type CohortKey struct {
	Col string
	Bin Unit
}

// Query is a validated logical cohort query over one activity table: the
// composition σb, σg, γc of Section 3.4 with the constraint that all
// operators share one birth action.
type Query struct {
	BirthAction string
	// BirthActionAttr is the attribute name written in the BIRTH FROM
	// clause ("action = ..."). When set, Validate checks it names the
	// schema's action column; queries built programmatically may leave it
	// empty.
	BirthActionAttr string
	BirthCond       expr.Expr // optional σb condition (may be nil)
	AgeCond         expr.Expr // optional σg condition (may be nil)
	CohortBy        []CohortKey
	Aggs            []AggSpec
	AgeUnit         Unit // granularity of AGE; day by default
}

// Validate checks q against schema: the cohort attribute set must exclude
// the user and action attributes (L ∩ {Au, Ae} = ∅, Section 3.3.3), birth
// conditions may not reference Birth() or AGE (they are evaluated on the
// birth tuple itself, where both are degenerate), measures must be integer
// columns, and at least one aggregate must be requested.
func (q *Query) Validate(schema *activity.Schema) error {
	if q.BirthAction == "" {
		return fmt.Errorf("cohort: query needs a birth action")
	}
	if q.BirthActionAttr != "" && schema.ColIndex(q.BirthActionAttr) != schema.ActionCol() {
		return fmt.Errorf("cohort: BIRTH FROM selects on %q, but the action attribute is %q",
			q.BirthActionAttr, schema.Col(schema.ActionCol()).Name)
	}
	if len(q.CohortBy) == 0 {
		return fmt.Errorf("cohort: query needs a COHORT BY attribute set")
	}
	for _, k := range q.CohortBy {
		idx := schema.ColIndex(k.Col)
		if idx < 0 {
			return fmt.Errorf("cohort: unknown cohort attribute %q", k.Col)
		}
		if idx == schema.UserCol() || idx == schema.ActionCol() {
			return fmt.Errorf("cohort: cohort attribute %q must not be the user or action attribute", k.Col)
		}
	}
	if len(q.Aggs) == 0 {
		return fmt.Errorf("cohort: query needs at least one aggregate")
	}
	for _, a := range q.Aggs {
		if a.Func.NeedsCol() {
			idx := schema.ColIndex(a.Col)
			if idx < 0 {
				return fmt.Errorf("cohort: unknown measure %q in %s", a.Col, a.Name())
			}
			if schema.IsStringCol(idx) || schema.Col(idx).Type == activity.TypeTime {
				return fmt.Errorf("cohort: %s needs an integer measure, %q is %s", a.Name(), a.Col, schema.Col(idx).Type)
			}
		} else if a.Col != "" {
			return fmt.Errorf("cohort: %s takes no argument", a.Func)
		}
	}
	if q.BirthCond != nil {
		if expr.UsesBirth(q.BirthCond) {
			return fmt.Errorf("cohort: birth selection condition may not use Birth()")
		}
		if expr.UsesAge(q.BirthCond) {
			return fmt.Errorf("cohort: birth selection condition may not use AGE")
		}
		if _, err := expr.Compile(q.BirthCond, schema); err != nil {
			return fmt.Errorf("cohort: birth condition: %w", err)
		}
	}
	if q.AgeCond != nil {
		if _, err := expr.Compile(q.AgeCond, schema); err != nil {
			return fmt.Errorf("cohort: age condition: %w", err)
		}
	}
	return nil
}

// FormatTimeBin renders a binned birth time as the paper renders cohorts
// ("2013-05-19"): the UTC date of the bin start.
func FormatTimeBin(binStart int64) string {
	return time.Unix(binStart, 0).UTC().Format("2006-01-02")
}

// TimeBinStart truncates ts to the start of its bin. Day and week bins are
// aligned to the Unix epoch (a Thursday); the paper's example bins cohorts
// by the week of first launch, and any fixed alignment preserves the
// analysis. Month bins are 30-day windows from the epoch.
func TimeBinStart(ts int64, u Unit) int64 {
	s := u.Seconds()
	if ts >= 0 {
		return ts - ts%s
	}
	// Floor division for pre-epoch timestamps.
	r := ts % s
	if r != 0 {
		r += s
	}
	return ts - r
}
