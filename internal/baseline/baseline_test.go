package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relational"
	"repro/internal/storage"
)

// randomTable builds a small random activity table with enough structure to
// exercise every operator: multiple actions, countries, roles, users with
// and without births, pre-birth tuples (for shop births) and gold spend.
func randomTable(seed int64, nUsers, perUser int) *activity.Table {
	rng := rand.New(rand.NewSource(seed))
	tbl := activity.NewTable(activity.PaperSchema())
	actions := []string{"launch", "shop", "fight", "achievement"}
	countries := []string{"China", "Australia", "United States", "India", "Japan"}
	roles := []string{"dwarf", "wizard", "bandit", "assassin"}
	base, _ := activity.ParseTime("2013-05-19")
	for u := 0; u < nUsers; u++ {
		user := fmt.Sprintf("u%03d", u)
		country := countries[rng.Intn(len(countries))]
		t := base + int64(rng.Intn(7*86400))
		for k := 0; k < 1+rng.Intn(perUser); k++ {
			action := actions[rng.Intn(len(actions))]
			role := roles[rng.Intn(len(roles))]
			gold := int64(0)
			if action == "shop" {
				gold = int64(1 + rng.Intn(100))
			}
			if err := tbl.Append(user, t, action, role, country, gold); err != nil {
				panic(err)
			}
			t += int64(1 + rng.Intn(2*86400))
		}
	}
	if err := tbl.SortByPK(); err != nil {
		panic(err)
	}
	return tbl
}

// querySuite returns the benchmark queries Q1-Q8 of Section 5.2 (with small
// parameter values suited to the random dataset) plus extra shapes: Birth()
// conditions, multi-attribute cohorts, time cohorts and mixed aggregates.
func querySuite() map[string]*cohort.Query {
	between := expr.Between{L: expr.Col{Name: "time"}, Lo: expr.S("2013-05-21"), Hi: expr.S("2013-05-27")}
	return map[string]*cohort.Query{
		"Q1": {
			BirthAction: "launch",
			CohortBy:    []cohort.CohortKey{{Col: "country"}},
			Aggs:        []cohort.AggSpec{{Func: cohort.UserCount}},
		},
		"Q2": {
			BirthAction: "launch",
			BirthCond:   between,
			CohortBy:    []cohort.CohortKey{{Col: "country"}},
			Aggs:        []cohort.AggSpec{{Func: cohort.UserCount}},
		},
		"Q3": {
			BirthAction: "shop",
			AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
			CohortBy:    []cohort.CohortKey{{Col: "country"}},
			Aggs:        []cohort.AggSpec{{Func: cohort.Avg, Col: "gold"}},
		},
		"Q4": {
			BirthAction: "shop",
			BirthCond: expr.And{
				L: between,
				R: expr.And{
					L: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Lit{Val: expr.S("dwarf")}},
					R: expr.In{L: expr.Col{Name: "country"}, List: []expr.Value{
						expr.S("China"), expr.S("Australia"), expr.S("United States")}},
				},
			},
			AgeCond: expr.And{
				L: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
				R: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "country"}, R: expr.Birth{Name: "country"}},
			},
			CohortBy: []cohort.CohortKey{{Col: "country"}},
			Aggs:     []cohort.AggSpec{{Func: cohort.Avg, Col: "gold"}},
		},
		"Q5": {
			BirthAction: "launch",
			BirthCond:   between,
			CohortBy:    []cohort.CohortKey{{Col: "country"}},
			Aggs:        []cohort.AggSpec{{Func: cohort.UserCount}},
		},
		"Q6": {
			BirthAction: "shop",
			BirthCond:   between,
			AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
			CohortBy:    []cohort.CohortKey{{Col: "country"}},
			Aggs:        []cohort.AggSpec{{Func: cohort.Avg, Col: "gold"}},
		},
		"Q7": {
			BirthAction: "launch",
			AgeCond:     expr.Cmp{Op: expr.OpLt, L: expr.Age{}, R: expr.Lit{Val: expr.I(7)}},
			CohortBy:    []cohort.CohortKey{{Col: "country"}},
			Aggs:        []cohort.AggSpec{{Func: cohort.UserCount}},
		},
		"Q8": {
			BirthAction: "shop",
			AgeCond: expr.And{
				L: expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
				R: expr.Cmp{Op: expr.OpLt, L: expr.Age{}, R: expr.Lit{Val: expr.I(7)}},
			},
			CohortBy: []cohort.CohortKey{{Col: "country"}},
			Aggs:     []cohort.AggSpec{{Func: cohort.Avg, Col: "gold"}},
		},
		"multiKey": {
			BirthAction: "launch",
			CohortBy:    []cohort.CohortKey{{Col: "country"}, {Col: "role"}},
			Aggs:        []cohort.AggSpec{{Func: cohort.Count}, {Func: cohort.Sum, Col: "gold"}},
		},
		"timeCohort": {
			BirthAction: "launch",
			CohortBy:    []cohort.CohortKey{{Col: "time", Bin: cohort.Week}},
			Aggs:        []cohort.AggSpec{{Func: cohort.UserCount}, {Func: cohort.Max, Col: "gold"}},
		},
		"weekAges": {
			BirthAction: "launch",
			AgeUnit:     cohort.Week,
			CohortBy:    []cohort.CohortKey{{Col: "country"}},
			Aggs:        []cohort.AggSpec{{Func: cohort.Min, Col: "gold"}, {Func: cohort.Count}},
		},
	}
}

// TestCrossSchemeEquivalence is the central integration test of DESIGN.md
// Section 5: COHANA, the SQL approach and the MV approach on both relational
// engines must produce identical results for every query shape.
func TestCrossSchemeEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		src := randomTable(seed, 40, 12)
		st, err := storage.Build(src, storage.Options{ChunkSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		d := FromActivity(src)
		schema := src.Schema()
		engs := []relational.Engine{relational.RowEngine{}, relational.ColEngine{}}
		mvs := map[string]map[string]*MV{}
		for _, eng := range engs {
			mvs[eng.Name()] = map[string]*MV{
				"launch": BuildMV(eng, d, schema, "launch"),
				"shop":   BuildMV(eng, d, schema, "shop"),
			}
		}
		for name, q := range querySuite() {
			want, err := plan.Execute(q, st, plan.ExecOptions{})
			if err != nil {
				t.Fatalf("seed %d %s: COHANA: %v", seed, name, err)
			}
			for _, eng := range engs {
				got, err := SQLApproach(eng, d, schema, q)
				if err != nil {
					t.Fatalf("seed %d %s: SQL/%s: %v", seed, name, eng.Name(), err)
				}
				if diff := want.Diff(got); diff != "" {
					t.Errorf("seed %d %s: SQL/%s differs from COHANA: %s\nCOHANA:\n%s\nSQL:\n%s",
						seed, name, eng.Name(), diff, want, got)
				}
				mv := mvs[eng.Name()][q.BirthAction]
				got, err = MVQuery(eng, mv, q)
				if err != nil {
					t.Fatalf("seed %d %s: MV/%s: %v", seed, name, eng.Name(), err)
				}
				if diff := want.Diff(got); diff != "" {
					t.Errorf("seed %d %s: MV/%s differs from COHANA: %s\nCOHANA:\n%s\nMV:\n%s",
						seed, name, eng.Name(), diff, want, got)
				}
			}
		}
	}
}

// TestPaperExample1AllSchemes pins Example 1's exact expected output on the
// Table 1 fixture across every scheme.
func TestPaperExample1AllSchemes(t *testing.T) {
	src := activity.PaperTable1()
	st, err := storage.Build(src, storage.Options{ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := &cohort.Query{
		BirthAction: "launch",
		BirthCond:   expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "role"}, R: expr.Lit{Val: expr.S("dwarf")}},
		AgeCond:     expr.Cmp{Op: expr.OpEq, L: expr.Col{Name: "action"}, R: expr.Lit{Val: expr.S("shop")}},
		CohortBy:    []cohort.CohortKey{{Col: "country"}},
		Aggs:        []cohort.AggSpec{{Func: cohort.Sum, Col: "gold", As: "spent"}},
	}
	want, err := plan.Execute(q, st, plan.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 3 {
		t.Fatalf("COHANA rows:\n%s", want)
	}
	d := FromActivity(src)
	for _, eng := range []relational.Engine{relational.RowEngine{}, relational.ColEngine{}} {
		got, err := SQLApproach(eng, d, src.Schema(), q)
		if err != nil {
			t.Fatal(err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("SQL/%s: %s", eng.Name(), diff)
		}
		mv := BuildMV(eng, d, src.Schema(), "launch")
		got, err = MVQuery(eng, mv, q)
		if err != nil {
			t.Fatal(err)
		}
		if diff := want.Diff(got); diff != "" {
			t.Errorf("MV/%s: %s", eng.Name(), diff)
		}
	}
}

func TestMVWrongBirthAction(t *testing.T) {
	src := activity.PaperTable1()
	d := FromActivity(src)
	mv := BuildMV(relational.ColEngine{}, d, src.Schema(), "launch")
	q := &cohort.Query{
		BirthAction: "shop",
		CohortBy:    []cohort.CohortKey{{Col: "country"}},
		Aggs:        []cohort.AggSpec{{Func: cohort.Count}},
	}
	if _, err := MVQuery(relational.ColEngine{}, mv, q); err == nil {
		t.Error("MV answered a query for a different birth action")
	}
}

func TestMVSize(t *testing.T) {
	// The MV roughly doubles the column count (Section 2's storage
	// complaint): D has 6 columns, the MV has 13 (6 + 6 birth + age).
	src := activity.PaperTable1()
	d := FromActivity(src)
	mv := BuildMV(relational.RowEngine{}, d, src.Schema(), "launch")
	if mv.Table.NumCols() != 13 {
		t.Errorf("MV has %d columns, want 13", mv.Table.NumCols())
	}
	// All three players launched, so the MV covers all 10 tuples.
	if mv.Table.Len() != 10 {
		t.Errorf("MV has %d rows, want 10", mv.Table.Len())
	}
	// A shop MV only covers players 001 and 002 (8 tuples).
	mv = BuildMV(relational.RowEngine{}, d, src.Schema(), "shop")
	if mv.Table.Len() != 8 {
		t.Errorf("shop MV has %d rows, want 8", mv.Table.Len())
	}
}
