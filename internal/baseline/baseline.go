// Package baseline implements the paper's two non-intrusive cohort
// evaluation schemes (Section 2) on top of the internal/relational
// substrate:
//
//   - the SQL approach: the five-part multi-join plan of Figure 2, built
//     fresh for every query (birth time group-by, birth-tuple join, cohortT
//     join, cohort-size group-by, final join + group-by);
//   - the materialized-view approach: a per-birth-action MV holding every
//     activity tuple joined with its user's birth attributes and age
//     (Figure 3); queries reduce to filters, two group-bys and one join.
//
// Both translators accept the same cohort.Query the COHANA engine runs and
// produce identical cohort.Result relations, which is what the cross-engine
// equivalence tests (and the comparative benchmarks of Figure 11) rely on.
package baseline

import (
	"fmt"

	"repro/internal/activity"
	"repro/internal/cohort"
	"repro/internal/expr"
	"repro/internal/relational"
)

// FromActivity converts an activity table into a raw relational table D with
// the same column names, the starting point of both non-intrusive schemes.
func FromActivity(t *activity.Table) *relational.Table {
	schema := t.Schema()
	fields := make([]relational.Field, schema.NumCols())
	for i := 0; i < schema.NumCols(); i++ {
		kind := expr.KindInt
		if schema.IsStringCol(i) {
			kind = expr.KindString
		}
		fields[i] = relational.Field{Name: schema.Col(i).Name, Kind: kind}
	}
	out := relational.NewTable(fields)
	row := make([]expr.Value, schema.NumCols())
	for r := 0; r < t.Len(); r++ {
		for c := 0; c < schema.NumCols(); c++ {
			if schema.IsStringCol(c) {
				row[c] = expr.S(t.Strings(c)[r])
			} else {
				row[c] = expr.I(t.Ints(c)[r])
			}
		}
		out.AppendRow(row)
	}
	return out
}

// birthPrefix prefixes materialized birth-attribute columns ("bc", "br",
// "bt" in the paper's Figure 3; we use a uniform b_ prefix).
const birthPrefix = "b_"

// rowEnv adapts a relational row to expr.Env. colMap / birthMap translate
// activity-schema column indices to relational column indices for the
// current tuple and the birth tuple respectively; ageCol is the computed age
// column (-1 when unavailable).
type rowEnv struct {
	t        *relational.Table
	row      int
	colMap   []int
	birthMap []int
	ageCol   int
}

func (e *rowEnv) Col(idx int) expr.Value {
	return e.t.Value(e.row, e.colMap[idx])
}

func (e *rowEnv) BirthCol(idx int) expr.Value {
	return e.t.Value(e.row, e.birthMap[idx])
}

func (e *rowEnv) Age() int64 {
	if e.ageCol < 0 {
		return 0
	}
	return e.t.Int(e.row, e.ageCol)
}

// identityMap maps schema indices to the raw D layout (same positions).
func identityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// birthColMap maps schema indices to the b_-prefixed columns of t.
func birthColMap(schema *activity.Schema, t *relational.Table) []int {
	m := make([]int, schema.NumCols())
	for i := 0; i < schema.NumCols(); i++ {
		m[i] = t.ColIndex(birthPrefix + schema.Col(i).Name)
	}
	return m
}

// buildBirthTuples computes the birth sub-query and birth-tuple join of
// Figure 2(a)-(b): for every user that performed the birth action, its birth
// activity tuple with all attributes renamed under the b_ prefix.
func buildBirthTuples(eng relational.Engine, d *relational.Table, schema *activity.Schema, birthAction string) *relational.Table {
	uc, tc, ac := schema.UserCol(), schema.TimeCol(), schema.ActionCol()
	// (a) SELECT p, Min(t) FROM D WHERE a = e GROUP BY p.
	performed := eng.Filter(d, func(t *relational.Table, r int) bool {
		return t.Str(r, ac) == birthAction
	})
	birth := eng.GroupBy(performed, []int{uc}, []relational.AggDef{
		{Kind: relational.AggMin, Col: tc, Name: "birthTime"},
	})
	// (b) join D with birth on (p, t = birthTime). The paper's Figure 2(b)
	// joins on user and time alone; we additionally require a = e so that a
	// different action performed at the same instant as the birth action
	// (legal under the (Au, At, Ae) primary key) is not mistaken for the
	// birth tuple.
	allD := identityMap(schema.NumCols())
	joined := eng.HashJoin(d, birth, []int{uc, tc}, []int{0, 1}, allD, nil)
	birthTuples := eng.Filter(joined, func(t *relational.Table, r int) bool {
		return t.Str(r, ac) == birthAction
	})
	names := make([]string, schema.NumCols())
	for i := range names {
		names[i] = birthPrefix + schema.Col(i).Name
	}
	return eng.Project(birthTuples, allD, names)
}

// MV is a materialized view built for one birth action: every activity tuple
// of every user that performed the action, extended with the b_ birth
// attributes and the day-granularity age column (Figure 2(c) materialized,
// as Section 2 prescribes).
type MV struct {
	BirthAction string
	Table       *relational.Table
	schema      *activity.Schema
}

// BuildMV materializes the view — the expensive preprocessing step whose
// cost Figure 10 reports.
func BuildMV(eng relational.Engine, d *relational.Table, schema *activity.Schema, birthAction string) *MV {
	birthTuples := buildBirthTuples(eng, d, schema, birthAction)
	uc, tc := schema.UserCol(), schema.TimeCol()
	allD := identityMap(schema.NumCols())
	allB := identityMap(schema.NumCols())
	// Join every activity tuple with its user's birth tuple.
	joined := eng.HashJoin(d, birthTuples, []int{uc}, []int{uc}, allD, allB)
	btCol := joined.MustCol(birthPrefix + schema.Col(tc).Name)
	withAge := eng.Extend(joined, relational.Field{Name: "age", Kind: expr.KindInt},
		func(t *relational.Table, r int) expr.Value {
			return expr.I(cohort.AgeOf(t.Int(r, tc), t.Int(r, btCol), cohort.Day))
		})
	return &MV{BirthAction: birthAction, Table: withAge, schema: schema}
}

// queryPieces holds the compiled parts shared by both schemes.
type queryPieces struct {
	birthPred expr.Pred
	agePred   expr.Pred
	keyNames  []string // cohort key column names in the working table
	isTimeKey []bool
}

func compileQuery(q *cohort.Query, schema *activity.Schema) (*queryPieces, error) {
	if err := q.Validate(schema); err != nil {
		return nil, err
	}
	p := &queryPieces{}
	var err error
	if q.BirthCond != nil {
		if p.birthPred, err = expr.Compile(q.BirthCond, schema); err != nil {
			return nil, err
		}
	}
	if q.AgeCond != nil {
		if p.agePred, err = expr.Compile(q.AgeCond, schema); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// addCohortKeys extends t with one ck_<i> column per cohort attribute, read
// from the birth-attribute columns (cohorts are defined by the projection of
// birth tuples onto L, Definition 6). Time attributes are binned.
func addCohortKeys(eng relational.Engine, t *relational.Table, schema *activity.Schema, q *cohort.Query) (*relational.Table, []string, []bool) {
	names := make([]string, len(q.CohortBy))
	isTime := make([]bool, len(q.CohortBy))
	for i, k := range q.CohortBy {
		idx := schema.ColIndex(k.Col)
		src := t.MustCol(birthPrefix + schema.Col(idx).Name)
		name := fmt.Sprintf("ck_%d", i)
		names[i] = name
		if schema.Col(idx).Type == activity.TypeTime {
			isTime[i] = true
			bin := k.Bin
			t = eng.Extend(t, relational.Field{Name: name, Kind: expr.KindInt},
				func(tb *relational.Table, r int) expr.Value {
					return expr.I(cohort.TimeBinStart(tb.Int(r, src), bin))
				})
			continue
		}
		kind := expr.KindInt
		if schema.IsStringCol(idx) {
			kind = expr.KindString
		}
		t = eng.Extend(t, relational.Field{Name: name, Kind: kind},
			func(tb *relational.Table, r int) expr.Value { return tb.Value(r, src) })
	}
	return t, names, isTime
}

// aggPlan expands the query's aggregate specs into relational aggregates.
// Avg becomes a Sum/Count pair recombined during result conversion.
type aggPlan struct {
	defs []relational.AggDef
	// outs[i] describes how to produce query aggregate i from the def
	// outputs: a single column (idx >= 0) or a sum/cnt pair for Avg.
	outs []aggOut
}

type aggOut struct {
	fn       cohort.AggFunc
	col      int // index into defs for non-Avg
	sum, cnt int // indexes into defs for Avg
}

func buildAggPlan(q *cohort.Query, schema *activity.Schema, t *relational.Table, userColName string) *aggPlan {
	p := &aggPlan{}
	add := func(d relational.AggDef) int {
		d.Name = fmt.Sprintf("agg_%d", len(p.defs))
		p.defs = append(p.defs, d)
		return len(p.defs) - 1
	}
	for _, spec := range q.Aggs {
		switch spec.Func {
		case cohort.Count:
			p.outs = append(p.outs, aggOut{fn: spec.Func, col: add(relational.AggDef{Kind: relational.AggCount})})
		case cohort.UserCount:
			uc := t.MustCol(userColName)
			p.outs = append(p.outs, aggOut{fn: spec.Func, col: add(relational.AggDef{Kind: relational.AggCountDistinct, Col: uc})})
		case cohort.Avg:
			mc := t.MustCol(schema.Col(schema.ColIndex(spec.Col)).Name)
			s := add(relational.AggDef{Kind: relational.AggSum, Col: mc})
			c := add(relational.AggDef{Kind: relational.AggCount})
			p.outs = append(p.outs, aggOut{fn: spec.Func, sum: s, cnt: c, col: -1})
		default:
			mc := t.MustCol(schema.Col(schema.ColIndex(spec.Col)).Name)
			kind := map[cohort.AggFunc]relational.AggKind{
				cohort.Sum: relational.AggSum,
				cohort.Min: relational.AggMin,
				cohort.Max: relational.AggMax,
			}[spec.Func]
			p.outs = append(p.outs, aggOut{fn: spec.Func, col: add(relational.AggDef{Kind: kind, Col: mc})})
		}
	}
	return p
}

// finishResult joins the per-(cohort, age) aggregates with the cohort sizes
// and converts to the cohort.Result shape shared with COHANA.
func finishResult(eng relational.Engine, agg, sizes *relational.Table, q *cohort.Query,
	keyNames []string, isTimeKey []bool, plan *aggPlan) *cohort.Result {

	nk := len(keyNames)
	aggKeys := make([]int, nk)
	sizeKeys := make([]int, nk)
	for i, n := range keyNames {
		aggKeys[i] = agg.MustCol(n)
		sizeKeys[i] = sizes.MustCol(n)
	}
	// Project: keys, age, agg outputs from the left; size from the right.
	lProj := append(append([]int{}, aggKeys...), agg.MustCol("age"))
	for i := range plan.defs {
		lProj = append(lProj, agg.MustCol(fmt.Sprintf("agg_%d", i)))
	}
	joined := eng.HashJoin(agg, sizes, aggKeys, sizeKeys, lProj, []int{sizes.MustCol("size")})

	res := &cohort.Result{}
	for _, k := range q.CohortBy {
		res.KeyCols = append(res.KeyCols, k.Col)
	}
	for _, s := range q.Aggs {
		res.AggNames = append(res.AggNames, s.Name())
	}
	ageCol := nk
	defBase := nk + 1
	sizeCol := joined.NumCols() - 1
	for r := 0; r < joined.Len(); r++ {
		row := cohort.Row{Age: joined.Int(r, ageCol), Size: joined.Int(r, sizeCol)}
		for i := 0; i < nk; i++ {
			if isTimeKey[i] {
				row.Cohort = append(row.Cohort, cohort.FormatTimeBin(joined.Int(r, i)))
			} else if joined.Fields()[i].Kind == expr.KindString {
				row.Cohort = append(row.Cohort, joined.Str(r, i))
			} else {
				row.Cohort = append(row.Cohort, fmt.Sprintf("%d", joined.Int(r, i)))
			}
		}
		for _, out := range plan.outs {
			if out.fn == cohort.Avg {
				sum := joined.Int(r, defBase+out.sum)
				cnt := joined.Int(r, defBase+out.cnt)
				row.Aggs = append(row.Aggs, float64(sum)/float64(cnt))
			} else {
				row.Aggs = append(row.Aggs, float64(joined.Int(r, defBase+out.col)))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.Sort()
	return res
}

// SQLApproach evaluates q with the Figure 2 plan: every query pays the full
// birth group-by and both joins.
func SQLApproach(eng relational.Engine, d *relational.Table, schema *activity.Schema, q *cohort.Query) (*cohort.Result, error) {
	pieces, err := compileQuery(q, schema)
	if err != nil {
		return nil, err
	}
	uc, tc := schema.UserCol(), schema.TimeCol()
	userName := schema.Col(uc).Name
	birthTuples := buildBirthTuples(eng, d, schema, q.BirthAction)
	// Figure 2(c): cohortT = D join birthTuples on p, with computed age.
	allD := identityMap(schema.NumCols())
	allB := identityMap(schema.NumCols())
	cohortT := eng.HashJoin(d, birthTuples, []int{uc}, []int{uc}, allD, allB)
	btCol := cohortT.MustCol(birthPrefix + schema.Col(tc).Name)
	unit := q.AgeUnit
	cohortT = eng.Extend(cohortT, relational.Field{Name: "age", Kind: expr.KindInt},
		func(t *relational.Table, r int) expr.Value {
			return expr.I(cohort.AgeOf(t.Int(r, tc), t.Int(r, btCol), unit))
		})
	return runCommonPlan(eng, cohortT, birthTuples, schema, q, pieces, userName)
}

// MVQuery evaluates q against a prebuilt materialized view (Figure 3). The
// view must have been built for q.BirthAction.
func MVQuery(eng relational.Engine, mv *MV, q *cohort.Query) (*cohort.Result, error) {
	schema := mv.schema
	if q.BirthAction != mv.BirthAction {
		return nil, fmt.Errorf("baseline: MV built for birth action %q cannot answer %q (per-action MV limitation, Section 2)",
			mv.BirthAction, q.BirthAction)
	}
	pieces, err := compileQuery(q, schema)
	if err != nil {
		return nil, err
	}
	uc, tc, ac := schema.UserCol(), schema.TimeCol(), schema.ActionCol()
	userName := schema.Col(uc).Name
	t := mv.Table
	// Recompute ages only for non-default units; the materialized age
	// column already holds day ages.
	if q.AgeUnit != cohort.Day {
		btCol := t.MustCol(birthPrefix + schema.Col(tc).Name)
		unit := q.AgeUnit
		t = eng.Extend(eng.Project(t, identityMap(t.NumCols()-1), nil), // drop day age
			relational.Field{Name: "age", Kind: expr.KindInt},
			func(tb *relational.Table, r int) expr.Value {
				return expr.I(cohort.AgeOf(tb.Int(r, tc), tb.Int(r, btCol), unit))
			})
	}
	// The MV plays both roles: birth tuples are the rows with t = b_t and
	// a = e (Figure 3(b)'s "t=bt AND a=launch" disjunct).
	btCol := t.MustCol(birthPrefix + schema.Col(tc).Name)
	birthRows := eng.Filter(t, func(tb *relational.Table, r int) bool {
		return tb.Int(r, tc) == tb.Int(r, btCol) && tb.Str(r, ac) == mv.BirthAction
	})
	return runCommonPlan(eng, t, birthRows, schema, q, pieces, userName)
}

// runCommonPlan executes the shared tail of both schemes: birth-condition
// filters, cohort keys, cohort sizes, age filtering, aggregation and the
// final join. cohortT holds one row per activity tuple with b_ columns and
// an age column; birthTuples holds one row per born user with b_ columns.
func runCommonPlan(eng relational.Engine, cohortT, birthTuples *relational.Table,
	schema *activity.Schema, q *cohort.Query, pieces *queryPieces, userName string) (*cohort.Result, error) {

	// σb on both tables: the condition reads birth attributes, so Col()
	// resolves to b_ columns in both cases.
	if pieces.birthPred != nil {
		bEnv := &rowEnv{colMap: birthColMap(schema, birthTuples), birthMap: birthColMap(schema, birthTuples), ageCol: -1}
		birthTuples = eng.Filter(birthTuples, func(t *relational.Table, r int) bool {
			bEnv.t, bEnv.row = t, r
			return pieces.birthPred(bEnv)
		})
		cEnv := &rowEnv{colMap: birthColMap(schema, cohortT), birthMap: birthColMap(schema, cohortT), ageCol: -1}
		cohortT = eng.Filter(cohortT, func(t *relational.Table, r int) bool {
			cEnv.t, cEnv.row = t, r
			return pieces.birthPred(cEnv)
		})
	}
	// Cohort keys from birth attributes on both tables.
	var keyNames []string
	var isTime []bool
	birthTuples, keyNames, isTime = addCohortKeys(eng, birthTuples, schema, q)
	cohortT, _, _ = addCohortKeys(eng, cohortT, schema, q)
	pieces.keyNames, pieces.isTimeKey = keyNames, isTime

	// Figure 2(d): cohort sizes = count distinct users per cohort over all
	// qualified users.
	keyCols := make([]int, len(keyNames))
	for i, n := range keyNames {
		keyCols[i] = birthTuples.MustCol(n)
	}
	sizes := eng.GroupBy(birthTuples, keyCols, []relational.AggDef{
		{Kind: relational.AggCountDistinct, Col: birthTuples.MustCol(birthPrefix + userName), Name: "size"},
	})
	// GroupBy names outputs after input fields; rename keys to ck_i + size.
	sizeNames := append(append([]string{}, keyNames...), "size")
	sizes = eng.Project(sizes, identityMap(sizes.NumCols()), sizeNames)

	// Figure 2(e): filter age tuples (age > 0 AND σg).
	ageCol := cohortT.MustCol("age")
	aEnv := &rowEnv{colMap: identityMap(schema.NumCols()), birthMap: birthColMap(schema, cohortT), ageCol: ageCol}
	agePred := pieces.agePred
	ageRows := eng.Filter(cohortT, func(t *relational.Table, r int) bool {
		if t.Int(r, ageCol) <= 0 {
			return false
		}
		if agePred == nil {
			return true
		}
		aEnv.t, aEnv.row = t, r
		return agePred(aEnv)
	})
	// Group by (cohort, age) and aggregate.
	plan := buildAggPlan(q, schema, ageRows, userName)
	gbKeys := make([]int, 0, len(keyNames)+1)
	for _, n := range keyNames {
		gbKeys = append(gbKeys, ageRows.MustCol(n))
	}
	gbKeys = append(gbKeys, ageRows.MustCol("age"))
	agg := eng.GroupBy(ageRows, gbKeys, plan.defs)
	aggNames := append(append([]string{}, keyNames...), "age")
	for i := range plan.defs {
		aggNames = append(aggNames, fmt.Sprintf("agg_%d", i))
	}
	agg = eng.Project(agg, identityMap(agg.NumCols()), aggNames)

	return finishResult(eng, agg, sizes, q, keyNames, isTime, plan), nil
}
