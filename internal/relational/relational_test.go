package relational

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func engines() []Engine { return []Engine{RowEngine{}, ColEngine{}} }

// sample builds a small orders-like table.
func sample() *Table {
	t := NewTable([]Field{
		{Name: "user", Kind: expr.KindString},
		{Name: "item", Kind: expr.KindString},
		{Name: "qty", Kind: expr.KindInt},
	})
	rows := []struct {
		u, i string
		q    int64
	}{
		{"alice", "sword", 2},
		{"alice", "shield", 1},
		{"bob", "sword", 5},
		{"carol", "potion", 3},
		{"bob", "potion", 1},
		{"alice", "sword", 4},
	}
	for _, r := range rows {
		t.AppendRow([]expr.Value{expr.S(r.u), expr.S(r.i), expr.I(r.q)})
	}
	return t
}

// rowsOf dumps a table as sorted printable rows for comparison.
func rowsOf(t *Table) []string {
	var out []string
	for r := 0; r < t.Len(); r++ {
		s := ""
		for c := 0; c < t.NumCols(); c++ {
			s += t.Value(r, c).String() + "|"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestTableBasics(t *testing.T) {
	tbl := sample()
	if tbl.Len() != 6 || tbl.NumCols() != 3 {
		t.Fatalf("shape %dx%d", tbl.Len(), tbl.NumCols())
	}
	if tbl.ColIndex("qty") != 2 || tbl.ColIndex("missing") != -1 {
		t.Error("ColIndex wrong")
	}
	if tbl.MustCol("user") != 0 {
		t.Error("MustCol wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol on missing column did not panic")
		}
	}()
	tbl.MustCol("missing")
}

func TestFilterBothEngines(t *testing.T) {
	for _, eng := range engines() {
		got := eng.Filter(sample(), func(tb *Table, r int) bool { return tb.Int(r, 2) >= 3 })
		if got.Len() != 3 {
			t.Errorf("%s: filter kept %d rows, want 3", eng.Name(), got.Len())
		}
		for r := 0; r < got.Len(); r++ {
			if got.Int(r, 2) < 3 {
				t.Errorf("%s: kept qty %d", eng.Name(), got.Int(r, 2))
			}
		}
	}
}

func TestExtendBothEngines(t *testing.T) {
	for _, eng := range engines() {
		got := eng.Extend(sample(), Field{Name: "qty2", Kind: expr.KindInt},
			func(tb *Table, r int) expr.Value { return expr.I(tb.Int(r, 2) * 2) })
		if got.NumCols() != 4 {
			t.Fatalf("%s: cols=%d", eng.Name(), got.NumCols())
		}
		for r := 0; r < got.Len(); r++ {
			if got.Int(r, 3) != 2*got.Int(r, 2) {
				t.Errorf("%s: row %d extend wrong", eng.Name(), r)
			}
		}
	}
}

func TestProjectBothEngines(t *testing.T) {
	for _, eng := range engines() {
		got := eng.Project(sample(), []int{2, 0}, []string{"q", "u"})
		if got.NumCols() != 2 || got.Fields()[0].Name != "q" || got.Fields()[1].Name != "u" {
			t.Fatalf("%s: fields %+v", eng.Name(), got.Fields())
		}
		if got.Int(0, 0) != 2 || got.Str(0, 1) != "alice" {
			t.Errorf("%s: first row %v %v", eng.Name(), got.Int(0, 0), got.Str(0, 1))
		}
	}
}

func TestHashJoinBothEngines(t *testing.T) {
	users := NewTable([]Field{{Name: "u", Kind: expr.KindString}, {Name: "country", Kind: expr.KindString}})
	users.AppendRow([]expr.Value{expr.S("alice"), expr.S("AU")})
	users.AppendRow([]expr.Value{expr.S("bob"), expr.S("US")})
	// carol intentionally missing: inner join drops her row.
	var results [][]string
	for _, eng := range engines() {
		got := eng.HashJoin(sample(), users, []int{0}, []int{0}, []int{0, 1, 2}, []int{1})
		if got.NumCols() != 4 {
			t.Fatalf("%s: cols=%d", eng.Name(), got.NumCols())
		}
		if got.Len() != 5 {
			t.Errorf("%s: join emitted %d rows, want 5", eng.Name(), got.Len())
		}
		results = append(results, rowsOf(got))
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("engines disagree:\n%v\n%v", results[0], results[1])
	}
}

func TestHashJoinMultiKey(t *testing.T) {
	l := NewTable([]Field{{Name: "a", Kind: expr.KindString}, {Name: "b", Kind: expr.KindInt}})
	r := NewTable([]Field{{Name: "a", Kind: expr.KindString}, {Name: "b", Kind: expr.KindInt}, {Name: "v", Kind: expr.KindInt}})
	l.AppendRow([]expr.Value{expr.S("x"), expr.I(1)})
	l.AppendRow([]expr.Value{expr.S("x"), expr.I(2)})
	r.AppendRow([]expr.Value{expr.S("x"), expr.I(1), expr.I(10)})
	r.AppendRow([]expr.Value{expr.S("x"), expr.I(3), expr.I(30)})
	for _, eng := range engines() {
		got := eng.HashJoin(l, r, []int{0, 1}, []int{0, 1}, []int{0, 1}, []int{2})
		if got.Len() != 1 || got.Int(0, 2) != 10 {
			t.Errorf("%s: multi-key join wrong: %d rows", eng.Name(), got.Len())
		}
	}
}

func TestGroupByBothEngines(t *testing.T) {
	aggs := []AggDef{
		{Kind: AggSum, Col: 2, Name: "sum_qty"},
		{Kind: AggCount, Name: "cnt"},
		{Kind: AggMin, Col: 2, Name: "min_qty"},
		{Kind: AggMax, Col: 2, Name: "max_qty"},
		{Kind: AggCountDistinct, Col: 1, Name: "items"},
	}
	var results [][]string
	for _, eng := range engines() {
		got := eng.GroupBy(sample(), []int{0}, aggs)
		if got.Len() != 3 {
			t.Fatalf("%s: %d groups, want 3", eng.Name(), got.Len())
		}
		for r := 0; r < got.Len(); r++ {
			if got.Str(r, 0) == "alice" {
				// alice: qty 2+1+4, items sword/shield.
				if got.Int(r, 1) != 7 || got.Int(r, 2) != 3 || got.Int(r, 3) != 1 || got.Int(r, 4) != 4 || got.Int(r, 5) != 2 {
					t.Errorf("%s: alice row = %v %v %v %v %v", eng.Name(),
						got.Int(r, 1), got.Int(r, 2), got.Int(r, 3), got.Int(r, 4), got.Int(r, 5))
				}
			}
		}
		results = append(results, rowsOf(got))
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("engines disagree:\n%v\n%v", results[0], results[1])
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	empty := NewTable(sample().Fields())
	for _, eng := range engines() {
		got := eng.GroupBy(empty, []int{0}, []AggDef{{Kind: AggCount, Name: "c"}})
		if got.Len() != 0 {
			t.Errorf("%s: empty group-by emitted rows", eng.Name())
		}
	}
}

func TestIteratorComposition(t *testing.T) {
	// filter -> project(computed) -> aggregate through the Volcano layer.
	it := NewSeqScan(sample())
	it = NewFilter(it, func(row []expr.Value) bool { return row[2].Int > 1 })
	it = NewProject(it, []int{0}, []string{"u"},
		Computed(Field{Name: "qty10", Kind: expr.KindInt}, func(row []expr.Value) expr.Value {
			return expr.I(row[2].Int * 10)
		}))
	it = NewHashAggregate(it, []int{0}, []AggDef{{Kind: AggSum, Col: 1, Name: "s"}})
	out := Materialize(it)
	want := map[string]int64{"alice": 60, "bob": 50, "carol": 30}
	if out.Len() != len(want) {
		t.Fatalf("%d groups", out.Len())
	}
	for r := 0; r < out.Len(); r++ {
		if want[out.Str(r, 0)] != out.Int(r, 1) {
			t.Errorf("group %s = %d, want %d", out.Str(r, 0), out.Int(r, 1), want[out.Str(r, 0)])
		}
	}
}

// TestEnginesAgreeProperty drives random pipelines through both engines and
// requires identical result sets.
func TestEnginesAgreeProperty(t *testing.T) {
	f := func(qtys []uint8, pivot uint8) bool {
		if len(qtys) == 0 {
			return true
		}
		t1 := NewTable([]Field{{Name: "k", Kind: expr.KindString}, {Name: "v", Kind: expr.KindInt}})
		names := []string{"a", "b", "c"}
		for i, q := range qtys {
			t1.AppendRow([]expr.Value{expr.S(names[i%3]), expr.I(int64(q))})
		}
		th := int64(pivot)
		var outs [][]string
		for _, eng := range engines() {
			f1 := eng.Filter(t1, func(tb *Table, r int) bool { return tb.Int(r, 1) >= th })
			g := eng.GroupBy(f1, []int{0}, []AggDef{
				{Kind: AggSum, Col: 1, Name: "s"}, {Kind: AggCount, Name: "c"},
			})
			outs = append(outs, rowsOf(g))
		}
		return reflect.DeepEqual(outs[0], outs[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
