package relational

import (
	"repro/internal/expr"
)

// Iterator is the Volcano tuple-at-a-time interface of the row engine: each
// Next call produces one materialized row. This is the execution model the
// paper's "PG" baseline pays for — per-tuple virtual dispatch and row
// construction on every operator boundary.
type Iterator interface {
	// Next returns the next row, or false when exhausted. The returned
	// slice may be reused by subsequent calls; consumers that retain rows
	// must copy.
	Next() ([]expr.Value, bool)
	// Fields describes the iterator's output row layout.
	Fields() []Field
}

// seqScan iterates a materialized table.
type seqScan struct {
	t   *Table
	row int
	buf []expr.Value
}

// NewSeqScan returns an iterator over t.
func NewSeqScan(t *Table) Iterator {
	return &seqScan{t: t, buf: make([]expr.Value, t.NumCols())}
}

func (s *seqScan) Fields() []Field { return s.t.Fields() }

func (s *seqScan) Next() ([]expr.Value, bool) {
	if s.row >= s.t.Len() {
		return nil, false
	}
	for c := 0; c < s.t.NumCols(); c++ {
		s.buf[c] = s.t.Value(s.row, c)
	}
	s.row++
	return s.buf, true
}

// filterIter drops rows failing the predicate.
type filterIter struct {
	in   Iterator
	pred func([]expr.Value) bool
}

// NewFilter wraps in with a row predicate.
func NewFilter(in Iterator, pred func([]expr.Value) bool) Iterator {
	return &filterIter{in: in, pred: pred}
}

func (f *filterIter) Fields() []Field { return f.in.Fields() }

func (f *filterIter) Next() ([]expr.Value, bool) {
	for {
		row, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(row) {
			return row, true
		}
	}
}

// projectIter emits selected columns plus computed columns.
type projectIter struct {
	in     Iterator
	cols   []int
	comp   []computed
	fields []Field
	buf    []expr.Value
}

type computed struct {
	field Field
	fn    func([]expr.Value) expr.Value
}

// NewProject keeps cols (renamed via names, or original names when names is
// nil) and appends one computed column per comp entry.
func NewProject(in Iterator, cols []int, names []string, comps ...computed) Iterator {
	inF := in.Fields()
	fields := make([]Field, 0, len(cols)+len(comps))
	for i, c := range cols {
		f := inF[c]
		if names != nil {
			f.Name = names[i]
		}
		fields = append(fields, f)
	}
	for _, cp := range comps {
		fields = append(fields, cp.field)
	}
	return &projectIter{in: in, cols: cols, comp: comps, fields: fields, buf: make([]expr.Value, len(fields))}
}

// Computed constructs a computed projection column.
func Computed(f Field, fn func([]expr.Value) expr.Value) computed {
	return computed{field: f, fn: fn}
}

func (p *projectIter) Fields() []Field { return p.fields }

func (p *projectIter) Next() ([]expr.Value, bool) {
	row, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	i := 0
	for _, c := range p.cols {
		p.buf[i] = row[c]
		i++
	}
	for _, cp := range p.comp {
		p.buf[i] = cp.fn(row)
		i++
	}
	return p.buf, true
}

// hashJoinIter is a classic build/probe hash join: the right (build) input
// is drained into a hash table on Open, then the left (probe) side streams.
type hashJoinIter struct {
	probe        Iterator
	pKeys        []int
	lProj, rProj []int
	fields       []Field

	built   map[string][][]expr.Value
	pending [][]expr.Value // matches of the current probe row
	current []expr.Value   // current probe row (copied)
	buf     []expr.Value
	keyBuf  []byte
}

// NewHashJoin joins probe (left) with build (right) on equality of the key
// columns, emitting lProj of the probe row then rProj of the build row.
func NewHashJoin(probe, build Iterator, pKeys, bKeys, lProj, rProj []int) Iterator {
	pF, bF := probe.Fields(), build.Fields()
	fields := make([]Field, 0, len(lProj)+len(rProj))
	for _, c := range lProj {
		fields = append(fields, pF[c])
	}
	for _, c := range rProj {
		fields = append(fields, bF[c])
	}
	j := &hashJoinIter{
		probe: probe, pKeys: pKeys, lProj: lProj, rProj: rProj,
		fields: fields,
		built:  make(map[string][][]expr.Value),
		buf:    make([]expr.Value, len(fields)),
	}
	// Build phase: copy each build row (tuple-at-a-time materialization).
	for {
		row, ok := build.Next()
		if !ok {
			break
		}
		key := string(rowKey(j.keyBuf[:0], row, bKeys))
		cp := make([]expr.Value, len(row))
		copy(cp, row)
		j.built[key] = append(j.built[key], cp)
	}
	return j
}

func rowKey(buf []byte, row []expr.Value, keys []int) []byte {
	for _, c := range keys {
		v := row[c]
		if v.Kind == expr.KindString {
			buf = append(buf, byte(len(v.Str)>>8), byte(len(v.Str)))
			buf = append(buf, v.Str...)
		} else {
			for i := 0; i < 8; i++ {
				buf = append(buf, byte(v.Int>>(8*i)))
			}
		}
	}
	return buf
}

func (j *hashJoinIter) Fields() []Field { return j.fields }

func (j *hashJoinIter) Next() ([]expr.Value, bool) {
	for {
		if len(j.pending) > 0 {
			match := j.pending[0]
			j.pending = j.pending[1:]
			i := 0
			for _, c := range j.lProj {
				j.buf[i] = j.current[c]
				i++
			}
			for _, c := range j.rProj {
				j.buf[i] = match[c]
				i++
			}
			return j.buf, true
		}
		row, ok := j.probe.Next()
		if !ok {
			return nil, false
		}
		j.keyBuf = rowKey(j.keyBuf[:0], row, j.pKeys)
		matches := j.built[string(j.keyBuf)]
		if len(matches) == 0 {
			continue
		}
		if j.current == nil {
			j.current = make([]expr.Value, len(row))
		}
		copy(j.current, row)
		j.pending = matches
	}
}

// hashAggIter drains its input into per-group aggregate states on
// construction, then streams the groups.
type hashAggIter struct {
	fields  []Field
	groups  []aggGroup
	aggDefs []AggDef
	next    int
	buf     []expr.Value
}

type aggGroup struct {
	key    []expr.Value
	states []rowAggState
}

type rowAggState struct {
	sum, min, max int64
	cnt           int64
	has           bool
	distinct      map[expr.Value]struct{}
}

// NewHashAggregate groups rows of in by the key columns and computes aggs.
func NewHashAggregate(in Iterator, keys []int, aggs []AggDef) Iterator {
	inF := in.Fields()
	fields := make([]Field, 0, len(keys)+len(aggs))
	for _, k := range keys {
		fields = append(fields, inF[k])
	}
	for _, a := range aggs {
		fields = append(fields, Field{Name: a.Name, Kind: expr.KindInt})
	}
	idx := make(map[string]int)
	var groups []aggGroup
	var keyBuf []byte
	for {
		row, ok := in.Next()
		if !ok {
			break
		}
		keyBuf = rowKey(keyBuf[:0], row, keys)
		gi, ok := idx[string(keyBuf)]
		if !ok {
			gi = len(groups)
			idx[string(keyBuf)] = gi
			key := make([]expr.Value, len(keys))
			for i, k := range keys {
				key[i] = row[k]
			}
			states := make([]rowAggState, len(aggs))
			for i, a := range aggs {
				if a.Kind == AggCountDistinct {
					states[i].distinct = make(map[expr.Value]struct{})
				}
			}
			groups = append(groups, aggGroup{key: key, states: states})
		}
		g := &groups[gi]
		for i, a := range aggs {
			st := &g.states[i]
			switch a.Kind {
			case AggCount:
				st.cnt++
			case AggCountDistinct:
				st.distinct[row[a.Col]] = struct{}{}
			default:
				v := row[a.Col].Int
				st.sum += v
				st.cnt++
				if !st.has {
					st.min, st.max, st.has = v, v, true
				} else {
					if v < st.min {
						st.min = v
					}
					if v > st.max {
						st.max = v
					}
				}
			}
		}
	}
	it := &hashAggIter{fields: fields, groups: groups, buf: make([]expr.Value, len(fields))}
	it.aggDefs = aggs
	return it
}

func (h *hashAggIter) Fields() []Field { return h.fields }

func (h *hashAggIter) Next() ([]expr.Value, bool) {
	if h.next >= len(h.groups) {
		return nil, false
	}
	g := h.groups[h.next]
	h.next++
	i := 0
	for _, k := range g.key {
		h.buf[i] = k
		i++
	}
	for j, a := range h.aggDefs {
		st := &g.states[j]
		var out int64
		switch a.Kind {
		case AggSum:
			out = st.sum
		case AggCount:
			out = st.cnt
		case AggMin:
			out = st.min
		case AggMax:
			out = st.max
		case AggCountDistinct:
			out = int64(len(st.distinct))
		}
		h.buf[i] = expr.I(out)
		i++
	}
	return h.buf, true
}

// Materialize drains an iterator into a table.
func Materialize(in Iterator) *Table {
	t := NewTable(in.Fields())
	for {
		row, ok := in.Next()
		if !ok {
			return t
		}
		t.AppendRow(row)
	}
}
