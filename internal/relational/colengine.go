package relational

import (
	"repro/internal/expr"
)

// ColEngine executes operators column-at-a-time over selection vectors,
// standing in for the columnar store ("MONET") of the paper's comparative
// study: predicates and joins produce row-id vectors, and output columns are
// gathered in tight per-column loops without materializing intermediate
// rows.
type ColEngine struct{}

// Name implements Engine.
func (ColEngine) Name() string { return "column" }

// gather materializes the selected rows of chosen columns — the late
// materialization step of a columnar engine: one tight loop per column.
func gather(t *Table, sel []int32, cols []int, names []string) *Table {
	fields := make([]Field, len(cols))
	for i, c := range cols {
		fields[i] = t.fields[c]
		if names != nil {
			fields[i].Name = names[i]
		}
	}
	out := NewTable(fields)
	out.n = len(sel)
	for i, c := range cols {
		if t.fields[c].Kind == expr.KindString {
			src := t.strs[c]
			dst := make([]string, len(sel))
			for k, r := range sel {
				dst[k] = src[r]
			}
			out.strs[i] = dst
		} else {
			src := t.ints[c]
			dst := make([]int64, len(sel))
			for k, r := range sel {
				dst[k] = src[r]
			}
			out.ints[i] = dst
		}
	}
	return out
}

func allCols(t *Table) []int {
	cols := make([]int, t.NumCols())
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// Filter implements Engine.
func (ColEngine) Filter(t *Table, pred func(*Table, int) bool) *Table {
	sel := make([]int32, 0, t.Len())
	for r := 0; r < t.Len(); r++ {
		if pred(t, r) {
			sel = append(sel, int32(r))
		}
	}
	return gather(t, sel, allCols(t), nil)
}

// Extend implements Engine.
func (ColEngine) Extend(t *Table, f Field, fn func(*Table, int) expr.Value) *Table {
	out := NewTable(append(append([]Field(nil), t.fields...), f))
	out.n = t.Len()
	for c := range t.fields {
		if t.fields[c].Kind == expr.KindString {
			out.strs[c] = t.strs[c]
		} else {
			out.ints[c] = t.ints[c]
		}
	}
	// Compute the new column in one pass.
	last := t.NumCols()
	if f.Kind == expr.KindString {
		col := make([]string, t.Len())
		for r := 0; r < t.Len(); r++ {
			col[r] = fn(t, r).Str
		}
		out.strs[last] = col
	} else {
		col := make([]int64, t.Len())
		for r := 0; r < t.Len(); r++ {
			col[r] = fn(t, r).Int
		}
		out.ints[last] = col
	}
	return out
}

// Project implements Engine.
func (ColEngine) Project(t *Table, cols []int, names []string) *Table {
	fields := make([]Field, len(cols))
	for i, c := range cols {
		fields[i] = t.fields[c]
		if names != nil {
			fields[i].Name = names[i]
		}
	}
	out := NewTable(fields)
	out.n = t.Len()
	for i, c := range cols {
		if t.fields[c].Kind == expr.KindString {
			out.strs[i] = t.strs[c]
		} else {
			out.ints[i] = t.ints[c]
		}
	}
	return out
}

// HashJoin implements Engine: build a row-id hash table on the build side's
// key columns, probe with the left side producing matched row-id pairs, then
// gather the projected columns of both sides.
func (ColEngine) HashJoin(l, r *Table, lKeys, rKeys, lProj, rProj []int) *Table {
	built := make(map[string][]int32, r.Len())
	var keyBuf []byte
	for row := 0; row < r.Len(); row++ {
		keyBuf = joinKey(keyBuf[:0], r, row, rKeys)
		built[string(keyBuf)] = append(built[string(keyBuf)], int32(row))
	}
	var lSel, rSel []int32
	for row := 0; row < l.Len(); row++ {
		keyBuf = joinKey(keyBuf[:0], l, row, lKeys)
		for _, m := range built[string(keyBuf)] {
			lSel = append(lSel, int32(row))
			rSel = append(rSel, m)
		}
	}
	lt := gather(l, lSel, lProj, nil)
	rt := gather(r, rSel, rProj, nil)
	// Concatenate the gathered column sets.
	fields := append(append([]Field(nil), lt.fields...), rt.fields...)
	out := NewTable(fields)
	out.n = lt.n
	for i := range lt.fields {
		out.strs[i], out.ints[i] = lt.strs[i], lt.ints[i]
	}
	for i := range rt.fields {
		out.strs[len(lt.fields)+i], out.ints[len(lt.fields)+i] = rt.strs[i], rt.ints[i]
	}
	return out
}

// GroupBy implements Engine: a single pass building dense group states, then
// per-column result construction.
func (ColEngine) GroupBy(t *Table, keys []int, aggs []AggDef) *Table {
	idx := make(map[string]int)
	type group struct {
		row    int32 // representative row for key values
		states []rowAggState
	}
	var groups []group
	var keyBuf []byte
	for r := 0; r < t.Len(); r++ {
		keyBuf = joinKey(keyBuf[:0], t, r, keys)
		gi, ok := idx[string(keyBuf)]
		if !ok {
			gi = len(groups)
			idx[string(keyBuf)] = gi
			states := make([]rowAggState, len(aggs))
			for i, a := range aggs {
				if a.Kind == AggCountDistinct {
					states[i].distinct = make(map[expr.Value]struct{})
				}
			}
			groups = append(groups, group{row: int32(r), states: states})
		}
		g := &groups[gi]
		for i, a := range aggs {
			st := &g.states[i]
			switch a.Kind {
			case AggCount:
				st.cnt++
			case AggCountDistinct:
				st.distinct[t.Value(r, a.Col)] = struct{}{}
			default:
				v := t.ints[a.Col][r]
				st.sum += v
				st.cnt++
				if !st.has {
					st.min, st.max, st.has = v, v, true
				} else {
					if v < st.min {
						st.min = v
					}
					if v > st.max {
						st.max = v
					}
				}
			}
		}
	}
	fields := make([]Field, 0, len(keys)+len(aggs))
	for _, k := range keys {
		fields = append(fields, t.fields[k])
	}
	for _, a := range aggs {
		fields = append(fields, Field{Name: a.Name, Kind: expr.KindInt})
	}
	out := NewTable(fields)
	out.n = len(groups)
	for i, k := range keys {
		if t.fields[k].Kind == expr.KindString {
			col := make([]string, len(groups))
			for gi, g := range groups {
				col[gi] = t.strs[k][g.row]
			}
			out.strs[i] = col
		} else {
			col := make([]int64, len(groups))
			for gi, g := range groups {
				col[gi] = t.ints[k][g.row]
			}
			out.ints[i] = col
		}
	}
	for i, a := range aggs {
		col := make([]int64, len(groups))
		for gi := range groups {
			st := &groups[gi].states[i]
			switch a.Kind {
			case AggSum:
				col[gi] = st.sum
			case AggCount:
				col[gi] = st.cnt
			case AggMin:
				col[gi] = st.min
			case AggMax:
				col[gi] = st.max
			case AggCountDistinct:
				col[gi] = int64(len(st.distinct))
			}
		}
		out.ints[len(keys)+i] = col
	}
	return out
}
