// Package relational is the baseline substrate for the paper's two
// non-intrusive cohort evaluation schemes (Section 2): a generic relational
// engine able to run the multi-join SQL plan of Figure 2 and the
// materialized-view plan of Figure 3. It provides two execution engines over
// the same storage —
//
//   - RowEngine: a Volcano-style tuple-at-a-time iterator engine standing in
//     for the row store ("PG" in the paper's experiments), paying per-tuple
//     iterator dispatch and row materialization costs;
//   - ColEngine: an operator-at-a-time columnar engine standing in for the
//     column store ("MONET"), processing whole columns with selection
//     vectors and late materialization.
//
// Both engines implement the same Engine interface with identical semantics,
// so the cross-engine equivalence tests can compare them against COHANA.
package relational

import (
	"fmt"

	"repro/internal/expr"
)

// Field describes one column of a relational table.
type Field struct {
	Name string
	Kind expr.Kind
}

// Table is a materialized relation stored column-wise (both engines share
// this storage; they differ in how operators traverse it).
type Table struct {
	fields []Field
	n      int
	strs   [][]string
	ints   [][]int64
}

// NewTable creates an empty table with the given fields.
func NewTable(fields []Field) *Table {
	t := &Table{fields: append([]Field(nil), fields...)}
	t.strs = make([][]string, len(fields))
	t.ints = make([][]int64, len(fields))
	for i, f := range fields {
		if f.Kind == expr.KindString {
			t.strs[i] = []string{}
		} else {
			t.ints[i] = []int64{}
		}
	}
	return t
}

// Fields returns the field list (shared; do not mutate).
func (t *Table) Fields() []Field { return t.fields }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.fields) }

// Len returns the number of rows.
func (t *Table) Len() int { return t.n }

// ColIndex resolves a field name, returning -1 when absent.
func (t *Table) ColIndex(name string) int {
	for i, f := range t.fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// MustCol resolves a field name and panics when absent; callers use it for
// statically-known plan columns.
func (t *Table) MustCol(name string) int {
	i := t.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("relational: no column %q", name))
	}
	return i
}

// AppendRow appends values in field order.
func (t *Table) AppendRow(vals []expr.Value) {
	for i, f := range t.fields {
		if f.Kind == expr.KindString {
			t.strs[i] = append(t.strs[i], vals[i].Str)
		} else {
			t.ints[i] = append(t.ints[i], vals[i].Int)
		}
	}
	t.n++
}

// appendFrom appends row r of src projected through cols, used by operators.
func (t *Table) appendFrom(src *Table, r int, cols []int, into int) int {
	for _, c := range cols {
		if src.fields[c].Kind == expr.KindString {
			t.strs[into] = append(t.strs[into], src.strs[c][r])
		} else {
			t.ints[into] = append(t.ints[into], src.ints[c][r])
		}
		into++
	}
	return into
}

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) expr.Value {
	if t.fields[col].Kind == expr.KindString {
		return expr.S(t.strs[col][row])
	}
	return expr.I(t.ints[col][row])
}

// Str returns a string cell.
func (t *Table) Str(row, col int) string { return t.strs[col][row] }

// Int returns an integer cell.
func (t *Table) Int(row, col int) int64 { return t.ints[col][row] }

// StrCol returns the backing slice of a string column.
func (t *Table) StrCol(col int) []string { return t.strs[col] }

// IntCol returns the backing slice of an integer column.
func (t *Table) IntCol(col int) []int64 { return t.ints[col] }

// Row materializes row r as a value slice (row-engine currency).
func (t *Table) Row(r int) []expr.Value {
	out := make([]expr.Value, len(t.fields))
	for c := range t.fields {
		out[c] = t.Value(r, c)
	}
	return out
}

// AggKind is a relational aggregate function.
type AggKind uint8

// Relational aggregates. CountDistinct implements COUNT(DISTINCT col) — the
// cohort-size and retention (UserCount) computations of the SQL plans.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggCountDistinct
)

func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "Sum"
	case AggCount:
		return "Count"
	case AggMin:
		return "Min"
	case AggMax:
		return "Max"
	case AggCountDistinct:
		return "CountDistinct"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// AggDef is one aggregate output of a group-by: Kind applied to column Col
// (ignored for AggCount), emitted under Name. All aggregate outputs are
// integers; averages are computed downstream from Sum and Count.
type AggDef struct {
	Kind AggKind
	Col  int
	Name string
}

// Engine is the operator surface shared by the row and column engines. All
// operators materialize their output (operator-at-a-time at the API level);
// the engines differ in the per-tuple machinery underneath.
type Engine interface {
	// Name identifies the engine in benchmark output ("row" / "column").
	Name() string
	// Filter keeps rows satisfying pred.
	Filter(t *Table, pred func(t *Table, row int) bool) *Table
	// Extend appends a computed column.
	Extend(t *Table, f Field, fn func(t *Table, row int) expr.Value) *Table
	// Project keeps the given columns under new names.
	Project(t *Table, cols []int, names []string) *Table
	// HashJoin equi-joins l and r on the given key columns, emitting the
	// lProj columns of l followed by the rProj columns of r.
	HashJoin(l, r *Table, lKeys, rKeys, lProj, rProj []int) *Table
	// GroupBy groups by the key columns and computes aggs per group. The
	// output has the key columns (original names) followed by the aggregate
	// columns.
	GroupBy(t *Table, keys []int, aggs []AggDef) *Table
}

// joinKey encodes the key columns of row r into a hashable string.
func joinKey(buf []byte, t *Table, r int, keys []int) []byte {
	for _, c := range keys {
		if t.fields[c].Kind == expr.KindString {
			s := t.strs[c][r]
			buf = append(buf, byte(len(s)>>8), byte(len(s)))
			buf = append(buf, s...)
		} else {
			v := t.ints[c][r]
			for i := 0; i < 8; i++ {
				buf = append(buf, byte(v>>(8*i)))
			}
		}
	}
	return buf
}
