package relational

import (
	"repro/internal/expr"
)

// RowEngine executes every operator through the Volcano iterator layer and
// materializes the result, standing in for the row store ("PG") of the
// paper's comparative study. Each tuple crosses an interface boundary per
// operator and is materialized as a []expr.Value, the per-row overhead that
// row stores pay on analytical scans.
type RowEngine struct{}

// Name implements Engine.
func (RowEngine) Name() string { return "row" }

// Filter implements Engine.
func (RowEngine) Filter(t *Table, pred func(*Table, int) bool) *Table {
	// The predicate receives (table, row); adapt it to the row currency by
	// tracking the scan position. The extra indirection mirrors a row
	// store's expression evaluation over materialized tuples.
	row := -1
	scan := NewSeqScan(t)
	it := NewFilter(scan, func([]expr.Value) bool {
		row++
		return pred(t, row)
	})
	return Materialize(it)
}

// Extend implements Engine.
func (RowEngine) Extend(t *Table, f Field, fn func(*Table, int) expr.Value) *Table {
	cols := make([]int, t.NumCols())
	for i := range cols {
		cols[i] = i
	}
	row := -1
	it := NewProject(NewSeqScan(t), cols, nil, Computed(f, func([]expr.Value) expr.Value {
		row++
		return fn(t, row)
	}))
	return Materialize(it)
}

// Project implements Engine.
func (RowEngine) Project(t *Table, cols []int, names []string) *Table {
	return Materialize(NewProject(NewSeqScan(t), cols, names))
}

// HashJoin implements Engine.
func (RowEngine) HashJoin(l, r *Table, lKeys, rKeys, lProj, rProj []int) *Table {
	return Materialize(NewHashJoin(NewSeqScan(l), NewSeqScan(r), lKeys, rKeys, lProj, rProj))
}

// GroupBy implements Engine.
func (RowEngine) GroupBy(t *Table, keys []int, aggs []AggDef) *Table {
	return Materialize(NewHashAggregate(NewSeqScan(t), keys, aggs))
}
