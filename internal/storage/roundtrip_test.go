package storage

import (
	"bytes"
	"testing"

	"repro/internal/activity"
	"repro/internal/gen"
)

// mustMaterialize decodes tbl back to row form, failing the test on error.
func mustMaterialize(t *testing.T, tbl *Table) *activity.Table {
	t.Helper()
	got, err := tbl.Materialize()
	if err != nil {
		t.Fatalf("materializing: %v", err)
	}
	return got
}

// assertRoundTrip serializes, deserializes and re-serializes st, checking
// the decoded table is structurally identical and the bytes are stable.
func assertRoundTrip(t *testing.T, st *Table) *Table {
	t.Helper()
	buf, err := st.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Deserialize(buf)
	if err != nil {
		t.Fatalf("deserializing own output: %v", err)
	}
	if back.NumRows() != st.NumRows() || back.NumUsers() != st.NumUsers() ||
		back.NumChunks() != st.NumChunks() || back.ChunkSize() != st.ChunkSize() {
		t.Fatalf("round trip changed shape: %d/%d/%d/%d -> %d/%d/%d/%d",
			st.NumRows(), st.NumUsers(), st.NumChunks(), st.ChunkSize(),
			back.NumRows(), back.NumUsers(), back.NumChunks(), back.ChunkSize())
	}
	buf2, err := back.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("serialization is not a fixed point")
	}
	return back
}

func TestSerializeRoundTripEmptyTable(t *testing.T) {
	empty := activity.NewTable(activity.GameSchema())
	if err := empty.SortByPK(); err != nil {
		t.Fatal(err)
	}
	st, err := Build(empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	back := assertRoundTrip(t, st)
	if back.NumRows() != 0 || back.NumChunks() != 0 {
		t.Fatalf("empty table round trip: rows=%d chunks=%d", back.NumRows(), back.NumChunks())
	}
	if got := mustMaterialize(t, back); got.Len() != 0 {
		t.Fatalf("materialized empty table has %d rows", got.Len())
	}
}

func TestSerializeRoundTripSingleUserChunks(t *testing.T) {
	src := gen.Generate(gen.Config{Users: 7, Days: 5, MeanActions: 6, Seed: 3})
	if err := src.SortByPK(); err != nil {
		t.Fatal(err)
	}
	// ChunkSize 1 closes a chunk at every user boundary: one user per chunk.
	st, err := Build(src, Options{ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumChunks() != st.NumUsers() {
		t.Fatalf("chunking: %d chunks for %d users, want one per user", st.NumChunks(), st.NumUsers())
	}
	for i := 0; i < st.NumChunks(); i++ {
		if n := st.Chunk(i).NumUsers(); n != 1 {
			t.Fatalf("chunk %d holds %d users", i, n)
		}
	}
	back := assertRoundTrip(t, st)

	// The decoded table materializes back to the exact source rows.
	got := mustMaterialize(t, back)
	if got.Len() != src.Len() {
		t.Fatalf("materialized %d rows, want %d", got.Len(), src.Len())
	}
	schema := src.Schema()
	for c := 0; c < schema.NumCols(); c++ {
		for r := 0; r < src.Len(); r++ {
			if schema.IsStringCol(c) {
				if got.Strings(c)[r] != src.Strings(c)[r] {
					t.Fatalf("row %d col %d: %q != %q", r, c, got.Strings(c)[r], src.Strings(c)[r])
				}
			} else if got.Ints(c)[r] != src.Ints(c)[r] {
				t.Fatalf("row %d col %d: %d != %d", r, c, got.Ints(c)[r], src.Ints(c)[r])
			}
		}
	}
}

func TestSerializeRoundTripSingleUserTable(t *testing.T) {
	src := activity.NewTable(activity.PaperSchema())
	for i, a := range []string{"launch", "shop", "fight"} {
		if err := src.Append("solo", int64(1368928800+i*86400), a, "dwarf", "Australia", int64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.SortByPK(); err != nil {
		t.Fatal(err)
	}
	st, err := Build(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumChunks() != 1 || st.NumUsers() != 1 {
		t.Fatalf("single-user table: %d chunks, %d users", st.NumChunks(), st.NumUsers())
	}
	assertRoundTrip(t, st)
}

// FuzzDeserialize: arbitrary bytes must produce a table or an error, never
// a panic — the catalog hardening depends on decode failures being clean.
func FuzzDeserialize(f *testing.F) {
	st, err := Build(activity.PaperTable1(), Options{ChunkSize: 4})
	if err != nil {
		f.Fatal(err)
	}
	good, err := st.Serialize()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("COHANA1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Deserialize(data)
		if err == nil && tbl == nil {
			t.Fatal("Deserialize returned neither table nor error")
		}
	})
}

// FuzzDecodeChunkSegment: arbitrary segment bytes must produce a chunk or an
// error, never a panic — v2 manifests hand this decoder raw on-disk files.
func FuzzDecodeChunkSegment(f *testing.F) {
	st, err := Build(activity.PaperTable1(), Options{ChunkSize: 4})
	if err != nil {
		f.Fatal(err)
	}
	schema := st.Schema()
	for i := 0; i < st.NumChunks(); i++ {
		f.Add(st.segmentBytes(i))
	}
	good := st.segmentBytes(0)
	f.Add(good[:len(good)/2])
	f.Add([]byte(chunkMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := decodeChunkSegment(data, schema)
		if err == nil && sc == nil {
			t.Fatal("decodeChunkSegment returned neither chunk nor error")
		}
		if err == nil {
			// A structurally valid segment must also survive assembly.
			if _, err := assembleShard(schema, 4, []*segChunk{sc}, nil); err == nil {
				return
			}
		}
	})
}
