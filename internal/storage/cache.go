package storage

import (
	"sync"

	"repro/internal/obs"
)

// ChunkCache is the process-wide pool of decoded chunk segments backing lazy
// tables. Entries are keyed by the segment's content hash, so a chunk carried
// across a compaction commit (hash unchanged) keeps its decoded payload, and
// two table generations that share a chunk share one entry. Eviction is LRU
// over unpinned entries under a byte budget; a pinned entry (an in-flight
// scan holds it) is never evicted, so eviction can never race a scan.
//
// One mutex guards everything: the entry map, the LRU links, the pin counts,
// the size accounting, and — crucially — every lazy table's chunk slots
// (Table.chunks[i] for cold-capable chunks). Decoding runs outside the lock
// with a per-entry singleflight, so a thundering herd on one cold chunk pays
// one disk read.
type ChunkCache struct {
	mu       sync.Mutex
	budget   int64 // <= 0 means unbounded
	resident int64
	entries  map[string]*cacheEntry
	// LRU list of evictable entries (resident, unpinned); head is the most
	// recently released.
	head, tail *cacheEntry

	hits, misses, evictions uint64
}

// cacheEntry is one decoded segment. Between creation and close(ready) the
// entry is in flight: payload is nil and followers wait on ready. An entry
// that failed to load is removed from the map before ready closes, so a
// retry starts a fresh load.
type cacheEntry struct {
	hash    string
	payload *segChunk
	size    int64
	pins    int
	ready   chan struct{}
	err     error

	inLRU      bool
	prev, next *cacheEntry

	// slots are the table chunk slots currently bound to this payload;
	// eviction nils them so the next touch reloads.
	slots []slotRef
}

type slotRef struct {
	tbl *Table
	idx int
}

// NewChunkCache creates a cache with the given decoded-byte budget;
// budgetBytes <= 0 means unbounded.
func NewChunkCache(budgetBytes int64) *ChunkCache {
	return &ChunkCache{budget: budgetBytes, entries: make(map[string]*cacheEntry)}
}

// defaultChunkCache serves lazy tables opened without an explicit cache
// (cohana.Open), making the budget genuinely process-wide.
var defaultChunkCache = NewChunkCache(0)

// DefaultChunkCache returns the shared process-wide cache.
func DefaultChunkCache() *ChunkCache { return defaultChunkCache }

// SetBudget replaces the byte budget and evicts down to it immediately.
func (c *ChunkCache) SetBudget(budgetBytes int64) {
	c.mu.Lock()
	c.budget = budgetBytes
	c.evictLocked()
	c.mu.Unlock()
}

// ChunkCacheStats is a point-in-time snapshot of the cache.
type ChunkCacheStats struct {
	BudgetBytes   int64  `json:"budgetBytes"`
	ResidentBytes int64  `json:"residentBytes"`
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *ChunkCache) Stats() ChunkCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ChunkCacheStats{
		BudgetBytes:   c.budget,
		ResidentBytes: c.resident,
		Entries:       len(c.entries),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
	}
}

func (c *ChunkCache) lruPushFront(e *cacheEntry) {
	e.inLRU = true
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *ChunkCache) lruRemove(e *cacheEntry) {
	if !e.inLRU {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next, e.inLRU = nil, nil, false
}

// pinEntryLocked takes a pin, removing the entry from the evictable list.
func (c *ChunkCache) pinEntryLocked(e *cacheEntry) {
	if e.pins == 0 {
		c.lruRemove(e)
	}
	e.pins++
}

// unpinLocked drops a pin; the last pin returns the entry to the evictable
// list (unless the entry already failed or was dropped from the map).
func (c *ChunkCache) unpinLocked(e *cacheEntry) {
	e.pins--
	if e.pins == 0 && e.err == nil && c.entries[e.hash] == e {
		c.lruPushFront(e)
	}
}

// releaseFunc returns the pin-release closure handed to PinChunk callers.
func (c *ChunkCache) releaseFunc(e *cacheEntry) func() {
	return func() {
		c.mu.Lock()
		c.unpinLocked(e)
		c.evictLocked()
		c.mu.Unlock()
	}
}

// dropEntryLocked removes e from the map, the LRU list and the size
// accounting, and cold-resets every table slot bound to it. Idempotent:
// only acts if e is still the mapped entry for its hash.
func (c *ChunkCache) dropEntryLocked(e *cacheEntry) {
	if c.entries[e.hash] != e {
		return
	}
	delete(c.entries, e.hash)
	c.lruRemove(e)
	c.resident -= e.size
	for _, s := range e.slots {
		s.tbl.chunks[s.idx] = nil
	}
	e.slots = nil
}

// evictLocked evicts LRU-coldest unpinned entries until the budget holds,
// then refreshes the resident-bytes gauge.
func (c *ChunkCache) evictLocked() {
	for c.budget > 0 && c.resident > c.budget && c.tail != nil {
		e := c.tail
		c.dropEntryLocked(e)
		e.payload = nil
		c.evictions++
		obs.ChunkCacheEvictionsTotal.Inc()
	}
	obs.ChunkCacheResidentBytes.Set(float64(c.resident))
}
