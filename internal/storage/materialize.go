package storage

import "repro/internal/activity"

// This file is the decompression path of the storage format: turning sealed
// chunks back into activity rows. The live-ingestion subsystem uses it in two
// places — per-user materialization when a query must union a user's sealed
// tuples with fresh delta tuples, and full-table materialization when the
// compactor merges the delta into a new sealed table. On lazy tables these
// paths pin chunks through the chunk cache, so they can fail with a
// *CorruptSegmentError when a segment is damaged.

// UserLoc locates one user's tuples inside a sealed table: users never span
// chunks (the clustering property), so a (chunk, run) pair identifies the
// whole block.
type UserLoc struct {
	Chunk int // chunk index
	Run   int // RLE run index within the chunk's user column
}

// UserIndex maps global user ids to their block location. Build it once per
// sealed table with BuildUserIndex; the table is immutable, so the index
// never goes stale before a compaction swaps the table out. FindUser serves
// the same lookups without an index (and without loading chunks up front),
// which is what the ingest path uses; UserIndex remains for eager callers
// that want O(1) repeated lookups.
type UserIndex map[uint64]UserLoc

// BuildUserIndex scans every chunk's user runs into a UserIndex. It requires
// an eager table — building it on a lazy table would decode every chunk,
// defeating the point; use FindUser instead.
func (st *Table) BuildUserIndex() UserIndex {
	if st.lazy != nil {
		panic("storage: BuildUserIndex on a lazy table (use FindUser)")
	}
	idx := make(UserIndex, st.numUsers)
	for ci, ch := range st.chunks {
		for r := 0; r < ch.NumUsers(); r++ {
			gid, _, _ := ch.UserRun(r)
			idx[gid] = UserLoc{Chunk: ci, Run: r}
		}
	}
	return idx
}

// AppendUserRows decodes the user block at loc into dst, which must share the
// table's schema. Rows arrive in the sealed (At, Ae) order.
func (st *Table) AppendUserRows(dst *activity.Table, loc UserLoc) error {
	ch, release, err := st.PinChunk(loc.Chunk)
	if err != nil {
		return err
	}
	defer release()
	gid, first, n := ch.UserRun(loc.Run)
	st.appendRows(dst, ch, gid, first, first+n)
	return nil
}

// Materialize decodes the whole table back into a sorted activity table —
// the inverse of Build, used by the compactor to merge delta rows in.
func (st *Table) Materialize() (*activity.Table, error) {
	dst := activity.NewTable(st.schema)
	for ci := range st.chunks {
		ch, release, err := st.PinChunk(ci)
		if err != nil {
			return nil, err
		}
		for r := 0; r < ch.NumUsers(); r++ {
			gid, first, n := ch.UserRun(r)
			st.appendRows(dst, ch, gid, first, first+n)
		}
		release()
	}
	// Chunks preserve the (Au, At, Ae) build order, so the decoded rows are
	// already sorted; verify in one linear pass instead of re-sorting. A
	// sealed table satisfies the primary-key constraint by construction, so
	// a violation here means corrupted chunk state.
	if err := dst.AssertSortedByPK(); err != nil {
		panic("storage: materialized table violates primary key: " + err.Error())
	}
	return dst, nil
}

// MaterializeChunk decodes chunk i back into a sorted activity table — the
// chunk-granular counterpart of Materialize, used by the compactor to merge
// delta rows into only the chunks that own their users.
func (st *Table) MaterializeChunk(i int) (*activity.Table, error) {
	dst := activity.NewTable(st.schema)
	ch, release, err := st.PinChunk(i)
	if err != nil {
		return nil, err
	}
	defer release()
	for r := 0; r < ch.NumUsers(); r++ {
		gid, first, n := ch.UserRun(r)
		st.appendRows(dst, ch, gid, first, first+n)
	}
	if err := dst.AssertSortedByPK(); err != nil {
		panic("storage: materialized chunk violates primary key: " + err.Error())
	}
	return dst, nil
}

// ChunkUserRange returns the first and last user (by value) of chunk i —
// the per-chunk user range that routes delta rows to their owning chunk and
// is recorded in the manifest. Lazy tables answer from the manifest without
// touching the chunk.
func (st *Table) ChunkUserRange(i int) (first, last string) {
	if st.lazy != nil {
		m := &st.lazy.metas[i]
		return m.minUser, m.maxUser
	}
	ch := st.chunks[i]
	d := st.dicts[st.schema.UserCol()]
	fgid, _, _ := ch.UserRun(0)
	lgid, _, _ := ch.UserRun(ch.NumUsers() - 1)
	return d.Value(fgid), d.Value(lgid)
}

// appendRows decodes chunk-local rows [first, end) of one user block.
func (st *Table) appendRows(dst *activity.Table, ch *Chunk, gid uint64, first, end int) {
	schema := st.schema
	userCol := schema.UserCol()
	user := st.UserString(ch, gid)
	strs := make([]string, schema.NumCols())
	ints := make([]int64, schema.NumCols())
	for row := first; row < end; row++ {
		for c := 0; c < schema.NumCols(); c++ {
			switch {
			case c == userCol:
				strs[c] = user
			case schema.IsStringCol(c):
				strs[c] = st.dicts[c].Value(ch.StringID(c, row))
			default:
				ints[c] = ch.Int(c, row)
			}
		}
		dst.AppendRow(strs, ints)
	}
}

// HasTuple reports whether the user block at loc contains a tuple with the
// given timestamp and action global-id — the sealed side of the primary-key
// check the ingest path runs before admitting a new row.
func (st *Table) HasTuple(loc UserLoc, ts int64, actionGID uint64) (bool, error) {
	ch, release, err := st.PinChunk(loc.Chunk)
	if err != nil {
		return false, err
	}
	defer release()
	_, first, n := ch.UserRun(loc.Run)
	timeCol, actionCol := st.schema.TimeCol(), st.schema.ActionCol()
	for row := first; row < first+n; row++ {
		t := ch.Int(timeCol, row)
		if t > ts {
			return false, nil // block is time-ordered: no later match possible
		}
		if t == ts && ch.StringID(actionCol, row) == actionGID {
			return true, nil
		}
	}
	return false, nil
}
