package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// On-disk layout of a sharded table. A 1-shard table is written in the
// legacy single-file format, so files produced before sharding existed (and
// by 1-shard configurations) stay byte-compatible with every older tool. A
// table with more than one shard is written as a manifest at the table path
// plus one segment file per shard next to it:
//
//	game.cohana              manifest: shardMagic + JSON naming the segments
//	game.cohana.v3.s0.cohseg shard 0, a complete legacy-format table
//	game.cohana.v3.s1.cohseg shard 1, ...
//
// Segment names embed a version (v3) that increases on every persist, so a
// new layout never overwrites segments a concurrent reader may still be
// opening through the old manifest; the manifest rename is the commit point,
// and stale segments are swept afterwards. ReadSharded accepts both layouts,
// which is the migration path: a legacy .cohana file loads transparently as
// a 1-shard table.

// shardMagic identifies a shard manifest and versions its format. It is
// deliberately the same length as the legacy table magic so readers can
// distinguish the two layouts from one fixed-size prefix.
const shardMagic = "COHANAS1"

// SegmentExt is the file extension of per-shard segment files. The serving
// catalog lists only .cohana files, so segments never appear as tables.
const SegmentExt = ".cohseg"

// manifestJSON is the manifest body following shardMagic: the segment file
// basenames in shard order, resolved relative to the manifest's directory.
type manifestJSON struct {
	Version  int      `json:"version"`
	Segments []string `json:"segments"`
}

// IsShardManifest reports whether the serialized bytes are a shard manifest
// (as opposed to a legacy single-table file).
func IsShardManifest(src []byte) bool {
	return len(src) >= len(shardMagic) && string(src[:len(shardMagic)]) == shardMagic
}

// ReadSharded loads a sharded table from path: either a shard manifest with
// its segment files, or a legacy single-table file wrapped as one shard.
func ReadSharded(path string) (*Sharded, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !IsShardManifest(buf) {
		st, err := Deserialize(buf)
		if err != nil {
			return nil, err
		}
		return SingleShard(st), nil
	}
	var m manifestJSON
	if err := json.Unmarshal(buf[len(shardMagic):], &m); err != nil {
		return nil, fmt.Errorf("storage: bad shard manifest %s: %w", path, err)
	}
	if len(m.Segments) == 0 {
		return nil, fmt.Errorf("storage: shard manifest %s names no segments", path)
	}
	dir := filepath.Dir(path)
	tables := make([]*Table, len(m.Segments))
	errs := make([]error, len(m.Segments))
	var wg sync.WaitGroup
	for i, seg := range m.Segments {
		if seg != filepath.Base(seg) || seg == "" {
			return nil, fmt.Errorf("storage: shard manifest %s: segment name %q must be a bare file name", path, seg)
		}
		wg.Add(1)
		go func(i int, seg string) {
			defer wg.Done()
			tables[i], errs[i] = ReadFile(filepath.Join(dir, seg))
		}(i, seg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d segment: %w", i, err)
		}
	}
	// Each segment deserializes a structurally equal but distinct Schema;
	// rebind every shard to one shared instance while the tables are still
	// exclusively owned, so downstream schema comparisons — including the
	// pointer fast paths in table merges — all see one schema. This is the
	// only place shards are mutated; once published they are immutable.
	for _, tbl := range tables[1:] {
		if !tables[0].schema.Equal(tbl.schema) {
			break // NewSharded reports the mismatch
		}
		tbl.schema = tables[0].schema
	}
	return NewSharded(tables)
}

// WriteShardedFile atomically persists a sharded table at path. A 1-shard
// table is written as a legacy single file (tmp + rename); a multi-shard
// table writes fresh versioned segments, syncs them, renames the manifest
// into place as the commit point, and then sweeps segments no longer
// referenced.
func WriteShardedFile(path string, s *Sharded) error {
	if s.NumShards() == 1 {
		buf, err := s.Shard(0).Serialize()
		if err != nil {
			return err
		}
		if err := atomicWriteFile(path, buf); err != nil {
			return err
		}
		// A previous multi-shard incarnation may leave segments behind;
		// nothing references them once the legacy file is the table.
		sweepSegments(path, nil)
		return nil
	}
	version := nextSegmentVersion(path)
	segs := make([]string, s.NumShards())
	for i := 0; i < s.NumShards(); i++ {
		seg := fmt.Sprintf("%s.v%d.s%d%s", filepath.Base(path), version, i, SegmentExt)
		buf, err := s.Shard(i).Serialize()
		if err != nil {
			return fmt.Errorf("storage: serializing shard %d: %w", i, err)
		}
		if err := atomicWriteFile(filepath.Join(filepath.Dir(path), seg), buf); err != nil {
			return fmt.Errorf("storage: writing shard %d segment: %w", i, err)
		}
		segs[i] = seg
	}
	m, err := json.Marshal(manifestJSON{Version: version, Segments: segs})
	if err != nil {
		return err
	}
	if err := atomicWriteFile(path, append([]byte(shardMagic), m...)); err != nil {
		return err
	}
	keep := make(map[string]bool, len(segs))
	for _, seg := range segs {
		keep[seg] = true
	}
	sweepSegments(path, keep)
	return nil
}

// nextSegmentVersion picks a segment version strictly above every version
// present next to path, referenced or orphaned, so new segments never
// collide with files a concurrent reader could be holding open.
func nextSegmentVersion(path string) int {
	max := 0
	for _, f := range listSegments(path) {
		var v, s int
		rest := strings.TrimPrefix(filepath.Base(f), filepath.Base(path)+".")
		if _, err := fmt.Sscanf(rest, "v%d.s%d", &v, &s); err == nil && v > max {
			max = v
		}
	}
	return max + 1
}

// listSegments globs every segment file belonging to the table at path.
func listSegments(path string) []string {
	files, err := filepath.Glob(filepath.Join(filepath.Dir(path), filepath.Base(path)+".v*"+SegmentExt))
	if err != nil {
		return nil
	}
	return files
}

// sweepSegments removes segment files of the table at path that are not in
// keep (best effort — a failed remove only leaves garbage, never corruption).
func sweepSegments(path string, keep map[string]bool) {
	for _, f := range listSegments(path) {
		if !keep[filepath.Base(f)] {
			_ = os.Remove(f)
		}
	}
}

// atomicWriteFile writes buf at path via a same-directory temp file, fsync
// and rename, so concurrent readers see the old bytes or the new bytes but
// never a torn write.
func atomicWriteFile(path string, buf []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
