package storage

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/activity"
	"repro/internal/encoding"
	"repro/internal/obs"
)

// On-disk layout of a sharded table: a manifest at the table path plus one
// *chunk segment* file per chunk next to it. The manifest (shardMagicV2 +
// JSON) records the schema, the chunk size, and per shard the ordered chunk
// list — each entry naming its segment file and carrying the chunk's row /
// user counts and user range:
//
//	game.cohana                          manifest (COHANAS2 + JSON)
//	game.cohana.g1f0c593e48a7b21dc2fe09adaaebe21e.cohseg one chunk, self-contained
//	game.cohana.g88ab01c2deadbeefed8d17690fa4b136.cohseg another chunk, ...
//
// Segment files are named by the content hash of their bytes. Content
// addressing is what makes WriteShardedFile a *manifest commit*: a chunk the
// compactor carried over unchanged hashes to a name that already exists on
// disk, so only new or changed chunks produce writes — write amplification is
// proportional to the touched chunks, not the table. A hash-named file is
// never rewritten with different content, so a concurrent reader holding an
// old manifest can never see a segment change under it; the manifest rename
// is the commit point, and segments no new manifest references are swept
// afterwards (best effort — a leaked segment is garbage, never corruption).
//
// Manifest v3 extends v2 with everything a *lazy* open needs to plan and
// prune without reading a single segment: per-shard complete dictionaries for
// the non-user string columns plus global int ranges, and per-chunk segment
// byte sizes and column stats (sorted present-value lists for small string
// columns, exact [min, max] for int columns). The shard dictionaries are
// provably complete — a shard's dictionary is always exactly the value set of
// its rows, both at build time and through grown-dictionary merges — so
// LookupString on a lazy table is exact, not approximate.
//
// Older layouts load transparently and upgrade to v3 on their next persist: a
// COHANAS2 chunk-granular manifest, a COHANAS1 manifest (one whole-shard
// legacy segment per shard) and a bare legacy single-table .cohana file,
// which loads as one shard. Lazy opening needs v3 stats; older layouts fall
// back to an eager open.

// shardMagic identifies a v1 shard manifest — read-only since manifest v2. It
// is deliberately the same length as the legacy table magic so readers can
// distinguish the layouts from one fixed-size prefix.
const shardMagic = "COHANAS1"

// shardMagicV2 identifies a v2 (chunk-granular) shard manifest — read-only
// since manifest v3.
const shardMagicV2 = "COHANAS2"

// shardMagicV3 identifies a v3 (chunk-granular, lazy-openable) shard manifest.
const shardMagicV3 = "COHANAS3"

// SegmentExt is the file extension of segment files. The serving catalog
// lists only .cohana files, so segments never appear as tables.
const SegmentExt = ".cohseg"

// manifestJSON is the v1 manifest body following shardMagic: the per-shard
// segment file basenames, resolved relative to the manifest's directory.
type manifestJSON struct {
	Version  int      `json:"version"`
	Segments []string `json:"segments"`
}

// manifestChunkJSON is one chunk entry of a v2 manifest: its segment file
// plus the per-chunk stats the planner and operators read without opening the
// segment.
type manifestChunkJSON struct {
	File    string `json:"file"`
	Rows    int    `json:"rows"`
	Users   int    `json:"users"`
	MinUser string `json:"minUser"`
	MaxUser string `json:"maxUser"`
}

// manifestShardJSON is one shard's ordered chunk list.
type manifestShardJSON struct {
	Chunks []manifestChunkJSON `json:"chunks"`
}

// manifestV2JSON is the v2 manifest body following shardMagicV2.
type manifestV2JSON struct {
	// Version counts commits at this path, for operators diffing layouts; it
	// is not part of segment naming.
	Version   int                 `json:"version"`
	Schema    schemaJSON          `json:"schema"`
	ChunkSize int                 `json:"chunkSize"`
	Shards    []manifestShardJSON `json:"shards"`
}

// manifestColStatsJSON carries one column's per-chunk stats in a v3 manifest.
// String columns list the sorted global-ids present in the chunk (indexes
// into the shard's manifest dictionary), omitted when the chunk's cardinality
// exceeded chunkStatsCap; integer columns carry their exact range.
type manifestColStatsJSON struct {
	Values []uint64 `json:"values,omitempty"`
	Min    *int64   `json:"min,omitempty"`
	Max    *int64   `json:"max,omitempty"`
}

// manifestChunkV3JSON is one chunk entry of a v3 manifest.
type manifestChunkV3JSON struct {
	File    string                 `json:"file"`
	Rows    int                    `json:"rows"`
	Users   int                    `json:"users"`
	MinUser string                 `json:"minUser"`
	MaxUser string                 `json:"maxUser"`
	Bytes   int64                  `json:"bytes"`
	Cols    []manifestColStatsJSON `json:"cols"`
}

// manifestShardV3JSON is one shard's ordered chunk list plus the shard-level
// metadata a lazy open binds without touching segments: complete dictionaries
// for non-user string columns (nil entries for the user and int columns) and
// global int ranges.
type manifestShardV3JSON struct {
	Chunks []manifestChunkV3JSON `json:"chunks"`
	Dicts  [][]string            `json:"dicts"`
	IntMin []int64               `json:"intMin"`
	IntMax []int64               `json:"intMax"`
}

// manifestV3JSON is the v3 manifest body following shardMagicV3.
type manifestV3JSON struct {
	Version   int                   `json:"version"`
	Schema    schemaJSON            `json:"schema"`
	ChunkSize int                   `json:"chunkSize"`
	Shards    []manifestShardV3JSON `json:"shards"`
}

// IsShardManifest reports whether the serialized bytes are a shard manifest
// (any version), as opposed to a legacy single-table file.
func IsShardManifest(src []byte) bool {
	if len(src) < len(shardMagic) {
		return false
	}
	head := string(src[:len(shardMagic)])
	return head == shardMagic || head == shardMagicV2 || head == shardMagicV3
}

// CommitStats reports what one manifest commit actually wrote.
type CommitStats struct {
	// SegmentsWritten / SegmentsReused count chunk segment files newly
	// written vs already on disk from a previous commit.
	SegmentsWritten int `json:"segmentsWritten"`
	SegmentsReused  int `json:"segmentsReused"`
	// BytesWritten is the total bytes persisted by the commit, segments plus
	// manifest.
	BytesWritten int64 `json:"bytesWritten"`
}

// Add accumulates o into s.
func (s *CommitStats) Add(o CommitStats) {
	s.SegmentsWritten += o.SegmentsWritten
	s.SegmentsReused += o.SegmentsReused
	s.BytesWritten += o.BytesWritten
}

// ReadOptions configures how a sharded table is opened.
type ReadOptions struct {
	// Lazy opens the table O(manifest): chunk payloads stay cold until a
	// scan pins them. Requires a v3 manifest; older layouts silently fall
	// back to an eager open (their next commit upgrades them).
	Lazy bool
	// Cache is the chunk cache backing lazy loads; nil uses the shared
	// process-wide DefaultChunkCache.
	Cache *ChunkCache
}

// ReadSharded loads a sharded table from path eagerly: a v3 or v2
// chunk-granular manifest, a v1 per-shard manifest, or a legacy single-table
// file wrapped as one shard.
func ReadSharded(path string) (*Sharded, error) {
	return ReadShardedWith(path, ReadOptions{})
}

// ReadShardedWith loads a sharded table from path with explicit open options.
func ReadShardedWith(path string, opts ReadOptions) (*Sharded, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	head := ""
	if len(buf) >= len(shardMagic) {
		head = string(buf[:len(shardMagic)])
	}
	switch head {
	case shardMagicV3:
		return readShardedV3(path, buf[len(shardMagicV3):], opts)
	case shardMagicV2:
		return readShardedV2(path, buf[len(shardMagicV2):])
	case shardMagic:
		return readShardedV1(path, buf[len(shardMagic):])
	default:
		st, err := Deserialize(buf)
		if err != nil {
			return nil, err
		}
		return SingleShard(st), nil
	}
}

// readShardedV2 loads a v2 manifest: every shard's chunk segments are read
// and decoded concurrently, then each shard assembles its global
// dictionaries from the per-chunk values.
func readShardedV2(path string, body []byte) (*Sharded, error) {
	var m manifestV2JSON
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("storage: bad shard manifest %s: %w", path, err)
	}
	schema, err := schemaFromJSON(m.Schema)
	if err != nil {
		return nil, fmt.Errorf("storage: shard manifest %s: %w", path, err)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("storage: shard manifest %s names no shards", path)
	}
	if m.ChunkSize <= 0 {
		return nil, fmt.Errorf("storage: shard manifest %s: bad chunk size %d", path, m.ChunkSize)
	}
	dir := filepath.Dir(path)
	tables := make([]*Table, len(m.Shards))
	errs := make([]error, len(m.Shards))
	var wg sync.WaitGroup
	for si, sh := range m.Shards {
		for _, c := range sh.Chunks {
			if c.File != filepath.Base(c.File) || c.File == "" {
				return nil, fmt.Errorf("storage: shard manifest %s: segment name %q must be a bare file name", path, c.File)
			}
		}
		files := make([]string, len(sh.Chunks))
		for ci, c := range sh.Chunks {
			files[ci] = c.File
		}
		wg.Add(1)
		//lint:allow goroutinepool load fan-out bounded by the shard count and joined below; storage sits under the cohort pool layer (import cycle)
		go func(si int, files []string) {
			defer wg.Done()
			tables[si], errs[si] = readShardEager(dir, path, schema, m.ChunkSize, files)
		}(si, files)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d: %w", si, err)
		}
	}
	return NewSharded(tables)
}

// readShardEager reads and decodes one shard's chunk segment files and
// assembles them into an eager table — shared by the v2 and v3 eager paths.
func readShardEager(dir, path string, schema *activity.Schema, chunkSize int, files []string) (*Table, error) {
	segs := make([]*segChunk, len(files))
	hashes := make([]string, len(files))
	for ci, f := range files {
		buf, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			return nil, err
		}
		obs.SegmentReadsTotal.Inc()
		if segs[ci], err = decodeChunkSegment(buf, schema); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		hashes[ci] = hashFromSegmentName(path, f)
	}
	return assembleShard(schema, chunkSize, segs, hashes)
}

// readShardedV3 loads a v3 manifest, eagerly or lazily. The eager path
// ignores the persisted shard dictionaries and stats — assembleShard rebuilds
// identical ones from the segment contents.
func readShardedV3(path string, body []byte, opts ReadOptions) (*Sharded, error) {
	// The fast path parses everything CommitSharded writes; encoding/json
	// stays authoritative for anything it does not recognize.
	m, ok := fastManifestV3(body)
	if !ok {
		m = new(manifestV3JSON)
		if err := json.Unmarshal(body, m); err != nil {
			return nil, fmt.Errorf("storage: bad shard manifest %s: %w", path, err)
		}
	}
	schema, err := schemaFromJSON(m.Schema)
	if err != nil {
		return nil, fmt.Errorf("storage: shard manifest %s: %w", path, err)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("storage: shard manifest %s names no shards", path)
	}
	if m.ChunkSize <= 0 {
		return nil, fmt.Errorf("storage: shard manifest %s: bad chunk size %d", path, m.ChunkSize)
	}
	dir := filepath.Dir(path)
	for _, sh := range m.Shards {
		for _, c := range sh.Chunks {
			if c.File != filepath.Base(c.File) || c.File == "" {
				return nil, fmt.Errorf("storage: shard manifest %s: segment name %q must be a bare file name", path, c.File)
			}
		}
	}
	if opts.Lazy {
		cache := opts.Cache
		if cache == nil {
			cache = DefaultChunkCache()
		}
		tables := make([]*Table, len(m.Shards))
		for si, sh := range m.Shards {
			tbl, err := buildLazyShard(dir, path, schema, m.ChunkSize, sh, cache)
			if err != nil {
				return nil, fmt.Errorf("storage: shard manifest %s: shard %d: %w", path, si, err)
			}
			tables[si] = tbl
		}
		return NewSharded(tables)
	}
	tables := make([]*Table, len(m.Shards))
	errs := make([]error, len(m.Shards))
	var wg sync.WaitGroup
	for si, sh := range m.Shards {
		files := make([]string, len(sh.Chunks))
		for ci, c := range sh.Chunks {
			files[ci] = c.File
		}
		wg.Add(1)
		//lint:allow goroutinepool load fan-out bounded by the shard count and joined below; storage sits under the cohort pool layer (import cycle)
		go func(si int, files []string) {
			defer wg.Done()
			tables[si], errs[si] = readShardEager(dir, path, schema, m.ChunkSize, files)
		}(si, files)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d: %w", si, err)
		}
	}
	return NewSharded(tables)
}

// buildLazyShard binds one shard from v3 manifest metadata alone: manifest
// dictionaries become the global dictionaries, chunk entries become cold
// chunkMeta handles, and no segment file is opened.
func buildLazyShard(dir, path string, schema *activity.Schema, chunkSize int, sh manifestShardV3JSON, cache *ChunkCache) (*Table, error) {
	userCol := schema.UserCol()
	if len(sh.Dicts) != schema.NumCols() || len(sh.IntMin) != schema.NumCols() || len(sh.IntMax) != schema.NumCols() {
		return nil, fmt.Errorf("shard stats do not match the schema's %d columns", schema.NumCols())
	}
	n := len(sh.Chunks)
	st := &Table{
		schema:    schema,
		chunkSize: chunkSize,
		dicts:     make([]*encoding.Dict, schema.NumCols()),
		globalMin: make([]int64, schema.NumCols()),
		globalMax: make([]int64, schema.NumCols()),
		chunks:    make([]*Chunk, n),
	}
	for c := 0; c < schema.NumCols(); c++ {
		st.globalMin[c], st.globalMax[c] = sh.IntMin[c], sh.IntMax[c]
		if c != userCol && schema.IsStringCol(c) {
			st.dicts[c] = encoding.BuildDict(sh.Dicts[c])
		}
	}
	metas := make([]chunkMeta, n)
	var userBase uint64
	for ci, c := range sh.Chunks {
		hash := hashFromSegmentName(path, c.File)
		if hash == "" {
			return nil, fmt.Errorf("chunk %d: lazy open requires a content-addressed segment name, got %q", ci, c.File)
		}
		if c.Rows <= 0 || c.Users <= 0 || c.MinUser > c.MaxUser {
			return nil, fmt.Errorf("chunk %d: invalid stats (rows=%d users=%d)", ci, c.Rows, c.Users)
		}
		if ci > 0 && c.MinUser <= sh.Chunks[ci-1].MaxUser {
			return nil, fmt.Errorf("chunk %d: user range overlaps its predecessor", ci)
		}
		if len(c.Cols) != schema.NumCols() {
			return nil, fmt.Errorf("chunk %d: column stats do not match the schema", ci)
		}
		meta := chunkMeta{
			file: c.File, hash: hash, bytes: c.Bytes,
			rows: c.Rows, users: c.Users, userBase: userBase,
			minUser: c.MinUser, maxUser: c.MaxUser,
			strVals: make([][]uint64, schema.NumCols()),
			intMin:  make([]int64, schema.NumCols()),
			intMax:  make([]int64, schema.NumCols()),
		}
		for col, cs := range c.Cols {
			if col == userCol {
				continue
			}
			if schema.IsStringCol(col) {
				for k, gid := range cs.Values {
					if gid >= uint64(st.dicts[col].Len()) || (k > 0 && cs.Values[k-1] >= gid) {
						return nil, fmt.Errorf("chunk %d column %d: stats ids out of order or range", ci, col)
					}
				}
				meta.strVals[col] = cs.Values
			} else {
				if cs.Min == nil || cs.Max == nil {
					return nil, fmt.Errorf("chunk %d column %d: missing int range stats", ci, col)
				}
				meta.intMin[col], meta.intMax[col] = *cs.Min, *cs.Max
			}
		}
		metas[ci] = meta
		userBase += uint64(c.Users)
		st.numRows += c.Rows
		st.numUsers += c.Users
	}
	st.lazy = &lazyState{dir: dir, cache: cache, metas: metas, logged: make([]bool, n)}
	return st, nil
}

// readShardedV1 loads a legacy v1 manifest: one whole-shard legacy-format
// segment per shard.
func readShardedV1(path string, body []byte) (*Sharded, error) {
	var m manifestJSON
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("storage: bad shard manifest %s: %w", path, err)
	}
	if len(m.Segments) == 0 {
		return nil, fmt.Errorf("storage: shard manifest %s names no segments", path)
	}
	dir := filepath.Dir(path)
	tables := make([]*Table, len(m.Segments))
	errs := make([]error, len(m.Segments))
	var wg sync.WaitGroup
	for i, seg := range m.Segments {
		if seg != filepath.Base(seg) || seg == "" {
			return nil, fmt.Errorf("storage: shard manifest %s: segment name %q must be a bare file name", path, seg)
		}
		wg.Add(1)
		//lint:allow goroutinepool load fan-out bounded by the shard count and joined below; storage sits under the cohort pool layer (import cycle)
		go func(i int, seg string) {
			defer wg.Done()
			tables[i], errs[i] = ReadFile(filepath.Join(dir, seg))
		}(i, seg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d segment: %w", i, err)
		}
	}
	// Each segment deserializes a structurally equal but distinct Schema;
	// rebind every shard to one shared instance while the tables are still
	// exclusively owned, so downstream schema comparisons — including the
	// pointer fast paths in table merges — all see one schema. This is the
	// only place shards are mutated; once published they are immutable.
	for _, tbl := range tables[1:] {
		if !tables[0].schema.Equal(tbl.schema) {
			break // NewSharded reports the mismatch
		}
		tbl.schema = tables[0].schema
	}
	return NewSharded(tables)
}

// WriteShardedFile atomically persists a sharded table at path as a v2
// manifest commit; see CommitSharded.
func WriteShardedFile(path string, s *Sharded) error {
	_, err := CommitSharded(path, s)
	return err
}

// CommitSharded atomically persists a sharded table at path: chunk segments
// whose content-hash names are not yet on disk are written and fsynced, the
// manifest renames into place as the commit point, and segments the new
// manifest no longer references are swept. Content addressing makes the
// commit incremental by construction — a layout that shares chunks with the
// previously committed one (the normal case after a chunk-granular
// compaction) writes only the new chunks and the manifest. The returned
// stats report exactly what was written.
func CommitSharded(path string, s *Sharded) (CommitStats, error) {
	var stats CommitStats
	dir := filepath.Dir(path)
	m := manifestV3JSON{
		Version:   previousManifestVersion(path) + 1,
		Schema:    schemaToJSON(s.Schema()),
		ChunkSize: s.ChunkSize(),
		Shards:    make([]manifestShardV3JSON, s.NumShards()),
	}
	keep := make(map[string]bool)
	bytesByName := make(map[string]int64)
	for si := 0; si < s.NumShards(); si++ {
		sh, err := s.Shard(si).manifestShard(path, dir, keep, bytesByName, &stats)
		if err != nil {
			return stats, fmt.Errorf("storage: shard %d: %w", si, err)
		}
		m.Shards[si] = sh
	}
	// Make the new segments' directory entries durable before the manifest
	// can reference them, and the manifest rename durable before the caller
	// (the compactor) may truncate journals on the back of this commit — a
	// power loss must never leave a manifest pointing at segments whose
	// directory entries vanished, or roll back a rename the journal already
	// trusted.
	if stats.SegmentsWritten > 0 {
		if err := syncDir(dir); err != nil {
			return stats, err
		}
	}
	body, err := json.Marshal(m)
	if err != nil {
		return stats, err
	}
	if err := atomicWriteFile(path, append([]byte(shardMagicV3), body...)); err != nil {
		return stats, err
	}
	if err := syncDir(dir); err != nil {
		return stats, err
	}
	stats.BytesWritten += int64(len(shardMagicV3) + len(body))
	obs.PersistedBytesTotal.Add(stats.BytesWritten)
	obs.SegmentsWrittenTotal.Add(int64(stats.SegmentsWritten))
	obs.SegmentsReusedTotal.Add(int64(stats.SegmentsReused))
	sweepSegments(path, keep)
	return stats, nil
}

// manifestShard builds one shard's v3 manifest entry and writes any segment
// files not yet on disk. Lazy shards answer entirely from their chunkMeta
// handles — cold chunks are never loaded; a cold chunk whose segment file is
// missing at commit time is corruption (live lazy tables only swap in rebuilt
// chunks after their segments persist).
func (st *Table) manifestShard(path, dir string, keep map[string]bool, bytesByName map[string]int64, stats *CommitStats) (manifestShardV3JSON, error) {
	schema := st.schema
	userCol := schema.UserCol()
	sh := manifestShardV3JSON{
		Chunks: make([]manifestChunkV3JSON, st.NumChunks()),
		Dicts:  make([][]string, schema.NumCols()),
		IntMin: make([]int64, schema.NumCols()),
		IntMax: make([]int64, schema.NumCols()),
	}
	for c := 0; c < schema.NumCols(); c++ {
		sh.IntMin[c], sh.IntMax[c] = st.globalMin[c], st.globalMax[c]
		if c != userCol && schema.IsStringCol(c) {
			sh.Dicts[c] = st.dicts[c].Values()
		}
	}
	for ci := 0; ci < st.NumChunks(); ci++ {
		entry, err := st.manifestChunk(path, dir, ci, keep, bytesByName, stats)
		if err != nil {
			return sh, fmt.Errorf("chunk %d: %w", ci, err)
		}
		sh.Chunks[ci] = entry
	}
	return sh, nil
}

// manifestChunk builds one chunk's manifest entry, writing its segment file
// if no identically-named one exists yet.
func (st *Table) manifestChunk(path, dir string, ci int, keep map[string]bool, bytesByName map[string]int64, stats *CommitStats) (manifestChunkV3JSON, error) {
	var entry manifestChunkV3JSON
	if st.lazy != nil {
		meta := &st.lazy.metas[ci]
		name := segmentName(path, meta.hash)
		entry = manifestChunkV3JSON{
			File: name, Rows: meta.rows, Users: meta.users,
			MinUser: meta.minUser, MaxUser: meta.maxUser,
			Cols: colStatsV3(st.schema, meta.strVals, meta.intMin, meta.intMax),
		}
		if !keep[name] {
			keep[name] = true
			if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
				stats.SegmentsReused++
				bytesByName[name] = fi.Size()
			} else {
				// The segment is not on disk; only a resident payload can
				// produce it. Perm chunks (rebuilt by a merge, not yet
				// committed) are always resident; a cold chunk missing its
				// file is corruption.
				ch := st.chunks[ci]
				if !meta.perm {
					st.lazy.cache.mu.Lock()
					ch = st.chunks[ci]
					st.lazy.cache.mu.Unlock()
				}
				if ch == nil {
					return entry, &CorruptSegmentError{
						Path: filepath.Join(dir, name),
						Err:  fmt.Errorf("segment missing at commit and chunk payload not resident"),
					}
				}
				buf := appendChunkSegment(nil, st.schema, st.dicts, ch)
				if err := atomicWriteFile(filepath.Join(dir, name), buf); err != nil {
					return entry, fmt.Errorf("writing segment: %w", err)
				}
				stats.SegmentsWritten++
				stats.BytesWritten += int64(len(buf))
				bytesByName[name] = int64(len(buf))
			}
		}
		entry.Bytes = bytesByName[name]
		return entry, nil
	}
	name := segmentName(path, st.segmentHash(ci))
	minUser, maxUser := st.ChunkUserRange(ci)
	strVals, intMin, intMax := st.chunkManifestStats(ci)
	entry = manifestChunkV3JSON{
		File: name, Rows: st.chunks[ci].NumRows(), Users: st.chunks[ci].NumUsers(),
		MinUser: minUser, MaxUser: maxUser,
		Cols: colStatsV3(st.schema, strVals, intMin, intMax),
	}
	if !keep[name] {
		keep[name] = true
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
			stats.SegmentsReused++
			bytesByName[name] = fi.Size()
		} else {
			buf := st.segmentBytes(ci)
			if err := atomicWriteFile(filepath.Join(dir, name), buf); err != nil {
				return entry, fmt.Errorf("writing segment: %w", err)
			}
			stats.SegmentsWritten++
			stats.BytesWritten += int64(len(buf))
			bytesByName[name] = int64(len(buf))
		}
	}
	entry.Bytes = bytesByName[name]
	return entry, nil
}

// colStatsV3 shapes per-chunk column stats for the manifest; the user column
// entry stays empty (its range lives in MinUser/MaxUser).
func colStatsV3(schema *activity.Schema, strVals [][]uint64, intMin, intMax []int64) []manifestColStatsJSON {
	cols := make([]manifestColStatsJSON, schema.NumCols())
	for c := range cols {
		if c == schema.UserCol() {
			continue
		}
		if schema.IsStringCol(c) {
			cols[c].Values = strVals[c]
		} else {
			mn, mx := intMin[c], intMax[c]
			cols[c].Min, cols[c].Max = &mn, &mx
		}
	}
	return cols
}

// syncDir fsyncs a directory so renames and new entries inside it survive a
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// segmentName builds the content-addressed segment file basename from a
// chunk's hex content hash.
func segmentName(path, hash string) string {
	return fmt.Sprintf("%s.g%s%s", filepath.Base(path), hash, SegmentExt)
}

// hashFromSegmentName recovers the content hash from a segment basename, or
// "" when the name has another shape (hand-renamed files stay loadable;
// their chunks just re-hash on the next commit).
func hashFromSegmentName(path, name string) string {
	rest := strings.TrimPrefix(name, filepath.Base(path)+".g")
	rest = strings.TrimSuffix(rest, SegmentExt)
	if len(rest) != 32 {
		return ""
	}
	if _, err := hex.DecodeString(rest); err != nil {
		return ""
	}
	return rest
}

// previousManifestVersion reads the commit counter of the manifest currently
// at path; 0 when there is none (or it is a legacy layout).
func previousManifestVersion(path string) int {
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) < len(shardMagicV2) {
		return 0
	}
	switch string(buf[:len(shardMagicV2)]) {
	case shardMagicV3:
		if m, ok := fastManifestV3(buf[len(shardMagicV3):]); ok {
			return m.Version
		}
		var m manifestV3JSON
		if json.Unmarshal(buf[len(shardMagicV3):], &m) == nil {
			return m.Version
		}
	case shardMagicV2:
		var m manifestV2JSON
		if json.Unmarshal(buf[len(shardMagicV2):], &m) == nil {
			return m.Version
		}
	case shardMagic:
		var m manifestJSON
		if json.Unmarshal(buf[len(shardMagic):], &m) == nil {
			return m.Version
		}
	}
	return 0
}

// listSegments globs every segment file belonging to the table at path, of
// either manifest generation (v1 segments embed a version, v2 segments a
// content hash; both share the table basename prefix and extension).
func listSegments(path string) []string {
	files, err := filepath.Glob(filepath.Join(filepath.Dir(path), filepath.Base(path)+".*"+SegmentExt))
	if err != nil {
		return nil
	}
	return files
}

// sweepSegments removes segment files of the table at path that are not in
// keep (best effort — a failed remove only leaves garbage, never corruption).
func sweepSegments(path string, keep map[string]bool) {
	for _, f := range listSegments(path) {
		if !keep[filepath.Base(f)] {
			_ = os.Remove(f)
		}
	}
}

// atomicWriteFile writes buf at path via a same-directory temp file, fsync
// and rename, so concurrent readers see the old bytes or the new bytes but
// never a torn write.
func atomicWriteFile(path string, buf []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	//lint:allow commitproto CommitSharded syncs the directory once after its last rename, batching the dir fsync across segment files
	return os.Rename(tmp.Name(), path)
}
