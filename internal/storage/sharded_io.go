package storage

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/obs"
)

// On-disk layout of a sharded table: a manifest at the table path plus one
// *chunk segment* file per chunk next to it. The manifest (shardMagicV2 +
// JSON) records the schema, the chunk size, and per shard the ordered chunk
// list — each entry naming its segment file and carrying the chunk's row /
// user counts and user range:
//
//	game.cohana                          manifest (COHANAS2 + JSON)
//	game.cohana.g1f0c593e48a7b21dc2fe09adaaebe21e.cohseg one chunk, self-contained
//	game.cohana.g88ab01c2deadbeefed8d17690fa4b136.cohseg another chunk, ...
//
// Segment files are named by the content hash of their bytes. Content
// addressing is what makes WriteShardedFile a *manifest commit*: a chunk the
// compactor carried over unchanged hashes to a name that already exists on
// disk, so only new or changed chunks produce writes — write amplification is
// proportional to the touched chunks, not the table. A hash-named file is
// never rewritten with different content, so a concurrent reader holding an
// old manifest can never see a segment change under it; the manifest rename
// is the commit point, and segments no new manifest references are swept
// afterwards (best effort — a leaked segment is garbage, never corruption).
//
// Two older layouts load transparently and upgrade to this one on their next
// persist: a COHANAS1 manifest (one whole-shard legacy segment per shard) and
// a bare legacy single-table .cohana file, which loads as one shard.

// shardMagic identifies a v1 shard manifest — read-only since manifest v2. It
// is deliberately the same length as the legacy table magic so readers can
// distinguish the layouts from one fixed-size prefix.
const shardMagic = "COHANAS1"

// shardMagicV2 identifies a v2 (chunk-granular) shard manifest.
const shardMagicV2 = "COHANAS2"

// SegmentExt is the file extension of segment files. The serving catalog
// lists only .cohana files, so segments never appear as tables.
const SegmentExt = ".cohseg"

// manifestJSON is the v1 manifest body following shardMagic: the per-shard
// segment file basenames, resolved relative to the manifest's directory.
type manifestJSON struct {
	Version  int      `json:"version"`
	Segments []string `json:"segments"`
}

// manifestChunkJSON is one chunk entry of a v2 manifest: its segment file
// plus the per-chunk stats the planner and operators read without opening the
// segment.
type manifestChunkJSON struct {
	File    string `json:"file"`
	Rows    int    `json:"rows"`
	Users   int    `json:"users"`
	MinUser string `json:"minUser"`
	MaxUser string `json:"maxUser"`
}

// manifestShardJSON is one shard's ordered chunk list.
type manifestShardJSON struct {
	Chunks []manifestChunkJSON `json:"chunks"`
}

// manifestV2JSON is the v2 manifest body following shardMagicV2.
type manifestV2JSON struct {
	// Version counts commits at this path, for operators diffing layouts; it
	// is not part of segment naming.
	Version   int                 `json:"version"`
	Schema    schemaJSON          `json:"schema"`
	ChunkSize int                 `json:"chunkSize"`
	Shards    []manifestShardJSON `json:"shards"`
}

// IsShardManifest reports whether the serialized bytes are a shard manifest
// (any version), as opposed to a legacy single-table file.
func IsShardManifest(src []byte) bool {
	if len(src) < len(shardMagic) {
		return false
	}
	head := string(src[:len(shardMagic)])
	return head == shardMagic || head == shardMagicV2
}

// CommitStats reports what one manifest commit actually wrote.
type CommitStats struct {
	// SegmentsWritten / SegmentsReused count chunk segment files newly
	// written vs already on disk from a previous commit.
	SegmentsWritten int `json:"segmentsWritten"`
	SegmentsReused  int `json:"segmentsReused"`
	// BytesWritten is the total bytes persisted by the commit, segments plus
	// manifest.
	BytesWritten int64 `json:"bytesWritten"`
}

// Add accumulates o into s.
func (s *CommitStats) Add(o CommitStats) {
	s.SegmentsWritten += o.SegmentsWritten
	s.SegmentsReused += o.SegmentsReused
	s.BytesWritten += o.BytesWritten
}

// ReadSharded loads a sharded table from path: a v2 chunk-granular manifest,
// a v1 per-shard manifest, or a legacy single-table file wrapped as one
// shard.
func ReadSharded(path string) (*Sharded, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	head := ""
	if len(buf) >= len(shardMagic) {
		head = string(buf[:len(shardMagic)])
	}
	switch head {
	case shardMagicV2:
		return readShardedV2(path, buf[len(shardMagicV2):])
	case shardMagic:
		return readShardedV1(path, buf[len(shardMagic):])
	default:
		st, err := Deserialize(buf)
		if err != nil {
			return nil, err
		}
		return SingleShard(st), nil
	}
}

// readShardedV2 loads a v2 manifest: every shard's chunk segments are read
// and decoded concurrently, then each shard assembles its global
// dictionaries from the per-chunk values.
func readShardedV2(path string, body []byte) (*Sharded, error) {
	var m manifestV2JSON
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("storage: bad shard manifest %s: %w", path, err)
	}
	schema, err := schemaFromJSON(m.Schema)
	if err != nil {
		return nil, fmt.Errorf("storage: shard manifest %s: %w", path, err)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("storage: shard manifest %s names no shards", path)
	}
	if m.ChunkSize <= 0 {
		return nil, fmt.Errorf("storage: shard manifest %s: bad chunk size %d", path, m.ChunkSize)
	}
	dir := filepath.Dir(path)
	tables := make([]*Table, len(m.Shards))
	errs := make([]error, len(m.Shards))
	var wg sync.WaitGroup
	for si, sh := range m.Shards {
		for _, c := range sh.Chunks {
			if c.File != filepath.Base(c.File) || c.File == "" {
				return nil, fmt.Errorf("storage: shard manifest %s: segment name %q must be a bare file name", path, c.File)
			}
		}
		wg.Add(1)
		go func(si int, chunks []manifestChunkJSON) {
			defer wg.Done()
			segs := make([]*segChunk, len(chunks))
			hashes := make([]string, len(chunks))
			for ci, c := range chunks {
				buf, err := os.ReadFile(filepath.Join(dir, c.File))
				if err != nil {
					errs[si] = err
					return
				}
				if segs[ci], err = decodeChunkSegment(buf, schema); err != nil {
					errs[si] = fmt.Errorf("%s: %w", c.File, err)
					return
				}
				hashes[ci] = hashFromSegmentName(path, c.File)
			}
			tables[si], errs[si] = assembleShard(schema, m.ChunkSize, segs, hashes)
		}(si, sh.Chunks)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d: %w", si, err)
		}
	}
	return NewSharded(tables)
}

// readShardedV1 loads a legacy v1 manifest: one whole-shard legacy-format
// segment per shard.
func readShardedV1(path string, body []byte) (*Sharded, error) {
	var m manifestJSON
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("storage: bad shard manifest %s: %w", path, err)
	}
	if len(m.Segments) == 0 {
		return nil, fmt.Errorf("storage: shard manifest %s names no segments", path)
	}
	dir := filepath.Dir(path)
	tables := make([]*Table, len(m.Segments))
	errs := make([]error, len(m.Segments))
	var wg sync.WaitGroup
	for i, seg := range m.Segments {
		if seg != filepath.Base(seg) || seg == "" {
			return nil, fmt.Errorf("storage: shard manifest %s: segment name %q must be a bare file name", path, seg)
		}
		wg.Add(1)
		go func(i int, seg string) {
			defer wg.Done()
			tables[i], errs[i] = ReadFile(filepath.Join(dir, seg))
		}(i, seg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("storage: shard %d segment: %w", i, err)
		}
	}
	// Each segment deserializes a structurally equal but distinct Schema;
	// rebind every shard to one shared instance while the tables are still
	// exclusively owned, so downstream schema comparisons — including the
	// pointer fast paths in table merges — all see one schema. This is the
	// only place shards are mutated; once published they are immutable.
	for _, tbl := range tables[1:] {
		if !tables[0].schema.Equal(tbl.schema) {
			break // NewSharded reports the mismatch
		}
		tbl.schema = tables[0].schema
	}
	return NewSharded(tables)
}

// WriteShardedFile atomically persists a sharded table at path as a v2
// manifest commit; see CommitSharded.
func WriteShardedFile(path string, s *Sharded) error {
	_, err := CommitSharded(path, s)
	return err
}

// CommitSharded atomically persists a sharded table at path: chunk segments
// whose content-hash names are not yet on disk are written and fsynced, the
// manifest renames into place as the commit point, and segments the new
// manifest no longer references are swept. Content addressing makes the
// commit incremental by construction — a layout that shares chunks with the
// previously committed one (the normal case after a chunk-granular
// compaction) writes only the new chunks and the manifest. The returned
// stats report exactly what was written.
func CommitSharded(path string, s *Sharded) (CommitStats, error) {
	var stats CommitStats
	dir := filepath.Dir(path)
	m := manifestV2JSON{
		Version:   previousManifestVersion(path) + 1,
		Schema:    schemaToJSON(s.Schema()),
		ChunkSize: s.ChunkSize(),
		Shards:    make([]manifestShardJSON, s.NumShards()),
	}
	keep := make(map[string]bool)
	for si := 0; si < s.NumShards(); si++ {
		st := s.Shard(si)
		chunks := make([]manifestChunkJSON, st.NumChunks())
		for ci := 0; ci < st.NumChunks(); ci++ {
			name := segmentName(path, st.segmentHash(ci))
			minUser, maxUser := st.ChunkUserRange(ci)
			chunks[ci] = manifestChunkJSON{
				File:    name,
				Rows:    st.Chunk(ci).NumRows(),
				Users:   st.Chunk(ci).NumUsers(),
				MinUser: minUser,
				MaxUser: maxUser,
			}
			if keep[name] {
				continue // an identical chunk already handled this commit
			}
			keep[name] = true
			if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
				stats.SegmentsReused++
				continue
			}
			buf := st.segmentBytes(ci)
			if err := atomicWriteFile(filepath.Join(dir, name), buf); err != nil {
				return stats, fmt.Errorf("storage: writing shard %d chunk %d segment: %w", si, ci, err)
			}
			stats.SegmentsWritten++
			stats.BytesWritten += int64(len(buf))
		}
		m.Shards[si] = manifestShardJSON{Chunks: chunks}
	}
	// Make the new segments' directory entries durable before the manifest
	// can reference them, and the manifest rename durable before the caller
	// (the compactor) may truncate journals on the back of this commit — a
	// power loss must never leave a manifest pointing at segments whose
	// directory entries vanished, or roll back a rename the journal already
	// trusted.
	if stats.SegmentsWritten > 0 {
		if err := syncDir(dir); err != nil {
			return stats, err
		}
	}
	body, err := json.Marshal(m)
	if err != nil {
		return stats, err
	}
	if err := atomicWriteFile(path, append([]byte(shardMagicV2), body...)); err != nil {
		return stats, err
	}
	if err := syncDir(dir); err != nil {
		return stats, err
	}
	stats.BytesWritten += int64(len(shardMagicV2) + len(body))
	obs.PersistedBytesTotal.Add(stats.BytesWritten)
	obs.SegmentsWrittenTotal.Add(int64(stats.SegmentsWritten))
	obs.SegmentsReusedTotal.Add(int64(stats.SegmentsReused))
	sweepSegments(path, keep)
	return stats, nil
}

// syncDir fsyncs a directory so renames and new entries inside it survive a
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// segmentName builds the content-addressed segment file basename from a
// chunk's hex content hash.
func segmentName(path, hash string) string {
	return fmt.Sprintf("%s.g%s%s", filepath.Base(path), hash, SegmentExt)
}

// hashFromSegmentName recovers the content hash from a segment basename, or
// "" when the name has another shape (hand-renamed files stay loadable;
// their chunks just re-hash on the next commit).
func hashFromSegmentName(path, name string) string {
	rest := strings.TrimPrefix(name, filepath.Base(path)+".g")
	rest = strings.TrimSuffix(rest, SegmentExt)
	if len(rest) != 32 {
		return ""
	}
	if _, err := hex.DecodeString(rest); err != nil {
		return ""
	}
	return rest
}

// previousManifestVersion reads the commit counter of the manifest currently
// at path; 0 when there is none (or it is a legacy layout).
func previousManifestVersion(path string) int {
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) < len(shardMagicV2) {
		return 0
	}
	switch string(buf[:len(shardMagicV2)]) {
	case shardMagicV2:
		var m manifestV2JSON
		if json.Unmarshal(buf[len(shardMagicV2):], &m) == nil {
			return m.Version
		}
	case shardMagic:
		var m manifestJSON
		if json.Unmarshal(buf[len(shardMagic):], &m) == nil {
			return m.Version
		}
	}
	return 0
}

// listSegments globs every segment file belonging to the table at path, of
// either manifest generation (v1 segments embed a version, v2 segments a
// content hash; both share the table basename prefix and extension).
func listSegments(path string) []string {
	files, err := filepath.Glob(filepath.Join(filepath.Dir(path), filepath.Base(path)+".*"+SegmentExt))
	if err != nil {
		return nil
	}
	return files
}

// sweepSegments removes segment files of the table at path that are not in
// keep (best effort — a failed remove only leaves garbage, never corruption).
func sweepSegments(path string, keep map[string]bool) {
	for _, f := range listSegments(path) {
		if !keep[filepath.Base(f)] {
			_ = os.Remove(f)
		}
	}
}

// atomicWriteFile writes buf at path via a same-directory temp file, fsync
// and rename, so concurrent readers see the old bytes or the new bytes but
// never a torn write.
func atomicWriteFile(path string, buf []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
