package storage

import "unicode/utf8"

// A hand-rolled parser for the v3 manifest body. Opening a table lazily is
// nothing but manifest parsing, and encoding/json's reflection-driven decode
// was ~85% of that open cost; this parser reads the same compact document
// (known keys, string and integer scalars only) in a fraction of the time,
// which is what keeps the O(manifest) cold start ahead of an eager open even
// on small tables. It is deliberately conservative: anything it does not
// recognize — an unknown key, a float, a string escape, invalid UTF-8 —
// makes it report !ok and the caller falls back to encoding/json, so the
// fast path can only ever change speed, never behavior. When it does report
// ok, its result is bit-identical to what json.Unmarshal produces (a
// property pinned by TestFastManifestMatchesEncodingJSON and the fuzzer).

type manifestParser struct {
	b []byte
	i int
}

// fastManifestV3 parses a v3 manifest body. ok is false whenever the input
// is not a document this parser fully understands; the caller must then
// retry with encoding/json, which is authoritative.
func fastManifestV3(body []byte) (*manifestV3JSON, bool) {
	p := &manifestParser{b: body}
	m := &manifestV3JSON{}
	if !p.object(func(key []byte) bool {
		switch string(key) {
		case "version":
			return p.intField(&m.Version)
		case "chunkSize":
			return p.intField(&m.ChunkSize)
		case "schema":
			return p.schema(&m.Schema)
		case "shards":
			m.Shards = []manifestShardV3JSON{}
			return p.array(func() bool {
				var sh manifestShardV3JSON
				if !p.shard(&sh) {
					return false
				}
				m.Shards = append(m.Shards, sh)
				return true
			})
		default:
			return false
		}
	}) {
		return nil, false
	}
	p.ws()
	if p.i != len(p.b) {
		return nil, false
	}
	return m, true
}

func (p *manifestParser) schema(s *schemaJSON) bool {
	return p.object(func(key []byte) bool {
		if string(key) != "cols" {
			return false
		}
		s.Cols = []colJSON{}
		return p.array(func() bool {
			var c colJSON
			if !p.object(func(k []byte) bool {
				switch string(k) {
				case "name":
					return p.strField(&c.Name)
				case "type":
					return p.uint8Field(&c.Type)
				case "kind":
					return p.uint8Field(&c.Kind)
				default:
					return false
				}
			}) {
				return false
			}
			s.Cols = append(s.Cols, c)
			return true
		})
	})
}

func (p *manifestParser) shard(sh *manifestShardV3JSON) bool {
	return p.object(func(key []byte) bool {
		switch string(key) {
		case "chunks":
			sh.Chunks = []manifestChunkV3JSON{}
			return p.array(func() bool {
				var c manifestChunkV3JSON
				if !p.chunk(&c) {
					return false
				}
				sh.Chunks = append(sh.Chunks, c)
				return true
			})
		case "dicts":
			sh.Dicts = [][]string{}
			return p.array(func() bool {
				if p.null() {
					sh.Dicts = append(sh.Dicts, nil)
					return true
				}
				d := []string{}
				if !p.array(func() bool {
					v, ok := p.str()
					d = append(d, v)
					return ok
				}) {
					return false
				}
				sh.Dicts = append(sh.Dicts, d)
				return true
			})
		case "intMin":
			return p.int64Slice(&sh.IntMin)
		case "intMax":
			return p.int64Slice(&sh.IntMax)
		default:
			return false
		}
	})
}

func (p *manifestParser) chunk(c *manifestChunkV3JSON) bool {
	return p.object(func(key []byte) bool {
		switch string(key) {
		case "file":
			return p.strField(&c.File)
		case "rows":
			return p.intField(&c.Rows)
		case "users":
			return p.intField(&c.Users)
		case "minUser":
			return p.strField(&c.MinUser)
		case "maxUser":
			return p.strField(&c.MaxUser)
		case "bytes":
			v, ok := p.int64Val()
			c.Bytes = v
			return ok
		case "cols":
			c.Cols = []manifestColStatsJSON{}
			return p.array(func() bool {
				var cs manifestColStatsJSON
				if !p.colStats(&cs) {
					return false
				}
				c.Cols = append(c.Cols, cs)
				return true
			})
		default:
			return false
		}
	})
}

func (p *manifestParser) colStats(cs *manifestColStatsJSON) bool {
	return p.object(func(key []byte) bool {
		switch string(key) {
		case "values":
			cs.Values = []uint64{}
			return p.array(func() bool {
				v, ok := p.uint64Val()
				cs.Values = append(cs.Values, v)
				return ok
			})
		case "min":
			v, ok := p.int64Val()
			cs.Min = &v
			return ok
		case "max":
			v, ok := p.int64Val()
			cs.Max = &v
			return ok
		default:
			return false
		}
	})
}

// --- scanner primitives ---

func (p *manifestParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// eat consumes one expected byte (after whitespace).
func (p *manifestParser) eat(c byte) bool {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *manifestParser) null() bool {
	p.ws()
	if p.i+4 <= len(p.b) && string(p.b[p.i:p.i+4]) == "null" {
		p.i += 4
		return true
	}
	return false
}

// object parses {"k":v,...}, calling field with each raw key, positioned at
// the value. Keys may arrive in any order; duplicate keys keep json's
// last-wins semantics because every field arm overwrites.
func (p *manifestParser) object(field func(key []byte) bool) bool {
	if !p.eat('{') {
		return false
	}
	if p.eat('}') {
		return true
	}
	for {
		key, ok := p.rawStr()
		if !ok || !p.eat(':') || !field(key) {
			return false
		}
		if p.eat(',') {
			continue
		}
		return p.eat('}')
	}
}

func (p *manifestParser) array(elem func() bool) bool {
	if !p.eat('[') {
		return false
	}
	if p.eat(']') {
		return true
	}
	for {
		if !elem() {
			return false
		}
		if p.eat(',') {
			continue
		}
		return p.eat(']')
	}
}

// rawStr scans an escape-free JSON string and returns the raw bytes between
// the quotes. Escapes, control characters and invalid UTF-8 fail the fast
// path (encoding/json would unescape or coerce them; falling back keeps the
// two parsers bit-identical whenever this one succeeds).
func (p *manifestParser) rawStr() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c == '"':
			raw := p.b[start:p.i]
			p.i++
			if !utf8.Valid(raw) {
				return nil, false
			}
			return raw, true
		case c == '\\' || c < 0x20:
			return nil, false
		default:
			p.i++
		}
	}
	return nil, false
}

func (p *manifestParser) str() (string, bool) {
	raw, ok := p.rawStr()
	return string(raw), ok
}

func (p *manifestParser) strField(dst *string) bool {
	v, ok := p.str()
	*dst = v
	return ok
}

// uint64Val parses a non-negative integer scalar. Floats, exponents and
// overflow fail the fast path.
func (p *manifestParser) uint64Val() (uint64, bool) {
	p.ws()
	start := p.i
	var v uint64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
		p.i++
	}
	if p.i == start {
		return 0, false
	}
	// JSON forbids leading zeros; encoding/json rejects them, so must we.
	if p.b[start] == '0' && p.i > start+1 {
		return 0, false
	}
	if p.i < len(p.b) {
		switch p.b[p.i] {
		case '.', 'e', 'E':
			return 0, false
		}
	}
	return v, true
}

func (p *manifestParser) int64Val() (int64, bool) {
	p.ws()
	neg := false
	if p.i < len(p.b) && p.b[p.i] == '-' {
		neg = true
		p.i++
	}
	v, ok := p.uint64Val()
	if !ok {
		return 0, false
	}
	if neg {
		if v > 1<<63 {
			return 0, false
		}
		return -int64(v), true
	}
	if v >= 1<<63 {
		return 0, false
	}
	return int64(v), true
}

func (p *manifestParser) intField(dst *int) bool {
	v, ok := p.int64Val()
	*dst = int(v)
	return ok
}

func (p *manifestParser) uint8Field(dst *uint8) bool {
	v, ok := p.int64Val()
	if !ok || v < 0 || v > 255 {
		return false
	}
	*dst = uint8(v)
	return true
}

func (p *manifestParser) int64Slice(dst *[]int64) bool {
	out := []int64{}
	if !p.array(func() bool {
		v, ok := p.int64Val()
		out = append(out, v)
		return ok
	}) {
		return false
	}
	*dst = out
	return true
}
