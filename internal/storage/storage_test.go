package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/activity"
)

func buildPaperTable(t *testing.T, chunkSize int) *Table {
	t.Helper()
	st, err := Build(activity.PaperTable1(), Options{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBuildRequiresSortedInput(t *testing.T) {
	tbl := activity.NewTable(activity.PaperSchema())
	if err := tbl.Append("001", int64(1), "launch", "r", "c", int64(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(tbl, Options{}); err == nil {
		t.Error("unsorted table accepted")
	}
}

func TestBuildBasicProperties(t *testing.T) {
	st := buildPaperTable(t, 1024)
	if st.NumRows() != 10 || st.NumUsers() != 3 {
		t.Fatalf("rows=%d users=%d", st.NumRows(), st.NumUsers())
	}
	if st.NumChunks() != 1 {
		t.Fatalf("chunks=%d, want 1", st.NumChunks())
	}
	ch := st.Chunk(0)
	if ch.NumRows() != 10 || ch.NumUsers() != 3 {
		t.Fatalf("chunk rows=%d users=%d", ch.NumRows(), ch.NumUsers())
	}
}

func TestUserAlignedChunking(t *testing.T) {
	// Chunk size 3 with users of 5, 3 and 2 tuples: chunks must close at
	// user boundaries, never splitting a user (clustering property).
	st := buildPaperTable(t, 3)
	if st.NumChunks() != 3 {
		t.Fatalf("chunks=%d, want 3", st.NumChunks())
	}
	total := 0
	for i := 0; i < st.NumChunks(); i++ {
		ch := st.Chunk(i)
		total += ch.NumRows()
		if ch.NumUsers() != 1 {
			t.Errorf("chunk %d has %d users, want 1", i, ch.NumUsers())
		}
	}
	if total != 10 {
		t.Errorf("chunk rows sum to %d", total)
	}
}

// decodeAll reconstructs the logical table from the compressed form.
func decodeAll(st *Table) (users, actions []string, times []int64, golds []int64) {
	schema := st.Schema()
	uc, tc, ac := schema.UserCol(), schema.TimeCol(), schema.ActionCol()
	gc := schema.ColIndex("gold")
	for i := 0; i < st.NumChunks(); i++ {
		ch := st.Chunk(i)
		for r := 0; r < ch.NumUsers(); r++ {
			gid, first, n := ch.UserRun(r)
			for row := first; row < first+n; row++ {
				users = append(users, st.Dict(uc).Value(gid))
				actions = append(actions, st.Dict(ac).Value(ch.StringID(ac, row)))
				times = append(times, ch.Int(tc, row))
				golds = append(golds, ch.Int(gc, row))
			}
		}
	}
	return
}

func TestRoundTripAgainstSource(t *testing.T) {
	src := activity.PaperTable1()
	for _, chunkSize := range []int{2, 3, 5, 1024} {
		st, err := Build(src, Options{ChunkSize: chunkSize})
		if err != nil {
			t.Fatal(err)
		}
		users, actions, times, golds := decodeAll(st)
		for i := 0; i < src.Len(); i++ {
			if users[i] != src.User(i) || actions[i] != src.Action(i) || times[i] != src.Time(i) || golds[i] != src.Ints(5)[i] {
				t.Fatalf("chunkSize=%d row %d mismatch: %s/%s/%d/%d", chunkSize, i, users[i], actions[i], times[i], golds[i])
			}
		}
	}
}

func TestChunkPruningHelpers(t *testing.T) {
	st := buildPaperTable(t, 3) // one user per chunk
	ac := st.Schema().ActionCol()
	launchID, ok := st.LookupString(ac, "launch")
	if !ok {
		t.Fatal("launch missing from global dictionary")
	}
	shopID, _ := st.LookupString(ac, "shop")
	// Player 003 (chunk 2) never shopped.
	if st.Chunk(2).HasGlobalID(ac, shopID) {
		t.Error("chunk 2 claims to contain shop")
	}
	for i := 0; i < 3; i++ {
		if !st.Chunk(i).HasGlobalID(ac, launchID) {
			t.Errorf("chunk %d missing launch", i)
		}
	}
	if _, ok := st.LookupString(ac, "teleport"); ok {
		t.Error("absent action found")
	}
	// Integer ranges.
	gc := st.Schema().ColIndex("gold")
	mn, mx := st.Chunk(1).IntRange(gc) // player 002: gold 0, 30, 40
	if mn != 0 || mx != 40 {
		t.Errorf("chunk 1 gold range = [%d, %d]", mn, mx)
	}
	gmn, gmx := st.GlobalRange(gc)
	if gmn != 0 || gmx != 100 {
		t.Errorf("global gold range = [%d, %d]", gmn, gmx)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, chunkSize := range []int{2, 1024} {
		st := buildPaperTable(t, chunkSize)
		buf, err := st.Serialize()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Deserialize(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != st.NumRows() || got.NumUsers() != st.NumUsers() || got.NumChunks() != st.NumChunks() {
			t.Fatalf("header mismatch after round trip")
		}
		u1, a1, t1, g1 := decodeAll(st)
		u2, a2, t2, g2 := decodeAll(got)
		for i := range u1 {
			if u1[i] != u2[i] || a1[i] != a2[i] || t1[i] != t2[i] || g1[i] != g2[i] {
				t.Fatalf("row %d differs after round trip", i)
			}
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	st := buildPaperTable(t, 1024)
	path := filepath.Join(t.TempDir(), "game.cohana")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 10 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := Deserialize([]byte("NOTCOHANA")); err == nil {
		t.Error("bad magic accepted")
	}
	st := buildPaperTable(t, 1024)
	buf, _ := st.Serialize()
	if _, err := Deserialize(buf[:len(buf)/2]); err == nil {
		t.Error("truncated table accepted")
	}
	if _, err := Deserialize(append(buf, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodedSizeGrowsWithChunkSize(t *testing.T) {
	// Section 5.3.1: larger chunks -> more distinct values per chunk ->
	// wider bit packing -> more storage. With a table this small the effect
	// is tiny but the ordering must hold between 1-user and all-user chunks.
	small := buildPaperTable(t, 2).EncodedSize()
	large := buildPaperTable(t, 1024).EncodedSize()
	if small <= 0 || large <= 0 {
		t.Fatalf("sizes: small=%d large=%d", small, large)
	}
}

func randomActivityTable(seed int64, nUsers, perUser int) *activity.Table {
	rng := rand.New(rand.NewSource(seed))
	tbl := activity.NewTable(activity.PaperSchema())
	actions := []string{"launch", "shop", "fight", "achievement"}
	countries := []string{"China", "Australia", "United States", "India"}
	roles := []string{"dwarf", "wizard", "bandit", "assassin"}
	for u := 0; u < nUsers; u++ {
		user := fmt.Sprintf("user-%04d", u)
		base := int64(rng.Intn(1000))
		for k := 0; k < perUser; k++ {
			_ = tbl.Append(user, base+int64(k*37), actions[rng.Intn(len(actions))],
				roles[rng.Intn(len(roles))], countries[rng.Intn(len(countries))], int64(rng.Intn(200)))
		}
	}
	if err := tbl.SortByPK(); err != nil {
		panic(err)
	}
	return tbl
}

func TestPropertyCompressedEqualsSource(t *testing.T) {
	f := func(seed int64) bool {
		src := randomActivityTable(seed, 20, 15)
		for _, chunkSize := range []int{7, 64, 4096} {
			st, err := Build(src, Options{ChunkSize: chunkSize})
			if err != nil {
				return false
			}
			buf, err := st.Serialize()
			if err != nil {
				return false
			}
			st2, err := Deserialize(buf)
			if err != nil {
				return false
			}
			users, actions, times, golds := decodeAll(st2)
			if len(users) != src.Len() {
				return false
			}
			for i := 0; i < src.Len(); i++ {
				if users[i] != src.User(i) || actions[i] != src.Action(i) ||
					times[i] != src.Time(i) || golds[i] != src.Ints(5)[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
