package storage

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/activity"
	"repro/internal/gen"
	"repro/internal/obs"
)

// commitWorkload builds a sharded workload table and commits it to a fresh
// temp dir, returning the manifest path.
func commitWorkload(t *testing.T, shards, chunkSize int) string {
	t.Helper()
	tbl := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 10, Seed: 9})
	s, err := BuildSharded(tbl, shards, Options{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.cohana")
	if _, err := CommitSharded(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func readLazy(t *testing.T, path string, cache *ChunkCache) *Sharded {
	t.Helper()
	s, err := ReadShardedWith(path, ReadOptions{Lazy: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLazyOpenZeroSegmentReads pins the O(manifest) cold-start contract: a
// lazy open plus everything the planner needs — chunk counts, row/user
// counts, user ranges, prune stats — performs zero segment reads.
func TestLazyOpenZeroSegmentReads(t *testing.T) {
	path := commitWorkload(t, 2, 128)
	before := obs.SegmentReadsTotal.Value()
	s := readLazy(t, path, NewChunkCache(0))
	for i := 0; i < s.NumShards(); i++ {
		sh := s.Shard(i)
		if !sh.Lazy() {
			t.Fatalf("shard %d opened eager", i)
		}
		for ci := 0; ci < sh.NumChunks(); ci++ {
			_ = sh.ChunkRows(ci)
			_ = sh.ChunkUsers(ci)
			sh.ChunkUserRange(ci)
			for c := 0; c < sh.Schema().NumCols(); c++ {
				if c == sh.Schema().UserCol() {
					continue
				}
				if sh.Schema().IsStringCol(c) {
					sh.ChunkMayHaveGID(ci, c, 0)
				} else {
					sh.ChunkIntRange(ci, c)
				}
			}
		}
	}
	if got := obs.SegmentReadsTotal.Value() - before; got != 0 {
		t.Fatalf("lazy open + manifest-level stats performed %d segment reads, want 0", got)
	}
}

// TestLazyEagerEquivalence is the lazy ≡ eager property: across shard counts
// and cache budgets (a tiny budget that evicts after every release, and an
// unbounded one), a lazily opened table materializes to exactly the rows the
// eager open produces, answers FindUser identically, and never prunes a
// value the eager chunk dictionaries contain.
func TestLazyEagerEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		for _, budget := range []int64{1, 0} { // 1 byte ≈ "one pinned chunk at a time"; 0 = unbounded
			t.Run(fmt.Sprintf("shards=%d/budget=%d", shards, budget), func(t *testing.T) {
				path := commitWorkload(t, shards, 96)
				eager, err := ReadSharded(path)
				if err != nil {
					t.Fatal(err)
				}
				lazy := readLazy(t, path, NewChunkCache(budget))

				want := mustRows(t, eager)
				got := mustRows(t, lazy)
				requireSameRows(t, "lazy materialization", got, want)

				for i := 0; i < shards; i++ {
					esh, lsh := eager.Shard(i), lazy.Shard(i)
					if esh.NumChunks() != lsh.NumChunks() || esh.NumRows() != lsh.NumRows() || esh.NumUsers() != lsh.NumUsers() {
						t.Fatalf("shard %d shape: eager %d/%d/%d, lazy %d/%d/%d",
							i, esh.NumChunks(), esh.NumRows(), esh.NumUsers(),
							lsh.NumChunks(), lsh.NumRows(), lsh.NumUsers())
					}
					checkShardEquivalence(t, esh, lsh)
				}

				if _, _, ok, err := lazy.Shard(0).FindUser("no-such-user"); ok || err != nil {
					t.Fatalf("FindUser(missing) = ok=%v err=%v", ok, err)
				}
			})
		}
	}
}

// checkShardEquivalence compares manifest-level pruning answers and FindUser
// between an eager and a lazy open of the same shard.
func checkShardEquivalence(t *testing.T, esh, lsh *Table) {
	t.Helper()
	schema := esh.Schema()
	for ci := 0; ci < esh.NumChunks(); ci++ {
		if esh.ChunkRows(ci) != lsh.ChunkRows(ci) || esh.ChunkUsers(ci) != lsh.ChunkUsers(ci) {
			t.Fatalf("chunk %d meta: eager %d rows/%d users, lazy %d/%d",
				ci, esh.ChunkRows(ci), esh.ChunkUsers(ci), lsh.ChunkRows(ci), lsh.ChunkUsers(ci))
		}
		ef, el := esh.ChunkUserRange(ci)
		lf, ll := lsh.ChunkUserRange(ci)
		if ef != lf || el != ll {
			t.Fatalf("chunk %d user range: eager [%q,%q], lazy [%q,%q]", ci, ef, el, lf, ll)
		}
		for c := 0; c < schema.NumCols(); c++ {
			if c == schema.UserCol() {
				continue
			}
			if schema.IsStringCol(c) {
				// Lazy answers may only be conservative (never prune a
				// present value); with exact stats they must agree.
				for gid := uint64(0); gid < uint64(esh.Dict(c).Len()); gid++ {
					eHas, lHas := esh.ChunkMayHaveGID(ci, c, gid), lsh.ChunkMayHaveGID(ci, c, gid)
					if eHas && !lHas {
						t.Fatalf("chunk %d col %d gid %d: lazy prunes a present value", ci, c, gid)
					}
					if lsh.lazy.metas[ci].strVals[c] != nil && eHas != lHas {
						t.Fatalf("chunk %d col %d gid %d: exact stats disagree (eager %v, lazy %v)", ci, c, gid, eHas, lHas)
					}
				}
			} else {
				emn, emx := esh.ChunkIntRange(ci, c)
				lmn, lmx := lsh.ChunkIntRange(ci, c)
				if emn != lmn || emx != lmx {
					t.Fatalf("chunk %d col %d range: eager [%d,%d], lazy [%d,%d]", ci, c, emn, emx, lmn, lmx)
				}
			}
		}
	}
	// Every user resolves to the same (gid, chunk, run) through both opens.
	userCol := schema.UserCol()
	d := esh.Dict(userCol)
	for gid := uint64(0); gid < uint64(d.Len()); gid++ {
		user := d.Value(gid)
		egid, eloc, eok, err := esh.FindUser(user)
		if err != nil || !eok {
			t.Fatalf("eager FindUser(%q) = ok=%v err=%v", user, eok, err)
		}
		lgid, lloc, lok, err := lsh.FindUser(user)
		if err != nil || !lok {
			t.Fatalf("lazy FindUser(%q) = ok=%v err=%v", user, lok, err)
		}
		if egid != lgid || eloc != lloc {
			t.Fatalf("FindUser(%q): eager (%d, %+v), lazy (%d, %+v)", user, egid, eloc, lgid, lloc)
		}
	}
}

// TestLazyDecodesOnlyTouchedChunks pins the scan-proportional cost contract:
// pinning k of n chunks decodes exactly k segments — pruned chunks stay
// cold — and re-pinning them is pure cache hits.
func TestLazyDecodesOnlyTouchedChunks(t *testing.T) {
	path := commitWorkload(t, 1, 64)
	cache := NewChunkCache(0)
	before := obs.SegmentReadsTotal.Value()
	sh := readLazy(t, path, cache).Shard(0)
	n := sh.NumChunks()
	if n < 4 {
		t.Fatalf("fixture too small: %d chunks", n)
	}
	touched := []int{0, n / 2, n - 1}
	for _, ci := range touched {
		_, release, err := sh.PinChunk(ci)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if got := obs.SegmentReadsTotal.Value() - before; got != uint64(len(touched)) {
		t.Fatalf("pinning %d chunks performed %d segment reads", len(touched), got)
	}
	st := cache.Stats()
	if st.Misses != uint64(len(touched)) || st.Entries != len(touched) {
		t.Fatalf("cache after %d cold pins: %+v", len(touched), st)
	}
	if st.ResidentBytes <= 0 {
		t.Fatalf("resident bytes not accounted: %+v", st)
	}
	// Warm re-pins: no further reads, hits only.
	for _, ci := range touched {
		_, release, err := sh.PinChunk(ci)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if got := obs.SegmentReadsTotal.Value() - before; got != uint64(len(touched)) {
		t.Fatalf("warm re-pins performed extra segment reads: total %d", got)
	}
	if st := cache.Stats(); st.Hits < uint64(len(touched)) {
		t.Fatalf("warm re-pins not counted as hits: %+v", st)
	}
}

// TestLazyBudgetEvicts pins the memory budget: with a budget of one byte the
// cache evicts each chunk as soon as its pin drops, so resident bytes stay
// bounded no matter how many chunks a scan walks.
func TestLazyBudgetEvicts(t *testing.T) {
	path := commitWorkload(t, 1, 64)
	cache := NewChunkCache(1)
	sh := readLazy(t, path, cache).Shard(0)
	if _, err := sh.Materialize(); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.ResidentBytes != 0 || st.Entries != 0 {
		t.Fatalf("tiny budget left chunks resident: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("full scan under tiny budget recorded no evictions: %+v", st)
	}
}

// countingHandler counts slog records at or above Error, for the log-once
// assertion.
type countingHandler struct {
	slog.Handler
	n *atomic.Int64
}

func (h countingHandler) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= slog.LevelError {
		h.n.Add(1)
	}
	return nil
}

// TestLazyCorruptSegmentStructuredError is the crash-injection satellite: a
// segment swept away (or truncated) between manifest load and first touch
// surfaces as a structured *CorruptSegmentError on the query path — never a
// panic — on every touch, and is logged exactly once per chunk.
func TestLazyCorruptSegmentStructuredError(t *testing.T) {
	path := commitWorkload(t, 1, 64)

	var errCount atomic.Int64
	prev := slog.Default()
	slog.SetDefault(slog.New(countingHandler{Handler: prev.Handler(), n: &errCount}))
	defer slog.SetDefault(prev)

	for _, damage := range []struct {
		name  string
		wreck func(t *testing.T, seg string)
	}{
		{"removed", func(t *testing.T, seg string) {
			if err := os.Remove(seg); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, seg string) {
			if err := os.Truncate(seg, 5); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(damage.name, func(t *testing.T) {
			dir := t.TempDir()
			p := filepath.Join(dir, "w.cohana")
			copyCommit(t, path, p)
			sh := readLazy(t, p, NewChunkCache(0)).Shard(0)
			// Sweep chunk 1's segment after the manifest loaded but before
			// any scan touched it.
			damage.wreck(t, filepath.Join(dir, sh.lazy.metas[1].file))

			errCount.Store(0)
			for attempt := 0; attempt < 3; attempt++ {
				_, _, err := sh.PinChunk(1)
				var seg *CorruptSegmentError
				if !errors.As(err, &seg) {
					t.Fatalf("attempt %d: err = %v, want *CorruptSegmentError", attempt, err)
				}
			}
			if n := errCount.Load(); n != 1 {
				t.Fatalf("corrupt segment logged %d times, want once", n)
			}
			// The rest of the table still serves.
			if _, err := sh.MaterializeChunk(0); err != nil {
				t.Fatalf("undamaged chunk: %v", err)
			}
			// Materialize crosses the damaged chunk: structured error, no panic.
			if _, err := sh.Materialize(); err == nil {
				t.Fatal("Materialize over a damaged segment succeeded")
			}
		})
	}
}

// copyCommit clones a committed table (manifest + segments) into dst.
func copyCommit(t *testing.T, src, dst string) {
	t.Helper()
	srcDir, dstDir := filepath.Dir(src), filepath.Dir(dst)
	ents, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		buf, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dstDir, e.Name()), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// oneRowDelta builds a sorted single-row delta for user at timestamp ts,
// filling the remaining columns from the table's dictionaries.
func oneRowDelta(t *testing.T, sh *Table, user string, ts int64) *activity.Table {
	t.Helper()
	schema := sh.Schema()
	delta := activity.NewTable(schema)
	strs := make([]string, schema.NumCols())
	ints := make([]int64, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		switch {
		case c == schema.UserCol():
			strs[c] = user
		case c == schema.TimeCol():
			ints[c] = ts
		case schema.IsStringCol(c):
			strs[c] = sh.Dict(c).Value(0)
		}
	}
	delta.AppendRow(strs, ints)
	if err := delta.SortByPK(); err != nil {
		t.Fatal(err)
	}
	return delta
}

// TestLazyConcurrentTinyBudget hammers concurrent readers against a cache
// whose budget cannot hold even one chunk after release, so loads, rebinds
// and evictions interleave constantly. Run under -race this is the
// eviction-never-races-a-scan proof; in any mode every reader must see
// exactly the eager rows.
func TestLazyConcurrentTinyBudget(t *testing.T) {
	path := commitWorkload(t, 2, 96)
	eager, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewChunkCache(1)
	lazy := readLazy(t, path, cache)
	want := make([][]int, lazy.NumShards()) // rows per chunk, as ground truth shape
	for i := range want {
		esh := eager.Shard(i)
		want[i] = make([]int, esh.NumChunks())
		for ci := range want[i] {
			want[i][ci] = esh.ChunkRows(ci)
		}
	}

	const workers, iters = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				si := (w + it) % lazy.NumShards()
				sh := lazy.Shard(si)
				ci := (w * 7) % sh.NumChunks()
				switch it % 3 {
				case 0:
					rows, err := sh.MaterializeChunk(ci)
					if err != nil {
						errs <- err
						return
					}
					if rows.Len() != want[si][ci] {
						errs <- fmt.Errorf("shard %d chunk %d: %d rows, want %d", si, ci, rows.Len(), want[si][ci])
						return
					}
				case 1:
					ch, release, err := sh.PinChunk(ci)
					if err != nil {
						errs <- err
						return
					}
					if ch.NumRows() != want[si][ci] {
						errs <- fmt.Errorf("shard %d chunk %d pinned: %d rows, want %d", si, ci, ch.NumRows(), want[si][ci])
						release()
						return
					}
					release()
				default:
					user, _ := sh.ChunkUserRange(ci)
					if _, _, ok, err := sh.FindUser(user); err != nil || !ok {
						errs <- fmt.Errorf("shard %d FindUser(%q) = ok=%v err=%v", si, user, ok, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := cache.Stats(); st.Evictions == 0 {
		t.Errorf("tiny-budget hammer recorded no evictions: %+v", st)
	}
}

// TestLazyMergeDeltaKeepsUntouchedChunksCold pins compaction cost on lazy
// tables: MergeDelta decodes only the chunks owning delta users; every other
// chunk keeps its cold handle — across the merge and across the following
// commit (the carried segments keep their content hash, so the manifest
// rewrite touches only rebuilt chunks' files).
func TestLazyMergeDeltaKeepsUntouchedChunksCold(t *testing.T) {
	path := commitWorkload(t, 1, 64)
	sh := readLazy(t, path, NewChunkCache(0)).Shard(0)
	n := sh.NumChunks()

	// A one-row delta for a user owned by chunk 0, at a timestamp past every
	// sealed tuple so the primary key cannot collide.
	user, _ := sh.ChunkUserRange(0)
	delta := oneRowDelta(t, sh, user, 1<<40)

	before := obs.SegmentReadsTotal.Value()
	merged, rebuilt, reused, err := MergeDelta(sh, delta, Options{ChunkSize: sh.ChunkSize()})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != 1 || reused != n-1 {
		t.Fatalf("merge rebuilt %d / reused %d chunks, want 1 / %d", rebuilt, reused, n-1)
	}
	reads := obs.SegmentReadsTotal.Value() - before
	if reads != 1 {
		t.Fatalf("merging one chunk's delta performed %d segment reads, want 1", reads)
	}
	if !merged.Lazy() {
		t.Fatal("merged table is not lazy")
	}
	if got := merged.NumRows(); got != sh.NumRows()+1 {
		t.Fatalf("merged rows = %d, want %d", got, sh.NumRows()+1)
	}
	// The untouched chunks answer metadata without loading.
	for ci := 1; ci < merged.NumChunks(); ci++ {
		_ = merged.ChunkRows(ci)
	}
	if got := obs.SegmentReadsTotal.Value() - before; got != reads {
		t.Fatalf("metadata on merged table loaded segments: %d reads total", got)
	}
}
