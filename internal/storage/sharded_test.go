package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

func buildWorkload(t *testing.T) *Sharded {
	t.Helper()
	tbl := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 10, Seed: 9})
	s, err := BuildSharded(tbl, 4, Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardOfIsStable pins the user-hash routing: journals, manifests and
// the build partitioning all assume ShardOf never changes across versions —
// a silent change would split existing users across shards on the next
// journal replay and double-count them in every cohort.
func TestShardOfIsStable(t *testing.T) {
	for user, want := range map[string]int{
		"player-0000001": 0,
		"player-0000002": 4,
		"fresh-user":     3,
		"":               2,
	} {
		if got := ShardOf(user, 7); got != want {
			t.Errorf("ShardOf(%q, 7) = %d, want %d (hash function changed?)", user, got, want)
		}
	}
	if got := ShardOf("anything", 1); got != 0 {
		t.Errorf("ShardOf with one shard = %d, want 0", got)
	}
}

func TestBuildShardedPartitionsWholeUsers(t *testing.T) {
	tbl := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 10, Seed: 9})
	s, err := BuildSharded(tbl, 4, Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != tbl.Len() || s.NumUsers() != tbl.NumUsers() {
		t.Fatalf("sharded totals %d rows / %d users, want %d / %d",
			s.NumRows(), s.NumUsers(), tbl.Len(), tbl.NumUsers())
	}
	// Every user's block must live in exactly the shard ShardOf names.
	userCol := tbl.Schema().UserCol()
	for i := 0; i < s.NumShards(); i++ {
		part := s.Shard(i).Materialize()
		part.UserBlocks(func(user string, _, _ int) {
			if ShardOf(user, 4) != i {
				t.Fatalf("user %q found in shard %d, want %d", user, i, ShardOf(user, 4))
			}
			if _, ok := s.Shard(i).LookupString(userCol, user); !ok {
				t.Fatalf("user %q missing from its shard dictionary", user)
			}
		})
	}
}

func TestShardedManifestRoundTrip(t *testing.T) {
	s := buildWorkload(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "game.cohana")
	if err := WriteShardedFile(path, s); err != nil {
		t.Fatal(err)
	}
	// The manifest is distinguishable from a legacy table file.
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !IsShardManifest(head) {
		t.Fatal("multi-shard write did not produce a manifest")
	}
	got, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != s.NumShards() || got.NumRows() != s.NumRows() || got.NumUsers() != s.NumUsers() {
		t.Fatalf("roundtrip: %d shards / %d rows / %d users, want %d / %d / %d",
			got.NumShards(), got.NumRows(), got.NumUsers(), s.NumShards(), s.NumRows(), s.NumUsers())
	}
	for i := 0; i < s.NumShards(); i++ {
		if got.Shard(i).NumRows() != s.Shard(i).NumRows() {
			t.Fatalf("shard %d: %d rows after roundtrip, want %d", i, got.Shard(i).NumRows(), s.Shard(i).NumRows())
		}
	}

	// Rewriting bumps the segment version and sweeps the old segments.
	before := listSegments(path)
	if err := WriteShardedFile(path, got); err != nil {
		t.Fatal(err)
	}
	after := listSegments(path)
	if len(after) != s.NumShards() {
		t.Fatalf("%d segments on disk after rewrite, want %d", len(after), s.NumShards())
	}
	stale := 0
	seen := map[string]bool{}
	for _, f := range after {
		seen[f] = true
	}
	for _, f := range before {
		if seen[f] {
			stale++
		}
	}
	if stale != 0 {
		t.Fatalf("%d stale segments survived the rewrite sweep", stale)
	}
}

// TestLegacyFileLoadsAsOneShard pins the migration path: a single-table
// .cohana file written by the pre-sharding format must load as a 1-shard
// table, and a 1-shard write must stay in the legacy format.
func TestLegacyFileLoadsAsOneShard(t *testing.T) {
	tbl := gen.Generate(gen.Config{Users: 30, Days: 10, MeanActions: 8, Seed: 3})
	st, err := Build(tbl, Options{ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.cohana")
	if err := st.WriteFile(path); err != nil { // the pre-sharding writer
		t.Fatal(err)
	}
	s, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 || s.NumRows() != st.NumRows() {
		t.Fatalf("legacy file loaded as %d shards / %d rows, want 1 / %d", s.NumShards(), s.NumRows(), st.NumRows())
	}
	// Writing a 1-shard table keeps the legacy format, so older tools can
	// still read it.
	out := filepath.Join(dir, "out.cohana")
	if err := WriteShardedFile(out, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(out); err != nil {
		t.Fatalf("1-shard write is not legacy-readable: %v", err)
	}
	// Shrinking a manifest table back to one shard sweeps its segments.
	multi := buildWorkload(t)
	if err := WriteShardedFile(out, multi); err != nil {
		t.Fatal(err)
	}
	if n := len(listSegments(out)); n == 0 {
		t.Fatal("manifest write produced no segments")
	}
	if err := WriteShardedFile(out, s); err != nil {
		t.Fatal(err)
	}
	if n := len(listSegments(out)); n != 0 {
		t.Fatalf("%d orphan segments survive a shrink back to the legacy layout", n)
	}
}

// TestShardedDictionaryView pins the table-level dictionary view: a value
// present in any shard is visible through HasString, and per-shard lookups
// resolve the same values the unsharded dictionary would.
func TestShardedDictionaryView(t *testing.T) {
	tbl := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 10, Seed: 9})
	s, err := BuildSharded(tbl, 4, Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	schema := tbl.Schema()
	col := schema.ColIndex("country")
	seen := map[string]bool{}
	for _, v := range tbl.Strings(col) {
		seen[v] = true
	}
	for v := range seen {
		if !s.HasString(col, v) {
			t.Fatalf("country %q invisible through the sharded dictionary view", v)
		}
	}
	if s.HasString(col, "Atlantis") {
		t.Fatal("HasString invented a country")
	}
}
