package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

func buildWorkload(t *testing.T) *Sharded {
	t.Helper()
	tbl := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 10, Seed: 9})
	s, err := BuildSharded(tbl, 4, Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardOfIsStable pins the user-hash routing: journals, manifests and
// the build partitioning all assume ShardOf never changes across versions —
// a silent change would split existing users across shards on the next
// journal replay and double-count them in every cohort.
func TestShardOfIsStable(t *testing.T) {
	for user, want := range map[string]int{
		"player-0000001": 0,
		"player-0000002": 4,
		"fresh-user":     3,
		"":               2,
	} {
		if got := ShardOf(user, 7); got != want {
			t.Errorf("ShardOf(%q, 7) = %d, want %d (hash function changed?)", user, got, want)
		}
	}
	if got := ShardOf("anything", 1); got != 0 {
		t.Errorf("ShardOf with one shard = %d, want 0", got)
	}
}

func TestBuildShardedPartitionsWholeUsers(t *testing.T) {
	tbl := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 10, Seed: 9})
	s, err := BuildSharded(tbl, 4, Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != tbl.Len() || s.NumUsers() != tbl.NumUsers() {
		t.Fatalf("sharded totals %d rows / %d users, want %d / %d",
			s.NumRows(), s.NumUsers(), tbl.Len(), tbl.NumUsers())
	}
	// Every user's block must live in exactly the shard ShardOf names.
	userCol := tbl.Schema().UserCol()
	for i := 0; i < s.NumShards(); i++ {
		part := mustMaterialize(t, s.Shard(i))
		part.UserBlocks(func(user string, _, _ int) {
			if ShardOf(user, 4) != i {
				t.Fatalf("user %q found in shard %d, want %d", user, i, ShardOf(user, 4))
			}
			if _, ok := s.Shard(i).LookupString(userCol, user); !ok {
				t.Fatalf("user %q missing from its shard dictionary", user)
			}
		})
	}
}

func TestShardedManifestRoundTrip(t *testing.T) {
	s := buildWorkload(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "game.cohana")
	if err := WriteShardedFile(path, s); err != nil {
		t.Fatal(err)
	}
	// The manifest is distinguishable from a legacy table file.
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !IsShardManifest(head) {
		t.Fatal("multi-shard write did not produce a manifest")
	}
	got, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != s.NumShards() || got.NumRows() != s.NumRows() || got.NumUsers() != s.NumUsers() {
		t.Fatalf("roundtrip: %d shards / %d rows / %d users, want %d / %d / %d",
			got.NumShards(), got.NumRows(), got.NumUsers(), s.NumShards(), s.NumRows(), s.NumUsers())
	}
	for i := 0; i < s.NumShards(); i++ {
		if got.Shard(i).NumRows() != s.Shard(i).NumRows() {
			t.Fatalf("shard %d: %d rows after roundtrip, want %d", i, got.Shard(i).NumRows(), s.Shard(i).NumRows())
		}
	}

	// Segments are content-addressed: re-committing the identical layout
	// reuses every segment file on disk and writes only the manifest.
	before := listSegments(path)
	if len(before) != s.NumChunks() {
		t.Fatalf("%d segments on disk, want one per chunk (%d)", len(before), s.NumChunks())
	}
	stats, err := CommitSharded(path, got)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsWritten != 0 || stats.SegmentsReused != s.NumChunks() {
		t.Fatalf("identical re-commit wrote %d segments (reused %d), want 0 written / %d reused",
			stats.SegmentsWritten, stats.SegmentsReused, s.NumChunks())
	}
	after := listSegments(path)
	if len(after) != len(before) {
		t.Fatalf("%d segments after identical re-commit, want %d", len(after), len(before))
	}
}

// TestLegacyFileLoadsAsOneShard pins the migration path: a single-table
// .cohana file written by the pre-sharding format must load as a 1-shard
// table, and its first persist upgrades it to a v2 chunk-granular manifest
// that loads back identically.
func TestLegacyFileLoadsAsOneShard(t *testing.T) {
	tbl := gen.Generate(gen.Config{Users: 30, Days: 10, MeanActions: 8, Seed: 3})
	st, err := Build(tbl, Options{ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.cohana")
	if err := st.WriteFile(path); err != nil { // the pre-sharding writer
		t.Fatal(err)
	}
	s, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 || s.NumRows() != st.NumRows() {
		t.Fatalf("legacy file loaded as %d shards / %d rows, want 1 / %d", s.NumShards(), s.NumRows(), st.NumRows())
	}
	// Upgrade on first persist: the write replaces the legacy file with a v2
	// manifest plus per-chunk segments, and chunking is preserved.
	if err := WriteShardedFile(path, s); err != nil {
		t.Fatal(err)
	}
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !IsShardManifest(head) {
		t.Fatal("persisting a legacy load did not upgrade it to a manifest")
	}
	back, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumShards() != 1 || back.NumRows() != st.NumRows() || back.NumUsers() != st.NumUsers() ||
		back.NumChunks() != st.NumChunks() {
		t.Fatalf("upgraded manifest reloads as %d shards / %d rows / %d users / %d chunks, want 1 / %d / %d / %d",
			back.NumShards(), back.NumRows(), back.NumUsers(), back.NumChunks(),
			st.NumRows(), st.NumUsers(), st.NumChunks())
	}
	want := mustMaterialize(t, st)
	got := mustMaterialize(t, back.Shard(0))
	if got.Len() != want.Len() {
		t.Fatalf("upgraded manifest materializes %d rows, want %d", got.Len(), want.Len())
	}
	for c := 0; c < want.Schema().NumCols(); c++ {
		if want.Schema().IsStringCol(c) {
			for i, v := range want.Strings(c) {
				if got.Strings(c)[i] != v {
					t.Fatalf("row %d col %d: %q != %q", i, c, got.Strings(c)[i], v)
				}
			}
		} else {
			for i, v := range want.Ints(c) {
				if got.Ints(c)[i] != v {
					t.Fatalf("row %d col %d: %d != %d", i, c, got.Ints(c)[i], v)
				}
			}
		}
	}
}

// TestV1ManifestLoadsAndUpgrades pins the COHANAS1 migration path: a v1
// manifest (one whole-shard legacy segment per shard, the format PR 3
// wrote) must load transparently, and its next persist must upgrade it to a
// v2 chunk-granular manifest and sweep the v1 segments.
func TestV1ManifestLoadsAndUpgrades(t *testing.T) {
	s := buildWorkload(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "v1.cohana")
	// Hand-write the v1 layout: per-shard legacy segments plus the COHANAS1
	// manifest (no writer for it exists anymore).
	segs := make([]string, s.NumShards())
	for i := 0; i < s.NumShards(); i++ {
		segs[i] = fmt.Sprintf("v1.cohana.v1.s%d%s", i, SegmentExt)
		if err := s.Shard(i).WriteFile(filepath.Join(dir, segs[i])); err != nil {
			t.Fatal(err)
		}
	}
	body, err := json.Marshal(manifestJSON{Version: 1, Segments: segs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append([]byte(shardMagic), body...), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != s.NumShards() || got.NumRows() != s.NumRows() || got.NumUsers() != s.NumUsers() {
		t.Fatalf("v1 manifest loaded as %d shards / %d rows / %d users, want %d / %d / %d",
			got.NumShards(), got.NumRows(), got.NumUsers(), s.NumShards(), s.NumRows(), s.NumUsers())
	}
	// Upgrade on persist: v2 manifest, per-chunk segments, v1 files swept.
	if err := WriteShardedFile(path, got); err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if _, err := os.Stat(filepath.Join(dir, seg)); !os.IsNotExist(err) {
			t.Fatalf("v1 segment %s survived the upgrade sweep", seg)
		}
	}
	back, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != s.NumRows() || back.NumChunks() != got.NumChunks() {
		t.Fatalf("upgraded manifest: %d rows / %d chunks, want %d / %d",
			back.NumRows(), back.NumChunks(), s.NumRows(), got.NumChunks())
	}
}

// TestShardedDictionaryView pins the table-level dictionary view: a value
// present in any shard is visible through HasString, and per-shard lookups
// resolve the same values the unsharded dictionary would.
func TestShardedDictionaryView(t *testing.T) {
	tbl := gen.Generate(gen.Config{Users: 60, Days: 12, MeanActions: 10, Seed: 9})
	s, err := BuildSharded(tbl, 4, Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	schema := tbl.Schema()
	col := schema.ColIndex("country")
	seen := map[string]bool{}
	for _, v := range tbl.Strings(col) {
		seen[v] = true
	}
	for v := range seen {
		if !s.HasString(col, v) {
			t.Fatalf("country %q invisible through the sharded dictionary view", v)
		}
	}
	if s.HasString(col, "Atlantis") {
		t.Fatal("HasString invented a country")
	}
}
