package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/activity"
	"repro/internal/encoding"
)

// magic identifies serialized COHANA tables and versions the format.
const magic = "COHANA1\n"

// schemaJSON is the portable schema representation embedded in the file
// header.
type schemaJSON struct {
	Cols []colJSON `json:"cols"`
}

type colJSON struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
	Kind uint8  `json:"kind"`
}

// schemaToJSON converts a schema to its portable representation.
func schemaToJSON(schema *activity.Schema) schemaJSON {
	sj := schemaJSON{}
	for _, c := range schema.Cols() {
		sj.Cols = append(sj.Cols, colJSON{Name: c.Name, Type: uint8(c.Type), Kind: uint8(c.Kind)})
	}
	return sj
}

// schemaFromJSON validates a portable schema back into an activity.Schema.
func schemaFromJSON(sj schemaJSON) (*activity.Schema, error) {
	cols := make([]activity.Col, len(sj.Cols))
	for i, c := range sj.Cols {
		cols[i] = activity.Col{Name: c.Name, Type: activity.ColType(c.Type), Kind: activity.ColKind(c.Kind)}
	}
	return activity.NewSchema(cols)
}

// Serialize encodes the table into a self-contained byte slice:
//
//	magic | schema | counts | global dictionaries and ranges | chunks
//
// The layout keeps each chunk's columns contiguous so a sequential scan of a
// chunk touches a compact byte range, mirroring the paper's chunk files.
func (st *Table) Serialize() ([]byte, error) {
	if st.lazy != nil {
		// The legacy format embeds a user dictionary, which lazy tables do
		// not keep (user ids are virtual); persist them with CommitSharded.
		return nil, fmt.Errorf("storage: cannot serialize a lazy table to the legacy format")
	}
	dst := []byte(magic)
	sb, err := json.Marshal(schemaToJSON(st.schema))
	if err != nil {
		return nil, fmt.Errorf("storage: marshaling schema: %w", err)
	}
	dst = binary.AppendUvarint(dst, uint64(len(sb)))
	dst = append(dst, sb...)
	dst = binary.AppendUvarint(dst, uint64(st.numRows))
	dst = binary.AppendUvarint(dst, uint64(st.numUsers))
	dst = binary.AppendUvarint(dst, uint64(st.chunkSize))
	dst = binary.AppendUvarint(dst, uint64(len(st.chunks)))
	for c := 0; c < st.schema.NumCols(); c++ {
		if st.schema.IsStringCol(c) {
			dst = st.dicts[c].AppendTo(dst)
		} else {
			dst = binary.AppendVarint(dst, st.globalMin[c])
			dst = binary.AppendVarint(dst, st.globalMax[c])
		}
	}
	for _, ch := range st.chunks {
		dst = binary.AppendUvarint(dst, uint64(ch.numRows))
		dst = ch.users.AppendTo(dst)
		for c := 0; c < st.schema.NumCols(); c++ {
			if c == st.schema.UserCol() {
				continue
			}
			if st.schema.IsStringCol(c) {
				dst = ch.cols[c].cdict.AppendTo(dst)
				dst = ch.cols[c].ids.AppendTo(dst)
			} else {
				dst = ch.cols[c].ints.AppendTo(dst)
			}
		}
	}
	return dst, nil
}

// Deserialize decodes a table produced by Serialize.
func Deserialize(src []byte) (*Table, error) {
	if len(src) < len(magic) || string(src[:len(magic)]) != magic {
		return nil, fmt.Errorf("storage: bad magic (not a COHANA table)")
	}
	src = src[len(magic):]
	slen, k := binary.Uvarint(src)
	if k <= 0 || uint64(len(src)-k) < slen {
		return nil, fmt.Errorf("storage: truncated schema")
	}
	src = src[k:]
	var sj schemaJSON
	if err := json.Unmarshal(src[:slen], &sj); err != nil {
		return nil, fmt.Errorf("storage: unmarshaling schema: %w", err)
	}
	src = src[slen:]
	schema, err := schemaFromJSON(sj)
	if err != nil {
		return nil, fmt.Errorf("storage: invalid schema in file: %w", err)
	}
	st := &Table{
		schema:    schema,
		dicts:     make([]*encoding.Dict, schema.NumCols()),
		globalMin: make([]int64, schema.NumCols()),
		globalMax: make([]int64, schema.NumCols()),
	}
	var vals [4]uint64
	for i := range vals {
		v, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("storage: truncated header")
		}
		vals[i] = v
		src = src[k:]
	}
	st.numRows, st.numUsers, st.chunkSize = int(vals[0]), int(vals[1]), int(vals[2])
	nchunks := int(vals[3])
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			d, rest, err := encoding.DecodeDict(src)
			if err != nil {
				return nil, fmt.Errorf("storage: column %d dictionary: %w", c, err)
			}
			st.dicts[c], src = d, rest
		} else {
			mn, k := binary.Varint(src)
			if k <= 0 {
				return nil, fmt.Errorf("storage: truncated global min for column %d", c)
			}
			src = src[k:]
			mx, k := binary.Varint(src)
			if k <= 0 {
				return nil, fmt.Errorf("storage: truncated global max for column %d", c)
			}
			src = src[k:]
			st.globalMin[c], st.globalMax[c] = mn, mx
		}
	}
	for i := 0; i < nchunks; i++ {
		ch := &Chunk{cols: make([]chunkColumn, schema.NumCols()), seg: &segInfo{}}
		n, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("storage: truncated chunk %d header", i)
		}
		src = src[k:]
		ch.numRows = int(n)
		users, rest, err := encoding.DecodeRLEBytes(src)
		if err != nil {
			return nil, fmt.Errorf("storage: chunk %d user column: %w", i, err)
		}
		ch.users, src = users, rest
		for c := 0; c < schema.NumCols(); c++ {
			if c == schema.UserCol() {
				continue
			}
			if schema.IsStringCol(c) {
				cd, rest, err := encoding.DecodeChunkDict(src)
				if err != nil {
					return nil, fmt.Errorf("storage: chunk %d column %d dict: %w", i, c, err)
				}
				src = rest
				ids, rest, err := encoding.DecodeBitPacked(src)
				if err != nil {
					return nil, fmt.Errorf("storage: chunk %d column %d ids: %w", i, c, err)
				}
				src = rest
				ch.cols[c] = chunkColumn{cdict: cd, ids: ids}
			} else {
				f, rest, err := encoding.DecodeFrameOfRef(src)
				if err != nil {
					return nil, fmt.Errorf("storage: chunk %d column %d ints: %w", i, c, err)
				}
				src = rest
				ch.cols[c] = chunkColumn{ints: f}
			}
		}
		st.chunks = append(st.chunks, ch)
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes", len(src))
	}
	return st, nil
}

// WriteFile serializes the table to path.
func (st *Table) WriteFile(path string) error {
	buf, err := st.Serialize()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// ReadFile loads a table written by WriteFile.
func ReadFile(path string) (*Table, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Deserialize(buf)
}

// EncodedSize returns the size in bytes of the serialized table — the
// storage-space metric reported in Figure 7 of the paper. Lazy tables report
// the sum of their segment file sizes from the manifest, without loading
// anything.
func (st *Table) EncodedSize() int {
	if st.lazy != nil {
		n := int64(0)
		for i := range st.lazy.metas {
			n += st.lazy.metas[i].bytes
		}
		return int(n)
	}
	buf, err := st.Serialize()
	if err != nil {
		return 0
	}
	return len(buf)
}
