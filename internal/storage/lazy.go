package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/encoding"
	"repro/internal/obs"
)

// Lazy tables keep chunk payloads cold until a scan touches them. The table
// carries only manifest-level metadata per chunk (chunkMeta); the decoded
// payload lives in a ChunkCache and is loaded from the chunk's segment file
// on first PinChunk. Everything the planner needs to prune — user ranges,
// per-column value lists and int ranges — answers from the metadata, so open
// plus EXPLAIN plus pruning performs zero segment reads.

// chunkStatsCap bounds the per-chunk distinct-value lists persisted in the
// manifest. A string column whose chunk cardinality exceeds the cap carries
// no value list and is simply unprunable while cold (equality pruning on it
// degrades to "may have"); int ranges are two words and always exact.
const chunkStatsCap = 48

// CorruptSegmentError reports a chunk segment file that is missing, unreadable,
// fails its content hash, or decodes inconsistently with the manifest. It is
// the structured error a query hits when lazily touching a damaged table.
type CorruptSegmentError struct {
	Path string
	Err  error
}

func (e *CorruptSegmentError) Error() string {
	return fmt.Sprintf("storage: corrupt chunk segment %s: %v", e.Path, e.Err)
}

func (e *CorruptSegmentError) Unwrap() error { return e.Err }

// chunkMeta is the cheap manifest-backed handle for one chunk: enough to
// prune, to locate users, and to verify the segment on load — without the
// decoded payload.
type chunkMeta struct {
	file  string // segment file name (bare, relative to the table dir)
	hash  string // content hash (also the cache key)
	bytes int64  // segment file size; the cache accounts in these units
	rows  int
	users int
	// userBase is the global user id of the chunk's first user: the prefix
	// sum of the preceding chunks' user counts. Lazy tables have no user
	// dictionary; a user's global id is userBase + its index within the
	// chunk, which equals the eager sorted-dictionary id because users are
	// globally sorted and never span chunks.
	userBase         uint64
	minUser, maxUser string
	// strVals[c] is the sorted list of global-ids present in string column c
	// (nil when the chunk exceeded chunkStatsCap, or for int/user columns).
	strVals [][]uint64
	// intMin/intMax[c] is the exact [min, max] of integer column c.
	intMin, intMax []int64
	// perm marks a chunk rebuilt in memory by MergeDelta whose segment file
	// may not exist yet; it is permanently resident (never cache-managed)
	// until the table is reloaded from a committed manifest.
	perm bool
}

// lazyState hangs off a Table opened lazily.
type lazyState struct {
	dir    string
	cache  *ChunkCache
	metas  []chunkMeta
	logged []bool // per chunk, guarded by cache.mu: corrupt-segment logged once
}

// Lazy reports whether the table loads chunk payloads on demand.
func (st *Table) Lazy() bool { return st.lazy != nil }

// PinChunk returns chunk i's decoded payload, loading it from its segment
// file if cold, and pins it against eviction until release is called. Eager
// tables return the chunk directly with a no-op release. Release is safe to
// call exactly once.
func (st *Table) PinChunk(i int) (ch *Chunk, release func(), err error) {
	if st.lazy == nil || st.lazy.metas[i].perm {
		return st.chunks[i], func() {}, nil
	}
	m := &st.lazy.metas[i]
	c := st.lazy.cache
	c.mu.Lock()
	if ch := st.chunks[i]; ch != nil {
		// Slot bound ⇒ the entry is resident and mapped.
		e := c.entries[m.hash]
		c.pinEntryLocked(e)
		c.hits++
		obs.ChunkCacheHitsTotal.Inc()
		c.mu.Unlock()
		return ch, c.releaseFunc(e), nil
	}
	e := c.entries[m.hash]
	if e == nil {
		// Leader: claim the load.
		e = &cacheEntry{hash: m.hash, ready: make(chan struct{}), pins: 1}
		c.entries[m.hash] = e
		c.misses++
		obs.ChunkCacheMissesTotal.Inc()
		c.mu.Unlock()
		return st.loadAndBind(e, i)
	}
	// Resident or in flight: pin, then wait (returns immediately when
	// already resolved).
	c.pinEntryLocked(e)
	c.mu.Unlock()
	<-e.ready
	if e.err != nil {
		// The leader removed the entry from the map before closing ready;
		// surface its error without retrying the disk read.
		c.mu.Lock()
		e.pins--
		c.mu.Unlock()
		return nil, nil, e.err
	}
	obs.ChunkCacheHitsTotal.Inc()
	ch2, err := st.adoptPayload(e, i)
	if err != nil {
		return nil, nil, err
	}
	return ch2, c.releaseFunc(e), nil
}

// loadAndBind is the leader path of PinChunk: read and decode the segment
// outside the lock, publish the payload, bind this table's slot.
func (st *Table) loadAndBind(e *cacheEntry, i int) (*Chunk, func(), error) {
	m := &st.lazy.metas[i]
	c := st.lazy.cache
	sc, size, err := st.lazy.loadSegment(st.schema, m)
	var ch *Chunk
	if err == nil {
		ch, err = st.bindPayload(i, sc)
	}
	c.mu.Lock()
	if err != nil {
		st.lazy.logCorruptLocked(i, err)
		e.err = err
		if c.entries[m.hash] == e {
			delete(c.entries, m.hash)
		}
		c.mu.Unlock()
		close(e.ready)
		return nil, nil, err
	}
	e.payload, e.size = sc, size
	c.resident += size
	st.chunks[i] = ch
	e.slots = append(e.slots, slotRef{tbl: st, idx: i})
	c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
	return ch, c.releaseFunc(e), nil
}

// adoptPayload binds a resident payload into this table's slot (a rebind hit:
// the payload survived — e.g. across a compaction commit or from another
// generation — but this table's slot is cold). The caller holds a pin, so the
// payload cannot be evicted underneath the bind.
func (st *Table) adoptPayload(e *cacheEntry, i int) (*Chunk, error) {
	c := st.lazy.cache
	ch, err := st.bindPayload(i, e.payload)
	if err != nil {
		c.mu.Lock()
		st.lazy.logCorruptLocked(i, err)
		c.unpinLocked(e)
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Lock()
	c.hits++
	if existing := st.chunks[i]; existing != nil {
		// Another pinner bound the slot first; use theirs.
		ch = existing
	} else {
		st.chunks[i] = ch
		e.slots = append(e.slots, slotRef{tbl: st, idx: i})
	}
	c.mu.Unlock()
	return ch, nil
}

// bindPayload turns a decoded segment into a Chunk bound to this lazy table:
// user runs carry virtual global ids (userBase + run index), string columns
// remap their value lists through the manifest's complete global
// dictionaries, bit-packed and frame-of-reference payloads are adopted as-is.
// It only reads immutable table state, so it runs outside the cache lock.
func (st *Table) bindPayload(i int, sc *segChunk) (*Chunk, error) {
	m := &st.lazy.metas[i]
	schema := st.schema
	userCol := schema.UserCol()
	ch := &Chunk{
		numRows:  sc.numRows,
		cols:     make([]chunkColumn, schema.NumCols()),
		seg:      &segInfo{},
		userVals: sc.users,
		userBase: m.userBase,
	}
	ch.seg.once.Do(func() { ch.seg.hash = m.hash })
	gids := make([]uint64, len(sc.users))
	for k := range gids {
		gids[k] = m.userBase + uint64(k)
	}
	ch.users = encoding.RLEFromRuns(gids, sc.lengths)
	for c := 0; c < schema.NumCols(); c++ {
		if c == userCol {
			continue
		}
		if schema.IsStringCol(c) {
			ids := make([]uint64, len(sc.vals[c]))
			for k, v := range sc.vals[c] {
				gid, ok := st.dicts[c].Lookup(v)
				if !ok {
					return nil, &CorruptSegmentError{
						Path: filepath.Join(st.lazy.dir, m.file),
						Err:  fmt.Errorf("value %q missing from manifest dictionary (column %d)", v, c),
					}
				}
				ids[k] = gid
			}
			cd, err := encoding.ChunkDictFromIDs(ids)
			if err != nil {
				return nil, &CorruptSegmentError{
					Path: filepath.Join(st.lazy.dir, m.file),
					Err:  fmt.Errorf("column %d: %w", c, err),
				}
			}
			ch.cols[c] = chunkColumn{cdict: cd, ids: sc.ids[c]}
		} else {
			ch.cols[c] = chunkColumn{ints: sc.ints[c]}
		}
	}
	return ch, nil
}

// loadSegment reads, verifies and decodes one chunk segment file. Every
// failure — missing file, hash mismatch, decode error, stats that contradict
// the manifest — comes back as a *CorruptSegmentError.
func (ls *lazyState) loadSegment(schema *activity.Schema, m *chunkMeta) (*segChunk, int64, error) {
	t0 := time.Now()
	path := filepath.Join(ls.dir, m.file)
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, &CorruptSegmentError{Path: path, Err: err}
	}
	obs.SegmentReadsTotal.Inc()
	sum := sha256.Sum256(buf)
	if got := hex.EncodeToString(sum[:16]); got != m.hash {
		return nil, 0, &CorruptSegmentError{Path: path,
			Err: fmt.Errorf("content hash %s does not match manifest hash %s", got, m.hash)}
	}
	sc, err := decodeChunkSegment(buf, schema)
	if err != nil {
		return nil, 0, &CorruptSegmentError{Path: path, Err: err}
	}
	if sc.numRows != m.rows || len(sc.users) != m.users ||
		(len(sc.users) > 0 && (sc.users[0] != m.minUser || sc.users[len(sc.users)-1] != m.maxUser)) {
		return nil, 0, &CorruptSegmentError{Path: path,
			Err: fmt.Errorf("segment contents disagree with manifest stats")}
	}
	obs.ChunkColdLoadSeconds.ObserveSince(t0)
	return sc, int64(len(buf)), nil
}

// logCorruptLocked logs a damaged segment once per chunk (callers hold
// cache.mu); every query that touches it still gets the structured error.
func (ls *lazyState) logCorruptLocked(i int, err error) {
	if ls.logged[i] {
		return
	}
	ls.logged[i] = true
	slog.Error("cohana: corrupt chunk segment",
		"segment", ls.metas[i].file, "error", err)
}

// ChunkRows returns the row count of chunk i without touching its payload.
func (st *Table) ChunkRows(i int) int {
	if st.lazy != nil {
		return st.lazy.metas[i].rows
	}
	return st.chunks[i].numRows
}

// ChunkUsers returns the user count of chunk i without touching its payload.
func (st *Table) ChunkUsers(i int) int {
	if st.lazy != nil {
		return st.lazy.metas[i].users
	}
	return st.chunks[i].users.NumRuns()
}

// ChunkMayHaveGID reports whether string column col of chunk i may contain
// global-id gid, without touching the payload. Lazy tables answer from the
// manifest's per-chunk value lists — exactly when present, conservatively
// ("may have") when the chunk exceeded chunkStatsCap. The answer never
// depends on cache state, keeping prune maps (and result-cache fingerprints)
// deterministic.
func (st *Table) ChunkMayHaveGID(i, col int, gid uint64) bool {
	if st.lazy != nil {
		vals := st.lazy.metas[i].strVals[col]
		if vals == nil {
			return true
		}
		k := sort.Search(len(vals), func(j int) bool { return vals[j] >= gid })
		return k < len(vals) && vals[k] == gid
	}
	return st.chunks[i].HasGlobalID(col, gid)
}

// ChunkIntRange returns the [min, max] of integer column col in chunk i
// without touching the payload (exact in both eager and lazy tables).
func (st *Table) ChunkIntRange(i, col int) (int64, int64) {
	if st.lazy != nil {
		m := &st.lazy.metas[i]
		return m.intMin[col], m.intMax[col]
	}
	return st.chunks[i].IntRange(col)
}

// UserString resolves a user global-id to its string through the table's
// user dictionary, or — on lazy tables, which have none — through the chunk's
// own user list (gid − userBase indexes it).
func (st *Table) UserString(ch *Chunk, gid uint64) string {
	if d := st.dicts[st.schema.UserCol()]; d != nil {
		return d.Value(gid)
	}
	return ch.userVals[gid-ch.userBase]
}

// FindUser locates a user: its global id and its (chunk, run) position.
// ok=false means the user does not exist in the table; err is non-nil only
// when a lazy chunk had to be loaded and its segment was corrupt.
func (st *Table) FindUser(user string) (gid uint64, loc UserLoc, ok bool, err error) {
	if st.lazy == nil {
		d := st.dicts[st.schema.UserCol()]
		gid, ok = d.Lookup(user)
		if !ok {
			return 0, UserLoc{}, false, nil
		}
		ci := sort.Search(len(st.chunks), func(k int) bool {
			ch := st.chunks[k]
			last := ch.users.Run(ch.users.NumRuns() - 1)
			return last.Value >= gid
		})
		if ci == len(st.chunks) {
			return 0, UserLoc{}, false, nil
		}
		ch := st.chunks[ci]
		n := ch.users.NumRuns()
		ri := sort.Search(n, func(k int) bool { return ch.users.Run(k).Value >= gid })
		if ri == n || ch.users.Run(ri).Value != gid {
			return 0, UserLoc{}, false, nil
		}
		return gid, UserLoc{Chunk: ci, Run: ri}, true, nil
	}
	metas := st.lazy.metas
	ci := sort.Search(len(metas), func(k int) bool { return metas[k].maxUser >= user })
	if ci == len(metas) || user < metas[ci].minUser {
		return 0, UserLoc{}, false, nil
	}
	ch, release, err := st.PinChunk(ci)
	if err != nil {
		return 0, UserLoc{}, false, err
	}
	defer release()
	k := sort.SearchStrings(ch.userVals, user)
	if k == len(ch.userVals) || ch.userVals[k] != user {
		return 0, UserLoc{}, false, nil
	}
	// One RLE run per user, in user order: run index == local user index.
	return ch.userBase + uint64(k), UserLoc{Chunk: ci, Run: k}, true, nil
}

// chunkManifestStats computes the manifest v3 per-column stats of eager
// chunk ci.
func (st *Table) chunkManifestStats(ci int) (strVals [][]uint64, intMin, intMax []int64) {
	return chunkStatsOf(st.schema, st.chunks[ci])
}

// chunkStatsOf computes one chunk's manifest stats: the sorted distinct
// global-ids of each string column (omitted past chunkStatsCap) and the
// exact int ranges.
func chunkStatsOf(schema *activity.Schema, ch *Chunk) (strVals [][]uint64, intMin, intMax []int64) {
	strVals = make([][]uint64, schema.NumCols())
	intMin = make([]int64, schema.NumCols())
	intMax = make([]int64, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		if c == schema.UserCol() {
			continue
		}
		if schema.IsStringCol(c) {
			cd := ch.cols[c].cdict
			if cd.Len() > chunkStatsCap {
				continue
			}
			vals := make([]uint64, cd.Len())
			for k := range vals {
				vals[k] = cd.GlobalID(uint64(k))
			}
			strVals[c] = vals
		} else {
			intMin[c], intMax[c] = ch.IntRange(c)
		}
	}
	return strVals, intMin, intMax
}
