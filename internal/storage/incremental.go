package storage

import (
	"fmt"

	"repro/internal/activity"
	"repro/internal/encoding"
)

// This file is the chunk-granular compaction path: merging a sorted delta
// batch into a sealed table by re-encoding only the chunks that own the
// delta's users. Chunks hold contiguous user ranges (the table is sorted by
// Au and chunks split at user boundaries), so each delta user block routes to
// exactly one owning chunk by binary search over the chunks' first users.
// Untouched chunks share their bit-packed payloads with the old table and
// only remap their small dictionary structures onto the grown global
// dictionaries — a monotonic remap, since appending rows can only insert
// values into the sorted dictionaries. A touched chunk is decoded, merged
// with its routed rows in (Au, At, Ae) order, and re-encoded through the same
// encodeChunks path the full build uses, splitting at the block budget when
// the merged chunk outgrows it. The result is logically identical to a full
// rebuild — the property test pins query results bit-for-bit — while the
// work (and, downstream, the bytes persisted) is proportional to the touched
// chunks, not the shard.

// LayoutDelta describes one persistence step: the full new layout plus which
// shard changed and how much of it was actually rebuilt. The Persist hook
// receives it so the committer can report (and tests can assert) that write
// cost tracks the touched chunks.
type LayoutDelta struct {
	// Layout is the complete new sealed layout to commit.
	Layout *Sharded
	// Shard is the index of the one shard that changed, or -1 when the whole
	// layout is new (initial persist, resharding, format upgrade).
	Shard int
	// ChunksRebuilt / ChunksReused count the changed shard's chunks that were
	// re-encoded vs carried over untouched by the compaction.
	ChunksRebuilt, ChunksReused int
}

// FullLayout wraps a layout whose every shard must be treated as new.
func FullLayout(s *Sharded) LayoutDelta {
	return LayoutDelta{Layout: s, Shard: -1, ChunksRebuilt: s.NumChunks()}
}

// MergeDelta merges a sorted, PK-disjoint delta batch into a sealed table,
// re-encoding only the chunks that own delta users. It returns the new table
// plus the rebuilt/reused chunk counts. The inputs are not mutated; the
// result shares untouched chunk payloads with old.
func MergeDelta(old *Table, batch *activity.Table, opts Options) (merged *Table, rebuilt, reused int, err error) {
	if batch.Len() == 0 {
		return old, 0, old.NumChunks(), nil
	}
	if !batch.Sorted() {
		return nil, 0, 0, fmt.Errorf("storage: delta batch must be sorted by primary key")
	}
	schema := old.schema
	if old.NumChunks() == 0 {
		// Nothing sealed to merge into: a plain build of the batch.
		st, err := Build(batch, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		return st, st.NumChunks(), 0, nil
	}
	chunkSize := opts.chunkSize()
	st := &Table{
		schema:    schema,
		chunkSize: chunkSize,
		numRows:   old.numRows + batch.Len(),
		dicts:     make([]*encoding.Dict, schema.NumCols()),
		globalMin: make([]int64, schema.NumCols()),
		globalMax: make([]int64, schema.NumCols()),
	}
	// Grown global dictionaries and ranges: appending rows only ever inserts
	// dictionary values and widens ranges, so the merged metadata equals what
	// a full rebuild over all rows would compute.
	remap := make([][]uint64, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			oldVals := old.dicts[c].Values()
			all := make([]string, 0, len(oldVals)+batch.Len())
			all = append(all, oldVals...)
			all = append(all, batch.Strings(c)...)
			st.dicts[c] = encoding.BuildDict(all)
			if st.dicts[c].Len() > len(oldVals) {
				m := make([]uint64, len(oldVals))
				for id, v := range oldVals {
					gid, ok := st.dicts[c].Lookup(v)
					if !ok {
						return nil, 0, 0, fmt.Errorf("storage: value %q lost in dictionary merge", v)
					}
					m[id] = gid
				}
				remap[c] = m
			}
			continue
		}
		mn, mx := old.globalMin[c], old.globalMax[c]
		if old.numRows == 0 {
			vals := batch.Ints(c)
			mn, mx = vals[0], vals[0]
		}
		for _, v := range batch.Ints(c) {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		st.globalMin[c], st.globalMax[c] = mn, mx
	}
	// Route each delta user block to its owning chunk: chunk i owns users in
	// [firstUser(i), firstUser(i+1)), with chunk 0 absorbing anything below
	// its range and the last chunk anything above. Both the batch's user
	// blocks and the chunk ranges are in ascending user order, so the routed
	// row ranges are contiguous and in chunk order.
	firstUsers := make([]string, old.NumChunks())
	for i := range firstUsers {
		firstUsers[i], _ = old.ChunkUserRange(i)
	}
	batchLo := make([]int, old.NumChunks())
	batchHi := make([]int, old.NumChunks())
	for i := range batchHi {
		batchLo[i] = -1
	}
	batch.UserBlocks(func(user string, start, end int) {
		ci := 0
		for ci < len(firstUsers)-1 && firstUsers[ci+1] <= user {
			ci++
		}
		if batchLo[ci] < 0 {
			batchLo[ci] = start
		}
		batchHi[ci] = end
	})
	for ci := 0; ci < old.NumChunks(); ci++ {
		if batchLo[ci] < 0 {
			// Untouched: share the payloads, remap the dictionary-id
			// structures. When no dictionary grew the chunk is carried over
			// as-is, keeping its cached segment identity.
			st.chunks = append(st.chunks, remapChunk(old, ci, schema, remap))
			st.numUsers += old.chunks[ci].NumUsers()
			reused++
			continue
		}
		sub := activity.NewTable(schema)
		sub.AppendRows(batch, batchLo[ci], batchHi[ci])
		if err := sub.AssertSortedByPK(); err != nil {
			return nil, 0, 0, fmt.Errorf("storage: routed delta rows for chunk %d: %w", ci, err)
		}
		rows, err := activity.MergeSorted(old.MaterializeChunk(ci), sub)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("storage: merging chunk %d: %w", ci, err)
		}
		gids, err := globalIDs(rows, schema, st.dicts)
		if err != nil {
			return nil, 0, 0, err
		}
		chunks, users, err := encodeChunks(rows, schema, gids, chunkSize)
		if err != nil {
			return nil, 0, 0, err
		}
		st.chunks = append(st.chunks, chunks...)
		st.numUsers += users
		rebuilt += len(chunks)
	}
	return st, rebuilt, reused, nil
}

// remapChunk rebinds one untouched chunk onto grown global dictionaries. The
// bit-packed column payloads and integer frames are shared with the old
// chunk; only the user runs and chunk dictionaries — one entry per distinct
// value — are rewritten. With no dictionary growth the old chunk itself is
// returned.
func remapChunk(old *Table, ci int, schema *activity.Schema, remap [][]uint64) *Chunk {
	och := old.chunks[ci]
	changed := false
	for c := 0; c < schema.NumCols(); c++ {
		if remap[c] != nil {
			changed = true
			break
		}
	}
	if !changed {
		return och
	}
	// The chunk's self-contained segment encodes values, not global ids, so a
	// remapped chunk keeps the identical segment content: share the cached
	// segment identity with the original.
	ch := &Chunk{numRows: och.numRows, cols: make([]chunkColumn, schema.NumCols()), seg: och.seg}
	userCol := schema.UserCol()
	if m := remap[userCol]; m != nil {
		vals := make([]uint64, och.users.NumRuns())
		lens := make([]uint32, och.users.NumRuns())
		for r := range vals {
			run := och.users.Run(r)
			vals[r] = m[run.Value]
			lens[r] = run.Length
		}
		ch.users = encoding.RLEFromRuns(vals, lens)
	} else {
		ch.users = och.users
	}
	for c := 0; c < schema.NumCols(); c++ {
		if c == userCol {
			continue
		}
		if !schema.IsStringCol(c) || remap[c] == nil {
			ch.cols[c] = och.cols[c]
			continue
		}
		ocd := och.cols[c].cdict
		ids := make([]uint64, ocd.Len())
		for i := range ids {
			ids[i] = remap[c][ocd.GlobalID(uint64(i))]
		}
		cd, err := encoding.ChunkDictFromIDs(ids)
		if err != nil {
			// A monotonic remap cannot break the sorted order; reaching here
			// means corrupted dictionaries.
			panic("storage: chunk dict remap out of order: " + err.Error())
		}
		ch.cols[c] = chunkColumn{cdict: cd, ids: och.cols[c].ids}
	}
	return ch
}
