package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/activity"
	"repro/internal/encoding"
)

// This file is the chunk-granular compaction path: merging a sorted delta
// batch into a sealed table by re-encoding only the chunks that own the
// delta's users. Chunks hold contiguous user ranges (the table is sorted by
// Au and chunks split at user boundaries), so each delta user block routes to
// exactly one owning chunk by binary search over the chunks' first users.
// Untouched chunks share their bit-packed payloads with the old table and
// only remap their small dictionary structures onto the grown global
// dictionaries — a monotonic remap, since appending rows can only insert
// values into the sorted dictionaries. A touched chunk is decoded, merged
// with its routed rows in (Au, At, Ae) order, and re-encoded through the same
// encodeChunks path the full build uses, splitting at the block budget when
// the merged chunk outgrows it. The result is logically identical to a full
// rebuild — the property test pins query results bit-for-bit — while the
// work (and, downstream, the bytes persisted) is proportional to the touched
// chunks, not the shard.

// LayoutDelta describes one persistence step: the full new layout plus which
// shard changed and how much of it was actually rebuilt. The Persist hook
// receives it so the committer can report (and tests can assert) that write
// cost tracks the touched chunks.
type LayoutDelta struct {
	// Layout is the complete new sealed layout to commit.
	Layout *Sharded
	// Shard is the index of the one shard that changed, or -1 when the whole
	// layout is new (initial persist, resharding, format upgrade).
	Shard int
	// ChunksRebuilt / ChunksReused count the changed shard's chunks that were
	// re-encoded vs carried over untouched by the compaction.
	ChunksRebuilt, ChunksReused int
}

// FullLayout wraps a layout whose every shard must be treated as new.
func FullLayout(s *Sharded) LayoutDelta {
	return LayoutDelta{Layout: s, Shard: -1, ChunksRebuilt: s.NumChunks()}
}

// MergeDelta merges a sorted, PK-disjoint delta batch into a sealed table,
// re-encoding only the chunks that own delta users. It returns the new table
// plus the rebuilt/reused chunk counts. The inputs are not mutated; the
// result shares untouched chunk payloads with old.
func MergeDelta(old *Table, batch *activity.Table, opts Options) (merged *Table, rebuilt, reused int, err error) {
	if batch.Len() == 0 {
		return old, 0, old.NumChunks(), nil
	}
	if !batch.Sorted() {
		return nil, 0, 0, fmt.Errorf("storage: delta batch must be sorted by primary key")
	}
	schema := old.schema
	if old.NumChunks() == 0 {
		// Nothing sealed to merge into: a plain build of the batch. (A lazy
		// table with no chunks comes back eager; results are identical and
		// the next reload restores laziness.)
		st, err := Build(batch, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		return st, st.NumChunks(), 0, nil
	}
	if old.lazy != nil {
		return mergeDeltaLazy(old, batch, opts)
	}
	chunkSize := opts.chunkSize()
	st := &Table{
		schema:    schema,
		chunkSize: chunkSize,
		numRows:   old.numRows + batch.Len(),
		dicts:     make([]*encoding.Dict, schema.NumCols()),
		globalMin: make([]int64, schema.NumCols()),
		globalMax: make([]int64, schema.NumCols()),
	}
	// Grown global dictionaries and ranges: appending rows only ever inserts
	// dictionary values and widens ranges, so the merged metadata equals what
	// a full rebuild over all rows would compute.
	remap := make([][]uint64, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			oldVals := old.dicts[c].Values()
			all := make([]string, 0, len(oldVals)+batch.Len())
			all = append(all, oldVals...)
			all = append(all, batch.Strings(c)...)
			st.dicts[c] = encoding.BuildDict(all)
			if st.dicts[c].Len() > len(oldVals) {
				m := make([]uint64, len(oldVals))
				for id, v := range oldVals {
					gid, ok := st.dicts[c].Lookup(v)
					if !ok {
						return nil, 0, 0, fmt.Errorf("storage: value %q lost in dictionary merge", v)
					}
					m[id] = gid
				}
				remap[c] = m
			}
			continue
		}
		mn, mx := old.globalMin[c], old.globalMax[c]
		if old.numRows == 0 {
			vals := batch.Ints(c)
			mn, mx = vals[0], vals[0]
		}
		for _, v := range batch.Ints(c) {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		st.globalMin[c], st.globalMax[c] = mn, mx
	}
	// Route each delta user block to its owning chunk: chunk i owns users in
	// [firstUser(i), firstUser(i+1)), with chunk 0 absorbing anything below
	// its range and the last chunk anything above. Both the batch's user
	// blocks and the chunk ranges are in ascending user order, so the routed
	// row ranges are contiguous and in chunk order.
	firstUsers := make([]string, old.NumChunks())
	for i := range firstUsers {
		firstUsers[i], _ = old.ChunkUserRange(i)
	}
	batchLo := make([]int, old.NumChunks())
	batchHi := make([]int, old.NumChunks())
	for i := range batchHi {
		batchLo[i] = -1
	}
	batch.UserBlocks(func(user string, start, end int) {
		ci := 0
		for ci < len(firstUsers)-1 && firstUsers[ci+1] <= user {
			ci++
		}
		if batchLo[ci] < 0 {
			batchLo[ci] = start
		}
		batchHi[ci] = end
	})
	for ci := 0; ci < old.NumChunks(); ci++ {
		if batchLo[ci] < 0 {
			// Untouched: share the payloads, remap the dictionary-id
			// structures. When no dictionary grew the chunk is carried over
			// as-is, keeping its cached segment identity.
			st.chunks = append(st.chunks, remapChunk(old, ci, schema, remap))
			st.numUsers += old.chunks[ci].NumUsers()
			reused++
			continue
		}
		sub := activity.NewTable(schema)
		sub.AppendRows(batch, batchLo[ci], batchHi[ci])
		if err := sub.AssertSortedByPK(); err != nil {
			return nil, 0, 0, fmt.Errorf("storage: routed delta rows for chunk %d: %w", ci, err)
		}
		matRows, err := old.MaterializeChunk(ci)
		if err != nil {
			return nil, 0, 0, err
		}
		rows, err := activity.MergeSorted(matRows, sub)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("storage: merging chunk %d: %w", ci, err)
		}
		gids, err := globalIDs(rows, schema, st.dicts)
		if err != nil {
			return nil, 0, 0, err
		}
		chunks, users, err := encodeChunks(rows, schema, gids, chunkSize)
		if err != nil {
			return nil, 0, 0, err
		}
		st.chunks = append(st.chunks, chunks...)
		st.numUsers += users
		rebuilt += len(chunks)
	}
	return st, rebuilt, reused, nil
}

// remapChunk rebinds one untouched chunk onto grown global dictionaries. The
// bit-packed column payloads and integer frames are shared with the old
// chunk; only the user runs and chunk dictionaries — one entry per distinct
// value — are rewritten. With no dictionary growth the old chunk itself is
// returned.
func remapChunk(old *Table, ci int, schema *activity.Schema, remap [][]uint64) *Chunk {
	och := old.chunks[ci]
	changed := false
	for c := 0; c < schema.NumCols(); c++ {
		if remap[c] != nil {
			changed = true
			break
		}
	}
	if !changed {
		return och
	}
	// The chunk's self-contained segment encodes values, not global ids, so a
	// remapped chunk keeps the identical segment content: share the cached
	// segment identity with the original.
	ch := &Chunk{numRows: och.numRows, cols: make([]chunkColumn, schema.NumCols()), seg: och.seg}
	userCol := schema.UserCol()
	if m := remap[userCol]; m != nil {
		vals := make([]uint64, och.users.NumRuns())
		lens := make([]uint32, och.users.NumRuns())
		for r := range vals {
			run := och.users.Run(r)
			vals[r] = m[run.Value]
			lens[r] = run.Length
		}
		ch.users = encoding.RLEFromRuns(vals, lens)
	} else {
		ch.users = och.users
	}
	for c := 0; c < schema.NumCols(); c++ {
		if c == userCol {
			continue
		}
		if !schema.IsStringCol(c) || remap[c] == nil {
			ch.cols[c] = och.cols[c]
			continue
		}
		ocd := och.cols[c].cdict
		ids := make([]uint64, ocd.Len())
		for i := range ids {
			ids[i] = remap[c][ocd.GlobalID(uint64(i))]
		}
		cd, err := encoding.ChunkDictFromIDs(ids)
		if err != nil {
			// A monotonic remap cannot break the sorted order; reaching here
			// means corrupted dictionaries.
			panic("storage: chunk dict remap out of order: " + err.Error())
		}
		ch.cols[c] = chunkColumn{cdict: cd, ids: och.cols[c].ids}
	}
	return ch
}

// mergeDeltaLazy is MergeDelta for lazy tables. Untouched chunks are carried
// *cold*: only their chunkMeta moves to the new table (string stats remapped
// onto the grown dictionaries), so the merge never loads them — and because
// their segment content is unchanged, a warm payload survives in the chunk
// cache under the same hash and the next touch is a rebind, not a disk read.
// Touched chunks are decoded, merged and re-encoded like the eager path, but
// with synthesized virtual user ids (the lazy table has no user dictionary);
// the rebuilt chunks are marked perm — permanently resident — because their
// segment files do not exist until the next commit, so the cache must never
// be allowed to evict the only copy.
func mergeDeltaLazy(old *Table, batch *activity.Table, opts Options) (merged *Table, rebuilt, reused int, err error) {
	schema := old.schema
	userCol := schema.UserCol()
	chunkSize := opts.chunkSize()
	st := &Table{
		schema:    schema,
		chunkSize: chunkSize,
		numRows:   old.numRows + batch.Len(),
		dicts:     make([]*encoding.Dict, schema.NumCols()),
		globalMin: make([]int64, schema.NumCols()),
		globalMax: make([]int64, schema.NumCols()),
	}
	remap := make([][]uint64, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		if c == userCol {
			continue // no user dictionary on lazy tables; ids stay virtual
		}
		if schema.IsStringCol(c) {
			oldVals := old.dicts[c].Values()
			all := make([]string, 0, len(oldVals)+batch.Len())
			all = append(all, oldVals...)
			all = append(all, batch.Strings(c)...)
			st.dicts[c] = encoding.BuildDict(all)
			if st.dicts[c].Len() > len(oldVals) {
				m := make([]uint64, len(oldVals))
				for id, v := range oldVals {
					gid, ok := st.dicts[c].Lookup(v)
					if !ok {
						return nil, 0, 0, fmt.Errorf("storage: value %q lost in dictionary merge", v)
					}
					m[id] = gid
				}
				remap[c] = m
			}
			continue
		}
		mn, mx := old.globalMin[c], old.globalMax[c]
		if old.numRows == 0 {
			vals := batch.Ints(c)
			mn, mx = vals[0], vals[0]
		}
		for _, v := range batch.Ints(c) {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		st.globalMin[c], st.globalMax[c] = mn, mx
	}
	firstUsers := make([]string, old.NumChunks())
	for i := range firstUsers {
		firstUsers[i], _ = old.ChunkUserRange(i)
	}
	batchLo := make([]int, old.NumChunks())
	batchHi := make([]int, old.NumChunks())
	for i := range batchHi {
		batchLo[i] = -1
	}
	batch.UserBlocks(func(user string, start, end int) {
		ci := 0
		for ci < len(firstUsers)-1 && firstUsers[ci+1] <= user {
			ci++
		}
		if batchLo[ci] < 0 {
			batchLo[ci] = start
		}
		batchHi[ci] = end
	})
	var metas []chunkMeta
	var userBase uint64
	for ci := 0; ci < old.NumChunks(); ci++ {
		om := &old.lazy.metas[ci]
		if batchLo[ci] < 0 {
			if om.perm {
				st.chunks = append(st.chunks, carryPermChunk(old, ci, userBase, remap))
			} else {
				st.chunks = append(st.chunks, nil) // stays cold
			}
			meta := *om
			meta.userBase = userBase
			meta.strVals = remapStats(om.strVals, remap)
			metas = append(metas, meta)
			userBase += uint64(om.users)
			st.numUsers += om.users
			reused++
			continue
		}
		sub := activity.NewTable(schema)
		sub.AppendRows(batch, batchLo[ci], batchHi[ci])
		if err := sub.AssertSortedByPK(); err != nil {
			return nil, 0, 0, fmt.Errorf("storage: routed delta rows for chunk %d: %w", ci, err)
		}
		matRows, err := old.MaterializeChunk(ci)
		if err != nil {
			return nil, 0, 0, err
		}
		rows, err := activity.MergeSorted(matRows, sub)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("storage: merging chunk %d: %w", ci, err)
		}
		gids, err := globalIDs(rows, schema, st.dicts)
		if err != nil {
			return nil, 0, 0, err
		}
		// Synthesize the virtual user ids: the region's k-th distinct user
		// gets userBase+k, which equals the global sorted-dictionary id an
		// eager build would assign (users are globally sorted and never span
		// chunks).
		ug := make([]uint64, rows.Len())
		var regionUsers []string
		regionBase := userBase
		rows.UserBlocks(func(user string, start, end int) {
			g := regionBase + uint64(len(regionUsers))
			regionUsers = append(regionUsers, user)
			for i := start; i < end; i++ {
				ug[i] = g
			}
		})
		gids[userCol] = ug
		chunks, users, err := encodeChunks(rows, schema, gids, chunkSize)
		if err != nil {
			return nil, 0, 0, err
		}
		for _, ch := range chunks {
			base, _, _ := ch.UserRun(0)
			ch.userBase = base
			lo := int(base - regionBase)
			ch.userVals = regionUsers[lo : lo+ch.NumUsers()]
			metas = append(metas, permChunkMeta(schema, st.dicts, ch))
			st.chunks = append(st.chunks, ch)
		}
		st.numUsers += users
		userBase += uint64(users)
		rebuilt += len(chunks)
	}
	st.lazy = &lazyState{
		dir:    old.lazy.dir,
		cache:  old.lazy.cache,
		metas:  metas,
		logged: make([]bool, len(metas)),
	}
	return st, rebuilt, reused, nil
}

// remapStats rebinds per-chunk string stats onto grown dictionaries. The
// remap is monotonic, so the lists stay sorted; unchanged columns share the
// old slices.
func remapStats(strVals [][]uint64, remap [][]uint64) [][]uint64 {
	out := make([][]uint64, len(strVals))
	for c, vals := range strVals {
		if vals == nil {
			continue
		}
		if remap[c] == nil {
			out[c] = vals
			continue
		}
		mapped := make([]uint64, len(vals))
		for k, g := range vals {
			mapped[k] = remap[c][g]
		}
		out[c] = mapped
	}
	return out
}

// carryPermChunk carries an untouched resident perm chunk into a merged lazy
// table, rebasing its virtual user ids and remapping its chunk dictionaries
// onto the grown global dictionaries. Payloads are shared; the segment
// content (values, not ids) is unchanged, so the cached segment identity is
// shared too.
func carryPermChunk(old *Table, ci int, newBase uint64, remap [][]uint64) *Chunk {
	och := old.chunks[ci]
	schema := old.schema
	userCol := schema.UserCol()
	changed := newBase != och.userBase
	for c := 0; c < schema.NumCols(); c++ {
		if c != userCol && schema.IsStringCol(c) && remap[c] != nil {
			changed = true
		}
	}
	if !changed {
		return och
	}
	ch := &Chunk{
		numRows:  och.numRows,
		cols:     make([]chunkColumn, schema.NumCols()),
		seg:      och.seg,
		userVals: och.userVals,
		userBase: newBase,
	}
	if newBase == och.userBase {
		ch.users = och.users
	} else {
		n := och.users.NumRuns()
		vals := make([]uint64, n)
		lens := make([]uint32, n)
		for r := 0; r < n; r++ {
			vals[r] = newBase + uint64(r) // one ascending run per user
			lens[r] = och.users.Run(r).Length
		}
		ch.users = encoding.RLEFromRuns(vals, lens)
	}
	for c := 0; c < schema.NumCols(); c++ {
		if c == userCol {
			continue
		}
		if !schema.IsStringCol(c) || remap[c] == nil {
			ch.cols[c] = och.cols[c]
			continue
		}
		ocd := och.cols[c].cdict
		ids := make([]uint64, ocd.Len())
		for i := range ids {
			ids[i] = remap[c][ocd.GlobalID(uint64(i))]
		}
		cd, err := encoding.ChunkDictFromIDs(ids)
		if err != nil {
			panic("storage: chunk dict remap out of order: " + err.Error())
		}
		ch.cols[c] = chunkColumn{cdict: cd, ids: och.cols[c].ids}
	}
	return ch
}

// permChunkMeta computes the full manifest-level handle of a freshly rebuilt
// lazy chunk — serializing it once to learn its segment identity and size —
// and marks it perm (resident until the table reloads).
func permChunkMeta(schema *activity.Schema, dicts []*encoding.Dict, ch *Chunk) chunkMeta {
	buf := appendChunkSegment(nil, schema, dicts, ch)
	sum := sha256.Sum256(buf)
	hash := hex.EncodeToString(sum[:16])
	ch.seg.once.Do(func() { ch.seg.hash = hash })
	strVals, intMin, intMax := chunkStatsOf(schema, ch)
	return chunkMeta{
		hash:     hash,
		bytes:    int64(len(buf)),
		rows:     ch.numRows,
		users:    ch.NumUsers(),
		userBase: ch.userBase,
		minUser:  ch.userVals[0],
		maxUser:  ch.userVals[len(ch.userVals)-1],
		strVals:  strVals,
		intMin:   intMin,
		intMax:   intMax,
		perm:     true,
	}
}
