package storage

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/activity"
)

// This file is the user-partitioned layer above the single compressed table:
// a Sharded table is N independent COHANA tables, one per user-hash
// partition. Every user's activity tuples live in exactly one shard (the
// same clustering property that keeps a user inside one chunk, lifted one
// level up), so shards build, compact and scan independently — per-shard
// work never needs a distinct-count correction when partial accumulators
// merge, exactly as chunk partials merge today.
//
// Each shard keeps its own global dictionaries. Cohort keys stay comparable
// across shards because the execution paths encode string cohort attributes
// by value, never by dictionary id (see cohort.Compiled.appendKey), so the
// per-shard dictionaries together behave as one table-level dictionary view:
// LookupString answers presence across all shards, and equal values compare
// byte-for-byte no matter which shard produced them.

// ShardOf routes a user to its owning shard: FNV-1a over the user id modulo
// the shard count. Every layer that partitions by user — build, ingestion
// routing, journal replay — must agree on this function.
func ShardOf(user string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(user))
	return int(h.Sum64() % uint64(shards))
}

// Sharded is a user-hash-partitioned COHANA table: one immutable compressed
// Table per shard, all sharing one schema.
type Sharded struct {
	schema *activity.Schema
	shards []*Table
}

// SingleShard wraps a legacy single table as a 1-shard table — the migration
// path for .cohana files written before sharding existed.
func SingleShard(t *Table) *Sharded {
	return &Sharded{schema: t.Schema(), shards: []*Table{t}}
}

// NewSharded assembles a sharded table from per-shard tables, which must all
// share one schema (structurally — see ReadSharded for the pointer
// normalization of freshly deserialized shards). The slice is adopted, not
// copied. NewSharded never mutates the tables: it is called from concurrent
// compaction paths where other shards are being read.
func NewSharded(shards []*Table) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("storage: sharded table needs at least one shard")
	}
	schema := shards[0].Schema()
	for i, sh := range shards[1:] {
		if !schema.Equal(sh.Schema()) {
			return nil, fmt.Errorf("storage: shard %d schema differs from shard 0", i+1)
		}
	}
	return &Sharded{schema: schema, shards: shards}, nil
}

// BuildSharded partitions a sorted activity table into shards user hash and
// compresses every shard, building shards concurrently (per-shard builds are
// independent, so table build scales with the shard count). shards <= 1
// builds a 1-shard table.
func BuildSharded(t *activity.Table, shards int, opts Options) (*Sharded, error) {
	if !t.Sorted() {
		return nil, fmt.Errorf("storage: input table must be sorted by primary key")
	}
	if shards <= 1 {
		st, err := Build(t, opts)
		if err != nil {
			return nil, err
		}
		return SingleShard(st), nil
	}
	parts, err := PartitionByUser(t, shards)
	if err != nil {
		return nil, err
	}
	out := make([]*Table, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		//lint:allow goroutinepool build fan-out bounded by the shard count and joined below; storage sits under the cohort pool layer (import cycle)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = Build(parts[i], opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("storage: building shard %d: %w", i, err)
		}
	}
	return &Sharded{schema: t.Schema(), shards: out}, nil
}

// PartitionByUser splits a sorted activity table into per-shard activity
// tables by user hash. Whole user blocks move together, and each shard
// receives an ordered subsequence of the sorted input, so every part is
// already in (Au, At, Ae) order.
func PartitionByUser(t *activity.Table, shards int) ([]*activity.Table, error) {
	if !t.Sorted() {
		return nil, fmt.Errorf("storage: input table must be sorted by primary key")
	}
	schema := t.Schema()
	parts := make([]*activity.Table, shards)
	for i := range parts {
		parts[i] = activity.NewTable(schema)
	}
	t.UserBlocks(func(user string, start, end int) {
		parts[ShardOf(user, shards)].AppendRows(t, start, end)
	})
	for i, p := range parts {
		if err := p.AssertSortedByPK(); err != nil {
			return nil, fmt.Errorf("storage: shard %d partition out of order: %w", i, err)
		}
	}
	return parts, nil
}

// Schema returns the shared schema.
func (s *Sharded) Schema() *activity.Schema { return s.schema }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns the i-th shard's table.
func (s *Sharded) Shard(i int) *Table { return s.shards[i] }

// Shards returns the backing shard slice. Callers must not mutate it.
func (s *Sharded) Shards() []*Table { return s.shards }

// WithShard returns a copy of the sharded table with shard i replaced — the
// swap primitive per-shard compaction uses (tables are immutable, so the
// untouched shards are shared, not copied).
func (s *Sharded) WithShard(i int, t *Table) *Sharded {
	shards := make([]*Table, len(s.shards))
	copy(shards, s.shards)
	shards[i] = t
	return &Sharded{schema: s.schema, shards: shards}
}

// NumRows returns the total tuples across shards.
func (s *Sharded) NumRows() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.NumRows()
	}
	return n
}

// NumUsers returns the total distinct users across shards (a user lives in
// exactly one shard, so shard counts add).
func (s *Sharded) NumUsers() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.NumUsers()
	}
	return n
}

// NumChunks returns the total chunk count across shards.
func (s *Sharded) NumChunks() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.NumChunks()
	}
	return n
}

// ChunkSize returns the configured target chunk size (shared by all shards).
func (s *Sharded) ChunkSize() int { return s.shards[0].ChunkSize() }

// EncodedSize returns the total serialized bytes across shards — the
// Figure 7 storage metric for the whole sharded table.
func (s *Sharded) EncodedSize() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.EncodedSize()
	}
	return n
}

// HasString reports whether value v of string column col occurs anywhere in
// the table — the table-level dictionary view over the per-shard global
// dictionaries.
func (s *Sharded) HasString(col int, v string) bool {
	for _, sh := range s.shards {
		if _, ok := sh.LookupString(col, v); ok {
			return true
		}
	}
	return false
}

// Materialize decodes every shard back into one sorted activity table — the
// inverse of BuildSharded, used by load-time resharding.
func (s *Sharded) Materialize() (*activity.Table, error) {
	if len(s.shards) == 1 {
		return s.shards[0].Materialize()
	}
	out := activity.NewTable(s.schema)
	for _, sh := range s.shards {
		part, err := sh.Materialize()
		if err != nil {
			return nil, err
		}
		out.AppendRows(part, 0, part.Len())
	}
	// Shards interleave users in global (Au, At, Ae) order, so the
	// concatenation needs one re-sort.
	if err := out.SortByPK(); err != nil {
		return nil, fmt.Errorf("storage: materialized shards conflict: %w", err)
	}
	return out, nil
}
