package storage

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/activity"
	"repro/internal/encoding"
)

// A chunk segment is the unit of incremental persistence: one chunk,
// serialized *self-contained*. Where the in-memory chunk references the
// shard's global dictionaries by global-id, the segment stores the values
// themselves — the user runs carry user strings, the chunk dictionaries carry
// their string values — so a chunk's bytes depend only on its own rows. A
// compaction that grows the shard's global dictionary therefore never changes
// the bytes of an untouched chunk, which is what lets the manifest commit
// skip rewriting it. The bit-packed payloads and frame-of-reference columns
// are chunk-local in both representations and are stored verbatim.
//
// Loading a shard reverses the split: the per-chunk value lists merge into
// fresh global dictionaries, each chunk's values remap to global-ids, and the
// bit-packed payloads are adopted untouched (chunk-ids index the chunk
// dictionary, whose cardinality is unchanged by the remap).

// chunkMagic identifies and versions the self-contained chunk segment format.
const chunkMagic = "COHANAC1"

// appendChunkSegment serializes ch self-contained, resolving dictionary ids
// to values through the owning table's global dictionaries.
func appendChunkSegment(dst []byte, schema *activity.Schema, dicts []*encoding.Dict, ch *Chunk) []byte {
	dst = append(dst, chunkMagic...)
	dst = binary.AppendUvarint(dst, uint64(ch.numRows))
	userCol := schema.UserCol()
	dst = binary.AppendUvarint(dst, uint64(ch.users.NumRuns()))
	for r := 0; r < ch.users.NumRuns(); r++ {
		run := ch.users.Run(r)
		var u string
		if d := dicts[userCol]; d != nil {
			u = d.Value(run.Value)
		} else {
			// Lazy tables have no user dictionary; the chunk carries its
			// own users with virtual ids userBase, userBase+1, …
			u = ch.userVals[run.Value-ch.userBase]
		}
		dst = binary.AppendUvarint(dst, uint64(len(u)))
		dst = append(dst, u...)
		dst = binary.AppendUvarint(dst, uint64(run.Length))
	}
	for c := 0; c < schema.NumCols(); c++ {
		if c == userCol {
			continue
		}
		if schema.IsStringCol(c) {
			cd := ch.cols[c].cdict
			dst = binary.AppendUvarint(dst, uint64(cd.Len()))
			for i := 0; i < cd.Len(); i++ {
				v := dicts[c].Value(cd.GlobalID(uint64(i)))
				dst = binary.AppendUvarint(dst, uint64(len(v)))
				dst = append(dst, v...)
			}
			dst = ch.cols[c].ids.AppendTo(dst)
		} else {
			dst = ch.cols[c].ints.AppendTo(dst)
		}
	}
	return dst
}

// segmentBytes serializes chunk i of st as a self-contained segment.
func (st *Table) segmentBytes(i int) []byte {
	return appendChunkSegment(nil, st.schema, st.dicts, st.chunks[i])
}

// segmentHash returns the content hash naming chunk i's segment file — the
// first 128 bits of SHA-256 over the segment bytes, hex-encoded (a
// collision-resistant hash, so adversarial chunk contents cannot alias two
// different chunks onto one segment file) — computing and caching it on
// first use. Chunks carried over from a previous layout share the cache, so
// an incremental commit hashes only the chunks a compaction actually
// rebuilt.
func (st *Table) segmentHash(i int) string {
	info := st.chunks[i].seg
	info.once.Do(func() {
		sum := sha256.Sum256(st.segmentBytes(i))
		info.hash = hex.EncodeToString(sum[:16])
	})
	return info.hash
}

// segChunk is a decoded self-contained chunk segment, values not yet bound to
// any global dictionary.
type segChunk struct {
	numRows int
	users   []string // distinct users in run order (ascending)
	lengths []uint32 // run length per user
	vals    [][]string
	ids     []*encoding.BitPacked
	ints    []*encoding.FrameOfRef
}

// decodeString reads one length-prefixed string.
func decodeString(src []byte) (string, []byte, error) {
	l, k := binary.Uvarint(src)
	if k <= 0 || uint64(len(src)-k) < l {
		return "", nil, fmt.Errorf("storage: truncated string")
	}
	src = src[k:]
	return string(src[:l]), src[l:], nil
}

// decodeChunkSegment parses a segment produced by appendChunkSegment.
func decodeChunkSegment(src []byte, schema *activity.Schema) (*segChunk, error) {
	if len(src) < len(chunkMagic) || string(src[:len(chunkMagic)]) != chunkMagic {
		return nil, fmt.Errorf("storage: bad magic (not a COHANA chunk segment)")
	}
	src = src[len(chunkMagic):]
	rows, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, fmt.Errorf("storage: truncated segment header")
	}
	src = src[k:]
	nusers, k := binary.Uvarint(src)
	if k <= 0 || nusers > uint64(len(src))+1 {
		return nil, fmt.Errorf("storage: truncated segment user count")
	}
	src = src[k:]
	sc := &segChunk{
		numRows: int(rows),
		users:   make([]string, nusers),
		lengths: make([]uint32, nusers),
		vals:    make([][]string, schema.NumCols()),
		ids:     make([]*encoding.BitPacked, schema.NumCols()),
		ints:    make([]*encoding.FrameOfRef, schema.NumCols()),
	}
	var err error
	total := uint64(0)
	for i := range sc.users {
		if sc.users[i], src, err = decodeString(src); err != nil {
			return nil, fmt.Errorf("storage: segment user %d: %w", i, err)
		}
		if i > 0 && sc.users[i] <= sc.users[i-1] {
			return nil, fmt.Errorf("storage: segment users out of order at %d", i)
		}
		l, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, fmt.Errorf("storage: truncated run length for user %d", i)
		}
		if l > math.MaxUint32 {
			// Lengths are stored as uint32 in the in-memory RLE; a larger
			// value would silently truncate and desynchronize the run totals
			// from the column payloads.
			return nil, fmt.Errorf("storage: run length %d for user %d overflows", l, i)
		}
		src = src[k:]
		sc.lengths[i] = uint32(l)
		total += l
	}
	if total != rows {
		return nil, fmt.Errorf("storage: segment user runs sum to %d rows, header says %d", total, rows)
	}
	for c := 0; c < schema.NumCols(); c++ {
		if c == schema.UserCol() {
			continue
		}
		if schema.IsStringCol(c) {
			n, k := binary.Uvarint(src)
			if k <= 0 || n > uint64(len(src))+1 {
				return nil, fmt.Errorf("storage: truncated segment dict for column %d", c)
			}
			src = src[k:]
			vals := make([]string, n)
			for i := range vals {
				if vals[i], src, err = decodeString(src); err != nil {
					return nil, fmt.Errorf("storage: segment dict column %d entry %d: %w", c, i, err)
				}
				if i > 0 && vals[i] <= vals[i-1] {
					return nil, fmt.Errorf("storage: segment dict column %d out of order at %d", c, i)
				}
			}
			sc.vals[c] = vals
			if sc.ids[c], src, err = encoding.DecodeBitPacked(src); err != nil {
				return nil, fmt.Errorf("storage: segment column %d ids: %w", c, err)
			}
		} else {
			if sc.ints[c], src, err = encoding.DecodeFrameOfRef(src); err != nil {
				return nil, fmt.Errorf("storage: segment column %d ints: %w", c, err)
			}
		}
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("storage: %d trailing segment bytes", len(src))
	}
	return sc, nil
}

// assembleShard binds decoded chunk segments — which must arrive in user-range
// order — back into one Table: fresh global dictionaries are built from the
// per-chunk value lists, each chunk's structures remap onto them, and the
// bit-packed payloads are adopted as-is. hashes carries each chunk's content
// hash (from its segment file name) so reloaded chunks keep their segment
// identity without re-serializing.
func assembleShard(schema *activity.Schema, chunkSize int, segs []*segChunk, hashes []string) (*Table, error) {
	st := &Table{
		schema:    schema,
		chunkSize: chunkSize,
		dicts:     make([]*encoding.Dict, schema.NumCols()),
		globalMin: make([]int64, schema.NumCols()),
		globalMax: make([]int64, schema.NumCols()),
	}
	userCol := schema.UserCol()
	var allUsers []string
	for si, sc := range segs {
		if len(sc.users) > 0 && len(allUsers) > 0 && sc.users[0] <= allUsers[len(allUsers)-1] {
			return nil, fmt.Errorf("storage: chunk %d user range overlaps its predecessor", si)
		}
		allUsers = append(allUsers, sc.users...)
	}
	st.dicts[userCol] = encoding.BuildDict(allUsers)
	for c := 0; c < schema.NumCols(); c++ {
		if c == userCol || !schema.IsStringCol(c) {
			continue
		}
		var vals []string
		for _, sc := range segs {
			vals = append(vals, sc.vals[c]...)
		}
		st.dicts[c] = encoding.BuildDict(vals)
	}
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			continue
		}
		for i, sc := range segs {
			f := sc.ints[c]
			if i == 0 || f.Min() < st.globalMin[c] {
				st.globalMin[c] = f.Min()
			}
			if i == 0 || f.Max() > st.globalMax[c] {
				st.globalMax[c] = f.Max()
			}
		}
	}
	for si, sc := range segs {
		ch := &Chunk{numRows: sc.numRows, cols: make([]chunkColumn, schema.NumCols()), seg: &segInfo{}}
		if hashes != nil && hashes[si] != "" {
			ch.seg.once.Do(func() { ch.seg.hash = hashes[si] })
		}
		gids := make([]uint64, len(sc.users))
		for i, u := range sc.users {
			gid, ok := st.dicts[userCol].Lookup(u)
			if !ok {
				return nil, fmt.Errorf("storage: user %q missing from assembled dictionary", u)
			}
			gids[i] = gid
		}
		ch.users = encoding.RLEFromRuns(gids, sc.lengths)
		for c := 0; c < schema.NumCols(); c++ {
			if c == userCol {
				continue
			}
			if schema.IsStringCol(c) {
				ids := make([]uint64, len(sc.vals[c]))
				for i, v := range sc.vals[c] {
					gid, ok := st.dicts[c].Lookup(v)
					if !ok {
						return nil, fmt.Errorf("storage: value %q missing from assembled dictionary", v)
					}
					ids[i] = gid
				}
				cd, err := encoding.ChunkDictFromIDs(ids)
				if err != nil {
					return nil, fmt.Errorf("storage: chunk %d column %d: %w", si, c, err)
				}
				ch.cols[c] = chunkColumn{cdict: cd, ids: sc.ids[c]}
			} else {
				ch.cols[c] = chunkColumn{ints: sc.ints[c]}
			}
		}
		st.numRows += sc.numRows
		st.numUsers += len(sc.users)
		st.chunks = append(st.chunks, ch)
	}
	return st, nil
}
