// Package storage implements COHANA's activity table storage format
// (Section 4.1 of the paper): the table is kept in (Au, At, Ae) order,
// horizontally partitioned into user-aligned chunks, and stored column by
// column inside each chunk with per-type compression —
//
//   - user column: run-length encoded (u, f, n) triples over global user ids;
//   - string columns: two-level dictionary encoding (global dictionary of
//     sorted values, per-chunk dictionary of sorted global-ids, bit-packed
//     chunk-ids);
//   - integer and time columns: two-level delta (frame-of-reference)
//     encoding with global and per-chunk [min, max] ranges, bit-packed
//     deltas.
//
// Bit-packed values are randomly accessible without decompression, and the
// chunk dictionaries / chunk ranges support the chunk-pruning step of
// Section 4.2.
package storage

import (
	"fmt"
	"sync"

	"repro/internal/activity"
	"repro/internal/encoding"
)

// DefaultChunkSize is the paper's default chunk size of 256K tuples
// (Section 5.1).
const DefaultChunkSize = 256 * 1024

// Options configures table construction.
type Options struct {
	// ChunkSize is the target number of activity tuples per chunk. Chunks
	// are closed at the first user boundary at or past this size, so every
	// user's tuples land in exactly one chunk (the clustering property).
	ChunkSize int
}

func (o Options) chunkSize() int {
	if o.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return o.ChunkSize
}

// Table is a compressed, chunked, columnar activity table.
type Table struct {
	schema    *activity.Schema
	chunkSize int
	numRows   int
	numUsers  int

	// dicts[c] is the global dictionary for string column c (nil for
	// integer columns). The user column's dictionary is dicts[schema.UserCol()]
	// — except on lazy tables, which have none: user ids are virtual
	// (chunkMeta.userBase + local index) and resolve via UserString.
	dicts []*encoding.Dict
	// globalMin/globalMax hold the global range of integer column c.
	globalMin, globalMax []int64

	// chunks[i] is the decoded payload of chunk i. On lazy tables a nil
	// entry means the chunk is cold; slots of non-perm chunks are guarded by
	// lazy.cache.mu and accessed through PinChunk.
	chunks []*Chunk

	// lazy is non-nil when the table loads chunk payloads on demand.
	lazy *lazyState
}

// Chunk is one horizontal partition holding complete user blocks.
type Chunk struct {
	numRows int
	users   *encoding.RLE // global user ids, one run per user
	cols    []chunkColumn // indexed by schema column; user column entry unused

	// seg lazily caches the content hash of the chunk's self-contained
	// segment encoding; incremental persistence skips re-serializing (and
	// re-writing) chunks whose segment file already exists on disk. A chunk
	// whose dictionaries were remapped without touching its rows shares the
	// pointer with its predecessor — the segment encodes values, not global
	// ids, so the content (and hash) is unchanged.
	seg *segInfo

	// userVals/userBase stand in for the user dictionary on lazy tables:
	// the chunk's distinct users in ascending order, whose global ids are
	// userBase, userBase+1, … (nil/0 on eager tables).
	userVals []string
	userBase uint64
}

// segInfo is the shared lazily-computed segment identity of a chunk: the
// hex-encoded truncated SHA-256 of its self-contained segment encoding.
type segInfo struct {
	once sync.Once
	hash string
}

type chunkColumn struct {
	// For string columns:
	cdict *encoding.ChunkDict
	ids   *encoding.BitPacked // chunk-ids
	// For integer/time columns:
	ints *encoding.FrameOfRef
}

// Build compresses a sorted activity table into the COHANA format.
func Build(t *activity.Table, opts Options) (*Table, error) {
	if !t.Sorted() {
		return nil, fmt.Errorf("storage: input table must be sorted by primary key")
	}
	schema := t.Schema()
	st := &Table{
		schema:    schema,
		chunkSize: opts.chunkSize(),
		numRows:   t.Len(),
		dicts:     make([]*encoding.Dict, schema.NumCols()),
		globalMin: make([]int64, schema.NumCols()),
		globalMax: make([]int64, schema.NumCols()),
	}
	// Global dictionaries and ranges.
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			st.dicts[c] = encoding.BuildDict(t.Strings(c))
			continue
		}
		vals := t.Ints(c)
		if len(vals) > 0 {
			mn, mx := vals[0], vals[0]
			for _, v := range vals[1:] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			st.globalMin[c], st.globalMax[c] = mn, mx
		}
	}
	gids, err := globalIDs(t, schema, st.dicts)
	if err != nil {
		return nil, err
	}
	chunks, users, err := encodeChunks(t, schema, gids, st.chunkSize)
	if err != nil {
		return nil, err
	}
	st.chunks, st.numUsers = chunks, users
	return st, nil
}

// globalIDs pre-encodes every string column to global ids once, through a
// hash map built per column (a per-value binary search would dominate
// compression time, the Figure 10 metric). Non-string columns stay nil.
func globalIDs(t *activity.Table, schema *activity.Schema, dicts []*encoding.Dict) ([][]uint64, error) {
	gids := make([][]uint64, schema.NumCols())
	for c := 0; c < schema.NumCols(); c++ {
		if !schema.IsStringCol(c) {
			continue
		}
		d := dicts[c]
		if d == nil {
			// Lazy tables carry no user dictionary; the merge synthesizes
			// virtual user ids itself before encoding.
			continue
		}
		lookup := make(map[string]uint64, d.Len())
		for id, v := range d.Values() {
			lookup[v] = uint64(id)
		}
		col := t.Strings(c)
		out := make([]uint64, len(col))
		for i, v := range col {
			id, ok := lookup[v]
			if !ok {
				return nil, fmt.Errorf("storage: value %q missing from its own dictionary", v)
			}
			out[i] = id
		}
		gids[c] = out
	}
	return gids, nil
}

// encodeChunks splits sorted rows into whole-user chunks — accumulating user
// blocks until the target size, the clustering rule of Section 4.1 — and
// encodes each under the given pre-computed global ids. It is shared by the
// full table build and the chunk-granular merge so both produce identical
// chunk encodings.
func encodeChunks(t *activity.Table, schema *activity.Schema, gids [][]uint64, target int) ([]*Chunk, int, error) {
	var start, users int
	var blockEnds []int
	t.UserBlocks(func(_ string, _, end int) {
		users++
		blockEnds = append(blockEnds, end)
	})
	var chunks []*Chunk
	for _, end := range blockEnds {
		if end-start >= target || end == t.Len() {
			chunk, err := buildChunk(t, schema, gids, start, end)
			if err != nil {
				return nil, 0, err
			}
			chunks = append(chunks, chunk)
			start = end
		}
	}
	return chunks, users, nil
}

func buildChunk(t *activity.Table, schema *activity.Schema, gids [][]uint64, start, end int) (*Chunk, error) {
	ch := &Chunk{numRows: end - start, cols: make([]chunkColumn, schema.NumCols()), seg: &segInfo{}}
	ch.users = encoding.EncodeRLE(gids[schema.UserCol()][start:end])
	for c := 0; c < schema.NumCols(); c++ {
		if c == schema.UserCol() {
			continue
		}
		if schema.IsStringCol(c) {
			seg := gids[c][start:end]
			cdict := encoding.BuildChunkDict(seg)
			ch.cols[c] = chunkColumn{cdict: cdict, ids: encoding.PackUint64(cdict.Encode(seg))}
		} else {
			ch.cols[c] = chunkColumn{ints: encoding.EncodeFrameOfRef(t.Ints(c)[start:end])}
		}
	}
	return ch, nil
}

// Schema returns the table schema.
func (st *Table) Schema() *activity.Schema { return st.schema }

// NumRows returns the total number of activity tuples.
func (st *Table) NumRows() int { return st.numRows }

// NumUsers returns the total number of distinct users.
func (st *Table) NumUsers() int { return st.numUsers }

// NumChunks returns the number of chunks.
func (st *Table) NumChunks() int { return len(st.chunks) }

// ChunkSize returns the configured target chunk size.
func (st *Table) ChunkSize() int { return st.chunkSize }

// Chunk returns the i-th chunk's decoded payload. On lazy tables it reads
// the slot under the cache lock and panics when the chunk is cold — scan
// paths must hold it via PinChunk; Chunk is for eager tables and
// already-pinned access.
func (st *Table) Chunk(i int) *Chunk {
	if st.lazy != nil && !st.lazy.metas[i].perm {
		st.lazy.cache.mu.Lock()
		ch := st.chunks[i]
		st.lazy.cache.mu.Unlock()
		if ch == nil {
			panic("storage: cold lazy chunk accessed without PinChunk")
		}
		return ch
	}
	return st.chunks[i]
}

// RowOffset returns the global row index of the first tuple of chunk i;
// chunk-local row r corresponds to global row RowOffset(i)+r in the source
// table's primary-key order.
func (st *Table) RowOffset(i int) int {
	off := 0
	if st.lazy != nil {
		for k := 0; k < i; k++ {
			off += st.lazy.metas[k].rows
		}
		return off
	}
	for k := 0; k < i; k++ {
		off += st.chunks[k].numRows
	}
	return off
}

// Dict returns the global dictionary of a string column, or nil for integer
// columns.
func (st *Table) Dict(col int) *encoding.Dict { return st.dicts[col] }

// GlobalRange returns the global [min, max] of an integer column.
func (st *Table) GlobalRange(col int) (int64, int64) { return st.globalMin[col], st.globalMax[col] }

// LookupString returns the global-id of value v in column col, or false if v
// never occurs in the table.
func (st *Table) LookupString(col int, v string) (uint64, bool) {
	d := st.dicts[col]
	if d == nil {
		return 0, false
	}
	return d.Lookup(v)
}

// NumRows returns the number of tuples in the chunk.
func (c *Chunk) NumRows() int { return c.numRows }

// NumUsers returns the number of distinct users in the chunk (one RLE run
// per user thanks to the sorted order).
func (c *Chunk) NumUsers() int { return c.users.NumRuns() }

// UserRun returns the i-th (u, f, n) triple of the chunk's user column:
// global user id, first row, and run length.
func (c *Chunk) UserRun(i int) (gid uint64, first, n int) {
	r := c.users.Run(i)
	return r.Value, int(r.Start), int(r.Length)
}

// StringID returns the global-id of string column col at row.
func (c *Chunk) StringID(col, row int) uint64 {
	cc := &c.cols[col]
	return cc.cdict.GlobalID(cc.ids.Get(row))
}

// ChunkID returns the raw chunk-id of string column col at row — the value
// as stored, without the chunk-dict → global-dict translation. Predicate
// pushdown compares these directly against a literal's chunk-id (resolved
// once per chunk via ChunkIDOf), so an equality check per row is one
// bit-packed read and an integer compare.
func (c *Chunk) ChunkID(col, row int) uint64 { return c.cols[col].ids.Get(row) }

// AppendChunkIDs appends the raw chunk-ids of string column col for rows
// [start, end) to dst — the batch form of ChunkID. The run-aware kernels
// extract a user block's codes once and evaluate predicates per run of equal
// ids instead of per row.
func (c *Chunk) AppendChunkIDs(dst []uint64, col, start, end int) []uint64 {
	return c.cols[col].ids.AppendRange(dst, start, end)
}

// AppendRawInts appends the frame-of-reference deltas of integer column col
// for rows [start, end) to dst — the batch form of Ints(col).Raw.
func (c *Chunk) AppendRawInts(dst []uint64, col, start, end int) []uint64 {
	return c.cols[col].ints.AppendRaw(dst, start, end)
}

// ChunkIDOf translates a global-id to this chunk's chunk-id, or false when
// the value does not occur in the chunk (every row fails an equality against
// it). This is the per-chunk binding step of predicate pushdown.
func (c *Chunk) ChunkIDOf(col int, gid uint64) (uint64, bool) {
	return c.cols[col].cdict.ChunkID(gid)
}

// Int returns the value of integer column col at row.
func (c *Chunk) Int(col, row int) int64 { return c.cols[col].ints.Get(row) }

// Ints returns the frame-of-reference encoding of integer column col,
// exposing the encoded delta domain (Raw/DeltaOf) to predicate pushdown.
func (c *Chunk) Ints(col int) *encoding.FrameOfRef { return c.cols[col].ints }

// HasGlobalID reports whether global-id gid of string column col occurs in
// this chunk — the binary search on the chunk dictionary used for pruning.
func (c *Chunk) HasGlobalID(col int, gid uint64) bool {
	_, ok := c.cols[col].cdict.ChunkID(gid)
	return ok
}

// IntRange returns the chunk [min, max] of integer column col, used to prune
// chunks against range predicates.
func (c *Chunk) IntRange(col int) (int64, int64) {
	f := c.cols[col].ints
	return f.Min(), f.Max()
}

// ChunkCardinality returns the number of distinct values of string column
// col within the chunk.
func (c *Chunk) ChunkCardinality(col int) int { return c.cols[col].cdict.Len() }
