package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/activity"
	"repro/internal/gen"
)

// Crash injection for the manifest commit protocol: segment files land
// before the manifest rename, so a crash between the two must leave the
// previous manifest serving the pre-compaction state, and the orphaned
// segments must be swept by the next successful commit — no stale-segment
// leaks, no corruption.

// mustRows materializes a sharded table for comparison.
func mustRows(t *testing.T, s *Sharded) *activity.Table {
	t.Helper()
	rows, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func requireSameRows(t *testing.T, label string, got, want *activity.Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	schema := want.Schema()
	for c := 0; c < schema.NumCols(); c++ {
		if schema.IsStringCol(c) {
			for i, v := range want.Strings(c) {
				if got.Strings(c)[i] != v {
					t.Fatalf("%s: row %d col %d: %q != %q", label, i, c, got.Strings(c)[i], v)
				}
			}
		} else {
			for i, v := range want.Ints(c) {
				if got.Ints(c)[i] != v {
					t.Fatalf("%s: row %d col %d: %d != %d", label, i, c, got.Ints(c)[i], v)
				}
			}
		}
	}
}

func TestCrashBetweenSegmentsAndManifestRename(t *testing.T) {
	src := gen.Generate(gen.Config{Users: 50, Days: 10, MeanActions: 9, Seed: 31})
	if err := src.SortByPK(); err != nil {
		t.Fatal(err)
	}
	sealed, err := BuildSharded(src, 2, Options{ChunkSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.cohana")
	if _, err := CommitSharded(path, sealed); err != nil {
		t.Fatal(err)
	}
	wantA := mustRows(t, sealed)

	// Build the post-compaction layout B for shard 0 (a small delta of
	// fresh rows), then simulate the crash: write B's new chunk segments to
	// disk but never rename the manifest.
	batch := activity.NewTable(src.Schema())
	for i := 0; i < 40; i++ {
		row := make([]any, 0, 8)
		row = append(row, "crash-user", int64(2_000_000_000+i), "shop", "China", "Beijing", "mage", int64(1), int64(i))
		if err := batch.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.SortByPK(); err != nil {
		t.Fatal(err)
	}
	si := ShardOf("crash-user", 2)
	newShard, rebuilt, _, err := MergeDelta(sealed.Shard(si), batch, Options{ChunkSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == 0 {
		t.Fatal("merge rebuilt no chunks")
	}
	layoutB := sealed.WithShard(si, newShard)
	orphans := 0
	for ci := 0; ci < newShard.NumChunks(); ci++ {
		name := segmentName(path, newShard.segmentHash(ci))
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			continue // shared with layout A
		}
		if err := atomicWriteFile(filepath.Join(dir, name), newShard.segmentBytes(ci)); err != nil {
			t.Fatal(err)
		}
		orphans++
	}
	if orphans == 0 {
		t.Fatal("crash simulation wrote no orphan segments")
	}

	// Reopen: the old manifest still serves exactly the pre-compaction
	// state; the orphans are invisible.
	back, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, "after crash", mustRows(t, back), wantA)

	// The next successful commit (the compaction retried) adopts the
	// already-written segments — zero segment writes — and the sweep leaves
	// exactly the referenced files behind: no stale-segment leaks.
	stats, err := CommitSharded(path, layoutB)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsWritten != 0 {
		t.Fatalf("retried commit rewrote %d segments, want 0 (orphans adopted)", stats.SegmentsWritten)
	}
	keep := map[string]bool{}
	for si := 0; si < layoutB.NumShards(); si++ {
		sh := layoutB.Shard(si)
		for ci := 0; ci < sh.NumChunks(); ci++ {
			keep[segmentName(path, sh.segmentHash(ci))] = true
		}
	}
	for _, f := range listSegments(path) {
		if !keep[filepath.Base(f)] {
			t.Fatalf("stale segment %s survived the sweep", filepath.Base(f))
		}
	}
	if got := len(listSegments(path)); got != len(keep) {
		t.Fatalf("%d segments on disk, want %d", got, len(keep))
	}
	backB, err := ReadSharded(path)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, "after retried commit", mustRows(t, backB), mustRows(t, layoutB))
}

// TestCrashAfterManifestRenameBeforeSweep covers the other window: the new
// manifest is committed but the process dies before sweeping the segments
// only the old manifest referenced. Reload must serve the new state, and the
// next commit must clean the leftovers.
func TestCrashAfterManifestRenameBeforeSweep(t *testing.T) {
	src := gen.Generate(gen.Config{Users: 40, Days: 8, MeanActions: 8, Seed: 37})
	if err := src.SortByPK(); err != nil {
		t.Fatal(err)
	}
	sealed, err := BuildSharded(src, 1, Options{ChunkSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.cohana")
	if _, err := CommitSharded(path, sealed); err != nil {
		t.Fatal(err)
	}
	// Plant a stale segment, as if an earlier layout's file escaped its
	// sweep (crash after rename, before sweep).
	stale := filepath.Join(dir, segmentName(path, "deadbeefdeadbeefdeadbeefdeadbeef"))
	if err := atomicWriteFile(stale, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSharded(path)
	if err != nil {
		t.Fatalf("stale segment broke the load: %v", err)
	}
	requireSameRows(t, "with stale segment", mustRows(t, back), mustRows(t, sealed))
	if _, err := CommitSharded(path, sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale segment survived the next commit's sweep")
	}
}
