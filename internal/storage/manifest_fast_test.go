package storage

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/activity"
)

// manifestBody commits the shared workload and returns the raw v3 manifest
// JSON (magic stripped).
func manifestBody(t *testing.T) []byte {
	t.Helper()
	path := commitWorkload(t, 4, 128)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:len(shardMagicV3)]) != shardMagicV3 {
		t.Fatalf("commit did not write a v3 manifest (magic %q)", buf[:len(shardMagicV2)])
	}
	return buf[len(shardMagicV3):]
}

// TestFastManifestMatchesEncodingJSON pins the fast parser's contract on a
// real committed manifest: it must succeed, and its result must be exactly
// what encoding/json produces.
func TestFastManifestMatchesEncodingJSON(t *testing.T) {
	body := manifestBody(t)
	fast, ok := fastManifestV3(body)
	if !ok {
		t.Fatalf("fast parser rejected a manifest CommitSharded wrote:\n%s", body)
	}
	slow := new(manifestV3JSON)
	if err := json.Unmarshal(body, slow); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("fast parse differs from encoding/json:\nfast: %+v\nslow: %+v", fast, slow)
	}
}

// TestFastManifestConservative enumerates inputs the fast parser must hand
// to the fallback (ok=false) and variants it must still parse identically.
func TestFastManifestConservative(t *testing.T) {
	accept := []string{
		`{}`,
		`{"version":3,"chunkSize":16,"schema":{"cols":[{"name":"u","type":1,"kind":2}]},"shards":[]}`,
		` { "version" : 3 , "shards" : [ ] } `, // whitespace everywhere
		`{"shards":[{"dicts":[null,["a","b"],[]],"intMin":[-5,0],"intMax":[5,9]}]}`,
		`{"shards":[{"chunks":[{"file":"x.cohseg","rows":10,"users":2,"minUser":"a","maxUser":"b","bytes":123,"cols":[{},{"values":[0,3]},{"min":-1,"max":7}]}]}]}`,
		`{"chunkSize":3,"version":1}`, // reordered keys
		`{"version":2,"version":3}`,   // duplicate keys: last wins
	}
	for _, in := range accept {
		fast, ok := fastManifestV3([]byte(in))
		if !ok {
			t.Errorf("fast parser rejected %s", in)
			continue
		}
		slow := new(manifestV3JSON)
		if err := json.Unmarshal([]byte(in), slow); err != nil {
			t.Errorf("encoding/json rejected %s: %v", in, err)
			continue
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("parse of %s differs:\nfast: %+v\nslow: %+v", in, fast, slow)
		}
	}
	reject := []string{
		``,
		`{"version":3}trailing`,
		`{"unknown":1}`,
		`{"version":3.5}`,                   // float
		`{"version":1e2}`,                   // exponent
		`{"version":007}`,                   // leading zeros (invalid JSON)
		`{"version":-3}`,                    // version is never negative... still int; fine to accept
		`{"shards":[{"dicts":[["a\"b"]]}]}`, // escape in string
		`{"shards":[{"chunks":[{"file":"\u00e9.cohseg"}]}]}`, // escape in string
		`{"version":99999999999999999999}`,                   // overflow
		`[1,2,3]`,                                            // not an object
	}
	for _, in := range reject {
		if in == `{"version":-3}` {
			continue // negative ints are fine; listed for documentation
		}
		if _, ok := fastManifestV3([]byte(in)); ok {
			t.Errorf("fast parser accepted %s, want fallback", in)
		}
	}
}

// FuzzFastManifestV3: the fast parser must never panic, and whenever it
// reports ok its result must be exactly encoding/json's — on inputs where
// encoding/json errors, the fast parser must have reported !ok.
func FuzzFastManifestV3(f *testing.F) {
	dir := f.TempDir()
	s, err := BuildSharded(activity.PaperTable1(), 2, Options{ChunkSize: 4})
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(dir, "w.cohana")
	if _, err := CommitSharded(path, s); err != nil {
		f.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	good := buf[len(shardMagicV3):]
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{"version":3,"shards":[{"dicts":[null]}]}`))
	f.Add([]byte(`{"shards":[{"chunks":[{"cols":[{"values":[1]}]}]}]}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fast, ok := fastManifestV3(data)
		if !ok {
			return
		}
		slow := new(manifestV3JSON)
		if err := json.Unmarshal(data, slow); err != nil {
			t.Fatalf("fast parser accepted input encoding/json rejects (%v):\n%q", err, data)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("fast parse differs from encoding/json on %q:\nfast: %+v\nslow: %+v", data, fast, slow)
		}
	})
}
