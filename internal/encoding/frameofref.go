package encoding

import (
	"encoding/binary"
	"fmt"
)

// FrameOfRef is the two-level delta encoding of Section 4.1 for integer
// columns: a chunk stores its own MIN and MAX, and each value is stored as
// the unsigned delta from the chunk MIN, bit-packed at fixed width. The
// (MIN, MAX) pair doubles as the chunk range used to prune chunks whose
// values cannot satisfy a range predicate.
type FrameOfRef struct {
	min, max int64
	deltas   *BitPacked
}

// EncodeFrameOfRef encodes values. Empty input yields a zero-range frame.
func EncodeFrameOfRef(values []int64) *FrameOfRef {
	if len(values) == 0 {
		return &FrameOfRef{deltas: PackUint64Width(nil, 1)}
	}
	mn, mx := values[0], values[0]
	for _, v := range values[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	deltas := make([]uint64, len(values))
	for i, v := range values {
		deltas[i] = uint64(v - mn)
	}
	return &FrameOfRef{min: mn, max: mx, deltas: PackUint64Width(deltas, BitWidth(uint64(mx-mn)))}
}

// Len returns the number of encoded values.
func (f *FrameOfRef) Len() int { return f.deltas.Len() }

// Min returns the chunk minimum.
func (f *FrameOfRef) Min() int64 { return f.min }

// Max returns the chunk maximum.
func (f *FrameOfRef) Max() int64 { return f.max }

// Get returns the i-th decoded value.
func (f *FrameOfRef) Get(i int) int64 { return f.min + int64(f.deltas.Get(i)) }

// Raw returns the i-th value in the encoded delta domain (value - MIN),
// skipping the frame-of-reference reconstruction. Predicate pushdown
// evaluates comparisons here: a threshold translated once into delta space
// turns each per-row check into a bare bit-packed read and an unsigned
// compare, never materializing the column value.
func (f *FrameOfRef) Raw(i int) uint64 { return f.deltas.Get(i) }

// AppendRaw appends the encoded deltas at positions [start, end) to dst —
// the batch form of Raw. Run-aware kernels extract a row span once and then
// detect runs of equal deltas over the plain slice; equal deltas imply equal
// column values, so a verdict per run is a verdict per value.
func (f *FrameOfRef) AppendRaw(dst []uint64, start, end int) []uint64 {
	return f.deltas.AppendRange(dst, start, end)
}

// DeltaOf translates a column value into the encoded delta domain, reporting
// below/above when the value falls outside the chunk's [MIN, MAX] range (no
// encoded value can equal it). Pushdown uses it to compile a range predicate
// once per chunk.
func (f *FrameOfRef) DeltaOf(v int64) (delta uint64, below, above bool) {
	if v < f.min {
		return 0, true, false
	}
	if v > f.max {
		return 0, false, true
	}
	return uint64(v - f.min), false, false
}

// Decode materializes all values.
func (f *FrameOfRef) Decode() []int64 {
	out := make([]int64, f.Len())
	for i := range out {
		out[i] = f.Get(i)
	}
	return out
}

// AppendTo serializes min, max (varint) followed by the packed deltas.
func (f *FrameOfRef) AppendTo(dst []byte) []byte {
	dst = binary.AppendVarint(dst, f.min)
	dst = binary.AppendVarint(dst, f.max)
	return f.deltas.AppendTo(dst)
}

// DecodeFrameOfRef reads a frame produced by AppendTo and returns the
// remaining bytes.
func DecodeFrameOfRef(src []byte) (*FrameOfRef, []byte, error) {
	mn, k := binary.Varint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("encoding: truncated frame min")
	}
	src = src[k:]
	mx, k := binary.Varint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("encoding: truncated frame max")
	}
	src = src[k:]
	deltas, rest, err := DecodeBitPacked(src)
	if err != nil {
		return nil, nil, err
	}
	return &FrameOfRef{min: mn, max: mx, deltas: deltas}, rest, nil
}
