package encoding

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitWidth(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1<<32 - 1, 32}, {1 << 32, 33}, {1<<64 - 1, 64},
	}
	for _, c := range cases {
		if got := BitWidth(c.in); got != c.want {
			t.Errorf("BitWidth(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBitPackedRoundTrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{0, 0, 0},
		{1, 2, 3, 4, 5},
		{1<<64 - 1, 0, 1<<64 - 1},
		{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
	}
	for _, values := range cases {
		b := PackUint64(values)
		got := b.Unpack()
		if len(values) == 0 {
			if b.Len() != 0 {
				t.Errorf("empty pack has len %d", b.Len())
			}
			continue
		}
		if !reflect.DeepEqual(got, values) {
			t.Errorf("round trip %v -> %v", values, got)
		}
	}
}

func TestBitPackedRandomAccessAcrossWordBoundaries(t *testing.T) {
	// Width 13 guarantees values straddle 64-bit word boundaries.
	values := make([]uint64, 1000)
	rng := rand.New(rand.NewSource(42))
	for i := range values {
		values[i] = uint64(rng.Intn(1 << 13))
	}
	b := PackUint64Width(values, 13)
	for i, want := range values {
		if got := b.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestBitPackedSerialize(t *testing.T) {
	values := []uint64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	buf := PackUint64(values).AppendTo(nil)
	got, rest, err := DecodeBitPacked(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover bytes: %d", len(rest))
	}
	if !reflect.DeepEqual(got.Unpack(), values) {
		t.Errorf("decode mismatch: %v", got.Unpack())
	}
}

func TestBitPackedPropertyRoundTrip(t *testing.T) {
	f := func(values []uint64) bool {
		b := PackUint64(values)
		if b.Len() != len(values) {
			return false
		}
		for i, v := range values {
			if b.Get(i) != v {
				return false
			}
		}
		buf := b.AppendTo(nil)
		d, rest, err := DecodeBitPacked(buf)
		if err != nil || len(rest) != 0 || d.Len() != len(values) {
			return false
		}
		for i, v := range values {
			if d.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitPackedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for value exceeding width")
		}
	}()
	PackUint64Width([]uint64{8}, 3)
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]uint64{
		{},
		{1},
		{1, 1, 1},
		{1, 2, 3},
		{5, 5, 2, 2, 2, 9, 5, 5},
	}
	for _, values := range cases {
		r := EncodeRLE(values)
		got := r.Decode()
		if len(values) == 0 {
			if r.Len() != 0 || r.NumRuns() != 0 {
				t.Errorf("empty RLE: len=%d runs=%d", r.Len(), r.NumRuns())
			}
			continue
		}
		if !reflect.DeepEqual(got, values) {
			t.Errorf("RLE round trip %v -> %v", values, got)
		}
		for i, want := range values {
			if g := r.Get(i); g != want {
				t.Errorf("RLE Get(%d) = %d, want %d", i, g, want)
			}
		}
	}
}

func TestRLERuns(t *testing.T) {
	r := EncodeRLE([]uint64{7, 7, 7, 3, 3, 9})
	want := []Run{{7, 0, 3}, {3, 3, 2}, {9, 5, 1}}
	for i, w := range want {
		if r.Run(i) != w {
			t.Errorf("run %d = %+v, want %+v", i, r.Run(i), w)
		}
	}
}

func TestRLESerialize(t *testing.T) {
	values := []uint64{1, 1, 2, 2, 2, 2, 3, 1, 1}
	buf := EncodeRLE(values).AppendTo(nil)
	got, rest, err := DecodeRLEBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover bytes: %d", len(rest))
	}
	if !reflect.DeepEqual(got.Decode(), values) {
		t.Errorf("decode mismatch: %v", got.Decode())
	}
}

func TestRLEPropertySerializeRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		// Map to a small alphabet so runs actually occur.
		values := make([]uint64, len(raw))
		for i, b := range raw {
			values[i] = uint64(b % 4)
		}
		buf := EncodeRLE(values).AppendTo(nil)
		r, rest, err := DecodeRLEBytes(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		dec := r.Decode()
		if len(dec) != len(values) {
			return false
		}
		for i := range values {
			if dec[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDictLookup(t *testing.T) {
	d := BuildDict([]string{"china", "australia", "china", "usa", "australia"})
	if d.Len() != 3 {
		t.Fatalf("dict len = %d, want 3", d.Len())
	}
	wantOrder := []string{"australia", "china", "usa"}
	if !reflect.DeepEqual(d.Values(), wantOrder) {
		t.Errorf("dict order = %v, want %v", d.Values(), wantOrder)
	}
	for i, v := range wantOrder {
		id, ok := d.Lookup(v)
		if !ok || id != uint64(i) {
			t.Errorf("Lookup(%q) = (%d, %v), want (%d, true)", v, id, ok, i)
		}
		if d.Value(uint64(i)) != v {
			t.Errorf("Value(%d) = %q, want %q", i, d.Value(uint64(i)), v)
		}
	}
	if _, ok := d.Lookup("mars"); ok {
		t.Error("Lookup of absent value succeeded")
	}
}

func TestDictSerialize(t *testing.T) {
	d := BuildDict([]string{"shop", "launch", "fight", "", "shop"})
	buf := d.AppendTo(nil)
	got, rest, err := DecodeDict(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover bytes: %d", len(rest))
	}
	if !reflect.DeepEqual(got.Values(), d.Values()) {
		t.Errorf("decode mismatch: %v vs %v", got.Values(), d.Values())
	}
}

func TestDictPropertyIDOrderMatchesValueOrder(t *testing.T) {
	f := func(values []string) bool {
		d := BuildDict(values)
		for i := 1; i < d.Len(); i++ {
			if d.Value(uint64(i-1)) >= d.Value(uint64(i)) {
				return false
			}
		}
		for _, v := range values {
			id, ok := d.Lookup(v)
			if !ok || d.Value(id) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChunkDict(t *testing.T) {
	cd := BuildChunkDict([]uint64{10, 3, 10, 7, 3})
	if cd.Len() != 3 {
		t.Fatalf("chunk dict len = %d, want 3", cd.Len())
	}
	// Sorted global ids: 3, 7, 10.
	for cid, gid := range []uint64{3, 7, 10} {
		if cd.GlobalID(uint64(cid)) != gid {
			t.Errorf("GlobalID(%d) = %d, want %d", cid, cd.GlobalID(uint64(cid)), gid)
		}
		got, ok := cd.ChunkID(gid)
		if !ok || got != uint64(cid) {
			t.Errorf("ChunkID(%d) = (%d, %v), want (%d, true)", gid, got, ok, cid)
		}
	}
	if _, ok := cd.ChunkID(5); ok {
		t.Error("ChunkID for absent global id succeeded")
	}
	enc := cd.Encode([]uint64{10, 3, 10, 7, 3})
	if !reflect.DeepEqual(enc, []uint64{2, 0, 2, 1, 0}) {
		t.Errorf("Encode = %v", enc)
	}
}

func TestChunkDictSerialize(t *testing.T) {
	cd := BuildChunkDict([]uint64{100, 2, 57, 2, 100, 3})
	buf := cd.AppendTo(nil)
	got, rest, err := DecodeChunkDict(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover bytes: %d", len(rest))
	}
	for cid := 0; cid < cd.Len(); cid++ {
		if got.GlobalID(uint64(cid)) != cd.GlobalID(uint64(cid)) {
			t.Errorf("chunk id %d: got global %d want %d", cid, got.GlobalID(uint64(cid)), cd.GlobalID(uint64(cid)))
		}
	}
}

func TestFrameOfRef(t *testing.T) {
	values := []int64{-5, 100, 42, -5, 0, 99}
	f := EncodeFrameOfRef(values)
	if f.Min() != -5 || f.Max() != 100 {
		t.Errorf("range = [%d, %d], want [-5, 100]", f.Min(), f.Max())
	}
	if !reflect.DeepEqual(f.Decode(), values) {
		t.Errorf("decode = %v", f.Decode())
	}
	for i, want := range values {
		if got := f.Get(i); got != want {
			t.Errorf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestFrameOfRefEmpty(t *testing.T) {
	f := EncodeFrameOfRef(nil)
	if f.Len() != 0 {
		t.Errorf("empty frame len = %d", f.Len())
	}
	buf := f.AppendTo(nil)
	got, _, err := DecodeFrameOfRef(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("decoded empty frame len = %d", got.Len())
	}
}

func TestFrameOfRefSerialize(t *testing.T) {
	values := []int64{1368950400, 1368950460, 1369000000, 1368950400}
	buf := EncodeFrameOfRef(values).AppendTo(nil)
	got, rest, err := DecodeFrameOfRef(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover bytes: %d", len(rest))
	}
	if !reflect.DeepEqual(got.Decode(), values) {
		t.Errorf("decode mismatch: %v", got.Decode())
	}
}

func TestFrameOfRefPropertyRoundTrip(t *testing.T) {
	f := func(values []int64) bool {
		// Keep ranges sane: the encoder's delta must fit uint64, which holds
		// for any int64 pair, but quick can generate extremes; that is the
		// interesting case, so use them as-is.
		enc := EncodeFrameOfRef(values)
		buf := enc.AppendTo(nil)
		dec, rest, err := DecodeFrameOfRef(buf)
		if err != nil || len(rest) != 0 || dec.Len() != len(values) {
			return false
		}
		for i, v := range values {
			if dec.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeBitPacked(nil); err == nil {
		t.Error("DecodeBitPacked(nil) succeeded")
	}
	if _, _, err := DecodeBitPacked([]byte{0}); err == nil {
		t.Error("DecodeBitPacked with zero width succeeded")
	}
	if _, _, err := DecodeBitPacked([]byte{8, 200}); err == nil {
		t.Error("DecodeBitPacked with truncated body succeeded")
	}
	if _, _, err := DecodeRLEBytes(nil); err == nil {
		t.Error("DecodeRLEBytes(nil) succeeded")
	}
	if _, _, err := DecodeDict(nil); err == nil {
		t.Error("DecodeDict(nil) succeeded")
	}
	if _, _, err := DecodeChunkDict(nil); err == nil {
		t.Error("DecodeChunkDict(nil) succeeded")
	}
	if _, _, err := DecodeFrameOfRef(nil); err == nil {
		t.Error("DecodeFrameOfRef(nil) succeeded")
	}
}

func TestBitPackedAppendRange(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, width := range []uint{1, 3, 7, 8, 13, 31, 33, 63, 64} {
		n := 200
		values := make([]uint64, n)
		for i := range values {
			values[i] = rng.Uint64()
			if width < 64 {
				values[i] &= 1<<width - 1
			}
		}
		b := PackUint64Width(values, width)
		// Whole-array extraction equals Get, and sub-spans (including spans
		// that start and end mid-word) slice it exactly.
		got := b.AppendRange(nil, 0, n)
		for i, v := range values {
			if got[i] != v {
				t.Fatalf("width %d: AppendRange[%d] = %d, want %d", width, i, got[i], v)
			}
		}
		for trial := 0; trial < 50; trial++ {
			start := rng.Intn(n + 1)
			end := start + rng.Intn(n+1-start)
			span := b.AppendRange(nil, start, end)
			if len(span) != end-start {
				t.Fatalf("width %d: span [%d,%d) has %d values", width, start, end, len(span))
			}
			for i, v := range span {
				if v != values[start+i] {
					t.Fatalf("width %d: span [%d,%d) pos %d = %d, want %d",
						width, start, end, i, v, values[start+i])
				}
			}
		}
		// Appending extends dst rather than replacing it.
		prefix := []uint64{7, 8, 9}
		ext := b.AppendRange(prefix, 0, 2)
		if len(ext) != 5 || ext[0] != 7 || ext[3] != values[0] {
			t.Fatalf("width %d: AppendRange did not append: %v", width, ext)
		}
	}
}

func TestFrameOfRefAppendRaw(t *testing.T) {
	values := []int64{-40, -40, -39, 0, 13, 13, 13, 90, -40}
	f := EncodeFrameOfRef(values)
	raw := f.AppendRaw(nil, 0, len(values))
	for i := range values {
		if raw[i] != f.Raw(i) {
			t.Fatalf("AppendRaw[%d] = %d, want Raw = %d", i, raw[i], f.Raw(i))
		}
		if int64(raw[i])+f.Min() != values[i] {
			t.Fatalf("delta %d does not reconstruct %d", raw[i], values[i])
		}
	}
	if sub := f.AppendRaw(nil, 2, 5); len(sub) != 3 || sub[0] != f.Raw(2) {
		t.Fatalf("AppendRaw sub-span wrong: %v", sub)
	}
}
