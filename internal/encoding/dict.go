package encoding

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Dict is a sorted global dictionary for a string column. Global-ids are the
// positions of values in the sorted order, so Lookup is a binary search and
// id comparisons preserve lexicographic value order. This is the first level
// of the two-level compression scheme of Section 4.1.
type Dict struct {
	values []string
}

// BuildDict deduplicates and sorts values into a dictionary.
func BuildDict(values []string) *Dict {
	seen := make(map[string]struct{}, len(values))
	uniq := make([]string, 0, len(values))
	for _, v := range values {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			uniq = append(uniq, v)
		}
	}
	sort.Strings(uniq)
	return &Dict{values: uniq}
}

// Len returns the dictionary cardinality.
func (d *Dict) Len() int { return len(d.values) }

// Value returns the string for a global-id.
func (d *Dict) Value(id uint64) string { return d.values[id] }

// Lookup returns the global-id of v, or false if v is not in the dictionary.
func (d *Dict) Lookup(v string) (uint64, bool) {
	i := sort.SearchStrings(d.values, v)
	if i < len(d.values) && d.values[i] == v {
		return uint64(i), true
	}
	return 0, false
}

// Values returns the sorted dictionary contents. The slice is shared; do not
// mutate.
func (d *Dict) Values() []string { return d.values }

// AppendTo serializes the dictionary as count + length-prefixed strings.
func (d *Dict) AppendTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.values)))
	for _, v := range d.values {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// DecodeDict reads a dictionary produced by AppendTo and returns the
// remaining bytes.
func DecodeDict(src []byte) (*Dict, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("encoding: truncated dict count")
	}
	src = src[k:]
	// Each entry needs at least one length byte; bound the allocation.
	if n > uint64(len(src))+1 {
		return nil, nil, fmt.Errorf("encoding: dict count %d exceeds input (%d bytes)", n, len(src))
	}
	values := make([]string, n)
	for i := range values {
		l, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, nil, fmt.Errorf("encoding: truncated dict entry %d", i)
		}
		src = src[k:]
		if uint64(len(src)) < l {
			return nil, nil, fmt.Errorf("encoding: truncated dict string %d", i)
		}
		values[i] = string(src[:l])
		src = src[l:]
	}
	return &Dict{values: values}, src, nil
}

// ChunkDict is the second level of the two-level scheme: the sorted
// global-ids of the values present in one chunk. A column value inside the
// chunk is stored as a chunk-id — its position in this slice — which needs
// fewer bits than a global-id. Absence of a global-id from the chunk
// dictionary proves the value does not occur in the chunk, enabling the
// chunk-pruning step of Section 4.2.
type ChunkDict struct {
	globalIDs []uint64 // sorted
}

// BuildChunkDict collects the sorted distinct global-ids appearing in ids.
func BuildChunkDict(ids []uint64) *ChunkDict {
	seen := make(map[uint64]struct{}, 64)
	uniq := make([]uint64, 0, 64)
	for _, id := range ids {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			uniq = append(uniq, id)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	return &ChunkDict{globalIDs: uniq}
}

// ChunkDictFromIDs wraps an already-sorted slice of distinct global-ids as a
// chunk dictionary; the slice is adopted, not copied. Chunk rebuilds use it
// to remap a chunk dictionary onto a grown global dictionary (a monotonic
// remap preserves the sorted order this constructor validates).
func ChunkDictFromIDs(ids []uint64) (*ChunkDict, error) {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return nil, fmt.Errorf("encoding: chunk dict ids not strictly ascending at %d", i)
		}
	}
	return &ChunkDict{globalIDs: ids}, nil
}

// Len returns the chunk cardinality.
func (c *ChunkDict) Len() int { return len(c.globalIDs) }

// GlobalID maps a chunk-id to its global-id.
func (c *ChunkDict) GlobalID(chunkID uint64) uint64 { return c.globalIDs[chunkID] }

// ChunkID maps a global-id to its chunk-id, or false if the value does not
// occur in the chunk. This is the binary search used for chunk pruning.
func (c *ChunkDict) ChunkID(globalID uint64) (uint64, bool) {
	i := sort.Search(len(c.globalIDs), func(i int) bool { return c.globalIDs[i] >= globalID })
	if i < len(c.globalIDs) && c.globalIDs[i] == globalID {
		return uint64(i), true
	}
	return 0, false
}

// Encode maps global-ids to chunk-ids. All ids must be present (the chunk
// dictionary was built from the same data).
func (c *ChunkDict) Encode(globalIDs []uint64) []uint64 {
	out := make([]uint64, len(globalIDs))
	for i, g := range globalIDs {
		cid, ok := c.ChunkID(g)
		if !ok {
			panic(fmt.Sprintf("encoding: global id %d missing from chunk dict", g))
		}
		out[i] = cid
	}
	return out
}

// AppendTo serializes as count + delta-encoded sorted global-ids.
func (c *ChunkDict) AppendTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(c.globalIDs)))
	prev := uint64(0)
	for _, g := range c.globalIDs {
		dst = binary.AppendUvarint(dst, g-prev)
		prev = g
	}
	return dst
}

// DecodeChunkDict reads a chunk dictionary produced by AppendTo and returns
// the remaining bytes.
func DecodeChunkDict(src []byte) (*ChunkDict, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("encoding: truncated chunk dict count")
	}
	src = src[k:]
	// Each delta needs at least one byte; bound the allocation.
	if n > uint64(len(src))+1 {
		return nil, nil, fmt.Errorf("encoding: chunk dict count %d exceeds input (%d bytes)", n, len(src))
	}
	ids := make([]uint64, n)
	prev := uint64(0)
	for i := range ids {
		d, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, nil, fmt.Errorf("encoding: truncated chunk dict entry %d", i)
		}
		src = src[k:]
		prev += d
		ids[i] = prev
	}
	return &ChunkDict{globalIDs: ids}, src, nil
}
