package encoding

import (
	"encoding/binary"
	"fmt"
)

// Run is one RLE triple (u, f, n) as described in Section 4.1 of the paper:
// Value appears Length consecutive times starting at row Start of the chunk.
// For the user column the runs are strictly increasing in Start and tile the
// chunk exactly, which is what lets the modified TableScan skip a whole user
// in O(1).
type Run struct {
	Value  uint64 // encoded (dictionary id) value
	Start  uint32 // row index of the first appearance
	Length uint32 // number of consecutive appearances
}

// RLE is a run-length encoded column segment.
type RLE struct {
	runs []Run
	n    int // total decoded length
}

// EncodeRLE run-length encodes values.
func EncodeRLE(values []uint64) *RLE {
	var runs []Run
	for i := 0; i < len(values); {
		j := i + 1
		for j < len(values) && values[j] == values[i] {
			j++
		}
		runs = append(runs, Run{Value: values[i], Start: uint32(i), Length: uint32(j - i)})
		i = j
	}
	return &RLE{runs: runs, n: len(values)}
}

// RLEFromRuns reassembles an RLE segment from parallel (value, length)
// slices, recomputing the run starts — the inverse of reading Run(i). Chunk
// rebuilds use it when a user column's dictionary ids are remapped or when a
// chunk is reloaded from a self-contained segment, so the column never has to
// be decoded to full length just to be re-encoded.
func RLEFromRuns(values []uint64, lengths []uint32) *RLE {
	runs := make([]Run, len(values))
	pos := uint32(0)
	for i, v := range values {
		runs[i] = Run{Value: v, Start: pos, Length: lengths[i]}
		pos += lengths[i]
	}
	return &RLE{runs: runs, n: int(pos)}
}

// NumRuns returns the number of runs (distinct users in a user column).
func (r *RLE) NumRuns() int { return len(r.runs) }

// Len returns the decoded length.
func (r *RLE) Len() int { return r.n }

// Run returns the i-th run.
func (r *RLE) Run(i int) Run { return r.runs[i] }

// Get returns the decoded value at row idx using binary search over runs.
func (r *RLE) Get(idx int) uint64 {
	lo, hi := 0, len(r.runs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(r.runs[mid].Start) <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return r.runs[lo].Value
}

// Decode materializes the full column segment.
func (r *RLE) Decode() []uint64 {
	out := make([]uint64, 0, r.n)
	for _, run := range r.runs {
		for k := uint32(0); k < run.Length; k++ {
			out = append(out, run.Value)
		}
	}
	return out
}

// AppendTo serializes the RLE segment: run count, total length, then
// (value, length) uvarint pairs. Start positions are recomputed on decode,
// so they need not be stored.
func (r *RLE) AppendTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.runs)))
	dst = binary.AppendUvarint(dst, uint64(r.n))
	for _, run := range r.runs {
		dst = binary.AppendUvarint(dst, run.Value)
		dst = binary.AppendUvarint(dst, uint64(run.Length))
	}
	return dst
}

// DecodeRLEBytes reads an RLE segment produced by AppendTo and returns the
// remaining bytes.
func DecodeRLEBytes(src []byte) (*RLE, []byte, error) {
	nruns, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("encoding: truncated RLE run count")
	}
	src = src[k:]
	total, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("encoding: truncated RLE total")
	}
	src = src[k:]
	// Each run occupies at least two bytes (value + length uvarints); bound
	// the allocation by the input actually present.
	if nruns > uint64(len(src))/2+1 {
		return nil, nil, fmt.Errorf("encoding: RLE run count %d exceeds input (%d bytes)", nruns, len(src))
	}
	runs := make([]Run, nruns)
	pos := uint32(0)
	for i := range runs {
		v, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, nil, fmt.Errorf("encoding: truncated RLE value at run %d", i)
		}
		src = src[k:]
		l, k := binary.Uvarint(src)
		if k <= 0 {
			return nil, nil, fmt.Errorf("encoding: truncated RLE length at run %d", i)
		}
		src = src[k:]
		runs[i] = Run{Value: v, Start: pos, Length: uint32(l)}
		pos += uint32(l)
	}
	if uint64(pos) != total {
		return nil, nil, fmt.Errorf("encoding: RLE length mismatch: runs sum to %d, header says %d", pos, total)
	}
	return &RLE{runs: runs, n: int(total)}, src, nil
}
