// Package encoding implements the compression primitives used by the COHANA
// storage format: fixed-width bit packing with random access, run-length
// encoding for the user column, two-level (global/chunk) dictionaries for
// string columns and frame-of-reference encoding for integer columns.
//
// All encoders produce self-describing byte slices that the corresponding
// decoders can read back without external metadata, so a column segment can
// be persisted and later accessed positionally without full decompression —
// the property Section 4.1 of the paper calls "of vital importance for
// efficient cohort query processing".
package encoding

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// BitWidth returns the minimum number of bits needed to represent max.
// By convention zero values still occupy one bit so that positional access
// arithmetic never divides by zero.
func BitWidth(max uint64) uint {
	if max == 0 {
		return 1
	}
	return uint(bits.Len64(max))
}

// BitPacked is a fixed-width packed array of unsigned integers. Each value
// occupies exactly Width bits; value i lives at bit offset i*Width. Values
// may straddle a 64-bit word boundary, in which case Get stitches the two
// words together. The layout allows O(1) random access on compressed data.
type BitPacked struct {
	width uint
	n     int
	words []uint64
}

// PackUint64 packs values using the minimum width that fits the largest
// element.
func PackUint64(values []uint64) *BitPacked {
	var max uint64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	return PackUint64Width(values, BitWidth(max))
}

// PackUint64Width packs values with an explicit width. It panics if any
// value does not fit, since that indicates a bug in the caller's width
// computation rather than a runtime condition.
func PackUint64Width(values []uint64, width uint) *BitPacked {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("encoding: invalid bit width %d", width))
	}
	totalBits := uint64(len(values)) * uint64(width)
	words := make([]uint64, (totalBits+63)/64)
	for i, v := range values {
		if width < 64 && v >= 1<<width {
			panic(fmt.Sprintf("encoding: value %d does not fit in %d bits", v, width))
		}
		bitPos := uint64(i) * uint64(width)
		word := bitPos / 64
		shift := bitPos % 64
		words[word] |= v << shift
		if shift+uint64(width) > 64 {
			words[word+1] |= v >> (64 - shift)
		}
	}
	return &BitPacked{width: width, n: len(values), words: words}
}

// Len returns the number of packed values.
func (b *BitPacked) Len() int { return b.n }

// Width returns the per-value width in bits.
func (b *BitPacked) Width() uint { return b.width }

// Get returns the i-th value. It performs no bounds check beyond the slice
// access itself; callers iterate within [0, Len()).
func (b *BitPacked) Get(i int) uint64 {
	bitPos := uint64(i) * uint64(b.width)
	word := bitPos / 64
	shift := bitPos % 64
	v := b.words[word] >> shift
	if shift+uint64(b.width) > 64 {
		v |= b.words[word+1] << (64 - shift)
	}
	if b.width == 64 {
		return v
	}
	return v & (1<<b.width - 1)
}

// Unpack materializes all values into a fresh slice, mainly for tests and
// whole-column exports.
func (b *BitPacked) Unpack() []uint64 {
	out := make([]uint64, b.n)
	for i := range out {
		out[i] = b.Get(i)
	}
	return out
}

// AppendRange appends the values at positions [start, end) to dst and returns
// the extended slice. It walks the packed words sequentially instead of
// re-deriving the word/shift pair per element, so batch extraction — the
// feed of the run-aware execution kernels — costs a shift and a mask per
// value rather than a full Get. Bounds follow Get's contract: callers stay
// within [0, Len()].
func (b *BitPacked) AppendRange(dst []uint64, start, end int) []uint64 {
	n := end - start
	if n <= 0 {
		return dst
	}
	// Grow once and write by index: an append per value would re-check
	// capacity and bump the length on every element of the hot decode loop.
	base := len(dst)
	if cap(dst) < base+n {
		grown := make([]uint64, base, base+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+n]
	out := dst[base:]
	if b.width == 0 {
		// A constant column packs to width 0: every value is code 0.
		clear(out)
		return dst
	}
	width := uint64(b.width)
	mask := ^uint64(0)
	if b.width < 64 {
		mask = 1<<b.width - 1
	}
	bitPos := uint64(start) * width
	for i := range out {
		word := bitPos >> 6
		shift := bitPos & 63
		v := b.words[word] >> shift
		if shift+width > 64 {
			v |= b.words[word+1] << (64 - shift)
		}
		out[i] = v & mask
		bitPos += width
	}
	return dst
}

// AppendTo serializes the packed array: width (1 byte), count (uvarint),
// then the words in little-endian order.
func (b *BitPacked) AppendTo(dst []byte) []byte {
	dst = append(dst, byte(b.width))
	dst = binary.AppendUvarint(dst, uint64(b.n))
	for _, w := range b.words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// DecodeBitPacked reads a packed array produced by AppendTo and returns the
// remaining bytes. The words slice aliases src; callers that mutate src must
// copy first.
func DecodeBitPacked(src []byte) (*BitPacked, []byte, error) {
	if len(src) < 1 {
		return nil, nil, fmt.Errorf("encoding: truncated bitpack header")
	}
	width := uint(src[0])
	if width == 0 || width > 64 {
		return nil, nil, fmt.Errorf("encoding: invalid bitpack width %d", width)
	}
	src = src[1:]
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("encoding: truncated bitpack count")
	}
	src = src[k:]
	// Bound the count by the bytes actually present before allocating, so a
	// corrupted count cannot trigger a huge allocation (and n*width cannot
	// overflow below).
	if n > uint64(len(src))*8/uint64(width) {
		return nil, nil, fmt.Errorf("encoding: bitpack count %d exceeds input (%d bytes at width %d)", n, len(src), width)
	}
	totalBits := n * uint64(width)
	nw := int((totalBits + 63) / 64)
	if len(src) < nw*8 {
		return nil, nil, fmt.Errorf("encoding: truncated bitpack body: want %d words, have %d bytes", nw, len(src))
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(src[i*8:])
	}
	return &BitPacked{width: width, n: int(n), words: words}, src[nw*8:], nil
}
