package encoding

// Micro-benchmarks for the storage primitives of Section 4.1: random access
// on bit-packed data (the property that lets COHANA skip users without
// decompression), RLE user-column iteration, and dictionary lookups (the
// binary searches behind chunk pruning).

import (
	"math/rand"
	"testing"
)

func benchData(n int, width uint) []uint64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() & (1<<width - 1)
	}
	return out
}

func BenchmarkBitPackedGet(b *testing.B) {
	values := benchData(1<<16, 13)
	packed := PackUint64Width(values, 13)
	idx := rand.New(rand.NewSource(2)).Perm(len(values))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += packed.Get(idx[i%len(idx)])
	}
	_ = sink
}

func BenchmarkBitPackedSequentialSum(b *testing.B) {
	values := benchData(1<<16, 20)
	packed := PackUint64Width(values, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum uint64
		for k := 0; k < packed.Len(); k++ {
			sum += packed.Get(k)
		}
		_ = sum
	}
}

func BenchmarkUnpackedSequentialSum(b *testing.B) {
	// The decompressed baseline for BenchmarkBitPackedSequentialSum: the
	// price of random-accessible compression is a shift and mask per read.
	values := benchData(1<<16, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum uint64
		for _, v := range values {
			sum += v
		}
		_ = sum
	}
}

func BenchmarkPack(b *testing.B) {
	values := benchData(1<<16, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackUint64Width(values, 17)
	}
}

func BenchmarkRLEEncodeUserColumn(b *testing.B) {
	// A user column: long runs of repeated ids.
	values := make([]uint64, 1<<16)
	rng := rand.New(rand.NewSource(3))
	id := uint64(0)
	for i := range values {
		if rng.Intn(50) == 0 {
			id++
		}
		values[i] = id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeRLE(values)
	}
}

func BenchmarkDictLookup(b *testing.B) {
	words := make([]string, 1024)
	for i := range words {
		words[i] = benchWord(i)
	}
	d := BuildDict(words)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup(words[i%len(words)]); !ok {
			b.Fatal("missing word")
		}
	}
}

func BenchmarkChunkDictPruneProbe(b *testing.B) {
	cd := BuildChunkDict(benchData(4096, 24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd.ChunkID(uint64(i) & (1<<24 - 1))
	}
}

func BenchmarkFrameOfRefDecodeGet(b *testing.B) {
	values := make([]int64, 1<<15)
	rng := rand.New(rand.NewSource(4))
	base := int64(1368950400) // timestamps near the dataset's window
	for i := range values {
		values[i] = base + int64(rng.Intn(86400*39))
	}
	f := EncodeFrameOfRef(values)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += f.Get(i % f.Len())
	}
	_ = sink
}

func benchWord(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, 0, 8)
	for i > 0 || len(buf) == 0 {
		buf = append(buf, letters[i%26])
		i /= 26
	}
	return string(buf)
}
