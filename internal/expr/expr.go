// Package expr defines the condition language used in birth selection and
// age selection operators (Sections 3.3.1-3.3.2 of the paper): boolean
// combinations of comparisons over tuple attributes, birth-tuple attributes
// via the Birth() function, the computed AGE, and literals. The AST is
// engine-neutral: COHANA compiles it against its compressed chunks while the
// baseline engines evaluate it against relational rows, both through the Env
// interface.
package expr

import (
	"fmt"
	"strings"
)

// Kind discriminates runtime values.
type Kind uint8

// Value kinds. Times are Int (Unix seconds).
const (
	KindString Kind = iota
	KindInt
)

// Value is a runtime value produced by evaluating an expression.
type Value struct {
	Kind Kind
	Str  string
	Int  int64
}

// S makes a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I makes an integer value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

func (v Value) String() string {
	if v.Kind == KindString {
		return fmt.Sprintf("%q", v.Str)
	}
	return fmt.Sprintf("%d", v.Int)
}

// Compare returns -1, 0 or +1. Both values must have the same kind; Compile
// guarantees this for well-typed expressions.
func (v Value) Compare(o Value) int {
	if v.Kind == KindString {
		return strings.Compare(v.Str, o.Str)
	}
	switch {
	case v.Int < o.Int:
		return -1
	case v.Int > o.Int:
		return 1
	default:
		return 0
	}
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Expr is a node of the condition AST.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Col references an attribute of the current activity tuple.
type Col struct{ Name string }

// Birth references an attribute of the current user's birth activity tuple
// (the Birth() function of Section 3.3.2).
type Birth struct{ Name string }

// Age references the age of the current tuple (in age units, 1-based; the
// AGE keyword of Section 3.4).
type Age struct{}

// Lit is a literal constant. String literals are coerced to times at compile
// time when compared against a time column.
type Lit struct{ Val Value }

// Cmp is a binary comparison.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// In tests membership of L in a literal list (the IN [..] syntax of Q4).
type In struct {
	L    Expr
	List []Value
}

// Between is the inclusive range test used by the paper's
// "time BETWEEN d1 AND d2" conditions.
type Between struct {
	L      Expr
	Lo, Hi Value
}

// And is conjunction.
type And struct{ L, R Expr }

// Or is disjunction.
type Or struct{ L, R Expr }

// Not is negation.
type Not struct{ E Expr }

func (Col) isExpr()     {}
func (Birth) isExpr()   {}
func (Age) isExpr()     {}
func (Lit) isExpr()     {}
func (Cmp) isExpr()     {}
func (In) isExpr()      {}
func (Between) isExpr() {}
func (And) isExpr()     {}
func (Or) isExpr()      {}
func (Not) isExpr()     {}

func (e Col) String() string   { return e.Name }
func (e Birth) String() string { return fmt.Sprintf("Birth(%s)", e.Name) }
func (Age) String() string     { return "AGE" }
func (e Lit) String() string   { return e.Val.String() }
func (e Cmp) String() string   { return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R) }

func (e In) String() string {
	parts := make([]string, len(e.List))
	for i, v := range e.List {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN [%s]", e.L, strings.Join(parts, ", "))
}

func (e Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", e.L, e.Lo.String(), e.Hi.String())
}
func (e And) String() string { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }
func (e Or) String() string  { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }
func (e Not) String() string { return fmt.Sprintf("NOT (%s)", e.E) }

// UsesBirth reports whether the expression references Birth(attr). Birth
// selection conditions must not (they are evaluated on the birth tuple
// itself), while age selection conditions may.
func UsesBirth(e Expr) bool {
	switch x := e.(type) {
	case Birth:
		return true
	case Cmp:
		return UsesBirth(x.L) || UsesBirth(x.R)
	case In:
		return UsesBirth(x.L)
	case Between:
		return UsesBirth(x.L)
	case And:
		return UsesBirth(x.L) || UsesBirth(x.R)
	case Or:
		return UsesBirth(x.L) || UsesBirth(x.R)
	case Not:
		return UsesBirth(x.E)
	default:
		return false
	}
}

// UsesAge reports whether the expression references AGE.
func UsesAge(e Expr) bool {
	switch x := e.(type) {
	case Age:
		return true
	case Cmp:
		return UsesAge(x.L) || UsesAge(x.R)
	case In:
		return UsesAge(x.L)
	case Between:
		return UsesAge(x.L)
	case And:
		return UsesAge(x.L) || UsesAge(x.R)
	case Or:
		return UsesAge(x.L) || UsesAge(x.R)
	case Not:
		return UsesAge(x.E)
	default:
		return false
	}
}

// Conjuncts flattens nested ANDs into a list, used by the planner's
// chunk-pruning analysis.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Expr{e}
}

// AndAll combines conjuncts back into a single expression (nil for empty).
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = And{L: out, R: e}
		}
	}
	return out
}
