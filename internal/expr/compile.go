package expr

import (
	"fmt"

	"repro/internal/activity"
)

// Env supplies attribute values during predicate evaluation. Column indices
// are the activity schema's; the engine decides how to fetch them (COHANA
// decodes compressed chunks, the baselines read relational rows).
type Env interface {
	// Col returns the value of schema column idx in the current tuple.
	Col(idx int) Value
	// BirthCol returns the value of schema column idx in the current user's
	// birth activity tuple.
	BirthCol(idx int) Value
	// Age returns the 1-based age of the current tuple in age units.
	Age() int64
}

// Pred is a compiled predicate.
type Pred func(Env) bool

// valueFn is a compiled scalar sub-expression.
type valueFn func(Env) Value

// Compile type-checks e against schema and returns an evaluator. String
// literals compared against time columns are coerced to Unix seconds using
// activity.ParseTime, so queries can say time BETWEEN "2013-05-21" AND
// "2013-05-27" (Q2).
func Compile(e Expr, schema *activity.Schema) (Pred, error) {
	c := compiler{schema: schema}
	p, err := c.pred(e)
	if err != nil {
		return nil, err
	}
	return p, nil
}

type compiler struct {
	schema *activity.Schema
}

// scalar compiles a scalar expression, returning its static kind.
func (c *compiler) scalar(e Expr) (valueFn, Kind, bool, error) {
	switch x := e.(type) {
	case Col:
		idx, kind, err := c.resolve(x.Name)
		if err != nil {
			return nil, 0, false, err
		}
		return func(env Env) Value { return env.Col(idx) }, kind, false, nil
	case Birth:
		idx, kind, err := c.resolve(x.Name)
		if err != nil {
			return nil, 0, false, err
		}
		return func(env Env) Value { return env.BirthCol(idx) }, kind, false, nil
	case Age:
		return func(env Env) Value { return I(env.Age()) }, KindInt, false, nil
	case Lit:
		v := x.Val
		return func(Env) Value { return v }, v.Kind, true, nil
	default:
		return nil, 0, false, fmt.Errorf("expr: %s is not a scalar expression", e)
	}
}

// resolve maps an attribute name to its schema index and value kind. Time
// columns surface as integers (Unix seconds).
func (c *compiler) resolve(name string) (int, Kind, error) {
	idx := c.schema.ColIndex(name)
	if idx < 0 {
		return 0, 0, fmt.Errorf("expr: unknown attribute %q", name)
	}
	if c.schema.IsStringCol(idx) {
		return idx, KindString, nil
	}
	return idx, KindInt, nil
}

// coerce reconciles the kinds of two scalar operands, converting a string
// literal to a time when the other side is a time column.
func (c *compiler) coerce(e Expr, fn valueFn, kind Kind, isLit bool, otherKind Kind, otherExpr Expr) (valueFn, Kind, error) {
	if kind == otherKind {
		return fn, kind, nil
	}
	if isLit && kind == KindString && otherKind == KindInt && c.isTimeRef(otherExpr) {
		lit := e.(Lit)
		secs, err := activity.ParseTime(lit.Val.Str)
		if err != nil {
			return nil, 0, fmt.Errorf("expr: literal %s compared with time column: %w", lit.Val, err)
		}
		v := I(secs)
		return func(Env) Value { return v }, KindInt, nil
	}
	return nil, 0, fmt.Errorf("expr: type mismatch: %s (%v) vs %s (%v)", e, kindName(kind), otherExpr, kindName(otherKind))
}

func kindName(k Kind) string {
	if k == KindString {
		return "string"
	}
	return "int"
}

// isTimeRef reports whether e references the schema's time column (directly
// or via Birth()).
func (c *compiler) isTimeRef(e Expr) bool {
	switch x := e.(type) {
	case Col:
		idx := c.schema.ColIndex(x.Name)
		return idx >= 0 && c.schema.Col(idx).Type == activity.TypeTime
	case Birth:
		idx := c.schema.ColIndex(x.Name)
		return idx >= 0 && c.schema.Col(idx).Type == activity.TypeTime
	default:
		return false
	}
}

// coerceLit converts a literal for comparison against the kind/column of l.
func (c *compiler) coerceLit(v Value, wantKind Kind, lexpr Expr) (Value, error) {
	if v.Kind == wantKind {
		return v, nil
	}
	if v.Kind == KindString && wantKind == KindInt && c.isTimeRef(lexpr) {
		secs, err := activity.ParseTime(v.Str)
		if err != nil {
			return Value{}, fmt.Errorf("expr: literal %s compared with time column: %w", v, err)
		}
		return I(secs), nil
	}
	return Value{}, fmt.Errorf("expr: literal %s has wrong type for %s", v, lexpr)
}

func (c *compiler) pred(e Expr) (Pred, error) {
	switch x := e.(type) {
	case And:
		l, err := c.pred(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.pred(x.R)
		if err != nil {
			return nil, err
		}
		return func(env Env) bool { return l(env) && r(env) }, nil
	case Or:
		l, err := c.pred(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.pred(x.R)
		if err != nil {
			return nil, err
		}
		return func(env Env) bool { return l(env) || r(env) }, nil
	case Not:
		p, err := c.pred(x.E)
		if err != nil {
			return nil, err
		}
		return func(env Env) bool { return !p(env) }, nil
	case Cmp:
		lf, lk, llit, err := c.scalar(x.L)
		if err != nil {
			return nil, err
		}
		rf, rk, rlit, err := c.scalar(x.R)
		if err != nil {
			return nil, err
		}
		if lk != rk {
			// Try coercing whichever side is the literal.
			if rlit {
				rf, rk, err = c.coerce(x.R, rf, rk, rlit, lk, x.L)
			} else if llit {
				lf, lk, err = c.coerce(x.L, lf, lk, llit, rk, x.R)
			} else {
				err = fmt.Errorf("expr: type mismatch in %s", x)
			}
			if err != nil {
				return nil, err
			}
		}
		op := x.Op
		return func(env Env) bool { return cmpHolds(op, lf(env).Compare(rf(env))) }, nil
	case In:
		lf, lk, _, err := c.scalar(x.L)
		if err != nil {
			return nil, err
		}
		vals := make([]Value, len(x.List))
		for i, v := range x.List {
			cv, err := c.coerceLit(v, lk, x.L)
			if err != nil {
				return nil, err
			}
			vals[i] = cv
		}
		return func(env Env) bool {
			v := lf(env)
			for _, w := range vals {
				if v.Compare(w) == 0 {
					return true
				}
			}
			return false
		}, nil
	case Between:
		lf, lk, _, err := c.scalar(x.L)
		if err != nil {
			return nil, err
		}
		lo, err := c.coerceLit(x.Lo, lk, x.L)
		if err != nil {
			return nil, err
		}
		hi, err := c.coerceLit(x.Hi, lk, x.L)
		if err != nil {
			return nil, err
		}
		return func(env Env) bool {
			v := lf(env)
			return v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		}, nil
	case Lit:
		// Allow boolean-ish literals? The language has none; reject.
		return nil, fmt.Errorf("expr: literal %s used as a condition", x)
	default:
		return nil, fmt.Errorf("expr: %s cannot be used as a condition", e)
	}
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}
