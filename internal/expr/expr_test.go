package expr

import (
	"strings"
	"testing"

	"repro/internal/activity"
)

// fakeEnv is a map-backed Env for tests.
type fakeEnv struct {
	cur   map[int]Value
	birth map[int]Value
	age   int64
}

func (f fakeEnv) Col(i int) Value      { return f.cur[i] }
func (f fakeEnv) BirthCol(i int) Value { return f.birth[i] }
func (f fakeEnv) Age() int64           { return f.age }

func paperEnv() fakeEnv {
	// Schema: player(0) time(1) action(2) role(3) country(4) gold(5).
	return fakeEnv{
		cur: map[int]Value{
			0: S("001"), 1: I(2000), 2: S("shop"), 3: S("assassin"), 4: S("Australia"), 5: I(50),
		},
		birth: map[int]Value{
			0: S("001"), 1: I(1000), 2: S("launch"), 3: S("dwarf"), 4: S("Australia"), 5: I(0),
		},
		age: 3,
	}
}

func mustCompile(t *testing.T, e Expr) Pred {
	t.Helper()
	p, err := Compile(e, activity.PaperSchema())
	if err != nil {
		t.Fatalf("Compile(%s): %v", e, err)
	}
	return p
}

func TestCompileComparisons(t *testing.T) {
	env := paperEnv()
	cases := []struct {
		e    Expr
		want bool
	}{
		{Cmp{OpEq, Col{"action"}, Lit{S("shop")}}, true},
		{Cmp{OpEq, Col{"action"}, Lit{S("fight")}}, false},
		{Cmp{OpNe, Col{"country"}, Lit{S("China")}}, true},
		{Cmp{OpGt, Col{"gold"}, Lit{I(49)}}, true},
		{Cmp{OpLe, Col{"gold"}, Lit{I(49)}}, false},
		{Cmp{OpEq, Birth{"role"}, Lit{S("dwarf")}}, true},
		{Cmp{OpEq, Col{"role"}, Birth{"role"}}, false}, // assassin vs dwarf
		{Cmp{OpEq, Col{"country"}, Birth{"country"}}, true},
		{Cmp{OpLt, Age{}, Lit{I(5)}}, true},
		{Cmp{OpGe, Age{}, Lit{I(5)}}, false},
		{Cmp{OpEq, Lit{I(7)}, Lit{I(7)}}, true},
		{Cmp{OpGt, Lit{I(3)}, Col{"gold"}}, false}, // literal on the left
	}
	for _, c := range cases {
		if got := mustCompile(t, c.e)(env); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestCompileBooleans(t *testing.T) {
	env := paperEnv()
	shop := Cmp{OpEq, Col{"action"}, Lit{S("shop")}}
	china := Cmp{OpEq, Col{"country"}, Lit{S("China")}}
	cases := []struct {
		e    Expr
		want bool
	}{
		{And{shop, Not{china}}, true},
		{And{shop, china}, false},
		{Or{china, shop}, true},
		{Or{china, china}, false},
		{Not{Not{shop}}, true},
	}
	for _, c := range cases {
		if got := mustCompile(t, c.e)(env); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestCompileInBetween(t *testing.T) {
	env := paperEnv()
	cases := []struct {
		e    Expr
		want bool
	}{
		{In{Col{"country"}, []Value{S("China"), S("Australia")}}, true},
		{In{Col{"country"}, []Value{S("China"), S("India")}}, false},
		{In{Col{"gold"}, []Value{I(50), I(60)}}, true},
		{Between{Col{"gold"}, I(0), I(50)}, true},
		{Between{Col{"gold"}, I(51), I(99)}, false},
		{Between{Age{}, I(1), I(3)}, true},
	}
	for _, c := range cases {
		if got := mustCompile(t, c.e)(env); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestTimeLiteralCoercion(t *testing.T) {
	// time column holds Unix seconds; a string date literal must coerce.
	env := paperEnv()
	env.cur[1] = I(mustParse(t, "2013/05/22:0900"))
	e := Between{Col{"time"}, S("2013-05-21"), S("2013-05-27")}
	if !mustCompile(t, e)(env) {
		t.Error("BETWEEN date coercion failed")
	}
	e2 := Cmp{OpLt, Col{"time"}, Lit{S("2013-05-23")}}
	if got := mustCompile(t, e2)(env); !got {
		t.Error("Cmp date coercion failed")
	}
	e3 := Cmp{OpLt, Birth{"time"}, Lit{S("2013-05-23")}}
	env.birth[1] = I(mustParse(t, "2013/05/19:1000"))
	if !mustCompile(t, e3)(env) {
		t.Error("Birth(time) date coercion failed")
	}
}

func mustParse(t *testing.T, s string) int64 {
	t.Helper()
	v, err := activity.ParseTime(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompileErrors(t *testing.T) {
	schema := activity.PaperSchema()
	cases := []Expr{
		Cmp{OpEq, Col{"bogus"}, Lit{S("x")}},
		Cmp{OpEq, Col{"gold"}, Lit{S("x")}},          // int vs string literal
		Cmp{OpEq, Col{"gold"}, Col{"country"}},       // int col vs string col
		Cmp{OpEq, Col{"country"}, Lit{I(1)}},         // string col vs int literal
		In{Col{"gold"}, []Value{S("x")}},             // list type mismatch
		Between{Col{"country"}, I(1), I(2)},          // range type mismatch
		Lit{S("true")},                               // literal as condition
		Cmp{OpEq, Col{"time"}, Lit{S("not a date")}}, // bad date literal
	}
	for _, e := range cases {
		if _, err := Compile(e, schema); err == nil {
			t.Errorf("Compile(%s) succeeded", e)
		}
	}
}

func TestUsesBirthAndAge(t *testing.T) {
	e := And{
		Cmp{OpEq, Col{"action"}, Lit{S("shop")}},
		Cmp{OpEq, Col{"country"}, Birth{"country"}},
	}
	if !UsesBirth(e) {
		t.Error("UsesBirth missed nested Birth()")
	}
	if UsesAge(e) {
		t.Error("UsesAge false positive")
	}
	e2 := Or{Cmp{OpLt, Age{}, Lit{I(7)}}, Not{Cmp{OpEq, Col{"role"}, Lit{S("x")}}}}
	if !UsesAge(e2) {
		t.Error("UsesAge missed AGE")
	}
	if UsesBirth(e2) {
		t.Error("UsesBirth false positive")
	}
}

func TestConjunctsAndAll(t *testing.T) {
	a := Cmp{OpEq, Col{"action"}, Lit{S("shop")}}
	b := Cmp{OpGt, Col{"gold"}, Lit{I(0)}}
	c := Cmp{OpNe, Col{"country"}, Lit{S("China")}}
	e := And{And{a, b}, c}
	cj := Conjuncts(e)
	if len(cj) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cj))
	}
	back := AndAll(cj)
	if back.String() != "((action = \"shop\" AND gold > 0) AND country != \"China\")" {
		t.Errorf("AndAll = %s", back)
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) != nil")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) != nil")
	}
}

func TestStringRendering(t *testing.T) {
	e := And{
		Cmp{OpEq, Birth{"role"}, Lit{S("dwarf")}},
		Or{In{Col{"country"}, []Value{S("China")}}, Not{Between{Age{}, I(1), I(2)}}},
	}
	s := e.String()
	for _, want := range []string{"Birth(role)", "dwarf", "IN", "AGE", "BETWEEN", "NOT"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
