package activity

import (
	"fmt"
	"sort"
	"time"
)

// SecondsPerDay is the default age granularity: the paper assumes "the
// granularity of g is a day" (Section 3.2).
const SecondsPerDay = 86400

// Table is an in-memory activity table held column-wise. Rows are appended
// in any order; SortByPK establishes the (Au, At, Ae) physical order that
// gives COHANA its clustering and time-ordering properties, and validates
// the primary-key constraint.
type Table struct {
	schema *Schema
	n      int
	strs   [][]string // string columns, nil entry for int columns
	ints   [][]int64  // int/time columns, nil entry for string columns
	sorted bool
}

// NewTable creates an empty table for schema.
func NewTable(schema *Schema) *Table {
	t := &Table{
		schema: schema,
		strs:   make([][]string, schema.NumCols()),
		ints:   make([][]int64, schema.NumCols()),
	}
	for i := 0; i < schema.NumCols(); i++ {
		if schema.IsStringCol(i) {
			t.strs[i] = []string{}
		} else {
			t.ints[i] = []int64{}
		}
	}
	return t
}

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of activity tuples.
func (t *Table) Len() int { return t.n }

// Sorted reports whether SortByPK has been called since the last append.
func (t *Table) Sorted() bool { return t.sorted }

// AppendRow appends one tuple. strs and ints must supply a value for every
// string / integer column respectively, keyed by column index; values at
// indexes of the other type are ignored. Use the convenience Append for
// schema-ordered mixed values.
func (t *Table) AppendRow(strs []string, ints []int64) {
	for i := 0; i < t.schema.NumCols(); i++ {
		if t.schema.IsStringCol(i) {
			t.strs[i] = append(t.strs[i], strs[i])
		} else {
			t.ints[i] = append(t.ints[i], ints[i])
		}
	}
	t.n++
	t.sorted = false
}

// Append appends one tuple given values in schema order. String columns take
// string values, int and time columns take int64 or time.Time values.
func (t *Table) Append(values ...any) error {
	if len(values) != t.schema.NumCols() {
		return fmt.Errorf("activity: Append got %d values, schema has %d columns", len(values), t.schema.NumCols())
	}
	// Validate all values before mutating any column so a failed append
	// leaves the table consistent.
	strs := make([]string, len(values))
	ints := make([]int64, len(values))
	for i, v := range values {
		if t.schema.IsStringCol(i) {
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("activity: column %q wants string, got %T", t.schema.Col(i).Name, v)
			}
			strs[i] = s
			continue
		}
		switch x := v.(type) {
		case int64:
			ints[i] = x
		case int:
			ints[i] = int64(x)
		case time.Time:
			ints[i] = x.Unix()
		default:
			return fmt.Errorf("activity: column %q wants int64/time, got %T", t.schema.Col(i).Name, v)
		}
	}
	t.AppendRow(strs, ints)
	return nil
}

// Strings returns the backing slice of a string column. Callers must not
// mutate it.
func (t *Table) Strings(col int) []string { return t.strs[col] }

// Ints returns the backing slice of an int/time column. Callers must not
// mutate it.
func (t *Table) Ints(col int) []int64 { return t.ints[col] }

// User returns the user of row i.
func (t *Table) User(i int) string { return t.strs[t.schema.UserCol()][i] }

// Time returns the timestamp of row i.
func (t *Table) Time(i int) int64 { return t.ints[t.schema.TimeCol()][i] }

// Action returns the action of row i.
func (t *Table) Action(i int) string { return t.strs[t.schema.ActionCol()][i] }

// SortByPK sorts the table by (Au, At, Ae) and validates the primary-key
// constraint, returning an error naming the first duplicate triple found.
func (t *Table) SortByPK() error {
	u, ts, a := t.schema.UserCol(), t.schema.TimeCol(), t.schema.ActionCol()
	idx := make([]int, t.n)
	for i := range idx {
		idx[i] = i
	}
	us, tms, as := t.strs[u], t.ints[ts], t.strs[a]
	sort.SliceStable(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		if us[i] != us[j] {
			return us[i] < us[j]
		}
		if tms[i] != tms[j] {
			return tms[i] < tms[j]
		}
		return as[i] < as[j]
	})
	for k := 1; k < t.n; k++ {
		i, j := idx[k-1], idx[k]
		if us[i] == us[j] && tms[i] == tms[j] && as[i] == as[j] {
			return fmt.Errorf("activity: primary key violation: user %q performed %q twice at %d", us[i], as[i], tms[i])
		}
	}
	t.permute(idx)
	t.sorted = true
	return nil
}

// permute reorders every column by idx.
func (t *Table) permute(idx []int) {
	for c := 0; c < t.schema.NumCols(); c++ {
		if t.schema.IsStringCol(c) {
			src := t.strs[c]
			dst := make([]string, len(src))
			for k, i := range idx {
				dst[k] = src[i]
			}
			t.strs[c] = dst
		} else {
			src := t.ints[c]
			dst := make([]int64, len(src))
			for k, i := range idx {
				dst[k] = src[i]
			}
			t.ints[c] = dst
		}
	}
}

// UserBlocks calls fn once per user with the half-open row range [start, end)
// of that user's tuples. The table must be sorted.
func (t *Table) UserBlocks(fn func(user string, start, end int)) {
	if t.n == 0 {
		return
	}
	us := t.strs[t.schema.UserCol()]
	start := 0
	for i := 1; i <= t.n; i++ {
		if i == t.n || us[i] != us[start] {
			fn(us[start], start, i)
			start = i
		}
	}
}

// NumUsers returns the number of distinct users. The table must be sorted.
func (t *Table) NumUsers() int {
	n := 0
	t.UserBlocks(func(string, int, int) { n++ })
	return n
}
