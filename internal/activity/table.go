package activity

import (
	"fmt"
	"sort"
	"time"
)

// SecondsPerDay is the default age granularity: the paper assumes "the
// granularity of g is a day" (Section 3.2).
const SecondsPerDay = 86400

// Table is an in-memory activity table held column-wise. Rows are appended
// in any order; SortByPK establishes the (Au, At, Ae) physical order that
// gives COHANA its clustering and time-ordering properties, and validates
// the primary-key constraint.
type Table struct {
	schema *Schema
	n      int
	strs   [][]string // string columns, nil entry for int columns
	ints   [][]int64  // int/time columns, nil entry for string columns
	sorted bool
}

// NewTable creates an empty table for schema.
func NewTable(schema *Schema) *Table {
	t := &Table{
		schema: schema,
		strs:   make([][]string, schema.NumCols()),
		ints:   make([][]int64, schema.NumCols()),
	}
	for i := 0; i < schema.NumCols(); i++ {
		if schema.IsStringCol(i) {
			t.strs[i] = []string{}
		} else {
			t.ints[i] = []int64{}
		}
	}
	return t
}

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of activity tuples.
func (t *Table) Len() int { return t.n }

// Sorted reports whether SortByPK has been called since the last append.
func (t *Table) Sorted() bool { return t.sorted }

// AppendRow appends one tuple. strs and ints must supply a value for every
// string / integer column respectively, keyed by column index; values at
// indexes of the other type are ignored. Use the convenience Append for
// schema-ordered mixed values.
func (t *Table) AppendRow(strs []string, ints []int64) {
	for i := 0; i < t.schema.NumCols(); i++ {
		if t.schema.IsStringCol(i) {
			t.strs[i] = append(t.strs[i], strs[i])
		} else {
			t.ints[i] = append(t.ints[i], ints[i])
		}
	}
	t.n++
	t.sorted = false
}

// AppendRows bulk-appends rows [start, end) of src, which must share the
// schema. Column slices are copied wholesale, so moving a user block between
// tables costs a few memcpys instead of a per-row loop — the partitioning
// path of sharded builds depends on this.
func (t *Table) AppendRows(src *Table, start, end int) {
	if src.schema != t.schema && !src.schema.Equal(t.schema) {
		panic("activity: AppendRows across different schemas")
	}
	if start >= end {
		return
	}
	for c := 0; c < t.schema.NumCols(); c++ {
		if t.schema.IsStringCol(c) {
			t.strs[c] = append(t.strs[c], src.strs[c][start:end]...)
		} else {
			t.ints[c] = append(t.ints[c], src.ints[c][start:end]...)
		}
	}
	t.n += end - start
	t.sorted = false
}

// Append appends one tuple given values in schema order. String columns take
// string values, int and time columns take int64 or time.Time values.
func (t *Table) Append(values ...any) error {
	if len(values) != t.schema.NumCols() {
		return fmt.Errorf("activity: Append got %d values, schema has %d columns", len(values), t.schema.NumCols())
	}
	// Validate all values before mutating any column so a failed append
	// leaves the table consistent.
	strs := make([]string, len(values))
	ints := make([]int64, len(values))
	for i, v := range values {
		if t.schema.IsStringCol(i) {
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("activity: column %q wants string, got %T", t.schema.Col(i).Name, v)
			}
			strs[i] = s
			continue
		}
		switch x := v.(type) {
		case int64:
			ints[i] = x
		case int:
			ints[i] = int64(x)
		case time.Time:
			ints[i] = x.Unix()
		default:
			return fmt.Errorf("activity: column %q wants int64/time, got %T", t.schema.Col(i).Name, v)
		}
	}
	t.AppendRow(strs, ints)
	return nil
}

// Strings returns the backing slice of a string column. Callers must not
// mutate it.
func (t *Table) Strings(col int) []string { return t.strs[col] }

// Ints returns the backing slice of an int/time column. Callers must not
// mutate it.
func (t *Table) Ints(col int) []int64 { return t.ints[col] }

// User returns the user of row i.
func (t *Table) User(i int) string { return t.strs[t.schema.UserCol()][i] }

// Time returns the timestamp of row i.
func (t *Table) Time(i int) int64 { return t.ints[t.schema.TimeCol()][i] }

// Action returns the action of row i.
func (t *Table) Action(i int) string { return t.strs[t.schema.ActionCol()][i] }

// SortByPK sorts the table by (Au, At, Ae) and validates the primary-key
// constraint, returning an error naming the first duplicate triple found.
func (t *Table) SortByPK() error {
	u, ts, a := t.schema.UserCol(), t.schema.TimeCol(), t.schema.ActionCol()
	idx := make([]int, t.n)
	for i := range idx {
		idx[i] = i
	}
	us, tms, as := t.strs[u], t.ints[ts], t.strs[a]
	sort.SliceStable(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		if us[i] != us[j] {
			return us[i] < us[j]
		}
		if tms[i] != tms[j] {
			return tms[i] < tms[j]
		}
		return as[i] < as[j]
	})
	for k := 1; k < t.n; k++ {
		i, j := idx[k-1], idx[k]
		if us[i] == us[j] && tms[i] == tms[j] && as[i] == as[j] {
			return fmt.Errorf("activity: primary key violation: user %q performed %q twice at %d", us[i], as[i], tms[i])
		}
	}
	t.permute(idx)
	t.sorted = true
	return nil
}

// permute reorders every column by idx.
func (t *Table) permute(idx []int) {
	for c := 0; c < t.schema.NumCols(); c++ {
		if t.schema.IsStringCol(c) {
			src := t.strs[c]
			dst := make([]string, len(src))
			for k, i := range idx {
				dst[k] = src[i]
			}
			t.strs[c] = dst
		} else {
			src := t.ints[c]
			dst := make([]int64, len(src))
			for k, i := range idx {
				dst[k] = src[i]
			}
			t.ints[c] = dst
		}
	}
}

// AssertSortedByPK verifies in one linear pass that the rows are already in
// strict (Au, At, Ae) order — no duplicates — and marks the table sorted.
// Decoders that produce rows in storage order use it instead of SortByPK to
// avoid an O(n log n) re-sort of already-sorted data.
func (t *Table) AssertSortedByPK() error {
	u, ts, a := t.schema.UserCol(), t.schema.TimeCol(), t.schema.ActionCol()
	us, tms, as := t.strs[u], t.ints[ts], t.strs[a]
	for k := 1; k < t.n; k++ {
		switch {
		case us[k-1] != us[k]:
			if us[k-1] > us[k] {
				return fmt.Errorf("activity: rows %d-%d out of user order", k-1, k)
			}
		case tms[k-1] != tms[k]:
			if tms[k-1] > tms[k] {
				return fmt.Errorf("activity: rows %d-%d out of time order", k-1, k)
			}
		case as[k-1] < as[k]:
		case as[k-1] > as[k]:
			return fmt.Errorf("activity: rows %d-%d out of action order", k-1, k)
		default:
			return fmt.Errorf("activity: primary key violation: user %q performed %q twice at %d", us[k], as[k], tms[k])
		}
	}
	t.sorted = true
	return nil
}

// MergeSorted merges two tables already sorted by primary key into a new
// sorted table over the same schema, validating the primary-key constraint
// across both inputs. It is the streaming-append path's alternative to
// re-sorting a growing table on every batch: O(len(a)+len(b)) instead of a
// full sort.
func MergeSorted(a, b *Table) (*Table, error) {
	if a.schema != b.schema && !a.schema.Equal(b.schema) {
		return nil, fmt.Errorf("activity: MergeSorted inputs have different schemas")
	}
	if !a.Sorted() || !b.Sorted() {
		return nil, fmt.Errorf("activity: MergeSorted inputs must be sorted")
	}
	u, ts, ac := a.schema.UserCol(), a.schema.TimeCol(), a.schema.ActionCol()
	// cmp orders (Au, At, Ae) across the two tables; 0 is a PK violation.
	cmp := func(i, j int) int {
		switch {
		case a.strs[u][i] != b.strs[u][j]:
			if a.strs[u][i] < b.strs[u][j] {
				return -1
			}
			return 1
		case a.ints[ts][i] != b.ints[ts][j]:
			if a.ints[ts][i] < b.ints[ts][j] {
				return -1
			}
			return 1
		case a.strs[ac][i] != b.strs[ac][j]:
			if a.strs[ac][i] < b.strs[ac][j] {
				return -1
			}
			return 1
		default:
			return 0
		}
	}
	out := NewTable(a.schema)
	strs := make([]string, a.schema.NumCols())
	ints := make([]int64, a.schema.NumCols())
	take := func(t *Table, r int) {
		for c := 0; c < t.schema.NumCols(); c++ {
			if t.schema.IsStringCol(c) {
				strs[c] = t.strs[c][r]
			} else {
				ints[c] = t.ints[c][r]
			}
		}
		out.AppendRow(strs, ints)
	}
	i, j := 0, 0
	for i < a.n && j < b.n {
		switch cmp(i, j) {
		case -1:
			take(a, i)
			i++
		case 1:
			take(b, j)
			j++
		default:
			return nil, fmt.Errorf("activity: primary key violation: user %q performed %q twice at %d",
				a.strs[u][i], a.strs[ac][i], a.ints[ts][i])
		}
	}
	for ; i < a.n; i++ {
		take(a, i)
	}
	for ; j < b.n; j++ {
		take(b, j)
	}
	out.sorted = true
	return out, nil
}

// UserBlocks calls fn once per user with the half-open row range [start, end)
// of that user's tuples. The table must be sorted.
func (t *Table) UserBlocks(fn func(user string, start, end int)) {
	if t.n == 0 {
		return
	}
	us := t.strs[t.schema.UserCol()]
	start := 0
	for i := 1; i <= t.n; i++ {
		if i == t.n || us[i] != us[start] {
			fn(us[start], start, i)
			start = i
		}
	}
}

// NumUsers returns the number of distinct users. The table must be sorted.
func (t *Table) NumUsers() int {
	n := 0
	t.UserBlocks(func(string, int, int) { n++ })
	return n
}
